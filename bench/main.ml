(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated platform, printing the same
   rows the paper reports, in clock cycles (at a nominal 48 MHz).

   Run: dune exec bench/main.exe            (all tables)
        dune exec bench/main.exe -- --wall  (adds Bechamel wall-clock
                                             microbenchmarks, one per table)

   Absolute numbers come from the calibrated cost model (lib/core/
   cost_model.ml); shapes — linearity, who wins, overhead ordering — are
   emergent from the implementation.  EXPERIMENTS.md records paper vs
   measured for every row. *)

open Tytan_machine
open Tytan_rtos
open Tytan_telf
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

(* --smoke trims the long sweeps so `dune build @bench-smoke` stays
   fast; --json FILE dumps every headline number as a flat row list for
   machine comparison across commits (see BENCH_seed.json). *)
let smoke = ref false
let json_rows : (string * string * int) list ref = ref []
let record ~table ~label value = json_rows := (table, label, value) :: !json_rows

let write_json path =
  let esc s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04X" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let rows = List.rev !json_rows in
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (table, label, cycles) ->
      Printf.fprintf oc "  {\"table\": \"%s\", \"label\": \"%s\", \"cycles\": %d}%s\n"
        (esc table) (esc label) cycles
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "\nwrote %d benchmark rows to %s\n" (List.length rows) path

let khz ~events ~cycles =
  if cycles = 0 then 0.0
  else float_of_int events /. (float_of_int cycles /. float_of_int Cycles.clock_hz) /. 1000.0

(* Read a data word a task published, under a suitable trusted identity. *)
let data_word p (tcb : Tcb.t) telf index =
  let rtm = Option.get (Platform.rtm p) in
  let eip =
    if tcb.Tcb.secure then Rtm.code_eip rtm
    else Kernel.code_eip (Platform.kernel p)
  in
  Cpu.with_firmware (Platform.cpu p) ~eip (fun () ->
      Cpu.load32 (Platform.cpu p)
        (tcb.Tcb.region_base + Tasks.data_cell_offset telf + (4 * index)))

let load_exn p ?priority ?secure name telf =
  match Platform.load_blocking p ~name ?priority ?secure telf with
  | Ok tcb -> tcb
  | Error e -> failwith (name ^ ": " ^ e)

(* ------------------------------------------------------------------ *)
(* Table 1 / Figure 2: the adaptive-cruise-control use case            *)
(* ------------------------------------------------------------------ *)

(* t0 (engine control) and t1 (pedal monitor) run at the 1.5 kHz tick;
   t2 (radar monitor) is loaded on demand, sized so that loading takes
   ~27.8 ms; rates must hold in all three phases. *)

let pedal_addr = 0xF100_0000
let radar_addr = 0xF100_0010
let actuator_addr = 0xF100_0020

let use_case_platform () =
  let p = Platform.create () in
  ignore
    (Platform.attach_sensor p ~name:"pedal" ~base:pedal_addr
       ~sample:(fun ~cycles -> 40 + (cycles / 1_000_000 mod 20)));
  ignore
    (Platform.attach_sensor p ~name:"radar" ~base:radar_addr
       ~sample:(fun ~cycles -> 10 + (cycles / 2_000_000 mod 10)));
  ignore (Platform.attach_console p ~base:actuator_addr);
  p

(* Pad t2 so its load spans ~27.8 ms at 48 MHz (1.33 M cycles). *)
let radar_pad = 1385

let table1 ~interruptible () =
  let p = use_case_platform () in
  let t0_telf = Tasks.cruise_controller ~actuator_addr in
  let t0 = load_exn p ~priority:5 "t0-engine" t0_telf in
  let rtm = Option.get (Platform.rtm p) in
  let t0_id = (Option.get (Rtm.find_by_tcb rtm t0)).Rtm.id in
  let t1_telf =
    Tasks.sensor_feeder ~sensor_addr:pedal_addr ~controller:t0_id ~tag:1 ()
  in
  let t1 = load_exn p ~priority:4 "t1-pedal" t1_telf in
  let t2_telf =
    Tasks.sensor_feeder ~sensor_addr:radar_addr ~controller:t0_id ~tag:2
      ~pad_instructions:radar_pad ()
  in
  let clock = Platform.clock p in
  let rate_of phase_cycles t telf = khz ~events:(data_word p t telf 0) ~cycles:phase_cycles in
  let snapshot () = (data_word p t1 t1_telf 0, data_word p t0 t0_telf 0) in
  let phase ticks =
    let s1, s0 = snapshot () in
    let c = Cycles.now clock in
    Platform.run_ticks p ticks;
    let e1, e0 = snapshot () in
    let dc = Cycles.now clock - c in
    ( khz ~events:(e1 - s1) ~cycles:dc,
      khz ~events:(e0 - s0) ~cycles:dc )
  in
  ignore rate_of;
  let phase_ticks = if !smoke then 12 else 60 in
  (* Phase 1: before loading t2. *)
  Platform.run_ticks p 5 (* warm-up *);
  let before_t1, before_t0 = phase phase_ticks in
  (* Phase 2: while loading t2. *)
  let load_start = Cycles.now clock in
  let s1, s0 = snapshot () in
  let t2 =
    if interruptible then begin
      Platform.submit_load p ~name:"t2-radar" t2_telf;
      let rec wait guard =
        if guard = 0 then failwith "t2 load did not finish"
        else
          match Kernel.find_task_by_name (Platform.kernel p) "t2-radar" with
          | Some tcb -> tcb
          | None ->
              Platform.run_ticks p 1;
              wait (guard - 1)
      in
      wait 500
    end
    else load_exn p ~priority:4 "t2-radar" t2_telf
  in
  let e1, e0 = snapshot () in
  let load_cycles = Cycles.now clock - load_start in
  let while_t1 = khz ~events:(e1 - s1) ~cycles:load_cycles in
  let while_t0 = khz ~events:(e0 - s0) ~cycles:load_cycles in
  (* Phase 3: after loading t2. *)
  let s2 = data_word p t2 t2_telf 0 in
  let s1, s0 = snapshot () in
  let c = Cycles.now clock in
  Platform.run_ticks p phase_ticks;
  let dc = Cycles.now clock - c in
  let after_t1 = khz ~events:(data_word p t1 t1_telf 0 - s1) ~cycles:dc in
  let after_t0 = khz ~events:(data_word p t0 t0_telf 0 - s0) ~cycles:dc in
  let after_t2 = khz ~events:(data_word p t2 t2_telf 0 - s2) ~cycles:dc in
  (before_t1, before_t0, while_t1, while_t0, after_t1, after_t2, after_t0,
   load_cycles)

let run_table1 () =
  hr "Table 1 — use-case evaluation (task rates, kHz)";
  let b1, b0, w1, w0, a1, a2, a0, load_cycles = table1 ~interruptible:true () in
  row "Task                 t1       t2       t0\n";
  row "Before loading t2    %.1f kHz  —        %.1f kHz\n" b1 b0;
  row "While loading t2     %.1f kHz  —        %.1f kHz\n" w1 w0;
  row "After loading t2     %.1f kHz  %.1f kHz  %.1f kHz\n" a1 a2 a0;
  row "(loading t2 took %.1f ms = %d cycles; paper: 27.8 ms)\n"
    (Cycles.to_ms load_cycles) load_cycles;
  record ~table:"table1" ~label:"load-t2" load_cycles;
  hr "Table 1 ablation — non-interruptible loader";
  let _, _, w1', w0', _, _, _, load_cycles' = table1 ~interruptible:false () in
  row "While loading t2     %.1f kHz  —        %.1f kHz   (deadlines MISSED)\n" w1' w0';
  row "(atomic load blocked the CPU for %.1f ms)\n" (Cycles.to_ms load_cycles')

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: context save / restore                              *)
(* ------------------------------------------------------------------ *)

(* Drive the platform until the given task is current, then measure the
   installed context ops directly on the live machine state. *)
let run_until_current p (tcb : Tcb.t) =
  let kernel = Platform.kernel p in
  let rec go guard =
    if guard = 0 then failwith "task never became current"
    else if Kernel.current kernel = Some tcb && tcb.Tcb.state = Tcb.Running
    then ()
    else begin
      ignore (Platform.run p ~cycles:200);
      go (guard - 1)
    end
  in
  go 10_000

let measure_context_path ~secure =
  let p = Platform.create () in
  let telf = if secure then Tasks.busy_loop () else Tasks.busy_loop ~secure:false () in
  let tcb = load_exn p ~secure "subject" telf in
  run_until_current p tcb;
  let kernel = Platform.kernel p in
  let cpu = Platform.cpu p in
  let clock = Platform.clock p in
  let ops = Kernel.context_ops kernel in
  let gprs = Regfile.all_gprs (Cpu.regs cpu) in
  let (), save_cycles = Cycles.measure clock (fun () -> ops.Context.save tcb gprs) in
  (* Restore: the host part charges, then (for secure tasks) the entry
     routine executes as guest code; count until the task body resumes. *)
  let (), host_restore = Cycles.measure clock (fun () -> ops.Context.restore tcb) in
  let before_guest = Cycles.now clock in
  (* Step until the saved EIP has been reinstated (IRET executed) for
     secure tasks; normal restores complete host-side. *)
  let guest_cycles =
    if secure then begin
      let target_reached () =
        let eip = Regfile.eip (Cpu.regs cpu) in
        eip >= tcb.Tcb.code_base + (Toolchain.entry_stub_instructions * Isa.width)
        || eip < tcb.Tcb.code_base
      in
      let rec go guard =
        if guard = 0 then failwith "stub never finished"
        else if target_reached () then ()
        else begin
          ignore (Cpu.step cpu);
          go (guard - 1)
        end
      in
      go 100;
      Cycles.now clock - before_guest
    end
    else 0
  in
  (save_cycles, host_restore, guest_cycles)

let run_tables_2_3 () =
  let sec_save, sec_host_restore, sec_guest = measure_context_path ~secure:true in
  let base_save, base_restore, _ = measure_context_path ~secure:false in
  hr "Table 2 — saving the context of a secure task (clock cycles)";
  row "Store context   Wipe registers   Branch   Overall   Overhead\n";
  row "%-15d %-16d %-8d %-9d %d\n" Cost_model.int_mux_store_context
    Cost_model.int_mux_wipe_registers Cost_model.int_mux_branch sec_save
    (sec_save - base_save);
  row "(unmodified FreeRTOS save: %d cycles; paper: 38/16/41 = 95, overhead 57)\n"
    base_save;
  record ~table:"table2" ~label:"secure-save" sec_save;
  record ~table:"table2" ~label:"save-overhead" (sec_save - base_save);
  hr "Table 3 — restoring the context of a secure task (clock cycles)";
  let restore_part = sec_host_restore - Cost_model.int_mux_restore_branch + sec_guest in
  row "Branch   Restore   Overall   Overhead\n";
  row "%-8d %-9d %-9d %d\n" Cost_model.int_mux_restore_branch restore_part
    (sec_host_restore + sec_guest)
    (sec_host_restore + sec_guest - base_restore);
  row "(unmodified FreeRTOS restore: %d cycles; paper: 106/254 = 384, overhead 130)\n"
    base_restore;
  record ~table:"table3" ~label:"secure-restore" (sec_host_restore + sec_guest);
  record ~table:"table3" ~label:"restore-overhead"
    (sec_host_restore + sec_guest - base_restore)

(* ------------------------------------------------------------------ *)
(* Table 4: creating a task                                            *)
(* ------------------------------------------------------------------ *)

let create_cost ~platform ~secure telf =
  let clock = Platform.clock platform in
  let name = if secure then "t-secure" else "t-normal" in
  let _, total =
    Cycles.measure clock (fun () -> ignore (load_exn platform ~secure name telf))
  in
  (total, Loader.last_report (Platform.loader platform))

let run_table4 () =
  hr "Table 4 — creating a task (9 relocations, ~3 962-byte footprint; clock cycles)";
  let telf () = Toolchain.synthetic_secure ~image_size:3768 ~reloc_count:9 ~stack_size:128 in
  let tytan = Platform.create () in
  let sec_total, sec_phases = create_cost ~platform:tytan ~secure:true (telf ()) in
  let norm_total, norm_phases = create_cost ~platform:tytan ~secure:false (telf ()) in
  let baseline = Platform.create ~config:Platform.baseline_config () in
  let base_total, _ = create_cost ~platform:baseline ~secure:false (telf ()) in
  let part phases name = Option.value ~default:0 (List.assoc_opt name phases) in
  row "Task type   Relocation   EA-MPU   RTM       Overall   Overhead\n";
  row "Secure      %-12d %-8d %-9d %-9d %d\n" (part sec_phases "relocation")
    (part sec_phases "ea-mpu") (part sec_phases "rtm") sec_total
    (sec_total - base_total);
  row "Normal      %-12d %-8d %-9d %-9d %d\n" (part norm_phases "relocation")
    (part norm_phases "ea-mpu") (part norm_phases "rtm") norm_total
    (norm_total - base_total);
  record ~table:"table4" ~label:"create-secure" sec_total;
  record ~table:"table4" ~label:"create-normal" norm_total;
  record ~table:"table4" ~label:"create-baseline" base_total;
  row "(unmodified FreeRTOS creation: %d cycles;\n" base_total;
  row " paper: secure 3 692/225/433 433 = 642 241 overhead 437 380;\n";
  row "        normal 3 692/225/0 = 208 808 overhead 3 917)\n"

(* ------------------------------------------------------------------ *)
(* Table 5: relocation vs number of addresses                          *)
(* ------------------------------------------------------------------ *)

let run_table5 () =
  hr "Table 5 — relocation cost vs addresses changed (clock cycles)";
  row "# of addresses   Runtime (min)   Runtime (avg)\n";
  List.iter
    (fun n ->
      let runs =
        List.map
          (fun _seed ->
            let p = Platform.create () in
            let telf =
              Toolchain.synthetic_secure ~image_size:1024 ~reloc_count:n
                ~stack_size:128
            in
            ignore (load_exn p (Printf.sprintf "r%d" n) telf);
            Option.value ~default:0
              (List.assoc_opt "relocation" (Loader.last_report (Platform.loader p))))
          [ 1; 2; 3 ]
      in
      let minimum = List.fold_left min max_int runs in
      let avg = List.fold_left ( + ) 0 runs / List.length runs in
      record ~table:"table5" ~label:(Printf.sprintf "relocs-%d-avg" n) avg;
      row "%-16d %-15d %d\n" n minimum avg)
    [ 0; 1; 2; 4 ];
  row "(paper: 0→37/37, 1→673/703, 2→1 346/1 372, 4→2 634/2 711)\n"

(* ------------------------------------------------------------------ *)
(* Table 6: EA-MPU configuration vs free-slot position                 *)
(* ------------------------------------------------------------------ *)

let run_table6 () =
  hr "Table 6 — configuring the EA-MPU vs position of the first free slot (18 slots; clock cycles)";
  row "Free slot   Finding free slot   Policy check   Writing rule   Overall\n";
  List.iter
    (fun position ->
      let clock = Cycles.create () in
      let eampu = Tytan_eampu.Eampu.create ~slots:18 () in
      let mpu = Mpu_driver.create eampu clock ~code_eip:0x100 in
      (* Occupy slots before the target position. *)
      for i = 0 to position - 2 do
        Tytan_eampu.Eampu.set_slot eampu i
          (Some
             (Tytan_eampu.Eampu.Exec
                {
                  region =
                    Tytan_eampu.Region.make ~base:(0x10000 + (i * 0x200)) ~size:0x100;
                  entry = None;
                }))
      done;
      let rule =
        Tytan_eampu.Eampu.Exec
          { region = Tytan_eampu.Region.make ~base:0x90000 ~size:0x100; entry = None }
      in
      let _, overall = Cycles.measure clock (fun () -> Mpu_driver.install_rule mpu rule) in
      let find =
        Cost_model.eampu_find_slot_base
        + ((position - 1) * Cost_model.eampu_find_slot_step)
      in
      record ~table:"table6" ~label:(Printf.sprintf "free-slot-%d" position)
        overall;
      row "%-11d %-19d %-14d %-14d %d\n" position find
        Cost_model.eampu_policy_check Cost_model.eampu_write_rule overall)
    [ 1; 2; 18 ];
  row "(paper: 1→76+824+225=1 125, 2→95…=1 144, 18→399…=1 448)\n"

(* ------------------------------------------------------------------ *)
(* Table 7: measuring a task                                           *)
(* ------------------------------------------------------------------ *)

let bare_rtm () =
  let mem = Memory.create ~size:0x40000 in
  let clock = Cycles.create () in
  let engine = Exception_engine.create mem ~idt_base:0x100 in
  let cpu = Cpu.create mem clock engine in
  (mem, clock, Rtm.create cpu ~code_eip:0x500)

let measured_cost ~blocks ~relocs =
  let mem, clock, rtm = bare_rtm () in
  let telf =
    Builder.synthetic ~image_size:(blocks * 64) ~reloc_count:relocs ~stack_size:128 ()
  in
  let image = Bytes.copy telf.Telf.image in
  Relocate.apply ~base:0x2000 ~image ~relocations:telf.Telf.relocations;
  Memory.blit_bytes mem 0x2000 image;
  snd (Cycles.measure clock (fun () -> ignore (Rtm.measure rtm ~base:0x2000 ~telf)))

let run_table7 () =
  hr "Table 7 — measuring a task (clock cycles)";
  row "Memory size   Runtime        # of addresses   Revert runtime\n";
  let sizes = [ 1; 2; 4; 8 ] and addresses = [ 0; 1; 2; 4 ] in
  List.iter2
    (fun blocks addrs ->
      let by_blocks = measured_cost ~blocks ~relocs:0 in
      (* The revert column is isolated by differencing two measurements of
         the same 4-block task, plus the fixed revert cost common to
         both. *)
      let with_addrs = measured_cost ~blocks:4 ~relocs:addrs in
      let without = measured_cost ~blocks:4 ~relocs:0 in
      let revert_runtime = Cost_model.rtm_revert_base + (with_addrs - without) in
      record ~table:"table7" ~label:(Printf.sprintf "measure-%d-blocks" blocks)
        by_blocks;
      row "%d block(s)    %-14d %-16d %d\n" blocks by_blocks addrs revert_runtime)
    sizes addresses;
  row "(paper: blocks 1/2/4/8 → 8 261/12 200/20 078/35 790;\n";
  row " addresses 0/1/2/4 → 114/680/1 188/2 187;\n";
  row " formula T ≈ 4 300 + b·3 933 + 114 + a·518)\n"

(* Table 7 also notes the runtime depends on "the number of
   interruptions of the RTM task during measuring t".  Reproduce that:
   the same measurement performed atomically vs. interleaved with a
   running high-priority task (the RTM preempted at every tick). *)
let run_table7_interruptions () =
  hr "Table 7 supplement — measurement under interruption";
  let image_size = 3832 and relocs = 9 in
  (* Atomic: blocking load on an otherwise idle platform. *)
  let atomic =
    let p = Platform.create () in
    ignore
      (load_exn p "t"
         (Toolchain.synthetic_secure ~image_size ~reloc_count:relocs
            ~stack_size:128));
    Option.value ~default:0
      (List.assoc_opt "rtm" (Loader.last_report (Platform.loader p)))
  in
  (* Interrupted: loaded by the service task while a high-priority task
     claims every tick. *)
  let interrupted, preemptions =
    let p = Platform.create () in
    ignore (load_exn p ~priority:5 "hog" (Tasks.counter ()));
    Platform.submit_load p ~name:"t"
      (Toolchain.synthetic_secure ~image_size ~reloc_count:relocs
         ~stack_size:128);
    let before_ticks = Kernel.tick_count (Platform.kernel p) in
    let rec wait guard =
      if guard = 0 then failwith "load never finished"
      else if Kernel.find_task_by_name (Platform.kernel p) "t" <> None then ()
      else begin
        Platform.run_ticks p 1;
        wait (guard - 1)
      end
    in
    wait 500;
    ( Option.value ~default:0
        (List.assoc_opt "rtm" (Loader.last_report (Platform.loader p))),
      Kernel.tick_count (Platform.kernel p) - before_ticks )
  in
  row "measurement (atomic)                 %d cycles\n" atomic;
  row "measurement (preempted, ~%d ticks)   %d cycles of RTM work\n"
    preemptions interrupted;
  row "wall-clock stretch while preempted: the RTM work itself stays\n";
  row "constant (%+d cycles); the elapsed time grows with interruptions —\n"
    (interrupted - atomic);
  row "measurement is interruptible without being corrupted\n"

(* ------------------------------------------------------------------ *)
(* Table 8: memory consumption                                         *)
(* ------------------------------------------------------------------ *)

let run_table8 () =
  hr "Table 8 — memory consumption of the OS (bytes)";
  let tytan = Platform.create () in
  let baseline = Platform.create ~config:Platform.baseline_config () in
  let f = Platform.os_memory_bytes baseline in
  let t = Platform.os_memory_bytes tytan in
  row "FreeRTOS      TyTAN         Overhead\n";
  row "%-13d %-13d %.2f %%\n" f t (100.0 *. float_of_int (t - f) /. float_of_int f);
  record ~table:"table8" ~label:"os-bytes-freertos" f;
  record ~table:"table8" ~label:"os-bytes-tytan" t;
  row "(paper: 215 617 / 249 943 / 15.92 %%)\n";
  row "\nTyTAN component breakdown:\n";
  List.iter
    (fun (name, region) ->
      if name <> "idt" && name <> "kp" then
        row "  %-16s %7d bytes\n" name (Tytan_eampu.Region.size region))
    (Platform.memory_map tytan)

(* ------------------------------------------------------------------ *)
(* Section 6 in-text: secure IPC cost                                  *)
(* ------------------------------------------------------------------ *)

let run_ipc_bench () =
  hr "Secure IPC (Section 6 in-text numbers; clock cycles)";
  let config = { Platform.default_config with trace_enabled = true } in
  let p = Platform.create ~config () in
  let rtelf = Tasks.ipc_receiver () in
  let receiver = load_exn p "recv" rtelf in
  let rtm = Option.get (Platform.rtm p) in
  let rid = (Option.get (Rtm.find_by_tcb rtm receiver)).Rtm.id in
  let stelf = Tasks.ipc_sender ~receiver:rid ~message0:5 () in
  ignore (load_exn p "send" stelf);
  Platform.run_ticks p 8;
  let trace = Platform.trace p in
  let handoff =
    match Trace.find trace ~source:"ipc" ~substring:"send -> recv" with
    | Some e -> e.Trace.at_cycle
    | None -> failwith "no IPC delivery traced"
  in
  let done_cycle =
    match
      List.find_opt
        (fun e ->
          e.Trace.source = "kernel" && e.Trace.at_cycle > handoff
          && e.Trace.detail = "swi 4 from recv")
        (Trace.events trace)
    with
    | Some e -> e.Trace.at_cycle
    | None -> failwith "no IPC-done traced"
  in
  row "IPC proxy                       %d cycles\n" Cost_model.ipc_proxy_total;
  row "  origin lookup %d + sender %d + receiver %d + copy %d + finish %d\n"
    Cost_model.ipc_origin_lookup Cost_model.ipc_sender_lookup
    Cost_model.ipc_receiver_lookup Cost_model.ipc_copy_message
    Cost_model.ipc_finish;
  row "Receiver entry routine+handler  %d cycles (measured)\n" (done_cycle - handoff);
  row "Overall                         %d cycles\n"
    (Cost_model.ipc_proxy_total + done_cycle - handoff);
  record ~table:"ipc" ~label:"overall"
    (Cost_model.ipc_proxy_total + done_cycle - handoff);
  row "(paper: proxy 1 208 + entry routine 116 = 1 324)\n"

(* ------------------------------------------------------------------ *)
(* Ablation: full-hash identity vs 64-bit truncation                   *)
(* ------------------------------------------------------------------ *)

let run_ablations () =
  hr "Ablation — identity width (footnote 9)";
  (* The 64-bit identity travels in 2 registers; a 160-bit identity would
     need 5, displacing message payload words.  Report the register
     budget. *)
  row "64-bit identity: 2 registers for idR, 8 payload words per message\n";
  row "160-bit identity: 5 registers for idR, 5 payload words per message\n";
  hr "Ablation — hardware context save (Section 4 alternative)";
  (* "saving the task's context to its stack can be implemented in
     hardware, reducing latency at the cost of additional hardware". *)
  row "Software Int Mux save: %d cycles\n"
    (Cost_model.int_mux_store_context + Cost_model.int_mux_wipe_registers
   + Cost_model.int_mux_branch);
  row "Hardware-assisted save (store at exception-entry speed): %d cycles\n"
    (Exception_engine.entry_cost + Cost_model.int_mux_wipe_registers
   + Cost_model.int_mux_branch)

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks, one per table                  *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let table1 =
    Test.make ~name:"table1-use-case-tick"
      (Staged.stage
         (let p = use_case_platform () in
          let telf = Tasks.counter () in
          ignore (load_exn p "c" telf);
          fun () -> Platform.run_ticks p 1))
  in
  let table2_3 =
    Test.make ~name:"table2/3-context-switch"
      (Staged.stage
         (let p = Platform.create () in
          let tcb = load_exn p "b" (Tasks.busy_loop ()) in
          run_until_current p tcb;
          let kernel = Platform.kernel p in
          let cpu = Platform.cpu p in
          let ops = Kernel.context_ops kernel in
          let sp0 = Regfile.get (Cpu.regs cpu) Regfile.sp in
          fun () ->
            (* keep the stack depth steady across iterations *)
            Regfile.set (Cpu.regs cpu) Regfile.sp sp0;
            let gprs = Regfile.all_gprs (Cpu.regs cpu) in
            ops.Context.save tcb gprs;
            ops.Context.restore tcb))
  in
  let table4 =
    Test.make ~name:"table4-create-secure-task"
      (Staged.stage
         (let p = Platform.create () in
          let counter = ref 0 in
          fun () ->
            incr counter;
            let telf =
              Toolchain.synthetic_secure ~image_size:3768 ~reloc_count:9
                ~stack_size:128
            in
            match
              Platform.load_blocking p ~name:(Printf.sprintf "t%d" !counter) telf
            with
            | Ok tcb -> Platform.unload p tcb
            | Error e -> failwith e))
  in
  let table5 =
    Test.make ~name:"table5-relocation"
      (Staged.stage
         (let telf =
            Builder.synthetic ~image_size:1024 ~reloc_count:4 ~stack_size:128 ()
          in
          fun () ->
            let image = Bytes.copy telf.Telf.image in
            Relocate.apply ~base:0x4000 ~image ~relocations:telf.Telf.relocations;
            Relocate.revert ~base:0x4000 ~image ~relocations:telf.Telf.relocations))
  in
  let table6 =
    Test.make ~name:"table6-eampu-config"
      (Staged.stage
         (let clock = Cycles.create () in
          let eampu = Tytan_eampu.Eampu.create ~slots:18 () in
          let mpu = Mpu_driver.create eampu clock ~code_eip:0x100 in
          fun () ->
            (match
               Mpu_driver.install_rule mpu
                 (Tytan_eampu.Eampu.Exec
                    {
                      region = Tytan_eampu.Region.make ~base:0x90000 ~size:0x100;
                      entry = None;
                    })
             with
            | Ok slot -> Mpu_driver.remove_slot mpu slot
            | Error e -> failwith e)))
  in
  let table7 =
    Test.make ~name:"table7-measurement"
      (Staged.stage
         (let mem, _clock, rtm = bare_rtm () in
          let telf =
            Builder.synthetic ~image_size:512 ~reloc_count:4 ~stack_size:128 ()
          in
          let image = Bytes.copy telf.Telf.image in
          Relocate.apply ~base:0x2000 ~image ~relocations:telf.Telf.relocations;
          Memory.blit_bytes mem 0x2000 image;
          fun () -> ignore (Rtm.measure rtm ~base:0x2000 ~telf)))
  in
  let table8 =
    Test.make ~name:"table8-boot-accounting"
      (Staged.stage (fun () -> ignore (Platform.os_memory_bytes (Platform.create ()))))
  in
  let ipc =
    Test.make ~name:"ipc-roundtrip"
      (Staged.stage
         (let p = Platform.create () in
          let rtelf = Tasks.ipc_receiver () in
          let receiver = load_exn p "recv" rtelf in
          let rtm = Option.get (Platform.rtm p) in
          let rid = (Option.get (Rtm.find_by_tcb rtm receiver)).Rtm.id in
          let stelf = Tasks.ipc_sender ~receiver:rid ~repeat:true () in
          ignore (load_exn p "send" stelf);
          fun () -> Platform.run_ticks p 1))
  in
  [ table1; table2_3; table4; table5; table6; table7; table8; ipc ]

let run_bechamel () =
  hr "Bechamel wall-clock microbenchmarks (host time, not simulated cycles)";
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> row "%-32s %12.0f ns/run\n" name est
          | Some _ | None -> row "%-32s (no estimate)\n" name)
        results)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Real-time compliance: bounded execution time of every primitive     *)
(* ------------------------------------------------------------------ *)

(* The paper's central claim (§6: "all of TyTAN's components are
   real-time compliant") means every trusted primitive either yields or
   finishes within a bounded, tick-sized budget.  This check measures
   the worst observed atom of each primitive and compares it against the
   1.5 kHz tick period. *)
let run_realtime_compliance () =
  hr "Real-time compliance — worst-case primitive atoms vs the tick period";
  let p = Platform.create () in
  let tick = (Platform.config p).Platform.tick_period in
  let loader = Platform.loader p in
  Loader.reset_step_stats loader;
  (* A large secure load exercises every loader phase. *)
  let big = Toolchain.synthetic_secure ~image_size:32_768 ~reloc_count:16 ~stack_size:512 in
  ignore (load_exn p "big" big);
  let save =
    Cost_model.int_mux_store_context + Cost_model.int_mux_wipe_registers
    + Cost_model.int_mux_branch
  in
  let restore = Cost_model.int_mux_restore_branch + Cost_model.int_mux_restore_assist + 40 in
  let eampu_worst =
    Cost_model.eampu_find_slot_base + (31 * Cost_model.eampu_find_slot_step)
    + Cost_model.eampu_policy_check + Cost_model.eampu_write_rule
  in
  let atoms =
    [
      ("interrupt entry (hardware)", Exception_engine.entry_cost);
      ("secure context save (Int Mux)", save);
      ("secure context restore", restore);
      ("EA-MPU rule install (worst slot)", eampu_worst);
      ("RTM measurement step (one block)", Cost_model.rtm_per_block);
      ("IPC proxy (whole delivery)", Cost_model.ipc_proxy_total);
      ("loader step (worst observed)", Loader.max_step_cycles loader);
      ("live-update swap", Cost_model.update_swap_base);
    ]
  in
  row "%-36s %10s   %s\n" "primitive atom" "cycles" "within tick (32 000)?";
  List.iter
    (fun (name, cycles) ->
      row "%-36s %10d   %s\n" name cycles
        (if cycles < tick then "yes" else "NO — BOUND VIOLATED"))
    atoms;
  let worst = List.fold_left (fun m (_, c) -> max m c) 0 atoms in
  record ~table:"realtime" ~label:"worst-atom" worst;
  row "worst atom = %d cycles = %.1f %% of the tick period\n" worst
    (100.0 *. float_of_int worst /. float_of_int tick)

(* ------------------------------------------------------------------ *)
(* Ablation: measurement hash algorithm (paper footnote 8)             *)
(* ------------------------------------------------------------------ *)

(* "We use SHA-1 but other hash algorithms can also be used."  Both
   SHA-1 and SHA-256 work on 64-byte blocks, so the RTM's interruption
   granularity and linear shape are identical; what changes is the
   per-block compression cost.  We derive the relative cost from the
   real host-side arithmetic volume (operations per compression). *)
let run_hash_ablation () =
  hr "Ablation — measurement hash algorithm (footnote 8)";
  (* SHA-1: 80 rounds of ~6 ops; SHA-256: 64 rounds of ~11 ops plus a
     costlier schedule: on MCU-class cores SHA-256 compressions land at
     roughly 1.45x SHA-1 (e.g. XTensa/Cortex-M bench folklore). *)
  let sha1_block = Cost_model.rtm_per_block in
  let sha256_block = sha1_block * 145 / 100 in
  row "algorithm   digest   cycles/block   3962-B task measurement\n";
  let blocks = (3768 + 63) / 64 in
  row "SHA-1       20 B     %-14d %d\n" sha1_block
    (Cost_model.rtm_measure_base + (blocks * sha1_block));
  row "SHA-256     32 B     %-14d %d\n" sha256_block
    (Cost_model.rtm_measure_base + (blocks * sha256_block));
  row "(same 64-byte interruption unit; identity and IPC field sizes\n";
  row " grow from 8 to up to 32 bytes unless truncated)\n"

(* ------------------------------------------------------------------ *)
(* Scheduling jitter: tick-to-task latency distribution                *)
(* ------------------------------------------------------------------ *)

(* Real-time behaviour is about the distribution, not just the mean: how
   many cycles pass between the tick deadline and the moment the
   highest-priority task actually runs again, across hundreds of ticks
   and under background load (lower-priority busy task + loader
   activity). *)
let run_jitter () =
  hr "Scheduling jitter — tick-to-dispatch latency of the top-priority task";
  let p = Platform.create () in
  let clock = Platform.clock p in
  let tick = (Platform.config p).Platform.tick_period in
  let telf = Tasks.counter () in
  let subject = load_exn p ~priority:5 "subject" telf in
  ignore (load_exn p ~priority:2 "background" (Tasks.busy_loop ()));
  Platform.submit_load p ~name:"churn"
    (Toolchain.synthetic_secure ~image_size:16_384 ~reloc_count:8 ~stack_size:256);
  (* Sample the activation instants of the subject task: run in small
     cycle quanta and record the cycle at which its activation counter
     increments. *)
  let samples = ref [] in
  let last_activations = ref subject.Tcb.activations in
  let last_instant = ref (Cycles.now clock) in
  let window_ticks = if !smoke then 60 else 400 in
  let deadline = Cycles.now clock + (window_ticks * tick) in
  while Cycles.now clock < deadline do
    ignore (Platform.run p ~cycles:200);
    if subject.Tcb.activations > !last_activations then begin
      let now = Cycles.now clock in
      if !last_activations > 0 then samples := (now - !last_instant) :: !samples;
      last_activations := subject.Tcb.activations;
      last_instant := now
    end
  done;
  let periods = !samples in
  let n = List.length periods in
  let minimum = List.fold_left min max_int periods in
  let maximum = List.fold_left max 0 periods in
  let mean = List.fold_left ( + ) 0 periods / max 1 n in
  row "%d activation periods sampled under load (tick = %d cycles)\n" n tick;
  row "period min/mean/max = %d / %d / %d cycles\n" minimum mean maximum;
  row "worst jitter vs the tick: %+d cycles (%.2f %% of the period)\n"
    (maximum - tick)
    (100.0 *. float_of_int (maximum - tick) /. float_of_int tick);
  row "%s\n"
    (if maximum - tick < tick / 10 then
       "=> bounded: every activation lands within 10% of its deadline"
     else "=> JITTER BOUND EXCEEDED")

(* ------------------------------------------------------------------ *)
(* Ablation: EA-MPU slot budget vs number of loadable secure tasks     *)
(* ------------------------------------------------------------------ *)

let run_slot_capacity () =
  hr "Ablation — EA-MPU slot count vs loadable secure tasks";
  row "slots   boot rules   secure tasks loadable (5 rules each)\n";
  List.iter
    (fun slots ->
      let config = { Platform.default_config with eampu_slots = slots } in
      let p = Platform.create ~config () in
      let boot_rules =
        Tytan_eampu.Eampu.used_slots (Option.get (Platform.eampu p))
      in
      let rec load n =
        match
          Platform.load_blocking p ~name:(Printf.sprintf "t%d" n) (Tasks.counter ())
        with
        | Ok _ -> load (n + 1)
        | Error _ -> n
      in
      row "%-7d %-12d %d\n" slots boot_rules (load 0))
    (if !smoke then [ 12; 18; 32 ] else [ 12; 18; 24; 32; 64 ]);
  row "(the paper's 18-slot unit fits its 3-task use case; richer task\n";
  row " mixes need a larger unit — a hardware sizing guide)\n"

(* ------------------------------------------------------------------ *)
(* Related-work comparison (paper section 7)                           *)
(* ------------------------------------------------------------------ *)

(* The paper positions TyTAN against SMART, SPM, SANCUS and TrustLite.
   Most of those differences are architectural capabilities; the one we
   can demonstrate executably is TrustLite's static configuration: the
   same runtime-loading request succeeds on TyTAN and is rejected on a
   sealed static platform. *)
let run_related_work () =
  hr "Related-work positioning (section 7)";
  row "%-11s %-22s %-12s %-13s %-10s\n" "system" "isolation" "interrupts"
    "dynamic load" "secure IPC";
  row "%-11s %-22s %-12s %-13s %-10s\n" "SMART" "one ROM task" "no" "no" "no";
  row "%-11s %-22s %-12s %-13s %-10s\n" "SPM" "per-task (fixed)" "no" "no" "no";
  row "%-11s %-22s %-12s %-13s %-10s\n" "SANCUS" "per-task + keys" "no" "no" "no";
  row "%-11s %-22s %-12s %-13s %-10s\n" "TrustLite" "EA-MPU (boot-time)" "yes" "no" "no";
  row "%-11s %-22s %-12s %-13s %-10s\n" "TyTAN" "EA-MPU (dynamic)" "yes" "yes" "yes";
  (* Executable demonstration of the TrustLite row. *)
  let static = Platform.create ~config:Platform.trustlite_config () in
  ignore (load_exn static "boot-task" (Tasks.counter ()));
  Platform.finish_boot static;
  let rejected =
    Result.is_error
      (Platform.load_blocking static ~name:"late" (Tasks.counter ()))
  in
  let dynamic = Platform.create () in
  let accepted =
    Result.is_ok (Platform.load_blocking dynamic ~name:"late" (Tasks.counter ()))
  in
  row "demonstrated: runtime load rejected on the static platform (%b),\n" rejected;
  row "              accepted on TyTAN (%b)\n" accepted

(* ------------------------------------------------------------------ *)
(* Future work: runtime task update                                    *)
(* ------------------------------------------------------------------ *)

let run_update_bench () =
  hr "Extension — runtime task update (paper Section 8 future work)";
  let scenario f =
    let p = Platform.create () in
    let old_task = load_exn p "svc" (Tasks.counter ()) in
    Platform.run_ticks p 5;
    f p old_task
  in
  let live =
    scenario (fun p old_task ->
        match Update.update_task p ~old_task (Tasks.counter ~stack_size:768 ()) with
        | Ok r -> r
        | Error e -> failwith e)
  in
  let naive =
    scenario (fun p old_task ->
        match Update.stop_and_reload p ~old_task (Tasks.counter ~stack_size:768 ()) with
        | Ok r -> r
        | Error e -> failwith e)
  in
  row "Strategy          Downtime (cycles)   Downtime (ms)   Staging (cycles)\n";
  row "live update       %-19d %-15.3f %d\n" live.Update.downtime_cycles
    (Cycles.to_ms live.Update.downtime_cycles)
    live.Update.staging_cycles;
  row "stop-and-reload   %-19d %-15.3f %d\n" naive.Update.downtime_cycles
    (Cycles.to_ms naive.Update.downtime_cycles)
    naive.Update.staging_cycles;
  row "(the old version keeps meeting deadlines during live staging)\n"

(* ------------------------------------------------------------------ *)
(* Control-flow attestation: logging overhead and log growth (lib/cfa) *)
(* ------------------------------------------------------------------ *)

module Monitor = Tytan_cfa.Monitor

(* Cycles for a secure yielder to complete [count] iterations and exit,
   with and without the CFA monitor watching it.  Yield re-queues the
   task immediately, so the subject never idles — the logging cycles
   cannot hide in idle time, and the cycle delta between the two runs
   IS the logging overhead. *)
let cfa_run ~watched ~count =
  let p = Platform.create () in
  let telf = Tasks.yielder ~count () in
  let tcb = load_exn p "subject" telf in
  let mon =
    if watched then begin
      let m = Monitor.create p in
      (match Monitor.watch m ~tcb () with
      | Ok _ -> ()
      | Error e -> failwith e);
      Some m
    end
    else None
  in
  let clock = Platform.clock p in
  let start = Cycles.now clock in
  let guard = ref 500_000 in
  while tcb.Tcb.state <> Tcb.Terminated && !guard > 0 do
    ignore (Platform.run p ~cycles:200);
    decr guard
  done;
  if tcb.Tcb.state <> Tcb.Terminated then failwith "yielder never finished";
  (Cycles.now clock - start, Option.fold ~none:0 ~some:Monitor.events_logged mon)

let run_cfa_bench () =
  hr "Control-flow attestation — per-branch logging cost (lib/cfa)";
  let count = if !smoke then 12 else 48 in
  let plain, _ = cfa_run ~watched:false ~count in
  let logged, events = cfa_run ~watched:true ~count in
  let delta = logged - plain in
  let per_event =
    if events = 0 then 0.0 else float_of_int delta /. float_of_int events
  in
  row "yielder, %d iterations: %d cycles unwatched, %d watched\n" count plain
    logged;
  row "%d control-flow events logged; overhead %d cycles = %.1f cycles/event\n"
    events delta per_event;
  row "(cost model charges a flat %d cycles per logged event)\n"
    Cost_model.cfa_log_event;
  record ~table:"cfa" ~label:"per-event-overhead"
    (int_of_float (Float.round per_event));
  record ~table:"cfa" ~label:"cost-model-cfa-log-event" Cost_model.cfa_log_event;
  row "log growth vs path length (the log is linear in branches taken):\n";
  row "iterations   events   events/iteration\n";
  List.iter
    (fun n ->
      let _, ev = cfa_run ~watched:true ~count:n in
      row "%-12d %-8d %.2f\n" n ev (float_of_int ev /. float_of_int n);
      record ~table:"cfa" ~label:(Printf.sprintf "events-%d-iterations" n) ev)
    (if !smoke then [ 5; 10 ] else [ 10; 20; 40 ])

(* ------------------------------------------------------------------ *)

module Telemetry = Tytan_telemetry.Telemetry

(* Instrumentation overhead: an identical seeded workload — load a
   secure yielder (loader + RTM measurement inside the window) and run
   it to completion — with the telemetry registry disabled vs enabled.
   Disabled must be free; enabled charges Cost_model.telemetry_event /
   telemetry_span per record, an honest modelled price. *)
let telemetry_run ~enabled ~count =
  let config = { Platform.default_config with telemetry_enabled = enabled } in
  let p = Platform.create ~config () in
  let clock = Platform.clock p in
  let start = Cycles.now clock in
  let tcb = load_exn p "subject" (Tasks.yielder ~count ()) in
  let guard = ref 500_000 in
  while tcb.Tcb.state <> Tcb.Terminated && !guard > 0 do
    ignore (Platform.run p ~cycles:200);
    decr guard
  done;
  if tcb.Tcb.state <> Tcb.Terminated then failwith "yielder never finished";
  let tel = Platform.telemetry p in
  ( Cycles.now clock - start,
    Telemetry.events_recorded tel,
    Telemetry.spans_recorded tel )

let run_telemetry_bench () =
  hr "Telemetry — instrumentation overhead (lib/telemetry)";
  let count = if !smoke then 12 else 48 in
  let disabled, _, _ = telemetry_run ~enabled:false ~count in
  let enabled, events, spans = telemetry_run ~enabled:true ~count in
  let delta = enabled - disabled in
  let model =
    (events * Cost_model.telemetry_event)
    + (spans * Cost_model.telemetry_span)
  in
  row "yielder, %d iterations + load: %d cycles disabled, %d enabled\n" count
    disabled enabled;
  row
    "overhead %d cycles for %d events + %d spans; cost model predicts %d\n"
    delta events spans model;
  row "(%d cycles/event, %d cycles/span; disabled registry is cycle-free)\n"
    Cost_model.telemetry_event Cost_model.telemetry_span;
  record ~table:"telemetry" ~label:"disabled" disabled;
  record ~table:"telemetry" ~label:"enabled" enabled;
  record ~table:"telemetry" ~label:"overhead" delta;
  record ~table:"telemetry" ~label:"model-overhead" model

let run_swarm_bench () =
  hr
    "Fleet-scale swarm attestation — scalar vs batched vs incremental \
     verifier (lib/provision)";
  let module Swarm = Tytan_provision.Swarm in
  let sizes = if !smoke then [ 16; 64 ] else [ 16; 256; 2048 ] in
  let epochs = 4 in
  row "N devices, %d epochs, 10%% loss, 6 health polls/epoch; verifier cycles:\n"
    epochs;
  List.iter
    (fun n ->
      let campaign mode =
        Swarm.run ~mode ~devices:n ~epochs ~seed:1 ()
      in
      let scalar = campaign Swarm.Scalar in
      let batched = campaign Swarm.Batched in
      let incremental = campaign Swarm.Incremental in
      if Swarm.verdicts scalar <> Swarm.verdicts batched then
        failwith "swarm bench: scalar/batched verdicts diverged";
      if Swarm.verdicts batched <> Swarm.verdicts incremental then
        failwith "swarm bench: batched/incremental verdicts diverged";
      let ratio =
        float_of_int scalar.Swarm.verifier_cycles
        /. float_of_int (max 1 batched.Swarm.verifier_cycles)
      in
      row
        "  N=%4d: scalar %10d   batched %10d   incremental %10d   (%.1fx, \
         verdicts identical)\n"
        n scalar.Swarm.verifier_cycles batched.Swarm.verifier_cycles
        incremental.Swarm.verifier_cycles ratio;
      record ~table:"fleet" ~label:(Printf.sprintf "scalar-verify-%d" n)
        scalar.Swarm.verifier_cycles;
      record ~table:"fleet" ~label:(Printf.sprintf "batched-verify-%d" n)
        batched.Swarm.verifier_cycles;
      record ~table:"fleet" ~label:(Printf.sprintf "incremental-verify-%d" n)
        incremental.Swarm.verifier_cycles)
    sizes;
  (* Steady state: epoch 0 sweeps the whole fleet, afterwards only the
     ~1% that rebooted (plus anything whose continuity broke) is
     re-challenged — the O(changed) epoch.  The row records the mean
     post-sweep epoch cost; the regression gate holds it an order of
     magnitude under the rebuild-everything batched campaign. *)
  let n = if !smoke then 64 else 2048 in
  let steady =
    Swarm.run ~mode:Swarm.Incremental ~devices:n ~epochs ~seed:1 ~steady:true
      ~churn_permille:10 ()
  in
  let post_sweep =
    List.filter (fun s -> s.Swarm.epoch > 0) steady.Swarm.per_epoch
  in
  let steady_epoch =
    List.fold_left (fun acc s -> acc + s.Swarm.verify_cycles) 0 post_sweep
    / max 1 (List.length post_sweep)
  in
  let carried =
    List.fold_left (fun acc s -> acc + s.Swarm.carried) 0 post_sweep
    / max 1 (List.length post_sweep)
  in
  row
    "  steady N=%4d, 1%% churn: epoch-0 sweep %10d, steady epoch %8d cycles \
     (%d/%d devices carried)\n"
    n
    (match steady.Swarm.per_epoch with s :: _ -> s.Swarm.verify_cycles | [] -> 0)
    steady_epoch carried n;
  record ~table:"fleet"
    ~label:(Printf.sprintf "incremental-steady-epoch-%d" n)
    steady_epoch;
  (* Domain-parallel identity: the sharded run must render bit-for-bit
     the same report as the sequential one.  Recorded as exact-match
     rows (1 = identical) so the regression gate fails on any drift,
     with no tolerance band. *)
  let pn = if !smoke then 32 else 256 in
  let identical mode ~steady ~churn_permille =
    let go domains =
      Swarm.run ~mode ~devices:pn ~epochs ~seed:1 ~domains ~steady
        ~churn_permille ()
    in
    if Swarm.to_string (go 1) = Swarm.to_string (go 4) then 1 else 0
  in
  let batched_id = identical Swarm.Batched ~steady:false ~churn_permille:0 in
  let steady_id =
    identical Swarm.Incremental ~steady:true ~churn_permille:10
  in
  row
    "  domains=4 vs 1 at N=%d: batched %s, incremental-steady %s\n" pn
    (if batched_id = 1 then "bit-identical" else "DIVERGED")
    (if steady_id = 1 then "bit-identical" else "DIVERGED");
  record ~table:"fleet"
    ~label:(Printf.sprintf "parallel-batched-%d-identical" pn)
    batched_id;
  record ~table:"fleet"
    ~label:(Printf.sprintf "parallel-steady-%d-identical" pn)
    steady_id

let run_serve_bench () =
  hr "Verifier gateway under open-loop load — graceful degradation (lib/serve)";
  let module Gateway = Tytan_serve.Gateway in
  let devices = if !smoke then 32 else 128 in
  let slices = if !smoke then 160 else 512 in
  (* Three offered-load levels around the gateway's carrying capacity:
     comfortable, near-saturation, and well past it.  The shed rate is
     the degradation story — past saturation throughput must hold and
     the excess must exit as typed refusals, not latency collapse. *)
  let rates = [ 2000; 8000; 24000 ] in
  let closed_shed = ref 0 in
  row
    "N=%d devices, %d slices of load, 10%% loss; settled/kslice, latency, shed:\n"
    devices slices;
  List.iter
    (fun rate ->
      let r =
        Gateway.run ~devices ~slices ~arrival_permille:rate ~seed:1 ()
      in
      if r.Gateway.max_queue_depth > r.Gateway.queue_bound then
        failwith "serve bench: queue bound violated";
      if Gateway.settled r <> r.Gateway.admitted then
        failwith "serve bench: admitted sessions left unsettled";
      let shed_permille = Gateway.shed r * 1000 / max 1 r.Gateway.arrivals in
      row
        "  rate=%5d/k: throughput %5d/k   p50 %7d   p99 %8d cycles   shed %3d/1000\n"
        rate r.Gateway.throughput_per_kslice r.Gateway.p50_cycles
        r.Gateway.p99_cycles shed_permille;
      record ~table:"serve" ~label:(Printf.sprintf "throughput-%d" rate)
        r.Gateway.throughput_per_kslice;
      record ~table:"serve" ~label:(Printf.sprintf "p50-cycles-%d" rate)
        r.Gateway.p50_cycles;
      record ~table:"serve" ~label:(Printf.sprintf "p99-cycles-%d" rate)
        r.Gateway.p99_cycles;
      record ~table:"serve" ~label:(Printf.sprintf "shed-permille-%d" rate)
        shed_permille;
      (* Closed-loop comparison at the same nominal rate: each device
         waits for its attestation to settle (plus think time) before
         asking again, so the population self-limits instead of
         flooding — the shed rate collapses while throughput holds. *)
      let c =
        Gateway.run ~devices ~slices ~arrival_permille:rate ~seed:1
          ~arrival:(Gateway.Closed_loop { think = 8 }) ()
      in
      if Gateway.settled c <> c.Gateway.admitted then
        failwith "serve bench: closed-loop sessions left unsettled";
      let c_shed = Gateway.shed c * 1000 / max 1 c.Gateway.arrivals in
      closed_shed := c_shed;
      row
        "       closed:  throughput %5d/k   p50 %7d   p99 %8d cycles   shed %3d/1000\n"
        c.Gateway.throughput_per_kslice c.Gateway.p50_cycles c.Gateway.p99_cycles
        c_shed;
      record ~table:"serve" ~label:(Printf.sprintf "closed-shed-permille-%d" rate)
        !closed_shed;
      record ~table:"serve"
        ~label:(Printf.sprintf "closed-throughput-%d" rate)
        c.Gateway.throughput_per_kslice)
    rates;
  row "(open loop sheds the excess as typed refusals; a closed-loop\n";
  row " population never outruns its own unanswered requests)\n"

(* ------------------------------------------------------------------ *)
(* OTA: cycles per update, canary vs flat rollout, rollback latency    *)
(* ------------------------------------------------------------------ *)

module Installer = Tytan_ota.Installer
module Rollout = Tytan_ota.Rollout
module Ota_protocol = Tytan_netsim.Protocol

(* Drive one installer through a whole transfer on a perfect link: the
   device-cycle delta is the pure cost of taking an update — MAC check,
   counter read, staging, digest, six-check vet, swap, counter advance —
   with no retransmission noise. *)
let ota_device_cost ~telf ~version ~initial =
  let ka = Tytan_crypto.Sha1.digest (Bytes.of_string "bench-ota-ka") in
  let clock = Cycles.create () in
  let counter =
    Tytan_machine.Devices.Monotonic_counter.create clock ~name:"ctr"
      ~base:0xF000_6000 ~read_cost:Cost_model.counter_read
      ~increment_cost:Cost_model.counter_increment ~initial ()
  in
  let inst =
    Installer.create ~serial:"bench-dev" ~ka ~clock ~counter
      ~loaded:(Task_id.of_image (Bytes.of_string "incumbent"))
      ()
  in
  let payload = Telf.encode telf in
  let size = Bytes.length payload in
  let digest = Tytan_crypto.Sha1.digest payload in
  let id = Task_id.of_image telf.Telf.image in
  let mac = Attestation.update_mac ~ka ~id ~version ~size ~digest in
  let start = Cycles.now clock in
  let feed m = ignore (Installer.on_frame inst (Ota_protocol.encode m)) in
  feed (Ota_protocol.UpdateOffer { seq = 1; id; version; size; digest; mac });
  let off = ref 0 in
  while !off < size do
    let len = min 128 (size - !off) in
    feed
      (Ota_protocol.UpdateChunk
         { seq = 1; offset = !off; data = Bytes.sub payload !off len });
    off := !off + len
  done;
  (Cycles.now clock - start, inst)

let run_ota_bench () =
  hr "OTA — secure fleet update (lib/ota; clock cycles)";
  (* Cycles per update, by image. *)
  row "image            bytes   device cycles/update   ms @48MHz\n";
  List.iter
    (fun (name, telf) ->
      let size = Bytes.length (Telf.encode telf) in
      let cycles, inst = ota_device_cost ~telf ~version:1 ~initial:0 in
      if Installer.activations inst <> 1 then
        failwith ("ota bench: " ^ name ^ " did not activate");
      row "%-16s %5d   %20d   %.3f\n" name size cycles (Cycles.to_ms cycles);
      record ~table:"ota" ~label:("update-cycles-" ^ name) cycles)
    [
      ("counter", Tasks.counter ());
      ("yielder-8", Tasks.yielder ~count:8 ());
      ("ipc-receiver", Tasks.ipc_receiver ());
    ];
  (* Rollback-refusal latency: a stale offer dies at the door for the
     price of the offer check + MAC verify + counter read — orders of
     magnitude below taking the update. *)
  let applied_cycles, _ =
    ota_device_cost ~telf:(Tasks.counter ()) ~version:1 ~initial:0
  in
  let _, refused =
    ota_device_cost ~telf:(Tasks.counter ()) ~version:1 ~initial:3
  in
  if Installer.rollback_refusals refused <> 1 then
    failwith "ota bench: stale offer was not refused";
  let refusal = Installer.last_refusal_cycles refused in
  row "rollback refusal: %d cycles (%.4f ms) vs %d to take an update (%.0fx cheaper)\n"
    refusal (Cycles.to_ms refusal) applied_cycles
    (float_of_int applied_cycles /. float_of_int (max 1 refusal));
  record ~table:"ota" ~label:"rollback-refusal-cycles" refusal;
  (* Canary vs flat rollout: what the staged gate costs.  The canary
     campaign pays two extra bills — the wave runs in two phases and
     every canary answers a static + CFA attestation before promotion —
     in exchange for bounding any bad wave's blast radius to the canary
     cohort. *)
  let devices = if !smoke then 8 else 16 in
  let platform_key_of ~serial =
    Tytan_crypto.Sha1.digest (Bytes.of_string ("bench-pk:" ^ serial))
  in
  let campaign ~canary =
    Rollout.run ~devices ~canary ~seed:1 ~platform_key_of
      ~incumbent:(Tasks.counter ())
      [ { Rollout.label = "v1"; version = 1; image = Tasks.yielder ~count:3 () } ]
  in
  let canaried = campaign ~canary:(max 1 (devices / 4)) in
  let flat = campaign ~canary:devices in
  let total (r : Rollout.report) =
    r.Rollout.controller_cycles + r.Rollout.device_cycles
  in
  if not (canaried.Rollout.survived && flat.Rollout.survived) then
    failwith "ota bench: rollout campaign lost devices";
  let slices (r : Rollout.report) =
    List.fold_left (fun a (w : Rollout.wave_stats) -> a + w.Rollout.slices) 0
      r.Rollout.waves
  in
  row "rollout (N=%d):  canaried %8d cycles in %3d slices (attests %d devices)\n"
    devices (total canaried) (slices canaried)
    (max 1 (devices / 4));
  row "                flat     %8d cycles in %3d slices (attests all %d)\n"
    (total flat) (slices flat) devices;
  row "(the staged gate re-attests only the cohort — cheaper in cycles —\n";
  row " and pays for its blast-radius bound in wall-clock: the extra phase)\n";
  record ~table:"ota" ~label:"rollout-canaried-cycles" (total canaried);
  record ~table:"ota" ~label:"rollout-flat-cycles" (total flat);
  record ~table:"ota" ~label:"rollout-canaried-slices" (slices canaried);
  record ~table:"ota" ~label:"rollout-flat-slices" (slices flat)

(* ------------------------------------------------------------------ *)
(* Load-time vet: four-check baseline vs six-check flow lint           *)
(* ------------------------------------------------------------------ *)

let run_vet_bench () =
  hr "Load-time vet cost — 4 checks vs 6 (flow + topology; clock cycles)";
  let tasks =
    [
      ("counter", Tasks.counter ());
      ("busy-loop", Tasks.busy_loop ());
      ("ipc-receiver", Tasks.ipc_receiver ());
      ( "ipc-sender",
        Tasks.ipc_sender
          ~receiver:(Task_id.of_image (Bytes.of_string "bench-peer"))
          ~message0:1 () );
      ( "key-leaker",
        Tasks.key_leaker
          ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
          () );
    ]
  in
  row "%-14s %6s %10s %10s %9s\n" "task" "instrs" "vet-4" "vet-6" "overhead";
  List.iter
    (fun (name, telf) ->
      let slots = telf.Telf.text_size / Isa.width in
      let base = Cost_model.vet_base + (Cost_model.vet_per_instruction * slots) in
      let flow =
        Cost_model.vet_base
        + ((Cost_model.vet_per_instruction + Cost_model.vet_flow) * slots)
      in
      row "%-14s %6d %10d %10d %8.1f %%\n" name slots base flow
        (100.0 *. float_of_int (flow - base) /. float_of_int base);
      record ~table:"vet" ~label:(name ^ "-4checks") base;
      record ~table:"vet" ~label:(name ^ "-6checks") flow)
    tasks;
  row "(flow/topology ride the computed dataflow: +%d cycles/instr on the\n"
    Cost_model.vet_flow;
  row " %d cycles/instr four-check base, %d cycles fixed either way)\n"
    Cost_model.vet_per_instruction Cost_model.vet_base

let () =
  let wall = Array.exists (fun a -> a = "--wall") Sys.argv in
  smoke := Array.exists (fun a -> a = "--smoke") Sys.argv;
  let json_file =
    let r = ref None in
    Array.iteri
      (fun i a ->
        if a = "--json" && i + 1 < Array.length Sys.argv then
          r := Some Sys.argv.(i + 1))
      Sys.argv;
    !r
  in
  Printf.printf "TyTAN evaluation reproduction — simulated Siskiyou Peak @48 MHz%s\n"
    (if !smoke then " (smoke mode)" else "");
  run_table1 ();
  run_tables_2_3 ();
  run_table4 ();
  run_table5 ();
  run_table6 ();
  run_table7 ();
  run_table7_interruptions ();
  run_table8 ();
  run_ipc_bench ();
  run_cfa_bench ();
  run_telemetry_bench ();
  run_swarm_bench ();
  run_serve_bench ();
  run_ota_bench ();
  run_realtime_compliance ();
  run_jitter ();
  run_ablations ();
  run_hash_ablation ();
  run_slot_capacity ();
  run_related_work ();
  run_update_bench ();
  run_vet_bench ();
  if wall then run_bechamel ();
  Option.iter write_json json_file;
  Printf.printf "\nDone.\n"
