(* check_regression — gate a fresh bench row dump against a committed
   baseline (BENCH_seed.json).

     check_regression BASELINE FRESH

   Both files are the flat row lists `main.exe --json FILE` writes: one
   `{"table": .., "label": .., "cycles": N}` object per line.  Only the
   fleet-scale tables (fleet, serve, ota) are gated — the
   microbenchmark tables carry paper-reproduction constants whose drift
   the golden tests already pin.  A row regresses when it moves more
   than 25% the wrong way: labels containing "throughput" are
   lower-is-worse, everything else (cycles, latency, shed rates) is
   higher-is-worse.  Labels ending in "-identical" are boolean identity
   assertions (1 = the parallel run rendered bit-for-bit the sequential
   report) and are gated exactly, with no tolerance band.  A gated
   baseline row missing from the fresh run is itself a failure; a zero
   baseline can't be gated proportionally and is only reported.  Exit 1
   on any regression. *)

let gated_tables = [ "fleet"; "serve"; "ota" ]
let tolerance_percent = 25

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

(* Naive substring search — no regex dependency needed for a format we
   also write. *)
let find_sub s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go 0

let field_string line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match find_sub line pat with
  | None -> None
  | Some i -> (
      let start = i + String.length pat in
      match String.index_from_opt line start '"' with
      | None -> None
      | Some j -> Some (String.sub line start (j - start)))

let field_int line key =
  let pat = Printf.sprintf "\"%s\": " key in
  match find_sub line pat with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let stop = ref start in
      let n = String.length line in
      while
        !stop < n
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
      else int_of_string_opt (String.sub line start (!stop - start))

let parse_rows path =
  read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         match
           (field_string line "table", field_string line "label",
            field_int line "cycles")
         with
         | Some table, Some label, Some cycles -> Some (table, label, cycles)
         | _ -> None)

let lower_is_worse label =
  find_sub label "throughput" <> None

let exact_match label =
  let suffix = "-identical" in
  let n = String.length label and m = String.length suffix in
  n >= m && String.sub label (n - m) m = suffix

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
        prerr_endline "usage: check_regression BASELINE FRESH";
        exit 124
  in
  let baseline = parse_rows baseline_path in
  let fresh = parse_rows fresh_path in
  if baseline = [] then begin
    Printf.eprintf "check_regression: no rows parsed from %s\n" baseline_path;
    exit 124
  end;
  let gated =
    List.filter (fun (t, _, _) -> List.mem t gated_tables) baseline
  in
  let failures = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun (table, label, base) ->
      match
        List.find_opt (fun (t, l, _) -> t = table && l = label) fresh
      with
      | None ->
          incr failures;
          Printf.printf "MISSING  %s/%s: baseline=%d, no fresh row\n" table
            label base
      | Some (_, _, now) ->
          if exact_match label then begin
            incr checked;
            if now <> base then begin
              incr failures;
              Printf.printf "DIVERGED %s/%s: baseline=%d fresh=%d (exact)\n"
                table label base now
            end
          end
          else if base = 0 then
            Printf.printf "skip     %s/%s: baseline=0 (not gated), fresh=%d\n"
              table label now
          else begin
            incr checked;
            let worse =
              if lower_is_worse label then
                (* throughput: regression = dropped below 75% of baseline *)
                now * 100 < base * (100 - tolerance_percent)
              else now * 100 > base * (100 + tolerance_percent)
            in
            let delta_permille = ((now - base) * 1000) / base in
            if worse then begin
              incr failures;
              Printf.printf "REGRESSED %s/%s: baseline=%d fresh=%d (%+d.%d%%)\n"
                table label base now (delta_permille / 10)
                (abs delta_permille mod 10)
            end
          end)
    gated;
  Printf.printf
    "bench-guard: %d gated rows checked against %s, %d regression%s\n" !checked
    baseline_path !failures
    (if !failures = 1 then "" else "s");
  if !failures > 0 then exit 1
