(* Telemetry subsystem tests: histogram bucket boundaries, span nesting
   and mis-nesting, the zero-cost-disabled contract (asserted cycle-exact
   against Cost_model), the PMU device, and the Chrome-trace exporter
   (structural JSON validity with monotonically consistent ts/dur). *)

open Tytan_machine
open Tytan_core
open Tytan_telemetry
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Histogram buckets ---------------------------------------------------- *)

let histogram_tests =
  [
    Alcotest.test_case "bucket boundaries: 0, 1, powers of two, max_int" `Quick
      (fun () ->
        check_int "0 -> bucket 0" 0 (Telemetry.bucket_index 0);
        check_int "negative -> bucket 0" 0 (Telemetry.bucket_index (-5));
        check_int "1 -> bucket 1" 1 (Telemetry.bucket_index 1);
        check_int "2 -> bucket 2" 2 (Telemetry.bucket_index 2);
        check_int "3 -> bucket 2" 2 (Telemetry.bucket_index 3);
        check_int "4 -> bucket 3" 3 (Telemetry.bucket_index 4);
        check_int "max_int -> last bucket" (Telemetry.bucket_count - 1)
          (Telemetry.bucket_index max_int));
    Alcotest.test_case "every bucket's bounds round-trip" `Quick (fun () ->
        for i = 0 to Telemetry.bucket_count - 1 do
          let lo = Telemetry.bucket_lower i and hi = Telemetry.bucket_upper i in
          check_bool "lower <= upper" true (lo <= hi);
          check_int "lower lands in its bucket" i (Telemetry.bucket_index lo);
          check_int "upper lands in its bucket" i (Telemetry.bucket_index hi)
        done);
    Alcotest.test_case "observations land in snapshot" `Quick (fun () ->
        let clock = Cycles.create () in
        let t = Telemetry.create clock in
        Telemetry.enable t;
        List.iter
          (fun v -> Telemetry.observe t ~component:"x" "h" v)
          [ 0; 1; 3; 1000; max_int ];
        let s =
          Option.get (Telemetry.histogram t ~component:"x" "h")
        in
        check_int "count" 5 s.Telemetry.count;
        check_int "min" 0 s.Telemetry.min_value;
        check_int "max" max_int s.Telemetry.max_value;
        check_int "buckets hit" 5 (List.length s.Telemetry.nonzero_buckets));
  ]

(* --- Spans ----------------------------------------------------------------- *)

let span_tests =
  [
    Alcotest.test_case "nesting depths recorded" `Quick (fun () ->
        let clock = Cycles.create () in
        let t = Telemetry.create clock in
        Telemetry.enable t;
        let outer = Telemetry.begin_span t ~component:"a" "outer" in
        Cycles.charge clock 100;
        let inner = Telemetry.begin_span t ~component:"a" "inner" in
        Cycles.charge clock 10;
        Telemetry.end_span t inner;
        Telemetry.end_span t outer;
        match Telemetry.spans t with
        | [ i; o ] ->
            check_int "inner depth" 1 i.Telemetry.depth;
            check_int "outer depth" 0 o.Telemetry.depth;
            check_int "inner duration" 10 i.Telemetry.duration;
            check_int "outer duration" 110 o.Telemetry.duration;
            check_bool "outer started first" true
              (o.Telemetry.start_cycle < i.Telemetry.start_cycle)
        | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
    Alcotest.test_case "out-of-order close of open spans is tolerated" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let t = Telemetry.create clock in
        Telemetry.enable t;
        let a = Telemetry.begin_span t ~component:"a" "a" in
        let b = Telemetry.begin_span t ~component:"a" "b" in
        Telemetry.end_span t a;
        (* a closed before its inner b *)
        Telemetry.end_span t b;
        check_int "no mis-nesting" 0 (Telemetry.mis_nested t);
        check_int "both recorded" 2 (Telemetry.spans_recorded t));
    Alcotest.test_case "double close and unknown ids are mis-nesting" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let t = Telemetry.create clock in
        Telemetry.enable t;
        let a = Telemetry.begin_span t ~component:"a" "a" in
        Telemetry.end_span t a;
        Telemetry.end_span t a;
        (* double close *)
        Telemetry.end_span t 9999;
        (* never opened *)
        check_int "mis-nested" 2 (Telemetry.mis_nested t);
        check_int "recorded once" 1 (Telemetry.spans_recorded t));
    Alcotest.test_case "capacity bounds completed spans and counts drops"
      `Quick (fun () ->
        let clock = Cycles.create () in
        let t = Telemetry.create ~span_capacity:4 clock in
        Telemetry.enable t;
        for _ = 1 to 10 do
          Telemetry.end_span t (Telemetry.begin_span t ~component:"a" "s")
        done;
        check_int "kept" 4 (List.length (Telemetry.spans t));
        check_int "dropped" 6 (Telemetry.spans_dropped t);
        check_int "recorded" 10 (Telemetry.spans_recorded t));
    Alcotest.test_case "every closed span feeds its duration histogram" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let t = Telemetry.create clock in
        Telemetry.enable t;
        Telemetry.with_span t ~component:"a" "s" (fun () ->
            Cycles.charge clock 7);
        let s = Option.get (Telemetry.histogram t ~component:"a" "s") in
        check_int "one observation" 1 s.Telemetry.count;
        check_int "sum is the duration" 7 s.Telemetry.sum);
  ]

(* --- The zero-cost-disabled / exact-cost-enabled contract ------------------ *)

let cost_tests =
  [
    Alcotest.test_case "disabled registry charges exactly 0 cycles" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let t =
          Telemetry.create ~per_event_cost:Cost_model.telemetry_event
            ~per_span_cost:Cost_model.telemetry_span clock
        in
        let before = Cycles.now clock in
        for i = 1 to 100 do
          Telemetry.incr t ~component:"x" "c";
          Telemetry.add t ~component:"x" "a" i;
          Telemetry.set_gauge t ~component:"x" "g" i;
          Telemetry.observe t ~component:"x" "h" i;
          let s = Telemetry.begin_span t ~component:"x" "s" in
          check_int "disabled begin_span returns 0" 0 s;
          Telemetry.end_span t s
        done;
        check_int "exactly zero cycles" before (Cycles.now clock);
        check_int "no events" 0 (Telemetry.events_recorded t);
        check_int "no spans" 0 (Telemetry.spans_recorded t);
        check_bool "no metrics materialised" true (Telemetry.counters t = []));
    Alcotest.test_case "enabled cost is exactly the Cost_model constants"
      `Quick (fun () ->
        let clock = Cycles.create () in
        let t =
          Telemetry.create ~per_event_cost:Cost_model.telemetry_event
            ~per_span_cost:Cost_model.telemetry_span clock
        in
        Telemetry.enable t;
        let events = 17 and spans = 5 in
        let before = Cycles.now clock in
        for i = 1 to events do
          Telemetry.incr t ~component:"x" "c";
          ignore i
        done;
        for _ = 1 to spans do
          Telemetry.end_span t (Telemetry.begin_span t ~component:"x" "s")
        done;
        check_int "K*event + M*span cycles"
          ((events * Cost_model.telemetry_event)
          + (spans * Cost_model.telemetry_span))
          (Cycles.now clock - before));
    Alcotest.test_case "a span's own charge lands outside its duration" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let t =
          Telemetry.create ~per_span_cost:Cost_model.telemetry_span clock
        in
        Telemetry.enable t;
        Telemetry.end_span t (Telemetry.begin_span t ~component:"x" "s");
        match Telemetry.spans t with
        | [ s ] -> check_int "empty span has zero duration" 0 s.Telemetry.duration
        | _ -> Alcotest.fail "expected one span");
  ]

(* --- PMU device ------------------------------------------------------------ *)

let pmu_tests =
  [
    Alcotest.test_case "registers are live and reads charge their cost" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let instret = ref 41 in
        let pmu =
          Devices.Pmu.create clock ~name:"pmu" ~base:0xF200_0000 ~read_cost:34
            ~instructions:(fun () -> !instret)
            ~context_switches:(fun () -> 7)
        in
        let dev = Devices.Pmu.device pmu in
        Cycles.charge clock 1000;
        let cycles_lo = dev.Memory.read32 ~offset:0 in
        (* The read charged 34 before sampling, so it observes itself. *)
        check_int "CYCLES_LO observes its own cost" 1034 cycles_lo;
        check_int "INSTRET_LO" 41 (dev.Memory.read32 ~offset:8);
        check_int "INSTRET_HI" 0 (dev.Memory.read32 ~offset:12);
        check_int "CTXSW" 7 (dev.Memory.read32 ~offset:16);
        (* Like CYCLES, READS observes itself: the 5th read returns 5. *)
        check_int "READS self-metering" 5 (dev.Memory.read32 ~offset:20);
        check_int "five reads served" 5 (Devices.Pmu.reads pmu);
        check_int "each read cost 34" (1000 + (5 * 34)) (Cycles.now clock);
        (* Writes are ignored. *)
        dev.Memory.write32 ~offset:0 123;
        check_bool "counter unaffected by write" true
          (dev.Memory.read32 ~offset:0 > 1034));
  ]

(* --- Platform integration -------------------------------------------------- *)

let load p ?priority ?secure name telf =
  Result.get_ok (Platform.load_blocking p ~name ?priority ?secure telf)

let instrumented_platform ?(ticks = 8) () =
  let config =
    { Platform.default_config with
      trace_enabled = true;
      telemetry_enabled = true
    }
  in
  let p = Platform.create ~config () in
  let rtelf = Tasks.ipc_receiver () in
  let receiver = load p "recv" rtelf in
  let rid =
    (Option.get (Rtm.find_by_tcb (Option.get (Platform.rtm p)) receiver)).Rtm.id
  in
  ignore (load p "send" (Tasks.ipc_sender ~receiver:rid ~repeat:true ()));
  Platform.run_ticks p ticks;
  p

let platform_tests =
  [
    Alcotest.test_case "platform registry carries the Cost_model prices" `Quick
      (fun () ->
        let p = instrumented_platform () in
        let tel = Platform.telemetry p in
        check_bool "enabled" true (Telemetry.enabled tel);
        check_int "event cost" Cost_model.telemetry_event
          (Telemetry.per_event_cost tel);
        check_int "span cost" Cost_model.telemetry_span
          (Telemetry.per_span_cost tel));
    Alcotest.test_case "kernel, ipc, rtm and loader spans are recorded" `Quick
      (fun () ->
        let p = instrumented_platform () in
        let tel = Platform.telemetry p in
        let has component name =
          List.exists
            (fun (s : Telemetry.span) ->
              s.Telemetry.span_key.Telemetry.component = component
              && s.Telemetry.span_key.Telemetry.name = name)
            (Telemetry.spans tel)
        in
        check_bool "kernel tick span" true (has "kernel" "tick");
        check_bool "kernel swi span" true (has "kernel" "swi");
        check_bool "ipc send span" true (has "ipc" "send");
        check_bool "ipc sync round-trip span" true (has "ipc" "sync_session");
        check_bool "rtm measure span" true (has "rtm" "measure");
        check_bool "loader load span" true (has "loader" "load");
        check_int "no mis-nesting in a real run" 0 (Telemetry.mis_nested tel));
    Alcotest.test_case "ready-queue wait histogram fills per task" `Quick
      (fun () ->
        let p = instrumented_platform () in
        let tel = Platform.telemetry p in
        let s =
          Option.get
            (Telemetry.histogram tel ~task:"send" ~component:"kernel"
               "ready_wait")
        in
        check_bool "observed waits" true (s.Telemetry.count > 0);
        check_bool "mean within range" true
          (s.Telemetry.min_value <= s.Telemetry.max_value));
    Alcotest.test_case "cycle attribution sums exactly to the clock" `Quick
      (fun () ->
        let p = instrumented_platform () in
        let rows = Platform.cycle_attribution p in
        let total = List.fold_left (fun acc (_, c) -> acc + c) 0 rows in
        check_int "rows sum to Cycles.now" (Cycles.now (Platform.clock p)) total;
        List.iter
          (fun (name, c) ->
            check_bool (name ^ " non-negative") true (c >= 0))
          rows;
        check_bool "(os) residual present" true
          (List.mem_assoc "(os)" rows));
    Alcotest.test_case "disabled platform telemetry records nothing" `Quick
      (fun () ->
        let p = Platform.create () in
        ignore (load p "t" (Tasks.counter ()));
        Platform.run_ticks p 4;
        let tel = Platform.telemetry p in
        check_bool "disabled by default" false (Telemetry.enabled tel);
        check_int "no events" 0 (Telemetry.events_recorded tel);
        check_int "no spans" 0 (Telemetry.spans_recorded tel));
  ]

(* --- Chrome trace export --------------------------------------------------- *)

(* A minimal JSON parser — enough to structurally validate the exporter's
   output without external dependencies. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
            advance ();
            skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* consume 4 hex digits; keep the escape verbatim *)
                for _ = 1 to 4 do
                  advance ()
                done;
                Buffer.add_char b '?'
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | '\255' -> raise (Bad "unterminated string")
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              if peek () = ',' then (
                advance ();
                members ((k, v) :: acc))
              else (
                expect '}';
                Obj (List.rev ((k, v) :: acc)))
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (
            advance ();
            List [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              if peek () = ',' then (
                advance ();
                elements (v :: acc))
              else (
                expect ']';
                List (List.rev (v :: acc)))
            in
            elements []
      | 't' ->
          pos := !pos + 4;
          Bool true
      | 'f' ->
          pos := !pos + 5;
          Bool false
      | 'n' ->
          pos := !pos + 4;
          Null
      | _ ->
          let start = !pos in
          while
            !pos < n
            && match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false
          do
            advance ()
          done;
          if !pos = start then raise (Bad (Printf.sprintf "junk at %d" start));
          Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let str = function Str s -> s | _ -> raise (Bad "not a string")
  let num = function Num f -> f | _ -> raise (Bad "not a number")
end

let export_tests =
  [
    Alcotest.test_case
      "chrome_trace is valid JSON with consistent ts/dur and all sources"
      `Quick (fun () ->
        let p = instrumented_platform ~ticks:10 () in
        let tel = Platform.telemetry p in
        let json = Export.chrome_trace tel (Platform.trace p) in
        let root = Json.parse json in
        let events =
          match Json.mem "traceEvents" root with
          | Some (Json.List l) -> l
          | _ -> Alcotest.fail "no traceEvents array"
        in
        check_bool "has events" true (events <> []);
        let last_ts = ref neg_infinity in
        let cats = Hashtbl.create 8 in
        List.iter
          (fun e ->
            let ph = Json.str (Option.get (Json.mem "ph" e)) in
            check_bool "known phase" true (List.mem ph [ "X"; "i"; "M" ]);
            match ph with
            | "M" -> ()
            | _ ->
                let ts = Json.num (Option.get (Json.mem "ts" e)) in
                check_bool "ts monotone" true (ts >= !last_ts);
                last_ts := ts;
                (match Json.mem "cat" e with
                | Some c -> Hashtbl.replace cats (Json.str c) ()
                | None -> ());
                if ph = "X" then begin
                  let dur = Json.num (Option.get (Json.mem "dur" e)) in
                  check_bool "dur >= 0" true (dur >= 0.0);
                  check_bool "span ends within the run" true
                    (ts +. dur
                    <= float_of_int (Cycles.now (Platform.clock p)))
                end)
          events;
        List.iter
          (fun cat ->
            check_bool ("category " ^ cat) true (Hashtbl.mem cats cat))
          [ "kernel"; "ipc"; "rtm"; "loader" ]);
    Alcotest.test_case "stats_json parses and attribution is faithful" `Quick
      (fun () ->
        let p = instrumented_platform () in
        let tel = Platform.telemetry p in
        let total = Cycles.now (Platform.clock p) in
        let root =
          Json.parse
            (Export.stats_json
               ~attribution:(Platform.cycle_attribution p)
               ~total_cycles:total tel)
        in
        check_int "total_cycles field" total
          (int_of_float (Json.num (Option.get (Json.mem "total_cycles" root))));
        let rows =
          match Json.mem "attribution" root with
          | Some (Json.List l) -> l
          | _ -> Alcotest.fail "no attribution"
        in
        let sum =
          List.fold_left
            (fun acc r ->
              acc
              + int_of_float (Json.num (Option.get (Json.mem "cycles" r))))
            0 rows
        in
        check_int "attribution sums to total" total sum);
    Alcotest.test_case "json_string escapes control characters" `Quick
      (fun () ->
        check_bool "quote escaped" true
          (Export.json_string "a\"b" = "\"a\\\"b\"");
        check_bool "newline escaped" true
          (Export.json_string "a\nb" = "\"a\\nb\"");
        match Json.parse (Export.json_string "x\t\"\\y") with
        | Json.Str s -> check_bool "round-trips" true (s = "x\t\"\\y")
        | _ -> Alcotest.fail "not a string");
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("histograms", histogram_tests);
      ("spans", span_tests);
      ("costs", cost_tests);
      ("pmu", pmu_tests);
      ("platform", platform_tests);
      ("export", export_tests);
    ]
