(* Fleet-scale swarm attestation: the differential harness proving the
   batched/cached verifier verdict-identical to N independent scalar
   sessions (including under injected faults), plus unit tests for the
   aggregator's measurement cache — epoch scoping, forgery rejection,
   Merkle batch membership — and the headline cycle ratio. *)

open Tytan_core
open Tytan_netsim
open Tytan_provision
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles

(* --- Differential: batched ≡ scalar ---------------------------------------- *)

let check_differential ~devices ~epochs ~seed ~faults ~loss =
  let run mode =
    Swarm.run ~mode ~devices ~epochs ~seed ~faults ~loss_percent:loss ()
  in
  let s = run Swarm.Scalar in
  let b = run Swarm.Batched in
  let ctx = Printf.sprintf "devices=%d seed=%d faults=%b" devices seed faults in
  Alcotest.(check (list string))
    (ctx ^ ": per-device verdicts byte-identical")
    (Swarm.verdicts s) (Swarm.verdicts b);
  List.iter2
    (fun (es : Swarm.epoch_stats) (eb : Swarm.epoch_stats) ->
      Alcotest.(check int)
        (ctx ^ ": health-poll answers identical")
        es.Swarm.healthy_polls eb.Swarm.healthy_polls;
      Alcotest.(check int)
        (ctx ^ ": settle slices identical (same wire schedule)")
        es.Swarm.slices eb.Swarm.slices)
    s.Swarm.per_epoch b.Swarm.per_epoch;
  Alcotest.(check bool)
    (ctx ^ ": survival verdict identical")
    s.Swarm.survived b.Swarm.survived

let differential_tests =
  [
    Alcotest.test_case "clean fleets: random seeds and sizes" `Quick (fun () ->
        List.iter
          (fun (devices, seed) ->
            check_differential ~devices ~epochs:3 ~seed ~faults:false ~loss:10)
          [ (3, 1); (17, 2); (64, 5); (9, 42) ]);
    Alcotest.test_case "faulty fleets: device faults + hostile links" `Quick
      (fun () ->
        List.iter
          (fun (devices, seed) ->
            check_differential ~devices ~epochs:3 ~seed ~faults:true ~loss:15)
          [ (12, 3); (48, 7); (30, 11) ]);
    Alcotest.test_case "faulty campaigns really break devices" `Quick (fun () ->
        (* Guard against the differential passing vacuously: at this size
           the fault schedule must actually tamper or silence someone. *)
        let r =
          Swarm.run ~mode:Swarm.Batched ~devices:48 ~epochs:3 ~seed:7
            ~faults:true ~loss_percent:15 ()
        in
        Alcotest.(check bool)
          "some device was tampered or silenced" true
          (r.Swarm.tampered + r.Swarm.silenced > 0);
        let non_attested =
          List.fold_left
            (fun n (e : Swarm.epoch_stats) ->
              n + e.Swarm.refused + e.Swarm.gave_up)
            0 r.Swarm.per_epoch
        in
        Alcotest.(check bool) "some verdict is not Attested" true
          (non_attested > 0));
  ]

(* --- The headline ratio ----------------------------------------------------- *)

let ratio_tests =
  [
    Alcotest.test_case "batched verification is >= 5x cheaper (N=256)" `Quick
      (fun () ->
        let run mode =
          Swarm.run ~mode ~devices:256 ~epochs:4 ~seed:1 ()
        in
        let s = run Swarm.Scalar in
        let b = run Swarm.Batched in
        Alcotest.(check (list string))
          "verdicts identical" (Swarm.verdicts s) (Swarm.verdicts b);
        let ratio =
          float_of_int s.Swarm.verifier_cycles
          /. float_of_int (max 1 b.Swarm.verifier_cycles)
        in
        if ratio < 5.0 then
          Alcotest.failf "expected >= 5x, got %.2fx (scalar %d, batched %d)"
            ratio s.Swarm.verifier_cycles b.Swarm.verifier_cycles;
        (* The cache must actually be doing the work: one miss per
           device per epoch, hits on every health poll. *)
        let hits, misses =
          List.fold_left
            (fun (h, m) (e : Swarm.epoch_stats) ->
              (h + e.Swarm.cache_hits, m + e.Swarm.cache_misses))
            (0, 0) b.Swarm.per_epoch
        in
        Alcotest.(check int) "one miss per device per epoch" (256 * 4) misses;
        Alcotest.(check int) "every health poll served from cache"
          (256 * 4 * b.Swarm.queries_per_epoch)
          hits);
  ]

(* --- Aggregator unit tests -------------------------------------------------- *)

let fw_id = Task_id.of_image (Bytes.of_string "aggregator-unit-test-firmware")

let test_ka ~serial =
  Crypto.Hmac.mac_string ~key:(Bytes.of_string "unit-master") ("ka/" ^ serial)

let genuine_report ~serial ~nonce =
  {
    Attestation.id = fw_id;
    nonce;
    mac = Attestation.expected_mac ~ka:(test_ka ~serial) ~id:fw_id ~nonce;
  }

let make_aggregator () =
  Aggregator.create ~ka_of:test_ka ~clock:(Cycles.create ()) ()

let aggregator_tests =
  [
    Alcotest.test_case "cached verdict only served within its nonce epoch"
      `Quick (fun () ->
        let a = make_aggregator () in
        Aggregator.begin_epoch a ~epoch:0;
        let n0 = Bytes.of_string "nonce-epoch-0" in
        let r0 = genuine_report ~serial:"s1" ~nonce:n0 in
        Alcotest.(check bool) "first check verifies" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n0 r0);
        Alcotest.(check int) "that was a miss" 1 (Aggregator.cache_misses a);
        Alcotest.(check bool) "re-check is served from the cache" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n0 r0);
        Alcotest.(check int) "hit counted" 1 (Aggregator.cache_hits a);
        Alcotest.(check int) "no second miss" 1 (Aggregator.cache_misses a);
        Aggregator.flush a;
        Alcotest.(check bool) "query answers for the current epoch" true
          (Aggregator.query a ~serial:"s1" ~epoch:0);
        Alcotest.(check bool) "query refuses a different epoch" false
          (Aggregator.query a ~serial:"s1" ~epoch:1);
        Aggregator.begin_epoch a ~epoch:1;
        Alcotest.(check bool) "new epoch starts cold: nothing cached" false
          (Aggregator.query a ~serial:"s1" ~epoch:1);
        let n1 = Bytes.of_string "nonce-epoch-1" in
        Alcotest.(check bool) "replaying the old epoch's report fails" false
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n1 r0);
        let r1 = genuine_report ~serial:"s1" ~nonce:n1 in
        Alcotest.(check bool) "fresh report for the new nonce verifies" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n1 r1);
        Alcotest.(check int) "the key was only derived once" 1
          (Aggregator.key_derivations a));
    Alcotest.test_case "forged reports are rejected and never cached" `Quick
      (fun () ->
        let a = make_aggregator () in
        Aggregator.begin_epoch a ~epoch:0;
        let nonce = Bytes.of_string "nonce-x" in
        let forged =
          { (genuine_report ~serial:"s1" ~nonce) with
            mac = Bytes.make 20 '\x55'
          }
        in
        Alcotest.(check bool) "forged mac rejected" false
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce forged);
        Alcotest.(check bool) "forgery re-checked, not served from cache" false
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce forged);
        Alcotest.(check int) "both were misses" 2 (Aggregator.cache_misses a);
        Aggregator.flush a;
        Alcotest.(check bool) "forged device never answers healthy" false
          (Aggregator.query a ~serial:"s1" ~epoch:0);
        let genuine = genuine_report ~serial:"s1" ~nonce in
        Alcotest.(check bool) "the genuine report still verifies" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce genuine));
    Alcotest.test_case "sealed batch membership proofs verify" `Quick (fun () ->
        let a = make_aggregator () in
        Aggregator.begin_epoch a ~epoch:0;
        let nonce = Bytes.of_string "batch-nonce" in
        for i = 0 to 12 do
          let serial = Printf.sprintf "s%02d" i in
          Alcotest.(check bool) "admitted" true
            (Aggregator.check_report a ~serial ~expected:fw_id ~nonce
               (genuine_report ~serial ~nonce))
        done;
        Aggregator.flush a;
        (match Aggregator.batches a with
        | [ (epoch, _, size) ] ->
            Alcotest.(check int) "stamped with the epoch" 0 epoch;
            Alcotest.(check int) "all 13 leaves sealed" 13 size
        | l -> Alcotest.failf "expected one batch, got %d" (List.length l));
        match Aggregator.last_tree a with
        | None -> Alcotest.fail "no sealed tree"
        | Some (tree, leaves) ->
            let root = Crypto.Merkle.root tree in
            Array.iteri
              (fun i leaf ->
                Alcotest.(check bool)
                  (Printf.sprintf "leaf %d membership proof" i)
                  true
                  (Crypto.Merkle.verify ~root ~leaf
                     (Crypto.Merkle.proof tree i)))
              leaves);
  ]

(* --- Firmware rollout: fleet-wide flow vet --------------------------------- *)

module Tasks = Tytan_tasks.Task_lib
module Task_id = Tytan_core.Task_id

let rollout_run image =
  Swarm.run ~mode:Swarm.Batched ~devices:8 ~epochs:2 ~seed:3 ~rollout:image ()

let rollout_tests =
  [
    Alcotest.test_case "leaky image refused fleet-wide" `Quick (fun () ->
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let r = rollout_run leaky in
        match r.Swarm.rollout with
        | Some { Swarm.accepted; refusal; vet_cycles_per_device } ->
            Alcotest.(check bool) "refused" false accepted;
            Alcotest.(check bool) "vet charged" true (vet_cycles_per_device > 0);
            let msg = Option.value refusal ~default:"" in
            Alcotest.(check bool)
              "refusal names the secret flow" true
              (let has sub =
                 let n = String.length sub in
                 let rec go i =
                   i + n <= String.length msg
                   && (String.sub msg i n = sub || go (i + 1))
                 in
                 go 0
               in
               has "flow" && has "IPC payload");
            (* the fleet stays on — and attests — the incumbent firmware *)
            let incumbent =
              Swarm.run ~mode:Swarm.Batched ~devices:8 ~epochs:2 ~seed:3 ()
            in
            Alcotest.(check (list string))
              "campaign identical to one with no rollout at all"
              (Swarm.verdicts incumbent) (Swarm.verdicts r)
        | None -> Alcotest.fail "expected a rollout outcome in the report");
    Alcotest.test_case "clean image adopted fleet-wide" `Quick (fun () ->
        let clean = Tasks.counter () in
        let r = rollout_run clean in
        match r.Swarm.rollout with
        | Some { Swarm.accepted; refusal; _ } ->
            Alcotest.(check bool) "adopted" true accepted;
            Alcotest.(check bool) "no refusal" true (refusal = None);
            Alcotest.(check bool) "fleet survived on new firmware" true
              r.Swarm.survived;
            (* adopting new firmware changes what the fleet measures, so
               the sealed roots must differ from the incumbent campaign *)
            let incumbent =
              Swarm.run ~mode:Swarm.Batched ~devices:8 ~epochs:2 ~seed:3 ()
            in
            Alcotest.(check bool) "different measurement roots" true
              (List.exists2
                 (fun (a : Swarm.epoch_stats) (b : Swarm.epoch_stats) ->
                   a.Swarm.root_hex <> b.Swarm.root_hex)
                 incumbent.Swarm.per_epoch r.Swarm.per_epoch)
        | None -> Alcotest.fail "expected a rollout outcome in the report");
    Alcotest.test_case "rollout verdict identical across engines" `Quick
      (fun () ->
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let run mode =
          Swarm.run ~mode ~devices:5 ~epochs:2 ~seed:9 ~rollout:leaky ()
        in
        let s = run Swarm.Scalar and b = run Swarm.Batched in
        Alcotest.(check bool) "same acceptance" true
          (match (s.Swarm.rollout, b.Swarm.rollout) with
          | Some a, Some b ->
              a.Swarm.accepted = b.Swarm.accepted
              && a.Swarm.refusal = b.Swarm.refusal
              && a.Swarm.vet_cycles_per_device = b.Swarm.vet_cycles_per_device
          | _ -> false);
        Alcotest.(check (list string))
          "verdicts still byte-identical" (Swarm.verdicts s)
          (Swarm.verdicts b));
  ]

let () =
  Alcotest.run "fleet"
    [
      ("differential", differential_tests);
      ("ratio", ratio_tests);
      ("aggregator", aggregator_tests);
      ("rollout", rollout_tests);
    ]
