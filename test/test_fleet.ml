(* Fleet-scale swarm attestation: the differential harness proving the
   batched/cached verifier verdict-identical to N independent scalar
   sessions (including under injected faults), plus unit tests for the
   aggregator's measurement cache — epoch scoping, forgery rejection,
   Merkle batch membership — and the headline cycle ratio. *)

open Tytan_core
open Tytan_netsim
open Tytan_provision
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles

(* --- Differential: batched ≡ scalar ---------------------------------------- *)

let check_differential ~devices ~epochs ~seed ~faults ~loss =
  let run mode =
    Swarm.run ~mode ~devices ~epochs ~seed ~faults ~loss_percent:loss ()
  in
  let s = run Swarm.Scalar in
  let b = run Swarm.Batched in
  let ctx = Printf.sprintf "devices=%d seed=%d faults=%b" devices seed faults in
  Alcotest.(check (list string))
    (ctx ^ ": per-device verdicts byte-identical")
    (Swarm.verdicts s) (Swarm.verdicts b);
  List.iter2
    (fun (es : Swarm.epoch_stats) (eb : Swarm.epoch_stats) ->
      Alcotest.(check int)
        (ctx ^ ": health-poll answers identical")
        es.Swarm.healthy_polls eb.Swarm.healthy_polls;
      Alcotest.(check int)
        (ctx ^ ": settle slices identical (same wire schedule)")
        es.Swarm.slices eb.Swarm.slices)
    s.Swarm.per_epoch b.Swarm.per_epoch;
  Alcotest.(check bool)
    (ctx ^ ": survival verdict identical")
    s.Swarm.survived b.Swarm.survived

let differential_tests =
  [
    Alcotest.test_case "clean fleets: random seeds and sizes" `Quick (fun () ->
        List.iter
          (fun (devices, seed) ->
            check_differential ~devices ~epochs:3 ~seed ~faults:false ~loss:10)
          [ (3, 1); (17, 2); (64, 5); (9, 42) ]);
    Alcotest.test_case "faulty fleets: device faults + hostile links" `Quick
      (fun () ->
        List.iter
          (fun (devices, seed) ->
            check_differential ~devices ~epochs:3 ~seed ~faults:true ~loss:15)
          [ (12, 3); (48, 7); (30, 11) ]);
    Alcotest.test_case "faulty campaigns really break devices" `Quick (fun () ->
        (* Guard against the differential passing vacuously: at this size
           the fault schedule must actually tamper or silence someone. *)
        let r =
          Swarm.run ~mode:Swarm.Batched ~devices:48 ~epochs:3 ~seed:7
            ~faults:true ~loss_percent:15 ()
        in
        Alcotest.(check bool)
          "some device was tampered or silenced" true
          (r.Swarm.tampered + r.Swarm.silenced > 0);
        let non_attested =
          List.fold_left
            (fun n (e : Swarm.epoch_stats) ->
              n + e.Swarm.refused + e.Swarm.gave_up)
            0 r.Swarm.per_epoch
        in
        Alcotest.(check bool) "some verdict is not Attested" true
          (non_attested > 0));
  ]

(* --- Three-mode soak: scalar == batched == incremental --------------------- *)

(* On an identity schedule (no --steady) all three engines must agree:
   batched and incremental are checked verdict-by-verdict against scalar,
   and the mode-independent semantic digest must match exactly.  20
   seeds, alternating fault injection and link loss, so the agreement is
   exercised across refusals, kills, hangs and hostile links — not just
   the happy path. *)
let soak_tests =
  [
    Alcotest.test_case "20-seed soak: all modes verdict- and digest-identical"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let faults = seed land 1 = 1 in
            let loss = if seed mod 3 = 0 then 12 else 0 in
            let run mode =
              Swarm.run ~mode ~devices:14 ~epochs:3 ~seed ~faults
                ~loss_percent:loss ()
            in
            let s = run Swarm.Scalar in
            let b = run Swarm.Batched in
            let i = run Swarm.Incremental in
            let ctx =
              Printf.sprintf "seed=%d faults=%b loss=%d" seed faults loss
            in
            Alcotest.(check (list string))
              (ctx ^ ": scalar/batched verdicts")
              (Swarm.verdicts s) (Swarm.verdicts b);
            Alcotest.(check (list string))
              (ctx ^ ": batched/incremental verdicts")
              (Swarm.verdicts b) (Swarm.verdicts i);
            Alcotest.(check string)
              (ctx ^ ": semantic digest scalar/incremental")
              (Swarm.semantic_digest s)
              (Swarm.semantic_digest i);
            Alcotest.(check string)
              (ctx ^ ": semantic digest scalar/batched")
              (Swarm.semantic_digest s)
              (Swarm.semantic_digest b);
            Alcotest.(check bool)
              (ctx ^ ": survival verdict")
              s.Swarm.survived i.Swarm.survived)
          (List.init 20 (fun i -> i + 1)));
  ]

(* --- Domain-parallel bit identity ------------------------------------------- *)

(* The report deliberately never mentions the domain count, so
   [Swarm.to_string] equality IS the bit-identity claim: a sharded run
   must render byte-for-byte what the sequential run renders — verdicts,
   roots, cycle totals, telemetry, digest line, everything.  Skipped on
   single-core hosts where spawning domains proves nothing. *)
let parallel_tests =
  let multicore = Domain.recommended_domain_count () > 1 in
  let identical ?(faults = false) ?(steady = false) ?(churn_permille = 0) ~mode
      ~seed () =
    let go domains =
      Swarm.to_string
        (Swarm.run ~mode ~devices:16 ~epochs:3 ~seed ~faults ~domains ~steady
           ~churn_permille ())
    in
    let sequential = go 1 in
    List.iter
      (fun domains ->
        Alcotest.(check string)
          (Printf.sprintf "%s seed=%d faults=%b steady=%b: %d domains"
             (Swarm.mode_label mode) seed faults steady domains)
          sequential (go domains))
      [ 2; 4 ]
  in
  let guarded f () = if multicore then f () in
  [
    Alcotest.test_case "incremental report bit-identical across 1/2/4 domains"
      `Quick
      (guarded (fun () ->
           List.iter
             (fun (seed, faults) ->
               identical ~mode:Swarm.Incremental ~seed ~faults ())
             [ (2, false); (7, true); (13, false) ]));
    Alcotest.test_case "batched and scalar engines shard identically too"
      `Quick
      (guarded (fun () ->
           identical ~mode:Swarm.Batched ~seed:3 ();
           identical ~mode:Swarm.Batched ~seed:7 ~faults:true ();
           identical ~mode:Swarm.Scalar ~seed:3 ()));
    Alcotest.test_case "steady-state churn campaigns shard identically" `Quick
      (guarded (fun () ->
           identical ~mode:Swarm.Incremental ~seed:5 ~steady:true
             ~churn_permille:80 ();
           identical ~mode:Swarm.Incremental ~seed:9 ~faults:true ~steady:true
             ~churn_permille:40 ()));
  ]

(* --- Steady state ------------------------------------------------------------ *)

let steady_run ?(devices = 24) ?(epochs = 5) ?(seed = 5) ?(faults = false)
    ?(churn_permille = 50) () =
  Swarm.run ~mode:Swarm.Incremental ~devices ~epochs ~seed ~faults ~steady:true
    ~churn_permille ()

let steady_tests =
  [
    Alcotest.test_case "epoch 0 sweeps everyone, then carries the healthy"
      `Quick (fun () ->
        let r = steady_run () in
        (match r.Swarm.per_epoch with
        | e0 :: rest ->
            Alcotest.(check int) "epoch 0 challenges the whole fleet" 24
              e0.Swarm.challenged;
            Alcotest.(check int) "epoch 0 carries no one" 0 e0.Swarm.carried;
            List.iter
              (fun (e : Swarm.epoch_stats) ->
                Alcotest.(check int)
                  (Printf.sprintf "epoch %d: challenged + carried = fleet"
                     e.Swarm.epoch)
                  24
                  (e.Swarm.challenged + e.Swarm.carried);
                Alcotest.(check bool)
                  (Printf.sprintf "epoch %d carries most of the fleet"
                     e.Swarm.epoch)
                  true
                  (e.Swarm.carried > e.Swarm.challenged))
              rest
        | [] -> Alcotest.fail "no epochs");
        Alcotest.(check bool) "fleet survived" true r.Swarm.survived);
    Alcotest.test_case "a device is carried only on the heels of a good verdict"
      `Quick (fun () ->
        (* 'a' at epoch e means the verifier vouched without a wire
           exchange — legitimate only if epoch e-1 ended Attested or
           carried.  Checked under faults, where the temptation to carry
           a broken device is real. *)
        List.iter
          (fun (seed, faults) ->
            let r = steady_run ~seed ~faults ~epochs:6 () in
            let v = Array.of_list (Swarm.verdicts r) in
            for e = 1 to Array.length v - 1 do
              String.iteri
                (fun d c ->
                  if c = 'a' then
                    let prev = v.(e - 1).[d] in
                    Alcotest.(check bool)
                      (Printf.sprintf
                         "seed=%d epoch %d device %d carried after '%c'" seed e
                         d prev)
                      true
                      (prev = 'A' || prev = 'a'))
                v.(e)
            done)
          [ (5, false); (7, true); (11, true) ]);
    Alcotest.test_case "quiet steady epochs have an empty delta" `Quick
      (fun () ->
        (* With no churn and no faults nothing changes identity after the
           sweep, so every post-sweep sparse delta must be empty — the
           O(changed) claim at changed = 0. *)
        let r = steady_run ~seed:3 ~churn_permille:0 () in
        List.iter
          (fun (e : Swarm.epoch_stats) ->
            if e.Swarm.epoch > 0 then
              Alcotest.(check int)
                (Printf.sprintf "epoch %d delta" e.Swarm.epoch)
                0 e.Swarm.delta_changed)
          r.Swarm.per_epoch);
    Alcotest.test_case "steady epochs are an order cheaper than the sweep"
      `Quick (fun () ->
        let r = steady_run ~devices:64 ~seed:1 ~churn_permille:10 () in
        match r.Swarm.per_epoch with
        | sweep :: rest when rest <> [] ->
            let worst_steady =
              List.fold_left
                (fun m (e : Swarm.epoch_stats) -> max m e.Swarm.verify_cycles)
                0 rest
            in
            if sweep.Swarm.verify_cycles < 10 * worst_steady then
              Alcotest.failf "sweep %d < 10x worst steady epoch %d"
                sweep.Swarm.verify_cycles worst_steady
        | _ -> Alcotest.fail "need a sweep and at least one steady epoch");
    Alcotest.test_case "steady mode requires the incremental engine" `Quick
      (fun () ->
        List.iter
          (fun mode ->
            Alcotest.(check bool)
              (Swarm.mode_label mode ^ " rejected") true
              (try
                 ignore
                   (Swarm.run ~mode ~devices:4 ~epochs:2 ~seed:1 ~steady:true ());
                 false
               with Invalid_argument _ -> true))
          [ Swarm.Scalar; Swarm.Batched ]);
  ]

(* --- The headline ratio ----------------------------------------------------- *)

let ratio_tests =
  [
    Alcotest.test_case "batched verification is >= 5x cheaper (N=256)" `Quick
      (fun () ->
        let run mode =
          Swarm.run ~mode ~devices:256 ~epochs:4 ~seed:1 ()
        in
        let s = run Swarm.Scalar in
        let b = run Swarm.Batched in
        Alcotest.(check (list string))
          "verdicts identical" (Swarm.verdicts s) (Swarm.verdicts b);
        let ratio =
          float_of_int s.Swarm.verifier_cycles
          /. float_of_int (max 1 b.Swarm.verifier_cycles)
        in
        if ratio < 5.0 then
          Alcotest.failf "expected >= 5x, got %.2fx (scalar %d, batched %d)"
            ratio s.Swarm.verifier_cycles b.Swarm.verifier_cycles;
        (* The cache must actually be doing the work: one miss per
           device per epoch, hits on every health poll. *)
        let hits, misses =
          List.fold_left
            (fun (h, m) (e : Swarm.epoch_stats) ->
              (h + e.Swarm.cache_hits, m + e.Swarm.cache_misses))
            (0, 0) b.Swarm.per_epoch
        in
        Alcotest.(check int) "one miss per device per epoch" (256 * 4) misses;
        Alcotest.(check int) "every health poll served from cache"
          (256 * 4 * b.Swarm.queries_per_epoch)
          hits);
  ]

(* --- Aggregator unit tests -------------------------------------------------- *)

let fw_id = Task_id.of_image (Bytes.of_string "aggregator-unit-test-firmware")

let test_ka ~serial =
  Crypto.Hmac.mac_string ~key:(Bytes.of_string "unit-master") ("ka/" ^ serial)

let genuine_report ~serial ~nonce =
  {
    Attestation.id = fw_id;
    nonce;
    mac = Attestation.expected_mac ~ka:(test_ka ~serial) ~id:fw_id ~nonce;
  }

let make_aggregator () =
  Aggregator.create ~ka_of:test_ka ~clock:(Cycles.create ()) ()

let aggregator_tests =
  [
    Alcotest.test_case "cached verdict only served within its nonce epoch"
      `Quick (fun () ->
        let a = make_aggregator () in
        Aggregator.begin_epoch a ~epoch:0;
        let n0 = Bytes.of_string "nonce-epoch-0" in
        let r0 = genuine_report ~serial:"s1" ~nonce:n0 in
        Alcotest.(check bool) "first check verifies" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n0 r0);
        Alcotest.(check int) "that was a miss" 1 (Aggregator.cache_misses a);
        Alcotest.(check bool) "re-check is served from the cache" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n0 r0);
        Alcotest.(check int) "hit counted" 1 (Aggregator.cache_hits a);
        Alcotest.(check int) "no second miss" 1 (Aggregator.cache_misses a);
        Aggregator.flush a;
        Alcotest.(check bool) "query answers for the current epoch" true
          (Aggregator.query a ~serial:"s1" ~epoch:0);
        Alcotest.(check bool) "query refuses a different epoch" false
          (Aggregator.query a ~serial:"s1" ~epoch:1);
        Aggregator.begin_epoch a ~epoch:1;
        Alcotest.(check bool) "new epoch starts cold: nothing cached" false
          (Aggregator.query a ~serial:"s1" ~epoch:1);
        let n1 = Bytes.of_string "nonce-epoch-1" in
        Alcotest.(check bool) "replaying the old epoch's report fails" false
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n1 r0);
        let r1 = genuine_report ~serial:"s1" ~nonce:n1 in
        Alcotest.(check bool) "fresh report for the new nonce verifies" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce:n1 r1);
        Alcotest.(check int) "the key was only derived once" 1
          (Aggregator.key_derivations a));
    Alcotest.test_case "forged reports are rejected and never cached" `Quick
      (fun () ->
        let a = make_aggregator () in
        Aggregator.begin_epoch a ~epoch:0;
        let nonce = Bytes.of_string "nonce-x" in
        let forged =
          { (genuine_report ~serial:"s1" ~nonce) with
            mac = Bytes.make 20 '\x55'
          }
        in
        Alcotest.(check bool) "forged mac rejected" false
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce forged);
        Alcotest.(check bool) "forgery re-checked, not served from cache" false
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce forged);
        Alcotest.(check int) "both were misses" 2 (Aggregator.cache_misses a);
        Aggregator.flush a;
        Alcotest.(check bool) "forged device never answers healthy" false
          (Aggregator.query a ~serial:"s1" ~epoch:0);
        let genuine = genuine_report ~serial:"s1" ~nonce in
        Alcotest.(check bool) "the genuine report still verifies" true
          (Aggregator.check_report a ~serial:"s1" ~expected:fw_id ~nonce genuine));
    Alcotest.test_case "sealed batch membership proofs verify" `Quick (fun () ->
        let a = make_aggregator () in
        Aggregator.begin_epoch a ~epoch:0;
        let nonce = Bytes.of_string "batch-nonce" in
        for i = 0 to 12 do
          let serial = Printf.sprintf "s%02d" i in
          Alcotest.(check bool) "admitted" true
            (Aggregator.check_report a ~serial ~expected:fw_id ~nonce
               (genuine_report ~serial ~nonce))
        done;
        Aggregator.flush a;
        (match Aggregator.batches a with
        | [ (epoch, _, size) ] ->
            Alcotest.(check int) "stamped with the epoch" 0 epoch;
            Alcotest.(check int) "all 13 leaves sealed" 13 size
        | l -> Alcotest.failf "expected one batch, got %d" (List.length l));
        match Aggregator.last_tree a with
        | None -> Alcotest.fail "no sealed tree"
        | Some (tree, leaves) ->
            let root = Crypto.Merkle.root tree in
            Array.iteri
              (fun i leaf ->
                Alcotest.(check bool)
                  (Printf.sprintf "leaf %d membership proof" i)
                  true
                  (Crypto.Merkle.verify ~root ~leaf
                     (Crypto.Merkle.proof tree i)))
              leaves);
    Alcotest.test_case "retained tree: carry, tombstone, membership, deltas"
      `Quick (fun () ->
        let a =
          Aggregator.create ~ka_of:test_ka ~clock:(Cycles.create ())
            ~kind:Aggregator.Retain ()
        in
        let attest ~serial ~nonce =
          Alcotest.(check bool) (serial ^ " admitted") true
            (Aggregator.check_report a ~serial ~expected:fw_id ~nonce
               (genuine_report ~serial ~nonce))
        in
        (* Epoch 0: the full sweep — everyone attests. *)
        Aggregator.begin_epoch a ~epoch:0;
        let n0 = Bytes.of_string "retain-nonce-0" in
        List.iter (fun serial -> attest ~serial ~nonce:n0) [ "s0"; "s1"; "s2" ];
        Aggregator.flush a;
        Alcotest.(check int) "three live leaves" 3 (Aggregator.live_leaves a);
        (match Aggregator.epoch_deltas a with
        | [ d ] ->
            Alcotest.(check int) "sweep delta at epoch 0" 0 d.Aggregator.at_epoch;
            Alcotest.(check int) "sweep delta covers the arrivals" 3
              (List.length d.Aggregator.changed);
            List.iter
              (fun (e : Aggregator.delta_entry) ->
                Alcotest.(check bool) (e.Aggregator.serial ^ " arrived") true
                  (e.Aggregator.before = None && e.Aggregator.after <> None))
              d.Aggregator.changed
        | l -> Alcotest.failf "expected one delta, got %d" (List.length l));
        (match Aggregator.membership_proof a ~serial:"s1" with
        | None -> Alcotest.fail "live device must have a membership proof"
        | Some (leaf, proof) ->
            let root =
              match Aggregator.batches a with
              | [ (0, root, 3) ] -> root
              | l -> Alcotest.failf "expected one 3-leaf batch, got %d"
                       (List.length l)
            in
            Alcotest.(check bool) "proof verifies against the sealed root" true
              (Crypto.Merkle.verify ~root ~leaf proof));
        (* Epoch 1: s0 re-attests (same identity — delta stays empty),
           s1 is carried on liveness, s2 goes silent. *)
        Aggregator.begin_epoch a ~epoch:1;
        let n1 = Bytes.of_string "retain-nonce-1" in
        attest ~serial:"s0" ~nonce:n1;
        Alcotest.(check bool) "live device can be carried" true
          (Aggregator.carry a ~serial:"s1");
        Alcotest.(check bool) "unknown device cannot be carried" false
          (Aggregator.carry a ~serial:"ghost");
        Aggregator.flush a;
        Alcotest.(check bool) "re-attested device healthy" true
          (Aggregator.query a ~serial:"s0" ~epoch:1);
        Alcotest.(check bool) "carried device polls healthy" true
          (Aggregator.carried_healthy a ~serial:"s1");
        Alcotest.(check bool) "silent device tombstoned" false
          (Aggregator.carried_healthy a ~serial:"s2");
        Alcotest.(check int) "tombstone shrinks the live set" 2
          (Aggregator.live_leaves a);
        Alcotest.(check bool) "tombstoned device loses its proof" true
          (Aggregator.membership_proof a ~serial:"s2" = None);
        Alcotest.(check bool) "tombstoned device cannot be carried back" false
          (Aggregator.carry a ~serial:"s2");
        (match Aggregator.epoch_deltas a with
        | [ _; d1 ] -> (
            Alcotest.(check int) "delta stamped epoch 1" 1 d1.Aggregator.at_epoch;
            (* only s2's departure is an identity change — s0's fresh
               report re-sealed the same firmware id, s1 was carried *)
            match d1.Aggregator.changed with
            | [ e ] ->
                Alcotest.(check string) "the departure is s2" "s2"
                  e.Aggregator.serial;
                Alcotest.(check bool) "recorded as a tombstone" true
                  (e.Aggregator.before <> None && e.Aggregator.after = None)
            | l ->
                Alcotest.failf "expected exactly the departure, got %d entries"
                  (List.length l))
        | l -> Alcotest.failf "expected two deltas, got %d" (List.length l)));
  ]

(* --- Firmware rollout: fleet-wide flow vet --------------------------------- *)

module Tasks = Tytan_tasks.Task_lib
module Task_id = Tytan_core.Task_id

let rollout_run image =
  Swarm.run ~mode:Swarm.Batched ~devices:8 ~epochs:2 ~seed:3 ~rollout:image ()

let rollout_tests =
  [
    Alcotest.test_case "leaky image refused fleet-wide" `Quick (fun () ->
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let r = rollout_run leaky in
        match r.Swarm.rollout with
        | Some { Swarm.accepted; refusal; vet_cycles_per_device } ->
            Alcotest.(check bool) "refused" false accepted;
            Alcotest.(check bool) "vet charged" true (vet_cycles_per_device > 0);
            let msg = Option.value refusal ~default:"" in
            Alcotest.(check bool)
              "refusal names the secret flow" true
              (let has sub =
                 let n = String.length sub in
                 let rec go i =
                   i + n <= String.length msg
                   && (String.sub msg i n = sub || go (i + 1))
                 in
                 go 0
               in
               has "flow" && has "IPC payload");
            (* the fleet stays on — and attests — the incumbent firmware *)
            let incumbent =
              Swarm.run ~mode:Swarm.Batched ~devices:8 ~epochs:2 ~seed:3 ()
            in
            Alcotest.(check (list string))
              "campaign identical to one with no rollout at all"
              (Swarm.verdicts incumbent) (Swarm.verdicts r)
        | None -> Alcotest.fail "expected a rollout outcome in the report");
    Alcotest.test_case "clean image adopted fleet-wide" `Quick (fun () ->
        let clean = Tasks.counter () in
        let r = rollout_run clean in
        match r.Swarm.rollout with
        | Some { Swarm.accepted; refusal; _ } ->
            Alcotest.(check bool) "adopted" true accepted;
            Alcotest.(check bool) "no refusal" true (refusal = None);
            Alcotest.(check bool) "fleet survived on new firmware" true
              r.Swarm.survived;
            (* adopting new firmware changes what the fleet measures, so
               the sealed roots must differ from the incumbent campaign *)
            let incumbent =
              Swarm.run ~mode:Swarm.Batched ~devices:8 ~epochs:2 ~seed:3 ()
            in
            Alcotest.(check bool) "different measurement roots" true
              (List.exists2
                 (fun (a : Swarm.epoch_stats) (b : Swarm.epoch_stats) ->
                   a.Swarm.root_hex <> b.Swarm.root_hex)
                 incumbent.Swarm.per_epoch r.Swarm.per_epoch)
        | None -> Alcotest.fail "expected a rollout outcome in the report");
    Alcotest.test_case "rollout verdict identical across engines" `Quick
      (fun () ->
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let run mode =
          Swarm.run ~mode ~devices:5 ~epochs:2 ~seed:9 ~rollout:leaky ()
        in
        let s = run Swarm.Scalar and b = run Swarm.Batched in
        Alcotest.(check bool) "same acceptance" true
          (match (s.Swarm.rollout, b.Swarm.rollout) with
          | Some a, Some b ->
              a.Swarm.accepted = b.Swarm.accepted
              && a.Swarm.refusal = b.Swarm.refusal
              && a.Swarm.vet_cycles_per_device = b.Swarm.vet_cycles_per_device
          | _ -> false);
        Alcotest.(check (list string))
          "verdicts still byte-identical" (Swarm.verdicts s)
          (Swarm.verdicts b));
  ]

let () =
  Alcotest.run "fleet"
    [
      ("differential", differential_tests);
      ("soak", soak_tests);
      ("parallel", parallel_tests);
      ("steady", steady_tests);
      ("ratio", ratio_tests);
      ("aggregator", aggregator_tests);
      ("rollout", rollout_tests);
    ]
