(* The OTA subsystem: the monotonic anti-rollback counter, the signed
   update wire format and its defensive decoder, the device-side
   installer (admit → stage → vet → swap), measured activation under
   fault injection, and the canary rollout engine's acceptance
   scenarios. *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
open Tytan_netsim
open Tytan_ota
module Tasks = Tytan_tasks.Task_lib
module Sha1 = Tytan_crypto.Sha1
module Telf = Tytan_telf.Telf
module Chaos = Tytan_fault.Chaos
module Fault_plan = Tytan_fault.Fault_plan
module Swarm = Tytan_provision.Swarm
module Gateway = Tytan_serve.Gateway

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- Monotonic counter device --------------------------------------------- *)

let fresh_counter ?initial () =
  let clock = Cycles.create () in
  let c =
    Devices.Monotonic_counter.create clock ~name:"ctr" ~base:0xF000_6000
      ~read_cost:Cost_model.counter_read
      ~increment_cost:Cost_model.counter_increment ?initial ()
  in
  (clock, c)

let counter_tests =
  let module M = Devices.Monotonic_counter in
  [
    Alcotest.test_case "counts up and only up" `Quick (fun () ->
        let _, c = fresh_counter () in
        check_int "fresh" 0 (M.value c);
        check_int "increment" 1 (M.increment c);
        check_int "advance_to" 5 (M.advance_to c 5);
        check_int "advance_to lower is a no-op" 5 (M.advance_to c 3);
        check_int "value" 5 (M.value c));
    Alcotest.test_case "MMIO value writes are refused and counted" `Quick
      (fun () ->
        let _, c = fresh_counter () in
        ignore (M.advance_to c 4);
        let d = M.device c in
        d.Memory.write32 ~offset:0 0;
        d.Memory.write32 ~offset:0 99;
        check_int "value never moved" 4 (M.value c);
        check_int "both attempts counted" 2 (M.reset_attempts c);
        check_int "tamper register agrees" 2 (d.Memory.read32 ~offset:8));
    Alcotest.test_case "MMIO increment register works" `Quick (fun () ->
        let _, c = fresh_counter () in
        let d = M.device c in
        d.Memory.write32 ~offset:4 1;
        d.Memory.write32 ~offset:4 0xdead;
        check_int "two increments" 2 (M.value c);
        check_int "served count readable" 2 (d.Memory.read32 ~offset:4));
    Alcotest.test_case "NV work is charged to the device clock" `Quick
      (fun () ->
        let clock, c = fresh_counter () in
        ignore (M.increment c);
        check_int "increment cost" Cost_model.counter_increment
          (Cycles.now clock);
        let d = M.device c in
        ignore (d.Memory.read32 ~offset:0);
        check_int "read cost on top"
          (Cost_model.counter_increment + Cost_model.counter_read)
          (Cycles.now clock));
    Alcotest.test_case "snapshots restore forward-only" `Quick (fun () ->
        let _, c = fresh_counter () in
        ignore (M.advance_to c 3);
        let snap = M.save c in
        (* A fresh part provisioned from the snapshot comes up at 3. *)
        let _, fresh = fresh_counter () in
        check_bool "restore ok" true (Result.is_ok (M.restore fresh snap));
        check_int "provisioned" 3 (M.value fresh);
        (* A stale snapshot can never roll a live part back. *)
        ignore (M.advance_to c 7);
        check_bool "stale restore tolerated" true
          (Result.is_ok (M.restore c snap));
        check_int "value kept" 7 (M.value c);
        check_int "rollback attempt counted" 1 (M.reset_attempts c);
        check_bool "garbage refused" true
          (Result.is_error (M.restore c (Bytes.of_string "xx"))));
  ]

(* --- OTA wire format -------------------------------------------------------- *)

let sample_offer ?(seq = 7) ?(version = 2) () =
  Protocol.UpdateOffer
    {
      seq;
      id = Task_id.of_image (Bytes.of_string "image-bytes");
      version;
      size = 640;
      digest = Bytes.make 20 'd';
      mac = Bytes.make 20 'm';
    }

let wire_tests =
  [
    Alcotest.test_case "offer round trip" `Quick (fun () ->
        let m = sample_offer () in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "chunk round trip" `Quick (fun () ->
        let m =
          Protocol.UpdateChunk
            { seq = 3; offset = 512; data = Bytes.of_string "payload-bytes" }
        in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "every ack status round trips" `Quick (fun () ->
        List.iter
          (fun status ->
            let m = Protocol.UpdateAck { seq = 9; status; arg = 41 } in
            check_bool
              (Protocol.ack_status_label status)
              true
              (Protocol.decode (Protocol.encode m) = Ok m))
          [
            Protocol.Ota_ready; Protocol.Ota_need; Protocol.Ota_applied;
            Protocol.Ota_refused_auth; Protocol.Ota_refused_rollback;
            Protocol.Ota_refused_digest; Protocol.Ota_refused_vet;
            Protocol.Ota_refused_crash;
          ]);
    Alcotest.test_case "every truncation of an offer is refused" `Quick
      (fun () ->
        let frame = Protocol.encode (sample_offer ()) in
        for len = 1 to Bytes.length frame - 1 do
          check_bool
            (Printf.sprintf "len %d" len)
            true
            (Result.is_error (Protocol.decode (Bytes.sub frame 0 len)))
        done);
    Alcotest.test_case "oversized and empty chunks cannot be encoded" `Quick
      (fun () ->
        let enc data =
          match
            Protocol.encode (Protocol.UpdateChunk { seq = 1; offset = 0; data })
          with
          | _ -> false
          | exception Invalid_argument _ -> true
        in
        check_bool "empty refused" true (enc Bytes.empty);
        check_bool "oversized refused" true
          (enc (Bytes.create (Protocol.max_chunk + 1)));
        check_bool "max ok" false (enc (Bytes.create Protocol.max_chunk)));
  ]

let wire_property_tests =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  [
    to_alcotest
      (QCheck.Test.make ~name:"mutated ota frames never crash the decoder"
         ~count:400
         (QCheck.triple
            (QCheck.make QCheck.Gen.(int_bound 2))
            (QCheck.list_of_size
               QCheck.Gen.(int_range 0 8)
               (QCheck.pair QCheck.small_nat
                  (QCheck.make QCheck.Gen.(int_bound 255))))
            QCheck.small_nat)
         (fun (pick, flips, cut) ->
           let frame =
             Protocol.encode
               (match pick with
               | 0 -> sample_offer ()
               | 1 ->
                   Protocol.UpdateChunk
                     { seq = 1; offset = 64; data = Bytes.make 32 'x' }
               | _ ->
                   Protocol.UpdateAck
                     { seq = 1; status = Protocol.Ota_applied; arg = 3 })
           in
           List.iter
             (fun (pos, v) ->
               Bytes.set frame (pos mod Bytes.length frame) (Char.chr v))
             flips;
           let frame =
             if cut mod 3 = 0 then Bytes.sub frame 0 (cut mod Bytes.length frame)
             else frame
           in
           ignore (Protocol.decode frame : (Protocol.message, string) result);
           (* The device endpoint survives the same hostility. *)
           let _, counter = fresh_counter () in
           let inst =
             Installer.create ~serial:"fuzz" ~ka:(Bytes.make 20 'k')
               ~clock:(Cycles.create ()) ~counter
               ~loaded:(Task_id.of_image (Bytes.of_string "fw"))
               ()
           in
           ignore (Installer.on_frame inst frame : Protocol.message list);
           true));
  ]

(* --- Installer: admit, stage, vet, swap ------------------------------------- *)

let ka = Bytes.make 20 'K'

let make_installer ?persist ?initial () =
  let clock = Cycles.create () in
  let _, counter = fresh_counter ?initial () in
  let inst =
    Installer.create ~serial:"dev-0" ~ka ~clock ~counter
      ~loaded:(Task_id.of_image (Bytes.of_string "incumbent"))
      ?persist ()
  in
  (clock, inst)

let offer_of ?(seq = 1) ~version telf =
  let payload = Telf.encode telf in
  let size = Bytes.length payload in
  let digest = Sha1.digest payload in
  let id = Task_id.of_image telf.Telf.image in
  ( Protocol.UpdateOffer
      {
        seq;
        id;
        version;
        size;
        digest;
        mac = Attestation.update_mac ~ka ~id ~version ~size ~digest;
      },
    payload,
    id )

let feed inst m = Installer.on_frame inst (Protocol.encode m)

(* Stream the payload in order, 128 bytes at a time; return the last ack. *)
let stream ?(seq = 1) ?(corrupt_at = -1) inst payload =
  let n = Bytes.length payload in
  let last = ref None in
  let off = ref 0 in
  while !off < n do
    let len = min 128 (n - !off) in
    let data = Bytes.sub payload !off len in
    if corrupt_at >= !off && corrupt_at < !off + len then
      Bytes.set data (corrupt_at - !off)
        (Char.chr (Char.code (Bytes.get data (corrupt_at - !off)) lxor 1));
    (match feed inst (Protocol.UpdateChunk { seq; offset = !off; data }) with
    | [ ack ] -> last := Some ack
    | _ -> ());
    off := !off + len
  done;
  !last

let status_of = function
  | Some (Protocol.UpdateAck { status; _ }) -> Some status
  | _ -> None

let installer_tests =
  [
    Alcotest.test_case "clean image: admitted, vetted, swapped" `Quick
      (fun () ->
        let saved = ref None in
        let _, inst = make_installer ~persist:(fun b -> saved := Some b) () in
        let offer, payload, id = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        check_bool "ready" true
          (status_of (Some (List.hd (feed inst offer))) = Some Protocol.Ota_ready);
        check_bool "applied" true
          (status_of (stream inst payload) = Some Protocol.Ota_applied);
        check_bool "identity adopted" true
          (Task_id.equal (Installer.loaded inst) id);
        check_int "counter advanced to the version" 1
          (Installer.counter_value inst);
        check_int "one activation" 1 (Installer.activations inst);
        (* The persisted snapshot provisions a replacement part. *)
        let _, spare = fresh_counter () in
        check_bool "snapshot restores" true
          (Result.is_ok
             (Devices.Monotonic_counter.restore spare (Option.get !saved)));
        check_int "replacement at the same version" 1
          (Devices.Monotonic_counter.value spare));
    Alcotest.test_case "stale version: refused at the door, nothing staged"
      `Quick (fun () ->
        let clock, inst = make_installer ~initial:3 () in
        let offer, _, _ = offer_of ~version:3 (Tasks.yielder ~count:4 ()) in
        let before = Cycles.now clock in
        (match feed inst offer with
        | [ Protocol.UpdateAck { status = Protocol.Ota_refused_rollback; arg; _ } ]
          ->
            check_int "refusal names the counter" 3 arg
        | _ -> Alcotest.fail "expected a rollback refusal");
        check_int "counted" 1 (Installer.rollback_refusals inst);
        check_int "nothing staged" 0 (Installer.staged_bytes inst);
        check_bool "refusal latency measured" true
          (Installer.last_refusal_cycles inst > 0
          && Installer.last_refusal_cycles inst <= Cycles.now clock - before));
    Alcotest.test_case "forged mac: refused" `Quick (fun () ->
        let _, inst = make_installer () in
        let offer, _, _ = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        let forged =
          match offer with
          | Protocol.UpdateOffer o ->
              Protocol.UpdateOffer { o with version = 9 }  (* mac now stale *)
          | m -> m
        in
        check_bool "auth refusal" true
          (status_of (Some (List.hd (feed inst forged)))
          = Some Protocol.Ota_refused_auth);
        check_int "counted" 1 (Installer.auth_refusals inst));
    Alcotest.test_case "leaky image: staged fully, refused by the vet" `Quick
      (fun () ->
        let _, inst = make_installer () in
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let offer, payload, _ = offer_of ~version:1 leaky in
        ignore (feed inst offer);
        check_bool "vet refusal" true
          (status_of (stream inst payload) = Some Protocol.Ota_refused_vet);
        check_int "counter never advanced" 0 (Installer.counter_value inst);
        check_bool "incumbent keeps running" true
          (Task_id.equal (Installer.loaded inst)
             (Task_id.of_image (Bytes.of_string "incumbent"))));
    Alcotest.test_case "corrupted chunk: digest refusal, not activation" `Quick
      (fun () ->
        let _, inst = make_installer () in
        let offer, payload, _ = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        ignore (feed inst offer);
        check_bool "digest refusal" true
          (status_of (stream ~corrupt_at:40 inst payload)
          = Some Protocol.Ota_refused_digest);
        check_int "counter untouched" 0 (Installer.counter_value inst));
    Alcotest.test_case "truncated frames die in the decoder" `Quick (fun () ->
        let _, inst = make_installer () in
        let offer, _, _ = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        let frame = Protocol.encode offer in
        List.iter
          (fun len ->
            check_bool "no reply" true
              (Installer.on_frame inst (Bytes.sub frame 0 len) = []))
          [ 1; 4; 12; Bytes.length frame / 2; Bytes.length frame - 1 ];
        check_int "all counted malformed" 5 (Installer.malformed inst);
        check_int "nothing admitted" 0 (Installer.staged_bytes inst));
    Alcotest.test_case "lost final ack: the conclusion is replayed" `Quick
      (fun () ->
        let _, inst = make_installer () in
        let offer, payload, _ = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        ignore (feed inst offer);
        ignore (stream inst payload);
        check_int "applied once" 1 (Installer.activations inst);
        (* The sender never heard Ota_applied and retransmits: the
           installer must answer with the same conclusion, not a
           rollback refusal, and must not re-apply. *)
        check_bool "offer retransmission gets the verdict" true
          (status_of (Some (List.hd (feed inst offer)))
          = Some Protocol.Ota_applied);
        let tail_off = ((Bytes.length payload - 1) / 128) * 128 in
        let tail =
          Bytes.sub payload tail_off (Bytes.length payload - tail_off)
        in
        check_bool "chunk retransmission too" true
          (status_of
             (Some
                (List.hd
                   (feed inst
                      (Protocol.UpdateChunk
                         { seq = 1; offset = tail_off; data = tail }))))
          = Some Protocol.Ota_applied);
        check_int "still applied exactly once" 1 (Installer.activations inst);
        check_int "no rollback miscount" 0 (Installer.rollback_refusals inst));
    Alcotest.test_case "out-of-order chunk: cumulative nack" `Quick (fun () ->
        let _, inst = make_installer () in
        let offer, payload, _ = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        ignore (feed inst offer);
        match
          feed inst
            (Protocol.UpdateChunk
               { seq = 1; offset = 128; data = Bytes.sub payload 128 64 })
        with
        | [ Protocol.UpdateAck { status = Protocol.Ota_need; arg; _ } ] ->
            check_int "resume from zero" 0 arg
        | _ -> Alcotest.fail "expected a cumulative nack");
    Alcotest.test_case "crash mid-swap: no activation, then silence" `Quick
      (fun () ->
        let _, inst = make_installer () in
        Installer.arm_crash inst;
        let offer, payload, _ = offer_of ~version:1 (Tasks.yielder ~count:4 ()) in
        ignore (feed inst offer);
        check_bool "reboot report" true
          (status_of (stream inst payload) = Some Protocol.Ota_refused_crash);
        check_bool "crashed" true (Installer.crashed inst);
        check_int "counter never advanced" 0 (Installer.counter_value inst);
        check_bool "incumbent identity kept" true
          (Task_id.equal (Installer.loaded inst)
             (Task_id.of_image (Bytes.of_string "incumbent")));
        check_bool "silent until re-admitted" true (feed inst offer = []);
        Installer.clear_crash inst;
        check_bool "answers again after reboot" true (feed inst offer <> []));
    Alcotest.test_case "counter reset attempt bounces off the hardware" `Quick
      (fun () ->
        let _, inst = make_installer ~initial:5 () in
        Installer.attempt_counter_reset inst;
        check_int "value kept" 5 (Installer.counter_value inst);
        check_int "tamper counted" 1 (Installer.reset_attempts inst));
    Alcotest.test_case "answers attestation for what it runs" `Quick (fun () ->
        let _, inst = make_installer () in
        let id = Installer.loaded inst in
        let nonce = Bytes.make 20 'n' in
        (match feed inst (Protocol.Challenge { seq = 11; id; nonce }) with
        | [ Protocol.Response { report; _ } ] ->
            check_bool "genuine mac" true
              (Bytes.equal report.Attestation.mac
                 (Attestation.expected_mac ~ka ~id ~nonce))
        | _ -> Alcotest.fail "expected a static response");
        match
          feed inst
            (Protocol.Challenge
               {
                 seq = 12;
                 id = Task_id.of_image (Bytes.of_string "something-else");
                 nonce;
               })
        with
        | [ Protocol.Refusal _ ] -> ()
        | _ -> Alcotest.fail "expected a refusal for a foreign identity");
  ]

(* --- Sealed counter persistence across reboot -------------------------------- *)

let persistence_tests =
  [
    Alcotest.test_case "counter snapshot survives reboot via sealed storage"
      `Quick (fun () ->
        (* The device seals its counter snapshot under the firmware's
           identity; after a reboot (fresh platform, imported NVM) the
           restored counter still refuses the rollback. *)
        let owner = Task_id.of_image (Bytes.of_string "updater-fw") in
        let saved = ref Bytes.empty in
        let _, inst = make_installer ~persist:(fun b -> saved := b) () in
        let offer, payload, _ = offer_of ~version:4 (Tasks.yielder ~count:4 ()) in
        ignore (feed inst offer);
        ignore (stream inst payload);
        check_int "at version 4" 4 (Installer.counter_value inst);
        let p = Platform.create () in
        let storage = Option.get (Platform.storage p) in
        Secure_storage.seal storage ~owner ~slot:0 !saved;
        let nvm = Secure_storage.export storage in
        (* Reboot: a new platform imports the NVM image. *)
        let p2 = Platform.create () in
        let storage2 = Option.get (Platform.storage p2) in
        check_bool "import ok" true
          (Result.is_ok (Secure_storage.import storage2 nvm));
        let snap = Option.get (Secure_storage.unseal storage2 ~owner ~slot:0) in
        let _, c2 = fresh_counter () in
        check_bool "restored" true
          (Result.is_ok (Devices.Monotonic_counter.restore c2 snap));
        check_int "version survives the reboot" 4
          (Devices.Monotonic_counter.value c2);
        check_bool "stale offer still refused after reboot" true
          (not (Gate.version_ok ~counter:(Devices.Monotonic_counter.value c2)
                  ~version:4)));
  ]

(* --- Update.apply: measured activation under fault injection ----------------- *)

let load p ?priority ?secure name telf =
  Result.get_ok (Platform.load_blocking p ~name ?priority ?secure telf)

let apply_tests =
  [
    Alcotest.test_case "clean image: vetted, measured, swapped" `Quick
      (fun () ->
        let p = Platform.create () in
        let old_task = load p "svc" (Tasks.counter ()) in
        Platform.run_ticks p 3;
        let report =
          Result.get_ok (Update.apply p ~old_task (Tasks.yielder ~count:6 ()))
        in
        check_bool "old gone" true (old_task.Tcb.state = Tcb.Terminated);
        check_bool "new alive" true
          (report.Update.task.Tcb.state <> Tcb.Terminated);
        check_bool "swap stays bounded" true
          (report.Update.downtime_cycles * 10 < report.Update.staging_cycles));
    Alcotest.test_case "leaky image: vet refuses, old keeps running" `Quick
      (fun () ->
        let p = Platform.create () in
        let old_task = load p "svc" (Tasks.counter ()) in
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        (match Update.apply p ~old_task leaky with
        | Error e -> check_bool "names the vet" true (contains ~sub:"vet" e)
        | Ok _ -> Alcotest.fail "a leaky image was activated");
        check_bool "old keeps running" true
          (old_task.Tcb.state <> Tcb.Terminated));
    Alcotest.test_case
      "bit flip between vet and activation: never activate unmeasured" `Quick
      (fun () ->
        let p = Platform.create () in
        let old_task = load p "svc" (Tasks.counter ()) in
        let clean = Tasks.yielder ~count:6 () in
        let signed_for = Rtm.identity_of_telf clean in
        (* The image is tampered after the authority signed it: flip a
           data byte (the code still vets clean, so only the measurement
           can catch it). *)
        let image = Bytes.copy clean.Telf.image in
        Bytes.set image clean.Telf.text_size
          (Char.chr (Char.code (Bytes.get image clean.Telf.text_size) lxor 0x40));
        let tampered = { clean with Telf.image = image } in
        let alive () =
          List.length
            (List.filter
               (fun (t : Tcb.t) -> t.Tcb.state <> Tcb.Terminated)
               (Kernel.all_tasks (Platform.kernel p)))
        in
        let before = alive () in
        (match Update.apply p ~old_task ~expected:signed_for tampered with
        | Error e ->
            check_bool "measurement mismatch reported" true
              (contains ~sub:"vetted identity" e)
        | Ok _ -> Alcotest.fail "an unmeasured image was activated");
        check_bool "old keeps running" true
          (old_task.Tcb.state <> Tcb.Terminated);
        check_int "staged copy reclaimed" before (alive ()));
    Alcotest.test_case "watchdog bite during the update is survivable" `Quick
      (fun () ->
        let tick = Platform.default_config.Platform.tick_period in
        let config = { Platform.default_config with trace_enabled = true } in
        let p = Platform.create ~config () in
        let old_task = load p "svc" (Tasks.counter ()) in
        let worker = load p "worker" (Chaos.steady_worker ()) in
        let sup = Supervisor.create p in
        let watchdog =
          Platform.attach_watchdog p ~name:"wd" ~base:0xF100_0000 ~irq:5
            ~timeout:(4 * tick)
        in
        Supervisor.supervise sup worker ~policy:Supervisor.default_policy
          ~watchdog ();
        Platform.run_ticks p 3;
        (* Hang the supervised task, then update the service while the
           watchdog is counting down: the bite and the supervisor's
           restart land around the staging window and must not corrupt
           the swap. *)
        Platform.suspend p worker;
        Platform.run_ticks p 2;
        (* The replacement must keep running after the bite settles, so
           it is a counter (runs forever), not a finite yielder. *)
        let report =
          Result.get_ok (Update.apply p ~old_task (Tasks.counter ()))
        in
        Platform.run_ticks p 20;
        check_bool "update completed" true
          (report.Update.task.Tcb.state <> Tcb.Terminated);
        check_bool "old version gone" true (old_task.Tcb.state = Tcb.Terminated);
        check_bool "watchdog bit" true (Supervisor.bites sup >= 1);
        check_bool "worker recovered" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Running));
  ]

(* --- Canary rollout: the acceptance scenarios -------------------------------- *)

let platform_key_of ~serial =
  Sha1.digest (Bytes.of_string ("test-platform-key:" ^ serial))

let wave label version image = { Rollout.label; version; image }

let clean_wave v = wave (Printf.sprintf "clean-%d" v) v (Tasks.yielder ~count:(2 + v) ())

let run_waves ?(devices = 8) ?(canary = 2) ?(seed = 3) ?(faults = false) waves =
  Rollout.run ~devices ~canary ~seed ~faults ~platform_key_of
    ~incumbent:(Tasks.counter ()) waves

let rollout_tests =
  [
    Alcotest.test_case "clean waves canary then promote fleet-wide" `Quick
      (fun () ->
        let r = run_waves [ clean_wave 1; clean_wave 2 ] in
        check_int "two waves" 2 (List.length r.Rollout.waves);
        List.iter
          (fun (w : Rollout.wave_stats) ->
            check_bool "promoted" true w.Rollout.promoted;
            check_int "whole fleet applied" 8 w.Rollout.applied;
            check_int "every canary re-attested" 2 w.Rollout.attest_ok;
            check_int "no attest failures" 0 w.Rollout.attest_failed)
          r.Rollout.waves;
        check_bool "all counters advanced to the last version" true
          (List.for_all (fun c -> c = 2) r.Rollout.counters);
        check_bool "survived" true r.Rollout.survived;
        check_bool "nobody quarantined" true (r.Rollout.quarantined = []);
        check_bool "engine settled everything" false
          (Rollout.campaign_failed r));
    Alcotest.test_case "stale version: refused, presenter quarantined" `Quick
      (fun () ->
        let r =
          run_waves
            [ clean_wave 1; clean_wave 2;
              wave "stale" 1 (Tasks.yielder ~count:3 ()) ]
        in
        let stale = List.nth r.Rollout.waves 2 in
        check_bool "aborted" true stale.Rollout.aborted;
        check_int "only the canaries were ever offered" 2 stale.Rollout.offered;
        check_int "every canary refused the rollback" 2
          stale.Rollout.refused_rollback;
        check_int "nothing staged" 0 stale.Rollout.staged;
        check_bool "abort names the rollback" true
          (contains ~sub:"rollback"
             (Option.value ~default:"" stale.Rollout.abort_reason));
        check_bool "presenting devices quarantined" true
          (stale.Rollout.newly_quarantined
          = [ "dev-00000"; "dev-00001" ]);
        (* The refusal is cheap: offer check + MAC + counter read. *)
        check_bool "refusal latency measured" true
          (r.Rollout.rollback_refusal_cycles > 0
          && r.Rollout.rollback_refusal_cycles < 100_000);
        check_bool "fleet counters unharmed" true
          (List.for_all (fun c -> c = 2) r.Rollout.counters));
    Alcotest.test_case "leaky image: canary vet aborts before the fleet stages"
      `Quick (fun () ->
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let r = run_waves [ clean_wave 1; wave "leaky" 2 leaky ] in
        let w = List.nth r.Rollout.waves 1 in
        check_bool "aborted" true w.Rollout.aborted;
        check_int "offered to canaries only" 2 w.Rollout.offered;
        check_int "refused by the on-device vet" 2 w.Rollout.refused_vet;
        check_int "no activations" 0 w.Rollout.applied;
        check_bool "abort names the vet" true
          (contains ~sub:"vet"
             (Option.value ~default:"" w.Rollout.abort_reason));
        check_bool "canaries pulled" true
          (w.Rollout.newly_quarantined = [ "dev-00000"; "dev-00001" ]);
        (* The fleet still runs wave 1: no counter moved past 1. *)
        check_bool "no device adopted the leaky version" true
          (List.for_all (fun c -> c = 1) r.Rollout.counters));
    Alcotest.test_case "fault campaign is deterministic" `Quick (fun () ->
        let waves = [ clean_wave 1; clean_wave 2; clean_wave 3 ] in
        let a = run_waves ~devices:10 ~canary:3 ~seed:11 ~faults:true waves in
        let b = run_waves ~devices:10 ~canary:3 ~seed:11 ~faults:true waves in
        check_bool "identical reports" true (Rollout.equal a b);
        check_bool "verdict strings identical" true
          (Rollout.verdicts a = Rollout.verdicts b);
        let c = run_waves ~devices:10 ~canary:3 ~seed:12 ~faults:true waves in
        check_bool "different seed, different campaign" false
          (Rollout.to_string a = Rollout.to_string c));
    Alcotest.test_case "fault schedule is seeded and ota-flavoured" `Quick
      (fun () ->
        let a = Rollout.fault_events ~seed:5 ~devices:8 ~waves:6 in
        let b = Rollout.fault_events ~seed:5 ~devices:8 ~waves:6 in
        check_bool "deterministic" true (a = b);
        check_int "one event per wave" 6 (List.length a);
        List.iter
          (fun { Fault_plan.kind; _ } ->
            match kind with
            | Fault_plan.Frame_truncate _ | Fault_plan.Counter_reset _
            | Fault_plan.Canary_crash _ ->
                ()
            | k ->
                Alcotest.failf "unexpected fault kind %s"
                  (Fault_plan.kind_label k))
          a);
    Alcotest.test_case "flat rollout (canary = fleet) has no gate" `Quick
      (fun () ->
        let r = run_waves ~devices:6 ~canary:6 [ clean_wave 1 ] in
        let w = List.hd r.Rollout.waves in
        check_bool "promoted" true w.Rollout.promoted;
        check_int "everyone canaried" 6 w.Rollout.offered;
        check_int "everyone re-attested" 6 w.Rollout.attest_ok);
  ]

(* --- One gate for swarm and installer (unification) --------------------------- *)

let gate_tests =
  [
    Alcotest.test_case "swarm rollout verdict is the ota gate's verdict" `Quick
      (fun () ->
        let leaky =
          Tasks.key_leaker
            ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
            ()
        in
        let v = Gate.vet leaky in
        check_bool "gate refuses" false v.Gate.accepted;
        let r =
          Swarm.run ~mode:Swarm.Batched ~devices:4 ~epochs:1 ~seed:1
            ~rollout:leaky ()
        in
        let sr = Option.get r.Swarm.rollout in
        check_bool "same verdict" false sr.Swarm.accepted;
        check_bool "same refusal text" true
          (sr.Swarm.refusal = v.Gate.refusal);
        check_int "same per-device vet bill" v.Gate.vet_cycles
          sr.Swarm.vet_cycles_per_device;
        let clean = Gate.vet (Tasks.counter ()) in
        check_bool "clean accepted with no refusal" true
          (clean.Gate.accepted && clean.Gate.refusal = None));
  ]

(* --- Closed-loop serve arrivals ---------------------------------------------- *)

let serve_tests =
  [
    Alcotest.test_case "closed loop self-limits where open loop sheds" `Quick
      (fun () ->
        let closed =
          Gateway.run ~devices:16 ~slices:120 ~arrival_permille:12_000 ~seed:2
            ~arrival:(Gateway.Closed_loop { think = 6 })
            ()
        in
        check_bool "recorded as closed loop" true
          (closed.Gateway.think = Some 6);
        check_int "every admission settled" closed.Gateway.admitted
          (Gateway.settled closed);
        check_bool "at most one outstanding per device" true
          (closed.Gateway.max_queue_depth <= 16);
        check_int "never shed on queue pressure" 0 closed.Gateway.shed_busy;
        let open_loop =
          Gateway.run ~devices:16 ~slices:120 ~arrival_permille:12_000 ~seed:2
            ()
        in
        check_bool "open loop floods where closed cannot" true
          (Gateway.shed open_loop > Gateway.shed closed);
        let again =
          Gateway.run ~devices:16 ~slices:120 ~arrival_permille:12_000 ~seed:2
            ~arrival:(Gateway.Closed_loop { think = 6 })
            ()
        in
        check_bool "closed loop deterministic" true
          (Gateway.equal closed again));
  ]

let () =
  Alcotest.run "ota"
    [
      ("monotonic counter", counter_tests);
      ("wire format", wire_tests);
      ("wire properties", wire_property_tests);
      ("installer", installer_tests);
      ("persistence", persistence_tests);
      ("measured activation", apply_tests);
      ("canary rollout", rollout_tests);
      ("gate unification", gate_tests);
      ("closed loop", serve_tests);
    ]
