(* Incremental-verification substrate tests.

   Three layers back the fleet engine's O(changed) epoch claim:

   - The optimized SHA-1/SHA-256 compress loops (preallocated message
     schedules, unsafe accessors) are differentially tested against the
     pre-optimization implementations, kept verbatim below as oracles,
     plus NIST one-shot vectors — a hash that drifts by one bit would
     silently invalidate every sealed root.
   - The compression counters moved to Atomic/domain-local storage for
     the parallel engine; a multi-domain hammer pins the exact global
     count and the per-domain isolation the cycle-charging discipline
     depends on.
   - Merkle.Inc's dirty-path commit is property-tested equivalent to
     rebuilding from scratch (roots and proofs bit-identical), and
     proofs from a superseded commit must not verify against the new
     root. *)

module Crypto = Tytan_crypto
open Crypto

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Oracles: the pre-optimization hashes, kept verbatim ------------------ *)

module Ref_sha1 = struct
  let block_size = 64
  let mask32 = 0xFFFF_FFFF

  type ctx = {
    mutable h0 : int;
    mutable h1 : int;
    mutable h2 : int;
    mutable h3 : int;
    mutable h4 : int;
    buffer : Bytes.t;
    mutable buffered : int;
    mutable total_bytes : int;
  }

  let init () =
    {
      h0 = 0x67452301;
      h1 = 0xEFCDAB89;
      h2 = 0x98BADCFE;
      h3 = 0x10325476;
      h4 = 0xC3D2E1F0;
      buffer = Bytes.make block_size '\000';
      buffered = 0;
      total_bytes = 0;
    }

  let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

  let compress ctx block pos =
    let w = Array.make 80 0 in
    for i = 0 to 15 do
      w.(i) <-
        (Char.code (Bytes.get block (pos + (4 * i))) lsl 24)
        lor (Char.code (Bytes.get block (pos + (4 * i) + 1)) lsl 16)
        lor (Char.code (Bytes.get block (pos + (4 * i) + 2)) lsl 8)
        lor Char.code (Bytes.get block (pos + (4 * i) + 3))
    done;
    for i = 16 to 79 do
      w.(i) <-
        rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
    done;
    let a = ref ctx.h0
    and b = ref ctx.h1
    and c = ref ctx.h2
    and d = ref ctx.h3
    and e = ref ctx.h4 in
    for i = 0 to 79 do
      let f, k =
        if i < 20 then
          (!b land !c lor (lnot !b land mask32 land !d), 0x5A827999)
        else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
        else if i < 60 then
          (!b land !c lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
        else (!b lxor !c lxor !d, 0xCA62C1D6)
      in
      let temp = (rotl !a 5 + f + !e + k + w.(i)) land mask32 in
      e := !d;
      d := !c;
      c := rotl !b 30;
      b := !a;
      a := temp
    done;
    ctx.h0 <- (ctx.h0 + !a) land mask32;
    ctx.h1 <- (ctx.h1 + !b) land mask32;
    ctx.h2 <- (ctx.h2 + !c) land mask32;
    ctx.h3 <- (ctx.h3 + !d) land mask32;
    ctx.h4 <- (ctx.h4 + !e) land mask32

  let feed ctx data =
    let len = Bytes.length data in
    ctx.total_bytes <- ctx.total_bytes + len;
    let consumed = ref 0 in
    if ctx.buffered > 0 then begin
      let take = min len (block_size - ctx.buffered) in
      Bytes.blit data 0 ctx.buffer ctx.buffered take;
      ctx.buffered <- ctx.buffered + take;
      consumed := take;
      if ctx.buffered = block_size then begin
        compress ctx ctx.buffer 0;
        ctx.buffered <- 0
      end
    end;
    while len - !consumed >= block_size do
      compress ctx data !consumed;
      consumed := !consumed + block_size
    done;
    let tail = len - !consumed in
    if tail > 0 then begin
      Bytes.blit data !consumed ctx.buffer ctx.buffered tail;
      ctx.buffered <- ctx.buffered + tail
    end

  let finalize ctx =
    let bit_length = ctx.total_bytes * 8 in
    let pad_len =
      let rem = (ctx.total_bytes + 1) mod block_size in
      if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
    in
    let padding = Bytes.make (pad_len + 8) '\000' in
    Bytes.set padding 0 '\x80';
    for i = 0 to 7 do
      Bytes.set padding
        (pad_len + i)
        (Char.chr ((bit_length lsr (8 * (7 - i))) land 0xFF))
    done;
    feed ctx padding;
    let out = Bytes.create 20 in
    let put i v =
      Bytes.set out i (Char.chr ((v lsr 24) land 0xFF));
      Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xFF));
      Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xFF));
      Bytes.set out (i + 3) (Char.chr (v land 0xFF))
    in
    put 0 ctx.h0;
    put 4 ctx.h1;
    put 8 ctx.h2;
    put 12 ctx.h3;
    put 16 ctx.h4;
    out

  let digest data =
    let ctx = init () in
    feed ctx data;
    finalize ctx
end

module Ref_sha256 = struct
  let block_size = 64
  let mask32 = 0xFFFF_FFFF

  let k =
    [|
      0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
      0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
      0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
      0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
      0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
      0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
      0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
      0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
      0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
      0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
      0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
    |]

  type ctx = {
    h : int array;
    buffer : Bytes.t;
    mutable buffered : int;
    mutable total_bytes : int;
  }

  let init () =
    {
      h =
        [|
          0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
          0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
        |];
      buffer = Bytes.make block_size '\000';
      buffered = 0;
      total_bytes = 0;
    }

  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32
  let shr x n = x lsr n

  let compress ctx block pos =
    let w = Array.make 64 0 in
    for i = 0 to 15 do
      w.(i) <-
        (Char.code (Bytes.get block (pos + (4 * i))) lsl 24)
        lor (Char.code (Bytes.get block (pos + (4 * i) + 1)) lsl 16)
        lor (Char.code (Bytes.get block (pos + (4 * i) + 2)) lsl 8)
        lor Char.code (Bytes.get block (pos + (4 * i) + 3))
    done;
    for i = 16 to 63 do
      let s0 =
        rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor shr w.(i - 15) 3
      in
      let s1 =
        rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor shr w.(i - 2) 10
      in
      w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
    done;
    let a = ref ctx.h.(0)
    and b = ref ctx.h.(1)
    and c = ref ctx.h.(2)
    and d = ref ctx.h.(3)
    and e = ref ctx.h.(4)
    and f = ref ctx.h.(5)
    and g = ref ctx.h.(6)
    and h = ref ctx.h.(7) in
    for i = 0 to 63 do
      let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
      let ch = !e land !f lxor (lnot !e land mask32 land !g) in
      let temp1 = (!h + s1 + ch + k.(i) + w.(i)) land mask32 in
      let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
      let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
      let temp2 = (s0 + maj) land mask32 in
      h := !g;
      g := !f;
      f := !e;
      e := (!d + temp1) land mask32;
      d := !c;
      c := !b;
      b := !a;
      a := (temp1 + temp2) land mask32
    done;
    let update i v = ctx.h.(i) <- (ctx.h.(i) + v) land mask32 in
    update 0 !a;
    update 1 !b;
    update 2 !c;
    update 3 !d;
    update 4 !e;
    update 5 !f;
    update 6 !g;
    update 7 !h

  let feed ctx data =
    let len = Bytes.length data in
    ctx.total_bytes <- ctx.total_bytes + len;
    let consumed = ref 0 in
    if ctx.buffered > 0 then begin
      let take = min len (block_size - ctx.buffered) in
      Bytes.blit data 0 ctx.buffer ctx.buffered take;
      ctx.buffered <- ctx.buffered + take;
      consumed := take;
      if ctx.buffered = block_size then begin
        compress ctx ctx.buffer 0;
        ctx.buffered <- 0
      end
    end;
    while len - !consumed >= block_size do
      compress ctx data !consumed;
      consumed := !consumed + block_size
    done;
    let tail = len - !consumed in
    if tail > 0 then begin
      Bytes.blit data !consumed ctx.buffer ctx.buffered tail;
      ctx.buffered <- ctx.buffered + tail
    end

  let finalize ctx =
    let bit_length = ctx.total_bytes * 8 in
    let pad_len =
      let rem = (ctx.total_bytes + 1) mod block_size in
      if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
    in
    let padding = Bytes.make (pad_len + 8) '\000' in
    Bytes.set padding 0 '\x80';
    for i = 0 to 7 do
      Bytes.set padding
        (pad_len + i)
        (Char.chr ((bit_length lsr (8 * (7 - i))) land 0xFF))
    done;
    feed ctx padding;
    let out = Bytes.create 32 in
    Array.iteri
      (fun i v ->
        Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
        Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
        Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
        Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF)))
      ctx.h;
    out

  let digest data =
    let ctx = init () in
    feed ctx data;
    finalize ctx
end

(* --- Differential: optimized compress vs oracle --------------------------- *)

(* Random payloads with random streaming chunk boundaries: the optimized
   loops must agree with the oracles on every byte and every buffering
   path (partial-block top-up, whole blocks from input, buffered tail). *)
let chunked_gen =
  QCheck.Gen.(
    let* n = int_range 0 700 in
    let* bytes = string_size ~gen:(map Char.chr (int_range 0 255)) (return n) in
    let* cuts = list_size (int_range 0 6) (int_range 0 (max 1 n)) in
    return (bytes, List.sort_uniq compare cuts))

let chunked_arb =
  QCheck.make chunked_gen ~print:(fun (s, cuts) ->
      Printf.sprintf "len=%d cuts=[%s]" (String.length s)
        (String.concat ";" (List.map string_of_int cuts)))

let feed_chunks ~feed_sub ctx data cuts =
  let n = Bytes.length data in
  let bounds = List.filter (fun c -> c <= n) cuts @ [ n ] in
  let pos = ref 0 in
  List.iter
    (fun c ->
      if c > !pos then begin
        feed_sub ctx data ~pos:!pos ~len:(c - !pos);
        pos := c
      end)
    bounds

let sha_differential_tests =
  let count = 300 in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:"sha1 streaming == reference oracle"
         chunked_arb (fun (s, cuts) ->
           let data = Bytes.of_string s in
           let ctx = Sha1.init () in
           feed_chunks ~feed_sub:Sha1.feed_sub ctx data cuts;
           Sha1.finalize ctx = Ref_sha1.digest data));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:"sha256 streaming == reference oracle"
         chunked_arb (fun (s, cuts) ->
           let data = Bytes.of_string s in
           let ctx = Sha256.init () in
           feed_chunks ~feed_sub:Sha256.feed_sub ctx data cuts;
           Sha256.finalize ctx = Ref_sha256.digest data));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100
         ~name:"ctx copy is independent (HMAC state caching)" chunked_arb
         (fun (s, _) ->
           (* Hmac.prepare/mac_with clone a fed context; finalizing the
              clone must not disturb the original, and both must agree
              with the oracle. *)
           let data = Bytes.of_string s in
           let ctx = Sha1.init () in
           Sha1.feed ctx data;
           let clone = Sha1.copy ctx in
           Sha1.feed clone data;
           let d2 = Sha1.finalize clone in
           let d1 = Sha1.finalize ctx in
           d1 = Ref_sha1.digest data
           && d2 = Ref_sha1.digest (Bytes.cat data data)));
    Alcotest.test_case "sha256 NIST million-a vector" `Slow (fun () ->
        Alcotest.(check string) "vector"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Sha256.to_hex (Sha256.digest (Bytes.make 1_000_000 'a'))));
    Alcotest.test_case "sha256 NIST four-block vector" `Quick (fun () ->
        Alcotest.(check string) "vector"
          "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
          (Sha256.to_hex
             (Sha256.digest_string
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                 ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")));
    Alcotest.test_case "hmac prepared state == one-shot mac" `Quick (fun () ->
        (* The aggregator's per-device key-schedule cache: mac_with over
           a prepared state must be byte- and cost-identical to mac. *)
        let key = Bytes.of_string "per-device-attestation-key" in
        let state = Hmac.prepare ~key in
        List.iter
          (fun msg ->
            let m = Bytes.of_string msg in
            check_bool ("msg " ^ msg) true (Hmac.mac_with state m = Hmac.mac ~key m))
          [ ""; "x"; String.make 55 'p'; String.make 64 'q'; String.make 200 'r' ];
        let c0 = Sha1.total_compressions () in
        ignore (Hmac.mac_with state (Bytes.of_string "one-block message"));
        check_int "cached state: 2 compressions per short MAC" 2
          (Sha1.total_compressions () - c0));
  ]

(* --- Atomic counters under domain parallelism ------------------------------ *)

let hammer_domains = 4
let hammer_digests = 250

let counter_tests =
  [
    Alcotest.test_case "4-domain hammer: exact global compression count"
      `Quick (fun () ->
        (* A 64-byte message is exactly 2 compressions (data block +
           padding block); 4 domains x 250 digests must bump the global
           Atomic by exactly 4 * 250 * 2 with no lost updates, and each
           domain's local counter must see only its own work. *)
        let g0 = Sha1.total_compressions () in
        let worker () =
          let d0 = Sha1.domain_compressions () in
          for i = 1 to hammer_digests do
            ignore (Sha1.digest (Bytes.make 64 (Char.chr (i land 0xFF))))
          done;
          Sha1.domain_compressions () - d0
        in
        let spawned =
          Array.init (hammer_domains - 1) (fun _ -> Domain.spawn worker)
        in
        let mine = worker () in
        let locals = mine :: Array.to_list (Array.map Domain.join spawned) in
        List.iteri
          (fun i local ->
            check_int
              (Printf.sprintf "domain %d local count" i)
              (hammer_digests * 2) local)
          locals;
        check_int "global atomic total"
          (hammer_domains * hammer_digests * 2)
          (Sha1.total_compressions () - g0));
    Alcotest.test_case "sha256 domain counter isolated too" `Quick (fun () ->
        let g0 = Sha256.total_compressions () in
        let other =
          Domain.spawn (fun () ->
              for _ = 1 to 50 do
                ignore (Sha256.digest (Bytes.make 64 'z'))
              done;
              Sha256.domain_compressions ())
        in
        let d0 = Sha256.domain_compressions () in
        ignore (Sha256.digest (Bytes.make 64 'y'));
        let mine = Sha256.domain_compressions () - d0 in
        let theirs = Domain.join other in
        check_int "my domain saw only my 2" 2 mine;
        check_bool "other domain saw at least its 100" true (theirs >= 100);
        check_int "global saw everything" 102 (Sha256.total_compressions () - g0));
  ]

(* --- Merkle.Inc: dirty-path commit == full rebuild ------------------------- *)

type inc_op =
  | Append of string
  | Set of int * string  (* index is taken mod current size *)
  | Commit

let op_gen =
  QCheck.Gen.(
    let payload = string_size ~gen:printable (int_range 0 24) in
    frequency
      [
        (4, map (fun s -> Append s) payload);
        (3, map2 (fun i s -> Set (i, s)) (int_range 0 1000) payload);
        (2, return Commit);
      ])

let ops_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 60) op_gen)
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Append s -> Printf.sprintf "A%d" (String.length s)
             | Set (i, s) -> Printf.sprintf "S%d/%d" i (String.length s)
             | Commit -> "C")
           ops))

(* Replay the op sequence against both the incremental tree and a plain
   list model; at every commit the incremental root must equal a
   from-scratch [Merkle.build] over the model, and every leaf's proof
   must verify against it. *)
let replay ops =
  let inc = Merkle.Inc.create () in
  let model = ref [] in
  (* newest first *)
  let size () = List.length !model in
  let ok = ref true in
  let check_commit () =
    if size () > 0 then begin
      let leaves = Array.of_list (List.rev !model) in
      let expected = Merkle.root (Merkle.build leaves) in
      let got = Merkle.Inc.commit inc in
      if got <> expected then ok := false;
      Array.iteri
        (fun i leaf ->
          if
            not
              (Merkle.verify ~root:expected ~leaf (Merkle.Inc.proof inc i))
          then ok := false)
        leaves
    end
  in
  List.iter
    (fun op ->
      match op with
      | Append s ->
          let i = Merkle.Inc.append inc (Bytes.of_string s) in
          if i <> size () then ok := false;
          model := Bytes.of_string s :: !model
      | Set (i, s) ->
          if size () > 0 then begin
            let i = i mod size () in
            Merkle.Inc.set inc i (Bytes.of_string s);
            model :=
              List.rev
                (List.mapi
                   (fun j b -> if j = i then Bytes.of_string s else b)
                   (List.rev !model))
          end
      | Commit -> check_commit ())
    ops;
  check_commit ();
  !ok

let merkle_inc_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"dirty-path commit == full rebuild (roots and proofs)" ops_arb
         replay);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100
         ~name:"proofs from a superseded commit are rejected"
         QCheck.(pair (int_range 2 40) (int_range 0 1000))
         (fun (n, j) ->
           let inc = Merkle.Inc.create () in
           for i = 0 to n - 1 do
             ignore (Merkle.Inc.append inc (Bytes.of_string (string_of_int i)))
           done;
           let root1 = Merkle.Inc.commit inc in
           let j = j mod n in
           let old_leaf = Bytes.of_string (string_of_int j) in
           let old_proof = Merkle.Inc.proof inc j in
           Merkle.Inc.set inc j (Bytes.of_string "mutated");
           let root2 = Merkle.Inc.commit inc in
           (* the old proof was valid against its own epoch's root... *)
           Merkle.verify ~root:root1 ~leaf:old_leaf old_proof
           (* ...and must not carry over to the new one *)
           && not (Merkle.verify ~root:root2 ~leaf:old_leaf old_proof)
           && Merkle.verify ~root:root2 ~leaf:(Bytes.of_string "mutated")
                (Merkle.Inc.proof inc j)));
    Alcotest.test_case "growth across commits matches rebuild" `Quick (fun () ->
        (* Crossing power-of-two boundaries exercises the odd-node
           promotion and the grown-level boundary rule. *)
        let inc = Merkle.Inc.create () in
        let model = ref [] in
        for n = 0 to 40 do
          ignore (Merkle.Inc.append inc (Bytes.of_string (string_of_int n)));
          model := !model @ [ Bytes.of_string (string_of_int n) ];
          let expected = Merkle.root (Merkle.build (Array.of_list !model)) in
          check_bool
            (Printf.sprintf "root at size %d" (n + 1))
            true
            (Merkle.Inc.commit inc = expected)
        done);
    Alcotest.test_case "root/proof refuse uncommitted changes" `Quick (fun () ->
        let inc = Merkle.Inc.create () in
        ignore (Merkle.Inc.append inc (Bytes.of_string "x"));
        check_bool "root raises" true
          (try
             ignore (Merkle.Inc.root inc);
             false
           with Invalid_argument _ -> true);
        ignore (Merkle.Inc.commit inc);
        ignore (Merkle.Inc.root inc);
        Merkle.Inc.set inc 0 (Bytes.of_string "y");
        check_bool "proof raises after set" true
          (try
             ignore (Merkle.Inc.proof inc 0);
             false
           with Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "incremental"
    [
      ("sha-differential", sha_differential_tests);
      ("atomic-counters", counter_tests);
      ("merkle-inc", merkle_inc_tests);
    ]
