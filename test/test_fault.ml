(* The fault-injection subsystem: plans, memory fault hooks, the watchdog
   device, link fault kinds, protocol fuzzing, verifier backoff, and the
   supervisor's attestation-gated recovery. *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
open Tytan_netsim
open Tytan_fault

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Fault plans ------------------------------------------------------------ *)

let plan_tests =
  [
    Alcotest.test_case "events sorted by tick, stably" `Quick (fun () ->
        let ev tick kind = { Fault_plan.at_tick = tick; kind } in
        let plan =
          Fault_plan.make ~seed:3
            [
              ev 9 (Fault_plan.Task_kill { name = "b" });
              ev 2 (Fault_plan.Irq_storm { irq = 9; count = 1 });
              ev 9 (Fault_plan.Task_hang { name = "a" });
            ]
        in
        check_int "count" 3 (List.length plan.Fault_plan.events);
        match plan.Fault_plan.events with
        | [ a; b; c ] ->
            check_int "first" 2 a.Fault_plan.at_tick;
            check_bool "stable order at tick 9" true
              (match (b.Fault_plan.kind, c.Fault_plan.kind) with
              | Fault_plan.Task_kill _, Fault_plan.Task_hang _ -> true
              | _ -> false)
        | _ -> Alcotest.fail "wrong shape");
    Alcotest.test_case "same seed, same random flips" `Quick (fun () ->
        let gen () =
          Fault_plan.random_bit_flips (Fault_plan.Prng.create 77) ~count:10
            ~base:0x1000 ~size:256 ~first_tick:3 ~last_tick:9
        in
        check_bool "identical" true (gen () = gen ());
        List.iter
          (fun (e : Fault_plan.event) ->
            check_bool "tick window" true (e.at_tick >= 3 && e.at_tick <= 9);
            match e.kind with
            | Fault_plan.Bit_flip { addr; bit } ->
                check_bool "addr in region" true
                  (addr >= 0x1000 && addr < 0x1100);
                check_bool "bit in byte" true (bit >= 0 && bit < 8)
            | _ -> Alcotest.fail "not a bit flip")
          (gen ()));
    Alcotest.test_case "prng bound respected" `Quick (fun () ->
        let rng = Fault_plan.Prng.create 5 in
        for _ = 1 to 1000 do
          let v = Fault_plan.Prng.int rng 7 in
          check_bool "in range" true (v >= 0 && v < 7)
        done);
  ]

(* --- Memory fault hooks ------------------------------------------------------ *)

let null_device ~name ~base value =
  {
    Memory.name;
    base;
    size = 8;
    read32 = (fun ~offset:_ -> value);
    write32 = (fun ~offset:_ _ -> ());
  }

let memory_tests =
  [
    Alcotest.test_case "write fault corrupts RAM stores" `Quick (fun () ->
        let mem = Memory.create ~size:4096 in
        Memory.set_write_fault mem
          (Some (fun ~addr:_ ~value -> value lxor 1));
        Memory.write32 mem 0x10 4;
        check_int "bit flipped" 5 (Memory.read32 mem 0x10);
        Memory.write8 mem 0x20 0x40;
        check_int "byte store too" 0x41 (Memory.read8 mem 0x20);
        Memory.set_write_fault mem None;
        Memory.write32 mem 0x10 4;
        check_int "hook removed" 4 (Memory.read32 mem 0x10));
    Alcotest.test_case "write fault does not touch MMIO or blit" `Quick
      (fun () ->
        let mem = Memory.create ~size:4096 in
        let seen = ref [] in
        Memory.set_write_fault mem
          (Some
             (fun ~addr ~value ->
               seen := addr :: !seen;
               value));
        Memory.map_device mem (null_device ~name:"sink" ~base:0xF000_0000 7);
        Memory.write32 mem 0xF000_0000 42;
        Memory.blit_bytes mem 0x100 (Bytes.make 8 'x');
        check_int "only RAM stores consulted the hook" 0 (List.length !seen));
    Alcotest.test_case "mmio read fault glitches one device" `Quick (fun () ->
        let mem = Memory.create ~size:4096 in
        Memory.map_device mem (null_device ~name:"good" ~base:0xF000_0000 7);
        Memory.map_device mem (null_device ~name:"bad" ~base:0xF000_1000 7);
        let left = ref 2 in
        Memory.set_mmio_read_fault mem
          (Some
             (fun ~device ~addr:_ ->
               if device = "bad" && !left > 0 then begin
                 decr left;
                 Some 0xBEEF
               end
               else None));
        check_int "glitched" 0xBEEF (Memory.read32 mem 0xF000_1000);
        check_int "other device clean" 7 (Memory.read32 mem 0xF000_0000);
        check_int "glitched again" 0xBEEF (Memory.read32 mem 0xF000_1000);
        check_int "transient: device recovers" 7 (Memory.read32 mem 0xF000_1000);
        check_int "ram unaffected" 0 (Memory.read32 mem 0x40));
  ]

(* --- Watchdog device --------------------------------------------------------- *)

let watchdog_fixture () =
  let mem = Memory.create ~size:4096 in
  let clock = Cycles.create () in
  let engine = Exception_engine.create mem ~idt_base:0x100 in
  let wd =
    Devices.Watchdog.create engine clock ~name:"wd" ~base:0xF000_0000 ~irq:5
      ~timeout:100
  in
  Memory.map_device mem (Devices.Watchdog.device wd);
  (mem, clock, engine, wd)

let watchdog_tests =
  [
    Alcotest.test_case "bites when starved, not when kicked" `Quick (fun () ->
        let _, clock, engine, wd = watchdog_fixture () in
        Cycles.charge clock 90;
        Devices.Watchdog.poll wd;
        check_int "not yet" 0 (Devices.Watchdog.fired wd);
        Devices.Watchdog.kick wd;
        Cycles.charge clock 90;
        Devices.Watchdog.poll wd;
        check_int "kick deferred the bite" 0 (Devices.Watchdog.fired wd);
        Cycles.charge clock 20;
        Devices.Watchdog.poll wd;
        check_int "bite" 1 (Devices.Watchdog.fired wd);
        check_bool "irq raised" true
          (Exception_engine.pending_irq engine = Some 5);
        (* Re-armed: another full interval passes before the next bite. *)
        Cycles.charge clock 99;
        Devices.Watchdog.poll wd;
        check_int "re-armed" 1 (Devices.Watchdog.fired wd);
        Cycles.charge clock 2;
        Devices.Watchdog.poll wd;
        check_int "second bite" 2 (Devices.Watchdog.fired wd));
    Alcotest.test_case "disabled watchdog never bites" `Quick (fun () ->
        let _, clock, _, wd = watchdog_fixture () in
        Devices.Watchdog.disable wd;
        Cycles.charge clock 1000;
        Devices.Watchdog.poll wd;
        check_int "silent" 0 (Devices.Watchdog.fired wd);
        check_int "remaining reads 0 when off" 0 (Devices.Watchdog.remaining wd));
    Alcotest.test_case "register map: kick, timeout, ctrl" `Quick (fun () ->
        let mem, clock, _, wd = watchdog_fixture () in
        let base = 0xF000_0000 in
        check_int "remaining at +0" 100 (Memory.read32 mem base);
        Cycles.charge clock 40;
        check_int "counts down" 60 (Memory.read32 mem base);
        Memory.write32 mem base 1 (* KICK *);
        check_int "kick resets" 100 (Memory.read32 mem base);
        Memory.write32 mem (base + 4) 250 (* TIMEOUT *);
        check_int "timeout readable" 250 (Memory.read32 mem (base + 4));
        check_int "new countdown" 250 (Memory.read32 mem base);
        Memory.write32 mem (base + 8) 0 (* CTRL: disable *);
        Cycles.charge clock 1000;
        Devices.Watchdog.poll wd;
        check_int "ctrl read = fired" 0 (Memory.read32 mem (base + 8));
        Memory.write32 mem (base + 8) 1 (* CTRL: enable *);
        Cycles.charge clock 251;
        Devices.Watchdog.poll wd;
        check_int "fired after re-enable" 1 (Memory.read32 mem (base + 8)));
  ]

(* --- Link fault kinds --------------------------------------------------------- *)

let drain link ~last =
  let n = ref 0 in
  for at = 0 to last do
    n := !n + List.length (Link.deliver link ~to_:Link.Device ~at);
    n := !n + List.length (Link.deliver link ~to_:Link.Remote ~at)
  done;
  !n

let link_tests =
  [
    Alcotest.test_case "counters reconcile under a mixed fault plan" `Quick
      (fun () ->
        let link =
          Link.create ~seed:11 ~loss_percent:20 ~corrupt_percent:25
            ~duplicate_percent:25 ~reorder_percent:25 ()
        in
        for i = 1 to 300 do
          Link.send link ~from:Link.Remote ~at:0
            (Bytes.of_string (Printf.sprintf "frame-%03d" i))
        done;
        let got = drain link ~last:10 in
        check_int "sent" 300 (Link.sent_count link);
        check_bool "all kinds occurred" true
          (Link.dropped_count link > 0
          && Link.corrupted_count link > 0
          && Link.duplicated_count link > 0
          && Link.reordered_count link > 0);
        check_int "delivered = sent - dropped + duplicated"
          (Link.sent_count link - Link.dropped_count link
         + Link.duplicated_count link)
          (Link.delivered_count link);
        check_int "drained everything" (Link.delivered_count link) got);
    Alcotest.test_case "fault kinds off by default" `Quick (fun () ->
        let link = Link.create ~seed:11 ~loss_percent:30 () in
        for _ = 1 to 100 do
          Link.send link ~from:Link.Device ~at:0 (Bytes.of_string "hello")
        done;
        ignore (drain link ~last:5);
        check_int "no corruption" 0 (Link.corrupted_count link);
        check_int "no duplication" 0 (Link.duplicated_count link);
        check_int "no reordering" 0 (Link.reordered_count link);
        check_int "reconciles"
          (100 - Link.dropped_count link)
          (Link.delivered_count link));
    Alcotest.test_case "corruption changes exactly one byte" `Quick (fun () ->
        let link = Link.create ~seed:2 ~corrupt_percent:100 ~delay:0 () in
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "payload");
        match Link.deliver link ~to_:Link.Device ~at:0 with
        | [ got ] ->
            let reference = Bytes.of_string "payload" in
            check_int "same length" (Bytes.length reference) (Bytes.length got);
            let diffs = ref 0 in
            Bytes.iteri
              (fun i c -> if Bytes.get reference i <> c then incr diffs)
              got;
            check_int "one byte differs" 1 !diffs
        | frames -> Alcotest.failf "expected 1 frame, got %d" (List.length frames));
  ]

(* --- Protocol decoder fuzzing ------------------------------------------------- *)

let fuzz_tests =
  [
    Alcotest.test_case "decode never raises on mutated frames" `Quick (fun () ->
        let rng = Fault_plan.Prng.create 0xF422 in
        let id = Task_id.of_image (Bytes.of_string "fuzz-target") in
        let originals =
          [
            Protocol.encode
              (Protocol.Challenge
                 { seq = 7; id; nonce = Bytes.of_string "twelve-bytes" });
            Protocol.encode
              (Protocol.Response
                 {
                   seq = 9;
                   report =
                     {
                       Attestation.id;
                       nonce = Bytes.of_string "n0";
                       mac = Bytes.make 20 '\x5A';
                     };
                 });
            Protocol.encode (Protocol.Refusal { seq = 3 });
          ]
        in
        let mutate frame =
          let frame = Bytes.copy frame in
          let n = Bytes.length frame in
          match Fault_plan.Prng.int rng 4 with
          | 0 -> Bytes.sub frame 0 (Fault_plan.Prng.int rng (n + 1)) (* truncate *)
          | 1 ->
              (* flip a random byte *)
              let pos = Fault_plan.Prng.int rng n in
              Bytes.set frame pos
                (Char.chr
                   (Char.code (Bytes.get frame pos)
                   lxor (1 + Fault_plan.Prng.int rng 255)));
              frame
          | 2 ->
              (* corrupt the nonce-length field (offset 13) when present *)
              if n > 13 then
                Bytes.set frame 13 (Char.chr (Fault_plan.Prng.int rng 256));
              frame
          | _ ->
              (* raw garbage of the same length *)
              Bytes.init n (fun _ -> Char.chr (Fault_plan.Prng.int rng 256))
        in
        let decoded_ok = ref 0 and rejected = ref 0 in
        for i = 0 to 1999 do
          let original = List.nth originals (i mod 3) in
          let mutated = mutate original in
          match Protocol.decode mutated with
          | Ok _ -> incr decoded_ok
          | Error _ -> incr rejected
          | exception e ->
              Alcotest.failf "decode raised %s on %S" (Printexc.to_string e)
                (Bytes.to_string mutated)
        done;
        (* Most mutants must be rejected; a byte flip inside the nonce
           still decodes (there is no checksum), so some survive. *)
        check_bool "mutants were rejected" true (!rejected > 1000);
        check_bool "some benign mutants decode" true (!decoded_ok > 0));
  ]

(* --- Verifier backoff ---------------------------------------------------------- *)

let send_slices v ~until =
  let sent = ref [] in
  for at = 0 to until do
    match Verifier.poll v ~at with
    | Some _ -> sent := at :: !sent
    | None -> ()
  done;
  List.rev !sent

let ka = Bytes.make 20 'k'
let some_id = Task_id.of_image (Bytes.of_string "backoff-target")

let backoff_tests =
  [
    Alcotest.test_case "default schedule is the fixed timeout" `Quick (fun () ->
        let v = Verifier.create ~ka ~expected:some_id ~max_attempts:4 () in
        check_bool "every 8 slices" true
          (send_slices v ~until:40 = [ 0; 8; 16; 24 ]));
    Alcotest.test_case "backoff doubles up to the cap" `Quick (fun () ->
        let v =
          Verifier.create ~ka ~expected:some_id ~max_attempts:5
            ~backoff:{ Verifier.base_slices = 2; cap_slices = 8; jitter_slices = 0 }
            ()
        in
        (* waits 2, 4, 8, 8 → sends at 0, 2, 6, 14, 22 *)
        check_bool "doubling, then capped" true
          (send_slices v ~until:60 = [ 0; 2; 6; 14; 22 ]));
    Alcotest.test_case "jitter is deterministic per session" `Quick (fun () ->
        let make () =
          Verifier.create ~ka ~expected:some_id ~max_attempts:6
            ~backoff:Verifier.default_backoff ()
        in
        let a = send_slices (make ()) ~until:300 in
        let b = send_slices (make ()) ~until:300 in
        check_bool "same schedule" true (a = b);
        check_int "all attempts made" 6 (List.length a));
    Alcotest.test_case "refusal threshold defers settling" `Quick (fun () ->
        let v =
          Verifier.create ~ka ~expected:some_id ~refusals_to_settle:2 ()
        in
        ignore (Verifier.poll v ~at:0);
        let refusal seq = Protocol.encode (Protocol.Refusal { seq }) in
        (* The verifier's seq comes from a global counter; recover it by
           probing: a mismatched seq is just counted as rejected. *)
        Verifier.on_frame v (refusal (-1));
        check_bool "still pending after stray refusal" true
          (Verifier.outcome v = Verifier.Pending);
        (* Feed refusals with every plausible seq until it settles. *)
        let rec feed seq =
          if seq < 10_000 && Verifier.outcome v = Verifier.Pending then begin
            Verifier.on_frame v (refusal seq);
            Verifier.on_frame v (refusal seq);
            feed (seq + 1)
          end
        in
        feed 0;
        check_bool "two matching refusals settle" true
          (Verifier.outcome v = Verifier.Refused));
  ]

(* --- Supervisor recovery -------------------------------------------------------- *)

let supervised_platform ?(policy = Supervisor.default_policy) ?watchdog_timeout
    () =
  let config = { Platform.default_config with trace_enabled = true } in
  let p = Platform.create ~config () in
  let tcb =
    Result.get_ok (Platform.load_blocking p ~name:"worker" (Chaos.steady_worker ()))
  in
  let sup = Supervisor.create p in
  let watchdog =
    Option.map
      (fun timeout ->
        Platform.attach_watchdog p ~name:"wd" ~base:0xF100_0000 ~irq:5 ~timeout)
      watchdog_timeout
  in
  Supervisor.supervise sup tcb ~policy ?watchdog ();
  (p, sup, tcb)

let supervisor_tests =
  [
    Alcotest.test_case "clean crash: re-measured, restarted, backoff" `Quick
      (fun () ->
        let p, sup, tcb = supervised_platform () in
        Platform.run_ticks p 3;
        Kernel.kill_task (Platform.kernel p) tcb;
        check_bool "waiting for backoff" true
          (Supervisor.state_of sup ~name:"worker"
          = Some Supervisor.Waiting_restart);
        Platform.run_ticks p 12;
        check_bool "running again" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Running);
        check_int "one restart" 1 (Supervisor.restarts sup);
        let fresh = Option.get (Supervisor.tcb_of sup ~name:"worker") in
        check_bool "a new incarnation" true (fresh.Tcb.id <> tcb.Tcb.id);
        check_bool "trace recorded the decision" true
          (Trace.find (Platform.trace p) ~source:"supervisor"
             ~substring:"restarted and re-attested"
          <> None));
    Alcotest.test_case "bit-flipped image: quarantined, never restarted" `Quick
      (fun () ->
        let p, sup, tcb = supervised_platform () in
        Platform.run_ticks p 3;
        let mem = Platform.memory p in
        let addr = tcb.Tcb.code_base + 12 in
        Memory.write8 mem addr (Memory.read8 mem addr lxor 0x10);
        Kernel.kill_task (Platform.kernel p) tcb;
        check_bool "quarantined" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Quarantined);
        Platform.run_ticks p 20;
        check_bool "still quarantined" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Quarantined);
        check_int "no restart ever" 0 (Supervisor.restarts sup);
        (* The kernel's task table keeps terminated TCBs; "not reloaded"
           means no fresh incarnation ever appeared. *)
        check_bool "not reloaded" true
          (List.for_all
             (fun (t : Tcb.t) ->
               t.Tcb.name <> "worker"
               || (t.Tcb.id = tcb.Tcb.id && t.Tcb.state = Tcb.Terminated))
             (Kernel.all_tasks (Platform.kernel p)));
        check_bool "trace says why" true
          (Trace.find (Platform.trace p) ~source:"supervisor"
             ~substring:"quarantine worker"
          <> None));
    Alcotest.test_case "hung task: watchdog bite, restart" `Quick (fun () ->
        let tick = Platform.default_config.Platform.tick_period in
        let p, sup, tcb = supervised_platform ~watchdog_timeout:(4 * tick) () in
        Platform.run_ticks p 6;
        check_int "healthy: no bite" 0 (Supervisor.bites sup);
        Platform.suspend p tcb;
        Platform.run_ticks p 20;
        check_int "bite detected the hang" 1 (Supervisor.bites sup);
        check_bool "recovered" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Running);
        check_int "restarted once" 1 (Supervisor.restarts sup);
        check_bool "watchdog trace event" true
          (Trace.find (Platform.trace p) ~source:"watchdog"
             ~substring:"missed its deadline"
          <> None));
    Alcotest.test_case "restart budget exhausts into gave-up" `Quick (fun () ->
        let policy =
          {
            Supervisor.max_restarts = 1;
            backoff_base_ticks = 1;
            backoff_cap_ticks = 2;
          }
        in
        let p, sup, tcb = supervised_platform ~policy () in
        Platform.run_ticks p 2;
        Kernel.kill_task (Platform.kernel p) tcb;
        Platform.run_ticks p 10;
        check_bool "restarted once" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Running);
        let fresh = Option.get (Supervisor.tcb_of sup ~name:"worker") in
        Kernel.kill_task (Platform.kernel p) fresh;
        Platform.run_ticks p 10;
        check_bool "budget spent" true
          (Supervisor.state_of sup ~name:"worker" = Some Supervisor.Gave_up);
        check_int "gave-up counted" 1 (Supervisor.gave_up sup));
  ]

(* --- The bundled chaos campaign -------------------------------------------------- *)

let chaos_tests =
  [
    Alcotest.test_case "campaign: quarantine + restart + re-attestation" `Slow
      (fun () ->
        let r = Chaos.run ~seed:1 () in
        check_bool "survived" true r.Chaos.survived;
        check_int "one supervised restart" 1 r.Chaos.restarts;
        check_int "one quarantine" 1 r.Chaos.quarantined;
        check_int "one watchdog bite" 1 r.Chaos.bites;
        check_bool "restarted worker re-attested over the hostile link" true
          r.Chaos.reattested;
        check_bool "faults actually injected" true
          (List.assoc "bit-flip" r.Chaos.injected > 0
          && List.assoc "task-kill" r.Chaos.injected = 1);
        check_bool "report renders" true
          (String.length (Chaos.to_string r) > 0));
    Alcotest.test_case "campaign is bit-for-bit reproducible" `Slow (fun () ->
        let a = Chaos.run ~seed:23 () in
        let b = Chaos.run ~seed:23 () in
        check_bool "identical reports (incl. trace digest)" true (a = b);
        let c = Chaos.run ~seed:24 () in
        check_bool "different seed, different trace" true
          (c.Chaos.trace_digest <> a.Chaos.trace_digest));
  ]

(* --- Static-verifier fuzzing ------------------------------------------------- *)

(* Tycheck.check is the loader's vet gate: whatever bytes survive
   Telf.decode, the analysis must terminate with a report — degenerate
   inputs become Format violations, never exceptions. *)
let tycheck_fuzz_tests =
  let module Telf = Tytan_telf.Telf in
  let module Tycheck = Tytan_analysis.Tycheck in
  [
    Alcotest.test_case "tycheck never raises on random images" `Quick
      (fun () ->
        let rng = Fault_plan.Prng.create 0x7C4E in
        for _ = 1 to 500 do
          let n = 32 + Fault_plan.Prng.int rng 480 in
          let b =
            Bytes.init n (fun _ -> Char.chr (Fault_plan.Prng.int rng 256))
          in
          (* Most random buffers fail header validation; graft the real
             magic onto half of them so more reach the analysis. *)
          if Fault_plan.Prng.int rng 2 = 0 then
            Bytes.blit_string Telf.magic 0 b 0 (String.length Telf.magic);
          match Telf.decode b with
          | Error _ -> ()
          | Ok telf -> (
              match Tycheck.check telf with
              | report -> ignore (Tycheck.ok report)
              | exception e ->
                  Alcotest.failf "tycheck raised %s" (Printexc.to_string e))
        done);
    Alcotest.test_case "tycheck never raises on mutated binaries" `Quick
      (fun () ->
        let rng = Fault_plan.Prng.create 0x51A7 in
        let original = Telf.encode (Tytan_tasks.Task_lib.counter ()) in
        let decoded = ref 0 in
        for _ = 1 to 1000 do
          let b = Bytes.copy original in
          let n = Bytes.length b in
          (match Fault_plan.Prng.int rng 3 with
          | 0 ->
              (* flip bits somewhere, header included *)
              let pos = Fault_plan.Prng.int rng n in
              Bytes.set b pos
                (Char.chr
                   (Char.code (Bytes.get b pos)
                   lxor (1 + Fault_plan.Prng.int rng 255)))
          | 1 ->
              (* clobber a whole instruction slot with garbage *)
              let slot = Fault_plan.Prng.int rng (n / 8) in
              for k = 0 to 7 do
                if (slot * 8) + k < n then
                  Bytes.set b ((slot * 8) + k)
                    (Char.chr (Fault_plan.Prng.int rng 256))
              done
          | _ ->
              (* corrupt a header field *)
              let pos = Fault_plan.Prng.int rng (min n Telf.header_size) in
              Bytes.set b pos (Char.chr (Fault_plan.Prng.int rng 256)));
          match Telf.decode b with
          | Error _ -> ()
          | Ok telf -> (
              incr decoded;
              match Tycheck.check telf with
              | report ->
                  (* a mutated image may or may not verify, but the
                     report must always be well-formed *)
                  ignore (Tycheck.violations report)
              | exception e ->
                  Alcotest.failf "tycheck raised %s" (Printexc.to_string e))
        done;
        check_bool "some mutants reached the analysis" true (!decoded > 0));
  ]

let () =
  Alcotest.run "fault"
    [
      ("plan", plan_tests);
      ("memory-hooks", memory_tests);
      ("watchdog", watchdog_tests);
      ("link-faults", link_tests);
      ("protocol-fuzz", fuzz_tests);
      ("tycheck-fuzz", tycheck_fuzz_tests);
      ("verifier-backoff", backoff_tests);
      ("supervisor", supervisor_tests);
      ("chaos", chaos_tests);
    ]
