(* tycheck: load-time static verification of task binaries.

   The benign task library must verify cleanly; the malicious tasks and
   a set of hand-crafted escapes (out-of-region store, indirect jump to
   a non-code address, undersized stack, net-push cycle) must each be
   rejected with the right kind of finding; Tasklang programs carrying
   loop-bound annotations must get a finite WCET; and a vetting loader
   must refuse bad binaries before any memory is allocated. *)

open Tytan_machine
open Tytan_telf
open Tytan_core
open Tytan_analysis
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)

let has ~check ~severity report =
  List.exists
    (fun f -> f.Finding.check = check && f.Finding.severity = severity)
    report.Tycheck.findings

let violation ~check report = has ~check ~severity:Finding.Violation report

(* --- The task library under the verifier ------------------------------- *)

let library_tests =
  [
    Alcotest.test_case "benign binaries verify" `Quick (fun () ->
        List.iter
          (fun (name, telf) ->
            let report = Tycheck.check telf in
            check_bool (name ^ " has no violations") true (Tycheck.ok report);
            check_bool
              (name ^ " verifies even in strict mode")
              true
              (Tycheck.strict_ok report))
          [
            ("counter", Tasks.counter ());
            ("counter (normal)", Tasks.counter ~secure:false ());
            ("sensor-poller", Tasks.sensor_poller ~sensor_addr:0xF400_0000 ());
            ("ipc-receiver", Tasks.ipc_receiver ());
            ("yielder", Tasks.yielder ());
            ( "cruise-controller",
              Tasks.cruise_controller ~actuator_addr:0xF400_0100 );
          ]);
    Alcotest.test_case "spy's cross-task load is a memory violation" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.spy ~victim_addr:0x0000_4000) in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "memory finding" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "entry_bypass's indirect jump is a CFI violation" `Quick
      (fun () ->
        let report =
          Tycheck.check (Tasks.entry_bypass ~victim_entry:0x5000 ~offset:16)
        in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "cfi finding" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "idt_attacker's store is a memory violation" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.idt_attacker ~idt_addr:0x100) in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "memory finding" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "busy_loop fails only strict verification" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.busy_loop ()) in
        check_bool "isolated, so no violation" true (Tycheck.ok report);
        check_bool "but its WCET is unbounded" false (Tycheck.strict_ok report);
        check_bool "unbounded" true (report.Tycheck.wcet = `Unbounded));
  ]

(* --- Hand-crafted escapes ---------------------------------------------- *)

let craft ?(stack_size = 256) ?manifest body =
  let p = Assembler.create () in
  body p;
  let prog = Assembler.assemble p in
  Telf.make ?manifest ~entry:prog.Assembler.entry ~image:prog.Assembler.image
    ~text_size:prog.Assembler.text_size
    ~relocations:prog.Assembler.relocations ~bss_size:0 ~stack_size ()

let crafted_tests =
  [
    Alcotest.test_case "store past the footprint is rejected" `Quick (fun () ->
        (* A relocated base + large offset: provably outside the task's
           own image/bss/inbox/stack range. *)
        let telf =
          craft (fun p ->
              Assembler.movi_label p ~rd:4 "cell";
              Assembler.instr p (Isa.Addi (4, 4, 0x10000));
              Assembler.instr p (Isa.Stw (4, 0, 4));
              Assembler.instr p (Isa.Swi 1);
              Assembler.begin_data p;
              Assembler.label p "cell";
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "store into own text is rejected" `Quick (fun () ->
        (* Self-modifying code: the address is inside the footprint but
           below the writable boundary. *)
        let telf =
          craft (fun p ->
              Assembler.movi_label p ~rd:4 "main";
              Assembler.label p "main";
              Assembler.instr p (Isa.Stw (4, 0, 4));
              Assembler.instr p (Isa.Swi 1);
              Assembler.begin_data p;
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "indirect jump escaping the relocation table" `Quick
      (fun () ->
        (* The only relocation names a data word, so the jump register
           provably holds a non-code address. *)
        let telf =
          craft (fun p ->
              Assembler.movi_label p ~rd:6 "cell";
              Assembler.instr p (Isa.Jmpr 6);
              Assembler.begin_data p;
              Assembler.label p "cell";
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "branch outside the text is rejected" `Quick (fun () ->
        let telf =
          craft (fun p ->
              Assembler.instr p (Isa.Jmp (Word.of_signed 0x400));
              Assembler.begin_data p;
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "running off the end of text is rejected" `Quick
      (fun () ->
        let telf =
          craft (fun p ->
              Assembler.instr p (Isa.Nop);
              Assembler.instr p (Isa.Nop))
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "undersized stack is rejected" `Quick (fun () ->
        (* 16 bytes cannot even hold the 68-byte interrupt context
           frame. *)
        let report = Tycheck.check (Tasks.counter ~stack_size:16 ()) in
        check_bool "rejected" true (violation ~check:Finding.Stack report));
    Alcotest.test_case "net-push cycle is an unbounded stack" `Quick (fun () ->
        let telf =
          craft (fun p ->
              Assembler.label p "loop";
              Assembler.instr p (Isa.Push 0);
              Assembler.jmp_label p "loop";
              Assembler.begin_data p;
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Stack report);
        check_bool "unbounded" true (report.Tycheck.stack = `Unbounded));
    Alcotest.test_case "text not ending on an instruction boundary" `Quick
      (fun () ->
        let image = Bytes.make 20 '\x00' in
        Bytes.blit (Isa.encode (Isa.Swi 1)) 0 image 0 8;
        let telf =
          Telf.make ~entry:0 ~image ~text_size:12 ~relocations:[||] ~bss_size:0
            ~stack_size:256 ()
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Format report));
  ]

(* --- Tasklang: compile-then-vet ---------------------------------------- *)

let lang_tests =
  let open Tytan_lang in
  let bounded =
    Ast.program
      ~globals:[ ("acc", 0) ]
      [
        Ast.While
          ( Ast.Int 1,
            [
              Ast.Repeat
                (10, [ Ast.Assign ("acc", Ast.Binop (Ast.Add, Ast.Var "acc", Ast.Int 3)) ]);
              Ast.Delay (Ast.Int 1);
            ] );
      ]
  in
  let unannotated =
    Ast.program
      ~globals:[ ("n", 0) ]
      [
        Ast.While
          (Ast.Int 1, [ Ast.Assign ("n", Ast.Binop (Ast.Add, Ast.Var "n", Ast.Int 1)) ]);
      ]
  in
  [
    Alcotest.test_case "bounded program gets a finite WCET" `Quick (fun () ->
        let report = Compile.check bounded in
        check_bool "strict-verifies" true (Tycheck.strict_ok report);
        match report.Tycheck.wcet with
        | `Cycles n -> check_bool "positive bound" true (n > 0)
        | `Unbounded -> Alcotest.fail "expected a finite WCET");
    Alcotest.test_case "compiler emits the Repeat loop bound" `Quick (fun () ->
        let compiled = Compile.compile bounded in
        check_bool "at least one annotation" true
          (compiled.Compile.loop_bounds <> []));
    Alcotest.test_case "never-yielding loop has unbounded WCET" `Quick
      (fun () ->
        let report = Compile.check unannotated in
        check_bool "no violation (it is isolated)" true (Tycheck.ok report);
        check_bool "unbounded" true (report.Tycheck.wcet = `Unbounded));
    Alcotest.test_case "interpreter agrees with Repeat semantics" `Quick
      (fun () ->
        let once =
          Ast.program
            ~globals:[ ("acc", 0) ]
            [
              Ast.Repeat
                ( 10,
                  [ Ast.Assign ("acc", Ast.Binop (Ast.Add, Ast.Var "acc", Ast.Int 3)) ]
                );
            ]
        in
        match Interp.run once with
        | Ok st -> Alcotest.(check int) "acc" 30 (Interp.global st "acc")
        | Error e -> Alcotest.failf "interpreter failed: %s" e);
  ]

(* --- Secret flow and IPC topology (the fifth and sixth checks) --------- *)

let peer = Task_id.of_image (Bytes.of_string "flow-test-peer")
let decoy = Task_id.of_image (Bytes.of_string "flow-test-decoy")
let flow_check telf = Tycheck.check ~config:Tycheck.flow_config telf

let finding_message_mentions ~check ~severity sub report =
  List.exists
    (fun f ->
      f.Finding.check = check
      && f.Finding.severity = severity
      &&
      let msg = f.Finding.message and n = String.length sub in
      let rec scan i =
        i + n <= String.length msg
        && (String.sub msg i n = sub || scan (i + 1))
      in
      scan 0)
    report.Tycheck.findings

let flow_tests =
  [
    Alcotest.test_case "key_leaker passes the original four checks" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.key_leaker ~receiver:peer ()) in
        check_bool "four-check verifier accepts it" true (Tycheck.ok report));
    Alcotest.test_case "key_leaker is refused with a source→sink violation"
      `Quick (fun () ->
        let report = flow_check (Tasks.key_leaker ~decoy ~receiver:peer ()) in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "flow violation" true (violation ~check:Finding.Flow report);
        check_bool "names the source" true
          (finding_message_mentions ~check:Finding.Flow
             ~severity:Finding.Violation "attestation-key derivation window"
             report);
        check_bool "names the sink" true
          (finding_message_mentions ~check:Finding.Flow
             ~severity:Finding.Violation "IPC payload" report);
        check_bool "decoy manifest: send leaves the declared topology" true
          (finding_message_mentions ~check:Finding.Topology
             ~severity:Finding.Violation "outside the declared topology"
             report));
    Alcotest.test_case "manifest-less sender is a topology violation" `Quick
      (fun () ->
        let report = flow_check (Tasks.key_leaker ~receiver:peer ()) in
        check_bool "topology violation" true
          (finding_message_mentions ~check:Finding.Topology
             ~severity:Finding.Violation "declares no topology manifest"
             report));
    Alcotest.test_case "shipped tasks vet clean under --flow" `Quick (fun () ->
        List.iter
          (fun (name, telf) ->
            let report = flow_check telf in
            check_bool
              (name ^ " has no false flow violations")
              true (Tycheck.ok report))
          [
            ("counter", Tasks.counter ());
            ("sensor-poller", Tasks.sensor_poller ~sensor_addr:0xF400_0000 ());
            ( "cruise-controller",
              Tasks.cruise_controller ~actuator_addr:0xF400_0100 );
            ( "sensor-feeder",
              Tasks.sensor_feeder ~sensor_addr:0xF400_0000 ~controller:peer
                ~tag:1 () );
            ("ipc-sender", Tasks.ipc_sender ~receiver:peer ());
            ("ipc-receiver", Tasks.ipc_receiver ());
            ( "storage-client",
              Tasks.storage_client ~storage:peer ~slot:1 ~value:7 );
            ("shm-requester", Tasks.shm_requester ~peer ~value:5);
            ("shm-reader", Tasks.shm_reader ());
            ("yielder", Tasks.yielder ());
            ("busy-loop", Tasks.busy_loop ());
            ("gadget-dispatcher", (Tasks.gadget_dispatcher ()).Tasks.telf);
          ]);
    Alcotest.test_case "declared senders even strict-verify under --flow"
      `Quick (fun () ->
        List.iter
          (fun (name, telf) ->
            check_bool (name ^ " strict") true
              (Tycheck.strict_ok (flow_check telf)))
          [
            ("ipc-sender", Tasks.ipc_sender ~receiver:peer ());
            ( "sensor-feeder",
              Tasks.sensor_feeder ~sensor_addr:0xF400_0000 ~controller:peer
                ~tag:1 () );
          ]);
    Alcotest.test_case "tasklang: secret global into an IPC payload is refused"
      `Quick (fun () ->
        let open Tytan_lang in
        let leak =
          Ast.program
            ~globals:[ ("key", 0) ]
            ~secrets:[ "key" ]
            [
              Ast.Send
                { payload = [ Ast.Var "key" ]; receiver = peer; sync = false };
              Ast.Exit;
            ]
        in
        let report = Compile.check ~config:Tycheck.flow_config leak in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "flow violation names the manifest range" true
          (finding_message_mentions ~check:Finding.Flow
             ~severity:Finding.Violation "manifest secret range" report));
    Alcotest.test_case
      "tasklang: secret through the MAC window verifies clean" `Quick
      (fun () ->
        let open Tytan_lang in
        let declassified =
          Ast.program
            ~globals:[ ("key", 0) ]
            ~secrets:[ "key" ]
            [ Ast.Store (Ast.Int 0xF000_3000, Ast.Var "key"); Ast.Exit ]
        in
        let report = Compile.check ~config:Tycheck.flow_config declassified in
        check_bool "no violations" true (Tycheck.ok report);
        check_bool "strict even" true (Tycheck.strict_ok report));
    Alcotest.test_case "tasklang: compiler-declared topology verifies clean"
      `Quick (fun () ->
        let open Tytan_lang in
        let sender =
          Ast.program
            [
              Ast.Send
                { payload = [ Ast.Int 7 ]; receiver = peer; sync = false };
              Ast.Exit;
            ]
        in
        let report = Compile.check ~config:Tycheck.flow_config sender in
        check_bool "no violations" true (Tycheck.ok report));
    Alcotest.test_case "undeclared secret global is a validation error" `Quick
      (fun () ->
        let open Tytan_lang in
        let bad = Ast.program ~secrets:[ "ghost" ] [ Ast.Exit ] in
        check_bool "validate rejects" true
          (match Ast.validate bad with Error _ -> true | Ok () -> false));
    Alcotest.test_case "hostile manifest declass window cannot launder the key"
      `Quick (fun () ->
        (* The image declares the key-derivation window itself as a
           declass window: honoured, every key load would come back
           Clean and the leaker would vet clean fleet-wide.  The window
           must be refused (it leaves the platform crypto regions) and
           the leak still caught. *)
        let lo, hi = Task_id.to_words peer in
        let manifest =
          Manifest.make ~peers:[ (lo, hi) ]
            ~declass_windows:[ (Flowcheck.key_window_base, 16) ]
            ()
        in
        let telf =
          craft ~manifest (fun p ->
              let open Isa in
              Assembler.instr p (Movi (6, Flowcheck.key_window_base));
              Assembler.instr p (Ldw (0, 6, 0));
              for i = 1 to 7 do
                Assembler.instr p (Movi (i, 0))
              done;
              Assembler.instr p (Movi (8, lo));
              Assembler.instr p (Movi (9, hi));
              Assembler.instr p (Movi (10, Ipc.mode_async));
              Assembler.instr p (Swi Ipc.swi_send);
              Assembler.instr p (Swi 1))
        in
        let report = flow_check telf in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "the bogus window itself is a violation" true
          (finding_message_mentions ~check:Finding.Flow
             ~severity:Finding.Violation "manifest declass window" report);
        check_bool "and the leak is still caught" true
          (finding_message_mentions ~check:Finding.Flow
             ~severity:Finding.Violation "IPC payload" report));
    Alcotest.test_case "read straddling the key window edge is a violation"
      `Quick (fun () ->
        (* An exact 4-byte load at key_window_base - 2 provably reads
           two key bytes: a partial overlap at a precise address must
           keep the full Secret taint, not weaken to Maybe/Unknown. *)
        let lo, hi = Task_id.to_words peer in
        let telf =
          craft ~manifest:(Manifest.make ~peers:[ (lo, hi) ] ())
            (fun p ->
              let open Isa in
              Assembler.instr p (Movi (6, Flowcheck.key_window_base - 2));
              Assembler.instr p (Ldw (0, 6, 0));
              for i = 1 to 7 do
                Assembler.instr p (Movi (i, 0))
              done;
              Assembler.instr p (Movi (8, lo));
              Assembler.instr p (Movi (9, hi));
              Assembler.instr p (Movi (10, Ipc.mode_async));
              Assembler.instr p (Swi Ipc.swi_send);
              Assembler.instr p (Swi 1))
        in
        let report = flow_check telf in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "flow violation" true (violation ~check:Finding.Flow report));
    Alcotest.test_case "secret spilled past the tracked depth is not laundered"
      `Quick (fun () ->
        (* 32 clean pushes fill the taint model's cap; the 33rd pushes
           the key word.  The real spill stack is unbounded, so the pop
           restores the secret — the model must answer Maybe (an
           Unknown at the send), never a laundered Clean. *)
        let lo, hi = Task_id.to_words peer in
        let telf =
          craft ~stack_size:512
            ~manifest:(Manifest.make ~peers:[ (lo, hi) ] ())
            (fun p ->
              let open Isa in
              Assembler.instr p (Movi (6, Flowcheck.key_window_base));
              Assembler.instr p (Ldw (7, 6, 0));
              Assembler.instr p (Movi (5, 0));
              for _ = 1 to 32 do
                Assembler.instr p (Push 5)
              done;
              Assembler.instr p (Push 7);
              Assembler.instr p (Pop 0);
              for _ = 1 to 32 do
                Assembler.instr p (Pop 4)
              done;
              for i = 1 to 7 do
                Assembler.instr p (Movi (i, 0))
              done;
              Assembler.instr p (Movi (8, lo));
              Assembler.instr p (Movi (9, hi));
              Assembler.instr p (Movi (10, Ipc.mode_async));
              Assembler.instr p (Swi Ipc.swi_send);
              Assembler.instr p (Swi 1))
        in
        let report = flow_check telf in
        check_bool "no over-claimed violation" true (Tycheck.ok report);
        check_bool "but not provably clean" false (Tycheck.strict_ok report);
        check_bool "payload flagged as an untracked spill" true
          (finding_message_mentions ~check:Finding.Flow
             ~severity:Finding.Unknown "untracked spill" report));
  ]

(* --- CFG cross-check: tycheck's dataflow vs the CFA replay oracle ------- *)

(* The verifier-side replay oracle and the static verifier recover the
   same binary independently.  For every shipped task the two must agree
   on the node set, and every flow-sensitive successor edge the dataflow
   uses must be an edge the replay oracle would accept — otherwise one
   of them is reasoning about a program the other would refuse. *)

module Replay = Tytan_cfa.Replay

let dataflow_of telf =
  match Tytan_analysis.Cfg.of_telf telf with
  | Error e -> Alcotest.failf "cfg recovery failed: %s" e
  | Ok cfg ->
      let open Tytan_analysis in
      let image_size = Bytes.length telf.Telf.image in
      let footprint = image_size + telf.Telf.bss_size + 64 + telf.Telf.stack_size in
      let reloc_imms = Hashtbl.create 16 in
      Array.iter
        (fun off -> Hashtbl.replace reloc_imms off ())
        telf.Telf.relocations;
      let relocated i =
        Hashtbl.mem reloc_imms (Cfg.offset i + Isa.imm_field_offset)
      in
      let init = Array.make Dataflow.reg_count Absval.top in
      init.(12) <- Absval.rel_const (image_size + telf.Telf.bss_size);
      init.(15) <- Absval.rel_const footprint;
      let fallback = Cfg.indirect_code_targets telf in
      let stack_region = (footprint - telf.Telf.stack_size, footprint) in
      Dataflow.run ~init ~relocated ~fallback ~stack_region cfg

let cross_check name telf =
  let open Tytan_analysis in
  match Replay.oracle_of_telf telf with
  | Error e -> Alcotest.failf "%s: oracle recovery failed: %s" name e
  | Ok oracle ->
      let df = dataflow_of telf in
      let cfg = df.Dataflow.cfg in
      Alcotest.(check int)
        (name ^ ": same node count")
        (Cfg.instr_count oracle.Replay.cfg)
        (Cfg.instr_count cfg);
      for i = 0 to Cfg.instr_count cfg - 1 do
        check_bool
          (Printf.sprintf "%s: slot %d decodes identically" name i)
          true
          (oracle.Replay.cfg.Cfg.instrs.(i) = cfg.Cfg.instrs.(i))
      done;
      Array.iteri
        (fun i succs ->
          if df.Dataflow.states.(i) <> None then
            let allowed =
              match Cfg.classify cfg i with
              | Cfg.Fall | Cfg.Other_swi | Cfg.Yield_swi -> [ i + 1 ]
              | Cfg.Jump (Some t) -> [ t ]
              | Cfg.Jump None -> []
              | Cfg.Branch (Some t) -> [ i + 1; t ]
              | Cfg.Branch None -> [ i + 1 ]
              (* A call's fall-through is the dataflow's structural
                 summary of the callee's return; the oracle accepts the
                 same resumption through its shadow stack, which is why
                 i+1 is in call_successors by construction. *)
              | Cfg.Call (Some t) -> [ t; i + 1 ]
              | Cfg.Call None -> [ i + 1 ]
              | Cfg.Indirect_jump _ -> oracle.Replay.indirect_targets
              | Cfg.Indirect_call _ ->
                  (i + 1) :: oracle.Replay.indirect_targets
              | Cfg.Return -> oracle.Replay.call_successors
              | Cfg.Stop | Cfg.Undecodable -> []
            in
            List.iter
              (fun s ->
                check_bool
                  (Printf.sprintf
                     "%s: edge %d→%d is one the replay oracle accepts" name i
                     s)
                  true (List.mem s allowed))
              succs)
        df.Dataflow.succs

let cfg_cross_tests =
  let examples () =
    [
      ("counter", Tasks.counter ());
      ("sensor-poller", Tasks.sensor_poller ~sensor_addr:0xF400_0000 ());
      ("cruise-controller", Tasks.cruise_controller ~actuator_addr:0xF400_0100);
      ( "sensor-feeder",
        Tasks.sensor_feeder ~sensor_addr:0xF400_0000 ~controller:peer ~tag:1 () );
      ("ipc-sender", Tasks.ipc_sender ~receiver:peer ());
      ("ipc-receiver", Tasks.ipc_receiver ());
      ("storage-client", Tasks.storage_client ~storage:peer ~slot:1 ~value:7);
      ("shm-requester", Tasks.shm_requester ~peer ~value:5);
      ("shm-reader", Tasks.shm_reader ());
      ("yielder", Tasks.yielder ());
      ("busy-loop", Tasks.busy_loop ());
      ("spy", Tasks.spy ~victim_addr:0x4000);
      ("key-leaker", Tasks.key_leaker ~receiver:peer ());
      ("gadget-dispatcher", (Tasks.gadget_dispatcher ()).Tasks.telf);
    ]
  in
  [
    Alcotest.test_case "replay oracle and tycheck agree on every example"
      `Quick (fun () ->
        List.iter (fun (name, telf) -> cross_check name telf) (examples ()));
  ]

(* --- The vetting loader ------------------------------------------------ *)

let loader_tests =
  [
    Alcotest.test_case "vetting platform loads good, refuses bad" `Quick
      (fun () ->
        let config = { Platform.default_config with vet_tasks = true } in
        let p = Platform.create ~config () in
        (match Platform.load_blocking p ~name:"good" (Tasks.counter ()) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "benign task refused: %s" e);
        (match
           Platform.load_blocking p ~name:"spy" ~secure:false
             (Tasks.spy ~victim_addr:0x4000)
         with
        | Ok _ -> Alcotest.fail "spy should have been refused"
        | Error e ->
            check_bool "refusal names the vet" true
              (String.length e >= 12 && String.sub e 0 12 = "vet rejected"));
        match
          Platform.load_blocking p ~name:"bypass" ~secure:false
            (Tasks.entry_bypass ~victim_entry:0x5000 ~offset:16)
        with
        | Ok _ -> Alcotest.fail "entry_bypass should have been refused"
        | Error _ -> ());
    Alcotest.test_case "flow-vetting platform refuses the key leaker" `Quick
      (fun () ->
        let config =
          { Platform.default_config with vet_tasks = true; vet_flow = true }
        in
        let p = Platform.create ~config () in
        (match
           Platform.load_blocking p ~name:"sender"
             (Tasks.ipc_sender ~receiver:peer ())
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "declared sender refused: %s" e);
        match
          Platform.load_blocking p ~name:"leaker"
            (Tasks.key_leaker ~receiver:peer ())
        with
        | Ok _ -> Alcotest.fail "key leaker should have been refused"
        | Error e ->
            check_bool "refusal names the vet" true
              (String.length e >= 12 && String.sub e 0 12 = "vet rejected"));
    Alcotest.test_case "plain vetting platform still loads the key leaker"
      `Quick (fun () ->
        (* Without vet_flow the loader keeps the four-check behaviour:
           the leak is invisible to memory/CFI/stack/WCET. *)
        let config = { Platform.default_config with vet_tasks = true } in
        let p = Platform.create ~config () in
        match
          Platform.load_blocking p ~name:"leaker"
            (Tasks.key_leaker ~receiver:peer ())
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected refusal: %s" e);
    Alcotest.test_case "non-vetting platform still loads the spy" `Quick
      (fun () ->
        (* Without ~vet the loader keeps the paper's behaviour: load
           anything well-formed and let the EA-MPU fault it at run time. *)
        let p = Platform.create () in
        match
          Platform.load_blocking p ~name:"spy" ~secure:false
            (Tasks.spy ~victim_addr:0x4000)
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected refusal: %s" e);
  ]

let () =
  Alcotest.run "lint"
    [
      ("task-library", library_tests);
      ("crafted-escapes", crafted_tests);
      ("tasklang", lang_tests);
      ("flow", flow_tests);
      ("cfg-cross-check", cfg_cross_tests);
      ("vetting-loader", loader_tests);
    ]
