(* tycheck: load-time static verification of task binaries.

   The benign task library must verify cleanly; the malicious tasks and
   a set of hand-crafted escapes (out-of-region store, indirect jump to
   a non-code address, undersized stack, net-push cycle) must each be
   rejected with the right kind of finding; Tasklang programs carrying
   loop-bound annotations must get a finite WCET; and a vetting loader
   must refuse bad binaries before any memory is allocated. *)

open Tytan_machine
open Tytan_telf
open Tytan_core
open Tytan_analysis
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)

let has ~check ~severity report =
  List.exists
    (fun f -> f.Finding.check = check && f.Finding.severity = severity)
    report.Tycheck.findings

let violation ~check report = has ~check ~severity:Finding.Violation report

(* --- The task library under the verifier ------------------------------- *)

let library_tests =
  [
    Alcotest.test_case "benign binaries verify" `Quick (fun () ->
        List.iter
          (fun (name, telf) ->
            let report = Tycheck.check telf in
            check_bool (name ^ " has no violations") true (Tycheck.ok report);
            check_bool
              (name ^ " verifies even in strict mode")
              true
              (Tycheck.strict_ok report))
          [
            ("counter", Tasks.counter ());
            ("counter (normal)", Tasks.counter ~secure:false ());
            ("sensor-poller", Tasks.sensor_poller ~sensor_addr:0xF400_0000 ());
            ("ipc-receiver", Tasks.ipc_receiver ());
            ("yielder", Tasks.yielder ());
            ( "cruise-controller",
              Tasks.cruise_controller ~actuator_addr:0xF400_0100 );
          ]);
    Alcotest.test_case "spy's cross-task load is a memory violation" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.spy ~victim_addr:0x0000_4000) in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "memory finding" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "entry_bypass's indirect jump is a CFI violation" `Quick
      (fun () ->
        let report =
          Tycheck.check (Tasks.entry_bypass ~victim_entry:0x5000 ~offset:16)
        in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "cfi finding" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "idt_attacker's store is a memory violation" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.idt_attacker ~idt_addr:0x100) in
        check_bool "rejected" false (Tycheck.ok report);
        check_bool "memory finding" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "busy_loop fails only strict verification" `Quick
      (fun () ->
        let report = Tycheck.check (Tasks.busy_loop ()) in
        check_bool "isolated, so no violation" true (Tycheck.ok report);
        check_bool "but its WCET is unbounded" false (Tycheck.strict_ok report);
        check_bool "unbounded" true (report.Tycheck.wcet = `Unbounded));
  ]

(* --- Hand-crafted escapes ---------------------------------------------- *)

let craft ?(stack_size = 256) body =
  let p = Assembler.create () in
  body p;
  let prog = Assembler.assemble p in
  Telf.make ~entry:prog.Assembler.entry ~image:prog.Assembler.image
    ~text_size:prog.Assembler.text_size
    ~relocations:prog.Assembler.relocations ~bss_size:0 ~stack_size

let crafted_tests =
  [
    Alcotest.test_case "store past the footprint is rejected" `Quick (fun () ->
        (* A relocated base + large offset: provably outside the task's
           own image/bss/inbox/stack range. *)
        let telf =
          craft (fun p ->
              Assembler.movi_label p ~rd:4 "cell";
              Assembler.instr p (Isa.Addi (4, 4, 0x10000));
              Assembler.instr p (Isa.Stw (4, 0, 4));
              Assembler.instr p (Isa.Swi 1);
              Assembler.begin_data p;
              Assembler.label p "cell";
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "store into own text is rejected" `Quick (fun () ->
        (* Self-modifying code: the address is inside the footprint but
           below the writable boundary. *)
        let telf =
          craft (fun p ->
              Assembler.movi_label p ~rd:4 "main";
              Assembler.label p "main";
              Assembler.instr p (Isa.Stw (4, 0, 4));
              Assembler.instr p (Isa.Swi 1);
              Assembler.begin_data p;
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Memory report));
    Alcotest.test_case "indirect jump escaping the relocation table" `Quick
      (fun () ->
        (* The only relocation names a data word, so the jump register
           provably holds a non-code address. *)
        let telf =
          craft (fun p ->
              Assembler.movi_label p ~rd:6 "cell";
              Assembler.instr p (Isa.Jmpr 6);
              Assembler.begin_data p;
              Assembler.label p "cell";
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "branch outside the text is rejected" `Quick (fun () ->
        let telf =
          craft (fun p ->
              Assembler.instr p (Isa.Jmp (Word.of_signed 0x400));
              Assembler.begin_data p;
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "running off the end of text is rejected" `Quick
      (fun () ->
        let telf =
          craft (fun p ->
              Assembler.instr p (Isa.Nop);
              Assembler.instr p (Isa.Nop))
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Cfi report));
    Alcotest.test_case "undersized stack is rejected" `Quick (fun () ->
        (* 16 bytes cannot even hold the 68-byte interrupt context
           frame. *)
        let report = Tycheck.check (Tasks.counter ~stack_size:16 ()) in
        check_bool "rejected" true (violation ~check:Finding.Stack report));
    Alcotest.test_case "net-push cycle is an unbounded stack" `Quick (fun () ->
        let telf =
          craft (fun p ->
              Assembler.label p "loop";
              Assembler.instr p (Isa.Push 0);
              Assembler.jmp_label p "loop";
              Assembler.begin_data p;
              Assembler.word p 0)
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Stack report);
        check_bool "unbounded" true (report.Tycheck.stack = `Unbounded));
    Alcotest.test_case "text not ending on an instruction boundary" `Quick
      (fun () ->
        let image = Bytes.make 20 '\x00' in
        Bytes.blit (Isa.encode (Isa.Swi 1)) 0 image 0 8;
        let telf =
          Telf.make ~entry:0 ~image ~text_size:12 ~relocations:[||] ~bss_size:0
            ~stack_size:256
        in
        let report = Tycheck.check telf in
        check_bool "rejected" true (violation ~check:Finding.Format report));
  ]

(* --- Tasklang: compile-then-vet ---------------------------------------- *)

let lang_tests =
  let open Tytan_lang in
  let bounded =
    Ast.program
      ~globals:[ ("acc", 0) ]
      [
        Ast.While
          ( Ast.Int 1,
            [
              Ast.Repeat
                (10, [ Ast.Assign ("acc", Ast.Binop (Ast.Add, Ast.Var "acc", Ast.Int 3)) ]);
              Ast.Delay (Ast.Int 1);
            ] );
      ]
  in
  let unannotated =
    Ast.program
      ~globals:[ ("n", 0) ]
      [
        Ast.While
          (Ast.Int 1, [ Ast.Assign ("n", Ast.Binop (Ast.Add, Ast.Var "n", Ast.Int 1)) ]);
      ]
  in
  [
    Alcotest.test_case "bounded program gets a finite WCET" `Quick (fun () ->
        let report = Compile.check bounded in
        check_bool "strict-verifies" true (Tycheck.strict_ok report);
        match report.Tycheck.wcet with
        | `Cycles n -> check_bool "positive bound" true (n > 0)
        | `Unbounded -> Alcotest.fail "expected a finite WCET");
    Alcotest.test_case "compiler emits the Repeat loop bound" `Quick (fun () ->
        let compiled = Compile.compile bounded in
        check_bool "at least one annotation" true
          (compiled.Compile.loop_bounds <> []));
    Alcotest.test_case "never-yielding loop has unbounded WCET" `Quick
      (fun () ->
        let report = Compile.check unannotated in
        check_bool "no violation (it is isolated)" true (Tycheck.ok report);
        check_bool "unbounded" true (report.Tycheck.wcet = `Unbounded));
    Alcotest.test_case "interpreter agrees with Repeat semantics" `Quick
      (fun () ->
        let once =
          Ast.program
            ~globals:[ ("acc", 0) ]
            [
              Ast.Repeat
                ( 10,
                  [ Ast.Assign ("acc", Ast.Binop (Ast.Add, Ast.Var "acc", Ast.Int 3)) ]
                );
            ]
        in
        match Interp.run once with
        | Ok st -> Alcotest.(check int) "acc" 30 (Interp.global st "acc")
        | Error e -> Alcotest.failf "interpreter failed: %s" e);
  ]

(* --- The vetting loader ------------------------------------------------ *)

let loader_tests =
  [
    Alcotest.test_case "vetting platform loads good, refuses bad" `Quick
      (fun () ->
        let config = { Platform.default_config with vet_tasks = true } in
        let p = Platform.create ~config () in
        (match Platform.load_blocking p ~name:"good" (Tasks.counter ()) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "benign task refused: %s" e);
        (match
           Platform.load_blocking p ~name:"spy" ~secure:false
             (Tasks.spy ~victim_addr:0x4000)
         with
        | Ok _ -> Alcotest.fail "spy should have been refused"
        | Error e ->
            check_bool "refusal names the vet" true
              (String.length e >= 12 && String.sub e 0 12 = "vet rejected"));
        match
          Platform.load_blocking p ~name:"bypass" ~secure:false
            (Tasks.entry_bypass ~victim_entry:0x5000 ~offset:16)
        with
        | Ok _ -> Alcotest.fail "entry_bypass should have been refused"
        | Error _ -> ());
    Alcotest.test_case "non-vetting platform still loads the spy" `Quick
      (fun () ->
        (* Without ~vet the loader keeps the paper's behaviour: load
           anything well-formed and let the EA-MPU fault it at run time. *)
        let p = Platform.create () in
        match
          Platform.load_blocking p ~name:"spy" ~secure:false
            (Tasks.spy ~victim_addr:0x4000)
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected refusal: %s" e);
  ]

let () =
  Alcotest.run "lint"
    [
      ("task-library", library_tests);
      ("crafted-escapes", crafted_tests);
      ("tasklang", lang_tests);
      ("vetting-loader", loader_tests);
    ]
