(* Soak test: hundreds of random task lifecycle operations (load secure,
   load normal, unload, suspend, resume, run) against one platform,
   checking global invariants throughout — no kernel panic, EA-MPU slots
   and heap fully reclaimed, RTM directory consistent with live tasks —
   and that the platform still meets deadlines afterwards. *)

open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Deterministic PRNG so failures reproduce. *)
let rng = ref 0xC0FFEE

(* LCG low bits have tiny cycles (mod 2 alternates); draw from the high
   bits instead. *)
let rand bound =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFF_FFFF;
  (!rng lsr 15) mod bound

type live = {
  tcb : Tcb.t;
  mutable suspended : bool;
}

let binary_pool =
  lazy
    [|
      Tasks.counter ();
      Tasks.counter ~stack_size:768 ();
      Tasks.busy_loop ~work:4 ();
      Toolchain.synthetic_secure ~image_size:1024 ~reloc_count:3 ~stack_size:256;
      Tasks.counter ~secure:false ();
      Tasks.yielder ~secure:false ~count:3 ();
    |]

let is_secure_binary i = i < 4

let soak_ops = 250

let soak_test =
  Alcotest.test_case "250 random lifecycle operations hold the invariants"
    `Slow (fun () ->
      let p = Platform.create () in
      let eampu = Option.get (Platform.eampu p) in
      let rtm = Option.get (Platform.rtm p) in
      let slots0 = Tytan_eampu.Eampu.used_slots eampu in
      let heap0 = Heap.allocated_bytes (Platform.heap p) in
      let live : live list ref = ref [] in
      let loads = ref 0 and unloads = ref 0 and suspends = ref 0 in
      let invariant () =
        (* Directory entries = live (non-terminated) loaded tasks. *)
        live :=
          List.filter (fun l -> l.tcb.Tcb.state <> Tcb.Terminated) !live;
        check_int "directory tracks live tasks"
          (List.length !live)
          (List.length (Rtm.all rtm))
      in
      for op = 1 to soak_ops do
        (match rand 6 with
        | 0 | 1 -> (
            (* load a random binary *)
            let i = rand (Array.length (Lazy.force binary_pool)) in
            let telf = (Lazy.force binary_pool).(i) in
            match
              Platform.load_blocking p
                ~name:(Printf.sprintf "soak-%d" op)
                ~secure:(is_secure_binary i) telf
            with
            | Ok tcb ->
                incr loads;
                live := { tcb; suspended = false } :: !live
            | Error _ ->
                (* slot or memory exhaustion is a legal outcome *)
                ())
        | 2 -> (
            (* unload a random live task *)
            match !live with
            | [] -> ()
            | tasks ->
                let victim = List.nth tasks (rand (List.length tasks)) in
                Platform.unload p victim.tcb;
                incr unloads;
                live :=
                  List.filter (fun l -> l.tcb.Tcb.id <> victim.tcb.Tcb.id) tasks)
        | 3 -> (
            (* toggle suspension *)
            match List.filter (fun l -> l.tcb.Tcb.state <> Tcb.Terminated) !live with
            | [] -> ()
            | tasks ->
                let t = List.nth tasks (rand (List.length tasks)) in
                if t.suspended then begin
                  Platform.resume p t.tcb;
                  t.suspended <- false
                end
                else if t.tcb.Tcb.state <> Tcb.Terminated then begin
                  Platform.suspend p t.tcb;
                  t.suspended <- true;
                  incr suspends
                end)
        | 4 | 5 -> Platform.run_ticks p (1 + rand 4)
        | _ -> assert false);
        if op mod 25 = 0 then invariant ()
      done;
      invariant ();
      (* Drain: unload everything and verify full reclamation. *)
      List.iter
        (fun l ->
          if l.tcb.Tcb.state <> Tcb.Terminated then Platform.unload p l.tcb)
        !live;
      Platform.run_ticks p 5;
      check_int "EA-MPU slots fully reclaimed" slots0
        (Tytan_eampu.Eampu.used_slots eampu);
      check_int "heap fully reclaimed" heap0
        (Heap.allocated_bytes (Platform.heap p));
      check_int "directory empty" 0 (List.length (Rtm.all rtm));
      check_bool
        (Printf.sprintf "plenty of churn happened (%d loads, %d unloads, %d suspends)"
           !loads !unloads !suspends)
        true
        (!loads >= 25 && !unloads >= 10 && !suspends >= 5);
      (* The platform is still healthy: a fresh task meets its deadlines. *)
      let telf = Tasks.counter () in
      let tcb = Result.get_ok (Platform.load_blocking p ~name:"after" telf) in
      Platform.run_ticks p 10;
      let rtm = Option.get (Platform.rtm p) in
      let count =
        Tytan_machine.Cpu.with_firmware (Platform.cpu p)
          ~eip:(Rtm.code_eip rtm) (fun () ->
            Tytan_machine.Cpu.load32 (Platform.cpu p)
              (tcb.Tcb.region_base + Tasks.data_cell_offset telf))
      in
      check_bool "deadlines still met after the soak" true (count >= 9))

let ipc_soak_test =
  Alcotest.test_case "IPC churn with receiver turnover stays consistent"
    `Slow (fun () ->
      let p = Platform.create () in
      let rtm = Option.get (Platform.rtm p) in
      let receiver = ref None in
      let spawn_receiver n =
        let telf = Tasks.ipc_receiver () in
        let tcb =
          Result.get_ok
            (Platform.load_blocking p ~name:(Printf.sprintf "recv-%d" n) telf)
        in
        receiver := Some ((Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id, tcb)
      in
      spawn_receiver 0;
      let senders = ref [] in
      for round = 1 to 10 do
        let rid, rtcb = Option.get !receiver in
        (* a fresh sender hammers the current receiver *)
        let stelf = Tasks.ipc_sender ~receiver:rid ~repeat:true () in
        let sender =
          Result.get_ok
            (Platform.load_blocking p
               ~name:(Printf.sprintf "send-%d" round)
               stelf)
        in
        senders := sender :: !senders;
        Platform.run_ticks p 5;
        (* kill the receiver mid-traffic every few rounds; senders must
           be killed or released, never left blocked forever *)
        if round mod 3 = 0 then begin
          Platform.unload p rtcb;
          Platform.run_ticks p 3;
          List.iter
            (fun (s : Tcb.t) ->
              check_bool "no sender stuck on a dead receiver" true
                (s.Tcb.state <> Tcb.Blocked Tcb.Ipc_reply_wait))
            !senders;
          (* dead senders (they sent to a ghost) are fine; drop them *)
          senders :=
            List.filter (fun (s : Tcb.t) -> s.Tcb.state <> Tcb.Terminated) !senders;
          spawn_receiver round
        end
      done;
      let ipc = Option.get (Platform.ipc p) in
      check_int "no leaked sync sessions" 0 (Ipc.sync_sessions_open ipc);
      check_bool "traffic flowed" true (Ipc.deliveries ipc > 20))

(* --- Fleet determinism soak ------------------------------------------------ *)

(* The swarm campaign's whole value as a test fixture is bit-exact
   reproducibility: same seed, same report, even with fault injection
   and even when the two runs share one process (the per-session
   verifier fix — a process-global counter would shift the second
   run's nonces). *)
let fleet_soak_test =
  Alcotest.test_case "fleet campaigns reproduce bit-identically" `Slow
    (fun () ->
      let module Swarm = Tytan_provision.Swarm in
      List.iter
        (fun (mode, faults, seed) ->
          let run () =
            Swarm.run ~mode ~devices:48 ~epochs:3 ~seed ~faults
              ~loss_percent:12 ()
          in
          let r1 = run () in
          let r2 = run () in
          check_bool
            (Printf.sprintf "%s/faults=%b/seed=%d reproduces"
               (Swarm.mode_label mode) faults seed)
            true
            (Swarm.equal r1 r2);
          check_bool "rendering is bit-identical" true
            (Swarm.to_string r1 = Swarm.to_string r2))
        [
          (Tytan_provision.Swarm.Batched, false, 7);
          (Tytan_provision.Swarm.Batched, true, 7);
          (Tytan_provision.Swarm.Scalar, true, 7);
          (Tytan_provision.Swarm.Batched, true, 99);
        ])

(* Telemetry's core accounting contract must survive the swarm additions:
   on an instrumented platform every cycle is attributed somewhere and
   the rows still sum exactly to the clock. *)
let attribution_soak_test =
  Alcotest.test_case "cycle attribution still sums exactly to Cycles.now"
    `Slow (fun () ->
      let config =
        { Platform.default_config with telemetry_enabled = true }
      in
      let p = Platform.create ~config () in
      for i = 0 to 2 do
        ignore
          (Result.get_ok
             (Platform.load_blocking p
                ~name:(Printf.sprintf "soak-%d" i)
                (Tasks.counter ())))
      done;
      Platform.run_ticks p 40;
      let rows = Platform.cycle_attribution p in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 rows in
      check_int "rows sum to Cycles.now"
        (Tytan_machine.Cycles.now (Platform.clock p))
        total)

let () =
  Alcotest.run "soak"
    [
      ("soak", [ soak_test; ipc_soak_test ]);
      ("fleet-soak", [ fleet_soak_test; attribution_soak_test ]);
    ]
