(* Control-flow attestation: the hash-chained log, the device monitor,
   verifier-side replay, and the headline security property — a runtime
   (data-only) compromise that static attestation cannot see. *)

open Tytan_core
module Cpu = Tytan_machine.Cpu
module Memory = Tytan_machine.Memory
module Isa = Tytan_machine.Isa
module Tcb = Tytan_rtos.Tcb
module Region = Tytan_eampu.Region
module Log = Tytan_cfa.Log
module Monitor = Tytan_cfa.Monitor
module Replay = Tytan_cfa.Replay
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- The hash-chained log ---------------------------------------------------- *)

let edge src dst kind = { Attestation.src; dst; kind }

let some_edges =
  [|
    edge 0 8 Cpu.Direct_jump;
    edge 16 32 Cpu.Cond_taken;
    edge 40 8 Cpu.Indirect_call;
    edge 24 48 Cpu.Return;
    edge 56 2 Cpu.Swi_entry;
    edge 64 0 Cpu.Direct_jump;
    edge 72 80 Cpu.Direct_call;
    edge 88 96 Cpu.Indirect_jump;
    edge 96 16 Cpu.Return;
    edge 104 112 Cpu.Cond_taken;
  |]

let log_tests =
  let id = Task_id.of_image (Bytes.of_string "cfa-log-test") in
  [
    Alcotest.test_case "chain is deterministic and order-sensitive" `Quick
      (fun () ->
        let build order =
          let l = Log.create ~id () in
          Array.iter (Log.append l) order;
          Log.head_digest l
        in
        check_bool "same edges, same head" true
          (build some_edges = build some_edges);
        let swapped = Array.copy some_edges in
        let t = swapped.(0) in
        swapped.(0) <- swapped.(1);
        swapped.(1) <- t;
        check_bool "order changes the head" true
          (build some_edges <> build swapped));
    Alcotest.test_case "genesis binds the task identity" `Quick (fun () ->
        let other = Task_id.of_image (Bytes.of_string "someone-else") in
        let build id =
          let l = Log.create ~id () in
          Array.iter (Log.append l) some_edges;
          Log.head_digest l
        in
        check_bool "identity in the chain" true (build id <> build other));
    Alcotest.test_case "full history until the ring evicts" `Quick (fun () ->
        let l = Log.create ~id ~capacity:4 () in
        check_bool "empty log is full history" true (Log.full_history l);
        check_bool "empty base is genesis" true
          (Log.base_digest l = Attestation.cf_genesis ~id);
        Array.iteri
          (fun i e ->
            Log.append l e;
            if i < 4 then check_bool "still full" true (Log.full_history l))
          some_edges;
        check_int "all counted" 10 (Log.count l);
        check_int "ring bounded" 4 (Log.retained l);
        check_bool "window now" false (Log.full_history l);
        check_bool "base moved off genesis" true
          (Log.base_digest l <> Attestation.cf_genesis ~id));
    Alcotest.test_case "retained window extends base to head" `Quick
      (fun () ->
        let l = Log.create ~id ~capacity:4 () in
        Array.iter (Log.append l) some_edges;
        let replayed =
          Array.fold_left Attestation.cf_extend (Log.base_digest l)
            (Log.edges l)
        in
        check_bool "chain closes" true (replayed = Log.head_digest l));
    Alcotest.test_case "edge wire format round-trips" `Quick (fun () ->
        Array.iter
          (fun e ->
            let b = Attestation.cf_edge_to_bytes e in
            check_bool "round trip" true
              (Attestation.cf_edge_of_bytes b ~pos:0 = Some e))
          some_edges;
        let junk = Bytes.make 9 '\xff' in
        check_bool "bad kind rejected" true
          (Attestation.cf_edge_of_bytes junk ~pos:0 = None));
  ]

(* --- Device monitor on a live platform --------------------------------------- *)

let load_dispatcher p =
  let d = Tasks.gadget_dispatcher () in
  let tcb = Result.get_ok (Platform.load_blocking p ~name:"disp" d.Tasks.telf) in
  let rtm = Option.get (Platform.rtm p) in
  let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
  (d, tcb, entry)

let read_cell p addr =
  let rtm = Option.get (Platform.rtm p) in
  Cpu.with_firmware (Platform.cpu p) ~eip:(Rtm.code_eip rtm) (fun () ->
      Cpu.load32 (Platform.cpu p) addr)

let rounds p (entry : Rtm.entry) (d : Tasks.dispatcher) =
  read_cell p (entry.Rtm.base + d.Tasks.handler_cell + 4)

let handled p (entry : Rtm.entry) (d : Tasks.dispatcher) =
  read_cell p (entry.Rtm.base + d.Tasks.handler_cell + 8)

let watched ?capacity ~ticks () =
  let p = Platform.create () in
  let d, tcb, entry = load_dispatcher p in
  let mon = Monitor.create p in
  let s = Result.get_ok (Monitor.watch mon ~tcb ?capacity ()) in
  Platform.run_ticks p ticks;
  (p, d, tcb, entry, mon, s)

let oracle (d : Tasks.dispatcher) =
  Result.get_ok (Replay.oracle_of_telf d.Tasks.telf)

let monitor_tests =
  [
    Alcotest.test_case "an unwatched platform is untouched" `Quick (fun () ->
        let run with_monitor =
          let p = Platform.create () in
          let d, _, entry = load_dispatcher p in
          let mon = if with_monitor then Some (Monitor.create p) else None in
          Platform.run_ticks p 15;
          (rounds p entry d, Option.map Monitor.events_logged mon)
        in
        let plain, _ = run false in
        let monitored, events = run true in
        check_bool "task made progress" true (plain > 0);
        check_int "identical progress" plain monitored;
        check_int "no events" 0 (Option.get events));
    Alcotest.test_case "watching records events into the chained log" `Quick
      (fun () ->
        let p, d, _, entry, mon, s = watched ~ticks:12 () in
        check_bool "events logged" true (Monitor.events_logged mon > 0);
        check_int "log agrees with the monitor" (Monitor.events_logged mon)
          (Log.count (Monitor.log s));
        check_bool "task still progressing" true (rounds p entry d > 0);
        check_bool "every dispatch ran the real handler" true
          (handled p entry d = rounds p entry d));
    Alcotest.test_case "event volume grows with execution" `Quick (fun () ->
        let events ticks =
          let _, _, _, _, mon, _ = watched ~ticks () in
          Monitor.events_logged mon
        in
        let short = events 6 and long = events 18 in
        check_bool "more run, more edges" true (long > 2 * short));
    Alcotest.test_case "unwatch stops logging and clears the hook" `Quick
      (fun () ->
        let p, _, _, _, mon, s = watched ~ticks:6 () in
        let before = Monitor.events_logged mon in
        Monitor.unwatch mon s;
        Platform.run_ticks p 6;
        check_int "no further events" before (Monitor.events_logged mon);
        check_bool "cpu hook gone" false
          (Cpu.branch_hook_installed (Platform.cpu p)));
    Alcotest.test_case "watching needs the secure platform" `Quick (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        let d = Tasks.gadget_dispatcher () in
        let tcb =
          Result.get_ok
            (Platform.load_blocking p ~name:"d" ~secure:false d.Tasks.telf)
        in
        let mon = Monitor.create p in
        check_bool "refused" true (Result.is_error (Monitor.watch mon ~tcb ())));
    Alcotest.test_case "honest full-history report replays clean" `Quick
      (fun () ->
        let _, d, _, _, mon, s = watched ~ticks:12 () in
        let nonce = Bytes.of_string "cfa-nonce-1" in
        let r = Option.get (Monitor.attest mon s ~nonce) in
        check_int "report covers the whole log" (Log.count (Monitor.log s))
          r.Attestation.edge_count;
        check_bool "path accepted" true
          (Replay.verify (oracle d) r = Ok Replay.Full_history));
    Alcotest.test_case "bounded window still replays" `Quick (fun () ->
        let _, d, _, _, mon, s = watched ~capacity:8 ~ticks:12 () in
        let count = Log.count (Monitor.log s) in
        check_bool "ring wrapped" true (count > 8);
        let r = Option.get (Monitor.attest mon s ~nonce:(Bytes.of_string "n")) in
        check_bool "window accepted" true
          (Replay.verify (oracle d) r = Ok (Replay.Window (count - 8))));
    Alcotest.test_case "a task writing the log ring is killed" `Quick
      (fun () ->
        let p, _, _, _, _, s = watched ~ticks:2 () in
        let ring = Monitor.ring_region s in
        let attacker_telf = Tasks.idt_attacker ~idt_addr:(Region.base ring) in
        let attacker =
          Result.get_ok
            (Platform.load_blocking p ~name:"scribbler" ~secure:false
               attacker_telf)
        in
        Platform.run_ticks p 4;
        check_bool "EA-MPU killed the scribbler" true
          (attacker.Tcb.state = Tcb.Terminated));
  ]

(* --- The security property --------------------------------------------------- *)

let security_tests =
  [
    Alcotest.test_case
      "data-only gadget exploit: static attestation passes, CFA catches it"
      `Quick (fun () ->
        let p, d, tcb, entry, mon, s = watched ~ticks:8 () in
        let orc = oracle d in
        (* Honest phase: the path replays clean. *)
        let r1 = Option.get (Monitor.attest mon s ~nonce:(Bytes.of_string "h")) in
        check_bool "honest run accepted" true
          (Replay.verify orc r1 = Ok Replay.Full_history);
        (* The exploit: corrupt the function-pointer cell in the task's
           data section so dispatch lands on the dead Ret gadget.  A
           direct memory poke models a data-only write primitive — no
           code changes, no EA-MPU fault. *)
        let base = entry.Rtm.base in
        Memory.write32 (Platform.memory p)
          (base + d.Tasks.handler_cell)
          (base + d.Tasks.gadget);
        let handled_before = handled p entry d in
        Platform.run_ticks p 8;
        check_bool "task never faulted" true (tcb.Tcb.state <> Tcb.Terminated);
        check_bool "dispatch loop kept running" true
          (rounds p entry d > handled_before);
        check_int "but the real handler no longer runs" handled_before
          (handled p entry d);
        (* Static measurement was taken at load: remote attestation still
           vouches for the task. *)
        let att = Option.get (Platform.attestation p) in
        let ka =
          Attestation.derive_ka
            ~platform_key:(Platform.config p).Platform.platform_key
        in
        let nonce = Bytes.of_string "static-after-exploit" in
        let rep =
          Option.get (Attestation.remote_attest att ~id:entry.Rtm.id ~nonce)
        in
        check_bool "static attestation still passes" true
          (Attestation.verify ~ka rep ~expected:entry.Rtm.id ~nonce);
        (* The control-flow report does not: the indirect call now targets
           an address no relocation publishes. *)
        let nonce2 = Bytes.of_string "cfa-after-exploit" in
        let r2 = Option.get (Monitor.attest mon s ~nonce:nonce2) in
        check_bool "report is authentic" true
          (Attestation.verify_cfa ~ka r2 ~expected:entry.Rtm.id ~nonce:nonce2);
        match Replay.verify orc r2 with
        | Ok _ -> Alcotest.fail "gadget dispatch replayed clean"
        | Error msg ->
            check_bool "named as a code-reuse gadget" true
              (contains ~sub:"gadget" msg));
    Alcotest.test_case "entry-point bypass shows up as a foreign edge" `Quick
      (fun () ->
        let p, d, tcb, _, mon, s = watched ~ticks:4 () in
        let attacker_telf =
          Tasks.entry_bypass ~victim_entry:tcb.Tcb.entry
            ~offset:(4 * Isa.width)
        in
        let attacker =
          Result.get_ok
            (Platform.load_blocking p ~name:"bypass" ~secure:false
               attacker_telf)
        in
        Platform.run_ticks p 4;
        check_bool "EA-MPU killed the attacker anyway" true
          (attacker.Tcb.state = Tcb.Terminated);
        let r = Option.get (Monitor.attest mon s ~nonce:(Bytes.of_string "b")) in
        (match Replay.verify (oracle d) r with
        | Ok _ -> Alcotest.fail "bypass edge replayed clean"
        | Error msg ->
            check_bool "flagged as an entry bypass" true
              (contains ~sub:"entry point" msg)));
    Alcotest.test_case "jumping exactly to the entry replays clean" `Quick
      (fun () ->
        let p, d, tcb, _, mon, s = watched ~ticks:4 () in
        let attacker_telf =
          Tasks.entry_bypass ~victim_entry:tcb.Tcb.entry ~offset:0
        in
        let attacker =
          Result.get_ok
            (Platform.load_blocking p ~name:"knocker" ~secure:false
               attacker_telf)
        in
        Platform.run_ticks p 4;
        check_bool "legal entry, no violation" true
          (attacker.Tcb.state <> Tcb.Terminated);
        let r = Option.get (Monitor.attest mon s ~nonce:(Bytes.of_string "e")) in
        check_bool "foreign entry at the entry point is fine" true
          (Result.is_ok (Replay.verify (oracle d) r)));
    Alcotest.test_case "tampered reports are rejected" `Quick (fun () ->
        let p, d, _, entry, mon, s = watched ~ticks:8 () in
        let ka =
          Attestation.derive_ka
            ~platform_key:(Platform.config p).Platform.platform_key
        in
        let nonce = Bytes.of_string "tamper" in
        let r = Option.get (Monitor.attest mon s ~nonce) in
        (* MAC tamper: authenticity fails. *)
        let mac = Bytes.copy r.Attestation.mac in
        Bytes.set mac 0 (Char.chr (Char.code (Bytes.get mac 0) lxor 1));
        check_bool "forged MAC rejected" false
          (Attestation.verify_cfa ~ka
             { r with Attestation.mac }
             ~expected:entry.Rtm.id ~nonce);
        (* Edge tamper: the hash chain no longer closes. *)
        let edges = Array.copy r.Attestation.edges in
        check_bool "enough edges to swap" true (Array.length edges >= 2);
        let t = edges.(0) in
        edges.(0) <- edges.(1);
        edges.(1) <- t;
        match Replay.verify (oracle d) { r with Attestation.edges } with
        | Ok _ -> Alcotest.fail "edited path replayed clean"
        | Error msg ->
            check_bool "digest mismatch" true (contains ~sub:"digest" msg));
  ]

let () =
  Alcotest.run "cfa"
    [
      ("log", log_tests);
      ("monitor", monitor_tests);
      ("security", security_tests);
    ]
