(* TELF binary format: validation, encode/decode, relocation apply/revert
   and the builder front end. *)

open Tytan_machine
open Tytan_telf

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample ?(relocs = [| 16 |]) () =
  let image = Bytes.make 32 '\x11' in
  Telf.make ~entry:0 ~image ~text_size:16 ~relocations:relocs ~bss_size:8
    ~stack_size:128 ()

let format_tests =
  [
    Alcotest.test_case "encode/decode round trip" `Quick (fun () ->
        let t = sample () in
        match Telf.decode (Telf.encode t) with
        | Ok t' ->
            check_bool "equal" true
              (t'.Telf.entry = t.Telf.entry
              && t'.image = t.image
              && t'.text_size = t.text_size
              && t'.relocations = t.relocations
              && t'.bss_size = t.bss_size
              && t'.stack_size = t.stack_size)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "bad magic rejected" `Quick (fun () ->
        let b = Telf.encode (sample ()) in
        Bytes.set b 0 'X';
        check_bool "error" true (Result.is_error (Telf.decode b)));
    Alcotest.test_case "truncated rejected" `Quick (fun () ->
        let b = Telf.encode (sample ()) in
        check_bool "error" true
          (Result.is_error (Telf.decode (Bytes.sub b 0 (Bytes.length b - 4)))));
    Alcotest.test_case "bad version rejected" `Quick (fun () ->
        let b = Telf.encode (sample ()) in
        Bytes.set_int32_le b 4 9l;
        check_bool "error" true (Result.is_error (Telf.decode b)));
    Alcotest.test_case "reloc offset outside image rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Telf.make ~entry:0 ~image:(Bytes.make 8 ' ') ~text_size:8
                  ~relocations:[| 6 |] ~bss_size:0 ~stack_size:64 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "entry outside text rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Telf.make ~entry:20 ~image:(Bytes.make 32 ' ') ~text_size:16
                  ~relocations:[||] ~bss_size:0 ~stack_size:64 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "memory footprint" `Quick (fun () ->
        check_int "image+bss+stack" (32 + 8 + 128)
          (Telf.memory_footprint (sample ())));
    Alcotest.test_case "manifest round trip (version 2)" `Quick (fun () ->
        let manifest =
          Manifest.make
            ~peers:[ (0xAB, 0xCD); (1, 2) ]
            ~secret_ranges:[ (16, 4) ]
            ~declass_windows:[ (0xF000_3000, 64) ]
            ()
        in
        let image = Bytes.make 32 '\x11' in
        let t =
          Telf.make ~entry:0 ~image ~text_size:16 ~relocations:[||] ~bss_size:8
            ~stack_size:128 ~manifest ()
        in
        match Telf.decode (Telf.encode t) with
        | Ok t' ->
            check_bool "manifest preserved" true
              (t'.Telf.manifest = Some manifest)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "version 1 image decodes with no manifest" `Quick
      (fun () ->
        match Telf.decode (Telf.encode (sample ())) with
        | Ok t -> check_bool "no manifest" true (t.Telf.manifest = None)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "empty manifest normalises to none" `Quick (fun () ->
        let t =
          Telf.make ~entry:0 ~image:(Bytes.make 32 ' ') ~text_size:16
            ~relocations:[||] ~bss_size:0 ~stack_size:64
            ~manifest:Manifest.empty ()
        in
        check_bool "normalised" true (t.Telf.manifest = None);
        (* and hence encodes as a plain version-1 image *)
        let b = Telf.encode t in
        check_int "version 1" 1 (Int32.to_int (Bytes.get_int32_le b 4)));
    Alcotest.test_case "corrupted manifest tail rejected" `Quick (fun () ->
        let manifest = Manifest.make ~peers:[ (3, 4) ] () in
        let t =
          Telf.make ~entry:0 ~image:(Bytes.make 32 '\x11') ~text_size:16
            ~relocations:[||] ~bss_size:0 ~stack_size:64 ~manifest ()
        in
        let b = Telf.encode t in
        (* smash the manifest magic at the start of the trailing section *)
        Bytes.set b (Bytes.length b - Manifest.size manifest) 'X';
        check_bool "error" true (Result.is_error (Telf.decode b)));
    Alcotest.test_case "truncated manifest rejected" `Quick (fun () ->
        let manifest = Manifest.make ~peers:[ (3, 4) ] ~secret_ranges:[ (0, 8) ] () in
        let t =
          Telf.make ~entry:0 ~image:(Bytes.make 32 '\x11') ~text_size:16
            ~relocations:[||] ~bss_size:0 ~stack_size:64 ~manifest ()
        in
        let b = Telf.encode t in
        check_bool "error" true
          (Result.is_error (Telf.decode (Bytes.sub b 0 (Bytes.length b - 5)))));
    Alcotest.test_case "relocations are sorted" `Quick (fun () ->
        let t = sample ~relocs:[| 20; 4; 12 |] () in
        check_bool "sorted" true (t.Telf.relocations = [| 4; 12; 20 |]));
  ]

let relocate_tests =
  [
    Alcotest.test_case "apply adds base" `Quick (fun () ->
        let image = Bytes.make 16 '\x00' in
        Bytes.set_int32_le image 4 100l;
        Relocate.apply ~base:0x1000 ~image ~relocations:[| 4 |];
        check_int "patched" 0x1064 (Int32.to_int (Bytes.get_int32_le image 4)));
    Alcotest.test_case "revert after apply restores image" `Quick (fun () ->
        let image = Bytes.of_string "abcdefghijklmnop" in
        let original = Bytes.copy image in
        let relocations = [| 0; 8 |] in
        Relocate.apply ~base:0xBEEF ~image ~relocations;
        check_bool "changed" false (image = original);
        Relocate.revert ~base:0xBEEF ~image ~relocations;
        check_bool "restored" true (image = original));
    Alcotest.test_case "wraparound is consistent" `Quick (fun () ->
        let image = Bytes.make 8 '\xFF' in
        let original = Bytes.copy image in
        Relocate.apply ~base:0x10 ~image ~relocations:[| 0 |];
        Relocate.revert ~base:0x10 ~image ~relocations:[| 0 |];
        check_bool "restored despite wrap" true (image = original));
    Alcotest.test_case "untouched bytes unchanged" `Quick (fun () ->
        let image = Bytes.of_string "abcdefgh" in
        Relocate.apply ~base:1 ~image ~relocations:[| 0 |];
        check_bool "tail intact" true (Bytes.sub_string image 4 4 = "efgh"));
  ]

let builder_tests =
  [
    Alcotest.test_case "of_program carries structure" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.label p "_start";
        Assembler.movi_label p ~rd:0 "cell";
        Assembler.instr p Isa.Halt;
        Assembler.begin_data p;
        Assembler.label p "cell";
        Assembler.word p 0;
        let telf = Builder.of_program ~stack_size:256 (Assembler.assemble p) in
        check_int "entry" 0 telf.Telf.entry;
        check_int "text" 16 telf.Telf.text_size;
        check_int "relocs" 1 (Telf.reloc_count telf);
        check_int "stack" 256 telf.Telf.stack_size);
    Alcotest.test_case "synthetic has exact reloc count" `Quick (fun () ->
        let telf =
          Builder.synthetic ~image_size:512 ~reloc_count:7 ~stack_size:128 ()
        in
        check_int "relocs" 7 (Telf.reloc_count telf);
        check_int "image" 512 (Bytes.length telf.Telf.image));
    Alcotest.test_case "synthetic is deterministic per seed" `Quick (fun () ->
        let a = Builder.synthetic ~seed:3 ~image_size:256 ~reloc_count:4 ~stack_size:64 () in
        let b = Builder.synthetic ~seed:3 ~image_size:256 ~reloc_count:4 ~stack_size:64 () in
        let c = Builder.synthetic ~seed:4 ~image_size:256 ~reloc_count:4 ~stack_size:64 () in
        check_bool "same seed same image" true (a.Telf.image = b.Telf.image);
        check_bool "different seed differs" false (a.Telf.image = c.Telf.image));
    Alcotest.test_case "synthetic too small rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (Builder.synthetic ~image_size:8 ~reloc_count:4 ~stack_size:64 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "synthetic ends with a self-jump" `Quick (fun () ->
        let telf =
          Builder.synthetic ~image_size:256 ~reloc_count:0 ~stack_size:64 ()
        in
        let code_end = telf.Telf.text_size in
        let last = Bytes.sub telf.Telf.image (code_end - Isa.width) Isa.width in
        match Isa.decode last with
        | Isa.Jmp d -> check_int "self loop" (-Isa.width) (Word.to_signed d)
        | _ -> Alcotest.fail "expected jmp");
  ]

let () =
  Alcotest.run "telf"
    [
      ("format", format_tests);
      ("relocate", relocate_tests);
      ("builder", builder_tests);
    ]
