(* Property-based tests (qcheck) over the core data structures and
   invariants: word arithmetic, SHA-1/HMAC structure, TELF and ISA
   round-trips, relocation, the EA-MPU access lattice, the heap and the
   sealed-storage cipher. *)

open Tytan_machine
open Tytan_eampu
open Tytan_telf
module Crypto = Tytan_crypto

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Generators ----------------------------------------------------------- *)

let word_gen = QCheck.Gen.(map (fun n -> n land Word.max_value) (int_bound max_int))
let word_arb = QCheck.make ~print:(Printf.sprintf "0x%08X") word_gen

let bytes_arb =
  QCheck.map ~rev:Bytes.to_string Bytes.of_string QCheck.string

let small_bytes_arb =
  QCheck.map ~rev:Bytes.to_string Bytes.of_string QCheck.small_string

(* --- Word ----------------------------------------------------------------- *)

let word_props =
  [
    QCheck.Test.make ~name:"add is associative mod 2^32" ~count:500
      (QCheck.triple word_arb word_arb word_arb) (fun (a, b, c) ->
        Word.add (Word.add a b) c = Word.add a (Word.add b c));
    QCheck.Test.make ~name:"sub inverts add" ~count:500
      (QCheck.pair word_arb word_arb) (fun (a, b) ->
        Word.sub (Word.add a b) b = a);
    QCheck.Test.make ~name:"to_signed/of_signed round trip" ~count:500
      word_arb (fun w -> Word.of_signed (Word.to_signed w) = w);
    QCheck.Test.make ~name:"lognot is an involution" ~count:500 word_arb
      (fun w -> Word.lognot (Word.lognot w) = w);
    QCheck.Test.make ~name:"values stay within 32 bits" ~count:500
      (QCheck.pair word_arb word_arb) (fun (a, b) ->
        let all_ok v = v >= 0 && v <= Word.max_value in
        all_ok (Word.add a b) && all_ok (Word.mul a b)
        && all_ok (Word.sub a b));
  ]

(* --- Crypto ---------------------------------------------------------------- *)

let crypto_props =
  [
    QCheck.Test.make ~name:"sha1 deterministic" ~count:100 bytes_arb (fun b ->
        Crypto.Sha1.digest b = Crypto.Sha1.digest (Bytes.copy b));
    QCheck.Test.make ~name:"sha1 digest always 20 bytes" ~count:100 bytes_arb
      (fun b -> Bytes.length (Crypto.Sha1.digest b) = 20);
    QCheck.Test.make ~name:"sha1 streaming split-invariant" ~count:100
      (QCheck.pair bytes_arb QCheck.small_nat) (fun (b, k) ->
        let ctx = Crypto.Sha1.init () in
        let cut = if Bytes.length b = 0 then 0 else k mod (Bytes.length b + 1) in
        Crypto.Sha1.feed_sub ctx b ~pos:0 ~len:cut;
        Crypto.Sha1.feed_sub ctx b ~pos:cut ~len:(Bytes.length b - cut);
        Crypto.Sha1.finalize ctx = Crypto.Sha1.digest b);
    QCheck.Test.make ~name:"hmac verify accepts own tag" ~count:100
      (QCheck.pair small_bytes_arb bytes_arb) (fun (key, msg) ->
        Crypto.Hmac.verify ~key msg ~tag:(Crypto.Hmac.mac ~key msg));
    QCheck.Test.make ~name:"seal/open round trip for any payload" ~count:100
      (QCheck.pair small_bytes_arb bytes_arb) (fun (nonce, payload) ->
        let key = Bytes.make 20 'k' in
        Crypto.Keystream.open_sealed ~key
          (Crypto.Keystream.seal ~key ~nonce payload)
        = Some payload);
    QCheck.Test.make ~name:"sealed encode/decode round trip" ~count:100
      (QCheck.pair small_bytes_arb bytes_arb) (fun (nonce, payload) ->
        let key = Bytes.make 20 'k' in
        let sealed = Crypto.Keystream.seal ~key ~nonce payload in
        match Crypto.Keystream.decode (Crypto.Keystream.encode sealed) with
        | Some s -> Crypto.Keystream.open_sealed ~key s = Some payload
        | None -> false);
    QCheck.Test.make ~name:"constant-time equal agrees with (=)" ~count:200
      (QCheck.pair small_bytes_arb small_bytes_arb) (fun (a, b) ->
        Crypto.Constant_time.equal a b = (a = b));
  ]

(* --- ISA -------------------------------------------------------------------- *)

let reg_gen = QCheck.Gen.int_bound 15

(* Every constructor of the ISA, so the round-trip properties cover the
   whole opcode space. *)
let instr_gen =
  let open QCheck.Gen in
  let open Isa in
  let shift_gen = int_bound 31 in
  oneof
    [
      return Nop;
      map2 (fun r w -> Movi (r, w)) reg_gen word_gen;
      map2 (fun a b -> Mov (a, b)) reg_gen reg_gen;
      map3 (fun a b c -> Add (a, b, c)) reg_gen reg_gen reg_gen;
      map3 (fun a b w -> Addi (a, b, w)) reg_gen reg_gen word_gen;
      map3 (fun a b c -> Sub (a, b, c)) reg_gen reg_gen reg_gen;
      map3 (fun a b c -> Mul (a, b, c)) reg_gen reg_gen reg_gen;
      map3 (fun a b c -> And (a, b, c)) reg_gen reg_gen reg_gen;
      map3 (fun a b c -> Or (a, b, c)) reg_gen reg_gen reg_gen;
      map3 (fun a b c -> Xor (a, b, c)) reg_gen reg_gen reg_gen;
      map3 (fun a b n -> Shl (a, b, n)) reg_gen reg_gen shift_gen;
      map3 (fun a b n -> Shr (a, b, n)) reg_gen reg_gen shift_gen;
      map2 (fun a b -> Cmp (a, b)) reg_gen reg_gen;
      map2 (fun r w -> Cmpi (r, w)) reg_gen word_gen;
      map3 (fun a b w -> Ldw (a, b, w)) reg_gen reg_gen word_gen;
      map3 (fun a w b -> Stw (a, w, b)) reg_gen word_gen reg_gen;
      map3 (fun a b w -> Ldb (a, b, w)) reg_gen reg_gen word_gen;
      map3 (fun a w b -> Stb (a, w, b)) reg_gen word_gen reg_gen;
      map (fun w -> Jmp w) word_gen;
      map (fun w -> Jz w) word_gen;
      map (fun w -> Jnz w) word_gen;
      map (fun w -> Jlt w) word_gen;
      map (fun w -> Jge w) word_gen;
      map (fun r -> Jmpr r) reg_gen;
      map (fun w -> Call w) word_gen;
      map (fun r -> Callr r) reg_gen;
      return Ret;
      map (fun r -> Push r) reg_gen;
      map (fun r -> Pop r) reg_gen;
      map (fun n -> Swi (n land 0xF)) (int_bound 15);
      return Iret;
      return Halt;
    ]

let instr_arb = QCheck.make ~print:(Format.asprintf "%a" Isa.pp) instr_gen

let instr_list_arb =
  QCheck.make
    ~print:(fun is ->
      String.concat "; " (List.map (Format.asprintf "%a" Isa.pp) is))
    QCheck.Gen.(list_size (int_range 1 30) instr_gen)

let isa_props =
  [
    QCheck.Test.make ~name:"encode/decode round trip" ~count:500 instr_arb
      (fun i -> Isa.decode (Isa.encode i) = i);
    QCheck.Test.make ~name:"encoding is fixed width" ~count:200 instr_arb
      (fun i -> Bytes.length (Isa.encode i) = Isa.width);
    QCheck.Test.make
      ~name:"assemble / disassemble / re-assemble is a fixpoint" ~count:300
      instr_list_arb
      (fun instrs ->
        let assemble is =
          let p = Assembler.create () in
          Assembler.instrs p is;
          (Assembler.assemble p).Assembler.image
        in
        let image = assemble instrs in
        let lines = Disasm.of_bytes image in
        List.length lines = List.length instrs
        && List.for_all2
             (fun (l : Disasm.line) i -> l.Disasm.instr = Some i)
             lines instrs
        && assemble
             (List.filter_map (fun (l : Disasm.line) -> l.Disasm.instr) lines)
           = image);
    QCheck.Test.make ~name:"disassembler reports trailing partial slots"
      ~count:200
      (QCheck.pair instr_list_arb (QCheck.make (QCheck.Gen.int_range 1 7)))
      (fun (instrs, extra) ->
        let p = Assembler.create () in
        Assembler.instrs p instrs;
        let image = (Assembler.assemble p).Assembler.image in
        let ragged = Bytes.cat image (Bytes.make extra '\xEE') in
        let lines = Disasm.of_bytes ragged in
        List.length lines = List.length instrs + 1
        &&
        match List.rev lines with
        | (last : Disasm.line) :: _ ->
            last.Disasm.instr = None && Bytes.length last.Disasm.raw = extra
        | [] -> false);
  ]

(* --- TELF and relocation ---------------------------------------------------- *)

let telf_gen =
  let open QCheck.Gen in
  let* code_words = int_range 2 40 in
  let* data_words = int_range 0 10 in
  let* reloc_count = int_bound data_words in
  let* stack = int_range 128 1024 in
  let image_size = (code_words * Isa.width) + (data_words * 4) in
  let image = Bytes.make image_size '\000' in
  let* seed = int_bound 10000 in
  for i = 0 to image_size - 1 do
    Bytes.set image i (Char.chr ((seed + (i * 7)) land 0xFF))
  done;
  (* first bytes decode arbitrarily; only structure matters here *)
  let relocations =
    Array.init reloc_count (fun i -> (code_words * Isa.width) + (4 * i))
  in
  return
    (Telf.make ~entry:0 ~image ~text_size:(code_words * Isa.width)
       ~relocations ~bss_size:(data_words * 2) ~stack_size:stack ())

let telf_arb = QCheck.make ~print:(Format.asprintf "%a" Telf.pp) telf_gen

let telf_props =
  [
    QCheck.Test.make ~name:"encode/decode round trip" ~count:200 telf_arb
      (fun t ->
        match Telf.decode (Telf.encode t) with
        | Ok t' -> t' = t
        | Error _ -> false);
    QCheck.Test.make ~name:"revert ∘ apply = identity" ~count:200
      (QCheck.pair telf_arb word_arb) (fun (t, base) ->
        let image = Bytes.copy t.Telf.image in
        Relocate.apply ~base ~image ~relocations:t.relocations;
        Relocate.revert ~base ~image ~relocations:t.relocations;
        image = t.Telf.image);
    QCheck.Test.make ~name:"identity is position independent" ~count:100
      (QCheck.pair telf_arb (QCheck.pair word_arb word_arb))
      (fun (t, (b1, b2)) ->
        let measure_at base =
          let image = Bytes.copy t.Telf.image in
          Relocate.apply ~base ~image ~relocations:t.relocations;
          Relocate.revert ~base ~image ~relocations:t.relocations;
          Crypto.Sha1.digest image
        in
        measure_at b1 = measure_at b2);
    QCheck.Test.make ~name:"decode never crashes on arbitrary bytes"
      ~count:300 bytes_arb (fun b ->
        match Telf.decode b with Ok _ | Error _ -> true);
    QCheck.Test.make ~name:"footprint = image + bss + stack" ~count:200
      telf_arb (fun t ->
        Telf.memory_footprint t
        = Bytes.length t.Telf.image + t.bss_size + t.stack_size);
  ]

(* --- Flow verification over hostile input ----------------------------------- *)

(* Flowcheck.check is the loader's last line of defence against a
   crafted image, so — like Tycheck.check — it must never raise, no
   matter how malformed the TELF or how hostile the manifest. *)

let manifest_gen =
  let open QCheck.Gen in
  let entry = pair (int_bound 0xFFFF) (int_bound 0xFFFF) in
  let* peers = list_size (int_bound 4) entry in
  let* secret_ranges = list_size (int_bound 4) entry in
  let* declass_windows = list_size (int_bound 4) entry in
  return (Manifest.make ~peers ~secret_ranges ~declass_windows ())

let manifest_arb =
  QCheck.make ~print:(Format.asprintf "%a" Manifest.pp) manifest_gen

let telf2_gen =
  let open QCheck.Gen in
  let* telf = telf_gen in
  let* manifest = opt manifest_gen in
  return
    (Telf.make ?manifest ~entry:telf.Telf.entry ~image:telf.Telf.image
       ~text_size:telf.Telf.text_size ~relocations:telf.Telf.relocations
       ~bss_size:telf.Telf.bss_size ~stack_size:telf.Telf.stack_size ())

let telf2_arb = QCheck.make ~print:(Format.asprintf "%a" Telf.pp) telf2_gen

let never_raises telf =
  match Tytan_analysis.Flowcheck.check telf with _ -> true

let flow_props =
  [
    QCheck.Test.make ~name:"manifest encode/decode round trip" ~count:200
      manifest_arb (fun m ->
        match Manifest.decode (Manifest.encode m) with
        | Ok m' -> m' = m
        | Error _ -> false);
    QCheck.Test.make ~name:"manifest decode never crashes on arbitrary bytes"
      ~count:300 bytes_arb (fun b ->
        match Manifest.decode b with Ok _ | Error _ -> true);
    QCheck.Test.make ~name:"manifest-bearing TELF round trips" ~count:200
      telf2_arb (fun t ->
        match Telf.decode (Telf.encode t) with
        | Ok t' -> t' = t
        | Error _ -> false);
    QCheck.Test.make ~name:"Flowcheck.check never raises on generated images"
      ~count:200 telf2_arb never_raises;
    QCheck.Test.make
      ~name:"Flowcheck.check never raises on decoded arbitrary bytes"
      ~count:300 bytes_arb (fun b ->
        match Telf.decode b with
        | Error _ -> true
        | Ok telf -> never_raises telf);
    QCheck.Test.make
      ~name:"Flowcheck.check survives truncated / bit-flipped images"
      ~count:300
      (QCheck.pair telf2_arb (QCheck.pair QCheck.small_nat QCheck.small_nat))
      (fun (t, (cut, flip)) ->
        let b = Telf.encode t in
        let n = Bytes.length b in
        let keep = max 1 (n - (cut mod n)) in
        let b = Bytes.sub b 0 keep in
        let i = flip mod keep in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
        match Telf.decode b with
        | Error _ -> true
        | Ok telf -> never_raises telf);
  ]

(* --- EA-MPU access lattice --------------------------------------------------- *)

let eampu_props =
  [
    QCheck.Test.make
      ~name:"grants over protected memory only widen access" ~count:200
      (QCheck.pair (QCheck.make word_gen) (QCheck.make word_gen))
      (fun (eip_seed, addr_seed) ->
        (* For accesses to memory already under protection: an allowed
           access stays allowed after one more grant covering it.  (A
           grant over previously-open memory may legitimately *restrict*
           third parties — that is how protection is established.) *)
        let eip = 0x1000 + (eip_seed mod 0x100) in
        let addr = 0x2000 + (addr_seed mod 0xFC) in
        let base_rules e =
          Eampu.set_slot e 0
            (Some (Eampu.Exec { region = Region.make ~base:0x1000 ~size:0x100; entry = None }));
          Eampu.set_slot e 1
            (Some
               (Eampu.Grant
                  {
                    code = Region.make ~base:0x1000 ~size:0x100;
                    data = Region.make ~base:0x2000 ~size:0x100;
                    perm = Perm.r;
                  }));
          Eampu.enable e
        in
        let allowed e =
          try
            Eampu.check e ~eip ~addr ~size:4 ~kind:Access.Read;
            true
          with Access.Violation _ -> false
        in
        let e1 = Eampu.create () in
        base_rules e1;
        let e2 = Eampu.create () in
        base_rules e2;
        Eampu.set_slot e2 2
          (Some
             (Eampu.Grant
                {
                  code = Region.make ~base:0x1000 ~size:0x100;
                  data = Region.make ~base:0x2000 ~size:0x200;
                  perm = Perm.rw;
                }));
        (not (allowed e1)) || allowed e2);
    QCheck.Test.make ~name:"uncovered addresses always allowed" ~count:200
      (QCheck.make word_gen) (fun seed ->
        let e = Eampu.create () in
        Eampu.set_slot e 0
          (Some (Eampu.Exec { region = Region.make ~base:0x1000 ~size:0x100; entry = None }));
        Eampu.enable e;
        let addr = 0x10_0000 + (seed mod 0x1000) in
        try
          Eampu.check e ~eip:0 ~addr ~size:4 ~kind:Access.Write;
          true
        with Access.Violation _ -> false);
    QCheck.Test.make ~name:"conflicts is symmetric for exec rules" ~count:200
      (QCheck.pair (QCheck.make (QCheck.Gen.int_range 0 64))
         (QCheck.make (QCheck.Gen.int_range 0 64)))
      (fun (a, b) ->
        let ra = Region.make ~base:(0x1000 + (a * 16)) ~size:0x40 in
        let rb = Region.make ~base:(0x1000 + (b * 16)) ~size:0x40 in
        let with_rule r =
          let e = Eampu.create () in
          Eampu.set_slot e 0 (Some (Eampu.Exec { region = r; entry = None }));
          e
        in
        let c1 = Eampu.conflicts (with_rule ra) (Eampu.Exec { region = rb; entry = None }) in
        let c2 = Eampu.conflicts (with_rule rb) (Eampu.Exec { region = ra; entry = None }) in
        (c1 = []) = (c2 = []));
  ]

(* --- Heap --------------------------------------------------------------------- *)

let heap_ops_gen =
  QCheck.Gen.(list_size (int_range 1 40) (int_range 1 400))

let heap_props =
  [
    QCheck.Test.make ~name:"alloc'd blocks never overlap" ~count:100
      (QCheck.make heap_ops_gen) (fun sizes ->
        let h = Tytan_core.Heap.create ~base:0x1000 ~size:0x4000 in
        let blocks =
          List.filter_map
            (fun size ->
              Option.map (fun base -> (base, size)) (Tytan_core.Heap.alloc h ~size))
            sizes
        in
        let disjoint (b1, s1) (b2, s2) = b1 + s1 <= b2 || b2 + s2 <= b1 in
        let rec pairwise = function
          | [] -> true
          | x :: rest -> List.for_all (disjoint x) rest && pairwise rest
        in
        pairwise blocks);
    QCheck.Test.make ~name:"free everything restores capacity" ~count:100
      (QCheck.make heap_ops_gen) (fun sizes ->
        let h = Tytan_core.Heap.create ~base:0x1000 ~size:0x4000 in
        let full = Tytan_core.Heap.largest_free_block h in
        let bases = List.filter_map (fun size -> Tytan_core.Heap.alloc h ~size) sizes in
        List.iter (Tytan_core.Heap.free h) bases;
        Tytan_core.Heap.largest_free_block h = full);
    QCheck.Test.make ~name:"allocated + free = constant" ~count:100
      (QCheck.make heap_ops_gen) (fun sizes ->
        let h = Tytan_core.Heap.create ~base:0x1000 ~size:0x4000 in
        let total = Tytan_core.Heap.free_bytes h in
        List.iter (fun size -> ignore (Tytan_core.Heap.alloc h ~size)) sizes;
        Tytan_core.Heap.allocated_bytes h + Tytan_core.Heap.free_bytes h = total);
  ]

(* --- Task identity ------------------------------------------------------------ *)

let task_id_props =
  [
    QCheck.Test.make ~name:"words round trip" ~count:200 bytes_arb (fun b ->
        let id = Tytan_core.Task_id.of_image b in
        let lo, hi = Tytan_core.Task_id.to_words id in
        Tytan_core.Task_id.equal id (Tytan_core.Task_id.of_words ~lo ~hi));
    QCheck.Test.make ~name:"equal iff same bytes" ~count:200
      (QCheck.pair bytes_arb bytes_arb) (fun (a, b) ->
        let ia = Tytan_core.Task_id.of_image a in
        let ib = Tytan_core.Task_id.of_image b in
        Tytan_core.Task_id.equal ia ib
        = (Tytan_core.Task_id.to_bytes ia = Tytan_core.Task_id.to_bytes ib));
  ]

(* --- Scheduler invariants ------------------------------------------------------ *)

(* Random sequences of scheduler operations must preserve: a task appears
   at most once across all structures; pick always returns the
   highest-priority ready task. *)
type sched_op = Add of int | Remove of int | Delay of int | Tick | Wake

let sched_op_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> Add (i mod 6)) small_nat;
      map (fun i -> Remove (i mod 6)) small_nat;
      map (fun i -> Delay (i mod 6)) small_nat;
      return Tick;
      return Wake;
    ]

let pp_op = function
  | Add i -> Printf.sprintf "Add %d" i
  | Remove i -> Printf.sprintf "Remove %d" i
  | Delay i -> Printf.sprintf "Delay %d" i
  | Tick -> "Tick"
  | Wake -> "Wake"

let sched_ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 40) sched_op_gen)

let make_tcbs () =
  Array.init 6 (fun i ->
      Tytan_rtos.Tcb.make ~id:i ~name:(Printf.sprintf "t%d" i)
        ~priority:(i mod 4) ~secure:false ~region_base:0x1000
        ~region_size:0x400 ~code_base:0x1000 ~code_size:0x100 ~entry:0x1000
        ~stack_base:0x1200 ~stack_size:0x200 ~inbox_base:0)

let scheduler_props =
  [
    QCheck.Test.make ~name:"no task is ever in two structures" ~count:200
      sched_ops_arb (fun ops ->
        let open Tytan_rtos in
        let s = Scheduler.create () in
        let tcbs = make_tcbs () in
        List.iter
          (fun op ->
            match op with
            | Add i ->
                Scheduler.remove s tcbs.(i);
                Scheduler.add_ready s tcbs.(i)
            | Remove i -> Scheduler.remove s tcbs.(i)
            | Delay i ->
                Scheduler.remove s tcbs.(i);
                Scheduler.delay_until s tcbs.(i)
                  ~wake_tick:(Scheduler.tick_count s + 2)
            | Tick -> Scheduler.advance_tick s
            | Wake ->
                List.iter (Scheduler.add_ready s) (Scheduler.wake_due s))
          ops;
        let all = Scheduler.all_tasks s in
        let ids = List.map (fun t -> t.Tcb.id) all in
        let sorted = List.sort compare ids in
        let rec no_dup = function
          | a :: b :: _ when a = b -> false
          | _ :: rest -> no_dup rest
          | [] -> true
        in
        no_dup sorted);
    QCheck.Test.make ~name:"pick returns a highest-priority ready task"
      ~count:200 sched_ops_arb (fun ops ->
        let open Tytan_rtos in
        let s = Scheduler.create () in
        let tcbs = make_tcbs () in
        List.iter
          (fun op ->
            match op with
            | Add i ->
                Scheduler.remove s tcbs.(i);
                Scheduler.add_ready s tcbs.(i)
            | Remove i -> Scheduler.remove s tcbs.(i)
            | Delay i ->
                Scheduler.remove s tcbs.(i);
                Scheduler.delay_until s tcbs.(i)
                  ~wake_tick:(Scheduler.tick_count s + 2)
            | Tick -> Scheduler.advance_tick s
            | Wake ->
                List.iter (Scheduler.add_ready s) (Scheduler.wake_due s))
          ops;
        match Scheduler.pick s with
        | None -> Scheduler.ready_count s = 0
        | Some t ->
            List.for_all
              (fun other ->
                other.Tcb.state <> Tcb.Ready
                || other.Tcb.priority <= t.Tcb.priority)
              (Scheduler.all_tasks s));
  ]

(* --- Assembler / disassembler round trip ---------------------------------------- *)

let program_gen =
  QCheck.Gen.(list_size (int_range 1 30) instr_gen)

let asm_props =
  [
    QCheck.Test.make ~name:"assemble then disassemble is the identity"
      ~count:200
      (QCheck.make
         ~print:(fun is ->
           String.concat "; " (List.map (Format.asprintf "%a" Isa.pp) is))
         program_gen)
      (fun instrs ->
        let p = Assembler.create () in
        List.iter (Assembler.instr p) instrs;
        let prog = Assembler.assemble p in
        let decoded =
          List.filter_map (fun l -> l.Disasm.instr) (Disasm.of_bytes prog.image)
        in
        decoded = instrs);
  ]

(* --- Assembler/CPU round trip -------------------------------------------------- *)

let machine_props =
  [
    QCheck.Test.make ~name:"movi then stw stores the immediate" ~count:100
      (QCheck.make word_gen) (fun w ->
        let mem = Memory.create ~size:4096 in
        let clock = Cycles.create () in
        let engine = Exception_engine.create mem ~idt_base:0x100 in
        let cpu = Cpu.create mem clock engine in
        List.iteri
          (fun i instr ->
            Memory.blit_bytes mem (0x200 + (i * Isa.width)) (Isa.encode instr))
          [ Isa.Movi (0, w); Isa.Movi (1, 0x800); Isa.Stw (1, 0, 0); Isa.Halt ];
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        let rec go n = if n > 0 && Cpu.step cpu = Cpu.Running then go (n - 1) in
        go 10;
        Memory.read32 mem 0x800 = w);
    QCheck.Test.make ~name:"push/pop round-trips any word" ~count:100
      (QCheck.make word_gen) (fun w ->
        let mem = Memory.create ~size:4096 in
        let clock = Cycles.create () in
        let engine = Exception_engine.create mem ~idt_base:0x100 in
        let cpu = Cpu.create mem clock engine in
        List.iteri
          (fun i instr ->
            Memory.blit_bytes mem (0x200 + (i * Isa.width)) (Isa.encode instr))
          [ Isa.Movi (0, w); Isa.Push 0; Isa.Pop 2; Isa.Halt ];
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        let rec go n = if n > 0 && Cpu.step cpu = Cpu.Running then go (n - 1) in
        go 10;
        Regfile.get (Cpu.regs cpu) 2 = w);
  ]

(* --- Merkle ---------------------------------------------------------------- *)

let merkle_case_arb =
  let print (leaves, index) =
    Printf.sprintf "%d leaves, index %d" (List.length leaves) index
  in
  QCheck.make ~print
    QCheck.Gen.(
      list_size (int_range 1 40)
        (map Bytes.of_string (string_size (int_range 0 60)))
      >>= fun leaves ->
      int_bound (List.length leaves - 1) >|= fun index -> (leaves, index))

let flip_byte b pos =
  let c = Bytes.copy b in
  Bytes.set c pos (Char.chr (Char.code (Bytes.get c pos) lxor 0x40));
  c

let merkle_props =
  [
    QCheck.Test.make ~name:"any leaf's proof verifies against the root"
      ~count:200 merkle_case_arb (fun (leaves, index) ->
        let t = Crypto.Merkle.build (Array.of_list leaves) in
        let proof = Crypto.Merkle.proof t index in
        Crypto.Merkle.verify ~root:(Crypto.Merkle.root t)
          ~leaf:(List.nth leaves index) proof);
    QCheck.Test.make
      ~name:"flipping any byte of the leaf or any proof node fails" ~count:60
      merkle_case_arb (fun (leaves, index) ->
        let t = Crypto.Merkle.build (Array.of_list leaves) in
        let root = Crypto.Merkle.root t in
        let leaf = List.nth leaves index in
        let proof = Crypto.Merkle.proof t index in
        let leaf_ok = ref true in
        for pos = 0 to Bytes.length leaf - 1 do
          if Crypto.Merkle.verify ~root ~leaf:(flip_byte leaf pos) proof then
            leaf_ok := false
        done;
        let proof_ok = ref true in
        List.iteri
          (fun i (step : Crypto.Merkle.step) ->
            for pos = 0 to Bytes.length step.Crypto.Merkle.sibling - 1 do
              let mutated =
                List.mapi
                  (fun j (s : Crypto.Merkle.step) ->
                    if i = j then
                      { s with
                        Crypto.Merkle.sibling =
                          flip_byte s.Crypto.Merkle.sibling pos
                      }
                    else s)
                  proof
              in
              if Crypto.Merkle.verify ~root ~leaf mutated then proof_ok := false
            done)
          proof;
        !leaf_ok && !proof_ok);
    QCheck.Test.make ~name:"a one-leaf tree degenerates to the leaf hash"
      ~count:200 small_bytes_arb (fun leaf ->
        let t = Crypto.Merkle.build [| leaf |] in
        Crypto.Merkle.root t = Crypto.Merkle.leaf_hash leaf
        && Crypto.Merkle.proof t 0 = []
        && Crypto.Merkle.verify ~root:(Crypto.Merkle.root t) ~leaf []);
  ]

let () =
  Alcotest.run "properties"
    [
      ("word", List.map to_alcotest word_props);
      ("crypto", List.map to_alcotest crypto_props);
      ("merkle", List.map to_alcotest merkle_props);
      ("isa", List.map to_alcotest isa_props);
      ("telf", List.map to_alcotest telf_props);
      ("flow", List.map to_alcotest flow_props);
      ("eampu", List.map to_alcotest eampu_props);
      ("heap", List.map to_alcotest heap_props);
      ("task-id", List.map to_alcotest task_id_props);
      ("scheduler", List.map to_alcotest scheduler_props);
      ("assembler", List.map to_alcotest asm_props);
      ("machine", List.map to_alcotest machine_props);
    ]
