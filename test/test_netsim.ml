(* Networked attestation: the lossy link, the wire protocol, the
   verifier's retry machine and the whole co-simulation. *)

open Tytan_core
open Tytan_netsim
module Tasks = Tytan_tasks.Task_lib
module Cpu = Tytan_machine.Cpu
module Word = Tytan_machine.Word
module Memory = Tytan_machine.Memory
module Monitor = Tytan_cfa.Monitor
module Replay = Tytan_cfa.Replay

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- Link ------------------------------------------------------------------ *)

let link_tests =
  [
    Alcotest.test_case "lossless delivery after the delay" `Quick (fun () ->
        let link = Link.create ~delay:2 () in
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "hello");
        check_int "not yet" 0 (List.length (Link.deliver link ~to_:Link.Device ~at:1));
        let due = Link.deliver link ~to_:Link.Device ~at:2 in
        check_int "delivered" 1 (List.length due);
        check_bool "payload" true (List.hd due = Bytes.of_string "hello"));
    Alcotest.test_case "direction separation" `Quick (fun () ->
        let link = Link.create ~delay:0 () in
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "to-device");
        check_int "nothing for remote" 0
          (List.length (Link.deliver link ~to_:Link.Remote ~at:0));
        check_int "one for device" 1
          (List.length (Link.deliver link ~to_:Link.Device ~at:0)));
    Alcotest.test_case "delivery consumes frames" `Quick (fun () ->
        let link = Link.create ~delay:0 () in
        Link.send link ~from:Link.Device ~at:0 (Bytes.of_string "x");
        ignore (Link.deliver link ~to_:Link.Remote ~at:0);
        check_int "gone" 0 (List.length (Link.deliver link ~to_:Link.Remote ~at:9)));
    Alcotest.test_case "loss drops roughly the configured share" `Quick
      (fun () ->
        let link = Link.create ~seed:7 ~loss_percent:50 ~delay:0 () in
        for i = 0 to 199 do
          Link.send link ~from:Link.Remote ~at:i (Bytes.of_string "f")
        done;
        let dropped = Link.dropped_count link in
        check_bool "lossy but not degenerate" true (dropped > 50 && dropped < 150));
    Alcotest.test_case "zero loss drops nothing" `Quick (fun () ->
        let link = Link.create ~loss_percent:0 ~delay:0 () in
        for i = 0 to 49 do
          Link.send link ~from:Link.Remote ~at:i (Bytes.of_string "f")
        done;
        check_int "none dropped" 0 (Link.dropped_count link));
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let run seed =
          let link = Link.create ~seed ~loss_percent:30 ~delay:0 () in
          for i = 0 to 99 do
            Link.send link ~from:Link.Remote ~at:i (Bytes.of_string "f")
          done;
          Link.dropped_count link
        in
        check_int "same seed same drops" (run 42) (run 42));
  ]

(* --- Protocol ---------------------------------------------------------------- *)

let protocol_tests =
  [
    Alcotest.test_case "challenge round trip" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "task") in
        let m = Protocol.Challenge { seq = 7; id; nonce = Bytes.of_string "n123" } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "response round trip" `Quick (fun () ->
        let report =
          {
            Attestation.id = Task_id.of_image (Bytes.of_string "t");
            nonce = Bytes.of_string "nonce-x";
            mac = Bytes.make 20 'm';
          }
        in
        let m = Protocol.Response { seq = 3; report } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "refusal round trip" `Quick (fun () ->
        let m = Protocol.Refusal { seq = 11 } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "task") in
        let b = Protocol.encode (Protocol.Challenge { seq = 1; id; nonce = Bytes.of_string "abc" }) in
        check_bool "error" true
          (Result.is_error (Protocol.decode (Bytes.sub b 0 (Bytes.length b - 1)))));
    Alcotest.test_case "unknown tag rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Protocol.decode (Bytes.of_string "Zxxxx"))));
    Alcotest.test_case "unknown tags are distinguishable from garbage" `Quick
      (fun () ->
        (match Protocol.decode (Bytes.of_string "Zxxxx") with
        | Error e -> check_bool "flagged as unknown tag" true (Protocol.is_unknown_tag e)
        | Ok _ -> Alcotest.fail "decoded an unknown tag");
        match Protocol.decode (Bytes.of_string "C") with
        | Error e ->
            check_bool "truncation is not an unknown tag" false
              (Protocol.is_unknown_tag e)
        | Ok _ -> Alcotest.fail "decoded a truncated challenge");
    Alcotest.test_case "cfa challenge round trip" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "cfa-task") in
        let m = Protocol.CfaChallenge { seq = 5; id; nonce = Bytes.of_string "n5" } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "cfa response round trip" `Quick (fun () ->
        let report =
          {
            Attestation.id = Task_id.of_image (Bytes.of_string "t");
            nonce = Bytes.of_string "nonce-cfa";
            cf_digest = Bytes.make 20 'd';
            base_digest = Bytes.make 20 'b';
            edge_count = 1234;
            edges =
              [|
                { Attestation.src = 8; dst = 16; kind = Cpu.Direct_jump };
                { Attestation.src = 24; dst = 2; kind = Cpu.Swi_entry };
              |];
            mac = Bytes.make 20 'm';
          }
        in
        let m = Protocol.CfaResponse { seq = 9; report } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "cfa response at the edge-count wire limit" `Quick
      (fun () ->
        let edge i =
          { Attestation.src = i * 8; dst = (i * 8) + 8; kind = Cpu.Direct_call }
        in
        let report =
          {
            Attestation.id = Task_id.of_image (Bytes.of_string "big");
            nonce = Bytes.of_string "n";
            cf_digest = Bytes.make 20 'x';
            base_digest = Bytes.make 20 'y';
            edge_count = Protocol.max_edges;
            edges = Array.init Protocol.max_edges edge;
            mac = Bytes.make 20 'm';
          }
        in
        let m = Protocol.CfaResponse { seq = 1; report } in
        check_bool "round trip at 65535 edges" true
          (Protocol.decode (Protocol.encode m) = Ok m);
        let over =
          Protocol.CfaResponse
            {
              seq = 2;
              report =
                { report with Attestation.edges = Array.init (Protocol.max_edges + 1) edge };
            }
        in
        check_bool "one more refuses to encode" true
          (match Protocol.encode over with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

(* --- Protocol properties ----------------------------------------------------- *)

let edge_gen =
  QCheck.Gen.(
    map3
      (fun s d k ->
        {
          Attestation.src = s land Word.max_value;
          dst = d land Word.max_value;
          kind = Option.get (Cpu.branch_kind_of_code k);
        })
      (int_bound max_int) (int_bound max_int) (int_bound 7))

let report_gen =
  QCheck.Gen.(
    map3
      (fun img nonce (edges, extra, tail) ->
        let sub pos = Bytes.of_string (String.sub tail pos 20) in
        {
          Attestation.id = Task_id.of_image (Bytes.of_string img);
          nonce = Bytes.of_string nonce;
          cf_digest = sub 0;
          base_digest = sub 20;
          edge_count = Array.length edges + extra;
          edges;
          mac = sub 40;
        })
      (string_size (int_range 1 12))
      (string_size (int_range 0 40))
      (triple
         (array_size (int_range 0 64) edge_gen)
         (int_bound 100_000)
         (string_size (return 60))))

let report_arb = QCheck.make report_gen

let protocol_property_tests =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  [
    to_alcotest
      (QCheck.Test.make ~name:"cfa report wire round trip" ~count:200
         (QCheck.pair (QCheck.make QCheck.Gen.(int_bound 0xFFFF)) report_arb)
         (fun (seq, report) ->
           let m = Protocol.CfaResponse { seq; report } in
           Protocol.decode (Protocol.encode m) = Ok m));
    to_alcotest
      (QCheck.Test.make ~name:"mutated cfa frames never crash decode or verifier"
         ~count:300
         (QCheck.triple report_arb
            (QCheck.list_of_size
               QCheck.Gen.(int_range 0 8)
               (QCheck.pair QCheck.small_nat (QCheck.make QCheck.Gen.(int_bound 255))))
            QCheck.small_nat)
         (fun (report, flips, cut) ->
           let frame = Protocol.encode (Protocol.CfaResponse { seq = 1; report }) in
           List.iter
             (fun (pos, v) ->
               Bytes.set frame (pos mod Bytes.length frame) (Char.chr v))
             flips;
           let frame =
             if cut mod 3 = 0 then Bytes.sub frame 0 (cut mod Bytes.length frame)
             else frame
           in
           ignore (Protocol.decode frame : (Protocol.message, string) result);
           let v =
             Verifier.create ~ka:(Bytes.make 20 'k')
               ~expected:report.Attestation.id
               ~cfa:(fun _ -> Ok ())
               ()
           in
           ignore (Verifier.poll v ~at:0);
           Verifier.on_frame v frame;
           true));
  ]

(* --- End-to-end co-simulation ------------------------------------------------ *)

let device_with_task () =
  let p = Platform.create () in
  let telf = Tasks.counter () in
  let tcb = Result.get_ok (Platform.load_blocking p ~name:"fw" telf) in
  let rtm = Option.get (Platform.rtm p) in
  let id = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id in
  let ka =
    Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
  in
  (p, tcb, id, ka)

let cosim_tests =
  [
    Alcotest.test_case "attestation over a perfect link" `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let v = Verifier.create ~ka ~expected:id () in
        Cosim.attach_verifier cosim v;
        let slices = Cosim.run_until_settled cosim ~max_slices:100 in
        check_bool "attested" true (Verifier.outcome v = Verifier.Attested);
        check_int "single attempt" 1 (Verifier.attempts v);
        check_bool "settled quickly" true (slices <= 5));
    Alcotest.test_case "attestation survives 60% frame loss via retries"
      `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create ~seed:3 ~loss_percent:60 () in
        let cosim = Cosim.create p ~link () in
        let v = Verifier.create ~ka ~expected:id ~max_attempts:30 () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:500);
        check_bool "eventually attested" true (Verifier.outcome v = Verifier.Attested);
        check_bool "needed retries" true (Verifier.attempts v > 1));
    Alcotest.test_case "ghost identity is refused" `Quick (fun () ->
        let p, _, _, ka = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let ghost = Task_id.of_image (Bytes.of_string "not-there") in
        let v = Verifier.create ~ka ~expected:ghost () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:100);
        check_bool "refused" true (Verifier.outcome v = Verifier.Refused));
    Alcotest.test_case "total loss gives up after max attempts" `Quick
      (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create ~loss_percent:100 () in
        let cosim = Cosim.create p ~link () in
        let v = Verifier.create ~ka ~expected:id ~max_attempts:4 ~timeout_slices:2 () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:200);
        check_bool "gave up" true (Verifier.outcome v = Verifier.Gave_up);
        check_int "all attempts used" 4 (Verifier.attempts v));
    Alcotest.test_case "wrong verifier key rejects genuine reports" `Quick
      (fun () ->
        let p, _, id, _ = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let bad_ka = Attestation.derive_ka ~platform_key:(Bytes.make 20 'Z') in
        let v = Verifier.create ~ka:bad_ka ~expected:id ~max_attempts:3 ~timeout_slices:2 () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:100);
        check_bool "never attested" true (Verifier.outcome v = Verifier.Gave_up);
        check_bool "reports were rejected" true (Verifier.rejected_frames v >= 1));
    Alcotest.test_case "device keeps its deadlines while attesting" `Quick
      (fun () ->
        let p, tcb, id, ka = device_with_task () in
        let rtm = Option.get (Platform.rtm p) in
        let base = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.base in
        let count () =
          Tytan_machine.Cpu.with_firmware (Platform.cpu p)
            ~eip:(Rtm.code_eip rtm) (fun () ->
              Tytan_machine.Cpu.load32 (Platform.cpu p)
                (base + Tasks.data_cell_offset (Tasks.counter ())))
        in
        let link = Link.create ~loss_percent:20 ~seed:3 () in
        let cosim = Cosim.create p ~link () in
        (* Several concurrent sessions hammer the device. *)
        for _ = 1 to 5 do
          Cosim.attach_verifier cosim (Verifier.create ~ka ~expected:id ())
        done;
        let before = count () in
        Cosim.run cosim ~slices:30;
        check_bool "task held ~1 activation per tick" true
          (count () - before >= 28));
    Alcotest.test_case "concurrent sessions all settle" `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create ~loss_percent:30 ~seed:17 () in
        let cosim = Cosim.create p ~link () in
        let sessions =
          List.init 4 (fun _ -> Verifier.create ~ka ~expected:id ~max_attempts:20 ())
        in
        List.iter (Cosim.attach_verifier cosim) sessions;
        ignore (Cosim.run_until_settled cosim ~max_slices:1000);
        List.iter
          (fun v ->
            check_bool "attested" true (Verifier.outcome v = Verifier.Attested))
          sessions;
        check_bool "device served many challenges" true
          (Cosim.challenges_served cosim >= 4));
  ]

(* --- Control-flow attestation across the network ------------------------------ *)

let device_with_watched_dispatcher () =
  let p = Platform.create () in
  let d = Tasks.gadget_dispatcher () in
  let tcb = Result.get_ok (Platform.load_blocking p ~name:"disp" d.Tasks.telf) in
  let rtm = Option.get (Platform.rtm p) in
  let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
  let mon = Monitor.create p in
  (match Monitor.watch mon ~tcb () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let ka =
    Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
  in
  let oracle = Result.get_ok (Replay.oracle_of_telf d.Tasks.telf) in
  (p, d, entry, mon, ka, oracle)

(* One full audit of a device whose dispatcher is gadget-hijacked after an
   honest warm-up: a static session and a CFA session run concurrently
   over the same lossy link. *)
let audit_compromised_device () =
  let p, d, entry, mon, ka, oracle = device_with_watched_dispatcher () in
  Platform.run_ticks p 6;
  let base = entry.Rtm.base in
  Memory.write32 (Platform.memory p)
    (base + d.Tasks.handler_cell)
    (base + d.Tasks.gadget);
  Platform.run_ticks p 4;
  let link = Link.create ~seed:9 ~loss_percent:30 () in
  let cosim = Cosim.create p ~link () in
  Cosim.set_cfa_responder cosim (Monitor.responder mon);
  let vs = Verifier.create ~ka ~expected:entry.Rtm.id ~max_attempts:30 () in
  let vc =
    Verifier.create ~ka ~expected:entry.Rtm.id ~max_attempts:30
      ~cfa:(Replay.checker oracle) ()
  in
  Cosim.attach_verifier cosim vs;
  Cosim.attach_verifier cosim vc;
  ignore (Cosim.run_until_settled cosim ~max_slices:1000);
  (Verifier.outcome vs, Verifier.outcome vc, Verifier.cfa_failure vc)

let cfa_cosim_tests =
  [
    Alcotest.test_case "verifier drops unknown-tag frames" `Quick (fun () ->
        let v =
          Verifier.create ~ka:(Bytes.make 20 'k')
            ~expected:(Task_id.of_image (Bytes.of_string "x"))
            ()
        in
        ignore (Verifier.poll v ~at:0);
        Verifier.on_frame v (Bytes.of_string "Qframe-from-a-newer-revision");
        check_int "dropped" 1 (Verifier.ignored_frames v);
        check_int "not counted hostile" 0 (Verifier.rejected_frames v);
        check_bool "still pending" true (Verifier.outcome v = Verifier.Pending));
    Alcotest.test_case "device agent drops unknown tags, attestation unharmed"
      `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        Link.send link ~from:Link.Remote ~at:0
          (Bytes.of_string "Qframe-from-the-future");
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "C");
        let v = Verifier.create ~ka ~expected:id () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:50);
        check_int "unknown tag dropped" 1 (Cosim.unknown_tag_frames cosim);
        check_int "truncated frame malformed" 1 (Cosim.malformed_frames cosim);
        check_bool "attestation unaffected" true
          (Verifier.outcome v = Verifier.Attested));
    Alcotest.test_case "honest device passes CFA over a lossy link" `Quick
      (fun () ->
        let p, _, entry, mon, ka, oracle = device_with_watched_dispatcher () in
        Platform.run_ticks p 6;
        let link = Link.create ~seed:3 ~loss_percent:50 () in
        let cosim = Cosim.create p ~link () in
        Cosim.set_cfa_responder cosim (Monitor.responder mon);
        let v =
          Verifier.create ~ka ~expected:entry.Rtm.id ~max_attempts:30
            ~cfa:(Replay.checker oracle) ()
        in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:1000);
        check_bool "attested" true (Verifier.outcome v = Verifier.Attested));
    Alcotest.test_case "without a CFA responder the device refuses" `Quick
      (fun () ->
        let p, _, entry, _, ka, oracle = device_with_watched_dispatcher () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let v =
          Verifier.create ~ka ~expected:entry.Rtm.id
            ~cfa:(Replay.checker oracle) ()
        in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:100);
        check_bool "refused" true (Verifier.outcome v = Verifier.Refused));
    Alcotest.test_case
      "gadget-hijacked device: static attests, CFA rejects, deterministically"
      `Quick (fun () ->
        let s1, c1, why1 = audit_compromised_device () in
        check_bool "static attestation still passes" true (s1 = Verifier.Attested);
        check_bool "CFA rejects the same device" true (c1 = Verifier.Cfa_rejected);
        check_bool "the replay names the gadget" true
          (contains ~sub:"gadget" (Option.value ~default:"" why1));
        let s2, c2, why2 = audit_compromised_device () in
        check_bool "identical verdicts on a re-run" true
          ((s1, c1, why1) = (s2, c2, why2)));
  ]

(* --- Per-session verifier scoping ------------------------------------------ *)

(* Regression tests for the global-counter bug: verifier retry/refusal
   state used to be drawn from one process-wide counter, so sessions
   shared a sequence space and one flaky prover's refusals could land on
   (and settle) an honest prover's session. *)
let session_tests =
  let fw = Task_id.of_image (Bytes.of_string "session-test-firmware") in
  let ka = Attestation.derive_ka ~platform_key:(Bytes.make 20 'K') in
  [
    Alcotest.test_case
      "a flaky prover's refusals cannot push an honest session to Refused"
      `Quick (fun () ->
        let honest = Verifier.create ~ka ~expected:fw ~session:"dev-a/e0" () in
        let flaky = Verifier.create ~ka ~expected:fw ~session:"dev-b/e0" () in
        ignore (Verifier.poll honest ~at:0);
        ignore (Verifier.poll flaky ~at:0);
        (* A shared medium broadcasts the flaky device's refusal to every
           listening session — exactly what Cosim does with remote-bound
           frames. *)
        let refusal =
          Protocol.encode (Protocol.Refusal { seq = Verifier.seq flaky })
        in
        Verifier.on_frame honest refusal;
        Verifier.on_frame flaky refusal;
        check_bool "flaky session settled Refused" true
          (Verifier.outcome flaky = Verifier.Refused);
        check_bool "honest session still pending" true
          (Verifier.outcome honest = Verifier.Pending);
        check_int "honest session counted no refusal" 0
          (Verifier.refusals honest);
        (* And the honest device can still attest. *)
        let nonce = Verifier.nonce honest in
        let report =
          {
            Attestation.id = fw;
            nonce;
            mac = Attestation.expected_mac ~ka ~id:fw ~nonce;
          }
        in
        Verifier.on_frame honest
          (Protocol.encode
             (Protocol.Response { seq = Verifier.seq honest; report }));
        check_bool "honest session attested" true
          (Verifier.outcome honest = Verifier.Attested));
    Alcotest.test_case "named sessions occupy disjoint sequence spaces" `Quick
      (fun () ->
        let seqs =
          List.map
            (fun d ->
              Verifier.seq
                (Verifier.create ~ka ~expected:fw
                   ~session:(Printf.sprintf "dev-%03d/e0" d)
                   ()))
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        check_int "all distinct" (List.length seqs)
          (List.length (List.sort_uniq compare seqs)));
    Alcotest.test_case
      "session identity is a pure function of the label, not creation order"
      `Quick (fun () ->
        let v1 = Verifier.create ~ka ~expected:fw ~session:"dev-a/e3" () in
        (* Interleave unrelated sessions — with the global counter these
           would have shifted the next nonce/seq. *)
        for i = 0 to 9 do
          ignore (Verifier.create ~ka ~expected:fw ());
          ignore
            (Verifier.create ~ka ~expected:fw
               ~session:(Printf.sprintf "other-%d" i)
               ())
        done;
        let v2 = Verifier.create ~ka ~expected:fw ~session:"dev-a/e3" () in
        check_bool "same nonce" true (Verifier.nonce v1 = Verifier.nonce v2);
        check_int "same seq" (Verifier.seq v1) (Verifier.seq v2);
        let other = Verifier.create ~ka ~expected:fw ~session:"dev-a/e4" () in
        check_bool "a different epoch label gets a different nonce" true
          (Verifier.nonce v1 <> Verifier.nonce other));
  ]

let () =
  Alcotest.run "netsim"
    [
      ("link", link_tests);
      ("protocol", protocol_tests);
      ("protocol-properties", protocol_property_tests);
      ("cosim", cosim_tests);
      ("cfa-cosim", cfa_cosim_tests);
      ("verifier-session", session_tests);
    ]
