(* The fleet flight recorder: chain integrity (hash chain + Merkle
   checkpoints + seeded tamper detection), causal trails, SLO windows,
   Perfetto flow derivation, and the recorder's integration with the
   gateway, rollout and swarm engines — including the zero-cost
   contract (an observed run is bit-identical to an unobserved one). *)

module Obs = Tytan_obs.Obs
module Gateway = Tytan_serve.Gateway
module Rollout = Tytan_ota.Rollout
module Swarm = Tytan_provision.Swarm
module Registry = Tytan_provision.Registry
module Tasks = Tytan_tasks.Task_lib

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- helpers --------------------------------------------------------------- *)

let sample_log ?(n = 10) () =
  let log = Obs.Log.create ~checkpoint_every:4 () in
  ignore (Obs.Log.mint log "epoch-0");
  for i = 0 to n - 1 do
    let corr = Printf.sprintf "dev-%02d/s" i in
    ignore (Obs.Log.mint log ~parent:"epoch-0" corr);
    Obs.Log.record log ~corr ~at:i
      (Obs.Event.Session_admitted
         { serial = Printf.sprintf "dev-%02d" i; kind = "static" });
    Obs.Log.record log ~corr ~at:(i + 1)
      (Obs.Event.Session_settled
         {
           serial = Printf.sprintf "dev-%02d" i;
           verdict = "attested";
           latency = 1;
         })
  done;
  log

let run_gateway ?obs () =
  Gateway.run ~devices:16 ~slices:96 ~arrival_permille:3000 ~seed:7
    ~faults:true ~loss_percent:10 ?obs ()

let run_rollout ?obs () =
  let master = Bytes.of_string "obs-test-master" in
  let registry = Registry.create ~master in
  Rollout.run ~devices:12 ~canary:3 ~seed:5 ~faults:false ~loss_percent:10
    ?obs
    ~platform_key_of:(fun ~serial -> Registry.platform_key registry ~serial)
    ~incumbent:(Tasks.counter ())
    [
      { Rollout.label = "clean-1"; version = 1; image = Tasks.yielder ~count:3 () };
      { Rollout.label = "stale"; version = 1; image = Tasks.yielder ~count:4 () };
    ]

let run_swarm ?obs () =
  Swarm.run ~mode:Swarm.Batched ~devices:12 ~epochs:2 ~seed:3 ~faults:true
    ~loss_percent:10 ?obs ()

(* --- chain ----------------------------------------------------------------- *)

let test_chain_roundtrip () =
  let log = sample_log () in
  let trail = Obs.Log.export log in
  match Obs.Log.verify_chain ~expected_head:(Obs.Log.head_hex log) trail with
  | Ok s ->
      Alcotest.(check int) "records" (Obs.Log.length log) s.Obs.Log.total;
      Alcotest.(check string) "head" (Obs.Log.head_hex log) s.Obs.Log.head;
      Alcotest.(check bool) "checkpoints sealed" true (s.Obs.Log.checkpoints > 0)
  | Error e -> Alcotest.failf "clean trail rejected: %s" e

let test_chain_detects_tampers () =
  let log = sample_log () in
  let trail = Obs.Log.export log in
  List.iter
    (fun (name, kind) ->
      match Obs.Log.verify_chain (Obs.Log.tamper kind trail) with
      | Ok _ -> Alcotest.failf "%s not detected" name
      | Error _ -> ())
    [
      ("truncate", Obs.Log.Truncate);
      ("splice", Obs.Log.Splice);
      ("bitflip-17", Obs.Log.Bit_flip 17);
    ]

let test_expected_head_pin () =
  let log = sample_log () in
  let trail = Obs.Log.export log in
  (match Obs.Log.verify_chain ~expected_head:(String.make 64 '0') trail with
  | Ok _ -> Alcotest.fail "wrong pin accepted"
  | Error _ -> ());
  match Obs.Log.verify_chain trail with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unpinned verify failed: %s" e

let test_garbage_rejected () =
  List.iter
    (fun b ->
      match Obs.Log.verify_chain b with
      | Ok _ -> Alcotest.fail "garbage verified"
      | Error _ -> ())
    [
      Bytes.empty;
      Bytes.of_string "TYOB1";
      Bytes.of_string "not a trail at all";
      Bytes.make 64 '\xff';
    ]

let test_mint_idempotent () =
  let log = Obs.Log.create () in
  ignore (Obs.Log.mint log ~parent:"a" "x");
  ignore (Obs.Log.mint log ~parent:"b" "x");
  Alcotest.(check (option string)) "first parent wins" (Some "a")
    (Obs.Log.parent_of log "x")

(* --- qcheck properties ----------------------------------------------------- *)

let log_sizes = QCheck.Gen.oneofl [ 0; 1; 3; 4; 5; 8; 13 ]

let chain_props =
  [
    QCheck.Test.make ~name:"verify_chain never raises on mutated bytes"
      ~count:300
      QCheck.(
        pair (make log_sizes)
          (pair small_nat (make QCheck.Gen.(int_bound 255))))
      (fun (n, (pos, byte)) ->
        let trail = Obs.Log.export (sample_log ~n ()) in
        let mutated = Bytes.copy trail in
        if Bytes.length mutated > 0 then
          Bytes.set mutated
            (pos mod Bytes.length mutated)
            (Char.chr byte);
        (* Any result is fine; raising is the only failure. *)
        match Obs.Log.verify_chain mutated with Ok _ | Error _ -> true);
    QCheck.Test.make ~name:"single-record truncation always detected" ~count:50
      QCheck.(make log_sizes)
      (fun n ->
        QCheck.assume (n > 0);
        let trail = Obs.Log.export (sample_log ~n ()) in
        match Obs.Log.verify_chain (Obs.Log.tamper Obs.Log.Truncate trail) with
        | Ok _ -> false
        | Error _ -> true);
    QCheck.Test.make ~name:"adjacent-record splice always detected" ~count:50
      QCheck.(make log_sizes)
      (fun n ->
        QCheck.assume (n > 1);
        let trail = Obs.Log.export (sample_log ~n ()) in
        match Obs.Log.verify_chain (Obs.Log.tamper Obs.Log.Splice trail) with
        | Ok _ -> false
        | Error _ -> true);
    QCheck.Test.make ~name:"record-region bit flip always detected" ~count:100
      QCheck.(pair (make log_sizes) small_nat)
      (fun (n, bit) ->
        QCheck.assume (n > 0);
        let trail = Obs.Log.export (sample_log ~n ()) in
        match
          Obs.Log.verify_chain (Obs.Log.tamper (Obs.Log.Bit_flip bit) trail)
        with
        | Ok _ -> false
        | Error _ -> true);
  ]

(* --- trails ---------------------------------------------------------------- *)

let test_trail_members () =
  let log = sample_log ~n:3 () in
  Alcotest.(check (list string))
    "epoch family"
    [ "epoch-0"; "dev-00/s"; "dev-01/s"; "dev-02/s" ]
    (Obs.Trail.members log ~corr:"epoch-0");
  Alcotest.(check (list string))
    "session family is ancestors + self"
    [ "epoch-0"; "dev-01/s" ]
    (Obs.Trail.members log ~corr:"dev-01/s")

let test_trail_trace_in_log_order () =
  let log = sample_log ~n:4 () in
  let recs = Obs.Trail.trace log ~corr:"epoch-0" in
  Alcotest.(check int) "all records traced" (Obs.Log.length log)
    (List.length recs);
  let seqs = List.map (fun r -> r.Obs.seq) recs in
  Alcotest.(check (list int)) "log order" (List.sort compare seqs) seqs

(* --- SLO ------------------------------------------------------------------- *)

let test_slo_breach () =
  let log = Obs.Log.create () in
  (* 4 arrivals in window 0, 3 shed: 750 permille > the 500 default. *)
  Obs.Log.record log ~corr:"e" ~at:0
    (Obs.Event.Session_admitted { serial = "dev-0"; kind = "static" });
  for i = 1 to 3 do
    Obs.Log.record log ~corr:"e" ~at:i
      (Obs.Event.Session_shed
         { serial = Printf.sprintf "dev-%d" i; reason = "busy" })
  done;
  let before = Obs.Log.length log in
  let indicators = Obs.Slo.scan log in
  let breached = List.filter (fun i -> i.Obs.Slo.breached) indicators in
  Alcotest.(check bool) "shed-rate breached" true
    (List.exists (fun i -> i.Obs.Slo.name = "shed-rate") breached);
  Alcotest.(check int) "one breach record per breach"
    (before + List.length breached)
    (Obs.Log.length log)

let test_slo_quiet_run_clean () =
  let log = sample_log ~n:5 () in
  let indicators = Obs.Slo.evaluate log in
  Alcotest.(check bool) "no breach on a healthy log" false
    (List.exists (fun i -> i.Obs.Slo.breached) indicators)

(* --- Perfetto flows -------------------------------------------------------- *)

let test_flows_follow_parent_edges () =
  let log = sample_log ~n:3 () in
  (* epoch-0 itself never records, so edges only exist where both ends
     have events — none here. *)
  Alcotest.(check int) "no flow without parent events" 0
    (List.length (Obs.flows_of_log log));
  Obs.Log.record log ~corr:"epoch-0" ~at:0 (Obs.Event.Epoch_opened { epoch = 0 });
  let flows = Obs.flows_of_log log in
  Alcotest.(check int) "one arrow per child" 3 (List.length flows);
  List.iter
    (fun (f : Tytan_telemetry.Export.flow) ->
      Alcotest.(check bool) "arrow points forward in time" true
        (f.Tytan_telemetry.Export.src_ts <= f.Tytan_telemetry.Export.dst_ts))
    flows;
  Alcotest.(check int) "one mark per record" (Obs.Log.length log)
    (List.length (Obs.marks_of_log log))

(* --- engine integration ----------------------------------------------------- *)

let test_gateway_observation_zero_cost () =
  let log = Obs.Log.create () in
  let observed = run_gateway ~obs:log () in
  let unobserved = run_gateway () in
  Alcotest.(check bool) "reports bit-identical" true
    (Gateway.equal observed unobserved);
  Alcotest.(check bool) "events recorded" true (Obs.Log.length log > 0)

let test_gateway_events_match_report () =
  let log = Obs.Log.create () in
  let report = run_gateway ~obs:log () in
  let count p = List.length (List.filter p (Obs.Log.records log)) in
  let admitted =
    count (fun r ->
        match r.Obs.event with Obs.Event.Session_admitted _ -> true | _ -> false)
  in
  let settled =
    count (fun r ->
        match r.Obs.event with Obs.Event.Session_settled _ -> true | _ -> false)
  in
  let shed =
    count (fun r ->
        match r.Obs.event with Obs.Event.Session_shed _ -> true | _ -> false)
  in
  Alcotest.(check int) "admitted" report.Gateway.admitted admitted;
  Alcotest.(check int) "settled" (Gateway.settled report) settled;
  Alcotest.(check int) "shed" (Gateway.shed report) shed;
  (* Every session id parents back to a serve epoch. *)
  List.iter
    (fun r ->
      match r.Obs.event with
      | Obs.Event.Session_admitted _ -> (
          match Obs.Log.parent_of log r.Obs.corr with
          | Some p ->
              Alcotest.(check bool) "parented to an epoch" true
                (String.length p >= 12 && String.sub p 0 12 = "serve/epoch-")
          | None -> Alcotest.failf "session %s has no parent" r.Obs.corr)
      | _ -> ())
    (Obs.Log.records log)

let test_rollout_observation_zero_cost () =
  let log = Obs.Log.create () in
  let observed = run_rollout ~obs:log () in
  let unobserved = run_rollout () in
  Alcotest.(check bool) "reports bit-identical" true
    (Rollout.equal observed unobserved);
  let count p = List.length (List.filter p (Obs.Log.records log)) in
  let applied =
    count (fun r ->
        match r.Obs.event with Obs.Event.Swap_applied _ -> true | _ -> false)
  in
  let report_applied =
    List.fold_left (fun n w -> n + w.Rollout.applied) 0 observed.Rollout.waves
  in
  Alcotest.(check int) "swap-applied events match report" report_applied
    applied;
  let quarantines =
    count (fun r ->
        match r.Obs.event with Obs.Event.Quarantined _ -> true | _ -> false)
  in
  Alcotest.(check int) "quarantine events match report"
    (List.length observed.Rollout.quarantined)
    quarantines

let test_swarm_observation_zero_cost () =
  let log = Obs.Log.create () in
  let observed = run_swarm ~obs:log () in
  let unobserved = run_swarm () in
  Alcotest.(check bool) "reports bit-identical" true
    (Swarm.equal observed unobserved);
  let count p = List.length (List.filter p (Obs.Log.records log)) in
  Alcotest.(check int) "one verdict per device per epoch"
    (observed.Swarm.devices * observed.Swarm.epochs)
    (count (fun r ->
         match r.Obs.event with
         | Obs.Event.Verdict_settled _ -> true
         | _ -> false));
  Alcotest.(check bool) "merkle epochs sealed" true
    (count (fun r ->
         match r.Obs.event with Obs.Event.Epoch_sealed _ -> true | _ -> false)
    > 0)

let test_shared_log_deterministic () =
  let run () =
    let log = Obs.Log.create () in
    ignore (run_gateway ~obs:log ());
    ignore (run_rollout ~obs:log ());
    ignore (run_swarm ~obs:log ());
    ignore (Obs.Slo.scan log);
    (Obs.Log.export log, Obs.to_json log)
  in
  let t1, j1 = run () in
  let t2, j2 = run () in
  Alcotest.(check bool) "exported trails byte-identical" true
    (Bytes.equal t1 t2);
  Alcotest.(check string) "audit json byte-identical" j1 j2

let test_rollout_telemetry_snapshot () =
  let r = run_rollout () in
  let get k = List.assoc_opt ("ota." ^ k) r.Rollout.telemetry in
  let applied =
    List.fold_left (fun n w -> n + w.Rollout.applied) 0 r.Rollout.waves
  in
  Alcotest.(check (option int)) "applied tally" (Some applied) (get "applied");
  Alcotest.(check (option int)) "gate outcomes" (Some 1) (get "waves_promoted");
  Alcotest.(check (option int)) "abort tally" (Some 1) (get "waves_aborted")

(* --- run ------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "chain",
        [
          Alcotest.test_case "export/verify round trip" `Quick
            test_chain_roundtrip;
          Alcotest.test_case "tampers detected" `Quick
            test_chain_detects_tampers;
          Alcotest.test_case "expected-head pin" `Quick test_expected_head_pin;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
          Alcotest.test_case "mint is idempotent" `Quick test_mint_idempotent;
        ] );
      ("chain-properties", List.map to_alcotest chain_props);
      ( "trail",
        [
          Alcotest.test_case "members" `Quick test_trail_members;
          Alcotest.test_case "trace in log order" `Quick
            test_trail_trace_in_log_order;
        ] );
      ( "slo",
        [
          Alcotest.test_case "shed-rate breach recorded" `Quick
            test_slo_breach;
          Alcotest.test_case "healthy log stays clean" `Quick
            test_slo_quiet_run_clean;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "flow arrows per causal edge" `Quick
            test_flows_follow_parent_edges;
        ] );
      ( "engines",
        [
          Alcotest.test_case "gateway: observation is zero-cost" `Quick
            test_gateway_observation_zero_cost;
          Alcotest.test_case "gateway: events match report" `Quick
            test_gateway_events_match_report;
          Alcotest.test_case "rollout: observation is zero-cost" `Quick
            test_rollout_observation_zero_cost;
          Alcotest.test_case "swarm: observation is zero-cost" `Quick
            test_swarm_observation_zero_cost;
          Alcotest.test_case "shared log is deterministic" `Quick
            test_shared_log_deterministic;
          Alcotest.test_case "rollout telemetry snapshot" `Quick
            test_rollout_telemetry_snapshot;
        ] );
    ]
