(* Unit tests for the machine simulator: words, memory, registers, ISA,
   assembler, CPU execution, exceptions and devices. *)

open Tytan_machine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Word ---------------------------------------------------------------- *)

let word_tests =
  [
    Alcotest.test_case "wraparound add" `Quick (fun () ->
        check "max+1 wraps" 0 (Word.add Word.max_value 1));
    Alcotest.test_case "wraparound sub" `Quick (fun () ->
        check "0-1 wraps" Word.max_value (Word.sub 0 1));
    Alcotest.test_case "signed interpretation" `Quick (fun () ->
        check "-1" (-1) (Word.to_signed Word.max_value);
        check "min int32" (-0x8000_0000) (Word.to_signed 0x8000_0000));
    Alcotest.test_case "of_signed round trip" `Quick (fun () ->
        check "-5" (-5) (Word.to_signed (Word.of_signed (-5))));
    Alcotest.test_case "mul truncates" `Quick (fun () ->
        check "mul mod 2^32" ((0x10000 * 0x10000) land 0xFFFF_FFFF)
          (Word.mul 0x10000 0x10000));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check "shl 1 by 31" 0x8000_0000 (Word.shift_left 1 31);
        check "shl by 32 is 0" 0 (Word.shift_left 1 32);
        check "shr" 1 (Word.shift_right_logical 0x8000_0000 31));
    Alcotest.test_case "signed compare" `Quick (fun () ->
        check_bool "-1 < 1" true (Word.compare_signed Word.max_value 1 < 0));
    Alcotest.test_case "lognot" `Quick (fun () ->
        check "lognot 0" Word.max_value (Word.lognot 0));
  ]

(* --- Memory -------------------------------------------------------------- *)

let memory_tests =
  [
    Alcotest.test_case "read32/write32 little endian" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        Memory.write32 m 0 0x11223344;
        check "byte 0" 0x44 (Memory.read8 m 0);
        check "byte 3" 0x11 (Memory.read8 m 3);
        check "word" 0x11223344 (Memory.read32 m 0));
    Alcotest.test_case "write8 then read32" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        Memory.write8 m 4 0xAB;
        check "low byte" 0xAB (Memory.read32 m 4));
    Alcotest.test_case "out of range raises" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        Alcotest.check_raises "oob"
          (Invalid_argument "Memory.read32: address 0x00000040 out of range")
          (fun () -> ignore (Memory.read32 m 64)));
    Alcotest.test_case "blit and read back" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        Memory.blit_bytes m 8 (Bytes.of_string "hello");
        check_bool "round trip" true
          (Bytes.to_string (Memory.read_bytes m 8 5) = "hello"));
    Alcotest.test_case "fill" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        Memory.fill m 0 64 0xEE;
        check "filled" 0xEE (Memory.read8 m 63));
    Alcotest.test_case "mmio dispatch" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        let last_write = ref 0 in
        Memory.map_device m
          {
            Memory.name = "dev";
            base = 0x1000;
            size = 8;
            read32 = (fun ~offset -> offset + 7);
            write32 = (fun ~offset:_ v -> last_write := v);
          };
        check "mmio read" 7 (Memory.read32 m 0x1000);
        check "mmio read offset" 11 (Memory.read32 m 0x1004);
        Memory.write32 m 0x1000 99;
        check "mmio write" 99 !last_write);
    Alcotest.test_case "mmio overlap rejected" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        let dev base =
          {
            Memory.name = "d";
            base;
            size = 8;
            read32 = (fun ~offset:_ -> 0);
            write32 = (fun ~offset:_ _ -> ());
          }
        in
        Memory.map_device m (dev 0x1000);
        check_bool "overlap raises" true
          (try
             Memory.map_device m (dev 0x1004);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "mmio read8 extracts byte lane" `Quick (fun () ->
        let m = Memory.create ~size:64 in
        Memory.map_device m
          {
            Memory.name = "d";
            base = 0x100;
            size = 4;
            read32 = (fun ~offset:_ -> 0xAABBCCDD);
            write32 = (fun ~offset:_ _ -> ());
          };
        check "lane 0" 0xDD (Memory.read8 m 0x100);
        check "lane 3" 0xAA (Memory.read8 m 0x103));
  ]

(* --- Regfile ------------------------------------------------------------- *)

let regfile_tests =
  [
    Alcotest.test_case "get/set masks to 32 bits" `Quick (fun () ->
        let r = Regfile.create () in
        Regfile.set r 3 (Word.max_value + 5);
        check "masked" 4 (Regfile.get r 3));
    Alcotest.test_case "flags independent" `Quick (fun () ->
        let r = Regfile.create () in
        Regfile.set_zero r true;
        Regfile.set_interrupts r true;
        check_bool "zero" true (Regfile.zero_flag r);
        check_bool "negative clear" false (Regfile.negative_flag r);
        Regfile.set_zero r false;
        check_bool "interrupts survive" true (Regfile.interrupts_enabled r));
    Alcotest.test_case "wipe clears gprs only" `Quick (fun () ->
        let r = Regfile.create () in
        Regfile.set r 0 42;
        Regfile.set_eip r 0x100;
        Regfile.wipe_gprs r;
        check "r0 wiped" 0 (Regfile.get r 0);
        check "eip kept" 0x100 (Regfile.eip r));
    Alcotest.test_case "snapshot and restore" `Quick (fun () ->
        let r = Regfile.create () in
        Regfile.set r 5 55;
        let snap = Regfile.all_gprs r in
        Regfile.wipe_gprs r;
        Regfile.restore_gprs r snap;
        check "restored" 55 (Regfile.get r 5));
  ]

(* --- ISA ----------------------------------------------------------------- *)

let all_instructions =
  [
    Isa.Nop;
    Isa.Movi (3, 0xDEADBEEF);
    Isa.Mov (1, 2);
    Isa.Add (1, 2, 3);
    Isa.Addi (1, 2, 77);
    Isa.Sub (4, 5, 6);
    Isa.Mul (7, 8, 9);
    Isa.And (1, 2, 3);
    Isa.Or (1, 2, 3);
    Isa.Xor (1, 2, 3);
    Isa.Shl (1, 2, 5);
    Isa.Shr (1, 2, 9);
    Isa.Cmp (3, 4);
    Isa.Cmpi (3, 1000);
    Isa.Ldw (1, 2, 16);
    Isa.Stw (2, 20, 3);
    Isa.Ldb (1, 2, 1);
    Isa.Stb (2, 2, 3);
    Isa.Jmp 0x40;
    Isa.Jz 0x40;
    Isa.Jnz 0x40;
    Isa.Jlt 0x40;
    Isa.Jge 0x40;
    Isa.Jmpr 5;
    Isa.Call 0x80;
    Isa.Callr 6;
    Isa.Ret;
    Isa.Push 7;
    Isa.Pop 8;
    Isa.Swi 3;
    Isa.Iret;
    Isa.Halt;
  ]

let isa_tests =
  [
    Alcotest.test_case "encode/decode round trip (all opcodes)" `Quick
      (fun () ->
        List.iter
          (fun instr ->
            let decoded = Isa.decode (Isa.encode instr) in
            check_bool
              (Format.asprintf "%a" Isa.pp instr)
              true (decoded = instr))
          all_instructions);
    Alcotest.test_case "fixed width" `Quick (fun () ->
        List.iter
          (fun instr -> check "8 bytes" Isa.width (Bytes.length (Isa.encode instr)))
          all_instructions);
    Alcotest.test_case "bad opcode rejected" `Quick (fun () ->
        let b = Bytes.make Isa.width '\000' in
        Bytes.set b 0 (Char.chr 200);
        check_bool "raises" true
          (try
             ignore (Isa.decode b);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "costs positive" `Quick (fun () ->
        List.iter
          (fun instr -> check_bool "cost >= 1" true (Isa.cost instr >= 1))
          all_instructions);
    Alcotest.test_case "imm field location" `Quick (fun () ->
        let b = Isa.encode (Isa.Movi (0, 0x11223344)) in
        check "imm LE" 0x44 (Char.code (Bytes.get b Isa.imm_field_offset)));
  ]

(* --- Assembler ----------------------------------------------------------- *)

let assembler_tests =
  [
    Alcotest.test_case "labels resolve to offsets" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.instr p Isa.Nop;
        Assembler.label p "here";
        Assembler.instr p Isa.Halt;
        let prog = Assembler.assemble p in
        check "here at 8" 8 (List.assoc "here" prog.symbols));
    Alcotest.test_case "movi_label emits relocation" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.movi_label p ~rd:0 "target";
        Assembler.label p "target";
        Assembler.word p 7;
        let prog = Assembler.assemble p in
        check "one reloc" 1 (Array.length prog.relocations);
        check "reloc at imm field" Isa.imm_field_offset prog.relocations.(0));
    Alcotest.test_case "branches are relative (no relocation)" `Quick
      (fun () ->
        let p = Assembler.create () in
        Assembler.label p "top";
        Assembler.instr p Isa.Nop;
        Assembler.jmp_label p "top";
        let prog = Assembler.assemble p in
        check "no relocs" 0 (Array.length prog.relocations);
        match Isa.decode (Bytes.sub prog.image Isa.width Isa.width) with
        | Isa.Jmp d -> check "back displacement" (-16) (Word.to_signed d)
        | _ -> Alcotest.fail "expected jmp");
    Alcotest.test_case "undefined label rejected" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.jmp_label p "nowhere";
        check_bool "raises" true
          (try
             ignore (Assembler.assemble p);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "duplicate label rejected" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.label p "x";
        Assembler.label p "x";
        check_bool "raises" true
          (try
             ignore (Assembler.assemble p);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "entry is _start" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.instr p Isa.Nop;
        Assembler.label p "_start";
        Assembler.instr p Isa.Halt;
        check "entry" 8 (Assembler.assemble p).entry);
    Alcotest.test_case "begin_data sets text size" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.instr p Isa.Nop;
        Assembler.begin_data p;
        Assembler.word p 1;
        let prog = Assembler.assemble p in
        check "text" 8 prog.text_size;
        check "image" 12 (Bytes.length prog.image));
    Alcotest.test_case "word_label emits data relocation" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.label p "a";
        Assembler.instr p Isa.Nop;
        Assembler.begin_data p;
        Assembler.word_label p "a";
        let prog = Assembler.assemble p in
        check "reloc offset" 8 prog.relocations.(0));
    Alcotest.test_case "space reserves zeros" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.space p 12;
        check "size" 12 (Bytes.length (Assembler.assemble p).image));
  ]

(* --- CPU execution ------------------------------------------------------- *)

let machine () =
  let mem = Memory.create ~size:4096 in
  let clock = Cycles.create () in
  let engine = Exception_engine.create mem ~idt_base:0x100 in
  let cpu = Cpu.create mem clock engine in
  (mem, clock, engine, cpu)

let load_and_run ?(steps = 100) instrs =
  let mem, clock, _, cpu = machine () in
  List.iteri
    (fun i instr ->
      Memory.blit_bytes mem (0x200 + (i * Isa.width)) (Isa.encode instr))
    instrs;
  Regfile.set_eip (Cpu.regs cpu) 0x200;
  Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
  let rec go n = if n > 0 && Cpu.step cpu = Cpu.Running then go (n - 1) in
  go steps;
  (cpu, clock)

let cpu_tests =
  [
    Alcotest.test_case "arithmetic program" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 20);
              Isa.Movi (1, 22);
              Isa.Add (2, 0, 1);
              Isa.Halt;
            ]
        in
        check "20+22" 42 (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "memory program" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 0x400);
              Isa.Movi (1, 0xBEEF);
              Isa.Stw (0, 0, 1);
              Isa.Ldw (2, 0, 0);
              Isa.Halt;
            ]
        in
        check "store/load" 0xBEEF (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "byte access" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 0x400);
              Isa.Movi (1, 0x1FF);
              Isa.Stb (0, 0, 1);
              Isa.Ldb (2, 0, 0);
              Isa.Halt;
            ]
        in
        check "byte truncated" 0xFF (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "conditional branch taken" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 5);
              Isa.Cmpi (0, 5);
              Isa.Jz 8 (* skip next *);
              Isa.Movi (1, 111);
              Isa.Movi (2, 222);
              Isa.Halt;
            ]
        in
        check "skipped" 0 (Regfile.get (Cpu.regs cpu) 1);
        check "landed" 222 (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "loop runs to completion" `Quick (fun () ->
        (* r0 counts down from 5; r1 accumulates. *)
        let cpu, _ =
          load_and_run ~steps:200
            [
              Isa.Movi (0, 5);
              Isa.Movi (1, 0);
              (* loop: *)
              Isa.Addi (1, 1, 3);
              Isa.Addi (0, 0, Word.of_signed (-1));
              Isa.Cmpi (0, 0);
              Isa.Jnz (Word.of_signed (-32));
              Isa.Halt;
            ]
        in
        check "5 iterations" 15 (Regfile.get (Cpu.regs cpu) 1));
    Alcotest.test_case "call/ret uses link register" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Call 8 (* to the movi below the halt *);
              Isa.Halt;
              Isa.Movi (3, 77);
              Isa.Ret;
            ]
        in
        check "returned" 77 (Regfile.get (Cpu.regs cpu) 3));
    Alcotest.test_case "push/pop" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 11);
              Isa.Push 0;
              Isa.Movi (0, 0);
              Isa.Pop 1;
              Isa.Halt;
            ]
        in
        check "popped" 11 (Regfile.get (Cpu.regs cpu) 1));
    Alcotest.test_case "cycles accumulate per instruction" `Quick (fun () ->
        let _, clock = load_and_run [ Isa.Nop; Isa.Nop; Isa.Halt ] in
        check "2 nops + halt" 3 (Cycles.now clock));
    Alcotest.test_case "protection hook sees execute" `Quick (fun () ->
        let mem, _, _, cpu = machine () in
        Memory.blit_bytes mem 0x200 (Isa.encode Isa.Halt);
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        let seen = ref [] in
        Cpu.set_check cpu (fun ~eip:_ ~addr ~size:_ ~kind ->
            seen := (addr, kind) :: !seen);
        ignore (Cpu.step cpu);
        check_bool "execute check at 0x200" true
          (List.mem (0x200, Access.Execute) !seen));
    Alcotest.test_case "denied access reaches fault handler" `Quick (fun () ->
        let mem, _, _, cpu = machine () in
        Memory.blit_bytes mem 0x200 (Isa.encode (Isa.Ldw (0, 0, 0x300)));
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Cpu.set_check cpu (fun ~eip ~addr ~size ~kind ->
            match kind with
            | Access.Read -> Access.violation ~eip ~addr ~size ~kind "no"
            | Access.Write | Access.Execute -> ());
        let faulted = ref false in
        Cpu.set_fault_handler cpu (fun _ ->
            faulted := true;
            Cpu.halt cpu);
        ignore (Cpu.step cpu);
        check_bool "fault handler ran" true !faulted);
    Alcotest.test_case "firmware identity used for host accesses" `Quick
      (fun () ->
        let _, _, _, cpu = machine () in
        let seen_eip = ref 0 in
        Cpu.set_check cpu (fun ~eip ~addr:_ ~size:_ ~kind:_ -> seen_eip := eip);
        Cpu.with_firmware cpu ~eip:0xABC (fun () ->
            ignore (Cpu.load32 cpu 0x400));
        check "attributed to firmware" 0xABC !seen_eip);
  ]

(* --- Exceptions and interrupts ------------------------------------------- *)

let exception_tests =
  [
    Alcotest.test_case "swi enters firmware handler" `Quick (fun () ->
        let mem, _, engine, cpu = machine () in
        let hits = ref 0 in
        let addr =
          Exception_engine.register_firmware engine ~name:"t" (fun () ->
              incr hits;
              Cpu.interrupt_return cpu)
        in
        Exception_engine.set_vector engine (Exception_engine.swi_vector_base + 2) addr;
        Memory.blit_bytes mem 0x200 (Isa.encode (Isa.Swi 2));
        Memory.blit_bytes mem 0x208 (Isa.encode Isa.Halt);
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        ignore (Cpu.step cpu);
        ignore (Cpu.step cpu);
        check "handler ran once" 1 !hits;
        check_bool "halted after return" true (Cpu.halted cpu));
    Alcotest.test_case "swi origin latched" `Quick (fun () ->
        let mem, _, engine, cpu = machine () in
        let origin = ref 0 in
        let addr =
          Exception_engine.register_firmware engine ~name:"t" (fun () ->
              origin := Exception_engine.origin engine;
              Cpu.interrupt_return cpu)
        in
        Exception_engine.set_vector engine 16 addr;
        Memory.blit_bytes mem 0x200 (Isa.encode Isa.Nop);
        Memory.blit_bytes mem 0x208 (Isa.encode (Isa.Swi 0));
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        ignore (Cpu.step cpu);
        ignore (Cpu.step cpu);
        check "origin is the SWI instruction" 0x208 !origin);
    Alcotest.test_case "irq only taken when interrupts enabled" `Quick
      (fun () ->
        let mem, _, engine, cpu = machine () in
        let hits = ref 0 in
        let addr =
          Exception_engine.register_firmware engine ~name:"irq" (fun () ->
              incr hits;
              Cpu.interrupt_return cpu)
        in
        Exception_engine.set_vector engine 1 addr;
        Memory.blit_bytes mem 0x200 (Isa.encode Isa.Nop);
        Memory.blit_bytes mem 0x208 (Isa.encode Isa.Nop);
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        Exception_engine.raise_irq engine 1;
        ignore (Cpu.step cpu);
        check "masked" 0 !hits;
        Regfile.set_interrupts (Cpu.regs cpu) true;
        ignore (Cpu.step cpu);
        check "taken when enabled" 1 !hits);
    Alcotest.test_case "hardware pushes eip and eflags" `Quick (fun () ->
        let mem, _, engine, cpu = machine () in
        let frame = ref (0, 0) in
        let addr =
          Exception_engine.register_firmware engine ~name:"t" (fun () ->
              let sp = Regfile.get (Cpu.regs cpu) Regfile.sp in
              frame := (Memory.read32 mem sp, Memory.read32 mem (sp + 4));
              Cpu.interrupt_return cpu)
        in
        Exception_engine.set_vector engine 16 addr;
        Memory.blit_bytes mem 0x200 (Isa.encode (Isa.Swi 0));
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        Regfile.set_interrupts (Cpu.regs cpu) true;
        ignore (Cpu.step cpu);
        let eip, eflags = !frame in
        check "return address" 0x208 eip;
        check "eflags with IF" 8 eflags);
    Alcotest.test_case "pending irq priority order" `Quick (fun () ->
        let _, _, engine, _ = machine () in
        Exception_engine.raise_irq engine 5;
        Exception_engine.raise_irq engine 2;
        check_bool "lowest line first" true
          (Exception_engine.pending_irq engine = Some 2);
        Exception_engine.ack_irq engine 2;
        check_bool "next" true (Exception_engine.pending_irq engine = Some 5));
    Alcotest.test_case "entry cost charged" `Quick (fun () ->
        let mem, clock, engine, cpu = machine () in
        let addr =
          Exception_engine.register_firmware engine ~name:"t" (fun () ->
              Cpu.interrupt_return cpu)
        in
        Exception_engine.set_vector engine 16 addr;
        Memory.blit_bytes mem 0x200 (Isa.encode (Isa.Swi 0));
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        ignore (Cpu.step cpu);
        check "swi cost + entry cost" (Isa.cost (Isa.Swi 0) + Exception_engine.entry_cost)
          (Cycles.now clock));
  ]

(* --- Devices ------------------------------------------------------------- *)

let device_tests =
  [
    Alcotest.test_case "timer fires on period boundaries" `Quick (fun () ->
        let _, clock, engine, _ = machine () in
        let timer = Devices.Timer.create engine clock ~irq:0 ~period:100 in
        Devices.Timer.poll timer;
        check "not yet" 0 (Devices.Timer.fired timer);
        Cycles.charge clock 100;
        Devices.Timer.poll timer;
        check "fired" 1 (Devices.Timer.fired timer);
        check_bool "irq pending" true
          (Exception_engine.pending_irq engine = Some 0));
    Alcotest.test_case "late service latches one irq" `Quick (fun () ->
        let _, clock, engine, _ = machine () in
        let timer = Devices.Timer.create engine clock ~irq:0 ~period:100 in
        Cycles.charge clock 1000;
        Devices.Timer.poll timer;
        Devices.Timer.poll timer;
        check "single latch for the burst" 1 (Devices.Timer.fired timer);
        ignore engine);
    Alcotest.test_case "disabled timer stays quiet" `Quick (fun () ->
        let _, clock, engine, _ = machine () in
        let timer = Devices.Timer.create engine clock ~irq:0 ~period:10 in
        Devices.Timer.disable timer;
        Cycles.charge clock 100;
        Devices.Timer.poll timer;
        check "no fire" 0 (Devices.Timer.fired timer));
    Alcotest.test_case "sensor samples as a function of time" `Quick
      (fun () ->
        let mem, clock, _, _ = machine () in
        let sensor =
          Devices.Sensor.create ~name:"s" ~base:0x1000 ~clock
            ~sample:(fun ~cycles -> cycles * 2)
        in
        Memory.map_device mem (Devices.Sensor.device sensor);
        Cycles.charge clock 21;
        check "sample" 42 (Memory.read32 mem 0x1000);
        check "read counted" 1 (Devices.Sensor.reads sensor));
    Alcotest.test_case "console collects bytes" `Quick (fun () ->
        let mem, _, _, _ = machine () in
        let console = Devices.Console.create ~base:0x2000 in
        Memory.map_device mem (Devices.Console.device console);
        String.iter
          (fun c -> Memory.write32 mem 0x2000 (Char.code c))
          "hi!";
        check_bool "contents" true (Devices.Console.contents console = "hi!"));
  ]

(* --- Trace --------------------------------------------------------------- *)

let trace_tests =
  [
    Alcotest.test_case "disabled trace records nothing" `Quick (fun () ->
        let clock = Cycles.create () in
        let trace = Trace.create clock in
        Trace.emit trace ~source:"x" "event";
        check "empty" 0 (List.length (Trace.events trace)));
    Alcotest.test_case "bounded capacity evicts oldest" `Quick (fun () ->
        let clock = Cycles.create () in
        let trace = Trace.create ~capacity:2 clock in
        Trace.enable trace;
        Trace.emit trace ~source:"x" "a";
        Trace.emit trace ~source:"x" "b";
        Trace.emit trace ~source:"x" "c";
        let events = Trace.events trace in
        check "two kept" 2 (List.length events);
        check_bool "oldest dropped" true
          ((List.hd events).Trace.detail = "b"));
    Alcotest.test_case "find by substring" `Quick (fun () ->
        let clock = Cycles.create () in
        let trace = Trace.create clock in
        Trace.enable trace;
        Trace.emitf trace ~source:"sched" "dispatch %s" "t1";
        check_bool "found" true
          (Trace.find trace ~source:"sched" ~substring:"t1" <> None);
        check_bool "absent" true
          (Trace.find trace ~source:"sched" ~substring:"zz" = None));
    Alcotest.test_case "eviction keeps the newest events" `Quick (fun () ->
        let clock = Cycles.create () in
        let trace = Trace.create ~capacity:3 clock in
        Trace.enable trace;
        for i = 0 to 9 do
          Trace.emitf trace ~source:"s" "e%d" i
        done;
        let details = List.map (fun e -> e.Trace.detail) (Trace.events trace) in
        check_bool "newest retained, oldest gone" true
          (details = [ "e7"; "e8"; "e9" ]));
    Alcotest.test_case "emitf on a disabled trace never formats" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let trace = Trace.create clock in
        let formatted = ref false in
        Trace.emitf trace ~source:"x" "%t" (fun _ -> formatted := true);
        check_bool "formatter closure untouched" false !formatted;
        check "nothing recorded" 0 (List.length (Trace.events trace)));
    Alcotest.test_case "count and find agree after wraparound" `Quick
      (fun () ->
        let clock = Cycles.create () in
        let trace = Trace.create ~capacity:3 clock in
        Trace.enable trace;
        for i = 0 to 9 do
          Trace.emitf trace ~source:(if i mod 2 = 0 then "even" else "odd") "e%d" i
        done;
        (* Retained window is e7, e8, e9: one even event, two odd. *)
        check "even survivors" 1 (Trace.count trace ~source:"even");
        check "odd survivors" 2 (Trace.count trace ~source:"odd");
        check_bool "newest findable" true
          (Trace.find trace ~source:"odd" ~substring:"e9" <> None);
        check_bool "evicted not findable" true
          (Trace.find trace ~source:"even" ~substring:"e0" = None));
  ]

(* --- The control-flow observer hook ---------------------------------------- *)

(* A little gauntlet exercising one of each transfer: taken and not-taken
   conditionals, direct and indirect jumps and calls, and a return. *)
let hook_gauntlet =
  [
    Isa.Movi (0, 1) (* 0x200 *);
    Isa.Cmpi (0, 1) (* 0x208: sets Z *);
    Isa.Jz 8 (* 0x210: taken -> 0x220 *);
    Isa.Halt (* 0x218: skipped *);
    Isa.Call 8 (* 0x220: -> 0x230, lr = 0x228 *);
    Isa.Halt (* 0x228: final stop after Ret *);
    Isa.Movi (1, 0x260) (* 0x230 *);
    Isa.Cmpi (0, 2) (* 0x238: clears Z *);
    Isa.Jz 8 (* 0x240: NOT taken -> silent *);
    Isa.Jmpr 1 (* 0x248: -> 0x260 *);
    Isa.Halt (* 0x250 *);
    Isa.Halt (* 0x258 *);
    Isa.Ret (* 0x260: -> lr 0x228 *);
  ]

let run_gauntlet ~hook =
  let mem, clock, _, cpu = machine () in
  List.iteri
    (fun i instr ->
      Memory.blit_bytes mem (0x200 + (i * Isa.width)) (Isa.encode instr))
    hook_gauntlet;
  Regfile.set_eip (Cpu.regs cpu) 0x200;
  Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
  let events = ref [] in
  if hook then
    Cpu.set_on_branch cpu (fun ~src ~dst ~kind ->
        events := (src, dst, kind) :: !events);
  let rec go n = if n > 0 && Cpu.step cpu = Cpu.Running then go (n - 1) in
  go 100;
  (cpu, clock, List.rev !events)

let branch_hook_tests =
  [
    Alcotest.test_case "hook sees every taken transfer, and only those"
      `Quick (fun () ->
        let _, _, events = run_gauntlet ~hook:true in
        check_bool "exact event stream" true
          (events
          = [
              (0x210, 0x220, Cpu.Cond_taken);
              (0x220, 0x230, Cpu.Direct_call);
              (0x248, 0x260, Cpu.Indirect_jump);
              (0x260, 0x228, Cpu.Return);
            ]));
    Alcotest.test_case "no hook: same execution, same cycles, no events"
      `Quick (fun () ->
        let cpu_h, clock_h, events = run_gauntlet ~hook:true in
        let cpu_n, clock_n, none = run_gauntlet ~hook:false in
        check "hook observes" 4 (List.length events);
        check "nothing without a hook" 0 (List.length none);
        check "identical cycle count" (Cycles.now clock_h) (Cycles.now clock_n);
        check "identical architectural state"
          (Regfile.eip (Cpu.regs cpu_h))
          (Regfile.eip (Cpu.regs cpu_n)));
    Alcotest.test_case "clear_on_branch detaches the observer" `Quick
      (fun () ->
        let mem, _, _, cpu = machine () in
        Memory.blit_bytes mem 0x200 (Isa.encode (Isa.Jmp 0));
        Memory.blit_bytes mem 0x208 (Isa.encode Isa.Halt);
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        let hits = ref 0 in
        Cpu.set_on_branch cpu (fun ~src:_ ~dst:_ ~kind:_ -> incr hits);
        check_bool "installed" true (Cpu.branch_hook_installed cpu);
        ignore (Cpu.step cpu);
        Cpu.clear_on_branch cpu;
        check_bool "detached" false (Cpu.branch_hook_installed cpu);
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        ignore (Cpu.step cpu);
        check "only the hooked step observed" 1 !hits);
    Alcotest.test_case "swi reports the service number, not an address"
      `Quick (fun () ->
        let mem, _, engine, cpu = machine () in
        (* An IDT entry for SWI 3 pointing at a Halt. *)
        Exception_engine.set_vector engine
          (Exception_engine.swi_vector_base + 3)
          0x400;
        Memory.blit_bytes mem 0x400 (Isa.encode Isa.Halt);
        Memory.blit_bytes mem 0x200 (Isa.encode (Isa.Swi 3));
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        let seen = ref None in
        Cpu.set_on_branch cpu (fun ~src ~dst ~kind -> seen := Some (src, dst, kind));
        ignore (Cpu.step cpu);
        check_bool "swi edge" true (!seen = Some (0x200, 3, Cpu.Swi_entry)));
  ]

(* --- More CPU semantics ---------------------------------------------------- *)

let semantics_tests =
  [
    Alcotest.test_case "signed branch (jlt) on negative difference" `Quick
      (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 3);
              Isa.Cmpi (0, 5);
              Isa.Jlt 8 (* 3 < 5: take *);
              Isa.Movi (1, 111);
              Isa.Movi (2, 222);
              Isa.Halt;
            ]
        in
        check "skipped" 0 (Regfile.get (Cpu.regs cpu) 1);
        check "landed" 222 (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "jge on equal values" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 5);
              Isa.Cmpi (0, 5);
              Isa.Jge 8;
              Isa.Movi (1, 111);
              Isa.Movi (2, 222);
              Isa.Halt;
            ]
        in
        check "taken on equal" 0 (Regfile.get (Cpu.regs cpu) 1);
        check "landed" 222 (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "wraparound arithmetic in guest code" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, Word.max_value);
              Isa.Addi (1, 0, 1);
              Isa.Halt;
            ]
        in
        check "wrapped to zero" 0 (Regfile.get (Cpu.regs cpu) 1));
    Alcotest.test_case "logical ops" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 0xF0F0);
              Isa.Movi (1, 0x0FF0);
              Isa.And (2, 0, 1);
              Isa.Or (3, 0, 1);
              Isa.Xor (4, 0, 1);
              Isa.Shl (5, 0, 4);
              Isa.Shr (6, 0, 4);
              Isa.Halt;
            ]
        in
        let r = Cpu.regs cpu in
        check "and" 0x00F0 (Regfile.get r 2);
        check "or" 0xFFF0 (Regfile.get r 3);
        check "xor" 0xFF00 (Regfile.get r 4);
        check "shl" 0xF0F00 (Regfile.get r 5);
        check "shr" 0x0F0F (Regfile.get r 6));
    Alcotest.test_case "mul" `Quick (fun () ->
        let cpu, _ =
          load_and_run [ Isa.Movi (0, 7); Isa.Movi (1, 6); Isa.Mul (2, 0, 1); Isa.Halt ]
        in
        check "42" 42 (Regfile.get (Cpu.regs cpu) 2));
    Alcotest.test_case "indirect call and jump" `Quick (fun () ->
        let cpu, _ =
          load_and_run
            [
              Isa.Movi (0, 0x200 + (3 * Isa.width)) (* address of halt *);
              Isa.Jmpr 0;
              Isa.Movi (1, 999) (* skipped *);
              Isa.Halt;
            ]
        in
        check "skipped" 0 (Regfile.get (Cpu.regs cpu) 1));
    Alcotest.test_case "resume grant bypasses one execute check" `Quick
      (fun () ->
        let mem, _, _, cpu = machine () in
        Memory.blit_bytes mem 0x200 (Isa.encode Isa.Halt);
        Cpu.set_check cpu (fun ~eip:_ ~addr ~size ~kind ->
            match kind with
            | Access.Execute ->
                Access.violation ~eip:0 ~addr ~size ~kind "deny all execution"
            | Access.Read | Access.Write -> ());
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        Cpu.grant_resume cpu 0x200;
        (* first fetch: granted; instruction is halt *)
        check_bool "step allowed" true (Cpu.step cpu = Cpu.Halted));
    Alcotest.test_case "iret round trip restores eip and eflags" `Quick
      (fun () ->
        let mem, _, _, cpu = machine () in
        (* push eflags, eip by hand; then execute iret at 0x200 *)
        Memory.blit_bytes mem 0x200 (Isa.encode Isa.Iret);
        Memory.blit_bytes mem 0x300 (Isa.encode Isa.Halt);
        Regfile.set (Cpu.regs cpu) Regfile.sp 0x800;
        Cpu.push_word cpu 0x8 (* eflags with IF *);
        Cpu.push_word cpu 0x300 (* eip *);
        Regfile.set_eip (Cpu.regs cpu) 0x200;
        ignore (Cpu.step cpu);
        check "eip restored" 0x300 (Regfile.eip (Cpu.regs cpu));
        check_bool "IF restored" true (Regfile.interrupts_enabled (Cpu.regs cpu));
        ignore (Cpu.step cpu);
        check_bool "halts at restored address" true (Cpu.halted cpu));
  ]

(* --- Disassembler ----------------------------------------------------------- *)

let disasm_tests =
  [
    Alcotest.test_case "round trip through assembler" `Quick (fun () ->
        let instrs = [ Isa.Movi (0, 7); Isa.Addi (1, 0, 3); Isa.Halt ] in
        let p = Assembler.create () in
        List.iter (Assembler.instr p) instrs;
        let prog = Assembler.assemble p in
        let lines = Disasm.of_bytes prog.image in
        check "all decoded" 3 (List.length lines);
        check_bool "instructions match" true
          (List.map (fun l -> l.Disasm.instr) lines = List.map Option.some instrs));
    Alcotest.test_case "bad bytes render as raw" `Quick (fun () ->
        let b = Bytes.make Isa.width '\255' in
        match Disasm.of_bytes b with
        | [ line ] -> check_bool "undecodable" true (line.Disasm.instr = None)
        | _ -> Alcotest.fail "expected one line");
    Alcotest.test_case "addresses honour the base" `Quick (fun () ->
        let b = Bytes.cat (Isa.encode Isa.Nop) (Isa.encode Isa.Halt) in
        match Disasm.of_bytes ~base:0x4000 b with
        | [ a; b' ] ->
            check "first" 0x4000 a.Disasm.addr;
            check "second" (0x4000 + Isa.width) b'.Disasm.addr
        | _ -> Alcotest.fail "expected two lines");
    Alcotest.test_case "annotate attaches labels" `Quick (fun () ->
        let p = Assembler.create () in
        Assembler.instr p Isa.Nop;
        Assembler.label p "target";
        Assembler.instr p Isa.Halt;
        let prog = Assembler.assemble p in
        let annotated =
          Disasm.annotate ~symbols:prog.symbols ~base:0
            (Disasm.of_bytes prog.image)
        in
        match annotated with
        | [ (None, _); (Some "target", _) ] -> ()
        | _ -> Alcotest.fail "labels misplaced");
  ]

let () =
  Alcotest.run "machine"
    [
      ("word", word_tests);
      ("memory", memory_tests);
      ("regfile", regfile_tests);
      ("isa", isa_tests);
      ("assembler", assembler_tests);
      ("cpu", cpu_tests);
      ("semantics", semantics_tests);
      ("exceptions", exception_tests);
      ("devices", device_tests);
      ("disasm", disasm_tests);
      ("trace", trace_tests);
      ("branch-hook", branch_hook_tests);
    ]
