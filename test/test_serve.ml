(* The verifier gateway: admission control, typed load shedding, token
   buckets, deadlines, the LRU device-state store and the circuit
   breaker — plus the fuzz property that hostile frames land in typed
   counters, never exceptions, and the link counter reconciliation the
   gateway's reports lean on. *)

open Tytan_netsim
module Gateway = Tytan_serve.Gateway
module Swarm = Tytan_provision.Swarm
module Fault_plan = Tytan_fault.Fault_plan

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Graceful degradation --------------------------------------------------- *)

let saturation_config =
  {
    Gateway.default_config with
    Gateway.max_pending = 8;
    bucket_capacity = 8;
    bucket_refill_slices = 2;
  }

let gateway_tests =
  [
    Alcotest.test_case "clean moderate load: everything attests" `Quick
      (fun () ->
        (* Load chosen below every limiter: ~1.5 arrivals/slice over 48
           devices stays well inside each token bucket's refill rate. *)
        let r =
          Gateway.run ~devices:48 ~slices:200 ~arrival_permille:1500 ~seed:11 ()
        in
        check_int "no sheds" 0 (Gateway.shed r);
        check_int "all arrivals admitted" r.Gateway.arrivals r.Gateway.admitted;
        check_int "all admitted attested" r.Gateway.admitted r.Gateway.attested;
        check_bool "batched sessions sealed Merkle batches" true
          (r.Gateway.batches > 0);
        check_bool "latency percentiles populated" true
          (r.Gateway.p50_slices >= 1 && r.Gateway.p99_slices >= r.Gateway.p50_slices));
    Alcotest.test_case
      "saturating load: queue bounded, Busy sheds, everything settles" `Quick
      (fun () ->
        let r =
          Gateway.run ~config:saturation_config ~devices:96 ~slices:200
            ~arrival_permille:12000 ~seed:7 ()
        in
        check_bool "queue depth never exceeds the bound" true
          (r.Gateway.max_queue_depth <= r.Gateway.queue_bound);
        check_bool "overload was real (queue hit the bound)" true
          (r.Gateway.max_queue_depth = r.Gateway.queue_bound);
        check_bool "load was shed with typed Busy refusals" true
          (r.Gateway.shed_busy > 0);
        check_int "every arrival accounted: admitted + shed" r.Gateway.arrivals
          (r.Gateway.admitted + Gateway.shed r);
        check_int "every admitted session settled" r.Gateway.admitted
          (Gateway.settled r));
    Alcotest.test_case "hammering device: token bucket refuses Rate_limited"
      `Quick (fun () ->
        (* Few devices, high rate: each device's bucket drains and the
           per-device limiter, not the global queue, does the shedding. *)
        let r =
          Gateway.run ~devices:8 ~slices:200 ~arrival_permille:8000 ~seed:3 ()
        in
        check_bool "rate-limited sheds dominate" true
          (r.Gateway.shed_rate_limited > 0);
        check_int "no Busy sheds (queue never filled)" 0 r.Gateway.shed_busy);
    Alcotest.test_case "dead links: breaker trips, device quarantined" `Quick
      (fun () ->
        let r =
          Gateway.run ~devices:4 ~slices:160 ~arrival_permille:2000 ~seed:5
            ~loss_percent:100 ()
        in
        check_int "nothing attests over a dead link" 0 r.Gateway.attested;
        check_bool "sessions time out" true (r.Gateway.timed_out > 0);
        check_bool "breaker tripped" true (r.Gateway.quarantine_trips > 0);
        check_bool "quarantined devices reported" true
          (List.length r.Gateway.quarantined > 0);
        check_bool "later arrivals refused Quarantined" true
          (r.Gateway.shed_quarantined > 0);
        check_int "still fully accounted" r.Gateway.arrivals
          (r.Gateway.admitted + Gateway.shed r));
    Alcotest.test_case "bounded store: LRU eviction forces re-derivation"
      `Quick (fun () ->
        let config =
          { Gateway.default_config with Gateway.store_capacity = 8 }
        in
        let r =
          Gateway.run ~config ~devices:32 ~slices:240 ~arrival_permille:4000
            ~seed:9 ()
        in
        check_bool "evictions happened" true (r.Gateway.evictions > 0);
        check_bool "evicted devices re-derived their keys on re-admission"
          true
          (r.Gateway.key_derivations > 32));
    Alcotest.test_case "faulted campaign survives and accounts" `Quick
      (fun () ->
        let r =
          Gateway.run ~devices:48 ~slices:240 ~arrival_permille:5000 ~seed:3
            ~faults:true ()
        in
        check_bool "fault schedule actually fired" true
          (List.length r.Gateway.fault_counts > 0);
        check_int "every arrival accounted under faults" r.Gateway.arrivals
          (r.Gateway.admitted + Gateway.shed r);
        check_int "every admitted session settled under faults"
          r.Gateway.admitted (Gateway.settled r);
        check_bool "queue stayed bounded under faults" true
          (r.Gateway.max_queue_depth <= r.Gateway.queue_bound));
    Alcotest.test_case "retained aggregation serves the gateway identically"
      `Quick (fun () ->
        (* Opting the gateway's aggregator into the incremental Retain
           tree must not change a single admission, attestation or shed
           decision — only the sealing strategy underneath. *)
        let run aggregation =
          Gateway.run
            ~config:{ Gateway.default_config with Gateway.aggregation }
            ~devices:48 ~slices:200 ~arrival_permille:4000 ~seed:17 ()
        in
        let rebuild = run Aggregator.Rebuild in
        let retain = run Aggregator.Retain in
        check_int "same arrivals" rebuild.Gateway.arrivals
          retain.Gateway.arrivals;
        check_int "same admissions" rebuild.Gateway.admitted
          retain.Gateway.admitted;
        check_int "same attestations" rebuild.Gateway.attested
          retain.Gateway.attested;
        check_int "same sheds" (Gateway.shed rebuild) (Gateway.shed retain);
        check_bool "retained run still seals batches" true
          (retain.Gateway.batches > 0));
  ]

(* --- Determinism under load ------------------------------------------------- *)

let determinism_tests =
  [
    Alcotest.test_case "same seed, same load: bit-identical reports" `Quick
      (fun () ->
        let run () =
          Gateway.run ~devices:64 ~slices:160 ~arrival_permille:8000 ~seed:21 ()
        in
        check_bool "clean runs identical" true (Gateway.equal (run ()) (run ())));
    Alcotest.test_case "same seed under faults: bit-identical reports" `Quick
      (fun () ->
        let run () =
          Gateway.run ~devices:48 ~slices:160 ~arrival_permille:6000 ~seed:13
            ~faults:true ()
        in
        check_bool "faulted runs identical" true
          (Gateway.equal (run ()) (run ())));
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let run seed =
          Gateway.run ~devices:32 ~slices:120 ~arrival_permille:5000 ~seed ()
        in
        check_bool "reports differ" false (Gateway.equal (run 1) (run 2)));
    Alcotest.test_case "fault schedule is a pure function of its tuple" `Quick
      (fun () ->
        let f () = Gateway.network_faults ~seed:42 ~devices:24 ~horizon:200 in
        check_bool "same plan twice" true (f () = f ());
        check_bool "plans fire within the horizon" true
          (List.for_all
             (fun (e : Fault_plan.event) -> e.Fault_plan.at_tick < 200)
             (f ())));
  ]

(* --- Fuzz: hostile frames land in counters, never exceptions ---------------- *)

(* A pool of plausible-looking wire garbage: valid frames mutated by bit
   flips, truncation and duplication, future-revision tags, and raw
   noise.  The property is the gateway's session demux contract — every
   byte string is classified (malformed / unknown / stale / routed) and
   nothing raises. *)
let hostile_frame_gen =
  QCheck.Gen.(
    let valid =
      let* seq = int_bound 0xFFFF in
      let* img = string_size (int_range 1 12) in
      let* nonce = string_size (int_range 0 24) in
      return
        (Protocol.encode
           (Protocol.Challenge
              {
                seq;
                id = Tytan_core.Task_id.of_image (Bytes.of_string img);
                nonce = Bytes.of_string nonce;
              }))
    in
    let* base = valid in
    let* flips =
      list_size (int_range 0 6) (pair small_nat (int_bound 255))
    in
    let* cut = small_nat in
    let* style = int_bound 3 in
    let frame = Bytes.copy base in
    List.iter
      (fun (pos, v) ->
        Bytes.set frame (pos mod Bytes.length frame) (Char.chr v))
      flips;
    match style with
    | 0 -> return frame
    | 1 -> return (Bytes.sub frame 0 (cut mod Bytes.length frame))
    | 2 -> return (Bytes.cat frame frame)  (* duplicated/concatenated *)
    | _ ->
        let* noise = string_size (int_range 0 40) in
        return (Bytes.of_string noise))

let fuzz_tests =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  [
    to_alcotest
      (QCheck.Test.make
         ~name:"gateway classifies hostile frames and never raises" ~count:150
         (QCheck.pair
            (QCheck.make QCheck.Gen.(int_range 1 1000))
            (QCheck.make QCheck.Gen.(list_size (int_range 1 12) hostile_frame_gen)))
         (fun (seed, frames) ->
           let g = Gateway.create ~devices:3 ~seed ~loss_percent:0 () in
           (* Put live sessions in flight so routed frames have someone
              to reach — the demux, not an empty table, is under test. *)
           for d = 0 to 2 do
             ignore (Gateway.arrive g ~device:d)
           done;
           Gateway.step g;
           List.iteri
             (fun i frame -> Gateway.inject_frame g ~device:(i mod 3) frame)
             frames;
           for _ = 1 to 4 do
             Gateway.step g
           done;
           (* Classified, not swallowed: an injected frame either reached
              a session or sits in exactly one typed counter. *)
           Gateway.malformed_frames g + Gateway.stale_frames g
           + Gateway.unknown_frames g
           <= List.length frames));
    to_alcotest
      (QCheck.Test.make ~name:"raw noise is malformed or stale, never fatal"
         ~count:150
         (QCheck.make
            QCheck.Gen.(
              pair (int_range 1 1000)
                (list_size (int_range 1 10) (string_size (int_range 0 64)))))
         (fun (seed, noise) ->
           let g = Gateway.create ~devices:2 ~seed ~loss_percent:0 () in
           List.iteri
             (fun i s ->
               Gateway.inject_frame g ~device:(i mod 2) (Bytes.of_string s))
             noise;
           (* No sessions exist, so every well-formed frame is stale and
              everything else malformed or unknown-revision: the three
              counters partition the injections exactly. *)
           Gateway.malformed_frames g + Gateway.stale_frames g
           + Gateway.unknown_frames g
           = List.length noise));
  ]

(* --- Link counters ----------------------------------------------------------- *)

let link_tests =
  [
    Alcotest.test_case "reset_counters zeroes counters, not in-flight frames"
      `Quick (fun () ->
        let link = Link.create ~delay:1 () in
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "a");
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "b");
        ignore (Link.deliver link ~to_:Link.Device ~at:1);
        Link.send link ~from:Link.Remote ~at:1 (Bytes.of_string "c");
        Link.reset_counters link;
        List.iter
          (fun (name, v) -> check_int ("zeroed " ^ name) 0 v)
          (Link.counters link);
        (* The frame sent before the reset is still in flight and its
           delivery counts against the fresh counters. *)
        check_int "in-flight frame survives the reset" 1
          (List.length (Link.deliver link ~to_:Link.Device ~at:2));
        check_int "post-reset delivery counted" 1 (Link.delivered_count link));
    Alcotest.test_case "burst drops attributed separately from lottery drops"
      `Quick (fun () ->
        let link = Link.create ~seed:5 ~loss_percent:50 () in
        Link.set_burst link ~until:10;
        for at = 0 to 9 do
          Link.send link ~from:Link.Remote ~at (Bytes.of_string "x")
        done;
        check_int "burst window drops every frame" 10
          (Link.dropped_burst_count link);
        for at = 10 to 29 do
          Link.send link ~from:Link.Remote ~at (Bytes.of_string "y")
        done;
        check_bool "post-burst lottery drops some" true
          (Link.dropped_loss_count link > 0);
        check_bool "and delivers some" true
          (Link.dropped_loss_count link < 20);
        check_int "total is the sum of the reasons — no double count"
          (Link.dropped_loss_count link + Link.dropped_burst_count link)
          (Link.dropped_count link));
    Alcotest.test_case "burst window only extends, never shrinks" `Quick
      (fun () ->
        let link = Link.create () in
        Link.set_burst link ~until:20;
        Link.set_burst link ~until:5;
        check_bool "still active at 15" true (Link.burst_active link ~at:15);
        check_bool "over at 20" false (Link.burst_active link ~at:20));
    Alcotest.test_case
      "drained link reconciles: delivered = sent - dropped + duplicated"
      `Quick (fun () ->
        let link =
          Link.create ~seed:9 ~loss_percent:20 ~corrupt_percent:10
            ~duplicate_percent:10 ~reorder_percent:10 ()
        in
        for at = 0 to 49 do
          Link.send link ~from:Link.Remote ~at (Bytes.make 8 'z')
        done;
        let delivered = ref 0 in
        for at = 0 to 80 do
          delivered :=
            !delivered + List.length (Link.deliver link ~to_:Link.Device ~at)
        done;
        check_int "accessor agrees with observed deliveries" !delivered
          (Link.delivered_count link);
        check_int "conservation holds"
          (Link.sent_count link - Link.dropped_count link
          + Link.duplicated_count link)
          (Link.delivered_count link));
  ]

(* --- Campaign-failure gating ------------------------------------------------- *)

let mk_swarm_report verdicts : Swarm.report =
  {
    Swarm.mode = Swarm.Batched;
    devices = String.length verdicts;
    epochs = 1;
    seed = 1;
    faults = false;
    loss_percent = 10;
    queries_per_epoch = 0;
    steady = false;
    churn_permille = 0;
    rollout = None;
    per_epoch =
      [
        {
          Swarm.epoch = 0;
          attested = 0;
          refused = 0;
          gave_up = 0;
          verdicts;
          healthy_polls = 0;
          slices = 0;
          batches = 0;
          root_hex = "";
          cache_hits = 0;
          cache_misses = 0;
          challenged = 0;
          carried = 0;
          delta_changed = 0;
          verify_cycles = 0;
        };
      ];
    verifier_cycles = 0;
    device_cycles = 0;
    frames_sent = 0;
    frames_dropped = 0;
    frames_delivered = 0;
    tampered = 0;
    silenced = 0;
    key_derivations = 0;
    telemetry = [];
    survived = true;
  }

let gating_tests =
  [
    Alcotest.test_case "campaign_failed spots unsettled verdicts" `Quick
      (fun () ->
        check_bool "pending verdict fails the campaign" true
          (Swarm.campaign_failed (mk_swarm_report "AA?A"));
        check_bool "settled verdicts pass" false
          (Swarm.campaign_failed (mk_swarm_report "ARGC"));
        check_bool "gave_up is settled, not failed" false
          (Swarm.campaign_failed (mk_swarm_report "GGGG")));
    Alcotest.test_case "real campaigns never leave a session unsettled" `Quick
      (fun () ->
        let r =
          Swarm.run ~mode:Swarm.Batched ~devices:16 ~epochs:2 ~seed:4
            ~faults:true ~loss_percent:25 ()
        in
        check_bool "no '?' even under heavy faults" false
          (Swarm.campaign_failed r));
    Alcotest.test_case "gateway reports render with a digest" `Quick (fun () ->
        let r =
          Gateway.run ~devices:8 ~slices:80 ~arrival_permille:2000 ~seed:2 ()
        in
        let s = Gateway.to_string r in
        check_bool "digest line present" true
          (String.length s > 0
          &&
          let lines = String.split_on_char '\n' s in
          List.exists
            (fun l -> String.length l > 12 && String.sub l 0 12 = "digest: sha1")
            lines));
  ]

let () =
  Alcotest.run "serve"
    [
      ("gateway", gateway_tests);
      ("determinism", determinism_tests);
      ("fuzz", fuzz_tests);
      ("link", link_tests);
      ("gating", gating_tests);
    ]
