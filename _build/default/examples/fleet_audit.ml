(* Fleet provisioning and audit — the full multi-stakeholder lifecycle.

   The manufacturer provisions four ECUs with per-device platform keys
   derived from its root secret, the operator deploys the engine and
   brake firmware to all of them, and the fleet goes into the field
   behind lossy radio uplinks.  Later, one device gets a backdoored
   engine firmware and another loses its brake firmware entirely.  A
   single fleet audit — attestation challenges over the network, retried
   through frame loss — pinpoints both, per component.

   Run: dune exec examples/fleet_audit.exe *)

open Tytan_core
open Tytan_provision
module Tasks = Tytan_tasks.Task_lib

let () =
  (* Manufacturing time. *)
  let registry = Registry.create ~master:(Bytes.of_string "acme-root-secret-2015") in
  let engine_fw = Tasks.counter () in
  let brake_fw = Tasks.counter ~stack_size:768 () in
  Registry.set_manifest registry
    [
      ("engine-fw", Rtm.identity_of_telf engine_fw);
      ("brake-fw", Rtm.identity_of_telf brake_fw);
    ];
  let serials = [ "ecu-001"; "ecu-002"; "ecu-003"; "ecu-004" ] in
  let devices =
    List.mapi
      (fun i serial ->
        Fleet.manufacture registry ~serial ~loss_percent:35 ~link_seed:(i + 3) ())
      serials
  in
  Printf.printf "manufactured %d devices with per-device keys\n"
    (List.length devices);

  (* Deployment. *)
  List.iter
    (fun d ->
      ignore (Result.get_ok (Fleet.deploy d ~name:"engine-fw" engine_fw));
      ignore (Result.get_ok (Fleet.deploy d ~name:"brake-fw" brake_fw)))
    devices;
  print_endline "deployed engine-fw and brake-fw fleet-wide";

  (* The field is not kind. *)
  let nth n = List.nth devices n in
  (* ecu-002: engine firmware replaced by a backdoored build. *)
  let victim = nth 1 in
  (match
     Tytan_rtos.Kernel.find_task_by_name
       (Platform.kernel (Fleet.platform victim))
       "engine-fw"
   with
  | Some tcb ->
      Platform.unload (Fleet.platform victim) tcb;
      let backdoored =
        let image = Bytes.copy engine_fw.Tytan_telf.Telf.image in
        Bytes.blit (Tytan_machine.Isa.encode Tytan_machine.Isa.Nop) 0 image 200 8;
        { engine_fw with Tytan_telf.Telf.image }
      in
      ignore (Result.get_ok (Fleet.deploy victim ~name:"engine-fw" backdoored))
  | None -> ());
  (* ecu-004: brake firmware crashed out and was never reloaded. *)
  (match
     Tytan_rtos.Kernel.find_task_by_name
       (Platform.kernel (Fleet.platform (nth 3)))
       "brake-fw"
   with
  | Some tcb -> Platform.unload (Fleet.platform (nth 3)) tcb
  | None -> ());
  print_endline "— time passes; ecu-002 is backdoored, ecu-004 lost brake-fw —";

  (* The audit. *)
  let reports = Fleet.audit_fleet registry devices ~max_attempts:30 () in
  print_endline "fleet audit (35% uplink loss):";
  List.iter (fun r -> Format.printf "%a@." Fleet.pp_report r) reports;
  let bad = List.filter (fun r -> not (Fleet.healthy r)) reports in
  Printf.printf "=> %d/%d devices need attention: %s\n" (List.length bad)
    (List.length reports)
    (String.concat ", " (List.map (fun r -> r.Fleet.device_serial) bad))
