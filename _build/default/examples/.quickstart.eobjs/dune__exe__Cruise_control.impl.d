examples/cruise_control.ml: Cpu Cycles Devices Format Heap Kernel Option Platform Printf Result Rtm String Tcb Tytan_core Tytan_machine Tytan_rtos Tytan_tasks
