examples/remote_attestation.ml: Attestation Bytes Option Platform Printf Result Rtm Task_id Tytan_core Tytan_machine Tytan_tasks Tytan_telf
