examples/tasklang_alarm.mli:
