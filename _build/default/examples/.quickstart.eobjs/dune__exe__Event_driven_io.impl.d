examples/event_driven_io.ml: Assembler Cpu Devices Ipc Isa Kernel Option Platform Printf Result Rtm Task_id Tcb Toolchain Tytan_core Tytan_machine Tytan_rtos Tytan_tasks Tytan_telf Word
