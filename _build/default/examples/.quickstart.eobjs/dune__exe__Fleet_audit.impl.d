examples/fleet_audit.ml: Bytes Fleet Format List Platform Printf Registry Result Rtm String Tytan_core Tytan_machine Tytan_provision Tytan_rtos Tytan_tasks Tytan_telf
