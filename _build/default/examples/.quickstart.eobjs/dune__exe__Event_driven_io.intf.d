examples/event_driven_io.mli:
