examples/fleet_audit.mli:
