examples/tasklang_alarm.ml: Ast Bytes Compile Cpu Cycles Disasm Format Isa List Option Platform Printf Result Rtm Task_id Tcb Tytan_core Tytan_lang Tytan_machine Tytan_rtos Tytan_telf
