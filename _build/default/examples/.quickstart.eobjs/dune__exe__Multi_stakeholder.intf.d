examples/multi_stakeholder.mli:
