examples/quickstart.ml: Access Assembler Attestation Bytes Cpu Format Isa Kernel Option Platform Printf Rtm Task_id Tcb Toolchain Tytan_core Tytan_eampu Tytan_machine Tytan_rtos Tytan_telf
