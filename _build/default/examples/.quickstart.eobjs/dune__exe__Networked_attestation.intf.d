examples/networked_attestation.mli:
