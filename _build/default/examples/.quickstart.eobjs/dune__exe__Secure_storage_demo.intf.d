examples/secure_storage_demo.mli:
