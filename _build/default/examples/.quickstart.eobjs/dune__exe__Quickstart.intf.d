examples/quickstart.mli:
