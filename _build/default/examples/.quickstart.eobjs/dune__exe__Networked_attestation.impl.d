examples/networked_attestation.ml: Attestation Bytes Cosim Link Option Platform Printf Result Rtm Tytan_core Tytan_machine Tytan_netsim Tytan_rtos Tytan_tasks Tytan_telf Verifier
