examples/secure_storage_demo.ml: Bytes Option Platform Printf Result Rtm Secure_storage Task_id Tytan_core Tytan_machine Tytan_tasks
