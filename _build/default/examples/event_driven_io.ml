(* Event-driven I/O: reacting to "an arriving network package".

   A CAN controller raises an interrupt for every received frame.  The
   kernel's deferred handler drains the controller's FIFO into an RT
   queue; a dispatcher task blocks on that queue and forwards safety-
   relevant frames to a secure brake task over authenticated IPC.  Frames
   arrive in bursts (as buses do) while a periodic engine task keeps its
   1.5 kHz rate throughout.

   Run: dune exec examples/event_driven_io.exe *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let can_base = 0xF600_0000

let () =
  let platform = Platform.create () in
  let rtm = Option.get (Platform.rtm platform) in
  let kernel = Platform.kernel platform in
  let cell tcb telf i =
    let eip =
      if tcb.Tcb.secure then Rtm.code_eip rtm else Kernel.code_eip kernel
    in
    Cpu.with_firmware (Platform.cpu platform) ~eip (fun () ->
        Cpu.load32 (Platform.cpu platform)
          (tcb.Tcb.region_base + Tasks.data_cell_offset telf + (4 * i)))
  in

  (* The secure brake task counts commands it was sent over IPC. *)
  let brake_telf = Tasks.ipc_receiver () in
  let brake = Result.get_ok (Platform.load_blocking platform ~name:"brake" brake_telf) in
  let brake_id = (Option.get (Rtm.find_by_tcb rtm brake)).Rtm.id in

  (* A periodic engine task that must never miss its beat. *)
  let engine_telf = Tasks.counter () in
  let engine =
    Result.get_ok
      (Platform.load_blocking platform ~name:"engine" ~priority:5 engine_telf)
  in

  (* The CAN controller, its IRQ, and the queue the handler fills. *)
  let can =
    Platform.attach_rx_fifo platform ~name:"can0" ~base:can_base ~irq:1
      ~capacity:16
  in
  let qid = Kernel.create_queue kernel ~capacity:16 in
  let dropped = Platform.route_rx_to_queue platform can ~queue_id:qid in

  (* The dispatcher: blocks on the queue; frames ≥ 0x100 are braking
     commands and are forwarded to the secure brake task. *)
  let lo, hi = Task_id.to_words brake_id in
  let dispatcher_prog =
    Toolchain.normal_program ~main:(fun p ->
        let open Isa in
        Assembler.label p "main";
        Assembler.label p "loop";
        Assembler.instr p (Movi (0, qid));
        Assembler.instr p (Movi (2, Word.of_int Kernel.no_timeout));
        Assembler.instr p (Swi 9);
        Assembler.instr p (Cmpi (1, 0));
        Assembler.jnz_label p "loop";
        Assembler.movi_label p ~rd:4 "frames";
        Assembler.instr p (Ldw (5, 4, 0));
        Assembler.instr p (Addi (5, 5, 1));
        Assembler.instr p (Stw (4, 0, 5));
        Assembler.instr p (Cmpi (0, 0x100));
        Assembler.jlt_label p "loop";
        (* braking command: forward over secure IPC (m0 = frame) *)
        Assembler.instr p (Movi (8, lo));
        Assembler.instr p (Movi (9, hi));
        Assembler.instr p (Movi (10, Ipc.mode_sync));
        Assembler.instr p (Swi Ipc.swi_send);
        Assembler.jmp_label p "loop";
        Assembler.begin_data p;
        Assembler.label p "frames";
        Assembler.word p 0)
  in
  let dispatcher_telf = Tytan_telf.Builder.of_program ~stack_size:512 dispatcher_prog in
  let dispatcher =
    Result.get_ok
      (Platform.load_blocking platform ~name:"dispatcher" ~secure:false
         ~priority:3 dispatcher_telf)
  in

  (* Traffic: bursts of bus chatter with occasional brake commands. *)
  let injected = ref 0 in
  let brake_cmds = ref 0 in
  for burst = 1 to 8 do
    Platform.run_ticks platform 5;
    for i = 0 to 5 do
      let frame =
        if (burst + i) mod 4 = 0 then begin
          incr brake_cmds;
          0x100 + burst
        end
        else burst
      in
      if Devices.Rx_fifo.inject can frame then incr injected
    done
  done;
  Platform.run_ticks platform 10;

  Printf.printf "injected %d frames in 8 bursts (%d were brake commands)\n"
    !injected !brake_cmds;
  Printf.printf "dispatcher consumed %d frames (device dropped %d, queue dropped %d)\n"
    (cell dispatcher dispatcher_telf 0)
    (Devices.Rx_fifo.dropped can) !dropped;
  Printf.printf "brake task received %d authenticated commands\n"
    (cell brake brake_telf 0);
  Printf.printf "engine task: %d activations over %d ticks — no deadline missed\n"
    (cell engine engine_telf 0)
    (Kernel.tick_count kernel)
