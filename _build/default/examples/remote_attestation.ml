(* Remote attestation between a device and an off-device verifier.

   The verifier was provisioned with the platform key Kp by the device
   manufacturer and holds the reference binary of the task it cares
   about.  The protocol:

     verifier            device (Remote Attest component)
        |--- nonce --------->|
        |<-- id, MAC(Ka, nonce|id) --- |
        verify: MAC ok? id = H(reference binary)?

   The example runs the protocol against a genuine task, then against a
   backdoored build of the same task, and finally shows per-provider
   attestation keys (paper footnote 2) keeping two stakeholders'
   verification paths independent.

   Run: dune exec examples/remote_attestation.exe *)

open Tytan_core
module Tasks = Tytan_tasks.Task_lib

(* The verifier side: everything it knows is Kp and the reference
   binary.  It never trusts the device's claims, only the MAC. *)
module Verifier = struct
  type t = {
    ka : bytes;
    reference_id : Task_id.t;
    mutable nonce_counter : int;
  }

  let create ~platform_key ~reference_binary =
    {
      ka = Attestation.derive_ka ~platform_key;
      reference_id = Rtm.identity_of_telf reference_binary;
      nonce_counter = 0;
    }

  let fresh_nonce t =
    t.nonce_counter <- t.nonce_counter + 1;
    Bytes.of_string (Printf.sprintf "nonce-%08d" t.nonce_counter)

  let check t ~nonce (report : Attestation.report) =
    Attestation.verify ~ka:t.ka report ~expected:t.reference_id ~nonce
end

let () =
  let platform = Platform.create () in
  let attestation = Option.get (Platform.attestation platform) in
  let rtm = Option.get (Platform.rtm platform) in
  let genuine = Tasks.counter () in
  let verifier =
    Verifier.create
      ~platform_key:(Platform.config platform).Platform.platform_key
      ~reference_binary:genuine
  in

  (* Scenario 1: the genuine task is running. *)
  let task = Result.get_ok (Platform.load_blocking platform ~name:"sensor-fw" genuine) in
  Platform.run_ticks platform 5;
  let id = (Option.get (Rtm.find_by_tcb rtm task)).Rtm.id in
  let nonce = Verifier.fresh_nonce verifier in
  (match Attestation.remote_attest attestation ~id ~nonce with
  | Some report ->
      Printf.printf "genuine task:    id=%s  verifier accepts: %b\n"
        (Task_id.to_hex report.Attestation.id)
        (Verifier.check verifier ~nonce report)
  | None -> print_endline "genuine task: no report (not loaded?)");

  (* Replay defence: the old report must not satisfy a new challenge. *)
  let old_report =
    Option.get (Attestation.remote_attest attestation ~id ~nonce)
  in
  let nonce2 = Verifier.fresh_nonce verifier in
  Printf.printf "replayed report: verifier accepts: %b\n"
    (Verifier.check verifier ~nonce:nonce2 old_report);

  (* Scenario 2: a backdoored build replaces the task. *)
  Platform.unload platform task;
  let backdoored =
    let image = Bytes.copy genuine.Tytan_telf.Telf.image in
    Bytes.blit (Tytan_machine.Isa.encode Tytan_machine.Isa.Nop) 0 image 200 8;
    { genuine with Tytan_telf.Telf.image }
  in
  let task' =
    Result.get_ok (Platform.load_blocking platform ~name:"sensor-fw" backdoored)
  in
  Platform.run_ticks platform 5;
  let id' = (Option.get (Rtm.find_by_tcb rtm task')).Rtm.id in
  let nonce3 = Verifier.fresh_nonce verifier in
  (match Attestation.remote_attest attestation ~id:id' ~nonce:nonce3 with
  | Some report ->
      Printf.printf "backdoored task: id=%s  verifier accepts: %b\n"
        (Task_id.to_hex report.Attestation.id)
        (Verifier.check verifier ~nonce:nonce3 report)
  | None -> print_endline "backdoored task: no report");

  (* Scenario 3: per-provider keys.  The component supplier verifies its
     own task under its provider key; the car manufacturer's key cannot
     forge or verify the supplier's reports. *)
  let kp = (Platform.config platform).Platform.platform_key in
  let supplier_ka = Attestation.derive_provider_ka ~platform_key:kp ~provider:"supplier" in
  let oem_ka = Attestation.derive_provider_ka ~platform_key:kp ~provider:"oem" in
  let nonce4 = Bytes.of_string "supplier-challenge" in
  let report =
    Option.get
      (Attestation.remote_attest_for_provider attestation ~provider:"supplier"
         ~id:id' ~nonce:nonce4)
  in
  Printf.printf "provider keys:   supplier accepts: %b, OEM key rejects: %b\n"
    (Attestation.verify ~ka:supplier_ka report ~expected:id' ~nonce:nonce4)
    (not (Attestation.verify ~ka:oem_ka report ~expected:id' ~nonce:nonce4));
  Printf.printf "reports issued by the device: %d\n"
    (Attestation.reports_issued attestation)
