(* The paper's Figure 2 use case: a simulated adaptive cruise control.

   Task t1 permanently monitors the accelerator-pedal sensor; task t2 is
   loaded on demand when the driver activates cruise control and monitors
   the radar; task t0 (the engine-control software) merges their reports
   over secure IPC and drives the actuator.  All three are secure tasks at
   1.5 kHz.  Loading t2 takes longer than one scheduling cycle, so it
   would stall t0 and t1 if it were not interruptible — this example
   reports the live rates through all three phases (Table 1).

   Run: dune exec examples/cruise_control.exe *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let pedal_addr = 0xF100_0000
let radar_addr = 0xF100_0010
let actuator_addr = 0xF100_0020

let khz ~events ~cycles =
  float_of_int events /. (float_of_int cycles /. float_of_int Cycles.clock_hz)
  /. 1000.0

let () =
  let platform = Platform.create () in
  (* Scripted physics: pedal position and lead-vehicle distance vary with
     simulated time. *)
  ignore
    (Platform.attach_sensor platform ~name:"pedal" ~base:pedal_addr
       ~sample:(fun ~cycles -> 40 + (cycles / 1_000_000 mod 20)));
  ignore
    (Platform.attach_sensor platform ~name:"radar" ~base:radar_addr
       ~sample:(fun ~cycles -> 10 + (cycles / 2_000_000 mod 10)));
  let actuator = Platform.attach_console platform ~base:actuator_addr in

  let rtm = Option.get (Platform.rtm platform) in
  let clock = Platform.clock platform in

  (* t0: engine control, highest priority. *)
  let t0_telf = Tasks.cruise_controller ~actuator_addr in
  let t0 = Result.get_ok (Platform.load_blocking platform ~name:"t0" ~priority:5 t0_telf) in
  let t0_id = (Option.get (Rtm.find_by_tcb rtm t0)).Rtm.id in

  (* t1: pedal monitor, loaded at ignition. *)
  let t1_telf = Tasks.sensor_feeder ~sensor_addr:pedal_addr ~controller:t0_id ~tag:1 () in
  let t1 = Result.get_ok (Platform.load_blocking platform ~name:"t1" ~priority:4 t1_telf) in

  let cell tcb telf i =
    let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
    Cpu.with_firmware (Platform.cpu platform) ~eip:(Rtm.code_eip rtm) (fun () ->
        Cpu.load32 (Platform.cpu platform)
          (entry.Rtm.base + Tasks.data_cell_offset telf + (4 * i)))
  in
  let report_phase name ticks =
    let s1 = cell t1 t1_telf 0 and s0 = cell t0 t0_telf 0 in
    let c = Cycles.now clock in
    Platform.run_ticks platform ticks;
    let dc = Cycles.now clock - c in
    Printf.printf "%-28s t1 %.2f kHz   t0 %.2f kHz\n" name
      (khz ~events:(cell t1 t1_telf 0 - s1) ~cycles:dc)
      (khz ~events:(cell t0 t0_telf 0 - s0) ~cycles:dc)
  in

  Platform.run_ticks platform 5;
  print_endline "— driving without cruise control —";
  report_phase "steady state" 60;

  (* Driver activates cruise control: t2 (radar monitor) is loaded on
     demand.  The binary is realistic-sized so loading spans many ticks. *)
  print_endline "— driver activates adaptive cruise control —";
  let t2_telf =
    Tasks.sensor_feeder ~sensor_addr:radar_addr ~controller:t0_id ~tag:2
      ~pad_instructions:1385 ()
  in
  Platform.submit_load platform ~name:"t2" ~priority:4 t2_telf;
  let load_start = Cycles.now clock in
  let s1 = cell t1 t1_telf 0 and s0 = cell t0 t0_telf 0 in
  let rec wait_for_t2 guard =
    if guard = 0 then failwith "t2 never loaded"
    else
      match Kernel.find_task_by_name (Platform.kernel platform) "t2" with
      | Some tcb -> tcb
      | None ->
          Platform.run_ticks platform 1;
          wait_for_t2 (guard - 1)
  in
  let t2 = wait_for_t2 2000 in
  let load_cycles = Cycles.now clock - load_start in
  Printf.printf "%-28s t1 %.2f kHz   t0 %.2f kHz   (load took %.1f ms)\n"
    "while loading t2"
    (khz ~events:(cell t1 t1_telf 0 - s1) ~cycles:load_cycles)
    (khz ~events:(cell t0 t0_telf 0 - s0) ~cycles:load_cycles)
    (Cycles.to_ms load_cycles);

  print_endline "— cruise control active —";
  let s2 = cell t2 t2_telf 0 in
  let c = Cycles.now clock in
  report_phase "with radar task running" 60;
  let dc = Cycles.now clock - c in
  Printf.printf "%-28s t2 %.2f kHz\n" "radar monitor rate"
    (khz ~events:(cell t2 t2_telf 0 - s2) ~cycles:dc);

  Printf.printf "pedal=%d radar=%d -> last engine commands issued: %d bytes\n"
    (cell t0 t0_telf 1) (cell t0 t0_telf 2)
    (String.length (Devices.Console.contents actuator));

  (* Driver deactivates cruise control: t2 is unloaded, memory reclaimed. *)
  print_endline "— driver deactivates cruise control —";
  Platform.unload platform t2;
  report_phase "back to steady state" 30;
  Printf.printf "t2 state: %s; loader heap allocations: %d\n"
    (Format.asprintf "%a" Tcb.pp_state t2.Tcb.state)
    (Heap.allocation_count (Platform.heap platform))
