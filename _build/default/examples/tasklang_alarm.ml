(* Writing tasks in Tasklang instead of assembler.

   An overspeed monitor samples a wheel-speed sensor every tick and sends
   an alarm over secure IPC whenever the reading crosses a threshold; a
   logger task (also Tasklang, using an on_message handler) counts and
   sums the alarms.  The binaries come out of the same pipeline as
   everything else — relocatable TELF images, measured by the RTM,
   isolated by the EA-MPU.

   Run: dune exec examples/tasklang_alarm.exe *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
open Tytan_lang

let speed_sensor = 0xF400_0000
let threshold = 90

let logger_program =
  let open Ast in
  program
    ~globals:[ ("alarms", 0); ("worst", 0) ]
    ~on_message:
      [
        Assign ("alarms", Binop (Add, Var "alarms", Int 1));
        If
          ( Binop (Ge, Inbox_word 0, Var "worst"),
            [ Assign ("worst", Inbox_word 0) ],
            [] );
        Clear_inbox;
      ]
    [ While (Int 1, [ Delay (Int 50) ]) ]

let monitor_program ~logger =
  let open Ast in
  program
    ~globals:[ ("samples", 0); ("over", 0) ]
    [
      While
        ( Int 1,
          [
            Assign ("samples", Binop (Add, Var "samples", Int 1));
            If
              ( Binop (Ge, Load (Int speed_sensor), Int threshold),
                [
                  Assign ("over", Binop (Add, Var "over", Int 1));
                  Send
                    {
                      payload = [ Load (Int speed_sensor) ];
                      receiver = logger;
                      sync = true;
                    };
                ],
                [] );
            Delay (Int 1);
          ] );
    ]

let () =
  let platform = Platform.create () in
  (* The vehicle accelerates and brakes on a sawtooth. *)
  ignore
    (Platform.attach_sensor platform ~name:"wheel-speed" ~base:speed_sensor
       ~sample:(fun ~cycles -> 60 + (cycles / 400_000 mod 40)));
  let rtm = Option.get (Platform.rtm platform) in

  let logger_telf = Compile.to_telf logger_program in
  let logger =
    Result.get_ok (Platform.load_blocking platform ~name:"logger" logger_telf)
  in
  let logger_id = (Option.get (Rtm.find_by_tcb rtm logger)).Rtm.id in
  Printf.printf "logger loaded, identity %s\n" (Task_id.to_hex logger_id);

  let monitor_telf = Compile.to_telf (monitor_program ~logger:logger_id) in
  Printf.printf "monitor compiled from Tasklang: %s\n"
    (Format.asprintf "%a" Tytan_telf.Telf.pp monitor_telf);
  let monitor =
    Result.get_ok
      (Platform.load_blocking platform ~name:"monitor" ~priority:4 monitor_telf)
  in

  Platform.run_ticks platform 200;

  let word tcb telf i =
    Cpu.with_firmware (Platform.cpu platform) ~eip:(Rtm.code_eip rtm)
      (fun () ->
        Cpu.load32 (Platform.cpu platform)
          (tcb.Tcb.region_base + telf.Tytan_telf.Telf.text_size + (4 * i)))
  in
  Printf.printf "after 200 ticks (%.0f ms simulated):\n"
    (Cycles.to_ms (Cycles.now (Platform.clock platform)));
  Printf.printf "  monitor: %d samples, %d overspeed events\n"
    (word monitor monitor_telf 0)
    (word monitor monitor_telf 1);
  Printf.printf "  logger:  %d alarms received, worst reading %d km/h\n"
    (word logger logger_telf 0)
    (word logger logger_telf 1);

  (* The generated code is ordinary text — show the first instructions. *)
  print_endline "first instructions of the compiled monitor:";
  let lines =
    Disasm.of_bytes
      (Bytes.sub monitor_telf.Tytan_telf.Telf.image 0 (12 * Isa.width))
  in
  List.iter (fun l -> Format.printf "  %a@." Disasm.pp_line l) lines
