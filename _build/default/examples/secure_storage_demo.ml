(* Sealed storage bound to task identity.

   A secure task seals a calibration value through the secure-storage
   service (reached over secure IPC, so the service knows exactly who is
   asking).  The stored blob is encrypted under Kt = HMAC(id_t | Kp):
   after a firmware update changes the task's binary — and therefore its
   identity — the updated task can no longer unseal the old data, while
   reinstalling the original binary can.

   Run: dune exec examples/secure_storage_demo.exe *)

open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let () =
  let platform = Platform.create () in
  let storage_id = Option.get (Platform.storage_service_id platform) in
  let storage = Option.get (Platform.storage platform) in
  let rtm = Option.get (Platform.rtm platform) in
  let cell tcb telf i =
    let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
    Tytan_machine.Cpu.with_firmware (Platform.cpu platform)
      ~eip:(Rtm.code_eip rtm) (fun () ->
        Tytan_machine.Cpu.load32 (Platform.cpu platform)
          (entry.Rtm.base + Tasks.data_cell_offset telf + (4 * i)))
  in

  (* Version 1 of the calibration task seals value 7777 into slot 5,
     then reads it back — all from guest code over IPC. *)
  let v1 = Tasks.storage_client ~storage:storage_id ~slot:5 ~value:7777 in
  let task1 = Result.get_ok (Platform.load_blocking platform ~name:"calib-v1" v1) in
  Platform.run_ticks platform 10;
  Printf.printf "v1: phase=%d readback=%d status=%d (0 = ok)\n"
    (cell task1 v1 0) (cell task1 v1 1) (cell task1 v1 2);
  let v1_id = (Option.get (Rtm.find_by_tcb rtm task1)).Rtm.id in
  Platform.unload platform task1;

  (* An "updated firmware" tries to read the same slot.  Its binary
     differs (it would seal 9999), so its identity — and hence its task
     key — differ: the unseal fails. *)
  let v2 = Tasks.storage_client ~storage:storage_id ~slot:5 ~value:9999 in
  let task2 = Result.get_ok (Platform.load_blocking platform ~name:"calib-v2" v2) in
  let v2_id = (Option.get (Rtm.find_by_tcb rtm task2)).Rtm.id in
  Printf.printf "identities differ: %b (v1=%s, v2=%s)\n"
    (not (Task_id.equal v1_id v2_id))
    (Task_id.to_hex v1_id) (Task_id.to_hex v2_id);
  (* Ask the host API directly what v2 would get from v1's slot. *)
  (match Secure_storage.unseal storage ~owner:v2_id ~slot:5 with
  | Some _ -> print_endline "BUG: v2 unsealed v1's data"
  | None -> print_endline "v2 cannot unseal v1's data (key bound to identity)");
  Platform.unload platform task2;

  (* Reinstalling the original binary restores access: same binary, same
     identity, same Kt. *)
  let task3 = Result.get_ok (Platform.load_blocking platform ~name:"calib-v1-again" v1) in
  let v3_id = (Option.get (Rtm.find_by_tcb rtm task3)).Rtm.id in
  (match Secure_storage.unseal storage ~owner:v3_id ~slot:5 with
  | Some plaintext ->
      Printf.printf "reinstalled v1 unseals its data: first word = %ld\n"
        (Bytes.get_int32_le plaintext 0)
  | None -> print_endline "BUG: reinstalled v1 cannot unseal");

  Printf.printf "storage stats: %d slots used, %d seals, %d rejected unseals\n"
    (Secure_storage.slots_used storage)
    (Secure_storage.seals storage)
    (Secure_storage.unseal_failures storage)
