(* Multiple mutually distrusting stakeholders on one ECU.

   The component supplier ships a proprietary injection-control task; the
   car manufacturer (OEM) ships a logging task; a third party manages to
   get a malicious diagnostic task installed.  TyTAN keeps them apart:

   - the supplier's and OEM's tasks run and communicate over secure IPC
     with authenticated sender identities — neither can spoof the other;
   - the malicious task is killed the moment it probes another task's
     memory, without disturbing anyone's deadlines;
   - an exclusive MMIO grant gives only the supplier's task access to the
     injector hardware.

   Run: dune exec examples/multi_stakeholder.exe *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let injector_addr = 0xF200_0000

let () =
  let platform = Platform.create () in
  let injector = Platform.attach_console platform ~base:injector_addr in
  let rtm = Option.get (Platform.rtm platform) in
  let cell tcb telf i =
    let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
    Cpu.with_firmware (Platform.cpu platform) ~eip:(Rtm.code_eip rtm)
      (fun () ->
        Cpu.load32 (Platform.cpu platform)
          (entry.Rtm.base + Tasks.data_cell_offset telf + (4 * i)))
  in

  (* The OEM's logger: a secure IPC receiver accumulating reports. *)
  let logger_telf = Tasks.ipc_receiver () in
  let logger =
    Result.get_ok
      (Platform.load_blocking platform ~name:"oem-logger" ~provider:"oem"
         logger_telf)
  in
  let logger_id = (Option.get (Rtm.find_by_tcb rtm logger)).Rtm.id in

  (* The supplier's injection controller: writes the injector and reports
     to the OEM logger every tick over secure IPC. *)
  let lo, hi = Task_id.to_words logger_id in
  let controller_prog =
    Toolchain.secure_program
      ~main:(fun p ->
        let open Isa in
        Assembler.label p "main";
        Assembler.label p "loop";
        (* drive the injector *)
        Assembler.instr p (Movi (6, injector_addr));
        Assembler.instr p (Movi (7, 0x42));
        Assembler.instr p (Stw (6, 0, 7));
        (* report to the OEM logger over secure IPC *)
        Assembler.instr p (Movi (0, 88));
        Assembler.instr p (Movi (8, lo));
        Assembler.instr p (Movi (9, hi));
        Assembler.instr p (Movi (10, Ipc.mode_sync));
        Assembler.instr p (Swi Ipc.swi_send);
        Assembler.movi_label p ~rd:4 "sent";
        Assembler.instr p (Ldw (5, 4, 0));
        Assembler.instr p (Addi (5, 5, 1));
        Assembler.instr p (Stw (4, 0, 5));
        Assembler.instr p (Movi (0, 1));
        Assembler.instr p (Swi 2);
        Assembler.jmp_label p "loop";
        Assembler.begin_data p;
        Assembler.label p "sent";
        Assembler.word p 0)
      ()
  in
  let controller_telf =
    Tytan_telf.Builder.of_program ~stack_size:512 controller_prog
  in
  let controller =
    Result.get_ok
      (Platform.load_blocking platform ~name:"supplier-controller"
         ~provider:"supplier" controller_telf)
  in
  (* Only the supplier's task may touch the injector hardware. *)
  (match
     Platform.restrict_mmio_to_task platform controller ~base:injector_addr
       ~size:4
   with
  | Ok () -> print_endline "injector MMIO window granted to supplier-controller only"
  | Error e -> failwith e);

  Platform.run_ticks platform 20;
  Printf.printf "logger received %d authenticated reports (sender id low word 0x%X)\n"
    (cell logger logger_telf 0) (cell logger logger_telf 2);
  let lo, _ = Task_id.to_words (Option.get (Rtm.find_by_tcb rtm controller)).Rtm.id in
  Printf.printf "matches the supplier controller's identity: %b\n"
    (cell logger logger_telf 2 = lo);

  (* The malicious diagnostic task probes the supplier's memory... *)
  let controller_entry = Option.get (Rtm.find_by_tcb rtm controller) in
  let probe_addr = controller_entry.Rtm.base + Tasks.data_cell_offset controller_telf in
  let mallory_telf = Tasks.spy ~victim_addr:probe_addr in
  let mallory =
    Result.get_ok
      (Platform.load_blocking platform ~name:"mallory" ~secure:false
         ~provider:"aftermarket" mallory_telf)
  in
  Platform.run_ticks platform 5;
  Printf.printf "mallory (memory probe): %s\n"
    (Format.asprintf "%a" Tcb.pp_state mallory.Tcb.state);

  (* ...and a second one tries to drive the injector directly. *)
  let mallory2_prog =
    Toolchain.normal_program ~main:(fun p ->
        Assembler.label p "main";
        Assembler.instr p (Isa.Movi (6, injector_addr));
        Assembler.instr p (Isa.Movi (7, 0xFF));
        Assembler.instr p (Isa.Stw (6, 0, 7));
        Assembler.label p "rest";
        Assembler.jmp_label p "rest")
  in
  let mallory2 =
    Result.get_ok
      (Platform.load_blocking platform ~name:"mallory2" ~secure:false
         (Tytan_telf.Builder.of_program ~stack_size:256 mallory2_prog))
  in
  Platform.run_ticks platform 5;
  Printf.printf "mallory2 (injector write): %s\n"
    (Format.asprintf "%a" Tcb.pp_state mallory2.Tcb.state);

  (* Deadlines held throughout: the supplier's controller kept reporting. *)
  let before = cell logger logger_telf 0 in
  Platform.run_ticks platform 20;
  Printf.printf "controller still reporting after the attacks: +%d reports in 20 ticks\n"
    (cell logger logger_telf 0 - before);
  Printf.printf "injector received %d legitimate commands\n"
    (String.length (Devices.Console.contents injector));

  (* Each stakeholder attests its own task with its own key. *)
  let attestation = Option.get (Platform.attestation platform) in
  let kp = (Platform.config platform).Platform.platform_key in
  let check ~provider ~task_name =
    match Kernel.find_task_by_name (Platform.kernel platform) task_name with
    | None -> Printf.printf "%s: not loaded\n" task_name
    | Some tcb ->
        let id = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id in
        let nonce = Bytes.of_string (provider ^ "-challenge") in
        let report =
          Option.get
            (Attestation.remote_attest_for_provider attestation ~provider ~id ~nonce)
        in
        let ka = Attestation.derive_provider_ka ~platform_key:kp ~provider in
        Printf.printf "%s attested by %s: %b\n" task_name provider
          (Attestation.verify ~ka report ~expected:id ~nonce)
  in
  check ~provider:"supplier" ~task_name:"supplier-controller";
  check ~provider:"oem" ~task_name:"oem-logger"
