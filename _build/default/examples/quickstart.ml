(* Quickstart: boot a TyTAN platform, write a small secure task in the
   assembler DSL, load it (with measurement), watch it run under the
   1.5 kHz tick, attest it, and read the result it publishes.

   Run: dune exec examples/quickstart.exe *)

open Tytan_machine
open Tytan_rtos
open Tytan_core

let () =
  (* 1. Boot: secure boot verifies the trusted components, the EA-MPU is
     configured and enabled, the scheduler starts with the idle and
     loader-service tasks. *)
  let platform = Platform.create () in
  Printf.printf "Booted TyTAN: OS uses %d bytes, EA-MPU enabled: %b\n"
    (Platform.os_memory_bytes platform)
    (Tytan_eampu.Eampu.enabled (Option.get (Platform.eampu platform)));

  (* 2. Write a secure task: every tick, increment a counter in its data
     section.  The TyTAN tool chain adds the standard entry routine. *)
  let program =
    Toolchain.secure_program
      ~main:(fun p ->
        Assembler.label p "main";
        Assembler.label p "loop";
        Assembler.movi_label p ~rd:4 "ticks_seen";
        Assembler.instr p (Isa.Ldw (5, 4, 0));
        Assembler.instr p (Isa.Addi (5, 5, 1));
        Assembler.instr p (Isa.Stw (4, 0, 5));
        Assembler.instr p (Isa.Movi (0, 1));
        Assembler.instr p (Isa.Swi 2) (* delay one tick *);
        Assembler.jmp_label p "loop";
        Assembler.begin_data p;
        Assembler.label p "ticks_seen";
        Assembler.word p 0)
      ()
  in
  let binary = Tytan_telf.Builder.of_program ~stack_size:512 program in
  Printf.printf "Built a relocatable binary: %s\n"
    (Format.asprintf "%a" Tytan_telf.Telf.pp binary);

  (* 3. Load it: allocate, copy, relocate, protect, measure, schedule. *)
  let task =
    match Platform.load_blocking platform ~name:"heartbeat" binary with
    | Ok tcb -> tcb
    | Error e -> failwith e
  in
  let rtm = Option.get (Platform.rtm platform) in
  let entry = Option.get (Rtm.find_by_tcb rtm task) in
  Printf.printf "Loaded at 0x%X with identity %s\n" entry.Rtm.base
    (Task_id.to_hex entry.Rtm.id);

  (* 4. Run for 100 ticks of simulated time (~66 ms at 48 MHz). *)
  Platform.run_ticks platform 100;
  let cpu = Platform.cpu platform in
  let counter_addr = entry.Rtm.base + binary.Tytan_telf.Telf.text_size in
  let ticks_seen =
    Cpu.with_firmware cpu ~eip:(Rtm.code_eip rtm) (fun () ->
        Cpu.load32 cpu counter_addr)
  in
  Printf.printf "After 100 ticks the task has run %d times\n" ticks_seen;

  (* 5. The OS cannot peek at the secure task's memory... *)
  (try
     ignore
       (Cpu.with_firmware cpu
          ~eip:(Kernel.code_eip (Platform.kernel platform))
          (fun () -> Cpu.load32 cpu counter_addr));
     print_endline "BUG: the OS read secure memory"
   with Access.Violation _ ->
     print_endline "The OS was denied access to the task's memory (EA-MPU)");

  (* 6. ...but a remote verifier can check exactly which binary runs. *)
  let attestation = Option.get (Platform.attestation platform) in
  let nonce = Bytes.of_string "verifier-nonce-1" in
  let report =
    Option.get (Attestation.remote_attest attestation ~id:entry.Rtm.id ~nonce)
  in
  let ka =
    Attestation.derive_ka
      ~platform_key:(Platform.config platform).Platform.platform_key
  in
  Printf.printf "Remote attestation verifies: %b\n"
    (Attestation.verify ~ka report ~expected:(Rtm.identity_of_telf binary) ~nonce);

  (* 7. Unload: the task's memory and protection rules are reclaimed. *)
  Platform.unload platform task;
  Printf.printf "Unloaded; task state is now %s\n"
    (Format.asprintf "%a" Tcb.pp_state task.Tcb.state)
