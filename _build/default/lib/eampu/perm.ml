type t = {
  read : bool;
  write : bool;
}

let r = { read = true; write = false }
let w = { read = false; write = true }
let rw = { read = true; write = true }
let none = { read = false; write = false }

let allows t = function
  | Tytan_machine.Access.Read -> t.read
  | Tytan_machine.Access.Write -> t.write
  | Tytan_machine.Access.Execute -> false

let pp ppf t =
  Format.fprintf ppf "%s%s"
    (if t.read then "r" else "-")
    (if t.write then "w" else "-")
