open Tytan_machine

type rule =
  | Exec of {
      region : Region.t;
      entry : Word.t option;
    }
  | Grant of {
      code : Region.t;
      data : Region.t;
      perm : Perm.t;
    }

type t = {
  slots : rule option array;
  mutable enabled : bool;
}

let default_slot_count = 18

let create ?(slots = default_slot_count) () =
  if slots <= 0 then invalid_arg "Eampu.create: need at least one slot";
  { slots = Array.make slots None; enabled = false }

let slot_count t = Array.length t.slots

let check_index t i =
  if i < 0 || i >= Array.length t.slots then
    invalid_arg (Printf.sprintf "Eampu: slot %d out of range" i)

let slot t i =
  check_index t i;
  t.slots.(i)

let set_slot t i rule =
  check_index t i;
  t.slots.(i) <- rule

let clear_slot t i = set_slot t i None
let enabled t = t.enabled
let enable t = t.enabled <- true

let iter_slots t f =
  Array.iteri (fun i -> function Some r -> f i r | None -> ()) t.slots

let used_slots t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.slots

let first_free_slot t =
  let n = Array.length t.slots in
  let rec scan i =
    if i >= n then None else if t.slots.(i) = None then Some i else scan (i + 1)
  in
  scan 0

let conflicts t candidate =
  (* Only executable regions must be pairwise disjoint: each belongs to
     exactly one protection domain.  Grants may reference any region —
     several principals legitimately hold grants over one task's memory
     (the task itself, the Int Mux, the IPC proxy, the RTM). *)
  let conflict existing =
    match (candidate, existing) with
    | Exec { region = a; _ }, Exec { region = b; _ } -> Region.overlaps a b
    | Grant _, Exec _ | Exec _, Grant _ | Grant _, Grant _ -> false
  in
  let found = ref [] in
  iter_slots t (fun i r -> if conflict r then found := (i, r) :: !found);
  List.rev !found

let exec_rule_covering t addr =
  let found = ref None in
  iter_slots t (fun _ rule ->
      match rule with
      | Exec { region; entry } when Region.contains region addr && !found = None
        ->
          found := Some (region, entry)
      | Exec _ | Grant _ -> ());
  !found

let check_execute t ~eip ~addr ~size =
  match exec_rule_covering t addr with
  | None ->
      Access.violation ~eip ~addr ~size ~kind:Access.Execute
        "no executable region covers this address"
  | Some (region, entry) -> (
      if Region.contains region eip then
        (* Sequential flow or internal jump within the same region. *)
        ()
      else
        match entry with
        | None -> ()
        | Some entry ->
            if not (Word.equal addr entry) then
              Access.violation ~eip ~addr ~size ~kind:Access.Execute
                (Format.asprintf
                   "region %a may only be entered at its entry point %a"
                   Region.pp region Word.pp entry))

let check_data t ~eip ~addr ~size ~kind =
  let protected_ = ref false in
  let granted = ref false in
  iter_slots t (fun _ rule ->
      match rule with
      | Grant g when Region.overlaps_range g.data addr size ->
          protected_ := true;
          if
            Region.contains g.code eip
            && Region.contains_range g.data addr size
            && Perm.allows g.perm kind
          then granted := true
      | Grant _ -> ()
      | Exec e when Region.overlaps_range e.region addr size ->
          (* Code regions are never writable and only readable by
             themselves (the RTM gets an explicit Grant when measuring). *)
          protected_ := true;
          if kind = Access.Read && Region.contains e.region eip then
            granted := true
      | Exec _ -> ());
  if !protected_ && not !granted then
    Access.violation ~eip ~addr ~size ~kind "no EA-MPU rule grants this access"

let check t ~eip ~addr ~size ~kind =
  if t.enabled then
    match kind with
    | Access.Execute -> check_execute t ~eip ~addr ~size
    | Access.Read | Access.Write -> check_data t ~eip ~addr ~size ~kind

let pp ppf t =
  Format.fprintf ppf "@[<v>EA-MPU (%s, %d/%d slots used)"
    (if t.enabled then "enabled" else "disabled")
    (used_slots t) (slot_count t);
  iter_slots t (fun i rule ->
      match rule with
      | Exec { region; entry } ->
          Format.fprintf ppf "@ %2d: exec %a%a" i Region.pp region
            (fun ppf -> function
              | None -> ()
              | Some e -> Format.fprintf ppf " entry=%a" Word.pp e)
            entry
      | Grant { code; data; perm } ->
          Format.fprintf ppf "@ %2d: %a by %a on %a" i Perm.pp perm Region.pp
            code Region.pp data);
  Format.fprintf ppf "@]"
