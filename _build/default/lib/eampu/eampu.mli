(** The Execution-Aware Memory Protection Unit.

    The EA-MPU (introduced by TrustLite, extended by TyTAN with dynamic
    reconfiguration) enforces memory access control based on {e which code}
    performs an access, not on a privilege mode:

    - an {!rule.Exec} rule makes a region executable; if it carries an
      entry point, control may enter the region {e only} at that address
      (internal jumps are free) — this blocks code-reuse attacks on tasks;
    - a {!rule.Grant} rule lets code executing inside [code] read/write
      [data] according to [perm].

    Policy (mirroring the hardware of the paper):
    - executing an address not covered by any [Exec] rule is denied
      (no code injection from stacks or data regions);
    - reads/writes touching a region covered by at least one [Grant] rule
      are denied unless some rule grants them to the current code region;
    - reads/writes to memory no rule covers are allowed — the EA-MPU
      protects regions by exception, everything else (e.g. plain OS heap)
      stays open, as in TrustLite.

    The unit has a fixed number of {e slots} (18 in the paper's deployment,
    Table 6).  Slot manipulation here is raw "hardware register" access;
    the find-free-slot / policy-check / write-rule protocol with its cycle
    costs is the job of the trusted EA-MPU {e driver} in the core library. *)

open Tytan_machine

type rule =
  | Exec of {
      region : Region.t;
      entry : Word.t option;  (** enforced entry point, if any *)
    }
  | Grant of {
      code : Region.t;
      data : Region.t;
      perm : Perm.t;
    }

type t

val default_slot_count : int
(** 18, as in the paper's evaluation platform. *)

val create : ?slots:int -> unit -> t
(** A fresh, disabled EA-MPU with all slots empty. *)

val slot_count : t -> int
val slot : t -> int -> rule option
val set_slot : t -> int -> rule option -> unit
(** Raw slot write — no policy checking (hardware behaviour; the driver
    checks policy first). *)

val clear_slot : t -> int -> unit

val enabled : t -> bool
val enable : t -> unit
(** Secure boot enables enforcement once the static rules are in place. *)

val iter_slots : t -> (int -> rule -> unit) -> unit
val used_slots : t -> int

val first_free_slot : t -> int option

val conflicts : t -> rule -> (int * rule) list
(** Rules already installed that the candidate must not coexist with:
    overlapping [Exec] regions (each executable region belongs to exactly
    one protection domain).  Grants never conflict — several principals
    legitimately hold grants over one task's memory (the task itself, the
    Int Mux, the IPC proxy, the RTM). *)

val check :
  t -> eip:Word.t -> addr:Word.t -> size:int -> kind:Access.kind -> unit
(** The hardware check consulted on every fetch/load/store.  No-op while
    the unit is disabled.  @raise Tytan_machine.Access.Violation on
    denial. *)

val pp : Format.formatter -> t -> unit
