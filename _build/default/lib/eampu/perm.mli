(** Read/write permissions carried by an EA-MPU access rule. *)

type t = {
  read : bool;
  write : bool;
}

val r : t
val w : t
val rw : t
val none : t

val allows : t -> Tytan_machine.Access.kind -> bool
(** Execute never matches a data permission. *)

val pp : Format.formatter -> t -> unit
