open Tytan_machine

type t = {
  base : Word.t;
  size : int;
}

let make ~base ~size =
  if size <= 0 then invalid_arg "Region.make: size must be positive";
  if base < 0 || base + size - 1 > Word.max_value then
    invalid_arg "Region.make: region wraps the address space";
  { base; size }

let base t = t.base
let size t = t.size
let last t = t.base + t.size - 1
let contains t addr = addr >= t.base && addr <= last t

let contains_range t addr len =
  len > 0 && addr >= t.base && addr + len - 1 <= last t

let overlaps_range t addr len =
  len > 0 && addr <= last t && addr + len - 1 >= t.base

let overlaps a b = a.base <= last b && b.base <= last a
let equal a b = a.base = b.base && a.size = b.size
let pp ppf t = Format.fprintf ppf "[%a..%a]" Word.pp t.base Word.pp (last t)
