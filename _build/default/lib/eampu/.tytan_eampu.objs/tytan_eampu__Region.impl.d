lib/eampu/region.ml: Format Tytan_machine Word
