lib/eampu/perm.mli: Format Tytan_machine
