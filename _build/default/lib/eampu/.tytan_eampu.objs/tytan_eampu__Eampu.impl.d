lib/eampu/eampu.ml: Access Array Format List Perm Printf Region Tytan_machine Word
