lib/eampu/eampu.mli: Access Format Perm Region Tytan_machine Word
