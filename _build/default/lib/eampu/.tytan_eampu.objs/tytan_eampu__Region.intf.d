lib/eampu/region.mli: Format Tytan_machine Word
