lib/eampu/perm.ml: Format Tytan_machine
