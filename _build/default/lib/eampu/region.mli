(** Contiguous physical memory regions [\[base, base + size)]. *)

open Tytan_machine

type t = private {
  base : Word.t;
  size : int;
}

val make : base:Word.t -> size:int -> t
(** @raise Invalid_argument if [size <= 0] or the region wraps the
    address space. *)

val base : t -> Word.t
val size : t -> int
val last : t -> Word.t
(** Address of the final byte. *)

val contains : t -> Word.t -> bool
val contains_range : t -> Word.t -> int -> bool
(** Whole range [[addr, addr+len)] inside the region. *)

val overlaps_range : t -> Word.t -> int -> bool
(** Any byte of [[addr, addr+len)] inside the region. *)

val overlaps : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
