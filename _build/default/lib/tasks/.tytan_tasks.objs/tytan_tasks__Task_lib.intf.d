lib/tasks/task_lib.mli: Task_id Telf Tytan_core Tytan_machine Tytan_telf Word
