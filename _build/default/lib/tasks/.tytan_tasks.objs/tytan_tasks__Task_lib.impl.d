lib/tasks/task_lib.ml: Assembler Builder Ipc Isa Task_id Telf Toolchain Tytan_core Tytan_machine Tytan_telf Word
