(** Reference interpreter for Tasklang.

    Executes programs directly over a variable environment and an
    abstract 32-bit memory, with the same wrap-around semantics as the
    machine.  The property tests compile random programs, run them on the
    simulated CPU, and check the guest's results against this
    interpreter — a differential test of the whole pipeline (compiler →
    assembler → loader → CPU).

    Syscalls are modelled shallowly: [Delay]/[Yield] are no-ops, [Exit]
    stops execution, [Send] records the message.  A fuel bound guards
    non-terminating programs. *)

type state

val run :
  ?fuel:int ->
  ?load:(int -> int) ->
  ?store:(int -> int -> unit) ->
  Ast.program ->
  (state, string) result
(** Execute with the given MMIO hooks (defaults: loads read 0, stores are
    dropped).  [fuel] (default 100 000) bounds evaluated statements;
    running out is an [Error]. *)

val global : state -> string -> int
(** Final value of a global.  @raise Not_found *)

val sent : state -> (int list * Tytan_core.Task_id.t * bool) list
(** Messages sent, oldest first: payload, receiver, sync flag. *)

val exited : state -> bool
