(** Tasklang → ISA code generation.

    A straightforward stack-machine lowering: expressions evaluate into
    r0 (spilling to the task stack for binops), variables live as data
    words addressed through relocations, control flow uses PC-relative
    branches.  Registers used: r0/r1 (expression scratch), r4 (address
    temporary), r12 (inbox pointer, provided by the trusted software for
    secure tasks). *)

open Tytan_telf

val to_program : secure:bool -> Ast.program -> Tytan_machine.Assembler.program
(** Lower to an assembled program (with the secure entry stub when
    [secure]).  @raise Invalid_argument when {!Ast.validate} fails. *)

val to_telf : ?secure:bool -> ?stack_size:int -> Ast.program -> Telf.t
(** Convenience: lower and package ([secure] defaults to true,
    [stack_size] to 512). *)
