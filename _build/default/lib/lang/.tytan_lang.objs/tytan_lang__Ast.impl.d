lib/lang/ast.ml: Format List Printf Tytan_core
