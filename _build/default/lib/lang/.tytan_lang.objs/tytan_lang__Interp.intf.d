lib/lang/interp.mli: Ast Tytan_core
