lib/lang/ast.mli: Format Tytan_core
