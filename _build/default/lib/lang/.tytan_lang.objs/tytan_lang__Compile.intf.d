lib/lang/compile.mli: Ast Telf Tytan_machine Tytan_telf
