lib/lang/interp.ml: Ast Hashtbl List Tytan_core Tytan_machine Word
