lib/lang/compile.ml: Assembler Ast Ipc Isa List Option Printf Task_id Toolchain Tytan_core Tytan_machine Tytan_telf Word
