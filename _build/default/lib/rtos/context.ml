open Tytan_machine

type ops = {
  save : Tcb.t -> Word.t array -> unit;
  restore : Tcb.t -> unit;
}

let software_saved = 15 (* r0 .. r14; SP is implied by the frame address *)
let frame_words = software_saved + 2
let frame_bytes = frame_words * 4

let build_initial_frame_raw cpu ~stack_top ~entry =
  let eflags = 8 (* IF set *) in
  Cpu.store32 cpu (Word.sub stack_top 4) eflags;
  Cpu.store32 cpu (Word.sub stack_top 8) entry;
  (* r0 (highest of the register block) down to r14. *)
  for i = 0 to software_saved - 1 do
    Cpu.store32 cpu (Word.sub stack_top (12 + (4 * i))) 0
  done;
  Word.sub stack_top frame_bytes

let build_initial_frame cpu (tcb : Tcb.t) =
  tcb.saved_sp <-
    build_initial_frame_raw cpu ~stack_top:(Tcb.stack_top tcb) ~entry:tcb.entry

let save_frame cpu (tcb : Tcb.t) gprs =
  (* The hardware already pushed EFLAGS and EIP; SP sits below them.  The
     software part stores r0 first (just below EIP) down to r14. *)
  let regs = Cpu.regs cpu in
  let sp = Regfile.get regs Regfile.sp in
  for i = 0 to software_saved - 1 do
    Cpu.store32 cpu (Word.sub sp (4 * (i + 1))) gprs.(i)
  done;
  tcb.saved_sp <- Word.sub sp (software_saved * 4)

let restore_frame cpu (tcb : Tcb.t) =
  let regs = Cpu.regs cpu in
  let sp = ref tcb.saved_sp in
  for i = software_saved - 1 downto 0 do
    Regfile.set regs i (Cpu.load32 cpu !sp);
    sp := Word.add !sp 4
  done;
  Regfile.set regs Regfile.sp !sp;
  Cpu.interrupt_return cpu

let baseline cpu ~save_cost ~restore_cost =
  let clock = Cpu.clock cpu in
  {
    save =
      (fun tcb gprs ->
        Cycles.charge clock save_cost;
        save_frame cpu tcb gprs);
    restore =
      (fun tcb ->
        Cycles.charge clock restore_cost;
        restore_frame cpu tcb);
  }
