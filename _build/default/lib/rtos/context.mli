(** Task context save/restore.

    Frame layout on the task's stack, top (high addresses) first:
    {v
       EFLAGS        (pushed by the hardware exception engine)
       EIP           (pushed by the hardware exception engine)
       r0 … r14      (pushed by software, r14 at the lowest address)
    v}
    [saved_sp] points at the r14 slot.  Restoring pops r14 … r0 and then
    performs the hardware interrupt return (pop EIP, pop EFLAGS).

    {!baseline} implements the unmodified-FreeRTOS paths (Table 2/3
    baselines): the kernel itself stores and reloads the registers, with
    its own code identity — which is exactly why it cannot context-switch
    a secure task, whose stack it may not touch.  The TyTAN platform
    replaces these ops with the Int Mux for secure tasks. *)

open Tytan_machine

type ops = {
  save : Tcb.t -> Word.t array -> unit;
  (** [save tcb gprs] completes the context frame for [tcb] after the
      hardware pushed EFLAGS/EIP; [gprs] is the register snapshot taken at
      exception entry.  Sets [tcb.saved_sp]. *)
  restore : Tcb.t -> unit;
  (** Resume [tcb] from its saved frame (or start it if never run). *)
}

val frame_words : int
(** Words in a full frame: 2 hardware + 15 software (17). *)

val frame_bytes : int

val build_initial_frame : Cpu.t -> Tcb.t -> unit
(** Prepare the task's stack "as if it had been executed before and was
    interrupted": EFLAGS with interrupts enabled, EIP = entry, zeroed
    registers.  Uses checked writes under the caller's code identity (task
    creation happens before the task's protection is enabled). *)

val build_initial_frame_raw :
  Cpu.t -> stack_top:Word.t -> entry:Word.t -> Word.t
(** Same as {!build_initial_frame} for code (the TyTAN loader) that
    prepares the stack before a TCB exists; returns the initial saved SP. *)

val save_frame : Cpu.t -> Tcb.t -> Word.t array -> unit
(** The raw frame store (no cycle charge) — building block for the
    Int Mux's secure save path. *)

val restore_frame : Cpu.t -> Tcb.t -> unit
(** The raw frame reload + interrupt return (no cycle charge). *)

val baseline : Cpu.t -> save_cost:int -> restore_cost:int -> ops
(** The unmodified-FreeRTOS context ops.  [save_cost] and [restore_cost]
    are the per-operation cycle charges (calibrated against Tables 2–3;
    the registers are really moved, the constants only set the cycle
    price). *)
