open Tytan_machine

type t = {
  id : int;
  capacity : int;
  mutable items : Word.t list;  (* head = oldest *)
  mutable send_waiters : (Tcb.t * Word.t) list;
  mutable recv_waiters : Tcb.t list;
}

let create ~id ~capacity =
  if capacity <= 0 then invalid_arg "Rt_queue.create: capacity must be positive";
  { id; capacity; items = []; send_waiters = []; recv_waiters = [] }

let id t = t.id
let capacity t = t.capacity
let length t = List.length t.items
let is_full t = length t >= t.capacity
let is_empty t = t.items = []

let push t v =
  if is_full t then invalid_arg "Rt_queue.push: full";
  t.items <- t.items @ [ v ]

let pop t =
  match t.items with
  | [] -> invalid_arg "Rt_queue.pop: empty"
  | v :: rest ->
      t.items <- rest;
      v

let add_send_waiter t tcb ~value = t.send_waiters <- t.send_waiters @ [ (tcb, value) ]
let add_recv_waiter t tcb = t.recv_waiters <- t.recv_waiters @ [ tcb ]

let take_send_waiter t =
  match t.send_waiters with
  | [] -> None
  | w :: rest ->
      t.send_waiters <- rest;
      Some w

let take_recv_waiter t =
  match t.recv_waiters with
  | [] -> None
  | w :: rest ->
      t.recv_waiters <- rest;
      Some w

let drop_waiter t (tcb : Tcb.t) =
  t.send_waiters <- List.filter (fun (w, _) -> w.Tcb.id <> tcb.id) t.send_waiters;
  t.recv_waiters <- List.filter (fun w -> w.Tcb.id <> tcb.id) t.recv_waiters
