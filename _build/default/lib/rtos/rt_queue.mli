(** Real-time message queues (FreeRTOS [xQueue] analogue).

    Bounded FIFOs of single words with blocking send/receive and
    tick-denominated timeouts.  The structure lives here; the kernel
    performs the blocking and wake-ups so that queue operations stay
    bounded-time (a send wakes at most one receiver and vice versa). *)

open Tytan_machine

type t

val create : id:int -> capacity:int -> t
val id : t -> int
val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val push : t -> Word.t -> unit
(** @raise Invalid_argument if full (the kernel checks first). *)

val pop : t -> Word.t
(** @raise Invalid_argument if empty. *)

(** Waiter bookkeeping: FIFO lists of blocked tasks, kept here so a
    timeout can drop a specific task. *)

val add_send_waiter : t -> Tcb.t -> value:Word.t -> unit
val add_recv_waiter : t -> Tcb.t -> unit
val take_send_waiter : t -> (Tcb.t * Word.t) option
val take_recv_waiter : t -> Tcb.t option
val drop_waiter : t -> Tcb.t -> unit
