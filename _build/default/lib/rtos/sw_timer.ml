type id = int

type entry = {
  id : id;
  mutable deadline : int;
  period : int option;
  callback : unit -> unit;
}

type t = {
  mutable entries : entry list;  (* sorted by deadline *)
  mutable next_id : id;
}

let create () = { entries = []; next_id = 0 }

let insert t entry =
  let earlier, later =
    List.partition (fun e -> e.deadline <= entry.deadline) t.entries
  in
  t.entries <- earlier @ (entry :: later)

let arm t ~at_tick ?period callback =
  (match period with
  | Some p when p <= 0 -> invalid_arg "Sw_timer.arm: period must be positive"
  | Some _ | None -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  insert t { id; deadline = at_tick; period; callback };
  id

let cancel t id = t.entries <- List.filter (fun e -> e.id <> id) t.entries

let fire_due t ~now =
  let rec loop fired =
    match t.entries with
    | e :: rest when e.deadline <= now ->
        t.entries <- rest;
        e.callback ();
        (match e.period with
        | Some p ->
            e.deadline <- e.deadline + p;
            insert t e
        | None -> ());
        loop (fired + 1)
    | _ :: _ | [] -> fired
  in
  loop 0

let armed_count t = List.length t.entries
