(** Software timers ("special alarms and time-outs" in the paper's
    real-time feature list).

    One-shot or periodic callbacks driven by the kernel tick.  Callbacks
    run in kernel (firmware) context and must be short and bounded — they
    are charged to the tick handler's budget. *)

type t
type id = int

val create : unit -> t

val arm :
  t -> at_tick:int -> ?period:int -> (unit -> unit) -> id
(** Schedule a callback for [at_tick]; with [?period] it re-arms itself
    every [period] ticks afterwards. *)

val cancel : t -> id -> unit
val fire_due : t -> now:int -> int
(** Run every callback due at or before [now]; returns how many fired. *)

val armed_count : t -> int
