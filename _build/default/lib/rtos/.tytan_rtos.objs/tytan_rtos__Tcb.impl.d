lib/rtos/tcb.ml: Format Tytan_machine Word
