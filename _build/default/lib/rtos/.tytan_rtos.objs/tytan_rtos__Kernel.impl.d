lib/rtos/kernel.ml: Access Array Context Cpu Cycles Exception_engine Format Hashtbl Isa List Printf Regfile Rt_queue Scheduler String Sw_timer Tcb Trace Tytan_machine Word
