lib/rtos/scheduler.ml: Array Format List Printf Tcb
