lib/rtos/scheduler.mli: Format Tcb
