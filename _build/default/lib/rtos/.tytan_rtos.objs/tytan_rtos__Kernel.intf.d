lib/rtos/kernel.mli: Context Cpu Rt_queue Scheduler Sw_timer Tcb Trace Tytan_machine Word
