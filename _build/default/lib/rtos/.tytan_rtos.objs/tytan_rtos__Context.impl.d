lib/rtos/context.ml: Array Cpu Cycles Regfile Tcb Tytan_machine Word
