lib/rtos/rt_queue.mli: Tcb Tytan_machine Word
