lib/rtos/tcb.mli: Format Tytan_machine Word
