lib/rtos/sw_timer.ml: List
