lib/rtos/context.mli: Cpu Tcb Tytan_machine Word
