lib/rtos/sw_timer.mli:
