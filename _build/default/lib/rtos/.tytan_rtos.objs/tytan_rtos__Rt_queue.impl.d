lib/rtos/rt_queue.ml: List Tcb Tytan_machine Word
