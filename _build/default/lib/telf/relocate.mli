(** Applying and reverting relocation.

    Loading patches each relocated 32-bit field by adding the load base
    ({!apply}); the RTM temporarily subtracts it again ({!revert}) so that
    the measured bytes are those of the position-independent binary —
    TyTAN's trick for getting location-independent task identities.

    These operate on raw loaded bytes, so the RTM can revert a {e copy} of
    task memory without disturbing the running image. *)

open Tytan_machine

val apply : base:Word.t -> image:bytes -> relocations:int array -> unit
(** Add [base] to every relocated field, in place. *)

val revert : base:Word.t -> image:bytes -> relocations:int array -> unit
(** Subtract [base] from every relocated field, in place.
    [revert ~base] ∘ [apply ~base] is the identity. *)

val apply_count : relocations:int array -> int
(** Number of fields an [apply]/[revert] pass patches (the paper's
    "number of addresses changed by relocation"). *)
