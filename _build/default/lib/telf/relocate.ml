open Tytan_machine

let patch ~image ~relocations f =
  Array.iter
    (fun off ->
      let v = Int32.to_int (Bytes.get_int32_le image off) land Word.max_value in
      Bytes.set_int32_le image off (Int32.of_int (f v)))
    relocations

let apply ~base ~image ~relocations =
  patch ~image ~relocations (fun v -> Word.add v base)

let revert ~base ~image ~relocations =
  patch ~image ~relocations (fun v -> Word.sub v base)

let apply_count ~relocations = Array.length relocations
