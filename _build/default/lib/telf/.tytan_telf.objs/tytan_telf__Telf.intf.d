lib/telf/telf.mli: Format
