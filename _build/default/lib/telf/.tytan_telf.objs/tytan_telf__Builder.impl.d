lib/telf/builder.ml: Array Assembler Bytes Int32 Isa Telf Tytan_machine Word
