lib/telf/builder.mli: Assembler Telf Tytan_machine
