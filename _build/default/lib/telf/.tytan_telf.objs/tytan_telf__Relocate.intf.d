lib/telf/relocate.mli: Tytan_machine Word
