lib/telf/relocate.ml: Array Bytes Int32 Tytan_machine Word
