lib/telf/telf.ml: Array Bytes Format Int32 Printf
