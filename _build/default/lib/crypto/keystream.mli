(** Authenticated encryption for the secure-storage task, built from
    HMAC-SHA1 in counter mode (encrypt-then-MAC).

    The paper only specifies that data handed to the secure storage task
    "gets encrypted with Kt"; any symmetric scheme fits.  We build one from
    the primitives we already have rather than pulling in a cipher:
    keystream block [i] = HMAC(Kt, nonce | i), XORed over the plaintext,
    then a MAC over nonce and ciphertext under a separate derived key. *)

type sealed = {
  nonce : bytes;
  ciphertext : bytes;
  tag : bytes;
}

val seal : key:bytes -> nonce:bytes -> bytes -> sealed
(** Encrypt-then-MAC under [key].  The caller supplies a unique [nonce]
    per sealing (the storage task uses a monotonic counter). *)

val open_sealed : key:bytes -> sealed -> bytes option
(** [None] if the tag does not verify (wrong key — i.e. wrong task
    identity — or tampered ciphertext). *)

val encode : sealed -> bytes
(** Wire format: [len nonce | nonce | len ct | ct | tag]. *)

val decode : bytes -> sealed option
