(** Timing-safe byte-string comparison.

    Attestation-report and storage-tag verification must not leak, through
    early exit, how many prefix bytes of an attacker-supplied tag were
    correct. *)

val equal : bytes -> bytes -> bool
(** [equal a b] compares without data-dependent early exit.  Strings of
    different lengths compare unequal (length is not secret). *)
