type sealed = {
  nonce : bytes;
  ciphertext : bytes;
  tag : bytes;
}

let enc_key key = Hmac.mac_string ~key "keystream/enc"
let mac_key key = Hmac.mac_string ~key "keystream/mac"

let keystream_block ~key ~nonce i =
  let counter = Bytes.create 4 in
  Bytes.set_int32_be counter 0 (Int32.of_int i);
  Hmac.mac ~key (Bytes.cat nonce counter)

let xor_keystream ~key ~nonce data =
  let out = Bytes.copy data in
  let len = Bytes.length data in
  let block = ref Bytes.empty in
  for i = 0 to len - 1 do
    let j = i mod Sha1.digest_size in
    if j = 0 then block := keystream_block ~key ~nonce (i / Sha1.digest_size);
    Bytes.set out i
      (Char.chr
         (Char.code (Bytes.get data i) lxor Char.code (Bytes.get !block j)))
  done;
  out

let tag_of ~key ~nonce ciphertext =
  Hmac.mac ~key:(mac_key key) (Bytes.cat nonce ciphertext)

let seal ~key ~nonce plaintext =
  let ciphertext = xor_keystream ~key:(enc_key key) ~nonce plaintext in
  { nonce; ciphertext; tag = tag_of ~key ~nonce ciphertext }

let open_sealed ~key sealed =
  let expected = tag_of ~key ~nonce:sealed.nonce sealed.ciphertext in
  if Constant_time.equal expected sealed.tag then
    Some (xor_keystream ~key:(enc_key key) ~nonce:sealed.nonce sealed.ciphertext)
  else None

let encode s =
  let b = Buffer.create 64 in
  let add_sized data =
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (Bytes.length data));
    Buffer.add_bytes b len;
    Buffer.add_bytes b data
  in
  add_sized s.nonce;
  add_sized s.ciphertext;
  Buffer.add_bytes b s.tag;
  Buffer.to_bytes b

let decode b =
  let len = Bytes.length b in
  let read_sized pos =
    if pos + 4 > len then None
    else
      let n = Int32.to_int (Bytes.get_int32_be b pos) in
      if n < 0 || pos + 4 + n > len then None
      else Some (Bytes.sub b (pos + 4) n, pos + 4 + n)
  in
  match read_sized 0 with
  | None -> None
  | Some (nonce, pos) -> (
      match read_sized pos with
      | None -> None
      | Some (ciphertext, pos) ->
          if len - pos <> Sha1.digest_size then None
          else Some { nonce; ciphertext; tag = Bytes.sub b pos Sha1.digest_size })
