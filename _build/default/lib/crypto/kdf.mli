(** Key derivation from the platform key.

    The TyTAN hardware ships with a platform key [Kp]; further keys are
    derived from it rather than stored — e.g. the attestation key [Ka]
    accessible only to the Remote Attest component, per-task storage keys
    [Kt = HMAC(id_t | Kp)], and (following the SANCUS-style scheme the
    paper cites in footnote 2) per-provider attestation keys. *)

val derive : platform_key:bytes -> purpose:string -> bytes
(** [derive ~platform_key ~purpose] is a 20-byte key bound to [purpose]
    (e.g. ["remote-attestation"], ["secure-storage"]).  Distinct purposes
    yield independent keys. *)

val derive_task_key : platform_key:bytes -> task_id:bytes -> bytes
(** [Kt = HMAC(id_t | Kp)]: the per-task storage key.  Because [id_t] is
    the hash of the task binary, an updated (different) binary derives a
    different key and cannot unseal the old task's data. *)

val derive_provider_key : platform_key:bytes -> provider:string -> bytes
(** Per-stakeholder attestation key (paper footnote 2). *)
