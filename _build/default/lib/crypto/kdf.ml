let derive ~platform_key ~purpose =
  Hmac.mac_string ~key:platform_key ("tytan-kdf/" ^ purpose)

let derive_task_key ~platform_key ~task_id =
  (* Kt = HMAC(id_t | Kp): the id is the MACed message, keyed by Kp. *)
  Hmac.mac ~key:platform_key task_id

let derive_provider_key ~platform_key ~provider =
  derive ~platform_key ~purpose:("provider/" ^ provider)
