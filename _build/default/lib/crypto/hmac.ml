let normalize_key key =
  let key =
    if Bytes.length key > Sha1.block_size then Sha1.digest key else key
  in
  let padded = Bytes.make Sha1.block_size '\000' in
  Bytes.blit key 0 padded 0 (Bytes.length key);
  padded

let xor_with b v =
  Bytes.map (fun c -> Char.chr (Char.code c lxor v)) b

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha1.init () in
  Sha1.feed inner (xor_with key 0x36);
  Sha1.feed inner msg;
  let inner_digest = Sha1.finalize inner in
  let outer = Sha1.init () in
  Sha1.feed outer (xor_with key 0x5C);
  Sha1.feed outer inner_digest;
  Sha1.finalize outer

let mac_string ~key s = mac ~key (Bytes.of_string s)

let verify ~key msg ~tag =
  Constant_time.equal (mac ~key msg) tag
