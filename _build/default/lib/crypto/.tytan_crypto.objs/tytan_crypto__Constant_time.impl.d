lib/crypto/constant_time.ml: Bytes Char
