lib/crypto/keystream.mli:
