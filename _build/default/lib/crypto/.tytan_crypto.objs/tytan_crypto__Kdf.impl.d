lib/crypto/kdf.ml: Hmac
