lib/crypto/keystream.ml: Buffer Bytes Char Constant_time Hmac Int32 Sha1
