lib/crypto/kdf.mli:
