lib/crypto/hmac.ml: Bytes Char Constant_time Sha1
