lib/crypto/hmac.mli:
