(** HMAC-SHA1 (RFC 2104).

    TyTAN uses MACs for remote attestation reports and for deriving
    per-task storage keys: [Kt = HMAC(id_t | Kp)]. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] is the 20-byte HMAC-SHA1 tag of [msg] under [key].
    Keys longer than the SHA-1 block size are hashed first, shorter keys
    are zero-padded, per the RFC. *)

val mac_string : key:bytes -> string -> bytes

val verify : key:bytes -> bytes -> tag:bytes -> bool
(** Constant-time tag comparison. *)
