(** CPU register file: 16 general-purpose registers, EIP and EFLAGS.

    Register conventions used by the toolchain:
    - [r0]–[r11] general purpose ([r0]–[r9] carry IPC message payloads,
      matching the paper's register-based message transfer);
    - [r12] scratch for the entry routine;
    - [r13] invocation-reason register set by the trusted Int Mux;
    - [r14] link register (return address of [CALL]);
    - [r15] stack pointer.

    EFLAGS bits: bit 0 = zero, bit 1 = negative, bit 2 = carry,
    bit 3 = interrupt-enable. *)

type t

val gpr_count : int

val sp : int
(** Index of the stack pointer register (15). *)

val lr : int
(** Index of the link register (14). *)

val reason : int
(** Index of the invocation-reason register (13). *)

val create : unit -> t
val copy : t -> t

val get : t -> int -> Word.t
val set : t -> int -> Word.t -> unit

val eip : t -> Word.t
val set_eip : t -> Word.t -> unit

val eflags : t -> Word.t
val set_eflags : t -> Word.t -> unit

val zero_flag : t -> bool
val negative_flag : t -> bool
val carry_flag : t -> bool
val interrupts_enabled : t -> bool

val set_zero : t -> bool -> unit
val set_negative : t -> bool -> unit
val set_carry : t -> bool -> unit
val set_interrupts : t -> bool -> unit

val wipe_gprs : t -> unit
(** Clear every general-purpose register (the Int Mux does this before
    handing control to an untrusted interrupt handler). *)

val all_gprs : t -> Word.t array
(** A snapshot copy of [r0]–[r15]. *)

val restore_gprs : t -> Word.t array -> unit

val pp : Format.formatter -> t -> unit
