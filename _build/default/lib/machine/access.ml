type kind =
  | Read
  | Write
  | Execute

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"
  | Execute -> Format.pp_print_string ppf "execute"

type violation = {
  eip : Word.t;
  addr : Word.t;
  size : int;
  kind : kind;
  reason : string;
}

exception Violation of violation

let violation ~eip ~addr ~size ~kind reason =
  raise (Violation { eip; addr; size; kind; reason })

let pp_violation ppf v =
  Format.fprintf ppf "@[<h>%a of %d byte(s) at %a from eip=%a denied: %s@]"
    pp_kind v.kind v.size Word.pp v.addr Word.pp v.eip v.reason
