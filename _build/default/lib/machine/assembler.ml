type item =
  | Ins of Isa.t
  | Def_label of string
  | Movi_label of Isa.reg * string
  | Branch_label of (Word.t -> Isa.t) * string
  | Data_word of Word.t
  | Word_label of string
  | Space of int
  | Data_mark

type t = { mutable items : item list (* reversed *) }
type program = {
  image : bytes;
  text_size : int;
  relocations : int array;
  symbols : (string * int) list;
  entry : int;
}

let create () = { items = [] }
let push t item = t.items <- item :: t.items
let label t name = push t (Def_label name)
let instr t i = push t (Ins i)
let instrs t is = List.iter (instr t) is
let movi_label t ~rd name = push t (Movi_label (rd, name))
let jmp_label t name = push t (Branch_label ((fun d -> Isa.Jmp d), name))
let jz_label t name = push t (Branch_label ((fun d -> Isa.Jz d), name))
let jnz_label t name = push t (Branch_label ((fun d -> Isa.Jnz d), name))
let jlt_label t name = push t (Branch_label ((fun d -> Isa.Jlt d), name))
let jge_label t name = push t (Branch_label ((fun d -> Isa.Jge d), name))
let call_label t name = push t (Branch_label ((fun d -> Isa.Call d), name))
let word t w = push t (Data_word w)
let word_label t name = push t (Word_label name)
let begin_data t = push t Data_mark

let space t n =
  if n < 0 then invalid_arg "Assembler.space: negative size";
  push t (Space n)

let item_size = function
  | Ins _ | Movi_label _ | Branch_label _ -> Isa.width
  | Data_word _ | Word_label _ -> 4
  | Space n -> n
  | Def_label _ | Data_mark -> 0

let here t = List.fold_left (fun acc i -> acc + item_size i) 0 t.items

let assemble t =
  let items = List.rev t.items in
  (* First pass: label offsets. *)
  let symbols = Hashtbl.create 16 in
  let data_mark = ref None in
  let total =
    List.fold_left
      (fun offset item ->
        (match item with
        | Def_label name ->
            if Hashtbl.mem symbols name then
              invalid_arg ("Assembler: duplicate label " ^ name);
            Hashtbl.add symbols name offset
        | Data_mark ->
            if !data_mark <> None then
              invalid_arg "Assembler: begin_data used twice";
            data_mark := Some offset
        | Ins _ | Movi_label _ | Branch_label _ | Data_word _ | Word_label _
        | Space _ -> ());
        offset + item_size item)
      0 items
  in
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some off -> off
    | None -> invalid_arg ("Assembler: undefined label " ^ name)
  in
  (* Second pass: emit. *)
  let image = Bytes.make total '\000' in
  let relocations = ref [] in
  let emit offset item =
    (match item with
    | Def_label _ -> ()
    | Ins i -> Bytes.blit (Isa.encode i) 0 image offset Isa.width
    | Movi_label (rd, name) ->
        let target = resolve name in
        Bytes.blit (Isa.encode (Isa.Movi (rd, target))) 0 image offset Isa.width;
        relocations := (offset + Isa.imm_field_offset) :: !relocations
    | Branch_label (make, name) ->
        let displacement = resolve name - (offset + Isa.width) in
        let i = make (Word.of_signed displacement) in
        Bytes.blit (Isa.encode i) 0 image offset Isa.width
    | Data_word w -> Bytes.set_int32_le image offset (Int32.of_int w)
    | Word_label name ->
        Bytes.set_int32_le image offset (Int32.of_int (resolve name));
        relocations := offset :: !relocations
    | Space _ | Data_mark -> ());
    offset + item_size item
  in
  let final = List.fold_left emit 0 items in
  assert (final = total);
  let symbols_list =
    Hashtbl.fold (fun name off acc -> (name, off) :: acc) symbols []
    |> List.sort compare
  in
  let entry =
    match Hashtbl.find_opt symbols "_start" with Some o -> o | None -> 0
  in
  {
    image;
    text_size = (match !data_mark with Some m -> m | None -> total);
    relocations = Array.of_list (List.sort compare !relocations);
    symbols = symbols_list;
    entry;
  }
