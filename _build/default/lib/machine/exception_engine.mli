(** Hardware exception engine: interrupt lines, the in-memory IDT, and
    firmware (host-implemented) handler dispatch.

    As in the paper, interrupt handlers are selected through an interrupt
    descriptor table (IDT) that lives in simulated memory — so its
    integrity can be protected by an EA-MPU rule — while the register that
    points to the IDT is fixed in hardware and cannot be retargeted.

    Handler addresses in the {e firmware window} ([0xFFFF_0000] and up)
    dispatch to registered OCaml closures.  This models trusted software
    components (and the OS kernel) whose logic runs host-side while their
    code regions, identities and cycle costs remain first-class in the
    simulation.  Any other handler address is executed as guest code.

    Vectors 0–15 are hardware IRQ lines; vectors 16–31 are reached by the
    [SWI n] instruction (vector [16 + n]). *)

type t

val vector_count : int
(** Total number of vectors (32). *)

val entry_size : int
(** Bytes per IDT entry (4). *)

val idt_size : int
(** [vector_count * entry_size]. *)

val swi_vector_base : int
(** First vector reachable by [SWI] (16). *)

val firmware_base : Word.t
(** Base of the firmware handler window. *)

val create : Memory.t -> idt_base:Word.t -> t
(** The IDT is zero-initialised at [idt_base]. *)

val idt_base : t -> Word.t

val set_vector : t -> int -> Word.t -> unit
(** Write IDT entry [n] (a raw memory write: during boot the IDT is not
    yet protected; afterwards the EA-MPU guards the page and software must
    go through checked stores). *)

val vector : t -> int -> Word.t

val register_firmware : t -> name:string -> (unit -> unit) -> Word.t
(** Allocate a fresh firmware address bound to the closure; the closure
    runs when an interrupt dispatches to that address. *)

val firmware_handler : t -> Word.t -> (unit -> unit) option
val firmware_name : t -> Word.t -> string option

val raise_irq : t -> int -> unit
(** Assert hardware IRQ line [n] (0–15). *)

val pending_irq : t -> int option
(** Highest-priority (lowest-numbered) asserted line. *)

val ack_irq : t -> int -> unit

val set_origin : t -> Word.t -> unit
val origin : t -> Word.t
(** EIP at which the most recent exception was taken.  The IPC proxy reads
    this to identify the {e sender} of a software interrupt — the
    "origin of the interrupt obtained from the hardware". *)

val entry_cost : int
(** Cycles charged by the hardware to take an exception (save EIP and
    EFLAGS to the interrupted stack, fetch the vector). *)
