(** Bounded event trace for debugging and for assertions in tests.

    Components append structured events (context switches, faults, IPC
    deliveries, measurement steps); tests assert on the recorded sequence.
    Tracing is off by default and costs nothing when disabled. *)

type event = {
  at_cycle : int;
  source : string;  (** emitting component, e.g. ["scheduler"] *)
  detail : string;
}

type t

val create : ?capacity:int -> Cycles.t -> t
(** Keep at most [capacity] (default 4096) most recent events. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> source:string -> string -> unit
val emitf : t -> source:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> event list
(** Oldest first. *)

val find : t -> source:string -> substring:string -> event option
val count : t -> source:string -> int
val clear : t -> unit
val pp : Format.formatter -> t -> unit
