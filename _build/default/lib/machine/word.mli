(** 32-bit machine words represented as OCaml [int]s.

    The simulated Siskiyou-Peak-like core is a 32-bit machine with a flat
    physical address space.  All register and memory values are kept in the
    range [0, 2^32).  Arithmetic wraps modulo 2^32, mirroring the hardware. *)

type t = int
(** A 32-bit word.  Invariant: [0 <= w <= 0xFFFF_FFFF]. *)

val bits : int
(** Number of bits in a word (32). *)

val max_value : t
(** Largest representable word, [0xFFFF_FFFF]. *)

val of_int : int -> t
(** [of_int n] truncates [n] to the low 32 bits. *)

val to_signed : t -> int
(** [to_signed w] interprets [w] as a two's-complement 32-bit integer. *)

val of_signed : int -> t
(** [of_signed n] encodes a (possibly negative) integer as a 32-bit word. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t

val equal : t -> t -> bool
val compare_signed : t -> t -> int
(** Signed two's-complement comparison. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x0000BEEF]. *)
