type reg = int

type t =
  | Nop
  | Movi of reg * Word.t
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * Word.t
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Cmp of reg * reg
  | Cmpi of reg * Word.t
  | Ldw of reg * reg * Word.t
  | Stw of reg * Word.t * reg
  | Ldb of reg * reg * Word.t
  | Stb of reg * Word.t * reg
  | Jmp of Word.t
  | Jz of Word.t
  | Jnz of Word.t
  | Jlt of Word.t
  | Jge of Word.t
  | Jmpr of reg
  | Call of Word.t
  | Callr of reg
  | Ret
  | Push of reg
  | Pop of reg
  | Swi of int
  | Iret
  | Halt

let width = 8
let imm_field_offset = 4

(* Opcode assignments; stable because encoded binaries are hashed by the
   RTM and must be reproducible. *)
let opcode = function
  | Nop -> 0
  | Movi _ -> 1
  | Mov _ -> 2
  | Add _ -> 3
  | Addi _ -> 4
  | Sub _ -> 5
  | Mul _ -> 6
  | And _ -> 7
  | Or _ -> 8
  | Xor _ -> 9
  | Shl _ -> 10
  | Shr _ -> 11
  | Cmp _ -> 12
  | Cmpi _ -> 13
  | Ldw _ -> 14
  | Stw _ -> 15
  | Ldb _ -> 16
  | Stb _ -> 17
  | Jmp _ -> 18
  | Jz _ -> 19
  | Jnz _ -> 20
  | Jlt _ -> 21
  | Jge _ -> 22
  | Jmpr _ -> 23
  | Call _ -> 24
  | Callr _ -> 25
  | Ret -> 26
  | Push _ -> 27
  | Pop _ -> 28
  | Swi _ -> 29
  | Halt -> 30
  | Iret -> 31

let fields = function
  | Nop | Ret | Halt | Iret -> (0, 0, 0, 0)
  | Movi (rd, imm) -> (rd, 0, 0, imm)
  | Mov (rd, rs1) -> (rd, rs1, 0, 0)
  | Add (rd, rs1, rs2)
  | Sub (rd, rs1, rs2)
  | Mul (rd, rs1, rs2)
  | And (rd, rs1, rs2)
  | Or (rd, rs1, rs2)
  | Xor (rd, rs1, rs2) -> (rd, rs1, rs2, 0)
  | Addi (rd, rs1, imm) -> (rd, rs1, 0, imm)
  | Shl (rd, rs1, n) | Shr (rd, rs1, n) -> (rd, rs1, 0, n)
  | Cmp (rs1, rs2) -> (0, rs1, rs2, 0)
  | Cmpi (rs1, imm) -> (0, rs1, 0, imm)
  | Ldw (rd, rs1, imm) | Ldb (rd, rs1, imm) -> (rd, rs1, 0, imm)
  | Stw (rs1, imm, rs2) | Stb (rs1, imm, rs2) -> (0, rs1, rs2, imm)
  | Jmp imm | Jz imm | Jnz imm | Jlt imm | Jge imm | Call imm ->
      (0, 0, 0, imm)
  | Jmpr rs1 | Callr rs1 -> (0, rs1, 0, 0)
  | Push rs1 -> (0, rs1, 0, 0)
  | Pop rd -> (rd, 0, 0, 0)
  | Swi n -> (0, 0, 0, n)

let encode instr =
  let rd, rs1, rs2, imm = fields instr in
  let b = Bytes.make width '\000' in
  Bytes.set b 0 (Char.chr (opcode instr));
  Bytes.set b 1 (Char.chr (rd land 0xF));
  Bytes.set b 2 (Char.chr (rs1 land 0xF));
  Bytes.set b 3 (Char.chr (rs2 land 0xF));
  Bytes.set_int32_le b imm_field_offset (Int32.of_int imm);
  b

let decode b =
  if Bytes.length b <> width then invalid_arg "Isa.decode: wrong length";
  let op = Char.code (Bytes.get b 0) in
  let rd = Char.code (Bytes.get b 1) land 0xF in
  let rs1 = Char.code (Bytes.get b 2) land 0xF in
  let rs2 = Char.code (Bytes.get b 3) land 0xF in
  let imm = Int32.to_int (Bytes.get_int32_le b imm_field_offset) land Word.max_value in
  match op with
  | 0 -> Nop
  | 1 -> Movi (rd, imm)
  | 2 -> Mov (rd, rs1)
  | 3 -> Add (rd, rs1, rs2)
  | 4 -> Addi (rd, rs1, imm)
  | 5 -> Sub (rd, rs1, rs2)
  | 6 -> Mul (rd, rs1, rs2)
  | 7 -> And (rd, rs1, rs2)
  | 8 -> Or (rd, rs1, rs2)
  | 9 -> Xor (rd, rs1, rs2)
  | 10 -> Shl (rd, rs1, imm)
  | 11 -> Shr (rd, rs1, imm)
  | 12 -> Cmp (rs1, rs2)
  | 13 -> Cmpi (rs1, imm)
  | 14 -> Ldw (rd, rs1, imm)
  | 15 -> Stw (rs1, imm, rs2)
  | 16 -> Ldb (rd, rs1, imm)
  | 17 -> Stb (rs1, imm, rs2)
  | 18 -> Jmp imm
  | 19 -> Jz imm
  | 20 -> Jnz imm
  | 21 -> Jlt imm
  | 22 -> Jge imm
  | 23 -> Jmpr rs1
  | 24 -> Call imm
  | 25 -> Callr rs1
  | 26 -> Ret
  | 27 -> Push rs1
  | 28 -> Pop rd
  | 29 -> Swi imm
  | 30 -> Halt
  | 31 -> Iret
  | n -> invalid_arg (Printf.sprintf "Isa.decode: bad opcode %d" n)

let cost = function
  | Nop -> 1
  | Movi _ | Mov _ -> 1
  | Add _ | Addi _ | Sub _ | And _ | Or _ | Xor _ | Shl _ | Shr _ -> 1
  | Mul _ -> 3
  | Cmp _ | Cmpi _ -> 1
  | Ldw _ | Ldb _ -> 2
  | Stw _ | Stb _ -> 2
  | Jmp _ | Jmpr _ -> 2
  | Jz _ | Jnz _ | Jlt _ | Jge _ -> 2
  | Call _ | Callr _ -> 3
  | Ret -> 3
  | Push _ | Pop _ -> 2
  | Swi _ -> 4
  | Iret -> 4
  | Halt -> 1

let pp ppf instr =
  let p fmt = Format.fprintf ppf fmt in
  match instr with
  | Nop -> p "nop"
  | Movi (rd, imm) -> p "movi r%d, %a" rd Word.pp imm
  | Mov (rd, rs1) -> p "mov r%d, r%d" rd rs1
  | Add (rd, a, b) -> p "add r%d, r%d, r%d" rd a b
  | Addi (rd, a, imm) -> p "addi r%d, r%d, %a" rd a Word.pp imm
  | Sub (rd, a, b) -> p "sub r%d, r%d, r%d" rd a b
  | Mul (rd, a, b) -> p "mul r%d, r%d, r%d" rd a b
  | And (rd, a, b) -> p "and r%d, r%d, r%d" rd a b
  | Or (rd, a, b) -> p "or r%d, r%d, r%d" rd a b
  | Xor (rd, a, b) -> p "xor r%d, r%d, r%d" rd a b
  | Shl (rd, a, n) -> p "shl r%d, r%d, %d" rd a n
  | Shr (rd, a, n) -> p "shr r%d, r%d, %d" rd a n
  | Cmp (a, b) -> p "cmp r%d, r%d" a b
  | Cmpi (a, imm) -> p "cmpi r%d, %a" a Word.pp imm
  | Ldw (rd, a, imm) -> p "ldw r%d, [r%d+%a]" rd a Word.pp imm
  | Stw (a, imm, b) -> p "stw [r%d+%a], r%d" a Word.pp imm b
  | Ldb (rd, a, imm) -> p "ldb r%d, [r%d+%a]" rd a Word.pp imm
  | Stb (a, imm, b) -> p "stb [r%d+%a], r%d" a Word.pp imm b
  | Jmp imm -> p "jmp %a" Word.pp imm
  | Jz imm -> p "jz %a" Word.pp imm
  | Jnz imm -> p "jnz %a" Word.pp imm
  | Jlt imm -> p "jlt %a" Word.pp imm
  | Jge imm -> p "jge %a" Word.pp imm
  | Jmpr r -> p "jmpr r%d" r
  | Call imm -> p "call %a" Word.pp imm
  | Callr r -> p "callr r%d" r
  | Ret -> p "ret"
  | Push r -> p "push r%d" r
  | Pop r -> p "pop r%d" r
  | Swi n -> p "swi %d" n
  | Iret -> p "iret"
  | Halt -> p "halt"
