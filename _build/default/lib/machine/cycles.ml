type t = { mutable count : int }

let create () = { count = 0 }
let now c = c.count

let charge c n =
  assert (n >= 0);
  c.count <- c.count + n

let reset c = c.count <- 0

let measure c f =
  let before = c.count in
  let result = f () in
  (result, c.count - before)

let clock_hz = 48_000_000
let to_ms cycles = float_of_int cycles /. float_of_int clock_hz *. 1000.0
