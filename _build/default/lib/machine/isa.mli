(** Instruction set of the simulated 32-bit core.

    A small fixed-width RISC-like ISA: every instruction occupies exactly
    {!width} bytes, encoded as [opcode, rd, rs1, rs2, imm32(LE)].  This is
    deliberately simple — what matters for TyTAN is that code is real bytes
    in simulated memory that can be fetched (subject to EA-MPU execute
    checks), measured by the RTM, and patched by the relocating loader.

    Control flow ([Jmp], [Jz], …, [Call]) is PC-relative: the immediate is
    a signed displacement from the {e following} instruction.  Absolute
    code/data addresses therefore appear only in [Movi] immediates and in
    data words, so the relocation table of a binary is a short list of
    immediate-field offsets (see the TELF library) — matching the paper's
    per-task relocation counts of a few entries. *)

type reg = int
(** Register index in [0, 15]. *)

type t =
  | Nop
  | Movi of reg * Word.t  (** rd := imm *)
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * Word.t
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Cmp of reg * reg  (** set flags from rs1 - rs2 *)
  | Cmpi of reg * Word.t
  | Ldw of reg * reg * Word.t  (** rd := mem32[rs1 + imm] *)
  | Stw of reg * Word.t * reg  (** mem32[rs1 + imm] := rs2 *)
  | Ldb of reg * reg * Word.t
  | Stb of reg * Word.t * reg
  | Jmp of Word.t  (** PC-relative signed displacement *)
  | Jz of Word.t
  | Jnz of Word.t
  | Jlt of Word.t
  | Jge of Word.t
  | Jmpr of reg  (** absolute jump through a register *)
  | Call of Word.t  (** lr := return address; PC-relative jump *)
  | Callr of reg
  | Ret
  | Push of reg
  | Pop of reg
  | Swi of int  (** software interrupt, vector argument in [0, 15] *)
  | Iret  (** pop EIP and EFLAGS — the dedicated return-from-interrupt
              instruction used by entry routines to resume a restored
              context *)
  | Halt

val width : int
(** Encoded instruction size in bytes (8). *)

val encode : t -> bytes
(** Fixed-width encoding. *)

val decode : bytes -> t
(** Decode {!width} bytes.  @raise Invalid_argument on a bad opcode. *)

val cost : t -> int
(** Cycle cost charged when the instruction executes (memory operations
    and taken control transfers cost more than ALU operations, in line
    with a simple in-order embedded core). *)

val imm_field_offset : int
(** Byte offset of the 32-bit immediate inside an encoded instruction —
    the only place an absolute address can live, hence the relocation
    granule. *)

val pp : Format.formatter -> t -> unit
