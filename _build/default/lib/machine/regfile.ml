type t = {
  gprs : Word.t array;
  mutable eip : Word.t;
  mutable eflags : Word.t;
}

let gpr_count = 16
let sp = 15
let lr = 14
let reason = 13

let create () = { gprs = Array.make gpr_count 0; eip = 0; eflags = 0 }
let copy t = { gprs = Array.copy t.gprs; eip = t.eip; eflags = t.eflags }

let get t i =
  assert (i >= 0 && i < gpr_count);
  t.gprs.(i)

let set t i v =
  assert (i >= 0 && i < gpr_count);
  t.gprs.(i) <- Word.of_int v

let eip t = t.eip
let set_eip t v = t.eip <- Word.of_int v
let eflags t = t.eflags
let set_eflags t v = t.eflags <- Word.of_int v

let bit_zero = 1
let bit_negative = 2
let bit_carry = 4
let bit_interrupts = 8

let test t bit = t.eflags land bit <> 0

let assign t bit on =
  t.eflags <- (if on then t.eflags lor bit else t.eflags land lnot bit)

let zero_flag t = test t bit_zero
let negative_flag t = test t bit_negative
let carry_flag t = test t bit_carry
let interrupts_enabled t = test t bit_interrupts
let set_zero t on = assign t bit_zero on
let set_negative t on = assign t bit_negative on
let set_carry t on = assign t bit_carry on
let set_interrupts t on = assign t bit_interrupts on
let wipe_gprs t = Array.fill t.gprs 0 gpr_count 0
let all_gprs t = Array.copy t.gprs

let restore_gprs t saved =
  assert (Array.length saved = gpr_count);
  Array.blit saved 0 t.gprs 0 gpr_count

let pp ppf t =
  Format.fprintf ppf "@[<v>eip=%a eflags=%a" Word.pp t.eip Word.pp t.eflags;
  Array.iteri
    (fun i v -> Format.fprintf ppf "@ r%-2d=%a" i Word.pp v)
    t.gprs;
  Format.fprintf ppf "@]"
