(** Global clock-cycle accounting for the simulated platform.

    The paper reports every result in clock cycles precisely because the
    platform clock speed is incidental.  Every simulated hardware operation
    and every trusted-software primitive charges cycles to one counter so
    that benchmarks can report deterministic cycle counts. *)

type t
(** A mutable cycle counter. *)

val create : unit -> t

val now : t -> int
(** Cycles elapsed since [create] (or the last [reset]). *)

val charge : t -> int -> unit
(** [charge c n] advances the counter by [n >= 0] cycles. *)

val reset : t -> unit

val measure : t -> (unit -> 'a) -> 'a * int
(** [measure c f] runs [f ()] and returns its result together with the
    number of cycles charged during the call. *)

val clock_hz : int
(** Nominal clock frequency used to convert cycles to wall time in
    reports: 48 MHz, matching the paper's Spartan-6 deployment. *)

val to_ms : int -> float
(** Convert a cycle count to milliseconds at {!clock_hz}. *)
