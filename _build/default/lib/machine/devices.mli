(** Peripheral models attached over MMIO, as on the Siskiyou Peak platform.

    - {!Timer}: the system tick source; fires an IRQ line each time the
      global clock crosses a period boundary.  Device models are polled by
      the platform run loop between instructions.
    - {!Sensor}: a read-only MMIO register whose value is a function of
      simulated time — used for the accelerator-pedal and radar sensors of
      the paper's adaptive-cruise-control use case.
    - {!Console}: a write-only byte sink for diagnostic output. *)

module Timer : sig
  type t

  val create : Exception_engine.t -> Cycles.t -> irq:int -> period:int -> t
  (** A periodic timer raising IRQ [irq] every [period] cycles, starting
      enabled. *)

  val poll : t -> unit
  (** Fire the IRQ if the clock has crossed the next deadline.  Called by
      the platform between instructions. *)

  val set_period : t -> int -> unit
  val period : t -> int
  val enable : t -> unit
  val disable : t -> unit
  val fired : t -> int
  (** Number of IRQs raised so far. *)
end

module Sensor : sig
  type t

  val create :
    name:string ->
    base:Word.t ->
    clock:Cycles.t ->
    sample:(cycles:int -> Word.t) ->
    t
  (** A 4-byte read-only MMIO register at [base]; reads return
      [sample ~cycles:(now clock)]. *)

  val device : t -> Memory.device
  val reads : t -> int
  (** Number of MMIO reads served — the use-case benches count these to
      verify sampling rates. *)

  val reset_reads : t -> unit
end

module Rx_fifo : sig
  (** An interrupt-driven receive FIFO — a CAN controller or radio seen
      from the software side.  The host environment injects frames; the
      device raises its IRQ line whenever data is pending.  MMIO layout:
      [base+0] read = frames pending, [base+4] read = pop the oldest
      frame (0 when empty). *)

  type t

  val create :
    Exception_engine.t -> name:string -> base:Word.t -> irq:int ->
    capacity:int -> t

  val device : t -> Memory.device

  val inject : t -> Word.t -> bool
  (** Deliver a frame from the outside world; [false] (and counted as
      dropped) when the FIFO is full.  Raises the IRQ line. *)

  val pending : t -> int
  val dropped : t -> int

  val received : t -> int
  (** Frames successfully injected. *)

  val irq : t -> int
  (** The line this device asserts. *)
end

module Console : sig
  type t

  val create : base:Word.t -> t
  (** A 4-byte write-only MMIO register; each write appends its low byte. *)

  val device : t -> Memory.device
  val contents : t -> string
  val clear : t -> unit
end
