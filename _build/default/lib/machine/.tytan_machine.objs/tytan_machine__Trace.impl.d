lib/machine/trace.ml: Cycles Format List Queue String
