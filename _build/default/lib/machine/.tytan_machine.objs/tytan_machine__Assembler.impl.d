lib/machine/assembler.ml: Array Bytes Hashtbl Int32 Isa List Word
