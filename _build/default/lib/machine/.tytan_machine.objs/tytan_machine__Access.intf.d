lib/machine/access.mli: Format Word
