lib/machine/trace.mli: Cycles Format
