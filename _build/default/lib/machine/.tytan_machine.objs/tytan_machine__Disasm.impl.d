lib/machine/disasm.ml: Bytes Char Format Isa List Memory Option Printf String Word
