lib/machine/cycles.ml:
