lib/machine/regfile.mli: Format Word
