lib/machine/isa.ml: Bytes Char Format Int32 Printf Word
