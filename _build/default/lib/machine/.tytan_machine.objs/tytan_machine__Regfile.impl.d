lib/machine/regfile.ml: Array Format Word
