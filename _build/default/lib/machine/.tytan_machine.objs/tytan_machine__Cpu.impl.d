lib/machine/cpu.ml: Access Bytes Cycles Exception_engine Fun Isa Memory Regfile Word
