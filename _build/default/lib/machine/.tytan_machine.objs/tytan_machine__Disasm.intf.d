lib/machine/disasm.mli: Format Isa Memory Word
