lib/machine/assembler.mli: Isa Word
