lib/machine/memory.ml: Bytes Char Int32 List Printf Word
