lib/machine/cpu.mli: Access Cycles Exception_engine Memory Regfile Word
