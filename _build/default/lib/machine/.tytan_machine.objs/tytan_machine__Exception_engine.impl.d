lib/machine/exception_engine.ml: Hashtbl Memory Option Printf Word
