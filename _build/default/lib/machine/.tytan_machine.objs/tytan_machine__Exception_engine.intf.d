lib/machine/exception_engine.mli: Memory Word
