lib/machine/access.ml: Format Word
