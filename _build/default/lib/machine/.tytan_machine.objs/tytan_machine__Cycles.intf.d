lib/machine/cycles.mli:
