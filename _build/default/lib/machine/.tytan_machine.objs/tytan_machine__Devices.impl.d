lib/machine/devices.ml: Buffer Char Cycles Exception_engine List Memory Word
