lib/machine/devices.mli: Cycles Exception_engine Memory Word
