(** Two-pass assembler for the simulated core.

    The assembler plays the role of the TyTAN tool chain: it turns a
    label-based program into a position-independent image linked at base 0,
    together with the relocation table the loader needs.  Branches are
    PC-relative and need no relocation; taking the {e address} of a label
    ([movi_label], [word_label]) emits a relocation entry, exactly the
    "number of addresses changed by relocation" the paper's Table 5 sweeps.

    Example:
    {[
      let p = Assembler.create () in
      Assembler.label p "loop";
      Assembler.movi_label p ~rd:0 "counter";   (* reloc *)
      Assembler.instr p (Isa.Ldw (1, 0, 0));
      Assembler.instr p (Isa.Addi (1, 1, 1));
      Assembler.instr p (Isa.Stw (0, 0, 1));
      Assembler.jmp_label p "loop";
      Assembler.label p "counter";
      Assembler.word p 0;
      let prog = Assembler.assemble p in ...
    ]} *)

type t
(** A program under construction. *)

type program = {
  image : bytes;  (** code + data linked at base 0 *)
  text_size : int;
  (** bytes of executable code at the start of the image; everything after
      is writable data (see [begin_data]) *)
  relocations : int array;
  (** byte offsets (into [image]) of 32-bit fields holding absolute
      base-relative addresses; the loader adds the load base to each *)
  symbols : (string * int) list;  (** label name → offset in [image] *)
  entry : int;  (** offset of the entry point (label ["_start"] if
                     defined, else 0) *)
}

val create : unit -> t

val label : t -> string -> unit
(** Define a label at the current position.  @raise Invalid_argument on
    duplicate definition (at [assemble] time). *)

val instr : t -> Isa.t -> unit
(** Emit a concrete instruction. *)

val instrs : t -> Isa.t list -> unit

val movi_label : t -> rd:Isa.reg -> string -> unit
(** [movi_label p ~rd l] loads the absolute address of [l] into [rd];
    emits one relocation entry. *)

val jmp_label : t -> string -> unit
val jz_label : t -> string -> unit
val jnz_label : t -> string -> unit
val jlt_label : t -> string -> unit
val jge_label : t -> string -> unit
val call_label : t -> string -> unit
(** PC-relative control transfers to a label; no relocation. *)

val word : t -> Word.t -> unit
(** Emit a 32-bit data word. *)

val word_label : t -> string -> unit
(** Emit a data word holding the absolute address of a label; emits one
    relocation entry. *)

val begin_data : t -> unit
(** Mark the text/data boundary: everything emitted afterwards is
    non-executable, writable data.  Without the marker the whole image
    counts as text.  May be called at most once. *)

val space : t -> int -> unit
(** Reserve [n] zero bytes. *)

val here : t -> int
(** Current offset (useful for size assertions in tests). *)

val assemble : t -> program
(** Resolve labels and produce the final image.
    @raise Invalid_argument on undefined or duplicate labels. *)
