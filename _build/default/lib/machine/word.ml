type t = int

let bits = 32
let max_value = 0xFFFF_FFFF
let of_int n = n land max_value

let to_signed w =
  if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let of_signed n = n land max_value
let add a b = (a + b) land max_value
let sub a b = (a - b) land max_value
let mul a b = a * b land max_value
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land max_value
let shift_left a n = if n >= bits then 0 else (a lsl n) land max_value
let shift_right_logical a n = if n >= bits then 0 else a lsr n
let equal (a : t) (b : t) = a = b
let compare_signed a b = compare (to_signed a) (to_signed b)
let pp ppf w = Format.fprintf ppf "0x%08X" w
