(** Memory-access classification and faults.

    Every fetch, load and store on the simulated core is classified by an
    {!kind} and routed through a protection hook (the EA-MPU plugs in
    there).  A denied access raises {!Violation}, which the CPU turns into
    a machine fault. *)

type kind =
  | Read
  | Write
  | Execute

val pp_kind : Format.formatter -> kind -> unit

type violation = {
  eip : Word.t;  (** instruction pointer of the code performing the access *)
  addr : Word.t;  (** target address *)
  size : int;  (** access width in bytes *)
  kind : kind;
  reason : string;  (** human-readable denial reason *)
}

exception Violation of violation

val violation : eip:Word.t -> addr:Word.t -> size:int -> kind:kind -> string -> 'a
(** Raise {!Violation} with the given description. *)

val pp_violation : Format.formatter -> violation -> unit
