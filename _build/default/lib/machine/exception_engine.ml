type t = {
  mem : Memory.t;
  idt_base : Word.t;
  mutable pending : int;  (* bitmask of asserted IRQ lines *)
  firmware : (Word.t, string * (unit -> unit)) Hashtbl.t;
  mutable next_firmware : Word.t;
  mutable origin : Word.t;
}

let vector_count = 32
let entry_size = 4
let idt_size = vector_count * entry_size
let swi_vector_base = 16
let firmware_base = 0xFFFF_0000

let create mem ~idt_base =
  {
    mem;
    idt_base;
    pending = 0;
    firmware = Hashtbl.create 16;
    next_firmware = firmware_base;
    origin = 0;
  }

let idt_base t = t.idt_base

let check_vector n =
  if n < 0 || n >= vector_count then
    invalid_arg (Printf.sprintf "Exception_engine: bad vector %d" n)

let set_vector t n addr =
  check_vector n;
  Memory.write32 t.mem (t.idt_base + (n * entry_size)) addr

let vector t n =
  check_vector n;
  Memory.read32 t.mem (t.idt_base + (n * entry_size))

let register_firmware t ~name f =
  let addr = t.next_firmware in
  t.next_firmware <- t.next_firmware + 8;
  Hashtbl.replace t.firmware addr (name, f);
  addr

let firmware_handler t addr =
  Option.map snd (Hashtbl.find_opt t.firmware addr)

let firmware_name t addr =
  Option.map fst (Hashtbl.find_opt t.firmware addr)

let raise_irq t n =
  if n < 0 || n >= swi_vector_base then
    invalid_arg (Printf.sprintf "Exception_engine: bad IRQ line %d" n);
  t.pending <- t.pending lor (1 lsl n)

let pending_irq t =
  if t.pending = 0 then None
  else
    let rec first n = if t.pending land (1 lsl n) <> 0 then n else first (n + 1) in
    Some (first 0)

let ack_irq t n = t.pending <- t.pending land lnot (1 lsl n)
let set_origin t eip = t.origin <- eip
let origin t = t.origin
let entry_cost = 8
