open Tytan_machine
open Tytan_eampu

type t = {
  eampu : Eampu.t;
  clock : Cycles.t;
  code_eip : Word.t;
  mutable installed : int;
}

let create eampu clock ~code_eip = { eampu; clock; code_eip; installed = 0 }
let eampu t = t.eampu
let code_eip t = t.code_eip

let try_install t rule =
  match Eampu.first_free_slot t.eampu with
  | None -> (Error "EA-MPU: no free slot", 0)
  | Some slot -> (
      match Eampu.conflicts t.eampu rule with
      | (_, _) :: _ -> (Error "EA-MPU: rule conflicts with installed rule", slot)
      | [] ->
          Eampu.set_slot t.eampu slot (Some rule);
          t.installed <- t.installed + 1;
          (Ok slot, slot))

let install_rule t rule =
  let result, slot = try_install t rule in
  (* Table 6 cost structure: probing slots 0..slot, then the policy scan
     over all slots, then the register write (on success). *)
  Cycles.charge t.clock
    (Cost_model.eampu_find_slot_base + (slot * Cost_model.eampu_find_slot_step));
  Cycles.charge t.clock Cost_model.eampu_policy_check;
  (match result with
  | Ok _ -> Cycles.charge t.clock Cost_model.eampu_write_rule
  | Error _ -> ());
  result

let install_static t rule =
  let result, _slot = try_install t rule in
  result

let remove_slot t slot = Eampu.clear_slot t.eampu slot
let remove_slots t slots = List.iter (remove_slot t) slots
let rules_installed t = t.installed
