open Tytan_machine
module Crypto = Tytan_crypto

type t = {
  cpu : Cpu.t;
  code_eip : Word.t;
  kp_addr : Word.t;
  store : (int, Crypto.Keystream.sealed) Hashtbl.t;
  mutable nonce_counter : int;
  mutable seals : int;
  mutable unseal_failures : int;
}

let create cpu ~code_eip ~kp_addr =
  {
    cpu;
    code_eip;
    kp_addr;
    store = Hashtbl.create 16;
    nonce_counter = 0;
    seals = 0;
    unseal_failures = 0;
  }

let code_eip t = t.code_eip

let charged t f =
  let before = Crypto.Sha1.total_compressions () in
  let result = f () in
  let used = Crypto.Sha1.total_compressions () - before in
  Cycles.charge (Cpu.clock t.cpu) (used * Cost_model.crypto_per_compression);
  result

let task_key t ~owner =
  let platform_key =
    Cpu.with_firmware t.cpu ~eip:t.code_eip (fun () ->
        Cpu.load_bytes t.cpu t.kp_addr Crypto.Sha1.digest_size)
  in
  Crypto.Kdf.derive_task_key ~platform_key ~task_id:(Task_id.to_bytes owner)

let fresh_nonce t =
  let nonce = Bytes.create 8 in
  t.nonce_counter <- t.nonce_counter + 1;
  Bytes.set_int64_be nonce 0 (Int64.of_int t.nonce_counter);
  nonce

let seal t ~owner ~slot payload =
  charged t (fun () ->
      let key = task_key t ~owner in
      let sealed = Crypto.Keystream.seal ~key ~nonce:(fresh_nonce t) payload in
      Hashtbl.replace t.store slot sealed;
      t.seals <- t.seals + 1)

let unseal t ~owner ~slot =
  charged t (fun () ->
      match Hashtbl.find_opt t.store slot with
      | None ->
          t.unseal_failures <- t.unseal_failures + 1;
          None
      | Some sealed -> (
          let key = task_key t ~owner in
          match Crypto.Keystream.open_sealed ~key sealed with
          | Some plaintext -> Some plaintext
          | None ->
              t.unseal_failures <- t.unseal_failures + 1;
              None))

let payload_bytes = 24 (* six words *)

let words_to_bytes words =
  let b = Bytes.create payload_bytes in
  for i = 0 to 5 do
    Bytes.set_int32_le b (4 * i) (Int32.of_int words.(i))
  done;
  b

let bytes_to_words b =
  Array.init 6 (fun i ->
      Int32.to_int (Bytes.get_int32_le b (4 * i)) land Word.max_value)

let ipc_handler t ~sender ~message =
  let op = message.(0) and slot = message.(1) in
  let reply status words =
    let out = Array.make Ipc.message_words 0 in
    out.(0) <- status;
    Array.blit words 0 out 1 (min 6 (Array.length words));
    Some out
  in
  match op with
  | 1 ->
      seal t ~owner:sender ~slot (words_to_bytes (Array.sub message 2 6));
      reply 0 [||]
  | 2 -> (
      match unseal t ~owner:sender ~slot with
      | Some plaintext -> reply 0 (bytes_to_words plaintext)
      | None -> reply 1 [||])
  | _ -> reply 2 [||]

let slots_used t = Hashtbl.length t.store
let seals t = t.seals
let unseal_failures t = t.unseal_failures

let export t =
  Hashtbl.fold
    (fun slot sealed acc -> (slot, Crypto.Keystream.encode sealed) :: acc)
    t.store []
  |> List.sort compare

let import t blobs =
  (* Validate everything before touching the store. *)
  let decoded =
    List.map
      (fun (slot, blob) -> (slot, Crypto.Keystream.decode blob))
      blobs
  in
  if List.exists (fun (_, d) -> d = None) decoded then
    Error "corrupt NVM image"
  else begin
    List.iter
      (fun (slot, d) -> Hashtbl.replace t.store slot (Option.get d))
      decoded;
    Ok ()
  end
