(** First-fit allocator for the task heap.

    The loader allocates one contiguous block per task ("the base address
    of a task changes depending on which memory regions are free at load
    time") and returns it on unload.  Adjacent free blocks coalesce. *)

open Tytan_machine

type t

val create : base:Word.t -> size:int -> t

val alloc : t -> size:int -> Word.t option
(** First-fit allocation, 16-byte aligned.  [None] when no free block
    fits. *)

val free : t -> Word.t -> unit
(** Return a block by its base address.
    @raise Invalid_argument for an address not currently allocated. *)

val allocated_bytes : t -> int
val free_bytes : t -> int
val allocation_count : t -> int

val largest_free_block : t -> int
(** For fragmentation diagnostics in tests. *)
