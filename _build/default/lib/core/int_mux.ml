open Tytan_machine
open Tytan_rtos

type t = {
  kernel : Kernel.t;
  code_eip : Word.t;
  mutable secure_saves : int;
  mutable secure_restores : int;
}

let create kernel ~code_eip =
  { kernel; code_eip; secure_saves = 0; secure_restores = 0 }

let code_eip t = t.code_eip

let secure_save t (tcb : Tcb.t) gprs =
  let cpu = Kernel.cpu t.kernel in
  let clock = Cpu.clock cpu in
  t.secure_saves <- t.secure_saves + 1;
  Cpu.with_firmware cpu ~eip:t.code_eip (fun () ->
      Cycles.charge clock Cost_model.int_mux_store_context;
      Context.save_frame cpu tcb gprs;
      Cycles.charge clock Cost_model.int_mux_wipe_registers;
      Regfile.wipe_gprs (Cpu.regs cpu);
      Cycles.charge clock Cost_model.int_mux_branch)

(* Resuming a secure task: clear the registers (they may hold another
   task's data), point SP at the saved frame, announce the invocation
   reason, and enter the task at its dedicated entry point.  The entry
   routine does the actual unstacking as guest code. *)
let secure_restore t (tcb : Tcb.t) =
  let cpu = Kernel.cpu t.kernel in
  let clock = Cpu.clock cpu in
  let regs = Cpu.regs cpu in
  t.secure_restores <- t.secure_restores + 1;
  Cycles.charge clock Cost_model.int_mux_restore_branch;
  let reason =
    if tcb.live_frame then begin
      Cycles.charge clock Cost_model.int_mux_restore_assist;
      Toolchain.reason_resume
    end
    else Toolchain.reason_start
  in
  Regfile.wipe_gprs regs;
  Regfile.set regs Regfile.sp tcb.saved_sp;
  Regfile.set regs Regfile.reason reason;
  Regfile.set regs 12 tcb.inbox_base;
  Regfile.set_interrupts regs true;
  Regfile.set_eip regs tcb.entry

let context_ops t =
  let cpu = Kernel.cpu t.kernel in
  let kernel_eip = Kernel.code_eip t.kernel in
  let baseline =
    Context.baseline cpu ~save_cost:Cost_model.freertos_save
      ~restore_cost:Cost_model.freertos_restore
  in
  {
    Context.save =
      (fun tcb gprs ->
        if tcb.secure then secure_save t tcb gprs
        else Cpu.with_firmware cpu ~eip:kernel_eip (fun () -> baseline.save tcb gprs));
    restore =
      (fun tcb ->
        if tcb.secure then secure_restore t tcb
        else Cpu.with_firmware cpu ~eip:kernel_eip (fun () -> baseline.restore tcb));
  }

(* Kernel syscalls from a secure caller expose only their argument
   registers; everything else reaches the OS as zeroes. *)
let os_swis = [ 0; 1; 2; 8; 9; 10 ]

let sanitize gprs =
  Array.init (Array.length gprs) (fun i -> if i <= 2 then gprs.(i) else 0)

let install_vectors t =
  let cpu = Kernel.cpu t.kernel in
  let engine = Cpu.engine cpu in
  let in_mux f = Cpu.with_firmware cpu ~eip:t.code_eip f in
  let tick_handler () =
    in_mux (fun () ->
        let gprs = Regfile.all_gprs (Cpu.regs cpu) in
        Kernel.save_current t.kernel ~gprs;
        Kernel.service_tick t.kernel)
  in
  let addr =
    Exception_engine.register_firmware engine ~name:"int-mux-tick" tick_handler
  in
  Exception_engine.set_vector engine (Kernel.tick_irq t.kernel) addr;
  for irq = 0 to Exception_engine.swi_vector_base - 1 do
    if irq <> Kernel.tick_irq t.kernel then begin
      let handler () =
        in_mux (fun () ->
            let gprs = Regfile.all_gprs (Cpu.regs cpu) in
            Kernel.save_current t.kernel ~gprs;
            Kernel.service_irq t.kernel ~irq)
      in
      let addr =
        Exception_engine.register_firmware engine
          ~name:(Printf.sprintf "int-mux-irq-%d" irq)
          handler
      in
      Exception_engine.set_vector engine irq addr
    end
  done;
  for swi = 0 to 15 do
    let handler () =
      in_mux (fun () ->
          let caller = Kernel.current t.kernel in
          let gprs = Regfile.all_gprs (Cpu.regs cpu) in
          Kernel.save_current t.kernel ~gprs;
          let visible =
            match caller with
            | Some tcb when tcb.secure && List.mem swi os_swis -> sanitize gprs
            | Some _ | None -> gprs
          in
          Kernel.service_swi t.kernel ~swi ~gprs:visible)
    in
    let addr =
      Exception_engine.register_firmware engine
        ~name:(Printf.sprintf "int-mux-swi-%d" swi)
        handler
    in
    Exception_engine.set_vector engine (Exception_engine.swi_vector_base + swi) addr
  done

let secure_saves t = t.secure_saves
let secure_restores t = t.secure_restores
