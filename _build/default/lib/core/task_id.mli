(** Task identities.

    A task's identity [id_t] is the hash digest of its (position-
    independent) binary.  For performance the implementation — like the
    paper's (footnote 9) — uses only the first 64 bits of the SHA-1
    digest, which also lets an identity travel in two CPU registers during
    IPC. *)

open Tytan_machine

type t
(** 8 bytes; total order; usable as a map key. *)

val size : int
(** 8. *)

val of_digest : bytes -> t
(** Truncate a 20-byte SHA-1 digest.  @raise Invalid_argument if the
    digest is shorter than 8 bytes. *)

val of_image : bytes -> t
(** Hash a binary image and truncate — the identity a verifier computes
    for a reference binary. *)

val to_bytes : t -> bytes

val of_bytes : bytes -> t
(** @raise Invalid_argument unless exactly 8 bytes. *)

val to_words : t -> Word.t * Word.t
(** (low, high) little-endian halves, as passed in registers r8/r9
    during IPC. *)

val of_words : lo:Word.t -> hi:Word.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
