(** The secure-storage task.

    Sealed storage bound to task identity: each task's data is encrypted
    under [Kt = HMAC(id_t | Kp)].  Because [id_t] is the hash of the task
    binary, only a task with the {e same binary} can recover data it
    stored — an updated or substituted task derives a different key and
    the authenticated decryption fails.

    Tasks reach the service over secure IPC (sender identification comes
    for free); the message protocol is:
    {v
      request : [op; slot; w0 .. w5]     op 1 = seal, 2 = unseal
      reply   : [status; w0 .. w5; 0]    status 0 = ok, 1 = not found /
                                         verification failed
    v}
    Each slot stores 24 bytes (six words).  The host API below exposes the
    same operations for tests, examples and host-resident verifiers. *)

open Tytan_machine

type t

val create : Cpu.t -> code_eip:Word.t -> kp_addr:Word.t -> t

val code_eip : t -> Word.t

val ipc_handler :
  t -> sender:Task_id.t -> message:Word.t array -> Word.t array option
(** The service endpoint registered with the IPC proxy. *)

val seal : t -> owner:Task_id.t -> slot:int -> bytes -> unit
(** Encrypt-then-MAC the payload under the owner's [Kt] and store it.
    Charges cycles for the key derivation and sealing. *)

val unseal : t -> owner:Task_id.t -> slot:int -> bytes option
(** [None] when the slot is empty or the requester's [Kt] fails to
    authenticate the blob (different identity stored it). *)

val slots_used : t -> int
val seals : t -> int
val unseal_failures : t -> int

(** {2 Non-volatile persistence}

    Sealed blobs are ciphertext: exporting them to NVM and importing them
    after a reboot is safe by construction.  Unsealing succeeds only on
    the same platform (same Kp) {e and} for the same task binary (same
    id_t) — Kt binds both. *)

val export : t -> (int * bytes) list
(** Every slot's encoded sealed blob, ready for NVM. *)

val import : t -> (int * bytes) list -> (unit, string) result
(** Restore blobs from NVM (e.g. after a reboot on a fresh platform
    instance).  Structurally invalid blobs are rejected wholesale. *)
