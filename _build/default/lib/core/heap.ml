open Tytan_machine

let alignment = 16

type block = {
  base : Word.t;
  size : int;
}

type t = {
  mutable free_list : block list;  (* sorted by base *)
  mutable allocated : block list;
}

let create ~base ~size =
  let aligned = (base + alignment - 1) / alignment * alignment in
  let size = size - (aligned - base) in
  if size <= 0 then invalid_arg "Heap.create: empty heap";
  { free_list = [ { base = aligned; size } ]; allocated = [] }

let round_up n = (n + alignment - 1) / alignment * alignment

let alloc t ~size =
  if size <= 0 then invalid_arg "Heap.alloc: size must be positive";
  let size = round_up size in
  let rec scan before = function
    | [] -> None
    | b :: rest when b.size >= size ->
        let taken = { base = b.base; size } in
        let remainder =
          if b.size > size then
            [ { base = b.base + size; size = b.size - size } ]
          else []
        in
        t.free_list <- List.rev_append before (remainder @ rest);
        t.allocated <- taken :: t.allocated;
        Some taken.base
    | b :: rest -> scan (b :: before) rest
  in
  scan [] t.free_list

let coalesce blocks =
  let sorted = List.sort (fun a b -> compare a.base b.base) blocks in
  let rec merge = function
    | a :: b :: rest when a.base + a.size = b.base ->
        merge ({ base = a.base; size = a.size + b.size } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

let free t base =
  match List.partition (fun b -> b.base = base) t.allocated with
  | [ block ], remaining ->
      t.allocated <- remaining;
      t.free_list <- coalesce (block :: t.free_list)
  | [], _ -> invalid_arg "Heap.free: address not allocated"
  | _ :: _ :: _, _ -> assert false

let allocated_bytes t = List.fold_left (fun n b -> n + b.size) 0 t.allocated
let free_bytes t = List.fold_left (fun n b -> n + b.size) 0 t.free_list
let allocation_count t = List.length t.allocated

let largest_free_block t =
  List.fold_left (fun n b -> max n b.size) 0 t.free_list
