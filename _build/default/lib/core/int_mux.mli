(** The trusted interrupt multiplexer (Int Mux).

    Whenever an interrupt or software interrupt fires while a {e secure}
    task runs, the Int Mux — not the untrusted OS — saves the task's
    context to the task's own stack, wipes the CPU registers so the
    interrupt handler learns nothing, and only then branches to the
    handling routine (Table 2).  Symmetrically, a secure task is resumed
    by branching to its entry routine with the reason register set to
    "resume"; the routine itself pops the saved registers and executes the
    dedicated interrupt-return instruction (Table 3).

    Normal tasks keep the unmodified FreeRTOS paths, performed under the
    OS's code identity.

    The Int Mux owns every interrupt vector on a TyTAN platform: handlers
    see sanitised register state.  For the kernel's own syscalls from a
    secure caller, only the argument registers r0–r2 are passed through;
    trusted-service SWIs (IPC and friends) receive the full snapshot. *)

open Tytan_machine
open Tytan_rtos

type t

val create : Kernel.t -> code_eip:Word.t -> t

val code_eip : t -> Word.t

val context_ops : t -> Context.ops
(** Secure-aware save/restore, to be installed with
    {!Kernel.set_context_ops}. *)

val install_vectors : t -> unit
(** Route the tick IRQ and all SWI vectors through the Int Mux. *)

val secure_saves : t -> int
(** Secure context saves performed (for tests and benches). *)

val secure_restores : t -> int
