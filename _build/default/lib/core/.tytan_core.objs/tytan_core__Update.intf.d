lib/core/update.mli: Platform Task_id Tcb Telf Tytan_rtos Tytan_telf
