lib/core/loader.mli: Heap Kernel Mpu_driver Region Rtm Tcb Telf Tytan_eampu Tytan_machine Tytan_rtos Tytan_telf Word
