lib/core/mpu_driver.ml: Cost_model Cycles Eampu List Tytan_eampu Tytan_machine Word
