lib/core/attestation.mli: Cpu Rtm Task_id Tytan_machine Word
