lib/core/heap.mli: Tytan_machine Word
