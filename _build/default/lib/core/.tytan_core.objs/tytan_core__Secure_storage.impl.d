lib/core/secure_storage.ml: Array Bytes Cost_model Cpu Cycles Hashtbl Int32 Int64 Ipc List Option Task_id Tytan_crypto Tytan_machine Word
