lib/core/update.ml: Cost_model Cpu Cycles Int_mux Kernel Option Platform Rtm Task_id Tcb Telf Trace Tytan_machine Tytan_rtos Tytan_telf Word
