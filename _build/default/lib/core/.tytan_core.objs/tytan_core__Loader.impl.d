lib/core/loader.ml: Array Bytes Context Cost_model Cpu Cycles Eampu Heap Ipc Kernel List Memory Mpu_driver Perm Region Rtm Task_id Tcb Telf Trace Tytan_eampu Tytan_machine Tytan_rtos Tytan_telf Word
