lib/core/int_mux.mli: Context Kernel Tytan_machine Tytan_rtos Word
