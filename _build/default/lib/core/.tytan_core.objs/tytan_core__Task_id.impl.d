lib/core/task_id.ml: Bytes Char Format Int32 List Map Printf String Tytan_crypto Tytan_machine Word
