lib/core/task_id.mli: Format Map Tytan_machine Word
