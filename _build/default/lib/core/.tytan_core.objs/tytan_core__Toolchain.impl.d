lib/core/toolchain.ml: Array Assembler Bytes Isa Regfile Tytan_machine Tytan_telf
