lib/core/rtm.ml: Array Bytes Cost_model Cpu Cycles Int32 List Relocate Task_id Tcb Telf Tytan_crypto Tytan_machine Tytan_rtos Tytan_telf Word
