lib/core/secure_storage.mli: Cpu Task_id Tytan_machine Word
