lib/core/int_mux.ml: Array Context Cost_model Cpu Cycles Exception_engine Kernel List Printf Regfile Tcb Toolchain Tytan_machine Tytan_rtos Word
