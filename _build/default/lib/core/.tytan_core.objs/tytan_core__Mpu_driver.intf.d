lib/core/mpu_driver.mli: Cycles Eampu Tytan_eampu Tytan_machine Word
