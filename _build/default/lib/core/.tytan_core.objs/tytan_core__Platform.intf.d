lib/core/platform.mli: Attestation Cpu Cycles Devices Eampu Heap Int_mux Ipc Kernel Loader Mpu_driver Region Rtm Secure_storage Task_id Tcb Trace Tytan_eampu Tytan_machine Tytan_rtos Tytan_telf Word
