lib/core/attestation.ml: Bytes Cost_model Cpu Cycles List Rtm Task_id Tytan_crypto Tytan_machine Word
