lib/core/toolchain.mli: Assembler Tytan_machine Tytan_telf
