lib/core/rtm.mli: Cpu Task_id Tcb Telf Tytan_machine Tytan_rtos Tytan_telf Word
