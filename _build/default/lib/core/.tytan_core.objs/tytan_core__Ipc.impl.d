lib/core/ipc.ml: Array Cost_model Cpu Cycles Exception_engine Kernel List Regfile Rtm Scheduler Task_id Tcb Toolchain Trace Tytan_machine Tytan_rtos Word
