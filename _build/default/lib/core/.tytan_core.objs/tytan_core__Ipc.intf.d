lib/core/ipc.mli: Kernel Rtm Task_id Tcb Tytan_machine Tytan_rtos Word
