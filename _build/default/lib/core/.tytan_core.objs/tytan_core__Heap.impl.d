lib/core/heap.ml: List Tytan_machine Word
