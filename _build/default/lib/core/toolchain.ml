open Tytan_machine

let reason_start = 0
let reason_resume = 1
let reason_message = 2
let swi_ipc_done = 4

(* dispatch (5) + resume path (16) + message path (2) *)
let entry_stub_instructions = 23

let emit_stub p =
  let open Isa in
  Assembler.label p "_start";
  Assembler.instr p (Cmpi (Regfile.reason, reason_resume));
  Assembler.jz_label p "__resume";
  Assembler.instr p (Cmpi (Regfile.reason, reason_message));
  Assembler.jz_label p "__message";
  Assembler.jmp_label p "main";
  Assembler.label p "__resume";
  (* Pop r14 … r0 — the reverse of the save order (see Rtos.Context). *)
  for reg = 14 downto 0 do
    Assembler.instr p (Pop reg)
  done;
  Assembler.instr p Iret;
  Assembler.label p "__message";
  Assembler.call_label p "on_message";
  Assembler.instr p (Swi swi_ipc_done)

(* The message handler is emitted before the user's [main] because user
   code conventionally ends with [begin_data] + data words — anything
   emitted afterwards would land in the non-executable data section. *)
let secure_program ~main ?on_message () =
  let p = Assembler.create () in
  emit_stub p;
  (match on_message with
  | Some emit -> emit p
  | None ->
      Assembler.label p "on_message";
      Assembler.instr p Isa.Ret);
  main p;
  Assembler.assemble p

let normal_program ~main =
  let p = Assembler.create () in
  Assembler.label p "_start";
  Assembler.jmp_label p "main";
  main p;
  Assembler.assemble p

let synthetic_secure ~image_size ~reloc_count ~stack_size =
  (* Fixed prefix: stub (23 instructions), default handler (1), and a
     three-instruction sleep loop. *)
  let prefix_bytes = (entry_stub_instructions + 1 + 3) * Isa.width in
  let fixed = prefix_bytes + (reloc_count * 4) in
  if image_size < fixed || image_size mod 4 <> 0 then
    invalid_arg "Toolchain.synthetic_secure: image size too small or unaligned";
  let nops = (image_size - fixed) / Isa.width in
  let tail = image_size - fixed - (nops * Isa.width) in
  let main p =
    Assembler.label p "main";
    Assembler.label p "loop";
    Assembler.instr p (Isa.Movi (0, 1));
    Assembler.instr p (Isa.Swi 2);
    Assembler.jmp_label p "loop";
    for _ = 1 to nops do
      Assembler.instr p Isa.Nop
    done;
    Assembler.begin_data p;
    for _ = 1 to reloc_count do
      Assembler.word_label p "main"
    done;
    Assembler.space p tail
  in
  let program = secure_program ~main () in
  assert (Bytes.length program.Assembler.image = image_size);
  assert (Array.length program.Assembler.relocations = reloc_count);
  Tytan_telf.Builder.of_program ~stack_size program
