(** The secure IPC proxy.

    A sender S loads its 8-word message into r0–r7, the receiver's
    identity into r8/r9 and the delivery mode into r10 (0 = asynchronous,
    1 = synchronous), then raises SWI {!swi_send}.  The proxy:

    + reads the interrupt origin from the hardware and resolves S's
      identity through the RTM's directory — the sender {e cannot} forge
      its identity;
    + resolves the receiver R by identity;
    + writes the message and [id_S] into R's inbox.  Only the proxy holds
      a write grant on inboxes, so a message in an inbox is implicitly
      authentic;
    + synchronous: branches to R's entry routine with reason "message"
      (the sender blocks until R's handler signals completion with SWI
      {!swi_done}); asynchronous: S continues, R finds the message the
      next time it looks.

    Receivers may also be {e trusted services} (e.g. secure storage):
    host-implemented endpoints addressed by identity whose replies are
    delivered back into the sender's inbox.

    Inbox layout (16-byte header + 8 message words, 64 bytes reserved):
    {v
      +0   status (0 = empty, 1 = message pending)
      +4   sender identity (low word)
      +8   sender identity (high word)
      +12  reserved
      +16  message words m0 … m7
    v} *)

open Tytan_machine
open Tytan_rtos

val swi_send : int
(** SWI number for message send (3). *)

val swi_done : int
(** SWI the entry routine raises when a synchronous handler finishes (4). *)

val swi_shm : int
(** SWI requesting a shared-memory window (12). *)

val inbox_size : int
(** Reserved inbox bytes per task (64). *)

val message_words : int
(** Message payload registers (8, r0–r7). *)

val mode_async : int
val mode_sync : int

type t

val create :
  Kernel.t ->
  Rtm.t ->
  code_eip:Word.t ->
  proxy_id:Task_id.t ->
  shm_alloc:(size:int -> Word.t option) ->
  shm_grant:(a:Tcb.t -> b:Tcb.t -> base:Word.t -> size:int -> (unit, string) result) ->
  t
(** [proxy_id] is the proxy's own identity (used as the sender of
    error notes); [shm_alloc]/[shm_grant] are provided by the platform
    (heap + EA-MPU driver) for shared-memory setup. *)

val code_eip : t -> Word.t

val register_service :
  t ->
  name:string ->
  id:Task_id.t ->
  handler:(sender:Task_id.t -> message:Word.t array -> Word.t array option) ->
  unit
(** Add a trusted host-side endpoint.  A [Some reply] (up to 8 words) is
    written to the sender's inbox as a message from the service. *)

val handle_swi : t -> swi:int -> gprs:Word.t array -> bool
(** The kernel SWI hook entry point; claims {!swi_send}, {!swi_done} and
    {!swi_shm}. *)

val on_task_exit : t -> Tcb.t -> unit
(** Clean up IPC sessions the task participates in (a blocked sender is
    released if its receiver dies mid-handler). *)

(** {2 Host-side helpers (tests, examples)} *)

val read_inbox : t -> Tcb.t -> (Task_id.t * Word.t array) option
(** Read and clear a pending inbox message, under the proxy's identity. *)

val deliver_from_host :
  t -> sender:Task_id.t -> receiver:Task_id.t -> Word.t array -> (unit, string) result
(** Inject a message as if a trusted host component sent it (asynchronous
    delivery only). *)

val deliveries : t -> int
val sync_sessions_open : t -> int
