(** Local and remote attestation.

    The identity [id_t] computed by the RTM serves directly as the local
    attestation report: the EA-MPU guarantees only the RTM writes the
    directory, so a local verifier reading an identity out of it knows it
    is genuine.

    Remote attestation proves [id_t] to a verifier across a network: the
    Remote Attest component MACs the verifier's nonce together with the
    identity under an attestation key [Ka] derived from the platform key
    [Kp].  Only Remote Attest can read [Kp] (EA-MPU rule), so only the
    genuine platform can produce the MAC.  Per-provider keys (paper
    footnote 2) let mutually distrusting stakeholders verify their own
    tasks without sharing a key. *)

open Tytan_machine

type report = {
  id : Task_id.t;
  nonce : bytes;
  mac : bytes;  (** HMAC-SHA1 over nonce | id under Ka (or a provider key) *)
}

type t

val create : Cpu.t -> code_eip:Word.t -> kp_addr:Word.t -> rtm:Rtm.t -> t
(** [kp_addr] is the protected platform-key location; reads happen under
    the component's identity, so the EA-MPU must grant them. *)

val code_eip : t -> Word.t

val local_attest : t -> Task_id.t -> bool
(** Is a task with this identity currently loaded?  (A local verifier's
    view of the RTM directory.) *)

val loaded_identities : t -> Task_id.t list

val remote_attest : t -> id:Task_id.t -> nonce:bytes -> report option
(** Produce a report for a loaded task; [None] if no such task is loaded.
    Charges cycles for the key derivation and MAC. *)

val remote_attest_for_provider :
  t -> provider:string -> id:Task_id.t -> nonce:bytes -> report option
(** Same, MACed under the provider-specific key. *)

val verify : ka:bytes -> report -> expected:Task_id.t -> nonce:bytes -> bool
(** Verifier side: check the MAC, the identity and the nonce (constant
    time; stale nonces are rejected by the caller tracking freshness). *)

val derive_ka : platform_key:bytes -> bytes
(** How a provisioned verifier derives [Ka] from the shared [Kp]. *)

val derive_provider_ka : platform_key:bytes -> provider:string -> bytes

val reports_issued : t -> int
