(** The trusted EA-MPU driver.

    Dynamic task handling requires the EA-MPU to be dynamically
    configurable; only this driver (a trusted component with OS-level
    privilege) writes the unit's slots.  Installing a rule performs the
    paper's three phases, each charged its Table 6 cost:

    + find a free slot — cost grows with the slot's position;
    + check the candidate against every installed rule (protected
      executable regions must not overlap);
    + write the rule to the configuration registers. *)

open Tytan_machine
open Tytan_eampu

type t

val create : Eampu.t -> Cycles.t -> code_eip:Word.t -> t

val eampu : t -> Eampu.t
val code_eip : t -> Word.t

val install_rule : t -> Eampu.rule -> (int, string) result
(** Find-check-write with cycle charges; returns the slot used. *)

val install_static : t -> Eampu.rule -> (int, string) result
(** Boot-time installation: same checks, no cycle charge (secure boot
    happens before the real-time workload starts). *)

val remove_slot : t -> int -> unit
val remove_slots : t -> int list -> unit

val rules_installed : t -> int
(** Dynamic installations performed so far. *)
