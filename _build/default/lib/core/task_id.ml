open Tytan_machine

type t = string (* exactly [size] bytes *)

let size = 8

let of_digest digest =
  if Bytes.length digest < size then
    invalid_arg "Task_id.of_digest: digest too short";
  Bytes.sub_string digest 0 size

let of_image image = of_digest (Tytan_crypto.Sha1.digest image)
let to_bytes t = Bytes.of_string t

let of_bytes b =
  if Bytes.length b <> size then invalid_arg "Task_id.of_bytes: need 8 bytes";
  Bytes.to_string b

let to_words t =
  let b = Bytes.of_string t in
  let lo = Int32.to_int (Bytes.get_int32_le b 0) land Word.max_value in
  let hi = Int32.to_int (Bytes.get_int32_le b 4) land Word.max_value in
  (lo, hi)

let of_words ~lo ~hi =
  let b = Bytes.create size in
  Bytes.set_int32_le b 0 (Int32.of_int lo);
  Bytes.set_int32_le b 4 (Int32.of_int hi);
  Bytes.to_string b

let equal = String.equal
let compare = String.compare

let to_hex t =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (String.to_seq t)))

let pp ppf t = Format.pp_print_string ppf (to_hex t)

module Map = Map.Make (String)
