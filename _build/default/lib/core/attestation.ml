open Tytan_machine
module Crypto = Tytan_crypto

type report = {
  id : Task_id.t;
  nonce : bytes;
  mac : bytes;
}

type t = {
  cpu : Cpu.t;
  code_eip : Word.t;
  kp_addr : Word.t;
  rtm : Rtm.t;
  mutable reports : int;
}

let create cpu ~code_eip ~kp_addr ~rtm =
  { cpu; code_eip; kp_addr; rtm; reports = 0 }

let code_eip t = t.code_eip

let read_platform_key t =
  Cpu.with_firmware t.cpu ~eip:t.code_eip (fun () ->
      Cpu.load_bytes t.cpu t.kp_addr Crypto.Sha1.digest_size)

(* Charge cycles for the SHA-1 compressions a crypto operation really
   performed. *)
let charged t f =
  let before = Crypto.Sha1.total_compressions () in
  let result = f () in
  let used = Crypto.Sha1.total_compressions () - before in
  Cycles.charge (Cpu.clock t.cpu) (used * Cost_model.crypto_per_compression);
  result

let local_attest t id = Rtm.find t.rtm id <> None
let loaded_identities t = List.map (fun e -> e.Rtm.id) (Rtm.all t.rtm)

let report_payload ~id ~nonce = Bytes.cat nonce (Task_id.to_bytes id)

let attest_with_key t ~key ~id ~nonce =
  match Rtm.find t.rtm id with
  | None -> None
  | Some _ ->
      let mac = charged t (fun () -> Crypto.Hmac.mac ~key (report_payload ~id ~nonce)) in
      t.reports <- t.reports + 1;
      Some { id; nonce; mac }

let derive_ka ~platform_key =
  Crypto.Kdf.derive ~platform_key ~purpose:"remote-attestation"

let derive_provider_ka ~platform_key ~provider =
  Crypto.Kdf.derive_provider_key ~platform_key ~provider

let remote_attest t ~id ~nonce =
  let key = charged t (fun () -> derive_ka ~platform_key:(read_platform_key t)) in
  attest_with_key t ~key ~id ~nonce

let remote_attest_for_provider t ~provider ~id ~nonce =
  let key =
    charged t (fun () ->
        derive_provider_ka ~platform_key:(read_platform_key t) ~provider)
  in
  attest_with_key t ~key ~id ~nonce

let verify ~ka report ~expected ~nonce =
  Task_id.equal report.id expected
  && Crypto.Constant_time.equal report.nonce nonce
  && Crypto.Hmac.verify ~key:ka
       (report_payload ~id:report.id ~nonce:report.nonce)
       ~tag:report.mac

let reports_issued t = t.reports
