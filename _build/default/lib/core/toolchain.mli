(** The TyTAN tool chain's secure-task wrapper.

    Every secure task begins with the same entry routine; "since the entry
    routine is similar for all secure tasks, it is automatically included
    by the TyTAN tool chain and does not need to be implemented by the
    task programmer".  The routine dispatches on the invocation reason the
    trusted software placed in the reason register (r13):

    - {!reason_start}: first invocation — jump to the task's [main] label;
    - {!reason_resume}: the task was interrupted earlier — pop the 15
      software-saved registers from the task's own stack and execute the
      dedicated interrupt-return instruction;
    - {!reason_message}: secure IPC delivery — the inbox address is in
      r12; call the task's [on_message] label, then signal completion with
      the IPC-done software interrupt.

    User code refers to the labels [main] (required) and [on_message]
    (optional; a default empty handler is provided). *)

open Tytan_machine

val reason_start : int
val reason_resume : int
val reason_message : int

val swi_ipc_done : int
(** SWI number the entry routine raises after a synchronous message is
    processed (4). *)

val entry_stub_instructions : int
(** Instruction count of the generated stub (for size accounting — the
    paper notes secure tasks' entry routines "slightly increase" their
    memory consumption). *)

val secure_program :
  main:(Assembler.t -> unit) ->
  ?on_message:(Assembler.t -> unit) ->
  unit ->
  Assembler.program
(** Assemble a secure task: entry stub first (so the image's entry point
    is the stub), then the user's code.  [main] must define the label
    ["main"]; [on_message], if given, must define ["on_message"]. *)

val normal_program : main:(Assembler.t -> unit) -> Assembler.program
(** Assemble a normal task: no stub, entry at the ["main"] label the
    caller defines (normal tasks are restored by the OS, not by an entry
    routine). *)

val synthetic_secure :
  image_size:int -> reloc_count:int -> stack_size:int -> Tytan_telf.Telf.t
(** A well-formed schedulable secure task of exactly [image_size] bytes
    with exactly [reloc_count] relocations: the standard entry stub, a
    sleep loop, NOP padding, and relocated data words.  This is what the
    benchmark sweeps load when they need to control a secure task's memory
    size and relocation count precisely (Tables 1, 4, 5, 7).
    @raise Invalid_argument if [image_size] is too small to fit. *)
