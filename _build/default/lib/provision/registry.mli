(** The device manufacturer's provisioning registry.

    The paper's model has three parties: the manufacturer M (provisions
    the hardware and the platform key Kp), the owner/operator O, and task
    providers P.  This module is M's side: per-device platform keys
    derived from a master secret and the device serial (so the registry
    never stores per-device keys at rest), and the software manifest —
    the reference identities a healthy device must be able to attest.

    Key hierarchy: [Kp(serial) = HMAC(master, "device/" serial)];
    attestation keys derive from Kp as on the device, so a verifier
    provisioned with the registry can audit any device in the fleet while
    devices remain mutually isolated — one device's extracted key
    compromises no other device. *)

open Tytan_core

type t

val create : master:bytes -> t
(** [master] is the manufacturer's root secret (any length). *)

val platform_key : t -> serial:string -> bytes
(** The 20-byte Kp burned into device [serial] at manufacture. *)

val attestation_key : t -> serial:string -> bytes
(** Ka for that device, as its verifier needs it. *)

val provider_attestation_key : t -> serial:string -> provider:string -> bytes

(** {2 Software manifest} *)

val set_manifest : t -> (string * Task_id.t) list -> unit
(** [(component name, reference identity)] pairs every audited device
    must be running. *)

val manifest : t -> (string * Task_id.t) list
