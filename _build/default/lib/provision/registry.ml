open Tytan_core
module Crypto = Tytan_crypto

type t = {
  master : bytes;
  mutable manifest : (string * Task_id.t) list;
}

let create ~master = { master; manifest = [] }

let platform_key t ~serial =
  Crypto.Hmac.mac_string ~key:t.master ("device/" ^ serial)

let attestation_key t ~serial =
  Attestation.derive_ka ~platform_key:(platform_key t ~serial)

let provider_attestation_key t ~serial ~provider =
  Attestation.derive_provider_ka ~platform_key:(platform_key t ~serial) ~provider

let set_manifest t entries = t.manifest <- entries
let manifest t = t.manifest
