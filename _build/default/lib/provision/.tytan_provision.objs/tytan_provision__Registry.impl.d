lib/provision/registry.ml: Attestation Task_id Tytan_core Tytan_crypto
