lib/provision/fleet.mli: Format Platform Registry Tytan_core Tytan_rtos Tytan_telf
