lib/provision/registry.mli: Task_id Tytan_core
