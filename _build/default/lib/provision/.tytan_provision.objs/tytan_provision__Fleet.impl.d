lib/provision/fleet.ml: Cosim Format Link List Platform Registry Tytan_core Tytan_netsim Verifier
