(** Wire format of the remote-attestation protocol.

    {v
      challenge : 'C' | seq(4) | id(8) | nonce_len(1) | nonce
      response  : 'R' | seq(4) | id(8) | nonce_len(1) | nonce | mac(20)
      refusal   : 'X' | seq(4)                (no such task loaded)
    v}

    The sequence number pairs retransmitted challenges with their
    responses; freshness comes from the nonce, authenticity from the
    MAC. *)

open Tytan_core

type message =
  | Challenge of { seq : int; id : Task_id.t; nonce : bytes }
  | Response of { seq : int; report : Attestation.report }
  | Refusal of { seq : int }

val encode : message -> bytes

val decode : bytes -> (message, string) result
(** Malformed frames (truncated, bad tag, bad lengths) are errors —
    the device agent drops them. *)
