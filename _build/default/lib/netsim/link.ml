type side =
  | Device
  | Remote

type frame = {
  dest : side;
  due : int;
  payload : bytes;
}

type t = {
  mutable in_flight : frame list;  (* kept sorted by due *)
  mutable rng : int;
  loss_percent : int;
  delay : int;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(seed = 0x5EED) ?(loss_percent = 0) ?(delay = 1) () =
  if loss_percent < 0 || loss_percent > 100 then
    invalid_arg "Link.create: loss_percent out of range";
  if delay < 0 then invalid_arg "Link.create: negative delay";
  { in_flight = []; rng = seed; loss_percent; delay; sent = 0; dropped = 0 }

(* Deterministic LCG (Numerical Recipes constants). *)
let next_rand t =
  t.rng <- (t.rng * 1664525) + 1013904223 land 0x3FFF_FFFF;
  t.rng land 0x3FFF_FFFF

let other = function Device -> Remote | Remote -> Device

let send t ~from ~at payload =
  t.sent <- t.sent + 1;
  if next_rand t mod 100 < t.loss_percent then t.dropped <- t.dropped + 1
  else begin
    let frame = { dest = other from; due = at + t.delay; payload } in
    let earlier, later = List.partition (fun f -> f.due <= frame.due) t.in_flight in
    t.in_flight <- earlier @ (frame :: later)
  end

let deliver t ~to_ ~at =
  let due, remaining =
    List.partition (fun f -> f.dest = to_ && f.due <= at) t.in_flight
  in
  t.in_flight <- remaining;
  List.map (fun f -> f.payload) due

let sent_count t = t.sent
let dropped_count t = t.dropped
