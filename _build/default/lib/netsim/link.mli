(** A lossy, delayed duplex link between a device and a remote peer.

    Remote attestation only means something over an unreliable network:
    challenges and reports can be dropped or delayed, and the verifier
    must drive retries.  The link is deterministic (seeded PRNG), so
    protocol tests reproduce exactly.

    Time is measured in {e slices} — the co-simulation quantum
    ({!Cosim}).  A frame sent at slice [s] becomes deliverable at
    [s + delay] unless the loss lottery drops it. *)

type side =
  | Device
  | Remote

type t

val create : ?seed:int -> ?loss_percent:int -> ?delay:int -> unit -> t
(** [loss_percent] (default 0) of frames are silently dropped;
    survivors arrive [delay] (default 1) slices after sending. *)

val send : t -> from:side -> at:int -> bytes -> unit
(** Queue a frame sent at slice [at]. *)

val deliver : t -> to_:side -> at:int -> bytes list
(** Frames due for [to_] at slice [at] (oldest first); removes them. *)

val sent_count : t -> int
val dropped_count : t -> int
