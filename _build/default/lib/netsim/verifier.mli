(** The remote verifier's retry state machine.

    Provisioned with the attestation key and the reference binary's
    identity, the verifier sends a fresh challenge, waits
    [timeout_slices], and retransmits (with the {e same} nonce and
    sequence — retransmissions are idempotent) up to [max_attempts]
    times.  A response only counts if its sequence matches an
    outstanding challenge, the nonce is the one we sent, the identity is
    the expected one and the MAC verifies. *)

open Tytan_core

type outcome =
  | Pending
  | Attested  (** a genuine report arrived *)
  | Refused  (** the device says the task is not loaded *)
  | Gave_up  (** retries exhausted *)

type t

val create :
  ka:bytes ->
  expected:Task_id.t ->
  ?timeout_slices:int ->
  ?max_attempts:int ->
  unit ->
  t
(** Defaults: 8-slice timeout, 10 attempts. *)

val poll : t -> at:int -> bytes option
(** Called every slice; [Some frame] when a (re)transmission is due. *)

val on_frame : t -> bytes -> unit
(** Feed a received frame; malformed, stale and forged frames are
    counted and ignored. *)

val outcome : t -> outcome
val attempts : t -> int
val rejected_frames : t -> int
