lib/netsim/cosim.ml: Attestation Link List Platform Protocol Tytan_core Verifier
