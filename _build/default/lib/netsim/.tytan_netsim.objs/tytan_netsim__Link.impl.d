lib/netsim/link.ml: List
