lib/netsim/verifier.mli: Task_id Tytan_core
