lib/netsim/protocol.ml: Attestation Buffer Bytes Char Int32 Task_id Tytan_core Tytan_crypto
