lib/netsim/link.mli:
