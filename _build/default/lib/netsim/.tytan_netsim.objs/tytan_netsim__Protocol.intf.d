lib/netsim/protocol.mli: Attestation Task_id Tytan_core
