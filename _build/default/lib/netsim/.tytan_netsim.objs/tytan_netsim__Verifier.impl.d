lib/netsim/verifier.ml: Attestation Bytes Printf Protocol Task_id Tytan_core
