lib/netsim/cosim.mli: Link Platform Tytan_core Verifier
