open Tytan_core

type message =
  | Challenge of { seq : int; id : Task_id.t; nonce : bytes }
  | Response of { seq : int; report : Attestation.report }
  | Refusal of { seq : int }

let mac_size = Tytan_crypto.Sha1.digest_size

let encode = function
  | Challenge { seq; id; nonce } ->
      let b = Buffer.create 32 in
      Buffer.add_char b 'C';
      let seq_bytes = Bytes.create 4 in
      Bytes.set_int32_be seq_bytes 0 (Int32.of_int seq);
      Buffer.add_bytes b seq_bytes;
      Buffer.add_bytes b (Task_id.to_bytes id);
      Buffer.add_char b (Char.chr (Bytes.length nonce land 0xFF));
      Buffer.add_bytes b nonce;
      Buffer.to_bytes b
  | Response { seq; report } ->
      let b = Buffer.create 64 in
      Buffer.add_char b 'R';
      let seq_bytes = Bytes.create 4 in
      Bytes.set_int32_be seq_bytes 0 (Int32.of_int seq);
      Buffer.add_bytes b seq_bytes;
      Buffer.add_bytes b (Task_id.to_bytes report.Attestation.id);
      Buffer.add_char b (Char.chr (Bytes.length report.Attestation.nonce land 0xFF));
      Buffer.add_bytes b report.Attestation.nonce;
      Buffer.add_bytes b report.Attestation.mac;
      Buffer.to_bytes b
  | Refusal { seq } ->
      let b = Bytes.create 5 in
      Bytes.set b 0 'X';
      Bytes.set_int32_be b 1 (Int32.of_int seq);
      b

let decode b =
  let len = Bytes.length b in
  let seq_of () = Int32.to_int (Bytes.get_int32_be b 1) in
  if len < 5 then Error "frame too short"
  else
    match Bytes.get b 0 with
    | 'X' -> if len = 5 then Ok (Refusal { seq = seq_of () }) else Error "bad refusal"
    | 'C' ->
        if len < 14 then Error "truncated challenge"
        else
          let nonce_len = Char.code (Bytes.get b 13) in
          if len <> 14 + nonce_len then Error "bad challenge length"
          else
            Ok
              (Challenge
                 {
                   seq = seq_of ();
                   id = Task_id.of_bytes (Bytes.sub b 5 8);
                   nonce = Bytes.sub b 14 nonce_len;
                 })
    | 'R' ->
        if len < 14 + mac_size then Error "truncated response"
        else
          let nonce_len = Char.code (Bytes.get b 13) in
          if len <> 14 + nonce_len + mac_size then Error "bad response length"
          else
            Ok
              (Response
                 {
                   seq = seq_of ();
                   report =
                     {
                       Attestation.id = Task_id.of_bytes (Bytes.sub b 5 8);
                       nonce = Bytes.sub b 14 nonce_len;
                       mac = Bytes.sub b (14 + nonce_len) mac_size;
                     };
                 })
    | _ -> Error "unknown frame tag"
