open Tytan_core

type outcome =
  | Pending
  | Attested
  | Refused
  | Gave_up

type t = {
  ka : bytes;
  expected : Task_id.t;
  timeout_slices : int;
  max_attempts : int;
  nonce : bytes;
  seq : int;
  mutable outcome : outcome;
  mutable attempts : int;
  mutable next_send : int;
  mutable rejected : int;
}

(* One verifier instance = one challenge (nonce, seq); retransmissions
   reuse both so duplicated responses stay valid exactly once each. *)
let counter = ref 0

let create ~ka ~expected ?(timeout_slices = 8) ?(max_attempts = 10) () =
  incr counter;
  {
    ka;
    expected;
    timeout_slices;
    max_attempts;
    nonce = Bytes.of_string (Printf.sprintf "vnonce-%06d" !counter);
    seq = !counter;
    outcome = Pending;
    attempts = 0;
    next_send = 0;
    rejected = 0;
  }

let poll t ~at =
  if t.outcome <> Pending || at < t.next_send then None
  else if t.attempts >= t.max_attempts then begin
    t.outcome <- Gave_up;
    None
  end
  else begin
    t.attempts <- t.attempts + 1;
    t.next_send <- at + t.timeout_slices;
    Some
      (Protocol.encode
         (Protocol.Challenge { seq = t.seq; id = t.expected; nonce = t.nonce }))
  end

let on_frame t frame =
  if t.outcome = Pending then
    match Protocol.decode frame with
    | Error _ -> t.rejected <- t.rejected + 1
    | Ok (Protocol.Challenge _) -> t.rejected <- t.rejected + 1
    | Ok (Protocol.Refusal { seq }) ->
        if seq = t.seq then t.outcome <- Refused else t.rejected <- t.rejected + 1
    | Ok (Protocol.Response { seq; report }) ->
        if
          seq = t.seq
          && Attestation.verify ~ka:t.ka report ~expected:t.expected
               ~nonce:t.nonce
        then t.outcome <- Attested
        else t.rejected <- t.rejected + 1

let outcome t = t.outcome
let attempts t = t.attempts
let rejected_frames t = t.rejected
