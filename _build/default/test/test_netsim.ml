(* Networked attestation: the lossy link, the wire protocol, the
   verifier's retry machine and the whole co-simulation. *)

open Tytan_core
open Tytan_netsim
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Link ------------------------------------------------------------------ *)

let link_tests =
  [
    Alcotest.test_case "lossless delivery after the delay" `Quick (fun () ->
        let link = Link.create ~delay:2 () in
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "hello");
        check_int "not yet" 0 (List.length (Link.deliver link ~to_:Link.Device ~at:1));
        let due = Link.deliver link ~to_:Link.Device ~at:2 in
        check_int "delivered" 1 (List.length due);
        check_bool "payload" true (List.hd due = Bytes.of_string "hello"));
    Alcotest.test_case "direction separation" `Quick (fun () ->
        let link = Link.create ~delay:0 () in
        Link.send link ~from:Link.Remote ~at:0 (Bytes.of_string "to-device");
        check_int "nothing for remote" 0
          (List.length (Link.deliver link ~to_:Link.Remote ~at:0));
        check_int "one for device" 1
          (List.length (Link.deliver link ~to_:Link.Device ~at:0)));
    Alcotest.test_case "delivery consumes frames" `Quick (fun () ->
        let link = Link.create ~delay:0 () in
        Link.send link ~from:Link.Device ~at:0 (Bytes.of_string "x");
        ignore (Link.deliver link ~to_:Link.Remote ~at:0);
        check_int "gone" 0 (List.length (Link.deliver link ~to_:Link.Remote ~at:9)));
    Alcotest.test_case "loss drops roughly the configured share" `Quick
      (fun () ->
        let link = Link.create ~seed:7 ~loss_percent:50 ~delay:0 () in
        for i = 0 to 199 do
          Link.send link ~from:Link.Remote ~at:i (Bytes.of_string "f")
        done;
        let dropped = Link.dropped_count link in
        check_bool "lossy but not degenerate" true (dropped > 50 && dropped < 150));
    Alcotest.test_case "zero loss drops nothing" `Quick (fun () ->
        let link = Link.create ~loss_percent:0 ~delay:0 () in
        for i = 0 to 49 do
          Link.send link ~from:Link.Remote ~at:i (Bytes.of_string "f")
        done;
        check_int "none dropped" 0 (Link.dropped_count link));
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let run seed =
          let link = Link.create ~seed ~loss_percent:30 ~delay:0 () in
          for i = 0 to 99 do
            Link.send link ~from:Link.Remote ~at:i (Bytes.of_string "f")
          done;
          Link.dropped_count link
        in
        check_int "same seed same drops" (run 42) (run 42));
  ]

(* --- Protocol ---------------------------------------------------------------- *)

let protocol_tests =
  [
    Alcotest.test_case "challenge round trip" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "task") in
        let m = Protocol.Challenge { seq = 7; id; nonce = Bytes.of_string "n123" } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "response round trip" `Quick (fun () ->
        let report =
          {
            Attestation.id = Task_id.of_image (Bytes.of_string "t");
            nonce = Bytes.of_string "nonce-x";
            mac = Bytes.make 20 'm';
          }
        in
        let m = Protocol.Response { seq = 3; report } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "refusal round trip" `Quick (fun () ->
        let m = Protocol.Refusal { seq = 11 } in
        check_bool "round trip" true (Protocol.decode (Protocol.encode m) = Ok m));
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "task") in
        let b = Protocol.encode (Protocol.Challenge { seq = 1; id; nonce = Bytes.of_string "abc" }) in
        check_bool "error" true
          (Result.is_error (Protocol.decode (Bytes.sub b 0 (Bytes.length b - 1)))));
    Alcotest.test_case "unknown tag rejected" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Protocol.decode (Bytes.of_string "Zxxxx"))));
  ]

(* --- End-to-end co-simulation ------------------------------------------------ *)

let device_with_task () =
  let p = Platform.create () in
  let telf = Tasks.counter () in
  let tcb = Result.get_ok (Platform.load_blocking p ~name:"fw" telf) in
  let rtm = Option.get (Platform.rtm p) in
  let id = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id in
  let ka =
    Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
  in
  (p, tcb, id, ka)

let cosim_tests =
  [
    Alcotest.test_case "attestation over a perfect link" `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let v = Verifier.create ~ka ~expected:id () in
        Cosim.attach_verifier cosim v;
        let slices = Cosim.run_until_settled cosim ~max_slices:100 in
        check_bool "attested" true (Verifier.outcome v = Verifier.Attested);
        check_int "single attempt" 1 (Verifier.attempts v);
        check_bool "settled quickly" true (slices <= 5));
    Alcotest.test_case "attestation survives 60% frame loss via retries"
      `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create ~seed:3 ~loss_percent:60 () in
        let cosim = Cosim.create p ~link () in
        let v = Verifier.create ~ka ~expected:id ~max_attempts:30 () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:500);
        check_bool "eventually attested" true (Verifier.outcome v = Verifier.Attested);
        check_bool "needed retries" true (Verifier.attempts v > 1));
    Alcotest.test_case "ghost identity is refused" `Quick (fun () ->
        let p, _, _, ka = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let ghost = Task_id.of_image (Bytes.of_string "not-there") in
        let v = Verifier.create ~ka ~expected:ghost () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:100);
        check_bool "refused" true (Verifier.outcome v = Verifier.Refused));
    Alcotest.test_case "total loss gives up after max attempts" `Quick
      (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create ~loss_percent:100 () in
        let cosim = Cosim.create p ~link () in
        let v = Verifier.create ~ka ~expected:id ~max_attempts:4 ~timeout_slices:2 () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:200);
        check_bool "gave up" true (Verifier.outcome v = Verifier.Gave_up);
        check_int "all attempts used" 4 (Verifier.attempts v));
    Alcotest.test_case "wrong verifier key rejects genuine reports" `Quick
      (fun () ->
        let p, _, id, _ = device_with_task () in
        let link = Link.create () in
        let cosim = Cosim.create p ~link () in
        let bad_ka = Attestation.derive_ka ~platform_key:(Bytes.make 20 'Z') in
        let v = Verifier.create ~ka:bad_ka ~expected:id ~max_attempts:3 ~timeout_slices:2 () in
        Cosim.attach_verifier cosim v;
        ignore (Cosim.run_until_settled cosim ~max_slices:100);
        check_bool "never attested" true (Verifier.outcome v = Verifier.Gave_up);
        check_bool "reports were rejected" true (Verifier.rejected_frames v >= 1));
    Alcotest.test_case "device keeps its deadlines while attesting" `Quick
      (fun () ->
        let p, tcb, id, ka = device_with_task () in
        let rtm = Option.get (Platform.rtm p) in
        let base = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.base in
        let count () =
          Tytan_machine.Cpu.with_firmware (Platform.cpu p)
            ~eip:(Rtm.code_eip rtm) (fun () ->
              Tytan_machine.Cpu.load32 (Platform.cpu p)
                (base + Tasks.data_cell_offset (Tasks.counter ())))
        in
        let link = Link.create ~loss_percent:20 ~seed:3 () in
        let cosim = Cosim.create p ~link () in
        (* Several concurrent sessions hammer the device. *)
        for _ = 1 to 5 do
          Cosim.attach_verifier cosim (Verifier.create ~ka ~expected:id ())
        done;
        let before = count () in
        Cosim.run cosim ~slices:30;
        check_bool "task held ~1 activation per tick" true
          (count () - before >= 28));
    Alcotest.test_case "concurrent sessions all settle" `Quick (fun () ->
        let p, _, id, ka = device_with_task () in
        let link = Link.create ~loss_percent:30 ~seed:17 () in
        let cosim = Cosim.create p ~link () in
        let sessions =
          List.init 4 (fun _ -> Verifier.create ~ka ~expected:id ~max_attempts:20 ())
        in
        List.iter (Cosim.attach_verifier cosim) sessions;
        ignore (Cosim.run_until_settled cosim ~max_slices:1000);
        List.iter
          (fun v ->
            check_bool "attested" true (Verifier.outcome v = Verifier.Attested))
          sessions;
        check_bool "device served many challenges" true
          (Cosim.challenges_served cosim >= 4));
  ]

let () =
  Alcotest.run "netsim"
    [
      ("link", link_tests);
      ("protocol", protocol_tests);
      ("cosim", cosim_tests);
    ]
