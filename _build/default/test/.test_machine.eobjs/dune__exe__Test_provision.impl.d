test/test_provision.ml: Alcotest Attestation Bytes Fleet List Platform Registry Result Rtm Tytan_core Tytan_machine Tytan_netsim Tytan_provision Tytan_tasks Tytan_telf
