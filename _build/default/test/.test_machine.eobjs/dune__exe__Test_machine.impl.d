test/test_machine.ml: Access Alcotest Array Assembler Bytes Char Cpu Cycles Devices Disasm Exception_engine Format Isa List Memory Option Regfile String Trace Tytan_machine Word
