test/test_telf.ml: Alcotest Assembler Builder Bytes Int32 Isa Relocate Result Telf Tytan_machine Tytan_telf Word
