test/test_soak.ml: Alcotest Array Heap Ipc Lazy List Option Platform Printf Result Rtm Tcb Toolchain Tytan_core Tytan_eampu Tytan_machine Tytan_rtos Tytan_tasks
