test/test_telf.mli:
