test/test_eampu.mli:
