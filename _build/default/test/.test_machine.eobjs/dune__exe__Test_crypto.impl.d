test/test_crypto.ml: Alcotest Bytes Char Constant_time Hmac Kdf Keystream List Printf Sha1 Sha256 String Tytan_crypto
