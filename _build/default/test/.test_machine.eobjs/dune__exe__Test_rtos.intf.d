test/test_rtos.mli:
