test/test_provision.mli:
