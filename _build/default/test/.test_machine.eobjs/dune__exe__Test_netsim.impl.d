test/test_netsim.ml: Alcotest Attestation Bytes Cosim Link List Option Platform Protocol Result Rtm Task_id Tytan_core Tytan_machine Tytan_netsim Tytan_tasks Verifier
