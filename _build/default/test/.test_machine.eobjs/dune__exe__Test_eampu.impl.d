test/test_eampu.ml: Access Alcotest Eampu List Perm Region Tytan_eampu Tytan_machine
