(* RTOS tests: scheduler policy, RT queues, software timers, and kernel
   behaviour on a live baseline platform (context switching, delays,
   priorities, queue syscalls from guest code). *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tcb ?(priority = 2) ?(secure = false) ~id name =
  Tcb.make ~id ~name ~priority ~secure ~region_base:0x1000 ~region_size:0x400
    ~code_base:0x1000 ~code_size:0x100 ~entry:0x1000 ~stack_base:0x1200
    ~stack_size:0x200 ~inbox_base:0

(* --- Scheduler ----------------------------------------------------------- *)

let scheduler_tests =
  [
    Alcotest.test_case "highest priority wins" `Quick (fun () ->
        let s = Scheduler.create () in
        let low = tcb ~priority:1 ~id:1 "low" in
        let high = tcb ~priority:5 ~id:2 "high" in
        Scheduler.add_ready s low;
        Scheduler.add_ready s high;
        check_bool "high picked" true (Scheduler.pick s = Some high));
    Alcotest.test_case "fifo within a priority" `Quick (fun () ->
        let s = Scheduler.create () in
        let a = tcb ~id:1 "a" and b = tcb ~id:2 "b" in
        Scheduler.add_ready s a;
        Scheduler.add_ready s b;
        check_bool "a first" true (Scheduler.take s = Some a);
        check_bool "b second" true (Scheduler.take s = Some b);
        check_bool "empty" true (Scheduler.take s = None));
    Alcotest.test_case "rotate round-robins" `Quick (fun () ->
        let s = Scheduler.create () in
        let a = tcb ~id:1 "a" and b = tcb ~id:2 "b" in
        Scheduler.add_ready s a;
        Scheduler.add_ready s b;
        Scheduler.rotate s ~priority:2;
        check_bool "b now first" true (Scheduler.pick s = Some b));
    Alcotest.test_case "remove drops from ready" `Quick (fun () ->
        let s = Scheduler.create () in
        let a = tcb ~id:1 "a" in
        Scheduler.add_ready s a;
        Scheduler.remove s a;
        check_int "empty" 0 (Scheduler.ready_count s));
    Alcotest.test_case "delay and wake ordering" `Quick (fun () ->
        let s = Scheduler.create () in
        let a = tcb ~id:1 "a" and b = tcb ~id:2 "b" in
        Scheduler.delay_until s a ~wake_tick:5;
        Scheduler.delay_until s b ~wake_tick:3;
        for _ = 1 to 3 do
          Scheduler.advance_tick s
        done;
        let due = Scheduler.wake_due s in
        check_int "only b due" 1 (List.length due);
        check_bool "b" true (List.hd due == b);
        for _ = 1 to 2 do
          Scheduler.advance_tick s
        done;
        check_int "a due later" 1 (List.length (Scheduler.wake_due s)));
    Alcotest.test_case "sleep_on with max_int never wakes" `Quick (fun () ->
        let s = Scheduler.create () in
        let a = tcb ~id:1 "a" in
        Scheduler.sleep_on s a ~wake_tick:max_int ~reason:(Tcb.Queue_recv_wait 0);
        for _ = 1 to 100 do
          Scheduler.advance_tick s
        done;
        check_int "still asleep" 0 (List.length (Scheduler.wake_due s)));
    Alcotest.test_case "priority out of range rejected" `Quick (fun () ->
        let s = Scheduler.create () in
        let bad = tcb ~priority:Scheduler.priority_levels ~id:1 "bad" in
        check_bool "raises" true
          (try
             Scheduler.add_ready s bad;
             false
           with Invalid_argument _ -> true));
  ]

(* --- RT queue structure -------------------------------------------------- *)

let rt_queue_tests =
  [
    Alcotest.test_case "fifo order" `Quick (fun () ->
        let q = Rt_queue.create ~id:0 ~capacity:4 in
        Rt_queue.push q 1;
        Rt_queue.push q 2;
        Rt_queue.push q 3;
        check_int "pop 1" 1 (Rt_queue.pop q);
        check_int "pop 2" 2 (Rt_queue.pop q));
    Alcotest.test_case "capacity enforced" `Quick (fun () ->
        let q = Rt_queue.create ~id:0 ~capacity:1 in
        Rt_queue.push q 1;
        check_bool "full" true (Rt_queue.is_full q);
        check_bool "push raises" true
          (try
             Rt_queue.push q 2;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "waiter fifo and drop" `Quick (fun () ->
        let q = Rt_queue.create ~id:0 ~capacity:1 in
        let a = tcb ~id:1 "a" and b = tcb ~id:2 "b" in
        Rt_queue.add_recv_waiter q a;
        Rt_queue.add_recv_waiter q b;
        Rt_queue.drop_waiter q a;
        check_bool "b remains" true (Rt_queue.take_recv_waiter q = Some b);
        check_bool "empty" true (Rt_queue.take_recv_waiter q = None));
    Alcotest.test_case "send waiter carries value" `Quick (fun () ->
        let q = Rt_queue.create ~id:0 ~capacity:1 in
        let a = tcb ~id:1 "a" in
        Rt_queue.add_send_waiter q a ~value:42;
        match Rt_queue.take_send_waiter q with
        | Some (w, v) ->
            check_bool "task" true (w == a);
            check_int "value" 42 v
        | None -> Alcotest.fail "no waiter");
  ]

(* --- Software timers ----------------------------------------------------- *)

let sw_timer_tests =
  [
    Alcotest.test_case "one-shot fires once" `Quick (fun () ->
        let t = Sw_timer.create () in
        let fired = ref 0 in
        ignore (Sw_timer.arm t ~at_tick:5 (fun () -> incr fired));
        check_int "early" 0 (Sw_timer.fire_due t ~now:4);
        check_int "on time" 1 (Sw_timer.fire_due t ~now:5);
        check_int "once" 0 (Sw_timer.fire_due t ~now:100);
        check_int "fired" 1 !fired);
    Alcotest.test_case "periodic re-arms" `Quick (fun () ->
        let t = Sw_timer.create () in
        let fired = ref 0 in
        ignore (Sw_timer.arm t ~at_tick:2 ~period:3 (fun () -> incr fired));
        ignore (Sw_timer.fire_due t ~now:2);
        ignore (Sw_timer.fire_due t ~now:5);
        ignore (Sw_timer.fire_due t ~now:8);
        check_int "three times" 3 !fired);
    Alcotest.test_case "cancel" `Quick (fun () ->
        let t = Sw_timer.create () in
        let fired = ref 0 in
        let id = Sw_timer.arm t ~at_tick:1 (fun () -> incr fired) in
        Sw_timer.cancel t id;
        ignore (Sw_timer.fire_due t ~now:10);
        check_int "never" 0 !fired);
    Alcotest.test_case "ordering by deadline" `Quick (fun () ->
        let t = Sw_timer.create () in
        let order = ref [] in
        ignore (Sw_timer.arm t ~at_tick:5 (fun () -> order := 5 :: !order));
        ignore (Sw_timer.arm t ~at_tick:2 (fun () -> order := 2 :: !order));
        ignore (Sw_timer.fire_due t ~now:10);
        check_bool "2 before 5" true (!order = [ 5; 2 ]));
  ]

(* --- Kernel behaviour on a live baseline platform ------------------------ *)

let baseline () = Platform.create ~config:Platform.baseline_config ()

let data_word p (tcb : Tcb.t) telf index =
  let addr = tcb.region_base + Tasks.data_cell_offset telf + (4 * index) in
  match Platform.rtm p with
  | Some rtm when tcb.secure ->
      (* TyTAN platform: read under the RTM's identity. *)
      Cpu.with_firmware (Platform.cpu p) ~eip:(Rtm.code_eip rtm) (fun () ->
          Cpu.load32 (Platform.cpu p) addr)
  | Some _ | None -> Cpu.load32 (Platform.cpu p) addr

let kernel_tests =
  [
    Alcotest.test_case "periodic task runs at tick rate" `Quick (fun () ->
        let p = baseline () in
        let telf = Tasks.counter ~secure:false () in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"c" ~secure:false telf) in
        Platform.run_ticks p 10;
        let count = data_word p tcb telf 0 in
        check_bool "ran ~once per tick" true (count >= 9 && count <= 11));
    Alcotest.test_case "two tasks share the processor" `Quick (fun () ->
        let p = baseline () in
        let t1 = Tasks.counter ~secure:false () in
        let t2 = Tasks.counter ~secure:false () in
        let a = Result.get_ok (Platform.load_blocking p ~name:"a" ~secure:false t1) in
        let b = Result.get_ok (Platform.load_blocking p ~name:"b" ~secure:false t2) in
        Platform.run_ticks p 10;
        check_bool "both progress" true
          (data_word p a t1 0 >= 8 && data_word p b t2 0 >= 8));
    Alcotest.test_case "higher priority preempts busy loop" `Quick (fun () ->
        let p = baseline () in
        let busy = Tasks.busy_loop ~secure:false () in
        let periodic = Tasks.counter ~secure:false () in
        let _b =
          Result.get_ok (Platform.load_blocking p ~name:"busy" ~secure:false ~priority:2 busy)
        in
        let c =
          Result.get_ok
            (Platform.load_blocking p ~name:"hi" ~secure:false ~priority:3 periodic)
        in
        Platform.run_ticks p 10;
        check_bool "high-priority task kept its rate despite the spinner" true
          (data_word p c periodic 0 >= 9));
    Alcotest.test_case "yielding task exits after count" `Quick (fun () ->
        let p = baseline () in
        let telf = Tasks.yielder ~secure:false ~count:5 () in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"y" ~secure:false telf) in
        Platform.run_ticks p 5;
        check_bool "terminated" true (tcb.Tcb.state = Tcb.Terminated);
        check_int "did its work" 5 (data_word p tcb telf 0));
    Alcotest.test_case "terminated task memory is reclaimed" `Quick (fun () ->
        let p = baseline () in
        let before = Heap.allocated_bytes (Platform.heap p) in
        let telf = Tasks.yielder ~secure:false ~count:2 () in
        let _ = Result.get_ok (Platform.load_blocking p ~name:"y" ~secure:false telf) in
        Platform.run_ticks p 5;
        check_int "heap back to baseline" before
          (Heap.allocated_bytes (Platform.heap p)));
    Alcotest.test_case "suspend stops scheduling, resume restarts" `Quick
      (fun () ->
        let p = baseline () in
        let telf = Tasks.counter ~secure:false () in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"c" ~secure:false telf) in
        Platform.run_ticks p 5;
        Platform.suspend p tcb;
        let frozen = data_word p tcb telf 0 in
        Platform.run_ticks p 5;
        check_int "no progress while suspended" frozen (data_word p tcb telf 0);
        Platform.resume p tcb;
        Platform.run_ticks p 5;
        check_bool "resumed" true (data_word p tcb telf 0 > frozen));
    Alcotest.test_case "idle task runs when nothing is ready" `Quick
      (fun () ->
        let p = baseline () in
        Platform.run_ticks p 3;
        let idle = Option.get (Kernel.idle_task (Platform.kernel p)) in
        check_bool "idle was dispatched" true (idle.Tcb.activations > 0));
    Alcotest.test_case "tick count advances with time" `Quick (fun () ->
        let p = baseline () in
        Platform.run_ticks p 7;
        let ticks = Kernel.tick_count (Platform.kernel p) in
        check_bool "around 7" true (ticks >= 6 && ticks <= 8));
    Alcotest.test_case "context switches counted" `Quick (fun () ->
        let p = baseline () in
        let telf = Tasks.counter ~secure:false () in
        let _ = Result.get_ok (Platform.load_blocking p ~name:"c" ~secure:false telf) in
        Platform.run_ticks p 5;
        check_bool "switching happened" true
          (Kernel.context_switches (Platform.kernel p) > 5));
    Alcotest.test_case "unknown swi kills the task" `Quick (fun () ->
        let p = baseline () in
        let prog =
          Toolchain.normal_program ~main:(fun a ->
              Assembler.label a "main";
              Assembler.instr a (Isa.Swi 14);
              Assembler.label a "rest";
              Assembler.jmp_label a "rest")
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:256 prog in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"bad" ~secure:false telf) in
        Platform.run_ticks p 2;
        check_bool "killed" true (tcb.Tcb.state = Tcb.Terminated));
  ]

(* Queue syscalls from guest code: producer sends 1..n, consumer sums. *)
let queue_producer qid n =
  Toolchain.normal_program ~main:(fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.instr p (Movi (3, 0)); (* next value *)
      Assembler.label p "loop";
      Assembler.instr p (Addi (3, 3, 1));
      Assembler.movi_label p ~rd:4 "saved";
      Assembler.instr p (Stw (4, 0, 3));
      Assembler.instr p (Movi (0, qid));
      Assembler.instr p (Mov (1, 3));
      Assembler.instr p (Movi (2, 50)); (* generous timeout *)
      Assembler.instr p (Swi 8);
      Assembler.movi_label p ~rd:4 "saved";
      Assembler.instr p (Ldw (3, 4, 0));
      Assembler.instr p (Cmpi (3, n));
      Assembler.jlt_label p "loop";
      Assembler.instr p (Swi 1);
      Assembler.begin_data p;
      Assembler.label p "saved";
      Assembler.word p 0)

let queue_consumer qid n =
  Toolchain.normal_program ~main:(fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "loop";
      Assembler.instr p (Movi (0, qid));
      Assembler.instr p (Movi (2, 50));
      Assembler.instr p (Swi 9); (* r0 = value, r1 = status *)
      Assembler.instr p (Cmpi (1, 0));
      Assembler.jnz_label p "loop";
      Assembler.movi_label p ~rd:4 "sum";
      Assembler.instr p (Ldw (5, 4, 0));
      Assembler.instr p (Add (5, 5, 0));
      Assembler.instr p (Stw (4, 0, 5));
      Assembler.movi_label p ~rd:4 "count";
      Assembler.instr p (Ldw (5, 4, 0));
      Assembler.instr p (Addi (5, 5, 1));
      Assembler.instr p (Stw (4, 0, 5));
      Assembler.instr p (Cmpi (5, n));
      Assembler.jlt_label p "loop";
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "sum";
      Assembler.word p 0;
      Assembler.label p "count";
      Assembler.word p 0)

let queue_syscall_tests =
  [
    Alcotest.test_case "producer/consumer over an RT queue" `Quick (fun () ->
        let p = baseline () in
        let qid = Kernel.create_queue (Platform.kernel p) ~capacity:2 in
        let n = 6 in
        let prod = Tytan_telf.Builder.of_program ~stack_size:256 (queue_producer qid n) in
        let cons = Tytan_telf.Builder.of_program ~stack_size:256 (queue_consumer qid n) in
        let c = Result.get_ok (Platform.load_blocking p ~name:"cons" ~secure:false cons) in
        let _ = Result.get_ok (Platform.load_blocking p ~name:"prod" ~secure:false prod) in
        Platform.run_ticks p 40;
        let sum = data_word p c cons 0 in
        let count = data_word p c cons 1 in
        check_int "all received" n count;
        check_int "sum 1..n" (n * (n + 1) / 2) sum);
    Alcotest.test_case "receive on empty queue times out" `Quick (fun () ->
        let p = baseline () in
        let qid = Kernel.create_queue (Platform.kernel p) ~capacity:2 in
        (* A consumer with a short timeout publishes the status. *)
        let prog =
          Toolchain.normal_program ~main:(fun a ->
              let open Isa in
              Assembler.label a "main";
              Assembler.instr a (Movi (0, qid));
              Assembler.instr a (Movi (2, 2)); (* 2-tick timeout *)
              Assembler.instr a (Swi 9);
              Assembler.movi_label a ~rd:4 "status";
              Assembler.instr a (Stw (4, 0, 1));
              Assembler.label a "rest";
              Assembler.instr a (Movi (0, 100));
              Assembler.instr a (Swi 2);
              Assembler.jmp_label a "rest";
              Assembler.begin_data a;
              Assembler.label a "status";
              Assembler.word a 99)
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:256 prog in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"t" ~secure:false telf) in
        Platform.run_ticks p 10;
        check_int "timeout status" 1 (data_word p tcb telf 0));
    Alcotest.test_case "unknown queue id returns error status" `Quick
      (fun () ->
        let p = baseline () in
        let prog =
          Toolchain.normal_program ~main:(fun a ->
              let open Isa in
              Assembler.label a "main";
              Assembler.instr a (Movi (0, 77)); (* no such queue *)
              Assembler.instr a (Movi (1, 5));
              Assembler.instr a (Movi (2, 0));
              Assembler.instr a (Swi 8);
              Assembler.movi_label a ~rd:4 "status";
              Assembler.instr a (Stw (4, 0, 1));
              Assembler.label a "rest";
              Assembler.instr a (Movi (0, 100));
              Assembler.instr a (Swi 2);
              Assembler.jmp_label a "rest";
              Assembler.begin_data a;
              Assembler.label a "status";
              Assembler.word a 99)
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:256 prog in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"t" ~secure:false telf) in
        Platform.run_ticks p 4;
        check_int "error status" 2 (data_word p tcb telf 0));
  ]

(* --- Run-time statistics and dynamic priorities ----------------------------- *)

let stats_tests =
  [
    Alcotest.test_case "busy task dominates the CPU accounting" `Quick
      (fun () ->
        let p = baseline () in
        let busy = Result.get_ok (Platform.load_blocking p ~name:"busy" ~secure:false (Tasks.busy_loop ~secure:false ())) in
        let idleish_telf = Tasks.counter ~secure:false () in
        let idleish = Result.get_ok (Platform.load_blocking p ~name:"calm" ~secure:false idleish_telf) in
        Platform.run_ticks p 20;
        let usage = Kernel.cpu_usage (Platform.kernel p) in
        let share tcb =
          try List.assq tcb usage with Not_found -> 0.0
        in
        check_bool "busy >> calm" true (share busy > 5.0 *. share idleish);
        check_bool "busy holds most of the machine" true (share busy > 0.5));
    Alcotest.test_case "usage shares stay within [0,1] and sum sensibly"
      `Quick (fun () ->
        let p = baseline () in
        ignore (Result.get_ok (Platform.load_blocking p ~name:"a" ~secure:false (Tasks.counter ~secure:false ())));
        Platform.run_ticks p 10;
        let usage = Kernel.cpu_usage (Platform.kernel p) in
        List.iter
          (fun (_, share) ->
            check_bool "in range" true (share >= 0.0 && share <= 1.0))
          usage;
        let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 usage in
        check_bool "no double counting" true (total <= 1.01));
    Alcotest.test_case "priority change takes effect" `Quick (fun () ->
        let p = baseline () in
        let a_telf = Tasks.busy_loop ~secure:false () in
        let a = Result.get_ok (Platform.load_blocking p ~name:"a" ~secure:false ~priority:2 a_telf) in
        let b_telf = Tasks.counter ~secure:false () in
        let b = Result.get_ok (Platform.load_blocking p ~name:"b" ~secure:false ~priority:2 b_telf) in
        Platform.run_ticks p 10;
        (* Demote the spinner below the counter: the counter should now
           own the CPU between its delays, and the spinner only fills the
           slack. *)
        Kernel.set_priority (Platform.kernel p) a ~priority:1;
        let before = data_word p b b_telf 0 in
        Platform.run_ticks p 10;
        check_bool "counter kept running" true
          (data_word p b b_telf 0 - before >= 9);
        check_int "spinner demoted" 1 a.Tcb.priority);
    Alcotest.test_case "set_priority validates its range" `Quick (fun () ->
        let p = baseline () in
        let a = Result.get_ok (Platform.load_blocking p ~name:"a" ~secure:false (Tasks.counter ~secure:false ())) in
        check_bool "raises" true
          (try
             Kernel.set_priority (Platform.kernel p) a ~priority:99;
             false
           with Invalid_argument _ -> true));
  ]

(* --- Device interrupts (deferred handling) --------------------------------- *)

(* A task that blocks on queue_recv and sums everything it receives. *)
let rx_consumer qid =
  Toolchain.normal_program ~main:(fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "loop";
      Assembler.instr p (Movi (0, qid));
      Assembler.instr p (Movi (2, Word.of_int Kernel.no_timeout));
      Assembler.instr p (Swi 9);
      Assembler.instr p (Cmpi (1, 0));
      Assembler.jnz_label p "loop";
      Assembler.movi_label p ~rd:4 "sum";
      Assembler.instr p (Ldw (5, 4, 0));
      Assembler.instr p (Add (5, 5, 0));
      Assembler.instr p (Stw (4, 0, 5));
      Assembler.movi_label p ~rd:4 "count";
      Assembler.instr p (Ldw (5, 4, 0));
      Assembler.instr p (Addi (5, 5, 1));
      Assembler.instr p (Stw (4, 0, 5));
      Assembler.jmp_label p "loop";
      Assembler.begin_data p;
      Assembler.label p "sum";
      Assembler.word p 0;
      Assembler.label p "count";
      Assembler.word p 0)

let device_irq_tests =
  [
    Alcotest.test_case "injected frames wake a blocked receiver" `Quick
      (fun () ->
        let p = baseline () in
        let qid = Kernel.create_queue (Platform.kernel p) ~capacity:8 in
        let fifo =
          Platform.attach_rx_fifo p ~name:"can0" ~base:0xF500_0000 ~irq:1
            ~capacity:8
        in
        let _dropped = Platform.route_rx_to_queue p fifo ~queue_id:qid in
        let telf = Tytan_telf.Builder.of_program ~stack_size:256 (rx_consumer qid) in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"rx" ~secure:false telf) in
        Platform.run_ticks p 2;
        check_bool "blocked waiting" true
          (tcb.Tcb.state = Tcb.Blocked (Tcb.Queue_recv_wait qid));
        List.iter (fun v -> ignore (Devices.Rx_fifo.inject fifo v)) [ 10; 20; 12 ];
        Platform.run_ticks p 3;
        check_int "all frames consumed" 3 (data_word p tcb telf 1);
        check_int "payload sum" 42 (data_word p tcb telf 0));
    Alcotest.test_case "same path works on the TyTAN platform" `Quick
      (fun () ->
        let p = Platform.create () in
        let qid = Kernel.create_queue (Platform.kernel p) ~capacity:8 in
        let fifo =
          Platform.attach_rx_fifo p ~name:"can0" ~base:0xF500_0000 ~irq:1
            ~capacity:8
        in
        let _ = Platform.route_rx_to_queue p fifo ~queue_id:qid in
        let telf = Tytan_telf.Builder.of_program ~stack_size:256 (rx_consumer qid) in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"rx" ~secure:false telf) in
        Platform.run_ticks p 2;
        ignore (Devices.Rx_fifo.inject fifo 7);
        ignore (Devices.Rx_fifo.inject fifo 8);
        Platform.run_ticks p 3;
        check_int "frames consumed through the Int Mux path" 2
          (data_word p tcb telf 1);
        ignore tcb);
    Alcotest.test_case "fifo overflow is counted, not fatal" `Quick (fun () ->
        let p = baseline () in
        let fifo =
          Platform.attach_rx_fifo p ~name:"can0" ~base:0xF500_0000 ~irq:1
            ~capacity:2
        in
        check_bool "first fits" true (Devices.Rx_fifo.inject fifo 1);
        check_bool "second fits" true (Devices.Rx_fifo.inject fifo 2);
        check_bool "third dropped" false (Devices.Rx_fifo.inject fifo 3);
        check_int "one drop" 1 (Devices.Rx_fifo.dropped fifo);
        check_int "two held" 2 (Devices.Rx_fifo.pending fifo));
    Alcotest.test_case "secure task can poll the FIFO over MMIO" `Quick
      (fun () ->
        let p = Platform.create () in
        let fifo =
          Platform.attach_rx_fifo p ~name:"can0" ~base:0xF500_0000 ~irq:1
            ~capacity:8
        in
        (* No queue routing: the task polls [pending] and pops itself. *)
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              let open Isa in
              Assembler.label a "main";
              Assembler.instr a (Movi (6, 0xF500_0000));
              Assembler.label a "poll";
              Assembler.instr a (Ldw (0, 6, 0));
              Assembler.instr a (Cmpi (0, 0));
              Assembler.jnz_label a "take";
              Assembler.instr a (Movi (0, 1));
              Assembler.instr a (Swi 2);
              Assembler.jmp_label a "poll";
              Assembler.label a "take";
              Assembler.instr a (Ldw (7, 6, 4));
              Assembler.movi_label a ~rd:4 "got";
              Assembler.instr a (Stw (4, 0, 7));
              Assembler.jmp_label a "poll";
              Assembler.begin_data a;
              Assembler.label a "got";
              Assembler.word a 0)
            ()
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:512 prog in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"poller" telf) in
        Platform.run_ticks p 2;
        ignore (Devices.Rx_fifo.inject fifo 321);
        Platform.run_ticks p 3;
        check_int "frame read by guest code" 321 (data_word p tcb telf 0));
    Alcotest.test_case "unbound IRQ lines are harmless" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"c" telf) in
        Tytan_machine.Exception_engine.raise_irq
          (Cpu.engine (Platform.cpu p))
          5;
        Platform.run_ticks p 5;
        check_bool "platform still healthy" true (data_word p tcb telf 0 >= 4));
  ]

let () =
  Alcotest.run "rtos"
    [
      ("scheduler", scheduler_tests);
      ("rt-queue", rt_queue_tests);
      ("sw-timer", sw_timer_tests);
      ("kernel", kernel_tests);
      ("queue-syscalls", queue_syscall_tests);
      ("run-time-stats", stats_tests);
      ("device-irq", device_irq_tests);
    ]
