(* Platform integration tests: secure boot, memory accounting (Table 8),
   end-to-end secure task execution, secure IPC (sync, async, services,
   shared memory), secure storage over IPC, attestation, and the
   real-time behaviour of interruptible loading (Table 1's property). *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Read a word a task published in its data section (offset index words
   after the text).  Secure task memory is read under the RTM's identity
   (the only trusted reader); normal task memory under the kernel's. *)
let data_word p (tcb : Tcb.t) telf index =
  let rtm = Option.get (Platform.rtm p) in
  let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
  let addr = entry.Rtm.base + Tasks.data_cell_offset telf + (4 * index) in
  let eip =
    if tcb.Tcb.secure then Rtm.code_eip rtm
    else Kernel.code_eip (Platform.kernel p)
  in
  Cpu.with_firmware (Platform.cpu p) ~eip (fun () ->
      Cpu.load32 (Platform.cpu p) addr)

let load p ?priority ?secure name telf =
  Result.get_ok (Platform.load_blocking p ~name ?priority ?secure telf)

let id_of p tcb =
  (Option.get (Rtm.find_by_tcb (Option.get (Platform.rtm p)) tcb)).Rtm.id

(* --- Boot and memory map ------------------------------------------------- *)

let boot_tests =
  [
    Alcotest.test_case "tytan boots with EA-MPU enabled" `Quick (fun () ->
        let p = Platform.create () in
        check_bool "enabled" true
          (Tytan_eampu.Eampu.enabled (Option.get (Platform.eampu p))));
    Alcotest.test_case "tampered component fails secure boot" `Quick
      (fun () ->
        let config =
          { Platform.default_config with tamper_component = Some "rtm" }
        in
        check_bool "boot failure" true
          (try
             ignore (Platform.create ~config ());
             false
           with Platform.Boot_failure _ -> true));
    Alcotest.test_case "tampering the kernel is also caught" `Quick (fun () ->
        let config =
          { Platform.default_config with tamper_component = Some "kernel-code" }
        in
        check_bool "boot failure" true
          (try
             ignore (Platform.create ~config ());
             false
           with Platform.Boot_failure _ -> true));
    Alcotest.test_case "table 8: memory consumption" `Quick (fun () ->
        let tytan = Platform.create () in
        let baseline = Platform.create ~config:Platform.baseline_config () in
        check_int "FreeRTOS" 215_617 (Platform.os_memory_bytes baseline);
        check_int "TyTAN" 249_943 (Platform.os_memory_bytes tytan);
        let overhead =
          float_of_int (Platform.os_memory_bytes tytan - Platform.os_memory_bytes baseline)
          /. float_of_int (Platform.os_memory_bytes baseline)
        in
        check_bool "≈15.9% overhead" true (overhead > 0.155 && overhead < 0.165));
    Alcotest.test_case "memory map has all components disjoint" `Quick
      (fun () ->
        let p = Platform.create () in
        let map = Platform.memory_map p in
        let rec pairwise = function
          | [] -> ()
          | (name_a, a) :: rest ->
              List.iter
                (fun (name_b, b) ->
                  check_bool
                    (Printf.sprintf "%s vs %s disjoint" name_a name_b)
                    false
                    (Tytan_eampu.Region.overlaps a b))
                rest;
              pairwise rest
        in
        pairwise map);
    Alcotest.test_case "baseline has no trusted components" `Quick (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        check_bool "no eampu" true (Platform.eampu p = None);
        check_bool "no rtm" true (Platform.rtm p = None);
        check_bool "no storage" true (Platform.storage p = None));
    Alcotest.test_case "bad platform key rejected" `Quick (fun () ->
        let config =
          { Platform.default_config with platform_key = Bytes.of_string "short" }
        in
        check_bool "raises" true
          (try
             ignore (Platform.create ~config ());
             false
           with Invalid_argument _ -> true));
  ]

(* --- Secure tasks end to end --------------------------------------------- *)

let secure_task_tests =
  [
    Alcotest.test_case "secure periodic task holds its rate" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = load p "c" telf in
        Platform.run_ticks p 15;
        let count = data_word p tcb telf 0 in
        check_bool "≈ once per tick" true (count >= 13 && count <= 16));
    Alcotest.test_case "secure and normal tasks coexist" `Quick (fun () ->
        let p = Platform.create () in
        let st = Tasks.counter () in
        let nt = Tasks.counter ~secure:false () in
        let s = load p "sec" st in
        let n = load p ~secure:false "norm" nt in
        Platform.run_ticks p 10;
        check_bool "secure progressed" true (data_word p s st 0 >= 8);
        check_bool "normal progressed" true (data_word p n nt 0 >= 8));
    Alcotest.test_case "int mux pairs saves with restores" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        ignore (load p "c" telf);
        Platform.run_ticks p 10;
        let mux = Option.get (Platform.int_mux p) in
        check_bool "secure saves happened" true (Int_mux.secure_saves mux >= 9);
        check_bool "restores keep pace" true
          (abs (Int_mux.secure_restores mux - Int_mux.secure_saves mux) <= 2));
    Alcotest.test_case "registers survive preemption (frame integrity)"
      `Quick (fun () ->
        (* A secure task keeps a running value in r7 across delays; if the
           Int Mux save/restore path corrupted frames, the sum would
           drift. *)
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              let open Isa in
              Assembler.label a "main";
              Assembler.instr a (Movi (7, 0));
              Assembler.label a "loop";
              Assembler.instr a (Addi (7, 7, 5));
              Assembler.movi_label a ~rd:4 "value";
              Assembler.instr a (Stw (4, 0, 7));
              Assembler.instr a (Movi (0, 1));
              Assembler.instr a (Swi 2);
              Assembler.jmp_label a "loop";
              Assembler.begin_data a;
              Assembler.label a "value";
              Assembler.word a 0)
            ()
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:512 prog in
        let p = Platform.create () in
        let tcb = load p "acc" telf in
        Platform.run_ticks p 12;
        let v = data_word p tcb telf 0 in
        check_int "multiple of 5" 0 (v mod 5);
        check_bool "accumulated across ≥10 preemptions" true (v >= 50));
    Alcotest.test_case "suspend/resume a secure task" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = load p "c" telf in
        Platform.run_ticks p 5;
        Platform.suspend p tcb;
        let frozen = data_word p tcb telf 0 in
        Platform.run_ticks p 5;
        check_int "frozen" frozen (data_word p tcb telf 0);
        Platform.resume p tcb;
        Platform.run_ticks p 5;
        check_bool "thawed" true (data_word p tcb telf 0 > frozen));
    Alcotest.test_case "unloaded secure task stops existing" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = load p "c" telf in
        let id = id_of p tcb in
        Platform.run_ticks p 3;
        Platform.unload p tcb;
        Platform.run_ticks p 3;
        check_bool "terminated" true (tcb.Tcb.state = Tcb.Terminated);
        check_bool "out of directory" true
          (Rtm.find (Option.get (Platform.rtm p)) id = None));
  ]

(* --- Secure IPC ----------------------------------------------------------- *)

let ipc_tests =
  [
    Alcotest.test_case "synchronous send delivers and returns" `Quick
      (fun () ->
        let p = Platform.create () in
        let rtelf = Tasks.ipc_receiver () in
        let receiver = load p "recv" rtelf in
        let stelf = Tasks.ipc_sender ~receiver:(id_of p receiver) ~message0:42 () in
        let sender = load p "send" stelf in
        Platform.run_ticks p 8;
        check_int "one message" 1 (data_word p receiver rtelf 0);
        check_int "payload" 42 (data_word p receiver rtelf 1);
        check_int "sender unblocked and continued" 1 (data_word p sender stelf 0));
    Alcotest.test_case "sender identity delivered by the proxy" `Quick
      (fun () ->
        let p = Platform.create () in
        let rtelf = Tasks.ipc_receiver () in
        let receiver = load p "recv" rtelf in
        let stelf = Tasks.ipc_sender ~receiver:(id_of p receiver) () in
        let sender = load p "send" stelf in
        Platform.run_ticks p 8;
        let lo, _ = Task_id.to_words (id_of p sender) in
        check_int "low identity word" lo (data_word p receiver rtelf 2));
    Alcotest.test_case "asynchronous send does not block the sender" `Quick
      (fun () ->
        let p = Platform.create () in
        let rtelf = Tasks.ipc_receiver () in
        let receiver = load p "recv" rtelf in
        let stelf =
          Tasks.ipc_sender ~receiver:(id_of p receiver) ~sync:false ~repeat:true ()
        in
        let sender = load p "send" stelf in
        Platform.run_ticks p 10;
        check_bool "sender kept its rate" true (data_word p sender stelf 0 >= 8);
        ignore receiver);
    Alcotest.test_case "repeated sync sends all arrive" `Quick (fun () ->
        let p = Platform.create () in
        let rtelf = Tasks.ipc_receiver () in
        let receiver = load p "recv" rtelf in
        let stelf =
          Tasks.ipc_sender ~receiver:(id_of p receiver) ~message0:7 ~repeat:true ()
        in
        ignore (load p "send" stelf);
        Platform.run_ticks p 10;
        let n = data_word p receiver rtelf 0 in
        check_bool "several messages" true (n >= 8);
        check_int "sum consistent" (7 * n) (data_word p receiver rtelf 1));
    Alcotest.test_case "send to unknown identity kills the sender" `Quick
      (fun () ->
        let p = Platform.create () in
        let bogus = Task_id.of_image (Bytes.of_string "nobody") in
        let stelf = Tasks.ipc_sender ~receiver:bogus () in
        let sender = load p "send" stelf in
        Platform.run_ticks p 4;
        check_bool "killed" true (sender.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "ipc-done outside a handler kills the task" `Quick
      (fun () ->
        let p = Platform.create () in
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.instr a (Isa.Swi Ipc.swi_done);
              Assembler.label a "rest";
              Assembler.jmp_label a "rest")
            ()
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:512 prog in
        let tcb = load p "rogue" telf in
        Platform.run_ticks p 4;
        check_bool "killed" true (tcb.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "receiver death releases a blocked sender" `Quick
      (fun () ->
        let p = Platform.create () in
        (* Receiver whose handler never returns (spins); the sender blocks;
           unloading the receiver must unblock the sender. *)
        let rprog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.instr a (Isa.Movi (0, 50));
              Assembler.instr a (Isa.Swi 2);
              Assembler.jmp_label a "main")
            ~on_message:(fun a ->
              Assembler.label a "on_message";
              Assembler.label a "spin";
              Assembler.jmp_label a "spin")
            ()
        in
        let rtelf = Tytan_telf.Builder.of_program ~stack_size:512 rprog in
        let receiver = load p "stuck" rtelf in
        let stelf = Tasks.ipc_sender ~receiver:(id_of p receiver) () in
        let sender = load p "send" stelf in
        Platform.run_ticks p 4;
        check_bool "sender blocked" true
          (sender.Tcb.state = Tcb.Blocked Tcb.Ipc_reply_wait);
        Platform.unload p receiver;
        Platform.run_ticks p 4;
        check_bool "sender released" true (sender.Tcb.state <> Tcb.Blocked Tcb.Ipc_reply_wait));
    Alcotest.test_case "proxy cycle cost is the documented 1208" `Quick
      (fun () ->
        check_int "components" 1_208 Cost_model.ipc_proxy_total);
  ]

(* --- Secure storage over IPC --------------------------------------------- *)

let storage_tests =
  [
    Alcotest.test_case "guest seals and unseals through IPC" `Quick (fun () ->
        let p = Platform.create () in
        let storage_id = Option.get (Platform.storage_service_id p) in
        let telf = Tasks.storage_client ~storage:storage_id ~slot:3 ~value:1234 in
        let tcb = load p "client" telf in
        Platform.run_ticks p 10;
        check_int "completed both phases" 2 (data_word p tcb telf 0);
        check_int "status ok" 0 (data_word p tcb telf 2);
        check_int "round-tripped" 1234 (data_word p tcb telf 1));
    Alcotest.test_case "a different binary cannot unseal the slot" `Quick
      (fun () ->
        let p = Platform.create () in
        let storage = Option.get (Platform.storage p) in
        let owner = Task_id.of_image (Bytes.of_string "owner-binary") in
        let thief = Task_id.of_image (Bytes.of_string "thief-binary") in
        Secure_storage.seal storage ~owner ~slot:1 (Bytes.make 24 's');
        check_bool "owner ok" true
          (Secure_storage.unseal storage ~owner ~slot:1 <> None);
        check_bool "thief rejected" true
          (Secure_storage.unseal storage ~owner:thief ~slot:1 = None);
        check_int "failure recorded" 1 (Secure_storage.unseal_failures storage));
    Alcotest.test_case "storage charges cycles for crypto" `Quick (fun () ->
        let p = Platform.create () in
        let storage = Option.get (Platform.storage p) in
        let owner = Task_id.of_image (Bytes.of_string "o") in
        let _, cost =
          Cycles.measure (Platform.clock p) (fun () ->
              Secure_storage.seal storage ~owner ~slot:1 (Bytes.make 24 'x'))
        in
        check_bool "several compressions worth" true
          (cost >= 4 * Cost_model.crypto_per_compression));
    Alcotest.test_case "empty slot unseal reports not found" `Quick (fun () ->
        let p = Platform.create () in
        let storage = Option.get (Platform.storage p) in
        check_bool "none" true
          (Secure_storage.unseal storage
             ~owner:(Task_id.of_image (Bytes.of_string "o"))
             ~slot:99
          = None));
  ]

(* --- NVM persistence across reboot ------------------------------------------ *)

let reboot_tests =
  [
    Alcotest.test_case "sealed data survives a reboot of the same device"
      `Quick (fun () ->
        let owner = Rtm.identity_of_telf (Tasks.counter ()) in
        (* First boot: seal, power off (export NVM). *)
        let p1 = Platform.create () in
        let s1 = Option.get (Platform.storage p1) in
        Secure_storage.seal s1 ~owner ~slot:2 (Bytes.make 24 'D');
        let nvm = Secure_storage.export s1 in
        (* Second boot of the same device (same Kp), NVM restored. *)
        let p2 = Platform.create () in
        let s2 = Option.get (Platform.storage p2) in
        check_bool "import ok" true (Result.is_ok (Secure_storage.import s2 nvm));
        (match Secure_storage.unseal s2 ~owner ~slot:2 with
        | Some b -> check_bool "payload intact" true (b = Bytes.make 24 'D')
        | None -> Alcotest.fail "unseal failed after reboot"));
    Alcotest.test_case "another device cannot use the stolen NVM" `Quick
      (fun () ->
        let owner = Rtm.identity_of_telf (Tasks.counter ()) in
        let p1 = Platform.create () in
        let s1 = Option.get (Platform.storage p1) in
        Secure_storage.seal s1 ~owner ~slot:2 (Bytes.make 24 'D');
        let nvm = Secure_storage.export s1 in
        (* Different platform key: same binary, wrong device. *)
        let config =
          { Platform.default_config with platform_key = Bytes.make 20 'Z' }
        in
        let p2 = Platform.create ~config () in
        let s2 = Option.get (Platform.storage p2) in
        check_bool "import ok (ciphertext is just bytes)" true
          (Result.is_ok (Secure_storage.import s2 nvm));
        check_bool "unseal denied on the wrong device" true
          (Secure_storage.unseal s2 ~owner ~slot:2 = None));
    Alcotest.test_case "corrupt NVM is rejected atomically" `Quick (fun () ->
        let p = Platform.create () in
        let s = Option.get (Platform.storage p) in
        check_bool "rejected" true
          (Result.is_error
             (Secure_storage.import s [ (1, Bytes.of_string "garbage") ]));
        check_int "store untouched" 0 (Secure_storage.slots_used s));
  ]

(* --- Attestation ---------------------------------------------------------- *)

let attestation_tests =
  [
    Alcotest.test_case "local attestation sees loaded tasks" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = load p "c" telf in
        let att = Option.get (Platform.attestation p) in
        check_bool "loaded" true (Attestation.local_attest att (id_of p tcb));
        check_bool "not loaded" false
          (Attestation.local_attest att (Task_id.of_image (Bytes.of_string "x"))));
    Alcotest.test_case "remote attestation round trip" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = load p "c" telf in
        let att = Option.get (Platform.attestation p) in
        let nonce = Bytes.of_string "fresh-nonce-0001" in
        let report = Option.get (Attestation.remote_attest att ~id:(id_of p tcb) ~nonce) in
        let ka =
          Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
        in
        check_bool "verifies" true
          (Attestation.verify ~ka report ~expected:(id_of p tcb) ~nonce));
    Alcotest.test_case "wrong nonce rejected" `Quick (fun () ->
        let p = Platform.create () in
        let tcb = load p "c" (Tasks.counter ()) in
        let att = Option.get (Platform.attestation p) in
        let report =
          Option.get
            (Attestation.remote_attest att ~id:(id_of p tcb)
               ~nonce:(Bytes.of_string "nonce-A"))
        in
        let ka =
          Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
        in
        check_bool "stale nonce fails" false
          (Attestation.verify ~ka report ~expected:(id_of p tcb)
             ~nonce:(Bytes.of_string "nonce-B")));
    Alcotest.test_case "wrong platform key rejected" `Quick (fun () ->
        let p = Platform.create () in
        let tcb = load p "c" (Tasks.counter ()) in
        let att = Option.get (Platform.attestation p) in
        let nonce = Bytes.of_string "n" in
        let report = Option.get (Attestation.remote_attest att ~id:(id_of p tcb) ~nonce) in
        let bad_ka = Attestation.derive_ka ~platform_key:(Bytes.make 20 'X') in
        check_bool "fails" false
          (Attestation.verify ~ka:bad_ka report ~expected:(id_of p tcb) ~nonce));
    Alcotest.test_case "attesting an unloaded task yields nothing" `Quick
      (fun () ->
        let p = Platform.create () in
        let att = Option.get (Platform.attestation p) in
        check_bool "none" true
          (Attestation.remote_attest att
             ~id:(Task_id.of_image (Bytes.of_string "ghost"))
             ~nonce:(Bytes.of_string "n")
          = None));
    Alcotest.test_case "per-provider keys are independent" `Quick (fun () ->
        let p = Platform.create () in
        let tcb = load p "c" (Tasks.counter ()) in
        let att = Option.get (Platform.attestation p) in
        let nonce = Bytes.of_string "n" in
        let report =
          Option.get
            (Attestation.remote_attest_for_provider att ~provider:"oem"
               ~id:(id_of p tcb) ~nonce)
        in
        let kp = (Platform.config p).Platform.platform_key in
        let oem = Attestation.derive_provider_ka ~platform_key:kp ~provider:"oem" in
        let other = Attestation.derive_provider_ka ~platform_key:kp ~provider:"other" in
        check_bool "oem verifies" true
          (Attestation.verify ~ka:oem report ~expected:(id_of p tcb) ~nonce);
        check_bool "other provider cannot" false
          (Attestation.verify ~ka:other report ~expected:(id_of p tcb) ~nonce));
  ]

(* --- Real-time behaviour of loading (Table 1 property) -------------------- *)

let realtime_tests =
  [
    Alcotest.test_case "interruptible load preserves running tasks' rates"
      `Quick (fun () ->
        let p = Platform.create () in
        let t1 = Tasks.counter () in
        let a = load p ~priority:4 "t1" t1 in
        Platform.run_ticks p 10;
        let before = data_word p a t1 0 in
        (* Queue a load large enough to span many ticks. *)
        let big =
          Toolchain.synthetic_secure ~image_size:16_384 ~reloc_count:9
            ~stack_size:256
        in
        Platform.submit_load p ~name:"big" big;
        Platform.run_ticks p 100;
        let during = data_word p a t1 0 - before in
        check_bool "t1 held ~1 activation per tick while loading" true
          (during >= 97);
        check_bool "load finished" true
          (Kernel.find_task_by_name (Platform.kernel p) "big" <> None));
    Alcotest.test_case "blocking load would have blocked that long" `Quick
      (fun () ->
        (* Sanity for the ablation: the same load done atomically costs
           multiple tick periods worth of cycles. *)
        let p = Platform.create () in
        let big =
          Toolchain.synthetic_secure ~image_size:16_384 ~reloc_count:9
            ~stack_size:256
        in
        let _, cost =
          Cycles.measure (Platform.clock p) (fun () ->
              ignore (Platform.load_blocking p ~name:"big" big))
        in
        check_bool "load spans many ticks" true
          (cost > 5 * (Platform.config p).Platform.tick_period));
  ]

(* --- Shared memory (large-data IPC, paper section 3) ----------------------- *)

let shm_tests =
  [
    Alcotest.test_case "two tasks communicate through a shared window"
      `Quick (fun () ->
        let p = Platform.create () in
        let rtelf = Tasks.shm_reader () in
        let reader = load p "reader" rtelf in
        let wtelf = Tasks.shm_requester ~peer:(id_of p reader) ~value:4242 in
        let writer = load p "writer" wtelf in
        Platform.run_ticks p 10;
        check_int "request accepted" 0 (data_word p writer wtelf 0);
        check_int "writer finished" 1 (data_word p writer wtelf 1);
        check_int "value crossed the window" 4242 (data_word p reader rtelf 0));
    Alcotest.test_case "third parties cannot touch the window" `Quick
      (fun () ->
        let p = Platform.create () in
        let rtelf = Tasks.shm_reader () in
        let reader = load p "reader" rtelf in
        let wtelf = Tasks.shm_requester ~peer:(id_of p reader) ~value:7 in
        ignore (load p "writer" wtelf);
        Platform.run_ticks p 6;
        (* Find the window: the proxy noted its base in the reader's
           inbox.  A spy probing it must be killed. *)
        let ipc = Option.get (Platform.ipc p) in
        let window_base =
          (* the reader consumed its note?  read the writer's copy *)
          match Ipc.read_inbox ipc (Kernel.find_task_by_name (Platform.kernel p) "writer" |> Option.get) with
          | Some (_, note) -> note.(1)
          | None -> Alcotest.fail "no shm note in the writer's inbox"
        in
        let spy = load p ~secure:false "spy" (Tasks.spy ~victim_addr:window_base) in
        Platform.run_ticks p 4;
        check_bool "spy killed" true (spy.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "shm with an unknown peer fails gracefully" `Quick
      (fun () ->
        let p = Platform.create () in
        let ghost = Task_id.of_image (Bytes.of_string "ghost") in
        let wtelf = Tasks.shm_requester ~peer:ghost ~value:1 in
        let writer = load p "writer" wtelf in
        Platform.run_ticks p 6;
        (* The proxy's failure note carries status 1; the task then tries
           to write through base 0 and is killed, or parks — either way it
           must not have published success. *)
        check_bool "no success" true (data_word p writer wtelf 0 <> 0));
  ]

(* --- Nested synchronous IPC ------------------------------------------------ *)

let nested_ipc_tests =
  [
    Alcotest.test_case "receiver's handler can itself send synchronously"
      `Quick (fun () ->
        let p = Platform.create () in
        (* C: final receiver accumulating values. *)
        let ctelf = Tasks.ipc_receiver () in
        let c = load p "C" ctelf in
        (* B: forwards every message it receives to C from its handler. *)
        let c_lo, c_hi = Task_id.to_words (id_of p c) in
        let b_prog =
          Toolchain.secure_program
            ~on_message:(fun a ->
              let open Isa in
              Assembler.label a "on_message";
              Assembler.instr a (Ldw (0, 12, 16)); (* m0 *)
              Assembler.instr a (Addi (0, 0, 1000)); (* transform *)
              Assembler.instr a (Movi (8, c_lo));
              Assembler.instr a (Movi (9, c_hi));
              Assembler.instr a (Movi (10, Ipc.mode_sync));
              Assembler.instr a (Swi Ipc.swi_send);
              Assembler.instr a Ret)
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.label a "loop";
              Assembler.instr a (Isa.Movi (0, 50));
              Assembler.instr a (Isa.Swi 2);
              Assembler.jmp_label a "loop")
            ()
        in
        let btelf = Tytan_telf.Builder.of_program ~stack_size:768 b_prog in
        let b = load p "B" btelf in
        (* A: sends 5 to B synchronously. *)
        let atelf = Tasks.ipc_sender ~receiver:(id_of p b) ~message0:5 () in
        let a = load p "A" atelf in
        Platform.run_ticks p 10;
        check_int "C received the forwarded message" 1 (data_word p c ctelf 0);
        check_int "transformed payload" 1005 (data_word p c ctelf 1);
        check_int "A unblocked" 1 (data_word p a atelf 0));
  ]

(* Regression: a tick landing during a message hand-off to a receiver
   that was never scheduler-started must resume the handler, not restart
   the task from main (the resume decision keys on the live saved frame,
   not on the started flag). *)
let handoff_race_test =
  Alcotest.test_case "interrupted hand-off to a fresh receiver resumes"
    `Quick (fun () ->
      let p = Platform.create () in
      let rtelf = Tasks.ipc_receiver () in
      let receiver = load p "fresh-recv" rtelf in
      (* A high-priority sender fires synchronous sends every tick; the
         receiver only ever runs inside hand-offs, and ticks regularly
         interrupt the handler. *)
      let stelf =
        Tasks.ipc_sender ~receiver:(id_of p receiver) ~message0:3
          ~sync:true ~repeat:true ()
      in
      let sender = load p ~priority:4 "fast-send" stelf in
      Platform.run_ticks p 40;
      let sent = data_word p sender stelf 0 in
      let received = data_word p receiver rtelf 0 in
      check_bool "sender made progress" true (sent >= 30);
      check_int "every send was handled exactly once" sent received;
      check_int "payload sum consistent" (3 * received)
        (data_word p receiver rtelf 1))

(* --- Execution-time bounding (paper section 5) ----------------------------- *)

let quota_tests =
  [
    Alcotest.test_case "runaway task is suspended at its CPU quota" `Quick
      (fun () ->
        let p = Platform.create () in
        let runaway = load p "runaway" (Tasks.busy_loop ()) in
        runaway.Tcb.cpu_quota <- Some 5;
        let good_telf = Tasks.counter () in
        let good = load p "good" good_telf in
        Platform.run_ticks p 12;
        check_bool "runaway suspended" true
          (runaway.Tcb.state = Tcb.Suspended);
        check_int "one quota suspension" 1
          (Kernel.quota_suspensions (Platform.kernel p));
        check_bool "well-behaved task unaffected" true
          (data_word p good good_telf 0 >= 10));
    Alcotest.test_case "cooperative tasks never hit the quota" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = load p "coop" telf in
        tcb.Tcb.cpu_quota <- Some 2;
        Platform.run_ticks p 20;
        check_bool "still running" true (tcb.Tcb.state <> Tcb.Suspended);
        check_int "no suspensions" 0
          (Kernel.quota_suspensions (Platform.kernel p)));
    Alcotest.test_case "quota callback fires with the culprit" `Quick
      (fun () ->
        let p = Platform.create () in
        let runaway = load p "runaway" (Tasks.busy_loop ()) in
        runaway.Tcb.cpu_quota <- Some 3;
        let seen = ref None in
        Kernel.set_on_quota_exceeded (Platform.kernel p) (fun tcb ->
            seen := Some tcb.Tcb.name);
        Platform.run_ticks p 8;
        check_bool "callback" true (!seen = Some "runaway"));
  ]

(* --- Local attestation over IPC --------------------------------------------- *)

let local_attest_guest ~service ~subject =
  let s_lo, s_hi = Task_id.to_words service in
  let q_lo, q_hi = Task_id.to_words subject in
  let prog =
    Toolchain.secure_program
      ~main:(fun a ->
        let open Isa in
        Assembler.label a "main";
        Assembler.instr a (Movi (0, q_lo));
        Assembler.instr a (Movi (1, q_hi));
        Assembler.instr a (Movi (8, s_lo));
        Assembler.instr a (Movi (9, s_hi));
        Assembler.instr a (Movi (10, Ipc.mode_sync));
        Assembler.instr a (Swi Ipc.swi_send);
        (* reply: m0 = 0 iff loaded *)
        Assembler.instr a (Ldw (0, 12, 16));
        Assembler.movi_label a ~rd:4 "verdict";
        Assembler.instr a (Stw (4, 0, 0));
        Assembler.movi_label a ~rd:4 "done";
        Assembler.instr a (Movi (5, 1));
        Assembler.instr a (Stw (4, 0, 5));
        Assembler.label a "rest";
        Assembler.instr a (Movi (0, 100));
        Assembler.instr a (Swi 2);
        Assembler.jmp_label a "rest";
        Assembler.begin_data a;
        Assembler.label a "verdict";
        Assembler.word a 99;
        Assembler.label a "done";
        Assembler.word a 0)
      ()
  in
  Tytan_telf.Builder.of_program ~stack_size:512 prog

let local_attest_tests =
  [
    Alcotest.test_case "task verifies a loaded peer over IPC" `Quick
      (fun () ->
        let p = Platform.create () in
        let peer = load p "peer" (Tasks.counter ()) in
        let service = Option.get (Platform.attest_service_id p) in
        let telf = local_attest_guest ~service ~subject:(id_of p peer) in
        let verifier = load p "verifier" telf in
        Platform.run_ticks p 6;
        check_int "completed" 1 (data_word p verifier telf 1);
        check_int "peer attested as loaded" 0 (data_word p verifier telf 0));
    Alcotest.test_case "task learns a ghost identity is not loaded" `Quick
      (fun () ->
        let p = Platform.create () in
        let service = Option.get (Platform.attest_service_id p) in
        let ghost = Task_id.of_image (Bytes.of_string "not-loaded") in
        let telf = local_attest_guest ~service ~subject:ghost in
        let verifier = load p "verifier" telf in
        Platform.run_ticks p 6;
        check_int "completed" 1 (data_word p verifier telf 1);
        check_int "ghost rejected" 1 (data_word p verifier telf 0));
    Alcotest.test_case "verdict changes after the peer unloads" `Quick
      (fun () ->
        let p = Platform.create () in
        let peer = load p "peer" (Tasks.counter ()) in
        let att = Option.get (Platform.attestation p) in
        let id = id_of p peer in
        check_bool "loaded now" true (Attestation.local_attest att id);
        Platform.unload p peer;
        check_bool "gone after unload" false (Attestation.local_attest att id));
  ]

(* --- Static configuration (TrustLite comparison mode) ---------------------- *)

let static_mode_tests =
  [
    Alcotest.test_case "boot-time loading works, runtime loading is sealed"
      `Quick (fun () ->
        let p = Platform.create ~config:Platform.trustlite_config () in
        let telf = Tasks.counter () in
        let tcb = load p "boot-task" telf in
        Platform.finish_boot p;
        check_bool "runtime load rejected" true
          (Result.is_error (Platform.load_blocking p ~name:"late" (Tasks.counter ())));
        check_bool "unload rejected" true
          (try
             Platform.unload p tcb;
             false
           with Invalid_argument _ -> true);
        Platform.run_ticks p 5;
        check_bool "boot task runs fine" true (data_word p tcb telf 0 >= 4));
    Alcotest.test_case "dynamic platform is unaffected by finish_boot" `Quick
      (fun () ->
        let p = Platform.create () in
        Platform.finish_boot p;
        check_bool "still loadable" true
          (Result.is_ok (Platform.load_blocking p ~name:"late" (Tasks.counter ()))));
  ]

(* --- Availability under IPC flooding (paper section 5) ---------------------- *)

let dos_tests =
  [
    Alcotest.test_case "an IPC-flooding task cannot starve the victim"
      `Quick (fun () ->
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p ~priority:4 "victim" vtelf in
        (* The flooder asynchronously sprays the victim's inbox at its own
           priority, never yielding between sends beyond the syscall. *)
        let rtelf = Tasks.ipc_receiver () in
        let sink = load p "sink" rtelf in
        let flood_prog =
          Toolchain.secure_program
            ~main:(fun a ->
              let open Isa in
              let lo, hi = Task_id.to_words (id_of p sink) in
              Assembler.label a "main";
              Assembler.label a "spam";
              Assembler.instr a (Movi (0, 1));
              Assembler.instr a (Movi (8, lo));
              Assembler.instr a (Movi (9, hi));
              Assembler.instr a (Movi (10, Ipc.mode_async));
              Assembler.instr a (Swi Ipc.swi_send);
              Assembler.jmp_label a "spam")
            ()
        in
        let flooder =
          load p ~priority:2 "flooder"
            (Tytan_telf.Builder.of_program ~stack_size:512 flood_prog)
        in
        Platform.run_ticks p 20;
        check_bool "victim held its rate under flood" true
          (data_word p victim vtelf 0 >= 19);
        check_bool "flooder is merely using its own budget" true
          (flooder.Tcb.state <> Tcb.Terminated));
    Alcotest.test_case "flooding plus CPU quota suspends the flooder" `Quick
      (fun () ->
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p ~priority:4 "victim" vtelf in
        let flooder = load p ~priority:2 "flooder" (Tasks.busy_loop ()) in
        flooder.Tcb.cpu_quota <- Some 8;
        Platform.run_ticks p 20;
        check_bool "flooder suspended" true (flooder.Tcb.state = Tcb.Suspended);
        check_bool "victim unaffected" true (data_word p victim vtelf 0 >= 19));
  ]

(* --- Runtime task update (paper future work) ------------------------------ *)

let update_tests =
  [
    Alcotest.test_case "update swaps versions with bounded downtime" `Quick
      (fun () ->
        let p = Platform.create () in
        let v1 = Tasks.counter () in
        let old_task = load p "svc" v1 in
        Platform.run_ticks p 5;
        let v2 = Tasks.counter ~stack_size:768 () in
        let report = Result.get_ok (Update.update_task p ~old_task v2) in
        check_bool "old unloaded" true (old_task.Tcb.state = Tcb.Terminated);
        check_bool "new running version present" true
          (report.Update.task.Tcb.state <> Tcb.Terminated);
        check_bool "identities differ" false
          (Task_id.equal report.Update.old_id report.Update.new_id);
        (* The swap gap is orders of magnitude below the load time. *)
        check_bool "downtime << staging" true
          (report.Update.downtime_cycles * 10 < report.Update.staging_cycles);
        Platform.run_ticks p 5;
        check_bool "new version runs" true
          (data_word p report.Update.task v2 0 >= 4));
    Alcotest.test_case "state migration carries data words over" `Quick
      (fun () ->
        let p = Platform.create () in
        let v1 = Tasks.counter () in
        let old_task = load p "svc" v1 in
        Platform.run_ticks p 7;
        let carried = data_word p old_task v1 0 in
        let v2 = Tasks.counter ~stack_size:768 () in
        let report =
          Result.get_ok (Update.update_task p ~old_task ~migrate_words:1 v2)
        in
        check_int "counter migrated" carried (data_word p report.Update.task v2 0));
    Alcotest.test_case "stop-and-reload has load-sized downtime" `Quick
      (fun () ->
        let p = Platform.create () in
        let v1 = Tasks.counter () in
        let old_task = load p "svc" v1 in
        let naive = Result.get_ok (Update.stop_and_reload p ~old_task (Tasks.counter ~stack_size:768 ())) in
        let p2 = Platform.create () in
        let old2 = load p2 "svc" (Tasks.counter ()) in
        let live = Result.get_ok (Update.update_task p2 ~old_task:old2 (Tasks.counter ~stack_size:768 ())) in
        check_bool "live update at least 10x less downtime" true
          (live.Update.downtime_cycles * 10 < naive.Update.downtime_cycles));
    Alcotest.test_case "update keeps other tasks on schedule" `Quick
      (fun () ->
        let p = Platform.create () in
        let bystander_telf = Tasks.counter () in
        let bystander = load p ~priority:4 "bystander" bystander_telf in
        let old_task = load p "svc" (Tasks.counter ()) in
        Platform.run_ticks p 5;
        let before = data_word p bystander bystander_telf 0 in
        let _ = Result.get_ok (Update.update_task p ~old_task (Tasks.counter ~stack_size:768 ())) in
        Platform.run_ticks p 10;
        check_bool "bystander unaffected" true
          (data_word p bystander bystander_telf 0 - before >= 9));
  ]

let () =
  Alcotest.run "platform"
    [
      ("boot", boot_tests);
      ("secure-tasks", secure_task_tests);
      ("ipc", ipc_tests);
      ("storage", storage_tests);
      ("nvm-reboot", reboot_tests);
      ("attestation", attestation_tests);
      ("realtime", realtime_tests);
      ("shared-memory", shm_tests);
      ("nested-ipc", handoff_race_test :: nested_ipc_tests);
      ("cpu-quota", quota_tests);
      ("local-attest", local_attest_tests);
      ("static-mode", static_mode_tests);
      ("dos-resilience", dos_tests);
      ("update", update_tests);
    ]
