(* Tasklang tests: validation, compilation, end-to-end execution on the
   platform, and a differential property test — random programs must
   compute the same results on the simulated CPU as in the reference
   interpreter (exercising compiler → assembler → loader → CPU at once). *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
open Tytan_lang

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Read global #i of a loaded Tasklang task (globals sit at the head of
   the data section in declaration order). *)
let global_word p (tcb : Tcb.t) telf i =
  let eip =
    match Platform.rtm p with
    | Some rtm when tcb.Tcb.secure -> Rtm.code_eip rtm
    | Some _ | None -> Kernel.code_eip (Platform.kernel p)
  in
  Cpu.with_firmware (Platform.cpu p) ~eip (fun () ->
      Cpu.load32 (Platform.cpu p)
        (tcb.Tcb.region_base + telf.Tytan_telf.Telf.text_size + (4 * i)))

let run_program ?(secure = true) ?(ticks = 5) program =
  let p =
    if secure then Platform.create ()
    else Platform.create ~config:Platform.baseline_config ()
  in
  let telf = Compile.to_telf ~secure program in
  let tcb = Result.get_ok (Platform.load_blocking p ~name:"lang" ~secure telf) in
  Platform.run_ticks p ticks;
  (p, tcb, telf)

let validation_tests =
  [
    Alcotest.test_case "undefined variable rejected" `Quick (fun () ->
        let program = Ast.program [ Ast.Assign ("ghost", Ast.Int 1) ] in
        check_bool "error" true (Result.is_error (Ast.validate program)));
    Alcotest.test_case "duplicate global rejected" `Quick (fun () ->
        let program =
          Ast.program ~globals:[ ("x", 0); ("x", 1) ] [ Ast.Exit ]
        in
        check_bool "error" true (Result.is_error (Ast.validate program)));
    Alcotest.test_case "oversized payload rejected" `Quick (fun () ->
        let receiver = Task_id.of_image (Bytes.of_string "r") in
        let program =
          Ast.program
            [ Ast.Send { payload = List.init 9 (fun i -> Ast.Int i); receiver; sync = false } ]
        in
        check_bool "error" true (Result.is_error (Ast.validate program)));
    Alcotest.test_case "inbox word range checked" `Quick (fun () ->
        let program =
          Ast.program ~globals:[ ("x", 0) ]
            [ Ast.Assign ("x", Ast.Inbox_word 8) ]
        in
        check_bool "error" true (Result.is_error (Ast.validate program)));
    Alcotest.test_case "valid program accepted" `Quick (fun () ->
        let program =
          Ast.program ~globals:[ ("x", 0) ]
            [ Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 1)) ]
        in
        check_bool "ok" true (Ast.validate program = Ok ()));
  ]

let execution_tests =
  [
    Alcotest.test_case "arithmetic program computes on the device" `Quick
      (fun () ->
        let open Ast in
        let program =
          program ~globals:[ ("out", 0) ]
            [
              Assign
                ( "out",
                  Binop (Mul, Binop (Add, Int 4, Int 3), Binop (Sub, Int 10, Int 4)) );
              Exit;
            ]
        in
        let p, tcb, telf = run_program program in
        check_int "(4+3)*(10-4)" 42 (global_word p tcb telf 0));
    Alcotest.test_case "while loop sums 1..10" `Quick (fun () ->
        let open Ast in
        let program =
          program
            ~globals:[ ("i", 1); ("sum", 0) ]
            [
              While
                ( Binop (Lt, Var "i", Int 11),
                  [
                    Assign ("sum", Binop (Add, Var "sum", Var "i"));
                    Assign ("i", Binop (Add, Var "i", Int 1));
                  ] );
              Exit;
            ]
        in
        let p, tcb, telf = run_program program in
        check_int "sum" 55 (global_word p tcb telf 1));
    Alcotest.test_case "if/else both arms" `Quick (fun () ->
        let open Ast in
        let program =
          program
            ~globals:[ ("a", 0); ("b", 0) ]
            [
              If (Binop (Eq, Int 5, Int 5), [ Assign ("a", Int 1) ], [ Assign ("a", Int 2) ]);
              If (Binop (Eq, Int 5, Int 6), [ Assign ("b", Int 1) ], [ Assign ("b", Int 2) ]);
              Exit;
            ]
        in
        let p, tcb, telf = run_program program in
        check_int "then arm" 1 (global_word p tcb telf 0);
        check_int "else arm" 2 (global_word p tcb telf 1));
    Alcotest.test_case "dynamic shifts" `Quick (fun () ->
        let open Ast in
        let program =
          program
            ~globals:[ ("l", 0); ("r", 0); ("n", 5) ]
            [
              Assign ("l", Binop (Shl, Int 3, Var "n"));
              Assign ("r", Binop (Shr, Int 0x1000, Var "n"));
              Exit;
            ]
        in
        let p, tcb, telf = run_program program in
        check_int "3 << 5" 96 (global_word p tcb telf 0);
        check_int "0x1000 >> 5" 0x80 (global_word p tcb telf 1));
    Alcotest.test_case "volatile MMIO access from the language" `Quick
      (fun () ->
        let open Ast in
        let sensor = 0xF300_0000 in
        let program =
          program ~globals:[ ("reading", 0) ]
            [ Assign ("reading", Load (Int sensor)); Exit ]
        in
        let p = Platform.create () in
        ignore
          (Platform.attach_sensor p ~name:"s" ~base:sensor
             ~sample:(fun ~cycles:_ -> 777));
        let telf = Compile.to_telf program in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"mmio" telf) in
        Platform.run_ticks p 3;
        check_int "sensor read" 777 (global_word p tcb telf 0));
    Alcotest.test_case "periodic task with delay holds its rate" `Quick
      (fun () ->
        let open Ast in
        let program =
          program ~globals:[ ("ticks", 0) ]
            [
              While
                ( Int 1,
                  [
                    Assign ("ticks", Binop (Add, Var "ticks", Int 1));
                    Delay (Int 1);
                  ] );
            ]
        in
        let p, tcb, telf = run_program ~ticks:12 program in
        let n = global_word p tcb telf 0 in
        check_bool "≈ once per tick" true (n >= 10 && n <= 13));
    Alcotest.test_case "tasklang sender reaches a receiver" `Quick (fun () ->
        let p = Platform.create () in
        let rtelf = Tytan_tasks.Task_lib.ipc_receiver () in
        let receiver = Result.get_ok (Platform.load_blocking p ~name:"recv" rtelf) in
        let rtm = Option.get (Platform.rtm p) in
        let rid = (Option.get (Rtm.find_by_tcb rtm receiver)).Rtm.id in
        let open Ast in
        let program =
          program
            [
              Send { payload = [ Binop (Add, Int 40, Int 2) ]; receiver = rid; sync = true };
              Exit;
            ]
        in
        let telf = Compile.to_telf program in
        ignore (Result.get_ok (Platform.load_blocking p ~name:"send" telf));
        Platform.run_ticks p 6;
        let received =
          Cpu.with_firmware (Platform.cpu p) ~eip:(Rtm.code_eip rtm) (fun () ->
              Cpu.load32 (Platform.cpu p)
                (receiver.Tcb.region_base
                + Tytan_tasks.Task_lib.data_cell_offset rtelf + 4))
        in
        check_int "payload arrived" 42 received);
    Alcotest.test_case "on_message handler in tasklang" `Quick (fun () ->
        let open Ast in
        (* Accumulate message word 0 into a global from the handler. *)
        let program =
          program
            ~globals:[ ("total", 0) ]
            ~on_message:
              [
                Assign ("total", Binop (Add, Var "total", Inbox_word 0));
                Clear_inbox;
              ]
            [ While (Int 1, [ Delay (Int 10) ]) ]
        in
        let p = Platform.create () in
        let rtelf = Compile.to_telf program in
        let receiver = Result.get_ok (Platform.load_blocking p ~name:"acc" rtelf) in
        let rtm = Option.get (Platform.rtm p) in
        let rid = (Option.get (Rtm.find_by_tcb rtm receiver)).Rtm.id in
        let stelf = Tytan_tasks.Task_lib.ipc_sender ~receiver:rid ~message0:21 ~repeat:true () in
        ignore (Result.get_ok (Platform.load_blocking p ~name:"send" stelf));
        Platform.run_ticks p 8;
        let total = global_word p receiver rtelf 0 in
        check_bool "accumulated multiples of 21" true (total >= 42 && total mod 21 = 0));
    Alcotest.test_case "queue producer/consumer in tasklang" `Quick
      (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        let qid = Kernel.create_queue (Platform.kernel p) ~capacity:4 in
        let open Ast in
        let producer =
          program ~globals:[ ("i", 0) ]
            [
              While
                ( Binop (Lt, Var "i", Int 5),
                  [
                    Assign ("i", Binop (Add, Var "i", Int 1));
                    Queue_send { queue = qid; value = Var "i"; timeout = 50 };
                  ] );
              Exit;
            ]
        in
        let consumer =
          program ~globals:[ ("sum", 0); ("n", 0); ("got", 0) ]
            [
              While
                ( Binop (Lt, Var "n", Int 5),
                  [
                    Queue_recv { queue = qid; into = "got"; timeout = 50 };
                    Assign ("sum", Binop (Add, Var "sum", Var "got"));
                    Assign ("n", Binop (Add, Var "n", Int 1));
                  ] );
              Exit;
            ]
        in
        let ct = Compile.to_telf ~secure:false consumer in
        let c = Result.get_ok (Platform.load_blocking p ~name:"cons" ~secure:false ct) in
        let pt = Compile.to_telf ~secure:false producer in
        let _ = Result.get_ok (Platform.load_blocking p ~name:"prod" ~secure:false pt) in
        Platform.run_ticks p 30;
        check_int "all five received" 5 (global_word p c ct 1);
        check_int "sum 1..5" 15 (global_word p c ct 0));
    Alcotest.test_case "queue_recv timeout leaves the variable alone" `Quick
      (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        let qid = Kernel.create_queue (Platform.kernel p) ~capacity:4 in
        let open Ast in
        let prog =
          program ~globals:[ ("got", 777); ("done_", 0) ]
            [
              Queue_recv { queue = qid; into = "got"; timeout = 2 };
              Assign ("done_", Int 1);
              Exit;
            ]
        in
        let telf = Compile.to_telf ~secure:false prog in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"t" ~secure:false telf) in
        Platform.run_ticks p 8;
        check_int "finished" 1 (global_word p tcb telf 1);
        check_int "sentinel untouched" 777 (global_word p tcb telf 0));
    Alcotest.test_case "interpreter agrees on a fixed program" `Quick
      (fun () ->
        let open Ast in
        let program =
          program
            ~globals:[ ("x", 7); ("y", 0) ]
            [
              Assign ("y", Binop (Mul, Var "x", Binop (Add, Var "x", Int 1)));
              If (Binop (Ge, Var "y", Int 50), [ Assign ("x", Int 1) ], [ Assign ("x", Int 0) ]);
              Exit;
            ]
        in
        let st = Result.get_ok (Interp.run program) in
        let p, tcb, telf = run_program program in
        check_int "y agrees" (Interp.global st "y") (global_word p tcb telf 1);
        check_int "x agrees" (Interp.global st "x") (global_word p tcb telf 0));
  ]

(* --- Differential property: random programs, CPU vs interpreter ----------- *)

let var_names = [| "a"; "b"; "c"; "d" |]

(* A scratch RAM window for generated loads/stores, kept identical on
   both sides: the interpreter mirrors it in an array, the guest writes
   real memory.  The last page of RAM is free of task allocations in
   these small scenarios. *)
let scratch_base = Platform.default_config.Platform.mem_size - 4096
let scratch_slots = 8
let scratch_addr k = scratch_base + (4 * (k mod scratch_slots))

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int (n land 0xFFFF)) small_nat;
        map (fun i -> Ast.Var var_names.(i mod 4)) small_nat;
        map (fun k -> Ast.Load (Ast.Int (scratch_addr k))) small_nat;
      ]
  in
  let op =
    oneofl
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.And; Ast.Or; Ast.Xor; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Ge ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (3, map3 (fun o a b -> Ast.Binop (o, a, b)) op (self (depth - 1)) (self (depth - 1)));
          ])
    3

let stmt_gen =
  let open QCheck.Gen in
  let assign =
    map2 (fun i e -> Ast.Assign (var_names.(i mod 4), e)) small_nat expr_gen
  in
  let store =
    map2 (fun k e -> Ast.Store (Ast.Int (scratch_addr k), e)) small_nat expr_gen
  in
  let if_ =
    map3 (fun c t e -> Ast.If (c, [ t ], [ e ])) expr_gen assign store
  in
  (* Bounded counting loop over the reserved variable "d": terminates by
     construction on both sides. *)
  let loop =
    map2
      (fun bound body ->
        let n = 1 + (bound mod 5) in
        Ast.If
          ( Ast.Int 1,
            [
              Ast.Assign ("d", Ast.Int 0);
              Ast.While
                ( Ast.Binop (Ast.Lt, Ast.Var "d", Ast.Int n),
                  [ body; Ast.Assign ("d", Ast.Binop (Ast.Add, Ast.Var "d", Ast.Int 1)) ] );
            ],
            [] ))
      small_nat assign
  in
  frequency [ (4, assign); (2, store); (1, if_); (1, loop) ]

let program_gen =
  let open QCheck.Gen in
  let* stmts = list_size (int_range 1 12) stmt_gen in
  return
    (Ast.program
       ~globals:[ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ]
       (stmts @ [ Ast.Exit ]))

let program_arb =
  QCheck.make ~print:(Format.asprintf "%a" Ast.pp) program_gen

let differential =
  QCheck.Test.make
    ~name:"random programs (loops, memory): CPU execution = interpreter"
    ~count:40 program_arb (fun program ->
      (* Interpreter side mirrors the scratch window in an array. *)
      let mirror = Array.make scratch_slots 0 in
      let load addr =
        if addr >= scratch_base && addr < scratch_base + (4 * scratch_slots)
        then mirror.((addr - scratch_base) / 4)
        else 0
      in
      let store addr v =
        if addr >= scratch_base && addr < scratch_base + (4 * scratch_slots)
        then mirror.((addr - scratch_base) / 4) <- v
      in
      match Interp.run ~load ~store program with
      | Error _ -> QCheck.assume_fail ()
      | Ok st ->
          let p, tcb, telf = run_program ~secure:false ~ticks:6 program in
          let globals_agree =
            List.for_all
              (fun (i, name) -> global_word p tcb telf i = Interp.global st name)
              [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]
          in
          let memory_agrees =
            List.for_all
              (fun k ->
                Cpu.load32 (Platform.cpu p) (scratch_base + (4 * k)) = mirror.(k))
              (List.init scratch_slots Fun.id)
          in
          globals_agree && memory_agrees)

let () =
  Alcotest.run "lang"
    [
      ("validation", validation_tests);
      ("execution", execution_tests);
      ("differential", [ QCheck_alcotest.to_alcotest differential ]);
    ]
