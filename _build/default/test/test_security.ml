(* Security tests: the attacks TyTAN claims to stop, each run twice where
   meaningful — once on TyTAN (must be stopped) and once on the unmodified
   FreeRTOS baseline (where it succeeds, demonstrating the gap TyTAN
   closes). *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let secret = 0x5EC12E7

let data_word p (tcb : Tcb.t) telf index =
  (* Secure tasks are read under the RTM's identity; normal or already
     reclaimed tasks (whose protection rules are gone) under the
     kernel's. *)
  let kernel = Platform.kernel p in
  let eip =
    match Platform.rtm p with
    | Some rtm when tcb.Tcb.secure && Rtm.find_by_tcb rtm tcb <> None ->
        Rtm.code_eip rtm
    | Some _ | None -> Kernel.code_eip kernel
  in
  Cpu.with_firmware (Platform.cpu p) ~eip (fun () ->
      Cpu.load32 (Platform.cpu p)
        (tcb.Tcb.region_base + Tasks.data_cell_offset telf + (4 * index)))

let load p ?secure name telf =
  Result.get_ok (Platform.load_blocking p ~name ?secure telf)

let victim_cell p victim telf =
  let rtm = Option.get (Platform.rtm p) in
  let entry = Option.get (Rtm.find_by_tcb rtm victim) in
  entry.Rtm.base + Tasks.data_cell_offset telf

(* --- Task isolation ------------------------------------------------------- *)

let isolation_tests =
  [
    Alcotest.test_case "spy task reading secure memory is killed" `Quick
      (fun () ->
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p "victim" vtelf in
        Platform.run_ticks p 3;
        let spy_telf = Tasks.spy ~victim_addr:(victim_cell p victim vtelf) in
        let spy = load p ~secure:false "spy" spy_telf in
        Platform.run_ticks p 3;
        check_bool "spy killed" true (spy.Tcb.state = Tcb.Terminated);
        check_int "no loot escaped" 0 (data_word p spy spy_telf 1);
        check_bool "victim unharmed and still running" true
          (victim.Tcb.state <> Tcb.Terminated));
    Alcotest.test_case "secure spy cannot read another secure task either"
      `Quick (fun () ->
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p "victim" vtelf in
        Platform.run_ticks p 2;
        (* A secure attacker gains nothing: grants are per-region. *)
        let spy_prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.instr a (Isa.Movi (6, victim_cell p victim vtelf));
              Assembler.instr a (Isa.Ldw (7, 6, 0));
              Assembler.label a "rest";
              Assembler.jmp_label a "rest")
            ()
        in
        let spy = load p "sspy" (Tytan_telf.Builder.of_program ~stack_size:512 spy_prog) in
        Platform.run_ticks p 3;
        check_bool "killed" true (spy.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "the same spy succeeds on unprotected FreeRTOS" `Quick
      (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        let vtelf = Tasks.counter ~secure:false () in
        let victim = load p ~secure:false "victim" vtelf in
        Platform.run_ticks p 5;
        let spy_telf =
          Tasks.spy ~victim_addr:(victim.Tcb.region_base + Tasks.data_cell_offset vtelf)
        in
        let spy = load p ~secure:false "spy" spy_telf in
        Platform.run_ticks p 3;
        check_bool "spy survives on the baseline" true
          (spy.Tcb.state <> Tcb.Terminated);
        check_bool "loot obtained" true (data_word p spy spy_telf 0 > 0));
    Alcotest.test_case "OS (kernel identity) cannot read secure memory"
      `Quick (fun () ->
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p "victim" vtelf in
        let addr = victim_cell p victim vtelf in
        check_bool "denied" true
          (try
             ignore
               (Cpu.with_firmware (Platform.cpu p)
                  ~eip:(Kernel.code_eip (Platform.kernel p))
                  (fun () -> Cpu.load32 (Platform.cpu p) addr));
             false
           with Access.Violation _ -> true));
    Alcotest.test_case "OS can read a normal task (by design)" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter ~secure:false () in
        let tcb = load p ~secure:false "norm" telf in
        Platform.run_ticks p 2;
        let rtm = Option.get (Platform.rtm p) in
        let base = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.base in
        let v =
          Cpu.with_firmware (Platform.cpu p)
            ~eip:(Kernel.code_eip (Platform.kernel p))
            (fun () ->
              Cpu.load32 (Platform.cpu p) (base + Tasks.data_cell_offset telf))
        in
        check_bool "readable" true (v >= 1));
    Alcotest.test_case "task faults leave the rest of the system running"
      `Quick (fun () ->
        let p = Platform.create () in
        let good_telf = Tasks.counter () in
        let good = load p "good" good_telf in
        let victim_telf = Tasks.counter () in
        let victim = load p "victim" victim_telf in
        Platform.run_ticks p 2;
        let spy = load p ~secure:false "spy"
            (Tasks.spy ~victim_addr:(victim_cell p victim victim_telf))
        in
        Platform.run_ticks p 10;
        check_bool "spy dead" true (spy.Tcb.state = Tcb.Terminated);
        check_bool "good task kept its rate" true
          (data_word p good good_telf 0 >= 10));
  ]

(* --- Entry-point enforcement (code-reuse prevention) ---------------------- *)

let entry_tests =
  [
    Alcotest.test_case "jumping past a secure entry point is killed" `Quick
      (fun () ->
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p "victim" vtelf in
        let attacker_telf =
          Tasks.entry_bypass ~victim_entry:victim.Tcb.entry ~offset:(4 * Isa.width)
        in
        let attacker = load p ~secure:false "attacker" attacker_telf in
        Platform.run_ticks p 3;
        check_bool "killed" true (attacker.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "jumping exactly to the entry point is permitted"
      `Quick (fun () ->
        (* Invoking a secure task at its entry is legal (that is how the
           scheduler and IPC proxy enter it); the attacker just donates
           its time slice. *)
        let p = Platform.create () in
        let vtelf = Tasks.counter () in
        let victim = load p "victim" vtelf in
        let attacker_telf =
          Tasks.entry_bypass ~victim_entry:victim.Tcb.entry ~offset:0
        in
        let attacker = load p ~secure:false "attacker" attacker_telf in
        Platform.run_ticks p 3;
        check_bool "not a violation" true (attacker.Tcb.state <> Tcb.Terminated));
    Alcotest.test_case "executing from a data region is killed" `Quick
      (fun () ->
        let p = Platform.create () in
        (* A task that jumps into its own data section — code injection. *)
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.movi_label a ~rd:6 "payload";
              Assembler.instr a (Isa.Jmpr 6);
              Assembler.begin_data a;
              Assembler.label a "payload";
              Assembler.word a 0;
              Assembler.word a 0)
            ()
        in
        let tcb = load p "inject" (Tytan_telf.Builder.of_program ~stack_size:512 prog) in
        Platform.run_ticks p 3;
        check_bool "killed" true (tcb.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "executing from the stack is killed" `Quick (fun () ->
        let p = Platform.create () in
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              (* Jump to wherever the stack pointer is. *)
              Assembler.instr a (Isa.Mov (6, Regfile.sp));
              Assembler.instr a (Isa.Jmpr 6))
            ()
        in
        let tcb = load p "stackexec" (Tytan_telf.Builder.of_program ~stack_size:512 prog) in
        Platform.run_ticks p 3;
        check_bool "killed" true (tcb.Tcb.state = Tcb.Terminated));
  ]

(* --- IDT integrity -------------------------------------------------------- *)

let idt_tests =
  [
    Alcotest.test_case "task writing the IDT is killed on TyTAN" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.idt_attacker ~idt_addr:0x100 in
        let tcb = load p ~secure:false "idt-attack" telf in
        Platform.run_ticks p 3;
        check_bool "killed" true (tcb.Tcb.state = Tcb.Terminated);
        check_int "never survived the store" 0 (data_word p tcb telf 0));
    Alcotest.test_case "the IDT entry is unchanged after the attack" `Quick
      (fun () ->
        let p = Platform.create () in
        let engine = Cpu.engine (Platform.cpu p) in
        let before = Exception_engine.vector engine 0 in
        let telf = Tasks.idt_attacker ~idt_addr:0x100 in
        ignore (load p ~secure:false "idt-attack" telf);
        Platform.run_ticks p 3;
        check_int "vector intact" before (Exception_engine.vector engine 0));
    Alcotest.test_case "same attack succeeds on the baseline" `Quick
      (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        (* Attack vector 15 (unused) so the platform keeps running. *)
        let telf = Tasks.idt_attacker ~idt_addr:(0x100 + (15 * 4)) in
        let tcb = load p ~secure:false "idt-attack" telf in
        Platform.run_ticks p 3;
        check_bool "attack survives without EA-MPU" true
          (data_word p tcb telf 0 > 0));
  ]

(* --- Register confidentiality across interrupts --------------------------- *)

let register_wipe_tests =
  [
    Alcotest.test_case "interrupt handlers see wiped registers" `Quick
      (fun () ->
        (* Plant a recognisable value in a secure task's register, then
           observe the register file from the kernel's tick path via a
           software timer callback: the Int Mux must have wiped it. *)
        let p = Platform.create () in
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.instr a (Isa.Movi (7, secret));
              Assembler.label a "spin";
              Assembler.instr a (Isa.Addi (6, 6, 1));
              Assembler.jmp_label a "spin")
            ()
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:512 prog in
        ignore (load p "secretive" telf);
        let observed = ref [] in
        let kernel = Platform.kernel p in
        ignore
          (Kernel.arm_timer kernel ~in_ticks:2 ~period:1 (fun () ->
               observed := Regfile.get (Cpu.regs (Platform.cpu p)) 7 :: !observed));
        Platform.run_ticks p 8;
        check_bool "some observations" true (!observed <> []);
        check_bool "secret never visible to the OS" true
          (List.for_all (fun v -> v <> secret) !observed));
    Alcotest.test_case "baseline handlers can see task registers" `Quick
      (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        let prog =
          Toolchain.normal_program ~main:(fun a ->
              Assembler.label a "main";
              Assembler.instr a (Isa.Movi (7, secret));
              Assembler.label a "spin";
              Assembler.instr a (Isa.Addi (6, 6, 1));
              Assembler.jmp_label a "spin")
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:512 prog in
        ignore (load p ~secure:false "leaky" telf);
        let observed = ref [] in
        let kernel = Platform.kernel p in
        ignore
          (Kernel.arm_timer kernel ~in_ticks:2 ~period:1 (fun () ->
               observed := Regfile.get (Cpu.regs (Platform.cpu p)) 7 :: !observed));
        Platform.run_ticks p 8;
        check_bool "register leaks on the baseline" true
          (List.exists (fun v -> v = secret) !observed));
    Alcotest.test_case "delay argument still reaches the kernel" `Quick
      (fun () ->
        (* Sanitisation keeps syscall arguments (r0–r2) visible: a secure
           task's 5-tick delay must actually last 5 ticks. *)
        let p = Platform.create () in
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.label a "loop";
              Assembler.movi_label a ~rd:4 "count";
              Assembler.instr a (Isa.Ldw (5, 4, 0));
              Assembler.instr a (Isa.Addi (5, 5, 1));
              Assembler.instr a (Isa.Stw (4, 0, 5));
              Assembler.instr a (Isa.Movi (0, 5));
              Assembler.instr a (Isa.Swi 2);
              Assembler.jmp_label a "loop";
              Assembler.begin_data a;
              Assembler.label a "count";
              Assembler.word a 0)
            ()
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:512 prog in
        let tcb = load p "slow" telf in
        Platform.run_ticks p 25;
        let count = data_word p tcb telf 0 in
        check_bool "ran once per 5 ticks" true (count >= 4 && count <= 6));
  ]

(* --- Platform key protection ---------------------------------------------- *)

let key_tests =
  [
    Alcotest.test_case "kernel cannot read the platform key" `Quick (fun () ->
        let p = Platform.create () in
        check_bool "denied" true
          (try
             ignore
               (Cpu.with_firmware (Platform.cpu p)
                  ~eip:(Kernel.code_eip (Platform.kernel p))
                  (fun () -> Cpu.load32 (Platform.cpu p) (Platform.kp_addr p)));
             false
           with Access.Violation _ -> true));
    Alcotest.test_case "tasks cannot read the platform key" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.spy ~victim_addr:(Platform.kp_addr p) in
        let spy = load p ~secure:false "keythief" telf in
        Platform.run_ticks p 3;
        check_bool "killed" true (spy.Tcb.state = Tcb.Terminated));
    Alcotest.test_case "remote-attest component can read the key" `Quick
      (fun () ->
        let p = Platform.create () in
        let att = Option.get (Platform.attestation p) in
        let telf = Tasks.counter () in
        let tcb = load p "c" telf in
        let rtm = Option.get (Platform.rtm p) in
        let id = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id in
        check_bool "report produced" true
          (Attestation.remote_attest att ~id ~nonce:(Bytes.of_string "n") <> None));
  ]

(* --- Attestation detects tampering ---------------------------------------- *)

let tamper_tests =
  [
    Alcotest.test_case "a modified binary yields a different identity" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tampered =
          let image = Bytes.copy telf.Tytan_telf.Telf.image in
          (* NOP out one instruction: a backdoored build. *)
          Bytes.blit (Isa.encode Isa.Nop) 0 image 200 Isa.width;
          { telf with Tytan_telf.Telf.image }
        in
        let a = load p "genuine" telf in
        let b = load p "backdoored" tampered in
        let rtm = Option.get (Platform.rtm p) in
        let id_a = (Option.get (Rtm.find_by_tcb rtm a)).Rtm.id in
        let id_b = (Option.get (Rtm.find_by_tcb rtm b)).Rtm.id in
        check_bool "identities differ" false (Task_id.equal id_a id_b));
    Alcotest.test_case "verifier rejects the tampered task's report" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tampered =
          let image = Bytes.copy telf.Tytan_telf.Telf.image in
          Bytes.blit (Isa.encode Isa.Nop) 0 image 200 Isa.width;
          { telf with Tytan_telf.Telf.image }
        in
        let tcb = load p "backdoored" tampered in
        let rtm = Option.get (Platform.rtm p) in
        let actual_id = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id in
        let att = Option.get (Platform.attestation p) in
        let nonce = Bytes.of_string "challenge" in
        let report = Option.get (Attestation.remote_attest att ~id:actual_id ~nonce) in
        let ka =
          Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
        in
        (* The verifier expects the identity of the genuine binary. *)
        let expected = Rtm.identity_of_telf telf in
        check_bool "rejected" false
          (Attestation.verify ~ka report ~expected ~nonce));
  ]

(* --- Further attack surface ------------------------------------------------ *)

let surface_tests =
  [
    Alcotest.test_case "stack overflow is contained to the offender" `Quick
      (fun () ->
        (* Recursion without base case: the stack marches down out of the
           task's region; the first out-of-region push faults and only the
           offender dies. *)
        let p = Platform.create () in
        let good_telf = Tasks.counter () in
        let good = load p "good" good_telf in
        let prog =
          Toolchain.secure_program
            ~main:(fun a ->
              Assembler.label a "main";
              Assembler.label a "recurse";
              Assembler.instr a (Isa.Push 0);
              Assembler.jmp_label a "recurse")
            ()
        in
        let telf = Tytan_telf.Builder.of_program ~stack_size:256 prog in
        let hog = load p "stack-hog" telf in
        Platform.run_ticks p 6;
        check_bool "offender killed" true (hog.Tcb.state = Tcb.Terminated);
        check_bool "bystander fine" true (data_word p good good_telf 0 >= 5));
    Alcotest.test_case "writing another task's inbox directly is denied"
      `Quick (fun () ->
        (* Only the IPC proxy holds a write grant on inboxes: forging a
           message by writing the mailbox directly must fault. *)
        let p = Platform.create () in
        let rtelf = Tasks.ipc_receiver () in
        let receiver = load p "recv" rtelf in
        let forger_telf =
          Tasks.idt_attacker ~idt_addr:receiver.Tcb.inbox_base
        in
        let forger = load p ~secure:false "forger" forger_telf in
        Platform.run_ticks p 4;
        check_bool "forger killed" true (forger.Tcb.state = Tcb.Terminated);
        check_int "no forged message" 0 (data_word p receiver rtelf 0));
    Alcotest.test_case "interrupt storm does not break deadlines" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb =
          Result.get_ok (Platform.load_blocking p ~name:"rt" ~priority:4 telf)
        in
        let engine = Cpu.engine (Platform.cpu p) in
        (* Hammer an unbound IRQ line between every tick. *)
        for _ = 1 to 20 do
          Exception_engine.raise_irq engine 7;
          Platform.run_ticks p 1;
          Exception_engine.raise_irq engine 7
        done;
        check_bool "rate held through the storm" true
          (data_word p tcb telf 0 >= 19));
    Alcotest.test_case "same scenario is cycle-for-cycle reproducible"
      `Quick (fun () ->
        let run () =
          let p = Platform.create () in
          let telf = Tasks.counter () in
          ignore (load p "c" telf);
          Platform.run_ticks p 10;
          Cycles.now (Platform.clock p)
        in
        check_int "deterministic" (run ()) (run ()));
  ]

let () =
  Alcotest.run "security"
    [
      ("isolation", isolation_tests);
      ("entry-points", entry_tests);
      ("idt", idt_tests);
      ("register-wipe", register_wipe_tests);
      ("platform-key", key_tests);
      ("tamper-evidence", tamper_tests);
      ("attack-surface", surface_tests);
    ]
