(* Provisioning and fleet management: key hierarchy, device isolation,
   manifest audits, and compromise detection across a fleet. *)

open Tytan_core
open Tytan_provision
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let master = Bytes.of_string "manufacturer-root-secret"

let registry_tests =
  [
    Alcotest.test_case "keys are deterministic per serial" `Quick (fun () ->
        let r = Registry.create ~master in
        check_bool "stable" true
          (Registry.platform_key r ~serial:"ecu-1"
          = Registry.platform_key r ~serial:"ecu-1"));
    Alcotest.test_case "different serials get different keys" `Quick
      (fun () ->
        let r = Registry.create ~master in
        check_bool "independent" false
          (Registry.platform_key r ~serial:"ecu-1"
          = Registry.platform_key r ~serial:"ecu-2"));
    Alcotest.test_case "different masters give different fleets" `Quick
      (fun () ->
        let r1 = Registry.create ~master in
        let r2 = Registry.create ~master:(Bytes.of_string "other") in
        check_bool "independent" false
          (Registry.platform_key r1 ~serial:"ecu-1"
          = Registry.platform_key r2 ~serial:"ecu-1"));
    Alcotest.test_case "platform keys are 20 bytes (Kp format)" `Quick
      (fun () ->
        let r = Registry.create ~master in
        check_int "size" 20
          (Bytes.length (Registry.platform_key r ~serial:"x")));
    Alcotest.test_case "attestation key matches the device derivation"
      `Quick (fun () ->
        let r = Registry.create ~master in
        let kp = Registry.platform_key r ~serial:"ecu-1" in
        check_bool "same Ka both sides" true
          (Registry.attestation_key r ~serial:"ecu-1"
          = Attestation.derive_ka ~platform_key:kp));
  ]

let firmware () = Tasks.counter ()

let fleet_tests =
  [
    Alcotest.test_case "device boots with its registry key" `Quick (fun () ->
        let r = Registry.create ~master in
        let d = Fleet.manufacture r ~serial:"ecu-1" () in
        check_bool "key matches" true
          ((Platform.config (Fleet.platform d)).Platform.platform_key
          = Registry.platform_key r ~serial:"ecu-1"));
    Alcotest.test_case "healthy fleet audits clean" `Quick (fun () ->
        let r = Registry.create ~master in
        let fw = firmware () in
        Registry.set_manifest r [ ("control-fw", Rtm.identity_of_telf fw) ];
        let devices =
          List.map
            (fun serial ->
              let d = Fleet.manufacture r ~serial () in
              ignore (Result.get_ok (Fleet.deploy d ~name:"control-fw" fw));
              d)
            [ "ecu-1"; "ecu-2"; "ecu-3" ]
        in
        let reports = Fleet.audit_fleet r devices () in
        check_int "three reports" 3 (List.length reports);
        List.iter
          (fun report -> check_bool report.Fleet.device_serial true (Fleet.healthy report))
          reports);
    Alcotest.test_case "the compromised device is singled out" `Quick
      (fun () ->
        let r = Registry.create ~master in
        let fw = firmware () in
        Registry.set_manifest r [ ("control-fw", Rtm.identity_of_telf fw) ];
        let good = Fleet.manufacture r ~serial:"ecu-good" () in
        ignore (Result.get_ok (Fleet.deploy good ~name:"control-fw" fw));
        let bad = Fleet.manufacture r ~serial:"ecu-bad" () in
        let backdoored =
          let image = Bytes.copy fw.Tytan_telf.Telf.image in
          Bytes.blit (Tytan_machine.Isa.encode Tytan_machine.Isa.Nop) 0 image 200 8;
          { fw with Tytan_telf.Telf.image }
        in
        ignore (Result.get_ok (Fleet.deploy bad ~name:"control-fw" backdoored));
        let reports = Fleet.audit_fleet r [ good; bad ] () in
        (match reports with
        | [ good_report; bad_report ] ->
            check_bool "good healthy" true (Fleet.healthy good_report);
            check_bool "bad flagged" false (Fleet.healthy bad_report);
            check_bool "as compromised" true
              (List.assoc "control-fw" bad_report.Fleet.components
              = Fleet.Compromised_or_missing)
        | _ -> Alcotest.fail "expected two reports"));
    Alcotest.test_case "one device's key cannot audit another" `Quick
      (fun () ->
        (* A verifier holding ecu-1's Ka must reject ecu-2's genuine
           reports: per-device keys isolate the fleet. *)
        let r = Registry.create ~master in
        let fw = firmware () in
        let d2 = Fleet.manufacture r ~serial:"ecu-2" () in
        ignore (Result.get_ok (Fleet.deploy d2 ~name:"fw" fw));
        let wrong_ka = Registry.attestation_key r ~serial:"ecu-1" in
        let v =
          Tytan_netsim.Verifier.create ~ka:wrong_ka
            ~expected:(Rtm.identity_of_telf fw) ~max_attempts:3
            ~timeout_slices:2 ()
        in
        (* drive d2's cosim manually with the wrong-keyed verifier *)
        let cosim =
          Tytan_netsim.Cosim.create (Fleet.platform d2)
            ~link:(Tytan_netsim.Link.create ()) ()
        in
        Tytan_netsim.Cosim.attach_verifier cosim v;
        ignore (Tytan_netsim.Cosim.run_until_settled cosim ~max_slices:100);
        check_bool "rejected" true
          (Tytan_netsim.Verifier.outcome v = Tytan_netsim.Verifier.Gave_up));
    Alcotest.test_case "multi-component manifest reports per component"
      `Quick (fun () ->
        let r = Registry.create ~master in
        let fw_a = Tasks.counter () in
        let fw_b = Tasks.counter ~stack_size:768 () in
        Registry.set_manifest r
          [
            ("engine-fw", Rtm.identity_of_telf fw_a);
            ("brake-fw", Rtm.identity_of_telf fw_b);
          ];
        let d = Fleet.manufacture r ~serial:"ecu-1" () in
        ignore (Result.get_ok (Fleet.deploy d ~name:"engine-fw" fw_a));
        (* brake firmware never installed *)
        let report = Fleet.audit r d () in
        check_bool "engine healthy" true
          (List.assoc "engine-fw" report.Fleet.components = Fleet.Healthy);
        check_bool "brake flagged" true
          (List.assoc "brake-fw" report.Fleet.components
          = Fleet.Compromised_or_missing);
        check_bool "overall unhealthy" false (Fleet.healthy report));
    Alcotest.test_case "audit succeeds across a lossy uplink" `Quick
      (fun () ->
        let r = Registry.create ~master in
        let fw = firmware () in
        Registry.set_manifest r [ ("fw", Rtm.identity_of_telf fw) ];
        let d = Fleet.manufacture r ~serial:"ecu-radio" ~loss_percent:50 ~link_seed:5 () in
        ignore (Result.get_ok (Fleet.deploy d ~name:"fw" fw));
        let report = Fleet.audit r d ~max_attempts:30 () in
        check_bool "healthy despite loss" true (Fleet.healthy report));
  ]

let () =
  Alcotest.run "provision"
    [ ("registry", registry_tests); ("fleet", fleet_tests) ]
