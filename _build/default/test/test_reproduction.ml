(* Reproduction pinning: the paper-facing numbers the benchmark prints,
   asserted as tests so a refactor cannot silently drift the evaluation.
   Each case corresponds to a row of EXPERIMENTS.md. *)

open Tytan_machine
open Tytan_rtos
open Tytan_telf
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_until_current p (tcb : Tcb.t) =
  let kernel = Platform.kernel p in
  let rec go guard =
    if guard = 0 then failwith "task never became current"
    else if Kernel.current kernel = Some tcb && tcb.Tcb.state = Tcb.Running
    then ()
    else begin
      ignore (Platform.run p ~cycles:200);
      go (guard - 1)
    end
  in
  go 10_000

let table2 =
  Alcotest.test_case "table 2: secure save is 95 cycles, overhead 57" `Quick
    (fun () ->
      let measure ~secure =
        let p = Platform.create () in
        let telf =
          if secure then Tasks.busy_loop () else Tasks.busy_loop ~secure:false ()
        in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"s" ~secure telf) in
        run_until_current p tcb;
        let cpu = Platform.cpu p in
        let ops = Kernel.context_ops (Platform.kernel p) in
        let gprs = Regfile.all_gprs (Cpu.regs cpu) in
        snd (Cycles.measure (Platform.clock p) (fun () -> ops.Context.save tcb gprs))
      in
      let secure = measure ~secure:true in
      let baseline = measure ~secure:false in
      check_int "secure save" 95 secure;
      check_int "overhead" 57 (secure - baseline))

let table5 =
  Alcotest.test_case "table 5: relocation rows land in the paper's bands"
    `Quick (fun () ->
      List.iter
        (fun (n, low, high) ->
          let p = Platform.create () in
          let telf =
            Toolchain.synthetic_secure ~image_size:1024 ~reloc_count:n
              ~stack_size:128
          in
          ignore (Result.get_ok (Platform.load_blocking p ~name:"r" telf));
          let cost =
            Option.value ~default:(-1)
              (List.assoc_opt "relocation" (Loader.last_report (Platform.loader p)))
          in
          check_bool
            (Printf.sprintf "n=%d: %d within [%d, %d]" n cost low high)
            true
            (cost >= low && cost <= high))
        (* paper's min/avg bands, widened by ±3% *)
        [ (0, 35, 39); (1, 652, 724); (2, 1305, 1413); (4, 2555, 2792) ])

let table6 =
  Alcotest.test_case "table 6: EA-MPU config costs exactly match" `Quick
    (fun () ->
      List.iter
        (fun (position, expected) ->
          let clock = Cycles.create () in
          let eampu = Tytan_eampu.Eampu.create ~slots:18 () in
          let mpu = Mpu_driver.create eampu clock ~code_eip:0x100 in
          for i = 0 to position - 2 do
            Tytan_eampu.Eampu.set_slot eampu i
              (Some
                 (Tytan_eampu.Eampu.Exec
                    {
                      region =
                        Tytan_eampu.Region.make ~base:(0x10000 + (i * 0x200))
                          ~size:0x100;
                      entry = None;
                    }))
          done;
          let rule =
            Tytan_eampu.Eampu.Exec
              { region = Tytan_eampu.Region.make ~base:0x90000 ~size:0x100; entry = None }
          in
          let _, cost =
            Cycles.measure clock (fun () -> Mpu_driver.install_rule mpu rule)
          in
          check_int (Printf.sprintf "position %d" position) expected cost)
        [ (1, 1125); (2, 1144); (18, 1448) ])

let table7 =
  Alcotest.test_case "table 7: measurement within 2% of the paper" `Quick
    (fun () ->
      let measured_cost ~blocks =
        let mem = Memory.create ~size:0x40000 in
        let clock = Cycles.create () in
        let engine = Exception_engine.create mem ~idt_base:0x100 in
        let cpu = Cpu.create mem clock engine in
        let rtm = Rtm.create cpu ~code_eip:0x500 in
        let telf =
          Builder.synthetic ~image_size:(blocks * 64) ~reloc_count:0
            ~stack_size:128 ()
        in
        Memory.blit_bytes mem 0x2000 telf.Telf.image;
        snd (Cycles.measure clock (fun () -> ignore (Rtm.measure rtm ~base:0x2000 ~telf)))
      in
      List.iter
        (fun (blocks, paper) ->
          let cost = measured_cost ~blocks in
          let tolerance = paper / 50 in
          check_bool
            (Printf.sprintf "%d blocks: %d ≈ %d" blocks cost paper)
            true
            (abs (cost - paper) <= tolerance))
        [ (1, 8261); (2, 12200); (4, 20078); (8, 35790) ])

let table8 =
  Alcotest.test_case "table 8: memory totals are the paper's exactly" `Quick
    (fun () ->
      check_int "FreeRTOS" 215_617
        (Platform.os_memory_bytes (Platform.create ~config:Platform.baseline_config ()));
      check_int "TyTAN" 249_943
        (Platform.os_memory_bytes (Platform.create ())))

let ipc_cost =
  Alcotest.test_case "secure IPC proxy costs the paper's 1208" `Quick
    (fun () -> check_int "proxy" 1_208 Cost_model.ipc_proxy_total)

let table1_shape =
  Alcotest.test_case
    "table 1: rates hold during an interruptible multi-tick load" `Quick
    (fun () ->
      let p = Platform.create () in
      let telf = Tasks.counter () in
      let t1 = Result.get_ok (Platform.load_blocking p ~name:"t1" ~priority:4 telf) in
      Platform.run_ticks p 5;
      let big =
        Toolchain.synthetic_secure ~image_size:11_976 ~reloc_count:9
          ~stack_size:256
      in
      Platform.submit_load p ~name:"t2" big;
      let before = t1.Tcb.activations in
      let start = Cycles.now (Platform.clock p) in
      let rec wait guard =
        if guard = 0 then failwith "load did not finish"
        else if Kernel.find_task_by_name (Platform.kernel p) "t2" <> None then ()
        else begin
          Platform.run_ticks p 1;
          wait (guard - 1)
        end
      in
      wait 400;
      let load_cycles = Cycles.now (Platform.clock p) - start in
      let ticks_elapsed = load_cycles / (Platform.config p).Platform.tick_period in
      check_bool "load spanned many scheduling cycles" true (ticks_elapsed >= 10);
      check_bool "t1 activated about once per tick throughout" true
        (t1.Tcb.activations - before >= ticks_elapsed - 1))

let () =
  Alcotest.run "reproduction"
    [
      ("pinned",
       [ table1_shape; table2; table5; table6; table7; table8; ipc_cost ]);
    ]
