(* EA-MPU semantics: regions, permissions, slot management, overlap
   policy, execution-aware checks and entry-point enforcement. *)

open Tytan_machine
open Tytan_eampu

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let region base size = Region.make ~base ~size

let denied f =
  try
    f ();
    false
  with Access.Violation _ -> true

let region_tests =
  [
    Alcotest.test_case "contains boundaries" `Quick (fun () ->
        let r = region 100 10 in
        check_bool "first" true (Region.contains r 100);
        check_bool "last" true (Region.contains r 109);
        check_bool "past end" false (Region.contains r 110);
        check_bool "before" false (Region.contains r 99));
    Alcotest.test_case "contains_range" `Quick (fun () ->
        let r = region 100 10 in
        check_bool "whole" true (Region.contains_range r 100 10);
        check_bool "straddles end" false (Region.contains_range r 105 10);
        check_bool "empty range" false (Region.contains_range r 100 0));
    Alcotest.test_case "overlaps_range partial" `Quick (fun () ->
        let r = region 100 10 in
        check_bool "straddles start" true (Region.overlaps_range r 95 10);
        check_bool "disjoint" false (Region.overlaps_range r 110 10));
    Alcotest.test_case "region overlap symmetry" `Quick (fun () ->
        let a = region 100 10 and b = region 105 10 and c = region 110 10 in
        check_bool "a~b" true (Region.overlaps a b && Region.overlaps b a);
        check_bool "a!~c" false (Region.overlaps a c));
    Alcotest.test_case "invalid region rejected" `Quick (fun () ->
        check_bool "zero size" true
          (try
             ignore (region 0 0);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "perm allows" `Quick (fun () ->
        check_bool "r allows read" true (Perm.allows Perm.r Access.Read);
        check_bool "r denies write" false (Perm.allows Perm.r Access.Write);
        check_bool "rw allows write" true (Perm.allows Perm.rw Access.Write);
        check_bool "perm never allows execute" false
          (Perm.allows Perm.rw Access.Execute));
  ]

let slot_tests =
  [
    Alcotest.test_case "default slot count is 18" `Quick (fun () ->
        check_int "slots" 18 (Eampu.slot_count (Eampu.create ())));
    Alcotest.test_case "first_free_slot scans in order" `Quick (fun () ->
        let e = Eampu.create ~slots:4 () in
        Eampu.set_slot e 0 (Some (Exec { region = region 0x100 16; entry = None }));
        Eampu.set_slot e 1 (Some (Exec { region = region 0x200 16; entry = None }));
        check_bool "slot 2" true (Eampu.first_free_slot e = Some 2));
    Alcotest.test_case "full unit has no free slot" `Quick (fun () ->
        let e = Eampu.create ~slots:2 () in
        for i = 0 to 1 do
          Eampu.set_slot e i
            (Some (Exec { region = region (0x100 * (i + 1)) 16; entry = None }))
        done;
        check_bool "none" true (Eampu.first_free_slot e = None));
    Alcotest.test_case "clear frees the slot" `Quick (fun () ->
        let e = Eampu.create ~slots:2 () in
        Eampu.set_slot e 0 (Some (Exec { region = region 0x100 16; entry = None }));
        Eampu.clear_slot e 0;
        check_int "used" 0 (Eampu.used_slots e));
    Alcotest.test_case "exec regions must not overlap" `Quick (fun () ->
        let e = Eampu.create () in
        Eampu.set_slot e 0 (Some (Exec { region = region 0x100 0x100; entry = None }));
        let conflicting = Eampu.Exec { region = region 0x180 0x100; entry = None } in
        check_int "one conflict" 1 (List.length (Eampu.conflicts e conflicting));
        let disjoint = Eampu.Exec { region = region 0x300 0x100; entry = None } in
        check_int "no conflict" 0 (List.length (Eampu.conflicts e disjoint)));
    Alcotest.test_case "grants never conflict" `Quick (fun () ->
        let e = Eampu.create () in
        let code = region 0x100 0x100 in
        Eampu.set_slot e 0 (Some (Exec { region = code; entry = None }));
        Eampu.set_slot e 1
          (Some (Grant { code; data = region 0x400 0x100; perm = Perm.rw }));
        let another =
          Eampu.Grant { code = region 0x800 16; data = region 0x400 0x100; perm = Perm.r }
        in
        check_int "no conflict" 0 (List.length (Eampu.conflicts e another)));
    Alcotest.test_case "bad slot index rejected" `Quick (fun () ->
        let e = Eampu.create ~slots:2 () in
        check_bool "raises" true
          (try
             ignore (Eampu.slot e 5);
             false
           with Invalid_argument _ -> true));
  ]

(* A configured unit for check tests:
   - task A: code at 0x1000 (entry 0x1000), data at 0x2000
   - task B: code at 0x3000 (entry 0x3000), data at 0x4000
   - OS: code at 0x5000 with a grant over task A's data only. *)
let configured () =
  let e = Eampu.create () in
  let a_code = region 0x1000 0x100 in
  let a_data = region 0x2000 0x100 in
  let b_code = region 0x3000 0x100 in
  let b_data = region 0x4000 0x100 in
  let os_code = region 0x5000 0x100 in
  Eampu.set_slot e 0 (Some (Exec { region = a_code; entry = Some 0x1000 }));
  Eampu.set_slot e 1 (Some (Grant { code = a_code; data = a_data; perm = Perm.rw }));
  Eampu.set_slot e 2 (Some (Exec { region = b_code; entry = Some 0x3000 }));
  Eampu.set_slot e 3 (Some (Grant { code = b_code; data = b_data; perm = Perm.rw }));
  Eampu.set_slot e 4 (Some (Exec { region = os_code; entry = None }));
  Eampu.set_slot e 5 (Some (Grant { code = os_code; data = a_data; perm = Perm.r }));
  Eampu.enable e;
  e

let check_tests =
  [
    Alcotest.test_case "disabled unit allows everything" `Quick (fun () ->
        let e = Eampu.create () in
        Eampu.check e ~eip:0 ~addr:0x9999 ~size:4 ~kind:Access.Write);
    Alcotest.test_case "task reads own data" `Quick (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x1010 ~addr:0x2010 ~size:4 ~kind:Access.Read);
    Alcotest.test_case "task writes own data" `Quick (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x1010 ~addr:0x2010 ~size:4 ~kind:Access.Write);
    Alcotest.test_case "task cannot touch another task's data" `Quick
      (fun () ->
        let e = configured () in
        check_bool "read denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x1010 ~addr:0x4010 ~size:4 ~kind:Access.Read));
        check_bool "write denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x1010 ~addr:0x4010 ~size:4 ~kind:Access.Write)));
    Alcotest.test_case "os grant is read-only" `Quick (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x5010 ~addr:0x2010 ~size:4 ~kind:Access.Read;
        check_bool "write denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x5010 ~addr:0x2010 ~size:4 ~kind:Access.Write)));
    Alcotest.test_case "uncovered memory is open" `Quick (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x1010 ~addr:0x8000 ~size:4 ~kind:Access.Write);
    Alcotest.test_case "execute denied outside any exec region" `Quick
      (fun () ->
        let e = configured () in
        check_bool "stack execution denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x1010 ~addr:0x2010 ~size:8
                 ~kind:Access.Execute)));
    Alcotest.test_case "internal jumps are free" `Quick (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x1008 ~addr:0x1080 ~size:8 ~kind:Access.Execute);
    Alcotest.test_case "cross-region entry only at entry point" `Quick
      (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x5010 ~addr:0x1000 ~size:8 ~kind:Access.Execute;
        check_bool "mid-body entry denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x5010 ~addr:0x1050 ~size:8
                 ~kind:Access.Execute)));
    Alcotest.test_case "region without entry point is open to entry" `Quick
      (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x1010 ~addr:0x5040 ~size:8 ~kind:Access.Execute);
    Alcotest.test_case "code regions are not writable by anyone" `Quick
      (fun () ->
        let e = configured () in
        check_bool "self write denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x1010 ~addr:0x1050 ~size:4 ~kind:Access.Write));
        check_bool "foreign write denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x5010 ~addr:0x1050 ~size:4 ~kind:Access.Write)));
    Alcotest.test_case "code readable only by itself" `Quick (fun () ->
        let e = configured () in
        Eampu.check e ~eip:0x1010 ~addr:0x1050 ~size:4 ~kind:Access.Read;
        check_bool "foreign read denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x5010 ~addr:0x1050 ~size:4 ~kind:Access.Read)));
    Alcotest.test_case "access straddling a protected boundary denied" `Quick
      (fun () ->
        let e = configured () in
        (* 4-byte write starting 2 bytes before task A's data region ends
           inside it; the grant requires full containment. *)
        check_bool "straddle denied" true
          (denied (fun () ->
               Eampu.check e ~eip:0x1010 ~addr:0x1FFE ~size:4 ~kind:Access.Write)));
  ]

let () =
  Alcotest.run "eampu"
    [
      ("region+perm", region_tests);
      ("slots", slot_tests);
      ("checks", check_tests);
    ]
