(* API-surface tests: smaller behaviours across the libraries that the
   themed suites do not reach — accessors, error paths, pretty-printers,
   counters and conversions a downstream user relies on. *)

open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let machine_misc =
  [
    Alcotest.test_case "cycles: measure isolates the delta" `Quick (fun () ->
        let c = Cycles.create () in
        Cycles.charge c 10;
        let (), d = Cycles.measure c (fun () -> Cycles.charge c 32) in
        check_int "delta" 32 d;
        check_int "total" 42 (Cycles.now c));
    Alcotest.test_case "cycles: to_ms at 48 MHz" `Quick (fun () ->
        check_bool "1 ms" true (abs_float (Cycles.to_ms 48_000 -. 1.0) < 1e-9));
    Alcotest.test_case "cycles: negative charge rejected" `Quick (fun () ->
        let c = Cycles.create () in
        check_bool "assert fires" true
          (try
             Cycles.charge c (-1);
             false
           with Assert_failure _ -> true));
    Alcotest.test_case "word: hex rendering" `Quick (fun () ->
        check_str "padded" "0x0000BEEF" (Format.asprintf "%a" Word.pp 0xBEEF));
    Alcotest.test_case "memory: fill validates its range" `Quick (fun () ->
        let m = Memory.create ~size:16 in
        check_bool "raises" true
          (try
             Memory.fill m 8 16 0;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "engine: firmware names are queryable" `Quick
      (fun () ->
        let m = Memory.create ~size:1024 in
        let e = Exception_engine.create m ~idt_base:0x100 in
        let addr = Exception_engine.register_firmware e ~name:"my-svc" (fun () -> ()) in
        check_bool "name" true
          (Exception_engine.firmware_name e addr = Some "my-svc");
        check_bool "unknown" true (Exception_engine.firmware_name e 0x42 = None));
    Alcotest.test_case "engine: bad vector index rejected" `Quick (fun () ->
        let m = Memory.create ~size:1024 in
        let e = Exception_engine.create m ~idt_base:0x100 in
        check_bool "raises" true
          (try
             ignore (Exception_engine.vector e 32);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "assembler: here tracks emission" `Quick (fun () ->
        let p = Assembler.create () in
        check_int "empty" 0 (Assembler.here p);
        Assembler.instr p Isa.Nop;
        Assembler.word p 1;
        check_int "8 + 4" 12 (Assembler.here p));
    Alcotest.test_case "sensor: read counting and reset" `Quick (fun () ->
        let clock = Cycles.create () in
        let s =
          Devices.Sensor.create ~name:"s" ~base:0x100 ~clock
            ~sample:(fun ~cycles:_ -> 1)
        in
        let d = Devices.Sensor.device s in
        ignore (d.Memory.read32 ~offset:0);
        ignore (d.Memory.read32 ~offset:0);
        check_int "two reads" 2 (Devices.Sensor.reads s);
        Devices.Sensor.reset_reads s;
        check_int "reset" 0 (Devices.Sensor.reads s));
    Alcotest.test_case "trace: per-source counting" `Quick (fun () ->
        let c = Cycles.create () in
        let t = Trace.create c in
        Trace.enable t;
        Trace.emit t ~source:"a" "x";
        Trace.emit t ~source:"a" "y";
        Trace.emit t ~source:"b" "z";
        check_int "a twice" 2 (Trace.count t ~source:"a");
        Trace.clear t;
        check_int "cleared" 0 (Trace.count t ~source:"a"));
  ]

let structures_misc =
  [
    Alcotest.test_case "rt-queue: send waiters also droppable" `Quick
      (fun () ->
        let q = Rt_queue.create ~id:0 ~capacity:1 in
        let t =
          Tcb.make ~id:9 ~name:"w" ~priority:1 ~secure:false ~region_base:0
            ~region_size:0x200 ~code_base:0 ~code_size:8 ~entry:0
            ~stack_base:0x100 ~stack_size:0x100 ~inbox_base:0
        in
        Rt_queue.add_send_waiter q t ~value:5;
        Rt_queue.drop_waiter q t;
        check_bool "gone" true (Rt_queue.take_send_waiter q = None));
    Alcotest.test_case "sw-timer: armed_count reflects pending alarms" `Quick
      (fun () ->
        let t = Sw_timer.create () in
        let id = Sw_timer.arm t ~at_tick:5 (fun () -> ()) in
        ignore (Sw_timer.arm t ~at_tick:9 (fun () -> ()));
        check_int "two" 2 (Sw_timer.armed_count t);
        Sw_timer.cancel t id;
        check_int "one" 1 (Sw_timer.armed_count t));
    Alcotest.test_case "heap: invalid sizes rejected" `Quick (fun () ->
        let h = Heap.create ~base:0x1000 ~size:0x100 in
        check_bool "raises" true
          (try
             ignore (Heap.alloc h ~size:0);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "eampu: pp renders without raising" `Quick (fun () ->
        let e = Tytan_eampu.Eampu.create ~slots:2 () in
        Tytan_eampu.Eampu.set_slot e 0
          (Some
             (Tytan_eampu.Eampu.Exec
                { region = Tytan_eampu.Region.make ~base:0x100 ~size:0x10; entry = Some 0x100 }));
        let rendered = Format.asprintf "%a" Tytan_eampu.Eampu.pp e in
        check_bool "mentions slots" true (String.length rendered > 10));
    Alcotest.test_case "keystream: wrong-size tag rejected at decode" `Quick
      (fun () ->
        let module K = Tytan_crypto.Keystream in
        let sealed =
          K.seal ~key:(Bytes.make 20 'k') ~nonce:(Bytes.of_string "n")
            (Bytes.of_string "p")
        in
        let b = K.encode sealed in
        (* chop one tag byte: structure no longer parses *)
        check_bool "rejected" true
          (K.decode (Bytes.sub b 0 (Bytes.length b - 1)) = None));
  ]

let platform_misc =
  [
    Alcotest.test_case "component_region finds named regions" `Quick
      (fun () ->
        let p = Platform.create () in
        check_bool "rtm exists" true (Platform.component_region p "rtm" <> None);
        check_bool "nonsense misses" true
          (Platform.component_region p "flux-capacitor" = None));
    Alcotest.test_case "memory map region sizes match Table 8 parts" `Quick
      (fun () ->
        let p = Platform.create () in
        let size name =
          Tytan_eampu.Region.size (Option.get (Platform.component_region p name))
        in
        check_int "rtm" 9_862 (size "rtm");
        check_int "int-mux" 2_134 (size "int-mux");
        check_int "kernel-code" 181_000 (size "kernel-code"));
    Alcotest.test_case "ipc: host-injected message is readable" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"c" telf) in
        let rtm = Option.get (Platform.rtm p) in
        let id = (Option.get (Rtm.find_by_tcb rtm tcb)).Rtm.id in
        let ipc = Option.get (Platform.ipc p) in
        let from = Task_id.of_image (Bytes.of_string "host-sender") in
        check_bool "delivered" true
          (Result.is_ok
             (Ipc.deliver_from_host ipc ~sender:from ~receiver:id
                [| 9; 8; 7; 0; 0; 0; 0; 0 |]));
        (match Ipc.read_inbox ipc tcb with
        | Some (sender, words) ->
            check_bool "sender carried" true (Task_id.equal sender from);
            check_int "m0" 9 words.(0);
            check_int "m2" 7 words.(2)
        | None -> Alcotest.fail "no message");
        check_bool "consumed" true (Ipc.read_inbox ipc tcb = None));
    Alcotest.test_case "platform timers fire through run_ticks" `Quick
      (fun () ->
        let p = Platform.create () in
        let fired = ref 0 in
        ignore
          (Kernel.arm_timer (Platform.kernel p) ~in_ticks:2 ~period:3 (fun () ->
               incr fired));
        Platform.run_ticks p 12;
        check_bool "fired several times" true (!fired >= 3));
    Alcotest.test_case "int mux exposes its counters" `Quick (fun () ->
        let p = Platform.create () in
        ignore (Result.get_ok (Platform.load_blocking p ~name:"c" (Tasks.counter ())));
        Platform.run_ticks p 5;
        let mux = Option.get (Platform.int_mux p) in
        check_bool "counters move" true
          (Int_mux.secure_saves mux > 0 && Int_mux.secure_restores mux > 0));
    Alcotest.test_case "loader reports bytes loaded" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        ignore (Result.get_ok (Platform.load_blocking p ~name:"c" telf));
        check_bool "accounted" true
          (Loader.bytes_loaded (Platform.loader p)
          >= Tytan_telf.Telf.memory_footprint telf));
    Alcotest.test_case "disasm of a full task binary renders" `Quick
      (fun () ->
        let telf = Tasks.counter () in
        let lines =
          Disasm.of_bytes
            (Bytes.sub telf.Tytan_telf.Telf.image 0 telf.Tytan_telf.Telf.text_size)
        in
        check_bool "every slot decodes" true
          (List.for_all (fun l -> l.Disasm.instr <> None) lines));
    Alcotest.test_case "tasklang pp renders a program" `Quick (fun () ->
        let open Tytan_lang in
        let program =
          Ast.program ~globals:[ ("x", 0) ]
            [
              Ast.While
                ( Ast.Binop (Ast.Lt, Ast.Var "x", Ast.Int 3),
                  [ Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 1)) ] );
              Ast.Exit;
            ]
        in
        let rendered = Format.asprintf "%a" Ast.pp program in
        check_bool "mentions the loop" true
          (String.length rendered > 20
          && String.sub rendered 0 6 = "global"));
  ]

let () =
  Alcotest.run "misc"
    [
      ("machine", machine_misc);
      ("structures", structures_misc);
      ("platform", platform_misc);
    ]
