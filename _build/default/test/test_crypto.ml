(* Crypto substrate tests: SHA-1 and HMAC against published vectors, key
   derivation, the storage cipher, and constant-time comparison. *)

module Crypto = Tytan_crypto
open Crypto

let check_hex msg expected b = Alcotest.(check string) msg expected (Sha1.to_hex b)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* FIPS 180-1 / RFC 3174 test vectors. *)
let sha1_tests =
  [
    Alcotest.test_case "empty string" `Quick (fun () ->
        check_hex "vector" "da39a3ee5e6b4b0d3255bfef95601890afd80709"
          (Sha1.digest_string ""));
    Alcotest.test_case "abc" `Quick (fun () ->
        check_hex "vector" "a9993e364706816aba3e25717850c26c9cd0d89d"
          (Sha1.digest_string "abc"));
    Alcotest.test_case "two-block message" `Quick (fun () ->
        check_hex "vector" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
          (Sha1.digest_string
             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
    Alcotest.test_case "million a" `Slow (fun () ->
        check_hex "vector" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
          (Sha1.digest (Bytes.make 1_000_000 'a')));
    Alcotest.test_case "streaming equals one-shot" `Quick (fun () ->
        let data = Bytes.of_string (String.init 300 (fun i -> Char.chr (i land 0xFF))) in
        let ctx = Sha1.init () in
        Sha1.feed_sub ctx data ~pos:0 ~len:100;
        Sha1.feed_sub ctx data ~pos:100 ~len:1;
        Sha1.feed_sub ctx data ~pos:101 ~len:199;
        check_bool "equal" true (Sha1.finalize ctx = Sha1.digest data));
    Alcotest.test_case "compression count" `Quick (fun () ->
        let ctx = Sha1.init () in
        Sha1.feed ctx (Bytes.make 128 'x');
        check_int "two blocks" 2 (Sha1.compression_count ctx));
    Alcotest.test_case "boundary lengths (55, 56, 63, 64, 65)" `Quick
      (fun () ->
        (* Padding edge cases must round-trip through the streaming API. *)
        List.iter
          (fun n ->
            let data = Bytes.make n 'q' in
            let ctx = Sha1.init () in
            Sha1.feed ctx data;
            check_bool
              (Printf.sprintf "len %d" n)
              true
              (Sha1.finalize ctx = Sha1.digest data))
          [ 55; 56; 63; 64; 65 ]);
    Alcotest.test_case "double finalize rejected" `Quick (fun () ->
        let ctx = Sha1.init () in
        ignore (Sha1.finalize ctx);
        check_bool "raises" true
          (try
             ignore (Sha1.finalize ctx);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "global compression counter advances" `Quick (fun () ->
        let before = Sha1.total_compressions () in
        ignore (Sha1.digest (Bytes.make 64 'z'));
        check_bool "advanced" true (Sha1.total_compressions () > before));
  ]

(* RFC 2202 HMAC-SHA1 vectors. *)
let hmac_tests =
  [
    Alcotest.test_case "rfc2202 case 1" `Quick (fun () ->
        check_hex "tag" "b617318655057264e28bc0b6fb378c8ef146be00"
          (Hmac.mac_string ~key:(Bytes.make 20 '\x0b') "Hi There"));
    Alcotest.test_case "rfc2202 case 2 (short key)" `Quick (fun () ->
        check_hex "tag" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
          (Hmac.mac_string ~key:(Bytes.of_string "Jefe")
             "what do ya want for nothing?"));
    Alcotest.test_case "rfc2202 case 3" `Quick (fun () ->
        check_hex "tag" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
          (Hmac.mac ~key:(Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd')));
    Alcotest.test_case "rfc2202 case 6 (long key hashed)" `Quick (fun () ->
        check_hex "tag" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
          (Hmac.mac_string ~key:(Bytes.make 80 '\xaa')
             "Test Using Larger Than Block-Size Key - Hash Key First"));
    Alcotest.test_case "verify accepts valid tag" `Quick (fun () ->
        let key = Bytes.of_string "k" in
        let msg = Bytes.of_string "m" in
        check_bool "ok" true (Hmac.verify ~key msg ~tag:(Hmac.mac ~key msg)));
    Alcotest.test_case "verify rejects flipped bit" `Quick (fun () ->
        let key = Bytes.of_string "k" in
        let msg = Bytes.of_string "m" in
        let tag = Hmac.mac ~key msg in
        Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 1));
        check_bool "rejected" false (Hmac.verify ~key msg ~tag));
    Alcotest.test_case "different keys different tags" `Quick (fun () ->
        let msg = Bytes.of_string "msg" in
        check_bool "differ" false
          (Hmac.mac ~key:(Bytes.of_string "a") msg
          = Hmac.mac ~key:(Bytes.of_string "b") msg));
  ]

let kdf_tests =
  [
    Alcotest.test_case "purposes are independent" `Quick (fun () ->
        let kp = Bytes.make 20 'K' in
        check_bool "differ" false
          (Kdf.derive ~platform_key:kp ~purpose:"a"
          = Kdf.derive ~platform_key:kp ~purpose:"b"));
    Alcotest.test_case "task key binds identity" `Quick (fun () ->
        let kp = Bytes.make 20 'K' in
        let id1 = Bytes.of_string "task-id1" in
        let id2 = Bytes.of_string "task-id2" in
        check_bool "differ" false
          (Kdf.derive_task_key ~platform_key:kp ~task_id:id1
          = Kdf.derive_task_key ~platform_key:kp ~task_id:id2));
    Alcotest.test_case "task key binds platform" `Quick (fun () ->
        let id = Bytes.of_string "task-id1" in
        check_bool "differ" false
          (Kdf.derive_task_key ~platform_key:(Bytes.make 20 'A') ~task_id:id
          = Kdf.derive_task_key ~platform_key:(Bytes.make 20 'B') ~task_id:id));
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let kp = Bytes.make 20 'K' in
        check_bool "stable" true
          (Kdf.derive ~platform_key:kp ~purpose:"x"
          = Kdf.derive ~platform_key:kp ~purpose:"x"));
    Alcotest.test_case "provider keys differ per provider" `Quick (fun () ->
        let kp = Bytes.make 20 'K' in
        check_bool "differ" false
          (Kdf.derive_provider_key ~platform_key:kp ~provider:"oem"
          = Kdf.derive_provider_key ~platform_key:kp ~provider:"supplier"));
  ]

let keystream_tests =
  [
    Alcotest.test_case "seal/open round trip" `Quick (fun () ->
        let key = Bytes.make 20 'S' in
        let nonce = Bytes.of_string "n0" in
        let plain = Bytes.of_string "the plaintext payload" in
        let sealed = Keystream.seal ~key ~nonce plain in
        check_bool "round trip" true
          (Keystream.open_sealed ~key sealed = Some plain));
    Alcotest.test_case "wrong key fails" `Quick (fun () ->
        let sealed =
          Keystream.seal ~key:(Bytes.make 20 'A') ~nonce:(Bytes.of_string "n")
            (Bytes.of_string "data")
        in
        check_bool "rejected" true
          (Keystream.open_sealed ~key:(Bytes.make 20 'B') sealed = None));
    Alcotest.test_case "tampered ciphertext fails" `Quick (fun () ->
        let key = Bytes.make 20 'A' in
        let sealed =
          Keystream.seal ~key ~nonce:(Bytes.of_string "n")
            (Bytes.of_string "data!")
        in
        Bytes.set sealed.Keystream.ciphertext 0 '\xFF';
        check_bool "rejected" true (Keystream.open_sealed ~key sealed = None));
    Alcotest.test_case "ciphertext differs from plaintext" `Quick (fun () ->
        let key = Bytes.make 20 'A' in
        let plain = Bytes.of_string "sixteen byte msg" in
        let sealed = Keystream.seal ~key ~nonce:(Bytes.of_string "n") plain in
        check_bool "encrypted" false (sealed.Keystream.ciphertext = plain));
    Alcotest.test_case "distinct nonces give distinct ciphertexts" `Quick
      (fun () ->
        let key = Bytes.make 20 'A' in
        let plain = Bytes.of_string "same plaintext" in
        let s1 = Keystream.seal ~key ~nonce:(Bytes.of_string "n1") plain in
        let s2 = Keystream.seal ~key ~nonce:(Bytes.of_string "n2") plain in
        check_bool "differ" false
          (s1.Keystream.ciphertext = s2.Keystream.ciphertext));
    Alcotest.test_case "encode/decode round trip" `Quick (fun () ->
        let key = Bytes.make 20 'A' in
        let sealed =
          Keystream.seal ~key ~nonce:(Bytes.of_string "nonce-8b")
            (Bytes.of_string "payload bytes")
        in
        match Keystream.decode (Keystream.encode sealed) with
        | Some decoded ->
            check_bool "open after decode" true
              (Keystream.open_sealed ~key decoded
              = Some (Bytes.of_string "payload bytes"))
        | None -> Alcotest.fail "decode failed");
    Alcotest.test_case "decode rejects truncation" `Quick (fun () ->
        let key = Bytes.make 20 'A' in
        let encoded =
          Keystream.encode
            (Keystream.seal ~key ~nonce:(Bytes.of_string "n")
               (Bytes.of_string "xyz"))
        in
        check_bool "rejected" true
          (Keystream.decode (Bytes.sub encoded 0 (Bytes.length encoded - 3))
          = None));
    Alcotest.test_case "empty payload" `Quick (fun () ->
        let key = Bytes.make 20 'A' in
        let sealed = Keystream.seal ~key ~nonce:(Bytes.of_string "n") Bytes.empty in
        check_bool "round trip" true
          (Keystream.open_sealed ~key sealed = Some Bytes.empty));
  ]

let constant_time_tests =
  [
    Alcotest.test_case "equal strings" `Quick (fun () ->
        check_bool "eq" true
          (Constant_time.equal (Bytes.of_string "abc") (Bytes.of_string "abc")));
    Alcotest.test_case "different strings" `Quick (fun () ->
        check_bool "neq" false
          (Constant_time.equal (Bytes.of_string "abc") (Bytes.of_string "abd")));
    Alcotest.test_case "length mismatch" `Quick (fun () ->
        check_bool "neq" false
          (Constant_time.equal (Bytes.of_string "ab") (Bytes.of_string "abc")));
    Alcotest.test_case "empty" `Quick (fun () ->
        check_bool "eq" true (Constant_time.equal Bytes.empty Bytes.empty));
  ]

(* FIPS 180-4 test vectors. *)
let sha256_tests =
  [
    Alcotest.test_case "empty string" `Quick (fun () ->
        Alcotest.(check string) "vector"
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (Sha256.to_hex (Sha256.digest_string "")));
    Alcotest.test_case "abc" `Quick (fun () ->
        Alcotest.(check string) "vector"
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (Sha256.to_hex (Sha256.digest_string "abc")));
    Alcotest.test_case "two-block message" `Quick (fun () ->
        Alcotest.(check string) "vector"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (Sha256.to_hex
             (Sha256.digest_string
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")));
    Alcotest.test_case "streaming equals one-shot" `Quick (fun () ->
        let data = Bytes.of_string (String.init 200 (fun i -> Char.chr (i land 0xFF))) in
        let ctx = Sha256.init () in
        Sha256.feed_sub ctx data ~pos:0 ~len:65;
        Sha256.feed_sub ctx data ~pos:65 ~len:135;
        check_bool "equal" true (Sha256.finalize ctx = Sha256.digest data));
    Alcotest.test_case "padding boundaries (55, 56, 63, 64, 65)" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let data = Bytes.make n 'q' in
            let ctx = Sha256.init () in
            Sha256.feed ctx data;
            check_bool (Printf.sprintf "len %d" n) true
              (Sha256.finalize ctx = Sha256.digest data))
          [ 55; 56; 63; 64; 65 ]);
    Alcotest.test_case "same block size as SHA-1 (RTM granularity)" `Quick
      (fun () ->
        check_int "64" Sha1.block_size Sha256.block_size);
  ]

let () =
  Alcotest.run "crypto"
    [
      ("sha1", sha1_tests);
      ("sha256", sha256_tests);
      ("hmac", hmac_tests);
      ("kdf", kdf_tests);
      ("keystream", keystream_tests);
      ("constant-time", constant_time_tests);
    ]
