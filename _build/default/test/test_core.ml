(* Core component tests: task identities, the heap, the toolchain stub,
   the EA-MPU driver protocol, RTM measurement and the loader state
   machine (including cycle-cost structure). *)

open Tytan_machine
open Tytan_eampu
open Tytan_telf
open Tytan_core
module Tasks = Tytan_tasks.Task_lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Task_id ------------------------------------------------------------- *)

let task_id_tests =
  [
    Alcotest.test_case "64-bit truncation of sha1" `Quick (fun () ->
        let digest = Tytan_crypto.Sha1.digest_string "abc" in
        let id = Task_id.of_digest digest in
        check_bool "prefix" true
          (Bytes.sub digest 0 8 = Task_id.to_bytes id));
    Alcotest.test_case "words round trip" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "some binary") in
        let lo, hi = Task_id.to_words id in
        check_bool "round trip" true (Task_id.equal id (Task_id.of_words ~lo ~hi)));
    Alcotest.test_case "different images different ids" `Quick (fun () ->
        check_bool "differ" false
          (Task_id.equal
             (Task_id.of_image (Bytes.of_string "a"))
             (Task_id.of_image (Bytes.of_string "b"))));
    Alcotest.test_case "hex is 16 chars" `Quick (fun () ->
        check_int "hex length" 16
          (String.length (Task_id.to_hex (Task_id.of_image Bytes.empty))));
    Alcotest.test_case "of_bytes validates length" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (Task_id.of_bytes (Bytes.make 7 'x'));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "usable as map key" `Quick (fun () ->
        let id = Task_id.of_image (Bytes.of_string "x") in
        let m = Task_id.Map.(add id 42 empty) in
        check_int "found" 42 (Task_id.Map.find id m));
  ]

(* --- Heap ---------------------------------------------------------------- *)

let heap_tests =
  [
    Alcotest.test_case "allocations are 16-aligned and disjoint" `Quick
      (fun () ->
        let h = Heap.create ~base:0x1003 ~size:0x1000 in
        let a = Option.get (Heap.alloc h ~size:100) in
        let b = Option.get (Heap.alloc h ~size:100) in
        check_int "a aligned" 0 (a mod 16);
        check_int "b aligned" 0 (b mod 16);
        check_bool "disjoint" true (b >= a + 100 || a >= b + 100));
    Alcotest.test_case "free and reuse" `Quick (fun () ->
        let h = Heap.create ~base:0x1000 ~size:0x200 in
        let a = Option.get (Heap.alloc h ~size:0x100) in
        check_bool "second may fail" true (Heap.alloc h ~size:0x180 = None);
        Heap.free h a;
        check_bool "fits after free" true (Heap.alloc h ~size:0x180 <> None));
    Alcotest.test_case "coalescing restores the full block" `Quick (fun () ->
        let h = Heap.create ~base:0x1000 ~size:0x300 in
        let a = Option.get (Heap.alloc h ~size:0x100) in
        let b = Option.get (Heap.alloc h ~size:0x100) in
        let c = Option.get (Heap.alloc h ~size:0x100) in
        Heap.free h a;
        Heap.free h c;
        Heap.free h b;
        check_int "one big block" 0x300 (Heap.largest_free_block h));
    Alcotest.test_case "double free rejected" `Quick (fun () ->
        let h = Heap.create ~base:0x1000 ~size:0x100 in
        let a = Option.get (Heap.alloc h ~size:16) in
        Heap.free h a;
        check_bool "raises" true
          (try
             Heap.free h a;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "exhaustion returns None" `Quick (fun () ->
        let h = Heap.create ~base:0x1000 ~size:64 in
        check_bool "too big" true (Heap.alloc h ~size:128 = None));
    Alcotest.test_case "accounting" `Quick (fun () ->
        let h = Heap.create ~base:0x1000 ~size:0x1000 in
        let _ = Heap.alloc h ~size:100 in
        check_int "one allocation" 1 (Heap.allocation_count h);
        check_int "rounded to 16" 112 (Heap.allocated_bytes h));
  ]

(* --- Toolchain ----------------------------------------------------------- *)

let toolchain_tests =
  [
    Alcotest.test_case "stub dispatches on the reason register" `Quick
      (fun () ->
        let prog =
          Toolchain.secure_program
            ~main:(fun p ->
              Assembler.label p "main";
              Assembler.instr p Isa.Halt)
            ()
        in
        (* First instruction compares the reason register against RESUME. *)
        match Isa.decode (Bytes.sub prog.image 0 Isa.width) with
        | Isa.Cmpi (r, v) ->
            check_int "reason register" Regfile.reason r;
            check_int "resume code" Toolchain.reason_resume v
        | _ -> Alcotest.fail "expected cmpi");
    Alcotest.test_case "stub has the documented size" `Quick (fun () ->
        let prog =
          Toolchain.secure_program
            ~main:(fun p ->
              Assembler.label p "main";
              Assembler.instr p Isa.Halt)
            ()
        in
        (* stub + the one-instruction default message handler *)
        check_int "main after stub"
          ((Toolchain.entry_stub_instructions + 1) * Isa.width)
          (List.assoc "main" prog.symbols));
    Alcotest.test_case "default message handler provided" `Quick (fun () ->
        let prog =
          Toolchain.secure_program
            ~main:(fun p ->
              Assembler.label p "main";
              Assembler.instr p Isa.Halt)
            ()
        in
        check_bool "on_message defined" true
          (List.mem_assoc "on_message" prog.symbols));
    Alcotest.test_case "normal program has no stub" `Quick (fun () ->
        let prog =
          Toolchain.normal_program ~main:(fun p ->
              Assembler.label p "main";
              Assembler.instr p Isa.Halt)
        in
        check_int "entry at 0" 0 prog.entry;
        (* first instruction is the jump to main *)
        match Isa.decode (Bytes.sub prog.image 0 Isa.width) with
        | Isa.Jmp _ -> ()
        | _ -> Alcotest.fail "expected jmp");
  ]

(* --- MPU driver ---------------------------------------------------------- *)

let mpu_fixture () =
  let clock = Cycles.create () in
  let eampu = Eampu.create ~slots:18 () in
  (clock, eampu, Mpu_driver.create eampu clock ~code_eip:0x100)

let exec_rule base =
  Eampu.Exec { region = Region.make ~base ~size:0x100; entry = None }

let mpu_driver_tests =
  [
    Alcotest.test_case "install uses first free slot" `Quick (fun () ->
        let _, eampu, mpu = mpu_fixture () in
        check_bool "slot 0" true (Mpu_driver.install_rule mpu (exec_rule 0x1000) = Ok 0);
        check_bool "slot 1" true (Mpu_driver.install_rule mpu (exec_rule 0x2000) = Ok 1);
        check_int "two used" 2 (Eampu.used_slots eampu));
    Alcotest.test_case "conflicting rule rejected, no slot burned" `Quick
      (fun () ->
        let _, eampu, mpu = mpu_fixture () in
        ignore (Mpu_driver.install_rule mpu (exec_rule 0x1000));
        check_bool "rejected" true
          (Result.is_error (Mpu_driver.install_rule mpu (exec_rule 0x1080)));
        check_int "still one slot" 1 (Eampu.used_slots eampu));
    Alcotest.test_case "cycle cost matches Table 6 structure" `Quick
      (fun () ->
        let clock, _, mpu = mpu_fixture () in
        (* First install probes slot 0 (paper's position 1). *)
        let _, cost1 =
          Cycles.measure clock (fun () ->
              Mpu_driver.install_rule mpu (exec_rule 0x1000))
        in
        check_int "position 1"
          (Cost_model.eampu_find_slot_base + Cost_model.eampu_policy_check
         + Cost_model.eampu_write_rule)
          cost1;
        (* Second install probes into slot 1: one extra step. *)
        let _, cost2 =
          Cycles.measure clock (fun () ->
              Mpu_driver.install_rule mpu (exec_rule 0x2000))
        in
        check_int "position 2 adds one probe step"
          (cost1 + Cost_model.eampu_find_slot_step)
          cost2);
    Alcotest.test_case "remove frees slots for reuse" `Quick (fun () ->
        let _, _, mpu = mpu_fixture () in
        let slot = Result.get_ok (Mpu_driver.install_rule mpu (exec_rule 0x1000)) in
        Mpu_driver.remove_slot mpu slot;
        check_bool "slot reused" true
          (Mpu_driver.install_rule mpu (exec_rule 0x3000) = Ok slot));
    Alcotest.test_case "full unit reports no free slot" `Quick (fun () ->
        let _, _, mpu = mpu_fixture () in
        for i = 0 to 17 do
          ignore (Mpu_driver.install_rule mpu (exec_rule (0x1000 + (i * 0x200))))
        done;
        check_bool "error" true
          (Result.is_error (Mpu_driver.install_rule mpu (exec_rule 0x9000))));
    Alcotest.test_case "static install charges nothing" `Quick (fun () ->
        let clock, _, mpu = mpu_fixture () in
        let _, cost =
          Cycles.measure clock (fun () ->
              Mpu_driver.install_static mpu (exec_rule 0x1000))
        in
        check_int "free at boot" 0 cost);
  ]

(* --- RTM ----------------------------------------------------------------- *)

let rtm_fixture () =
  let mem = Memory.create ~size:0x10000 in
  let clock = Cycles.create () in
  let engine = Exception_engine.create mem ~idt_base:0x100 in
  let cpu = Cpu.create mem clock engine in
  (mem, clock, cpu, Rtm.create cpu ~code_eip:0x500)

let load_image mem ~base (telf : Telf.t) =
  let image = Bytes.copy telf.image in
  Relocate.apply ~base ~image ~relocations:telf.relocations;
  Memory.blit_bytes mem base image

let rtm_tests =
  [
    Alcotest.test_case "measurement matches reference identity" `Quick
      (fun () ->
        let mem, _, _, rtm = rtm_fixture () in
        let telf = Builder.synthetic ~image_size:300 ~reloc_count:5 ~stack_size:64 () in
        load_image mem ~base:0x2000 telf;
        let id = Rtm.measure rtm ~base:0x2000 ~telf in
        check_bool "position independent" true
          (Task_id.equal id (Rtm.identity_of_telf telf)));
    Alcotest.test_case "measurement is location independent" `Quick (fun () ->
        let mem, _, _, rtm = rtm_fixture () in
        let telf = Builder.synthetic ~image_size:200 ~reloc_count:3 ~stack_size:64 () in
        load_image mem ~base:0x2000 telf;
        let id1 = Rtm.measure rtm ~base:0x2000 ~telf in
        load_image mem ~base:0x7000 telf;
        let id2 = Rtm.measure rtm ~base:0x7000 ~telf in
        check_bool "same identity at both bases" true (Task_id.equal id1 id2));
    Alcotest.test_case "corrupted image changes the identity" `Quick
      (fun () ->
        let mem, _, _, rtm = rtm_fixture () in
        let telf = Builder.synthetic ~image_size:200 ~reloc_count:0 ~stack_size:64 () in
        load_image mem ~base:0x2000 telf;
        Memory.write8 mem 0x2005 0xEE;
        let id = Rtm.measure rtm ~base:0x2000 ~telf in
        check_bool "detected" false (Task_id.equal id (Rtm.identity_of_telf telf)));
    Alcotest.test_case "cost linear in blocks (Table 7 structure)" `Quick
      (fun () ->
        let mem, clock, _, rtm = rtm_fixture () in
        let cost_of blocks =
          let telf =
            Builder.synthetic ~image_size:(blocks * 64) ~reloc_count:0
              ~stack_size:64 ()
          in
          load_image mem ~base:0x2000 telf;
          snd (Cycles.measure clock (fun () -> ignore (Rtm.measure rtm ~base:0x2000 ~telf)))
        in
        let c1 = cost_of 1 and c2 = cost_of 2 and c4 = cost_of 4 in
        check_int "block slope" Cost_model.rtm_per_block (c2 - c1);
        check_int "linear" (2 * Cost_model.rtm_per_block) (c4 - c2));
    Alcotest.test_case "cost linear in reverted addresses" `Quick (fun () ->
        let mem, clock, _, rtm = rtm_fixture () in
        let cost_of relocs =
          let telf =
            Builder.synthetic ~image_size:256 ~reloc_count:relocs ~stack_size:64 ()
          in
          load_image mem ~base:0x2000 telf;
          snd (Cycles.measure clock (fun () -> ignore (Rtm.measure rtm ~base:0x2000 ~telf)))
        in
        check_int "address slope" Cost_model.rtm_revert_per_address
          (cost_of 1 - cost_of 0));
    Alcotest.test_case "interruptible: one block per step" `Quick (fun () ->
        let mem, _, _, rtm = rtm_fixture () in
        let telf = Builder.synthetic ~image_size:256 ~reloc_count:0 ~stack_size:64 () in
        load_image mem ~base:0x2000 telf;
        let job = Rtm.start_measure rtm ~base:0x2000 ~telf in
        let rec count n =
          match Rtm.step_measure rtm job with
          | `More -> count (n + 1)
          | `Done _ -> n + 1
        in
        check_int "4 blocks, 4 steps" 4 (count 0));
    Alcotest.test_case "directory register/find/unregister" `Quick (fun () ->
        let _, _, _, rtm = rtm_fixture () in
        let telf = Builder.synthetic ~image_size:64 ~reloc_count:0 ~stack_size:64 () in
        let id = Rtm.identity_of_telf telf in
        let tcb =
          Tytan_rtos.Tcb.make ~id:1 ~name:"x" ~priority:1 ~secure:true
            ~region_base:0x2000 ~region_size:0x200 ~code_base:0x2000
            ~code_size:0x40 ~entry:0x2000 ~stack_base:0x2100 ~stack_size:0x100
            ~inbox_base:0x20C0
        in
        Rtm.register rtm { Rtm.id; tcb; base = 0x2000; telf; slots = []; provider = "p" };
        check_bool "find by id" true (Rtm.find rtm id <> None);
        check_bool "find by eip inside code" true
          (Rtm.find_by_eip rtm 0x2010 <> None);
        check_bool "eip outside code misses" true
          (Rtm.find_by_eip rtm 0x2100 = None);
        Rtm.unregister rtm id;
        check_bool "gone" true (Rtm.find rtm id = None));
  ]

(* --- Loader (on a live platform) ----------------------------------------- *)

let loader_tests =
  [
    Alcotest.test_case "table 4 cost structure: secure load decomposition"
      `Quick (fun () ->
        let p = Platform.create () in
        let telf = Toolchain.synthetic_secure ~image_size:3832 ~reloc_count:9 ~stack_size:128 in
        (* footprint ≈ the paper's 3 962-byte task *)
        let _, total =
          Cycles.measure (Platform.clock p) (fun () ->
              ignore (Platform.load_blocking p ~name:"t" telf))
        in
        let blocks = (3832 + 63) / 64 in
        let measurement_floor = blocks * Cost_model.rtm_per_block in
        check_bool "RTM dominates but is not everything" true
          (total > measurement_floor
          && measurement_floor * 100 / total > 30));
    Alcotest.test_case "normal load skips measurement" `Quick (fun () ->
        let p = Platform.create () in
        let telf () = Toolchain.synthetic_secure ~image_size:3832 ~reloc_count:9 ~stack_size:128 in
        let _, secure_cost =
          Cycles.measure (Platform.clock p) (fun () ->
              ignore (Platform.load_blocking p ~name:"s" (telf ())))
        in
        let _, normal_cost =
          Cycles.measure (Platform.clock p) (fun () ->
              ignore (Platform.load_blocking p ~name:"n" ~secure:false (telf ())))
        in
        check_bool "secure far costlier" true
          (secure_cost - normal_cost > 50 * Cost_model.rtm_per_block));
    Alcotest.test_case "secure load installs five rules" `Quick (fun () ->
        let p = Platform.create () in
        let eampu = Option.get (Platform.eampu p) in
        let before = Eampu.used_slots eampu in
        let telf = Tasks.counter () in
        ignore (Result.get_ok (Platform.load_blocking p ~name:"c" telf));
        check_int "five rules" 5 (Eampu.used_slots eampu - before));
    Alcotest.test_case "unload returns slots and memory" `Quick (fun () ->
        let p = Platform.create () in
        let eampu = Option.get (Platform.eampu p) in
        let slots_before = Eampu.used_slots eampu in
        let heap_before = Heap.allocated_bytes (Platform.heap p) in
        let tcb = Result.get_ok (Platform.load_blocking p ~name:"c" (Tasks.counter ())) in
        Platform.unload p tcb;
        check_int "slots back" slots_before (Eampu.used_slots eampu);
        check_int "heap back" heap_before (Heap.allocated_bytes (Platform.heap p)));
    Alcotest.test_case "loading many tasks exhausts slots gracefully" `Quick
      (fun () ->
        let p = Platform.create () in
        let rec load n =
          match Platform.load_blocking p ~name:(Printf.sprintf "t%d" n) (Tasks.counter ()) with
          | Ok _ when n < 20 -> load (n + 1)
          | Ok _ -> `Too_many
          | Error _ -> `Failed_at n
        in
        match load 0 with
        | `Failed_at n -> check_bool "some loads succeeded first" true (n >= 3)
        | `Too_many -> Alcotest.fail "expected slot exhaustion");
    Alcotest.test_case "out-of-memory load fails cleanly" `Quick (fun () ->
        let p = Platform.create () in
        let heap_before = Heap.allocated_bytes (Platform.heap p) in
        let huge =
          Builder.synthetic ~image_size:4096 ~reloc_count:0
            ~stack_size:(8 * 1024 * 1024) ()
        in
        check_bool "rejected" true
          (Result.is_error (Platform.load_blocking p ~name:"huge" huge));
        check_int "no leak" heap_before (Heap.allocated_bytes (Platform.heap p)));
    Alcotest.test_case "identity listed after load" `Quick (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        let _ = Result.get_ok (Platform.load_blocking p ~name:"c" telf) in
        let rtm = Option.get (Platform.rtm p) in
        check_bool "in directory" true
          (Rtm.find rtm (Rtm.identity_of_telf telf) <> None));
    Alcotest.test_case "async load completes via the service task" `Quick
      (fun () ->
        let p = Platform.create () in
        let telf = Tasks.counter () in
        Platform.submit_load p ~name:"async" telf;
        check_int "queued" 1 (Loader.pending (Platform.loader p));
        Platform.run_ticks p 80;
        check_int "drained" 0 (Loader.pending (Platform.loader p));
        check_bool "task created" true
          (Tytan_rtos.Kernel.find_task_by_name (Platform.kernel p) "async" <> None));
    Alcotest.test_case "baseline platform rejects secure tasks" `Quick
      (fun () ->
        let p = Platform.create ~config:Platform.baseline_config () in
        check_bool "rejected" true
          (Result.is_error
             (Platform.load_blocking p ~name:"s" (Tasks.counter ()))));
  ]

let cost_model_tests =
  [
    Alcotest.test_case "table 2 components sum to the paper's 95" `Quick
      (fun () ->
        check_int "95" 95
          (Cost_model.int_mux_store_context + Cost_model.int_mux_wipe_registers
         + Cost_model.int_mux_branch));
    Alcotest.test_case "table 2 overhead is 57" `Quick (fun () ->
        check_int "57" 57
          (Cost_model.int_mux_store_context + Cost_model.int_mux_wipe_registers
          + Cost_model.int_mux_branch - Cost_model.freertos_save));
    Alcotest.test_case "ipc proxy components sum to 1208" `Quick (fun () ->
        check_int "1208" 1208 Cost_model.ipc_proxy_total);
    Alcotest.test_case "table 6 position 18 cost" `Quick (fun () ->
        check_int "399 find cost at slot 18"
          399
          (Cost_model.eampu_find_slot_base + (17 * Cost_model.eampu_find_slot_step)));
  ]

let () =
  Alcotest.run "core"
    [
      ("task-id", task_id_tests);
      ("heap", heap_tests);
      ("toolchain", toolchain_tests);
      ("mpu-driver", mpu_driver_tests);
      ("rtm", rtm_tests);
      ("loader", loader_tests);
      ("cost-model", cost_model_tests);
    ]
