open Tytan_machine

type key = {
  component : string;
  name : string;
  task : string option;
}

let key ?task ~component name = { component; name; task }

let compare_key a b =
  match String.compare a.component b.component with
  | 0 -> (
      match String.compare a.name b.name with
      | 0 -> Option.compare String.compare a.task b.task
      | c -> c)
  | c -> c

let key_to_string k =
  match k.task with
  | None -> Printf.sprintf "%s.%s" k.component k.name
  | Some task -> Printf.sprintf "%s.%s{task=%s}" k.component k.name task

(* Log-bucketed histogram over non-negative cycle counts.  Bucket 0 holds
   observations <= 0; bucket [i] (i >= 1) holds [2^(i-1), 2^i).  With
   63-bit OCaml ints the largest observation (max_int) lands in the last
   bucket, index 62. *)

let bucket_count = 63

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    let i = 1 + log2 0 v in
    if i >= bucket_count then bucket_count - 1 else i
  end

let bucket_lower i = if i <= 0 then 0 else 1 lsl (i - 1)

let bucket_upper i =
  if i <= 0 then 0
  else if i >= bucket_count - 1 then max_int
  else (1 lsl i) - 1

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;
}

type histogram_snapshot = {
  count : int;
  sum : int;
  min_value : int;
  max_value : int;
  nonzero_buckets : (int * int) list;
}

type span = {
  span_key : key;
  start_cycle : int;
  duration : int;
  depth : int;
}

type open_span = {
  os_id : int;
  os_key : key;
  os_start : int;
  os_depth : int;
}

type t = {
  clock : Cycles.t;
  span_capacity : int;
  mutable enabled : bool;
  mutable per_event_cost : int;
  mutable per_span_cost : int;
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, int ref) Hashtbl.t;
  histograms : (key, histogram) Hashtbl.t;
  mutable open_spans : open_span list;  (* innermost first *)
  spans : span Queue.t;
  mutable next_span_id : int;
  mutable events_recorded : int;
  mutable spans_recorded : int;
  mutable spans_dropped : int;
  mutable mis_nested : int;
}

let create ?(span_capacity = 4096) ?(per_event_cost = 0) ?(per_span_cost = 0)
    clock =
  {
    clock;
    span_capacity;
    enabled = false;
    per_event_cost;
    per_span_cost;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    open_spans = [];
    spans = Queue.create ();
    next_span_id = 1;
    events_recorded = 0;
    spans_recorded = 0;
    spans_dropped = 0;
    mis_nested = 0;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled
let clock t = t.clock

let set_costs t ~per_event ~per_span =
  t.per_event_cost <- per_event;
  t.per_span_cost <- per_span

let per_event_cost t = t.per_event_cost
let per_span_cost t = t.per_span_cost

(* Every recorded event charges the simulated clock — instrumentation is
   part of the machine, so observation has an honest, modelled cost. *)
let charge_event t =
  t.events_recorded <- t.events_recorded + 1;
  Cycles.charge t.clock t.per_event_cost

let[@inline] incr ?task t ~component name =
  if t.enabled then begin
    charge_event t;
    let k = { component; name; task } in
    match Hashtbl.find_opt t.counters k with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.add t.counters k (ref 1)
  end

let[@inline] add ?task t ~component name v =
  if t.enabled then begin
    charge_event t;
    let k = { component; name; task } in
    match Hashtbl.find_opt t.counters k with
    | Some r -> r := !r + v
    | None -> Hashtbl.add t.counters k (ref v)
  end

let[@inline] set_gauge ?task t ~component name v =
  if t.enabled then begin
    charge_event t;
    let k = { component; name; task } in
    match Hashtbl.find_opt t.gauges k with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges k (ref v)
  end

let[@inline] observe ?task t ~component name v =
  if t.enabled then begin
    charge_event t;
    let k = { component; name; task } in
    let h =
      match Hashtbl.find_opt t.histograms k with
      | Some h -> h
      | None ->
          let h =
            {
              h_count = 0;
              h_sum = 0;
              h_min = max_int;
              h_max = min_int;
              buckets = Array.make bucket_count 0;
            }
          in
          Hashtbl.add t.histograms k h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_index v in
    h.buckets.(i) <- h.buckets.(i) + 1
  end

(* Spans.  [begin_span] returns an opaque id (0 when disabled: a valid
   argument to [end_span], which treats it as a no-op).  Spans may close
   out of order — interruptible jobs (RTM measurement, loader phases,
   synchronous IPC sessions) legitimately overlap kernel service spans —
   so [end_span] accepts any currently-open id.  Only ids that are not
   open (double close, or never opened) count as mis-nesting. *)

let[@inline] begin_span ?task t ~component name =
  if not t.enabled then 0
  else begin
    let id = t.next_span_id in
    t.next_span_id <- id + 1;
    t.open_spans <-
      {
        os_id = id;
        os_key = { component; name; task };
        os_start = Cycles.now t.clock;
        os_depth = List.length t.open_spans;
      }
      :: t.open_spans;
    id
  end

let record_span t os ~ended =
  if Queue.length t.spans >= t.span_capacity then begin
    ignore (Queue.pop t.spans);
    t.spans_dropped <- t.spans_dropped + 1
  end;
  Queue.push
    {
      span_key = os.os_key;
      start_cycle = os.os_start;
      duration = ended - os.os_start;
      depth = os.os_depth;
    }
    t.spans;
  t.spans_recorded <- t.spans_recorded + 1;
  (* Auto-maintained duration histogram per span key (free of the
     per-event charge: the span charge below covers all bookkeeping). *)
  let h =
    match Hashtbl.find_opt t.histograms os.os_key with
    | Some h -> h
    | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = min_int;
            buckets = Array.make bucket_count 0;
          }
        in
        Hashtbl.add t.histograms os.os_key h;
        h
  in
  let v = ended - os.os_start in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let end_span t id =
  if t.enabled && id <> 0 then begin
    (* Read the end cycle before charging so the span's own bookkeeping
       cost lands in the enclosing region, not inside the span. *)
    let ended = Cycles.now t.clock in
    match List.partition (fun os -> os.os_id = id) t.open_spans with
    | [ os ], rest ->
        t.open_spans <- rest;
        record_span t os ~ended;
        Cycles.charge t.clock t.per_span_cost
    | _ -> t.mis_nested <- t.mis_nested + 1
  end

let with_span ?task t ~component name f =
  let id = begin_span ?task t ~component name in
  Fun.protect ~finally:(fun () -> end_span t id) f

(* Read-side accessors are host-side analysis: they never charge. *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let gauges t = sorted_bindings t.gauges (fun r -> !r)

let counter ?task t ~component name =
  match Hashtbl.find_opt t.counters { component; name; task } with
  | Some r -> !r
  | None -> 0

let gauge ?task t ~component name =
  match Hashtbl.find_opt t.gauges { component; name; task } with
  | Some r -> !r
  | None -> 0

let snapshot_histogram h =
  let nonzero = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then nonzero := (i, h.buckets.(i)) :: !nonzero
  done;
  {
    count = h.h_count;
    sum = h.h_sum;
    min_value = (if h.h_count = 0 then 0 else h.h_min);
    max_value = (if h.h_count = 0 then 0 else h.h_max);
    nonzero_buckets = !nonzero;
  }

let histograms t = sorted_bindings t.histograms snapshot_histogram

let histogram ?task t ~component name =
  Option.map snapshot_histogram
    (Hashtbl.find_opt t.histograms { component; name; task })

let spans t = List.of_seq (Queue.to_seq t.spans)
let open_span_count t = List.length t.open_spans
let events_recorded t = t.events_recorded
let spans_recorded t = t.spans_recorded
let spans_dropped t = t.spans_dropped
let mis_nested t = t.mis_nested

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  t.open_spans <- [];
  Queue.clear t.spans;
  t.events_recorded <- 0;
  t.spans_recorded <- 0;
  t.spans_dropped <- 0;
  t.mis_nested <- 0
