(** Telemetry exporters: Chrome trace-event JSON and text reports. *)

open Tytan_machine

type flow = {
  flow_id : int;  (** shared by the start/finish pair *)
  flow_name : string;
  src_ts : int;
  dst_ts : int;
}
(** One causal arrow: a flow-event pair (["ph":"s"] / ["ph":"f"]) from
    [src_ts] to [dst_ts], both on tid 0.  Perfetto renders these as
    arrows between the slices enclosing each endpoint. *)

type mark = {
  mark_ts : int;
  mark_name : string;
  mark_cat : string;
}
(** A width-1 anchor slice (["ph":"X"], [dur=1]) on tid 0 — gives flow
    arrows something to attach to when no telemetry span encloses the
    timestamp. *)

val chrome_trace : ?flows:flow list -> ?marks:mark list -> Telemetry.t -> Trace.t -> string
(** One Perfetto-loadable timeline merging completed telemetry spans
    (["ph":"X"] duration events) with {!Trace} events (["ph":"i"]
    instants).  [ts] and [dur] are raw simulated cycles; tid 0 is the
    kernel/firmware and each task gets its own thread row.  Events are
    sorted by [ts] and the output is deterministic (golden-testable).
    [?flows] adds causal-arrow pairs and [?marks] their anchor slices
    (both default empty, leaving legacy output byte-identical). *)

val summary : Telemetry.t -> string
(** Human-readable report: counters, gauges, histogram statistics and
    span bookkeeping totals. *)

val text_timeline : ?limit:int -> Telemetry.t -> string
(** Perfetto-screenshot-equivalent text rendering of the span timeline,
    indented by nesting depth; at most [limit] (default 60) spans. *)

val stats_json :
  ?attribution:(string * int) list -> total_cycles:int -> Telemetry.t -> string
(** The [tytan stats --json] payload: total cycles, per-task cycle
    attribution, and the full metrics registry. *)

val json_string : string -> string
(** Escape and quote a string as a JSON literal (shared by reporters). *)
