(** Telemetry exporters: Chrome trace-event JSON and text reports. *)

open Tytan_machine

val chrome_trace : Telemetry.t -> Trace.t -> string
(** One Perfetto-loadable timeline merging completed telemetry spans
    (["ph":"X"] duration events) with {!Trace} events (["ph":"i"]
    instants).  [ts] and [dur] are raw simulated cycles; tid 0 is the
    kernel/firmware and each task gets its own thread row.  Events are
    sorted by [ts] and the output is deterministic (golden-testable). *)

val summary : Telemetry.t -> string
(** Human-readable report: counters, gauges, histogram statistics and
    span bookkeeping totals. *)

val text_timeline : ?limit:int -> Telemetry.t -> string
(** Perfetto-screenshot-equivalent text rendering of the span timeline,
    indented by nesting depth; at most [limit] (default 60) spans. *)

val stats_json :
  ?attribution:(string * int) list -> total_cycles:int -> Telemetry.t -> string
(** The [tytan stats --json] payload: total cycles, per-task cycle
    attribution, and the full metrics registry. *)

val json_string : string -> string
(** Escape and quote a string as a JSON literal (shared by reporters). *)
