open Tytan_machine

(* Hand-rolled JSON emission: the sealed toolchain carries no JSON
   library, and the trace format is small enough that escaping strings
   is the only subtlety. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (escape s)

(* Chrome trace-event export.

   Spans become complete ("ph":"X") duration events and Trace events
   become instants ("ph":"i"); [ts]/[dur] are raw simulated cycles (the
   viewer's microseconds read as cycles).  Thread ids partition the
   timeline by attribution: tid 0 is the kernel/firmware, each task name
   gets a tid in order of first appearance.  Output is sorted by [ts]
   (stable), which both Perfetto and the golden test rely on. *)

type flow = {
  flow_id : int;
  flow_name : string;
  src_ts : int;
  dst_ts : int;
}

type mark = {
  mark_ts : int;
  mark_name : string;
  mark_cat : string;
}

type phase =
  | Span of int  (* "X" with this duration *)
  | Instant  (* "i" *)
  | Flow_start of int  (* "s" with this id *)
  | Flow_end of int  (* "f" with this id *)

type event = {
  ts : int;
  ph : phase;
  name : string;
  cat : string;
  tid : int;
  arg_task : string option;
}

let chrome_trace ?(flows = []) ?(marks = []) telemetry trace =
  let tids = Hashtbl.create 8 in
  let next_tid = ref 1 in
  let tid_of = function
    | None -> 0
    | Some task -> (
        match Hashtbl.find_opt tids task with
        | Some tid -> tid
        | None ->
            let tid = !next_tid in
            Stdlib.incr next_tid;
            Hashtbl.add tids task tid;
            tid)
  in
  let span_events =
    List.map
      (fun (s : Telemetry.span) ->
        {
          ts = s.start_cycle;
          ph = Span s.duration;
          name = s.span_key.Telemetry.name;
          cat = s.span_key.Telemetry.component;
          tid = tid_of s.span_key.Telemetry.task;
          arg_task = s.span_key.Telemetry.task;
        })
      (Telemetry.spans telemetry)
  in
  let instant_events =
    List.map
      (fun (e : Trace.event) ->
        {
          ts = e.at_cycle;
          ph = Instant;
          name = e.detail;
          cat = e.source;
          tid = 0;
          arg_task = None;
        })
      (Trace.events trace)
  in
  let mark_events =
    List.map
      (fun m ->
        {
          ts = m.mark_ts;
          ph = Span 1;
          name = m.mark_name;
          cat = m.mark_cat;
          tid = 0;
          arg_task = None;
        })
      marks
  in
  let flow_events =
    List.concat_map
      (fun f ->
        [
          {
            ts = f.src_ts;
            ph = Flow_start f.flow_id;
            name = f.flow_name;
            cat = "flow";
            tid = 0;
            arg_task = None;
          };
          {
            ts = f.dst_ts;
            ph = Flow_end f.flow_id;
            name = f.flow_name;
            cat = "flow";
            tid = 0;
            arg_task = None;
          };
        ])
      flows
  in
  let events =
    List.stable_sort
      (fun a b -> compare a.ts b.ts)
      (span_events @ instant_events @ mark_events @ flow_events)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let emit_meta ~name ~tid ~arg_name ~arg_value =
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":%s,\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{%s:%s}},\n"
         (json_string name) tid (json_string arg_name) (json_string arg_value))
  in
  emit_meta ~name:"process_name" ~tid:0 ~arg_name:"name" ~arg_value:"tytan";
  emit_meta ~name:"thread_name" ~tid:0 ~arg_name:"name" ~arg_value:"kernel/os";
  (* Task threads, in first-appearance order (tids were assigned while
     mapping spans above, so iterate names sorted by tid). *)
  let named =
    Hashtbl.fold (fun task tid acc -> (tid, task) :: acc) tids []
    |> List.sort compare
  in
  List.iter
    (fun (tid, task) ->
      emit_meta ~name:"thread_name" ~tid ~arg_name:"name"
        ~arg_value:("task " ^ task))
    named;
  let n = List.length events in
  List.iteri
    (fun i e ->
      let args =
        match e.arg_task with
        | None -> ""
        | Some task -> Printf.sprintf ",\"args\":{\"task\":%s}" (json_string task)
      in
      let body =
        match e.ph with
        | Span dur ->
            Printf.sprintf
              "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d%s}"
              (json_string e.name) (json_string e.cat) e.ts dur e.tid args
        | Instant ->
            Printf.sprintf
              "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":1,\"tid\":%d%s}"
              (json_string e.name) (json_string e.cat) e.ts e.tid args
        | Flow_start id ->
            Printf.sprintf
              "{\"name\":%s,\"cat\":%s,\"ph\":\"s\",\"id\":%d,\"ts\":%d,\"pid\":1,\"tid\":%d%s}"
              (json_string e.name) (json_string e.cat) id e.ts e.tid args
        | Flow_end id ->
            Printf.sprintf
              "{\"name\":%s,\"cat\":%s,\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%d,\"pid\":1,\"tid\":%d%s}"
              (json_string e.name) (json_string e.cat) id e.ts e.tid args
      in
      Buffer.add_string buf body;
      if i < n - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Text reports. *)

let mean sum count = if count = 0 then 0 else sum / count

let summary telemetry =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let counters = Telemetry.counters telemetry in
  if counters <> [] then begin
    line "counters:";
    List.iter
      (fun (k, v) -> line "  %-44s %12d" (Telemetry.key_to_string k) v)
      counters
  end;
  let gauges = Telemetry.gauges telemetry in
  if gauges <> [] then begin
    line "gauges:";
    List.iter
      (fun (k, v) -> line "  %-44s %12d" (Telemetry.key_to_string k) v)
      gauges
  end;
  let histograms = Telemetry.histograms telemetry in
  if histograms <> [] then begin
    line "histograms (cycles):";
    line "  %-44s %8s %10s %10s %10s" "key" "count" "min" "mean" "max";
    List.iter
      (fun (k, (h : Telemetry.histogram_snapshot)) ->
        line "  %-44s %8d %10d %10d %10d"
          (Telemetry.key_to_string k)
          h.Telemetry.count h.Telemetry.min_value
          (mean h.Telemetry.sum h.Telemetry.count)
          h.Telemetry.max_value)
      histograms
  end;
  let dropped = Telemetry.spans_dropped telemetry in
  let mis = Telemetry.mis_nested telemetry in
  let open_spans = Telemetry.open_span_count telemetry in
  line "spans: %d recorded, %d open, %d dropped, %d mis-nested"
    (Telemetry.spans_recorded telemetry)
    open_spans dropped mis;
  Buffer.contents buf

let text_timeline ?(limit = 60) telemetry =
  let buf = Buffer.create 2048 in
  let spans =
    List.stable_sort
      (fun (a : Telemetry.span) b -> compare a.start_cycle b.start_cycle)
      (Telemetry.spans telemetry)
  in
  let total = List.length spans in
  let spans =
    if total <= limit then spans
    else List.filteri (fun i _ -> i < limit) spans
  in
  List.iter
    (fun (s : Telemetry.span) ->
      let indent = String.make (2 * min s.depth 8) ' ' in
      let task =
        match s.span_key.Telemetry.task with
        | None -> ""
        | Some t -> Printf.sprintf " (%s)" t
      in
      Buffer.add_string buf
        (Printf.sprintf "[%10d +%6d] %s%s.%s%s\n" s.start_cycle s.duration
           indent s.span_key.Telemetry.component s.span_key.Telemetry.name task))
    spans;
  if total > limit then
    Buffer.add_string buf (Printf.sprintf "... (%d more spans)\n" (total - limit));
  Buffer.contents buf

(* Machine-readable stats: the [tytan stats --json] payload. *)

let stats_json ?(attribution = []) ~total_cycles telemetry =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"total_cycles\": %d,\n" total_cycles);
  Buffer.add_string buf "  \"attribution\": [";
  let n = List.length attribution in
  List.iteri
    (fun i (task, cycles) ->
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"task\": %s, \"cycles\": %d}%s"
           (json_string task) cycles
           (if i < n - 1 then "," else ""))
    )
    attribution;
  Buffer.add_string buf "\n  ],\n";
  let labelled_list name items render =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" name);
    let n = List.length items in
    List.iteri
      (fun i item ->
        Buffer.add_string buf
          (Printf.sprintf "\n    %s%s" (render item)
             (if i < n - 1 then "," else "")))
      items;
    Buffer.add_string buf "\n  ],\n"
  in
  let key_fields (k : Telemetry.key) =
    Printf.sprintf "\"component\": %s, \"name\": %s%s"
      (json_string k.Telemetry.component)
      (json_string k.Telemetry.name)
      (match k.Telemetry.task with
      | None -> ""
      | Some t -> Printf.sprintf ", \"task\": %s" (json_string t))
  in
  labelled_list "counters" (Telemetry.counters telemetry) (fun (k, v) ->
      Printf.sprintf "{%s, \"value\": %d}" (key_fields k) v);
  labelled_list "gauges" (Telemetry.gauges telemetry) (fun (k, v) ->
      Printf.sprintf "{%s, \"value\": %d}" (key_fields k) v);
  labelled_list "histograms" (Telemetry.histograms telemetry)
    (fun (k, (h : Telemetry.histogram_snapshot)) ->
      Printf.sprintf
        "{%s, \"count\": %d, \"sum\": %d, \"min\": %d, \"mean\": %d, \"max\": %d}"
        (key_fields k) h.Telemetry.count h.Telemetry.sum h.Telemetry.min_value
        (mean h.Telemetry.sum h.Telemetry.count)
        h.Telemetry.max_value);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"spans_recorded\": %d,\n  \"spans_dropped\": %d,\n  \"mis_nested\": %d\n"
       (Telemetry.spans_recorded telemetry)
       (Telemetry.spans_dropped telemetry)
       (Telemetry.mis_nested telemetry));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
