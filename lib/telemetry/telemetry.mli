(** Cycle-accurate telemetry: metrics registry and span timelines.

    The registry holds typed metrics — counters, gauges and log-bucketed
    cycle histograms — keyed by component, metric name and an optional
    owning-task label, plus a tracker of nested timed {e spans} over the
    simulated {!Tytan_machine.Cycles} clock.

    {b Zero-cost-disabled contract.}  A disabled registry (the default)
    performs no allocation, records nothing, and charges exactly zero
    cycles: every write-side entry point starts with a single [enabled]
    field test, the same discipline as the CPU branch hook.  When enabled,
    every recorded metric event charges [per_event_cost] and every closed
    span charges [per_span_cost] on the registry's clock — observation is
    part of the machine and has an honest, modelled price (the platform
    wires these from [Cost_model]).  Read-side accessors are host-side
    analysis and never charge. *)

open Tytan_machine

type key = {
  component : string;  (** emitting subsystem, e.g. ["kernel"], ["ipc"] *)
  name : string;
  task : string option;  (** owning task, when attributable *)
}

val key : ?task:string -> component:string -> string -> key
val compare_key : key -> key -> int
val key_to_string : key -> string

type t

val create :
  ?span_capacity:int -> ?per_event_cost:int -> ?per_span_cost:int -> Cycles.t -> t
(** Disabled by default.  Keeps at most [span_capacity] (default 4096)
    most recent completed spans; both costs default to 0. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool
val clock : t -> Cycles.t

val set_costs : t -> per_event:int -> per_span:int -> unit
val per_event_cost : t -> int
val per_span_cost : t -> int

(** {2 Metrics} *)

val incr : ?task:string -> t -> component:string -> string -> unit
val add : ?task:string -> t -> component:string -> string -> int -> unit
val set_gauge : ?task:string -> t -> component:string -> string -> int -> unit

val observe : ?task:string -> t -> component:string -> string -> int -> unit
(** Record one histogram observation.  Buckets are powers of two: bucket
    0 holds values [<= 0], bucket [i >= 1] holds [[2^(i-1), 2^i)], and
    the last bucket (index 62) absorbs everything up to [max_int]. *)

val bucket_count : int
val bucket_index : int -> int
val bucket_lower : int -> int
(** Smallest value falling in bucket [i]. *)

val bucket_upper : int -> int
(** Largest value falling in bucket [i]. *)

(** {2 Spans} *)

val begin_span : ?task:string -> t -> component:string -> string -> int
(** Open a timed region; returns an opaque span id, or [0] when the
    registry is disabled ([0] is always a valid no-op [end_span]
    argument). *)

val end_span : t -> int -> unit
(** Close an open span, recording its duration and charging
    [per_span_cost].  The end cycle is read {e before} the charge, so a
    span's own bookkeeping cost lands in the enclosing region.  Spans may
    close out of order — interruptible jobs legitimately overlap kernel
    service spans — but closing an id that is not open (double close or
    never opened) is mis-nesting: counted in {!mis_nested} and otherwise
    ignored. *)

val with_span : ?task:string -> t -> component:string -> string -> (unit -> 'a) -> 'a

(** {2 Read side (host-side analysis; never charges)} *)

type histogram_snapshot = {
  count : int;
  sum : int;
  min_value : int;
  max_value : int;
  nonzero_buckets : (int * int) list;  (** (bucket index, count), ascending *)
}

type span = {
  span_key : key;
  start_cycle : int;
  duration : int;
  depth : int;  (** nesting depth at open time *)
}

val counters : t -> (key * int) list
(** Sorted by key — deterministic output for reports and golden tests. *)

val gauges : t -> (key * int) list
val histograms : t -> (key * histogram_snapshot) list
val counter : ?task:string -> t -> component:string -> string -> int
(** 0 when absent. *)

val gauge : ?task:string -> t -> component:string -> string -> int
val histogram : ?task:string -> t -> component:string -> string -> histogram_snapshot option

val spans : t -> span list
(** Completed spans, oldest first.  Every closed span also feeds a
    duration histogram under its own key. *)

val open_span_count : t -> int
val events_recorded : t -> int
val spans_recorded : t -> int
val spans_dropped : t -> int
val mis_nested : t -> int
val clear : t -> unit
