open Tytan_machine
open Tytan_eampu
open Tytan_rtos
open Tytan_core

let header_bytes = 8
let record_bytes = 12

type session = {
  tcb : Tcb.t;
  id : Task_id.t;
  log : Log.t;
  code_base : Word.t;
  code_size : int;
  ring_base : Word.t;
  ring_size : int;
  mpu_slot : int option;
}

type t = {
  platform : Platform.t;
  mux_eip : Word.t;
  mutable sessions : session list;
  mutable events : int;
}

let create platform =
  let mux_eip =
    match Platform.component_region platform "int-mux" with
    | Some r -> Region.base r
    | None -> 0
  in
  { platform; mux_eip; sessions = []; events = 0 }

let in_code s addr = addr >= s.code_base && addr < Word.add s.code_base s.code_size

(* Append one edge: charge the component's flat per-event cost, then
   write the record into the protected ring under the Int Mux's code
   identity — the EA-MPU grant names that identity, so nothing else
   (in particular no task) can forge or scrub log entries. *)
let record t s ~src ~dst ~kind =
  let cpu = Platform.cpu t.platform in
  Cycles.charge (Platform.clock t.platform) Cost_model.cfa_log_event;
  let norm a = Word.sub a s.code_base in
  let edge =
    {
      Attestation.src = norm src;
      dst = (match kind with Cpu.Swi_entry -> dst | _ -> norm dst);
      kind;
    }
  in
  let slot = Log.count s.log mod Log.capacity s.log in
  let addr = Word.add s.ring_base (header_bytes + (slot * record_bytes)) in
  Cpu.with_firmware cpu ~eip:t.mux_eip (fun () ->
      Cpu.store32 cpu addr edge.Attestation.src;
      Cpu.store32 cpu (Word.add addr 4) edge.Attestation.dst;
      Cpu.store32 cpu (Word.add addr 8) (Cpu.branch_kind_code kind);
      Cpu.store32 cpu s.ring_base (Word.of_int (Log.count s.log + 1)));
  Log.append s.log edge;
  t.events <- t.events + 1

let on_event t ~src ~dst ~kind =
  List.iter
    (fun s ->
      (* A session cares about an event when its task's code is either
         end of the edge; for SWIs the dst is a service number, so only
         the source can place the event. *)
      let relevant =
        in_code s src
        || (match kind with Cpu.Swi_entry -> false | _ -> in_code s dst)
      in
      if relevant then record t s ~src ~dst ~kind)
    t.sessions

let install_hook t =
  Cpu.set_on_branch (Platform.cpu t.platform) (fun ~src ~dst ~kind ->
      on_event t ~src ~dst ~kind)

let watch t ~tcb ?(capacity = 1024) () =
  match Platform.rtm t.platform with
  | None -> Error "control-flow attestation needs the secure platform (no RTM)"
  | Some rtm -> (
      match Rtm.find_by_tcb rtm tcb with
      | None -> Error "task is not in the RTM directory"
      | Some entry -> (
          let ring_size = header_bytes + (capacity * record_bytes) in
          match Heap.alloc (Platform.heap t.platform) ~size:ring_size with
          | None -> Error "no heap memory for the CFA log ring"
          | Some ring_base -> (
              let data = Region.make ~base:ring_base ~size:ring_size in
              let slot_result =
                match
                  ( Platform.mpu_driver t.platform,
                    Platform.component_region t.platform "int-mux" )
                with
                | Some mpu, Some mux ->
                    Result.map Option.some
                      (Mpu_driver.install_rule mpu
                         (Eampu.Grant { code = mux; data; perm = Perm.rw }))
                | _ -> Ok None
              in
              match slot_result with
              | Error e ->
                  Heap.free (Platform.heap t.platform) ring_base;
                  Error ("EA-MPU rule for the CFA log: " ^ e)
              | Ok mpu_slot ->
                  let s =
                    {
                      tcb;
                      id = entry.Rtm.id;
                      log = Log.create ~id:entry.Rtm.id ~capacity ();
                      code_base = tcb.Tcb.code_base;
                      code_size = tcb.Tcb.code_size;
                      ring_base;
                      ring_size;
                      mpu_slot;
                    }
                  in
                  let first = t.sessions = [] in
                  t.sessions <- t.sessions @ [ s ];
                  if first then install_hook t;
                  Ok s)))

let unwatch t s =
  if List.memq s t.sessions then begin
    t.sessions <- List.filter (fun x -> not (x == s)) t.sessions;
    (match (s.mpu_slot, Platform.mpu_driver t.platform) with
    | Some slot, Some mpu -> Mpu_driver.remove_slot mpu slot
    | _ -> ());
    Heap.free (Platform.heap t.platform) s.ring_base;
    if t.sessions = [] then Cpu.clear_on_branch (Platform.cpu t.platform)
  end

let find t ~id =
  List.find_opt (fun s -> Task_id.equal s.id id) t.sessions

let log s = s.log
let session_id s = s.id
let ring_region s = Region.make ~base:s.ring_base ~size:s.ring_size
let events_logged t = t.events

let attest t s ~nonce =
  match Platform.attestation t.platform with
  | None -> None
  | Some att ->
      Attestation.cfa_attest att ~id:s.id ~nonce
        ~cf_digest:(Log.head_digest s.log)
        ~base_digest:(Log.base_digest s.log)
        ~edge_count:(Log.count s.log) ~edges:(Log.edges s.log)

let responder t ~id ~nonce =
  match find t ~id with
  | None -> None
  | Some s -> attest t s ~nonce
