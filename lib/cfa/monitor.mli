(** The device-side CFA component.

    One monitor per platform: it owns the CPU's [on_branch] hook and a
    protected log ring per watched task.  Every control-flow event whose
    source or target lies in a watched task's code region is charged
    {!Tytan_core.Cost_model.cfa_log_event}, written to the task's ring
    in simulated memory {e under the Int Mux's code identity} (the
    EA-MPU grant names the Int Mux region as the only writer — a task
    that scribbles on its own log faults), and folded into the
    hash-chained {!Log}.

    Addresses are normalised to code-region offsets before logging, so
    a verifier holding only the reference binary can replay them; a
    source outside the task (a foreign task jumping in) normalises to
    an out-of-text offset, which the replay flags unless the target is
    the secure entry point. *)

open Tytan_eampu
open Tytan_rtos
open Tytan_core

type t
type session

val create : Platform.t -> t
(** No hook is installed until the first {!watch}; a platform that never
    watches a task pays nothing. *)

val watch :
  t -> tcb:Tcb.t -> ?capacity:int -> unit -> (session, string) result
(** Start logging a loaded task (it must be in the RTM directory).
    Allocates the log ring from the task heap and installs the EA-MPU
    grant.  Default ring capacity 1024 edges. *)

val unwatch : t -> session -> unit
(** Stop logging: remove the EA-MPU rule, free the ring, and — when no
    session remains — clear the CPU hook entirely. *)

val find : t -> id:Task_id.t -> session option
val log : session -> Log.t
val session_id : session -> Task_id.t

val ring_region : session -> Region.t
(** Where the protected ring lives (for tests probing the EA-MPU rule). *)

val events_logged : t -> int
(** Events recorded across all sessions. *)

val attest : t -> session -> nonce:bytes -> Attestation.cfa_report option
(** Snapshot the session's log into a MACed report via the Remote Attest
    component. *)

val responder :
  t -> id:Task_id.t -> nonce:bytes -> Attestation.cfa_report option
(** The device network agent's CFA answer: report for a watched task,
    [None] (→ refusal) otherwise.  Shaped for
    [Tytan_netsim.Cosim.set_cfa_responder]. *)
