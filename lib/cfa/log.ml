open Tytan_core

type t = {
  id : Task_id.t;
  capacity : int;
  ring : Attestation.cf_edge Queue.t;
  mutable count : int;
  mutable head : bytes;
  mutable base : bytes;
}

let create ~id ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Cfa.Log.create: capacity must be positive";
  let genesis = Attestation.cf_genesis ~id in
  { id; capacity; ring = Queue.create (); count = 0; head = genesis; base = genesis }

let append t edge =
  (* Same capacity discipline as Trace: evict the oldest — but an evicted
     edge is not forgotten, it is folded into the base digest so the
     retained window still replays base → head. *)
  if Queue.length t.ring >= t.capacity then begin
    let evicted = Queue.pop t.ring in
    t.base <- Attestation.cf_extend t.base evicted
  end;
  Queue.push edge t.ring;
  t.head <- Attestation.cf_extend t.head edge;
  t.count <- t.count + 1

let id t = t.id
let capacity t = t.capacity
let count t = t.count
let retained t = Queue.length t.ring
let head_digest t = Bytes.copy t.head
let base_digest t = Bytes.copy t.base
let edges t = Array.of_seq (Queue.to_seq t.ring)
let full_history t = t.count <= t.capacity
