open Tytan_machine
open Tytan_analysis
open Tytan_core

type oracle = {
  cfg : Cfg.t;
  indirect_targets : int list;
  call_successors : int list;
}

type verdict =
  | Full_history
  | Window of int

let oracle_of_telf telf =
  match Cfg.of_telf telf with
  | Error e -> Error e
  | Ok cfg ->
      let call_successors = ref [] in
      for i = Cfg.instr_count cfg - 1 downto 0 do
        match Cfg.classify cfg i with
        | Cfg.Call _ | Cfg.Indirect_call _ ->
            call_successors := (i + 1) :: !call_successors
        | _ -> ()
      done;
      Ok
        {
          cfg;
          indirect_targets = Cfg.indirect_code_targets telf;
          call_successors = !call_successors;
        }

exception Reject of string

let rejectf fmt = Format.kasprintf (fun s -> raise (Reject s)) fmt

let verify oracle (r : Attestation.cfa_report) =
  let cfg = oracle.cfg in
  let retained = Array.length r.Attestation.edges in
  let entry_off = Cfg.offset cfg.Cfg.entry in
  try
    if r.Attestation.edge_count < retained then
      rejectf "edge count %d below the %d retained edges"
        r.Attestation.edge_count retained;
    let full = r.Attestation.edge_count = retained in
    (* 1. The chain: extending the base digest by the reported window
       must reach the MACed head — a tampered, reordered or elided edge
       list cannot survive this. *)
    let replayed =
      Array.fold_left Attestation.cf_extend r.Attestation.base_digest
        r.Attestation.edges
    in
    if not (Tytan_crypto.Constant_time.equal replayed r.Attestation.cf_digest)
    then rejectf "cf digest mismatch: reported edges do not replay the chain";
    if
      full
      && not
           (Tytan_crypto.Constant_time.equal r.Attestation.base_digest
              (Attestation.cf_genesis ~id:r.Attestation.id))
    then rejectf "full-history report whose base digest is not the genesis";
    (* 2. The path: every edge must be a CFG successor. *)
    let stack = ref [] in
    Array.iteri
      (fun n (e : Attestation.cf_edge) ->
        let direct_target what j =
          match j with
          | Some j when Cfg.offset j = e.Attestation.dst -> ()
          | _ ->
              rejectf "edge %d: %s from +0x%X to +0x%X is not the CFG successor"
                n what e.Attestation.src e.Attestation.dst
        in
        let indirect_target what =
          match Cfg.index_of_offset cfg e.Attestation.dst with
          | Some k when List.mem k oracle.indirect_targets -> k
          | Some _ ->
              rejectf
                "edge %d: %s to +0x%X, not a relocation-published code \
                 address (code-reuse gadget)"
                n what e.Attestation.dst
          | None ->
              rejectf "edge %d: %s to +0x%X, outside the text" n what
                e.Attestation.dst
        in
        match Cfg.index_of_offset cfg e.Attestation.src with
        | None ->
            (* The source is not this task's code: someone branched in
               from outside.  Only the secure entry point is a legal
               landing site. *)
            if not (Word.equal e.Attestation.dst entry_off) then
              rejectf
                "edge %d: foreign code entered at +0x%X, bypassing the \
                 secure entry point"
                n e.Attestation.dst
        | Some i -> (
            match e.Attestation.kind with
            | Cpu.Direct_jump -> (
                match Cfg.classify cfg i with
                | Cfg.Jump j -> direct_target "jump" j
                | _ -> rejectf "edge %d: +0x%X is not a jump" n e.Attestation.src)
            | Cpu.Cond_taken -> (
                match Cfg.classify cfg i with
                | Cfg.Branch j -> direct_target "taken branch" j
                | _ ->
                    rejectf "edge %d: +0x%X is not a conditional branch" n
                      e.Attestation.src)
            | Cpu.Direct_call -> (
                match Cfg.classify cfg i with
                | Cfg.Call j ->
                    direct_target "call" j;
                    stack := (i + 1) :: !stack
                | _ -> rejectf "edge %d: +0x%X is not a call" n e.Attestation.src)
            | Cpu.Indirect_jump -> (
                match Cfg.classify cfg i with
                | Cfg.Indirect_jump _ ->
                    ignore (indirect_target "indirect jump")
                | _ ->
                    rejectf "edge %d: +0x%X is not an indirect jump" n
                      e.Attestation.src)
            | Cpu.Indirect_call -> (
                match Cfg.classify cfg i with
                | Cfg.Indirect_call _ ->
                    ignore (indirect_target "indirect call");
                    stack := (i + 1) :: !stack
                | _ ->
                    rejectf "edge %d: +0x%X is not an indirect call" n
                      e.Attestation.src)
            | Cpu.Return -> (
                match Cfg.classify cfg i with
                | Cfg.Return -> (
                    let k =
                      match Cfg.index_of_offset cfg e.Attestation.dst with
                      | Some k -> k
                      | None ->
                          rejectf "edge %d: return to +0x%X, outside the text"
                            n e.Attestation.dst
                    in
                    match !stack with
                    | top :: rest ->
                        if k = top then stack := rest
                        else
                          rejectf
                            "edge %d: return to +0x%X does not match the \
                             call site (expected +0x%X)"
                            n e.Attestation.dst (Cfg.offset top)
                    | [] ->
                        (* In a truncated window the matching call may
                           have been evicted: accept a return to any
                           call-successor site, reject everything else. *)
                        if full then
                          rejectf "edge %d: return with no outstanding call" n
                        else if not (List.mem k oracle.call_successors) then
                          rejectf
                            "edge %d: return to +0x%X, not a call-return \
                             site"
                            n e.Attestation.dst)
                | _ -> rejectf "edge %d: +0x%X is not a return" n e.Attestation.src)
            | Cpu.Swi_entry -> (
                match cfg.Cfg.instrs.(i) with
                | Some (Isa.Swi s) when s = e.Attestation.dst -> ()
                | _ ->
                    rejectf "edge %d: +0x%X is not SWI %d" n e.Attestation.src
                      e.Attestation.dst)
            | Cpu.Iret_return -> (
                match cfg.Cfg.instrs.(i) with
                | Some Isa.Iret ->
                    (* The resume address was pushed by the hardware at
                       interrupt entry; any instruction boundary is a
                       legal resumption point. *)
                    if Cfg.index_of_offset cfg e.Attestation.dst = None then
                      rejectf "edge %d: interrupt return to +0x%X, outside \
                               the text"
                        n e.Attestation.dst
                | _ ->
                    rejectf "edge %d: +0x%X is not an interrupt return" n
                      e.Attestation.src)))
      r.Attestation.edges;
    if full then Ok Full_history
    else Ok (Window (r.Attestation.edge_count - retained))
  with Reject msg -> Error msg

let checker oracle r = Result.map (fun _ -> ()) (verify oracle r)
