(** Verifier-side replay of a control-flow report.

    The verifier holds the {e reference binary}, so it can recover the
    task's CFG statically ({!Tytan_analysis.Cfg}) and decide, edge by
    edge, whether the reported path could have been produced by the
    unmodified program:

    - direct jumps, taken branches and calls must land on the statically
      encoded target;
    - indirect jumps and calls must land on a relocation-published code
      address ({!Tytan_analysis.Cfg.indirect_code_targets}) — the only
      legitimate sources of absolute code addresses in a
      position-independent binary, which is precisely what a ROP/JOP
      gadget dispatch violates;
    - returns must match a shadow stack built from the logged calls
      (relaxed to "any call-return site" only for edges whose matching
      call was evicted from a truncated window);
    - edges whose source is outside the task's text are foreign
      entries and must target the secure entry point;
    - and the edge list must extend the report's base digest to its
      MACed head digest — the hash chain pins the path. *)

open Tytan_core
open Tytan_telf
open Tytan_analysis

type oracle = {
  cfg : Cfg.t;
  indirect_targets : int list;
  call_successors : int list;
}

type verdict =
  | Full_history  (** the window covered the whole execution *)
  | Window of int  (** legal window; this many older edges were evicted *)

val oracle_of_telf : Telf.t -> (oracle, string) result

val verify : oracle -> Attestation.cfa_report -> (verdict, string) result
(** Assumes authenticity was already established
    ({!Tytan_core.Attestation.verify_cfa}); judges only the path. *)

val checker : oracle -> Attestation.cfa_report -> (unit, string) result
(** {!verify} with the verdict erased — the shape
    [Tytan_netsim.Verifier.create ~cfa] expects. *)
