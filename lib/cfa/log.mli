(** The per-task hash-chained control-flow log.

    Two parts, mirroring {!Tytan_machine.Trace}'s capacity discipline:

    - a running SHA-1 digest (the {e chain head}) extended by every
      logged edge, starting from [SHA1(id_t)] — a commitment to the
      whole history that can never be rewound;
    - a bounded ring of the most recent edges, so the verifier can
      actually replay a window of the path.

    When the ring is full the oldest edge is folded into a {e base}
    digest before eviction; the invariant the verifier checks is that
    extending [base_digest] by the retained edges reaches
    [head_digest].  While nothing has been evicted the base is still
    the genesis digest and the replay covers the complete execution. *)

open Tytan_core

type t

val create : id:Task_id.t -> ?capacity:int -> unit -> t
(** Default capacity 1024 edges.
    @raise Invalid_argument when [capacity <= 0]. *)

val append : t -> Attestation.cf_edge -> unit

val id : t -> Task_id.t
val capacity : t -> int

val count : t -> int
(** Edges logged over the task's lifetime (monotonic). *)

val retained : t -> int
(** Edges currently in the ring, [min count capacity]. *)

val head_digest : t -> bytes
val base_digest : t -> bytes

val edges : t -> Attestation.cf_edge array
(** The retained window, oldest first. *)

val full_history : t -> bool
(** No edge has been evicted yet: the window is the whole execution. *)
