module Crypto = Tytan_crypto
module Export = Tytan_telemetry.Export

(* No tab or newline may survive into a rendered field: the record
   encoding is tab-separated and the chain hashes the encoding, so a
   hostile string must not be able to forge field boundaries. *)
let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

module Event = struct
  type t =
    | Session_admitted of { serial : string; kind : string }
    | Session_shed of { serial : string; reason : string }
    | Session_settled of { serial : string; verdict : string; latency : int }
    | Frame_sent of { kind : string }
    | Frame_received of { kind : string }
    | Breaker_tripped of { serial : string }
    | Quarantined of { serial : string }
    | Evicted of { serial : string }
    | Epoch_opened of { epoch : int }
    | Epoch_sealed of { epoch : int; root_hex : string; leaves : int }
    | Wave_opened of { wave : int; label : string; version : int }
    | Wave_promoted of { wave : int }
    | Wave_aborted of { wave : int; reason : string }
    | Offer_sent of { serial : string; version : int }
    | Transfer_staged of { serial : string }
    | Swap_applied of { serial : string; counter : int }
    | Update_refused of { serial : string; reason : string }
    | Verdict_settled of { serial : string; verdict : string }
    | Slo_breach of {
        indicator : string;
        window : int;
        value : int;
        threshold : int;
      }
    | Note of { label : string }

  let label = function
    | Session_admitted _ -> "session-admitted"
    | Session_shed _ -> "session-shed"
    | Session_settled _ -> "session-settled"
    | Frame_sent _ -> "frame-sent"
    | Frame_received _ -> "frame-received"
    | Breaker_tripped _ -> "breaker-tripped"
    | Quarantined _ -> "quarantined"
    | Evicted _ -> "evicted"
    | Epoch_opened _ -> "epoch-opened"
    | Epoch_sealed _ -> "epoch-sealed"
    | Wave_opened _ -> "wave-opened"
    | Wave_promoted _ -> "wave-promoted"
    | Wave_aborted _ -> "wave-aborted"
    | Offer_sent _ -> "offer-sent"
    | Transfer_staged _ -> "transfer-staged"
    | Swap_applied _ -> "swap-applied"
    | Update_refused _ -> "update-refused"
    | Verdict_settled _ -> "verdict-settled"
    | Slo_breach _ -> "slo-breach"
    | Note _ -> "note"

  let render e =
    sanitize
      (match e with
      | Session_admitted { serial; kind } ->
          Printf.sprintf "serial=%s kind=%s" serial kind
      | Session_shed { serial; reason } ->
          Printf.sprintf "serial=%s reason=%s" serial reason
      | Session_settled { serial; verdict; latency } ->
          Printf.sprintf "serial=%s verdict=%s latency=%d" serial verdict
            latency
      | Frame_sent { kind } -> Printf.sprintf "kind=%s" kind
      | Frame_received { kind } -> Printf.sprintf "kind=%s" kind
      | Breaker_tripped { serial } -> Printf.sprintf "serial=%s" serial
      | Quarantined { serial } -> Printf.sprintf "serial=%s" serial
      | Evicted { serial } -> Printf.sprintf "serial=%s" serial
      | Epoch_opened { epoch } -> Printf.sprintf "epoch=%d" epoch
      | Epoch_sealed { epoch; root_hex; leaves } ->
          Printf.sprintf "epoch=%d root=%s leaves=%d" epoch root_hex leaves
      | Wave_opened { wave; label; version } ->
          Printf.sprintf "wave=%d label=%s version=%d" wave label version
      | Wave_promoted { wave } -> Printf.sprintf "wave=%d" wave
      | Wave_aborted { wave; reason } ->
          Printf.sprintf "wave=%d reason=%s" wave reason
      | Offer_sent { serial; version } ->
          Printf.sprintf "serial=%s version=%d" serial version
      | Transfer_staged { serial } -> Printf.sprintf "serial=%s" serial
      | Swap_applied { serial; counter } ->
          Printf.sprintf "serial=%s counter=%d" serial counter
      | Update_refused { serial; reason } ->
          Printf.sprintf "serial=%s reason=%s" serial reason
      | Verdict_settled { serial; verdict } ->
          Printf.sprintf "serial=%s verdict=%s" serial verdict
      | Slo_breach { indicator; window; value; threshold } ->
          Printf.sprintf "indicator=%s window=%d value=%d threshold=%d"
            indicator window value threshold
      | Note { label } -> Printf.sprintf "label=%s" label)

  let serial_of = function
    | Session_admitted { serial; _ }
    | Session_shed { serial; _ }
    | Session_settled { serial; _ }
    | Breaker_tripped { serial }
    | Quarantined { serial }
    | Evicted { serial }
    | Offer_sent { serial; _ }
    | Transfer_staged { serial }
    | Swap_applied { serial; _ }
    | Update_refused { serial; _ }
    | Verdict_settled { serial; _ } ->
        Some serial
    | Frame_sent _ | Frame_received _ | Epoch_opened _ | Epoch_sealed _
    | Wave_opened _ | Wave_promoted _ | Wave_aborted _ | Slo_breach _ | Note _
      ->
        None
end

type record = {
  seq : int;
  at : int;
  corr : string;
  parent : string option;
  event : Event.t;
}

(* The canonical record encoding — what the chain and the checkpoints
   hash, and what [export] frames.  Tab-separated; every string field
   is sanitized, so the six fields are unambiguous. *)
let encode_record (r : record) =
  Printf.sprintf "%d\t%d\t%s\t%s\t%s\t%s" r.seq r.at (sanitize r.corr)
    (match r.parent with None -> "-" | Some p -> sanitize p)
    (Event.label r.event) (Event.render r.event)

let genesis = Crypto.Sha256.digest_string "tytan-obs-genesis"

let chain_step head line =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx head;
  Crypto.Sha256.feed ctx (Bytes.of_string line);
  Crypto.Sha256.finalize ctx

module Log = struct
  type checkpoint = { upto : int; root : bytes }

  type t = {
    checkpoint_every : int;
    mutable rev_records : record list;
    mutable count : int;
    mutable head : bytes;
    mutable rev_window : string list;  (* encodings since last checkpoint *)
    mutable window_n : int;
    mutable rev_checkpoints : checkpoint list;
    parents : (string, string option) Hashtbl.t;
    mutable rev_minted : string list;
  }

  let create ?(checkpoint_every = 64) () =
    if checkpoint_every <= 0 then
      invalid_arg "Obs.Log.create: checkpoint_every must be positive";
    {
      checkpoint_every;
      rev_records = [];
      count = 0;
      head = genesis;
      rev_window = [];
      window_n = 0;
      rev_checkpoints = [];
      parents = Hashtbl.create 64;
      rev_minted = [];
    }

  let mint t ?parent corr =
    if not (Hashtbl.mem t.parents corr) then begin
      Hashtbl.replace t.parents corr parent;
      t.rev_minted <- corr :: t.rev_minted
    end;
    corr

  let parent_of t corr =
    match Hashtbl.find_opt t.parents corr with
    | Some p -> p
    | None -> None

  let window_root lines =
    Crypto.Merkle.root
      (Crypto.Merkle.build
         (Array.of_list (List.rev_map Bytes.of_string lines)))

  let record t ~corr ~at event =
    ignore (mint t corr);
    let r =
      { seq = t.count; at; corr; parent = parent_of t corr; event }
    in
    let line = encode_record r in
    t.rev_records <- r :: t.rev_records;
    t.count <- t.count + 1;
    t.head <- chain_step t.head line;
    t.rev_window <- line :: t.rev_window;
    t.window_n <- t.window_n + 1;
    if t.window_n >= t.checkpoint_every then begin
      t.rev_checkpoints <-
        { upto = t.count; root = window_root t.rev_window }
        :: t.rev_checkpoints;
      t.rev_window <- [];
      t.window_n <- 0
    end

  let length t = t.count
  let records t = List.rev t.rev_records
  let head_hex t = Crypto.Sha256.to_hex t.head

  let corr_ids t =
    List.rev_map (fun c -> (c, parent_of t c)) t.rev_minted

  (* ---- binary trail --------------------------------------------------- *)

  let magic = "TYOB1"

  let put_u32 buf n =
    Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (n land 0xFF))

  let export t =
    (* Seal the trailing partial window on the way out, so every record
       of the trail sits under some checkpoint. *)
    let checkpoints =
      List.rev
        (if t.window_n > 0 then
           { upto = t.count; root = window_root t.rev_window }
           :: t.rev_checkpoints
         else t.rev_checkpoints)
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf magic;
    put_u32 buf t.count;
    List.iter
      (fun r ->
        let line = encode_record r in
        put_u32 buf (String.length line);
        Buffer.add_string buf line)
      (records t);
    put_u32 buf (List.length checkpoints);
    List.iter
      (fun { upto; root } ->
        put_u32 buf upto;
        Buffer.add_bytes buf root)
      checkpoints;
    Buffer.add_bytes buf t.head;
    Buffer.to_bytes buf

  type chain_summary = {
    total : int;
    checkpoints : int;
    head : string;
  }

  (* Defensive structural decode: cursor with explicit bounds checks,
     result-typed — feeding [verify_chain] arbitrary bytes must end in
     [Error], never an exception. *)
  type decoded = {
    d_lines : string list;  (* record encodings, log order *)
    d_checkpoints : (int * bytes) list;
    d_head : bytes;
  }

  let decode blob =
    let len = Bytes.length blob in
    let pos = ref 0 in
    let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
    let take n label =
      if n < 0 || !pos + n > len then
        Error (Printf.sprintf "truncated: %s at byte %d" label !pos)
      else begin
        let s = Bytes.sub_string blob !pos n in
        pos := !pos + n;
        Ok s
      end
    in
    let u32 label =
      let* s = take 4 label in
      Ok
        ((Char.code s.[0] lsl 24)
        lor (Char.code s.[1] lsl 16)
        lor (Char.code s.[2] lsl 8)
        lor Char.code s.[3])
    in
    let* m = take (String.length magic) "magic" in
    if m <> magic then Error "bad magic: not an obs trail"
    else
      let* count = u32 "record count" in
      if count > len then Error "record count exceeds trail size"
      else
        let rec read_records i acc =
          if i = count then Ok (List.rev acc)
          else
            let* n = u32 (Printf.sprintf "record %d length" i) in
            let* line = take n (Printf.sprintf "record %d" i) in
            read_records (i + 1) (line :: acc)
        in
        let* lines = read_records 0 [] in
        let* ck_count = u32 "checkpoint count" in
        if ck_count > len then Error "checkpoint count exceeds trail size"
        else
          let rec read_cks i acc =
            if i = ck_count then Ok (List.rev acc)
            else
              let* upto = u32 (Printf.sprintf "checkpoint %d bound" i) in
              let* root = take 32 (Printf.sprintf "checkpoint %d root" i) in
              read_cks (i + 1) ((upto, Bytes.of_string root) :: acc)
          in
          let* cks = read_cks 0 [] in
          let* head = take 32 "chain head" in
          if !pos <> len then Error "trailing garbage after chain head"
          else
            Ok { d_lines = lines; d_checkpoints = cks; d_head = Bytes.of_string head }

  let verify_chain ?expected_head blob =
    match decode blob with
    | Error e -> Error e
    | Ok d -> (
        (* Sequence numbers must be dense from zero: a spliced-out
           record shows up here even before the chain disagrees. *)
        let seq_ok =
          List.for_all2
            (fun i line ->
              match String.index_opt line '\t' with
              | None -> false
              | Some t -> (
                  match int_of_string_opt (String.sub line 0 t) with
                  | Some seq -> seq = i
                  | None -> false))
            (List.init (List.length d.d_lines) Fun.id)
            d.d_lines
        in
        if not seq_ok then Error "sequence numbering broken (splice?)"
        else
          let head =
            List.fold_left (fun h line -> chain_step h line) genesis d.d_lines
          in
          if not (Bytes.equal head d.d_head) then
            Error "chain head mismatch: a record was altered or reordered"
          else
            let total = List.length d.d_lines in
            let lines = Array.of_list d.d_lines in
            let rec check_cks prev = function
              | [] ->
                  if prev <> total then
                    Error
                      (Printf.sprintf
                         "checkpoints cover %d of %d records" prev total)
                  else Ok ()
              | (upto, root) :: rest ->
                  if upto <= prev || upto > total then
                    Error "checkpoint bounds out of order"
                  else
                    let window =
                      Array.to_list (Array.sub lines prev (upto - prev))
                    in
                    let recomputed =
                      Crypto.Merkle.root
                        (Crypto.Merkle.build
                           (Array.of_list (List.map Bytes.of_string window)))
                    in
                    if not (Bytes.equal recomputed root) then
                      Error
                        (Printf.sprintf
                           "checkpoint root mismatch over records %d..%d" prev
                           (upto - 1))
                    else check_cks upto rest
            in
            let cks_result =
              if total = 0 && d.d_checkpoints = [] then Ok ()
              else check_cks 0 d.d_checkpoints
            in
            match cks_result with
            | Error e -> Error e
            | Ok () -> (
                let head_hex = Crypto.Sha256.to_hex head in
                match expected_head with
                | Some h when h <> head_hex ->
                    Error "chain head does not match the pinned head"
                | _ ->
                    Ok
                      {
                        total;
                        checkpoints = List.length d.d_checkpoints;
                        head = head_hex;
                      }))

  type tamper =
    | Truncate
    | Splice
    | Bit_flip of int

  let reencode d =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf magic;
    put_u32 buf (List.length d.d_lines);
    List.iter
      (fun line ->
        put_u32 buf (String.length line);
        Buffer.add_string buf line)
      d.d_lines;
    put_u32 buf (List.length d.d_checkpoints);
    List.iter
      (fun (upto, root) ->
        put_u32 buf upto;
        Buffer.add_bytes buf root)
      d.d_checkpoints;
    Buffer.add_bytes buf d.d_head;
    Buffer.to_bytes buf

  let tamper kind blob =
    let d =
      match decode blob with
      | Ok d -> d
      | Error e -> invalid_arg ("Obs.Log.tamper: " ^ e)
    in
    let n = List.length d.d_lines in
    match kind with
    | Truncate ->
        if n < 1 then invalid_arg "Obs.Log.tamper: nothing to truncate";
        reencode
          { d with d_lines = List.filteri (fun i _ -> i < n - 1) d.d_lines }
    | Splice ->
        if n < 2 then invalid_arg "Obs.Log.tamper: too short to splice";
        let i = n / 2 in
        let arr = Array.of_list d.d_lines in
        let tmp = arr.(i - 1) in
        arr.(i - 1) <- arr.(i);
        arr.(i) <- tmp;
        reencode { d with d_lines = Array.to_list arr }
    | Bit_flip i ->
        if n < 1 then invalid_arg "Obs.Log.tamper: no records to flip";
        let blob = Bytes.copy blob in
        (* Restrict the flip to the framed record region so the blob
           still parses: the chain, not the parser, must catch it. *)
        let start = String.length magic + 4 in
        let region =
          List.fold_left (fun a l -> a + 4 + String.length l) 0 d.d_lines
        in
        let bit = ((i mod (region * 8)) + (region * 8)) mod (region * 8) in
        let byte = start + (bit / 8) in
        Bytes.set blob byte
          (Char.chr (Char.code (Bytes.get blob byte) lxor (1 lsl (bit mod 8))));
        blob
end

module Slo = struct
  type spec = {
    window : int;
    shed_permille_max : int;
    p99_settle_max : int;
    quarantine_max : int;
    abort_permille_max : int;
  }

  let default_spec =
    {
      window = 64;
      shed_permille_max = 500;
      p99_settle_max = 64;
      quarantine_max = 2;
      abort_permille_max = 350;
    }

  type indicator = {
    name : string;
    window_start : int;
    value : int;
    threshold : int;
    breached : bool;
  }

  type bucket = {
    mutable arrivals : int;
    mutable sheds : int;
    mutable latencies : int list;
    mutable quarantines : int;
  }

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0 else sorted.(max 0 (((p * n) + 99) / 100 - 1))

  let evaluate ?(spec = default_spec) log =
    let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 16 in
    let bucket at =
      let w = at / spec.window in
      match Hashtbl.find_opt buckets w with
      | Some b -> b
      | None ->
          let b =
            { arrivals = 0; sheds = 0; latencies = []; quarantines = 0 }
          in
          Hashtbl.replace buckets w b;
          b
    in
    let promoted = ref 0 and aborted = ref 0 in
    List.iter
      (fun (r : record) ->
        match r.event with
        | Event.Session_admitted _ ->
            let b = bucket r.at in
            b.arrivals <- b.arrivals + 1
        | Event.Session_shed _ ->
            let b = bucket r.at in
            b.arrivals <- b.arrivals + 1;
            b.sheds <- b.sheds + 1
        | Event.Session_settled { latency; _ } ->
            let b = bucket r.at in
            b.latencies <- latency :: b.latencies
        | Event.Quarantined _ ->
            let b = bucket r.at in
            b.quarantines <- b.quarantines + 1
        | Event.Wave_promoted _ -> incr promoted
        | Event.Wave_aborted _ -> incr aborted
        | _ -> ())
      (Log.records log);
    let windows =
      Hashtbl.fold (fun w _ acc -> w :: acc) buckets [] |> List.sort compare
    in
    let per_window =
      List.concat_map
        (fun w ->
          let b = Hashtbl.find buckets w in
          let start = w * spec.window in
          let shed_permille =
            if b.arrivals = 0 then 0 else b.sheds * 1000 / b.arrivals
          in
          let sorted = Array.of_list b.latencies in
          Array.sort compare sorted;
          let p99 = percentile sorted 99 in
          [
            {
              name = "p99-settle";
              window_start = start;
              value = p99;
              threshold = spec.p99_settle_max;
              breached = p99 > spec.p99_settle_max;
            };
            {
              name = "quarantines";
              window_start = start;
              value = b.quarantines;
              threshold = spec.quarantine_max;
              breached = b.quarantines > spec.quarantine_max;
            };
            {
              name = "shed-rate";
              window_start = start;
              value = shed_permille;
              threshold = spec.shed_permille_max;
              breached = shed_permille > spec.shed_permille_max;
            };
          ])
        windows
    in
    let run_level =
      let offered = !promoted + !aborted in
      if offered = 0 then []
      else
        let permille = !aborted * 1000 / offered in
        [
          {
            name = "ota-abort-rate";
            window_start = 0;
            value = permille;
            threshold = spec.abort_permille_max;
            breached = permille > spec.abort_permille_max;
          };
        ]
    in
    per_window @ run_level

  let scan ?(spec = default_spec) log =
    let indicators = evaluate ~spec log in
    let last_at =
      List.fold_left (fun a (r : record) -> max a r.at) 0 (Log.records log)
    in
    List.iter
      (fun i ->
        if i.breached then
          Log.record log ~corr:"slo"
            ~at:(max last_at (i.window_start + spec.window - 1))
            (Event.Slo_breach
               {
                 indicator = i.name;
                 window = i.window_start;
                 value = i.value;
                 threshold = i.threshold;
               }))
      indicators;
    indicators
end

module Trail = struct
  let ancestors log ~corr =
    (* Walk up the parent chain; a registry cycle cannot happen (mint
       is first-wins) but cap the walk anyway. *)
    let rec up acc c n =
      if n > 1000 then acc
      else
        match Log.parent_of log c with
        | Some p -> up (p :: acc) p (n + 1)
        | None -> acc
    in
    up [] corr 0

  let members log ~corr =
    let is_descendant c =
      let rec up c n =
        if n > 1000 then false
        else
          match Log.parent_of log c with
          | Some p -> p = corr || up p (n + 1)
          | None -> false
      in
      c <> corr && up c 0
    in
    let descendants =
      List.filter_map
        (fun (c, _) -> if is_descendant c then Some c else None)
        (Log.corr_ids log)
    in
    ancestors log ~corr @ [ corr ] @ descendants

  let trace log ~corr =
    let family = members log ~corr in
    List.filter (fun (r : record) -> List.mem r.corr family) (Log.records log)

  let record_json (r : record) =
    Printf.sprintf
      "{\"seq\":%d,\"at\":%d,\"corr\":%s,\"parent\":%s,\"event\":%s,\"detail\":%s}"
      r.seq r.at
      (Export.json_string r.corr)
      (match r.parent with
      | None -> "null"
      | Some p -> Export.json_string p)
      (Export.json_string (Event.label r.event))
      (Export.json_string (Event.render r.event))

  let to_json log ~corr =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"corr\": %s,\n" (Export.json_string corr));
    Buffer.add_string buf "  \"chain\": [";
    let chain = ancestors log ~corr @ [ corr ] in
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Export.json_string c))
      chain;
    Buffer.add_string buf "],\n  \"records\": [\n";
    let rs = trace log ~corr in
    let n = List.length rs in
    List.iteri
      (fun i r ->
        Buffer.add_string buf ("    " ^ record_json r);
        if i < n - 1 then Buffer.add_string buf ",";
        Buffer.add_string buf "\n")
      rs;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
end

let first_at log =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (r : record) ->
      if not (Hashtbl.mem table r.corr) then Hashtbl.replace table r.corr r.at)
    (Log.records log);
  table

let flows_of_log log =
  let firsts = first_at log in
  let id = ref 0 in
  List.filter_map
    (fun (corr, parent) ->
      match parent with
      | None -> None
      | Some p -> (
          match (Hashtbl.find_opt firsts p, Hashtbl.find_opt firsts corr) with
          | Some src_ts, Some dst_ts ->
              incr id;
              Some
                {
                  Export.flow_id = !id;
                  flow_name = corr;
                  src_ts;
                  dst_ts;
                }
          | _ -> None))
    (Log.corr_ids log)

let marks_of_log log =
  List.map
    (fun (r : record) ->
      {
        Export.mark_ts = r.at;
        mark_name = Event.label r.event ^ ": " ^ r.corr;
        mark_cat = "obs";
      })
    (Log.records log)

let to_json ?(slo = []) log =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"records\": %d,\n" (Log.length log));
  Buffer.add_string buf
    (Printf.sprintf "  \"head\": %s,\n" (Export.json_string (Log.head_hex log)));
  Buffer.add_string buf "  \"corr_ids\": [\n";
  let ids = Log.corr_ids log in
  let n = List.length ids in
  List.iteri
    (fun i (c, p) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"id\": %s, \"parent\": %s}%s\n"
           (Export.json_string c)
           (match p with None -> "null" | Some p -> Export.json_string p)
           (if i < n - 1 then "," else "")))
    ids;
  Buffer.add_string buf "  ],\n  \"events\": [\n";
  let rs = Log.records log in
  let n = List.length rs in
  List.iteri
    (fun i r ->
      Buffer.add_string buf ("    " ^ Trail.record_json r);
      if i < n - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    rs;
  Buffer.add_string buf "  ],\n  \"slo\": [\n";
  let n = List.length slo in
  List.iteri
    (fun i (ind : Slo.indicator) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %s, \"window\": %d, \"value\": %d, \"threshold\": \
            %d, \"breached\": %b}%s\n"
           (Export.json_string ind.name)
           ind.window_start ind.value ind.threshold ind.breached
           (if i < n - 1 then "," else "")))
    slo;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
