(** The fleet flight recorder: a typed, append-only event log with
    causal correlation ids, a tamper-evident SHA-256 hash chain with
    periodic Merkle checkpoints, windowed SLO indicators, and causal
    trail reconstruction.

    Every fleet engine (gateway sessions, OTA waves, swarm epochs)
    records what happened to whom under a {e correlation id}; ids are
    minted with an optional parent, so any outcome — a quarantined
    device, an aborted wave — traces back through its ancestor chain
    (epoch → session → frames → verdict).  Recording is passive: no
    cycles are charged, so an observed campaign is bit-identical to an
    unobserved one.

    Integrity mirrors the attestation story: each appended record
    extends [head = SHA-256(head ∥ record)], and every
    [checkpoint_every] records the window is sealed under an RFC-6962
    Merkle root.  {!Log.export} emits a self-contained binary trail;
    {!Log.verify_chain} re-derives everything and rejects truncation,
    splicing, reordering and bit flips — and never raises, whatever
    bytes it is fed. *)

module Event : sig
  type t =
    | Session_admitted of { serial : string; kind : string }
    | Session_shed of { serial : string; reason : string }
    | Session_settled of { serial : string; verdict : string; latency : int }
    | Frame_sent of { kind : string }
    | Frame_received of { kind : string }
    | Breaker_tripped of { serial : string }
    | Quarantined of { serial : string }
    | Evicted of { serial : string }
    | Epoch_opened of { epoch : int }
    | Epoch_sealed of { epoch : int; root_hex : string; leaves : int }
    | Wave_opened of { wave : int; label : string; version : int }
    | Wave_promoted of { wave : int }
    | Wave_aborted of { wave : int; reason : string }
    | Offer_sent of { serial : string; version : int }
    | Transfer_staged of { serial : string }
    | Swap_applied of { serial : string; counter : int }
    | Update_refused of { serial : string; reason : string }
    | Verdict_settled of { serial : string; verdict : string }
    | Slo_breach of {
        indicator : string;
        window : int;
        value : int;
        threshold : int;
      }
    | Note of { label : string }

  val label : t -> string
  (** The event's kind tag, e.g. ["session-settled"]. *)

  val render : t -> string
  (** Deterministic one-line field rendering (no tabs or newlines). *)

  val serial_of : t -> string option
  (** The device serial the event is about, when it names one. *)
end

type record = {
  seq : int;  (** position in the log, 0-based, dense *)
  at : int;  (** event time in campaign slices *)
  corr : string;  (** correlation id *)
  parent : string option;  (** the corr id's parent at mint time *)
  event : Event.t;
}

module Log : sig
  type t

  val create : ?checkpoint_every:int -> unit -> t
  (** A fresh log.  Every [checkpoint_every] (default 64) records the
      window is sealed under a Merkle checkpoint. *)

  val mint : t -> ?parent:string -> string -> string
  (** Register a correlation id (idempotent — re-minting keeps the
      first parent) and return it. *)

  val record : t -> corr:string -> at:int -> Event.t -> unit
  (** Append a record.  An unminted [corr] is auto-registered with no
      parent. *)

  val length : t -> int
  val records : t -> record list  (** append order *)

  val head_hex : t -> string
  (** The current chain head, hex. *)

  val corr_ids : t -> (string * string option) list
  (** Every minted id with its parent, mint order. *)

  val parent_of : t -> string -> string option

  val export : t -> bytes
  (** Self-contained binary trail: magic, length-prefixed records,
      checkpoints (a trailing partial window is sealed too), chain
      head. *)

  type chain_summary = {
    total : int;  (** records verified *)
    checkpoints : int;
    head : string;  (** recomputed chain head, hex *)
  }

  val verify_chain :
    ?expected_head:string -> bytes -> (chain_summary, string) result
  (** Structurally decode an exported trail and re-derive the hash
      chain, every checkpoint root and the sequence numbering; [Error]
      names the first divergence.  Never raises.  With
      [?expected_head] the recomputed head must also match the
      operator's out-of-band copy (an attacker who re-hashes a forged
      trail end to end is only caught by this pin). *)

  type tamper =
    | Truncate  (** drop the last record, keeping trailer intact *)
    | Splice  (** swap two adjacent records mid-log *)
    | Bit_flip of int  (** flip one bit inside the record region *)

  val tamper : tamper -> bytes -> bytes
  (** Inject a seeded fault into an exported trail (for tests and
      [tytan audit --tamper]).  Raises [Invalid_argument] if the trail
      is too short to host the fault or does not decode. *)
end

module Slo : sig
  type spec = {
    window : int;  (** slices per indicator window *)
    shed_permille_max : int;  (** shed / arrivals, per window *)
    p99_settle_max : int;  (** slices, per window *)
    quarantine_max : int;  (** quarantine events per window *)
    abort_permille_max : int;  (** aborted / offered waves, whole run *)
  }

  val default_spec : spec

  type indicator = {
    name : string;
    window_start : int;  (** slice the window opens at; 0 for run-level *)
    value : int;
    threshold : int;
    breached : bool;
  }

  val evaluate : ?spec:spec -> Log.t -> indicator list
  (** Fold the event stream into windowed indicators (shed rate, p99
      settle latency, quarantine count, OTA abort rate), sorted by
      (window, name).  Pure — the log is not modified. *)

  val scan : ?spec:spec -> Log.t -> indicator list
  (** {!evaluate}, then append an {!Event.Slo_breach} record (corr
      ["slo"]) for every breached indicator, in order. *)
end

module Trail : sig
  val members : Log.t -> corr:string -> string list
  (** The causal family of [corr]: ancestors outermost-first, then
      [corr], then descendants in mint order. *)

  val trace : Log.t -> corr:string -> record list
  (** Every record belonging to {!members}, in log order — the full
      causal chain behind an outcome. *)

  val to_json : Log.t -> corr:string -> string
  (** Deterministic JSON rendering of the trail: the ancestor chain
      and the traced records. *)
end

val flows_of_log : Log.t -> Tytan_telemetry.Export.flow list
(** One Perfetto flow arrow per parent→child correlation edge where
    both ends recorded at least one event: from the parent's first
    record to the child's first record. *)

val marks_of_log : Log.t -> Tytan_telemetry.Export.mark list
(** Every record as a Chrome-trace mark (anchor slices for the flow
    arrows), named [label: corr]. *)

val to_json : ?slo:Slo.indicator list -> Log.t -> string
(** The [tytan audit --json] payload: chain metadata (record count,
    head, checkpoints), the correlation registry, every record, and
    the SLO verdicts.  Byte-deterministic for a given log. *)
