open Tytan_core
module Telf = Tytan_telf.Telf
module Tycheck = Tytan_analysis.Tycheck
module Finding = Tytan_analysis.Finding
module Isa = Tytan_machine.Isa

type verdict = {
  accepted : bool;
  refusal : string option;
  vet_cycles : int;
}

let vet (telf : Telf.t) =
  let rep = Tycheck.check ~config:Tycheck.flow_config telf in
  let slots = telf.Telf.text_size / Isa.width in
  (* Adoption demands the strict verdict: an image the analysis cannot
     prove clean (a Maybe-level flow, an unbounded WCET) is refused
     alongside proven leaks. *)
  let refusal =
    match Tycheck.first_violation rep with
    | Some _ as v -> v
    | None ->
        List.find_opt
          (fun f -> f.Finding.severity <> Finding.Info)
          rep.Tycheck.findings
        |> Option.map (Format.asprintf "%a" Finding.pp)
  in
  {
    accepted = Tycheck.strict_ok rep;
    refusal;
    vet_cycles =
      Cost_model.vet_base
      + ((Cost_model.vet_per_instruction + Cost_model.vet_flow) * slots);
  }

let version_ok ~counter ~version = version > counter
