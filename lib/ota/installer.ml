open Tytan_core
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Memory = Tytan_machine.Memory
module Devices = Tytan_machine.Devices
module Telf = Tytan_telf.Telf
module Protocol = Tytan_netsim.Protocol

(* One in-flight image transfer.  The buffer is committed to nothing:
   until the digest, vet and identity gates all pass, the staged bytes
   are just bytes. *)
type transfer = {
  seq : int;
  id : Task_id.t;
  version : int;
  size : int;
  digest : bytes;
  buf : bytes;
  mutable have : int;  (* cumulative in-order bytes received *)
}

type t = {
  serial : string;
  ka : bytes;
  clock : Cycles.t;
  counter : Devices.Monotonic_counter.t;
  persist : (bytes -> unit) option;
  mutable loaded : Task_id.t;
  mutable transfer : transfer option;
  mutable concluded : (int * Protocol.message) option;
      (* the terminal ack of the last finished transfer, replayed for
         retransmissions that arrive after the transfer state is gone —
         a lost final ack must not strand the sender *)
  mutable crash_armed : bool;
  mutable crashed : bool;
  mutable activations : int;
  mutable rollback_refusals : int;
  mutable auth_refusals : int;
  mutable vet_refusals : int;
  mutable digest_refusals : int;
  mutable malformed : int;
  mutable chunks_received : int;
  mutable staged_bytes : int;
  mutable update_cycles : int;  (* device cycles burnt in OTA handling *)
  mutable last_refusal_cycles : int;
}

let create ~serial ~ka ~clock ~counter ~loaded ?persist () =
  {
    serial;
    ka;
    clock;
    counter;
    persist;
    loaded;
    transfer = None;
    concluded = None;
    crash_armed = false;
    crashed = false;
    activations = 0;
    rollback_refusals = 0;
    auth_refusals = 0;
    vet_refusals = 0;
    digest_refusals = 0;
    malformed = 0;
    chunks_received = 0;
    staged_bytes = 0;
    update_cycles = 0;
    last_refusal_cycles = 0;
  }

let serial t = t.serial
let loaded t = t.loaded
let counter t = t.counter
let counter_value t = Devices.Monotonic_counter.value t.counter
let activations t = t.activations
let rollback_refusals t = t.rollback_refusals
let vet_refusals t = t.vet_refusals
let auth_refusals t = t.auth_refusals
let digest_refusals t = t.digest_refusals
let staged_bytes t = t.staged_bytes
let chunks_received t = t.chunks_received
let malformed t = t.malformed
let update_cycles t = t.update_cycles
let last_refusal_cycles t = t.last_refusal_cycles
let crashed t = t.crashed
let arm_crash t = t.crash_armed <- true

let clear_crash t =
  t.crash_armed <- false;
  t.crashed <- false

(* The downgrade attacker's first move, made honest: an MMIO write to
   the counter's value register.  The hardware refuses and counts it —
   the value never moves, which is the whole point of the part. *)
let attempt_counter_reset t =
  let d = Devices.Monotonic_counter.device t.counter in
  d.Memory.write32 ~offset:0 0

let reset_attempts t = Devices.Monotonic_counter.reset_attempts t.counter

let charged t f =
  let s1 = Crypto.Sha1.total_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.total_compressions () - s1 in
  if d1 > 0 then Cycles.charge t.clock (d1 * Cost_model.crypto_per_compression);
  r

let persist_counter t =
  match t.persist with
  | Some save -> save (Devices.Monotonic_counter.save t.counter)
  | None -> ()

let max_image = 1 lsl 20

let replayed t seq =
  match t.concluded with
  | Some (s, ack) when s = seq -> Some ack
  | _ -> None

let on_offer t ~seq ~id ~version ~size ~digest ~mac =
  match replayed t seq with
  | Some ack -> ack  (* retransmitted offer of a finished transfer *)
  | None ->
  Cycles.charge t.clock Cost_model.ota_offer_check;
  let genuine =
    charged t (fun () ->
        Attestation.verify_update_mac ~ka:t.ka ~id ~version ~size ~digest
          ~tag:mac)
  in
  if (not genuine) || size = 0 || size > max_image then begin
    t.auth_refusals <- t.auth_refusals + 1;
    Protocol.UpdateAck { seq; status = Protocol.Ota_refused_auth; arg = 0 }
  end
  else begin
    Cycles.charge t.clock Cost_model.counter_read;
    let current = Devices.Monotonic_counter.value t.counter in
    if not (Gate.version_ok ~counter:current ~version) then begin
      (* A rollback: the authenticated version does not beat the
         counter.  Nothing is staged; the offer dies at the door. *)
      t.rollback_refusals <- t.rollback_refusals + 1;
      Protocol.UpdateAck
        { seq; status = Protocol.Ota_refused_rollback; arg = current }
    end
    else begin
      (match t.transfer with
      | Some tr when tr.seq = seq -> ()  (* retransmitted offer *)
      | _ ->
          t.transfer <-
            Some
              { seq; id; version; size; digest; buf = Bytes.create size; have = 0 });
      let have = match t.transfer with Some tr -> tr.have | None -> 0 in
      Protocol.UpdateAck { seq; status = Protocol.Ota_ready; arg = have }
    end
  end

let conclude t (tr : transfer) ack =
  t.concluded <- Some (tr.seq, ack);
  ack

let finalize t (tr : transfer) =
  t.transfer <- None;
  let actual = charged t (fun () -> Crypto.Sha1.digest tr.buf) in
  if not (Crypto.Constant_time.equal actual tr.digest) then begin
    t.digest_refusals <- t.digest_refusals + 1;
    conclude t tr
      (Protocol.UpdateAck
         { seq = tr.seq; status = Protocol.Ota_refused_digest; arg = 0 })
  end
  else
    match Telf.decode tr.buf with
    | Error _ ->
        t.digest_refusals <- t.digest_refusals + 1;
        conclude t tr
          (Protocol.UpdateAck
             { seq = tr.seq; status = Protocol.Ota_refused_digest; arg = 0 })
    | Ok telf ->
        if not (Task_id.equal (Task_id.of_image telf.Telf.image) tr.id) then begin
          (* The digest was genuine but the image inside is not the one
             the authority signed for — authenticated-identity mismatch. *)
          t.auth_refusals <- t.auth_refusals + 1;
          conclude t tr
            (Protocol.UpdateAck
               { seq = tr.seq; status = Protocol.Ota_refused_auth; arg = 0 })
        end
        else
          let verdict = Gate.vet telf in
          Cycles.charge t.clock verdict.Gate.vet_cycles;
          if not verdict.Gate.accepted then begin
            t.vet_refusals <- t.vet_refusals + 1;
            conclude t tr
              (Protocol.UpdateAck
                 { seq = tr.seq; status = Protocol.Ota_refused_vet; arg = 0 })
          end
          else if t.crash_armed then begin
            (* Power lost inside the swap window: the staged image is
               abandoned before the counter advances, and the device
               reboots into the incumbent version.  The reboot report is
               the last frame it sends this wave — [crashed] keeps it
               silent until the rollout engine re-admits it. *)
            t.crash_armed <- false;
            t.crashed <- true;
            conclude t tr
              (Protocol.UpdateAck
                 { seq = tr.seq; status = Protocol.Ota_refused_crash; arg = 0 })
          end
          else begin
            Cycles.charge t.clock Cost_model.update_swap_base;
            let value =
              Devices.Monotonic_counter.advance_to t.counter tr.version
            in
            persist_counter t;
            t.loaded <- tr.id;
            t.activations <- t.activations + 1;
            conclude t tr
              (Protocol.UpdateAck
                 { seq = tr.seq; status = Protocol.Ota_applied; arg = value })
          end

let on_chunk t ~seq ~offset ~data =
  match t.transfer with
  | None -> replayed t seq
  | Some tr when tr.seq <> seq -> replayed t seq
  | Some tr ->
      Cycles.charge t.clock Cost_model.ota_chunk_base;
      t.chunks_received <- t.chunks_received + 1;
      let len = Bytes.length data in
      if offset = tr.have && offset + len <= tr.size then begin
        Bytes.blit data 0 tr.buf offset len;
        tr.have <- tr.have + len;
        t.staged_bytes <- t.staged_bytes + len;
        if tr.have = tr.size then Some (finalize t tr)
        else
          Some
            (Protocol.UpdateAck
               { seq; status = Protocol.Ota_need; arg = tr.have })
      end
      else
        (* Go-back-N: anything but the next in-order chunk (a duplicate,
           a hole, an overrun) is discarded and the cumulative ack tells
           the sender where to resume. *)
        Some
          (Protocol.UpdateAck { seq; status = Protocol.Ota_need; arg = tr.have })

let on_frame t frame =
  if t.crashed then []
  else begin
    let start = Cycles.now t.clock in
    let reply =
      match Protocol.decode frame with
      | Error _ ->
          (* Defensive decode: a truncated or corrupted frame dies here,
             unanswered — retransmission is the sender's problem. *)
          t.malformed <- t.malformed + 1;
          []
      | Ok (Protocol.UpdateOffer { seq; id; version; size; digest; mac }) ->
          let before = Cycles.now t.clock in
          let ack = on_offer t ~seq ~id ~version ~size ~digest ~mac in
          (match ack with
          | Protocol.UpdateAck { status = Protocol.Ota_refused_rollback; _ } ->
              t.last_refusal_cycles <- Cycles.now t.clock - before
          | _ -> ());
          [ ack ]
      | Ok (Protocol.UpdateChunk { seq; offset; data }) ->
          Option.to_list (on_chunk t ~seq ~offset ~data)
      | Ok (Protocol.Challenge { seq; id; nonce }) ->
          if Task_id.equal id t.loaded then
            let mac =
              charged t (fun () -> Attestation.expected_mac ~ka:t.ka ~id ~nonce)
            in
            [ Protocol.Response { seq; report = { Attestation.id; nonce; mac } } ]
          else [ Protocol.Refusal { seq } ]
      | Ok (Protocol.CfaChallenge { seq; id; nonce }) ->
          if Task_id.equal id t.loaded then begin
            (* Freshly swapped and quiescent: the honest control-flow
               answer is the empty log anchored at the new identity's
               genesis digest. *)
            let genesis = Attestation.cf_genesis ~id in
            let mac =
              charged t (fun () ->
                  Attestation.expected_cfa_mac ~ka:t.ka ~id ~nonce
                    ~cf_digest:genesis ~base_digest:genesis ~edge_count:0)
            in
            [
              Protocol.CfaResponse
                {
                  seq;
                  report =
                    {
                      Attestation.id;
                      nonce;
                      cf_digest = genesis;
                      base_digest = genesis;
                      edge_count = 0;
                      edges = [||];
                      mac;
                    };
                };
            ]
          end
          else [ Protocol.Refusal { seq } ]
      | Ok
          ( Protocol.Response _ | Protocol.Refusal _ | Protocol.CfaResponse _
          | Protocol.UpdateAck _ ) ->
          []
    in
    t.update_cycles <- t.update_cycles + (Cycles.now t.clock - start);
    reply
  end
