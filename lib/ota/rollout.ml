open Tytan_core
open Tytan_netsim
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Devices = Tytan_machine.Devices
module Telf = Tytan_telf.Telf
module Fault_plan = Tytan_fault.Fault_plan
module Telemetry = Tytan_telemetry.Telemetry
module Obs = Tytan_obs.Obs

type wave_spec = {
  label : string;
  version : int;
  image : Telf.t;
}

type wave_stats = {
  wave : int;
  label : string;
  version : int;
  offered : int;
  staged : int;  (* devices that accepted the offer and buffered chunks *)
  applied : int;
  refused_rollback : int;
  refused_vet : int;
  refused_auth : int;
  refused_digest : int;
  crashed : int;
  gave_up : int;
  attest_ok : int;
  attest_failed : int;
  verdicts : string;
      (* one char per device: [A]pplied, [R]ollback-refused, [V]et-refused,
         [M]ac-refused, [D]igest-refused, crashed [X], [G]ave up,
         [Q]uarantined (skipped), [.] not offered, [?] pending *)
  promoted : bool;
  aborted : bool;
  abort_reason : string option;
  slices : int;
  newly_quarantined : string list;
}

type report = {
  devices : int;
  canary : int;
  seed : int;
  faults : bool;
  loss_percent : int;
  waves : wave_stats list;
  counters : int list;  (* final per-device monotonic counter values *)
  reset_attempts : int;
  controller_cycles : int;
  device_cycles : int;
  update_cycles : int;  (* device cycles spent in OTA frame handling *)
  rollback_refusal_cycles : int;  (* cost of the last rollback refusal *)
  frames_sent : int;
  frames_dropped : int;
  frames_delivered : int;
  truncated_frames : int;
  quarantined : string list;
  telemetry : (string * int) list;
  survived : bool;
}

let serial_of i = Printf.sprintf "dev-%05d" i

let charged clock f =
  let s1 = Crypto.Sha1.total_compressions () in
  let s2 = Crypto.Sha256.total_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.total_compressions () - s1 in
  let d2 = Crypto.Sha256.total_compressions () - s2 in
  if d1 > 0 then Cycles.charge clock (d1 * Cost_model.crypto_per_compression);
  if d2 > 0 then Cycles.charge clock (d2 * Cost_model.sha256_per_compression);
  r

(* The OTA chaos schedule: truncated update frames (the decoder refuses,
   the sender's retransmissions recover), counter-reset attempts (the
   hardware refuses and counts), and canaries crashing mid-swap (the
   gate failure a staged rollout must turn into an abort) — pinned to
   waves via [at_tick], seeded like every other campaign. *)
let fault_events ~seed ~devices ~waves =
  let prng = Fault_plan.Prng.create (seed lxor 0x07A7) in
  List.concat
    (List.init waves (fun wave ->
         let dev = serial_of (Fault_plan.Prng.int prng devices) in
         let kind =
           match Fault_plan.Prng.int prng 5 with
           | 0 | 1 ->
               Fault_plan.Frame_truncate
                 { name = dev; count = 1 + Fault_plan.Prng.int prng 2 }
           | 2 | 3 -> Fault_plan.Counter_reset { name = dev }
           | _ -> Fault_plan.Canary_crash { name = dev }
         in
         [ { Fault_plan.at_tick = wave; kind } ]))

(* ---- devices ---------------------------------------------------------- *)

type dev = {
  index : int;
  serial : string;
  installer : Installer.t;
  link : Link.t;
  ka : bytes;  (* controller-side copy of the device's Ka *)
  mutable quarantined : bool;
  mutable strikes : int;
  mutable truncate_left : int;
  nvm : bytes option ref;  (* sealed counter snapshot (persistence) *)
}

(* ---- one OTA transfer session (controller side) ----------------------- *)

let retry_timeout = 6
let session_attempts = 8
let window = 4
let chunk_size = 128

type sess = {
  dev : dev;
  seq : int;
  offer : bytes;  (* encoded UpdateOffer, ready to (re)send *)
  payload : bytes;  (* encoded TELF *)
  mutable state : [ `Offer | `Stream | `Done of char ];
  mutable opened : bool;  (* the device acked the offer: transfer staged *)
  mutable next_needed : int;
  mutable cursor : int;
  mutable dup_acks : int;
  mutable attempts : int;
  mutable last_sent : int;
  mutable counter_after : int;
}

let send_chunks s ~at =
  let size = Bytes.length s.payload in
  let limit = min size (s.next_needed + (window * chunk_size)) in
  while s.cursor < limit do
    let len = min chunk_size (size - s.cursor) in
    Link.send s.dev.link ~from:Link.Remote ~at
      (Protocol.encode
         (Protocol.UpdateChunk
            {
              seq = s.seq;
              offset = s.cursor;
              data = Bytes.sub s.payload s.cursor len;
            }));
    s.cursor <- s.cursor + len;
    s.last_sent <- at
  done

let controller_poll s ~at =
  match s.state with
  | `Done _ -> ()
  | `Offer ->
      if s.last_sent < 0 || at - s.last_sent >= retry_timeout then begin
        if s.attempts >= session_attempts then s.state <- `Done '?'
        else begin
          s.attempts <- s.attempts + 1;
          Link.send s.dev.link ~from:Link.Remote ~at s.offer;
          s.last_sent <- at
        end
      end
  | `Stream ->
      if at - s.last_sent >= retry_timeout then begin
        (* Stalled: go back to the last cumulative ack and resend. *)
        if s.attempts >= session_attempts then s.state <- `Done '?'
        else begin
          s.attempts <- s.attempts + 1;
          s.cursor <- s.next_needed;
          send_chunks s ~at
        end
      end
      else send_chunks s ~at

let controller_on_frame s ~at frame =
  match Protocol.decode frame with
  | Error _ -> ()
  | Ok (Protocol.UpdateAck { seq; status; arg }) when seq = s.seq -> (
      match status with
      | Protocol.Ota_ready ->
          s.opened <- true;
          if s.state = `Offer then begin
            s.state <- `Stream;
            s.next_needed <- arg;
            s.cursor <- arg;
            s.attempts <- 0;
            s.last_sent <- at
          end
      | Protocol.Ota_need ->
          if arg > s.next_needed then begin
            s.next_needed <- arg;
            s.dup_acks <- 0;
            s.attempts <- 0;
            s.last_sent <- at
          end
          else begin
            (* Go-back-N duplicate ack: a hole at [arg].  Two in a row
               rewind the cursor without waiting for the stall timer. *)
            s.dup_acks <- s.dup_acks + 1;
            if s.dup_acks >= 2 then begin
              s.cursor <- arg;
              s.dup_acks <- 0
            end
          end
      | Protocol.Ota_applied ->
          s.counter_after <- arg;
          s.state <- `Done 'A'
      | Protocol.Ota_refused_rollback ->
          s.counter_after <- arg;
          s.state <- `Done 'R'
      | Protocol.Ota_refused_vet -> s.state <- `Done 'V'
      | Protocol.Ota_refused_auth -> s.state <- `Done 'M'
      | Protocol.Ota_refused_digest -> s.state <- `Done 'D'
      | Protocol.Ota_refused_crash -> s.state <- `Done 'X')
  | Ok _ -> ()

(* Device side of a slice: deliver inbound frames (after any armed
   truncation fault bites them), let the installer answer. *)
let device_step (d : dev) ~at ~truncated =
  List.iter
    (fun frame ->
      let frame =
        if d.truncate_left > 0 && Bytes.length frame > 1 then begin
          d.truncate_left <- d.truncate_left - 1;
          incr truncated;
          Bytes.sub frame 0 (Bytes.length frame / 2)
        end
        else frame
      in
      List.iter
        (fun reply ->
          Link.send d.link ~from:Link.Device ~at (Protocol.encode reply))
        (Installer.on_frame d.installer frame))
    (Link.deliver d.link ~to_:Link.Device ~at)

(* ---- post-swap attestation (static + CFA) ----------------------------- *)

let attest_gate ~controller_clock ~wave (cohort : dev list) ~expected ~truncated
    =
  let backoff = Verifier.default_backoff in
  let slice_cap =
    16 + (10 * (backoff.Verifier.cap_slices + backoff.Verifier.jitter_slices))
  in
  let genesis = Attestation.cf_genesis ~id:expected in
  let sessions =
    List.map
      (fun d ->
        let static =
          Verifier.create ~ka:d.ka ~expected ~backoff ~refusals_to_settle:2
            ~session:(Printf.sprintf "%s/w%d/s" d.serial wave)
            ()
        in
        let cfa =
          Verifier.create ~ka:d.ka ~expected ~backoff ~refusals_to_settle:2
            ~cfa:(fun (r : Attestation.cfa_report) ->
              if
                r.Attestation.edge_count = 0
                && Bytes.equal r.Attestation.cf_digest genesis
                && Bytes.equal r.Attestation.base_digest genesis
              then Ok ()
              else Error "non-empty control-flow log after swap")
            ~session:(Printf.sprintf "%s/w%d/c" d.serial wave)
            ()
        in
        (d, [ static; cfa ]))
      cohort
  in
  let all_settled () =
    List.for_all
      (fun (_, vs) ->
        List.for_all (fun v -> Verifier.outcome v <> Verifier.Pending) vs)
      sessions
  in
  let slice = ref 0 in
  while (not (all_settled ())) && !slice <= slice_cap do
    let at = !slice in
    List.iter (fun d -> device_step d ~at ~truncated) cohort;
    List.iter
      (fun (d, vs) ->
        (* Both sessions share the device's link: drain once, fan every
           frame out to both (each ignores the other's sequences). *)
        let frames = Link.deliver d.link ~to_:Link.Remote ~at in
        List.iter
          (fun v ->
            List.iter
              (fun frame ->
                charged controller_clock (fun () -> Verifier.on_frame v frame))
              frames;
            match Verifier.poll v ~at with
            | Some frame -> Link.send d.link ~from:Link.Remote ~at frame
            | None -> ())
          vs)
      sessions;
    incr slice
  done;
  List.iter
    (fun (_, vs) ->
      List.iter
        (fun v ->
          let at = ref (2 * slice_cap) in
          while Verifier.outcome v = Verifier.Pending do
            ignore (Verifier.poll v ~at:!at);
            at := !at + slice_cap
          done)
        vs)
    sessions;
  (* A device passes iff both its sessions attested. *)
  List.map
    (fun (d, vs) ->
      (d, List.for_all (fun v -> Verifier.outcome v = Verifier.Attested) vs))
    sessions

(* ---- the campaign ----------------------------------------------------- *)

let run ~devices ~canary ~seed ?(faults = false) ?(loss_percent = 10) ?obs
    ~platform_key_of ~incumbent (waves : wave_spec list) =
  if devices <= 0 then invalid_arg "Rollout.run: devices must be positive";
  if canary <= 0 || canary > devices then
    invalid_arg "Rollout.run: canary must be in 1..devices";
  if waves = [] then invalid_arg "Rollout.run: no waves";
  List.iter
    (fun (w : wave_spec) ->
      if w.version <= 0 then invalid_arg "Rollout.run: versions start at 1")
    waves;
  let controller_clock = Cycles.create () in
  let device_clock = Cycles.create () in
  (* Observation must not perturb the run: zero costs, so enabling
     telemetry leaves every clock bit-identical (the chaos campaign's
     discipline).  Likewise the flight recorder charges nothing. *)
  let telemetry =
    Telemetry.create ~per_event_cost:0 ~per_span_cost:0 controller_clock
  in
  Telemetry.enable telemetry;
  let tally name n =
    for _ = 1 to n do
      Telemetry.incr telemetry ~component:"ota" name
    done
  in
  (* The campaign's global slice offset: per-phase loops restart their
     local clock at 0, so flight-recorder timestamps add this base. *)
  let obs_at = ref 0 in
  let observe ~corr ~at event =
    match obs with
    | None -> ()
    | Some log -> Obs.Log.record log ~corr ~at event
  in
  let terminal_event ~serial ~counter = function
    | 'A' -> Some (Obs.Event.Swap_applied { serial; counter })
    | 'R' -> Some (Obs.Event.Update_refused { serial; reason = "rollback" })
    | 'V' -> Some (Obs.Event.Update_refused { serial; reason = "vet" })
    | 'M' -> Some (Obs.Event.Update_refused { serial; reason = "auth" })
    | 'D' -> Some (Obs.Event.Update_refused { serial; reason = "digest" })
    | 'X' -> Some (Obs.Event.Update_refused { serial; reason = "crash" })
    | 'G' -> Some (Obs.Event.Update_refused { serial; reason = "unreachable" })
    | _ -> None
  in
  let corrupt_percent = if faults then 3 else 0 in
  let incumbent_id = Task_id.of_image incumbent.Telf.image in
  let fleet =
    Array.init devices (fun i ->
        let serial = serial_of i in
        let link =
          Link.create
            ~seed:(((seed * 7919) + (i * 104729) + 29) land 0x3FFF_FFFF)
            ~loss_percent ~corrupt_percent
            ~duplicate_percent:(if faults then 2 else 0)
            ~reorder_percent:(if faults then 2 else 0)
            ()
        in
        let platform_key = platform_key_of ~serial in
        (* Device-side boot-time key derivation, charged to the device;
           the controller derives its copy from the registry side. *)
        let device_ka =
          charged device_clock (fun () -> Attestation.derive_ka ~platform_key)
        in
        let ka =
          charged controller_clock (fun () ->
              Attestation.derive_ka ~platform_key)
        in
        let counter =
          Devices.Monotonic_counter.create device_clock
            ~name:(serial ^ "/ctr") ~base:0xF000_6000
            ~read_cost:Cost_model.counter_read
            ~increment_cost:Cost_model.counter_increment ()
        in
        let nvm = ref None in
        let installer =
          Installer.create ~serial ~ka:device_ka ~clock:device_clock ~counter
            ~loaded:incumbent_id
            ~persist:(fun blob -> nvm := Some blob)
            ()
        in
        {
          index = i;
          serial;
          installer;
          link;
          ka;
          quarantined = false;
          strikes = 0;
          truncate_left = 0;
          nvm;
        })
  in
  let plan =
    if faults then fault_events ~seed ~devices ~waves:(List.length waves)
    else []
  in
  let truncated = ref 0 in
  let breaker_threshold = 1 in
  let strike d =
    d.strikes <- d.strikes + 1;
    if d.strikes >= breaker_threshold then begin
      d.strikes <- 0;
      d.quarantined <- true
    end
  in
  let survived = ref true in
  let stats = ref [] in
  List.iteri
    (fun wave_idx (w : wave_spec) ->
      let wave_corr = Printf.sprintf "ota/wave-%d" wave_idx in
      let dev_corr serial = Printf.sprintf "ota/%s/w%d" serial wave_idx in
      (match obs with
      | Some log -> ignore (Obs.Log.mint log wave_corr)
      | None -> ());
      observe ~corr:wave_corr ~at:!obs_at
        (Obs.Event.Wave_opened
           { wave = wave_idx; label = w.label; version = w.version });
      (* Re-admit last wave's crash victims (they rebooted into the
         incumbent); quarantine decisions stand. *)
      Array.iter (fun d -> Installer.clear_crash d.installer) fleet;
      List.iter
        (fun { Fault_plan.at_tick; kind } ->
          if at_tick = wave_idx then
            match kind with
            | Fault_plan.Frame_truncate { name; count } ->
                Array.iter
                  (fun d ->
                    if d.serial = name then
                      d.truncate_left <- d.truncate_left + count)
                  fleet
            | Fault_plan.Counter_reset { name } ->
                Array.iter
                  (fun d ->
                    if d.serial = name then
                      Installer.attempt_counter_reset d.installer)
                  fleet
            | Fault_plan.Canary_crash { name } ->
                Array.iter
                  (fun d ->
                    if d.serial = name then Installer.arm_crash d.installer)
                  fleet
            | _ -> ())
        plan;
      let payload = Telf.encode w.image in
      let size = Bytes.length payload in
      let digest = Crypto.Sha1.digest payload in
      let id = Task_id.of_image w.image.Telf.image in
      let eligible =
        Array.to_list fleet |> List.filter (fun d -> not d.quarantined)
      in
      let canaries = List.filteri (fun i _ -> i < canary) eligible in
      let rest = List.filteri (fun i _ -> i >= canary) eligible in
      let verdict = Array.make devices '.' in
      Array.iter
        (fun d -> if d.quarantined then verdict.(d.index) <- 'Q')
        fleet;
      let slices = ref 0 in
      let run_phase cohort =
        let base = !obs_at in
        let sessions =
          List.map
            (fun d ->
              let seq = (wave_idx * 10_000) + d.index in
              let mac =
                charged controller_clock (fun () ->
                    Attestation.update_mac ~ka:d.ka ~id ~version:w.version
                      ~size ~digest)
              in
              let offer =
                Protocol.encode
                  (Protocol.UpdateOffer
                     { seq; id; version = w.version; size; digest; mac })
              in
              (match obs with
              | Some log ->
                  ignore (Obs.Log.mint log ~parent:wave_corr (dev_corr d.serial))
              | None -> ());
              observe ~corr:(dev_corr d.serial) ~at:base
                (Obs.Event.Offer_sent
                   { serial = d.serial; version = w.version });
              {
                dev = d;
                seq;
                offer;
                payload;
                state = `Offer;
                opened = false;
                next_needed = 0;
                cursor = 0;
                dup_acks = 0;
                attempts = 0;
                last_sent = -1000;
                counter_after = -1;
              })
            cohort
        in
        let cap =
          64 + (8 * ((size / chunk_size) + 1))
          + (retry_timeout * session_attempts * 2)
        in
        let all_done () =
          List.for_all (fun s -> match s.state with `Done _ -> true | _ -> false)
            sessions
        in
        let slice = ref 0 in
        while (not (all_done ())) && !slice <= cap do
          let at = !slice in
          List.iter (fun s -> device_step s.dev ~at ~truncated) sessions;
          List.iter
            (fun s ->
              List.iter
                (fun frame ->
                  let was_opened = s.opened in
                  let before = s.state in
                  controller_on_frame s ~at frame;
                  if obs <> None then begin
                    let corr = dev_corr s.dev.serial in
                    if (not was_opened) && s.opened then
                      observe ~corr ~at:(base + at)
                        (Obs.Event.Transfer_staged { serial = s.dev.serial });
                    match s.state with
                    | `Done c when before <> s.state -> (
                        match
                          terminal_event ~serial:s.dev.serial
                            ~counter:s.counter_after c
                        with
                        | Some e -> observe ~corr ~at:(base + at) e
                        | None -> ())
                    | _ -> ()
                  end)
                (Link.deliver s.dev.link ~to_:Link.Remote ~at))
            sessions;
          List.iter (fun s -> controller_poll s ~at) sessions;
          incr slice
        done;
        slices := !slices + !slice;
        (* Anything still unsettled has exhausted its schedule. *)
        List.iter
          (fun s ->
            match s.state with
            | `Done '?' | `Offer | `Stream ->
                s.state <-
                  (if Installer.crashed s.dev.installer then `Done 'X'
                   else `Done 'G');
                (match s.state with
                | `Done c -> (
                    match
                      terminal_event ~serial:s.dev.serial
                        ~counter:s.counter_after c
                    with
                    | Some e ->
                        observe ~corr:(dev_corr s.dev.serial)
                          ~at:(base + !slice) e
                    | None -> ())
                | _ -> ())
            | `Done _ -> ())
          sessions;
        obs_at := base + !slice;
        List.iter
          (fun s ->
            match s.state with
            | `Done c -> verdict.(s.dev.index) <- c
            | _ -> verdict.(s.dev.index) <- '?')
          sessions;
        sessions
      in
      (* Phase A: the canary cohort. *)
      let canary_sessions = run_phase canaries in
      let canary_applied =
        List.for_all (fun s -> s.state = `Done 'A') canary_sessions
      in
      let attest_results =
        if canary_applied then
          attest_gate ~controller_clock ~wave:wave_idx canaries ~expected:id
            ~truncated
        else []
      in
      let attest_ok_canaries =
        List.length (List.filter snd attest_results)
      in
      let gate_passed =
        canary_applied && List.for_all snd attest_results
      in
      let abort_reason =
        if gate_passed then None
        else if not canary_applied then
          List.find_opt (fun s -> s.state <> `Done 'A') canary_sessions
          |> Option.map (fun s ->
                 Printf.sprintf "canary %s: %s" s.dev.serial
                   (match s.state with
                   | `Done 'R' -> "rollback-refused"
                   | `Done 'V' -> "vet-refused"
                   | `Done 'M' -> "auth-refused"
                   | `Done 'D' -> "digest-refused"
                   | `Done 'X' -> "crashed mid-swap"
                   | `Done 'G' -> "unreachable"
                   | _ -> "pending"))
        else
          List.find_opt (fun (_, ok) -> not ok) attest_results
          |> Option.map (fun ((d : dev), _) ->
                 Printf.sprintf "canary %s: post-swap attestation failed"
                   d.serial)
      in
      (* Phase B: promotion — or fleet-wide abort. *)
      let fleet_sessions = if gate_passed then run_phase rest else [] in
      let all_sessions = canary_sessions @ fleet_sessions in
      (* The circuit breaker: every device that was offered this wave
         and did not end it running the offered image takes a strike.
         At the threshold it is quarantined — out of the fleet until an
         operator re-provisions it. *)
      let newly_quarantined = ref [] in
      List.iter
        (fun s ->
          if s.state <> `Done 'A' then begin
            let was = s.dev.quarantined in
            strike s.dev;
            if s.dev.quarantined && not was then
              newly_quarantined := s.dev.serial :: !newly_quarantined
          end)
        all_sessions;
      (* Canaries that applied a wave the gate then failed are pulled
         too: they run an image the fleet aborted. *)
      if not gate_passed then
        List.iter
          (fun s ->
            if not s.dev.quarantined then begin
              strike s.dev;
              if s.dev.quarantined then
                newly_quarantined := s.dev.serial :: !newly_quarantined
            end)
          canary_sessions;
      let count c =
        Array.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 verdict
      in
      let verdicts = String.init devices (Array.get verdict) in
      if
        (not faults)
        && (count 'G' > 0 || count 'X' > 0 || String.contains verdicts '?')
      then survived := false;
      if gate_passed then
        observe ~corr:wave_corr ~at:!obs_at
          (Obs.Event.Wave_promoted { wave = wave_idx })
      else
        observe ~corr:wave_corr ~at:!obs_at
          (Obs.Event.Wave_aborted
             {
               wave = wave_idx;
               reason = Option.value abort_reason ~default:"canary gate failed";
             });
      List.iter
        (fun serial ->
          observe ~corr:(dev_corr serial) ~at:!obs_at
            (Obs.Event.Quarantined { serial }))
        (List.sort compare !newly_quarantined);
      tally "offered" (List.length all_sessions);
      tally "staged" (List.length (List.filter (fun s -> s.opened) all_sessions));
      tally "applied" (count 'A');
      tally "refused_rollback" (count 'R');
      tally "refused_vet" (count 'V');
      tally "refused_auth" (count 'M');
      tally "refused_digest" (count 'D');
      tally "crashed" (count 'X');
      tally "gave_up" (count 'G');
      tally (if gate_passed then "waves_promoted" else "waves_aborted") 1;
      tally "quarantines" (List.length !newly_quarantined);
      stats :=
        {
          wave = wave_idx;
          label = w.label;
          version = w.version;
          offered = List.length all_sessions;
          staged = List.length (List.filter (fun s -> s.opened) all_sessions);
          applied = count 'A';
          refused_rollback = count 'R';
          refused_vet = count 'V';
          refused_auth = count 'M';
          refused_digest = count 'D';
          crashed = count 'X';
          gave_up = count 'G';
          attest_ok = attest_ok_canaries;
          attest_failed =
            (if canary_applied then
               List.length attest_results - attest_ok_canaries
             else 0);
          verdicts;
          promoted = gate_passed;
          aborted = not gate_passed;
          abort_reason;
          slices = !slices;
          newly_quarantined = List.sort compare !newly_quarantined;
        }
        :: !stats)
    waves;
  let sum f = Array.fold_left (fun n d -> n + f d) 0 fleet in
  {
    devices;
    canary;
    seed;
    faults;
    loss_percent;
    waves = List.rev !stats;
    counters =
      Array.to_list (Array.map (fun d -> Installer.counter_value d.installer) fleet);
    reset_attempts = sum (fun d -> Installer.reset_attempts d.installer);
    controller_cycles = Cycles.now controller_clock;
    device_cycles = Cycles.now device_clock;
    update_cycles = sum (fun d -> Installer.update_cycles d.installer);
    rollback_refusal_cycles =
      Array.fold_left
        (fun acc d -> max acc (Installer.last_refusal_cycles d.installer))
        0 fleet;
    frames_sent = sum (fun d -> Link.sent_count d.link);
    frames_dropped = sum (fun d -> Link.dropped_count d.link);
    frames_delivered = sum (fun d -> Link.delivered_count d.link);
    truncated_frames = !truncated;
    quarantined =
      Array.to_list fleet
      |> List.filter (fun d -> d.quarantined)
      |> List.map (fun d -> d.serial)
      |> List.sort compare;
    telemetry =
      List.map
        (fun (k, v) -> (Telemetry.key_to_string k, v))
        (Telemetry.counters telemetry);
    survived = !survived;
  }

(* ---- rendering -------------------------------------------------------- *)

let sha1_hex s = Crypto.Sha1.to_hex (Crypto.Sha1.digest_string s)

let body r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "ota campaign: devices=%d canary=%d waves=%d seed=%d faults=%s loss=%d%%\n"
    r.devices r.canary (List.length r.waves) r.seed
    (if r.faults then "on" else "off")
    r.loss_percent;
  List.iter
    (fun w ->
      add
        "wave %d [%s v%d]: %s offered=%d staged=%d applied=%d rollback=%d vet=%d auth=%d digest=%d crashed=%d gave_up=%d attest=%d/%d slices=%d\n"
        w.wave w.label w.version
        (if w.promoted then "PROMOTED" else "ABORTED")
        w.offered w.staged w.applied w.refused_rollback w.refused_vet
        w.refused_auth w.refused_digest w.crashed w.gave_up w.attest_ok
        (w.attest_ok + w.attest_failed)
        w.slices;
      (match w.abort_reason with
      | Some reason -> add "  abort: %s\n" reason
      | None -> ());
      if w.newly_quarantined <> [] then
        add "  quarantined: %s\n" (String.concat " " w.newly_quarantined);
      add "  verdicts=sha1:%s\n" (sha1_hex w.verdicts))
    r.waves;
  let cmin = List.fold_left min max_int r.counters in
  let cmax = List.fold_left max 0 r.counters in
  add "counters: min=%d max=%d advanced=%d/%d reset_attempts=%d\n" cmin cmax
    (List.length (List.filter (fun c -> c > 0) r.counters))
    r.devices r.reset_attempts;
  add "controller_cycles=%d device_cycles=%d update_cycles=%d\n"
    r.controller_cycles r.device_cycles r.update_cycles;
  add "rollback_refusal_cycles=%d\n" r.rollback_refusal_cycles;
  add "frames: sent=%d dropped=%d delivered=%d truncated=%d\n" r.frames_sent
    r.frames_dropped r.frames_delivered r.truncated_frames;
  add "quarantined: [%s]\n" (String.concat " " r.quarantined);
  List.iter (fun (k, v) -> add "  %s=%d\n" k v) r.telemetry;
  add "survived: %s\n" (if r.survived then "yes" else "no");
  Buffer.contents b

let to_string r =
  let body = body r in
  body ^ Printf.sprintf "digest: sha1:%s\n" (sha1_hex body)

let equal a b = to_string a = to_string b

let verdicts r = List.map (fun w -> w.verdicts) r.waves

let campaign_failed r =
  List.exists (fun w -> String.contains w.verdicts '?') r.waves
