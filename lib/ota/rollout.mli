(** The fleet-side rollout engine: staged (canary-first) firmware
    campaigns over faulty links, with promotion gated on evidence.

    A campaign runs a list of {e waves} (signed images with strictly
    increasing versions) against a fleet of {!Installer}-backed devices,
    each behind its own seeded {!Tytan_netsim.Link}.  Every wave follows
    the canary state machine:

    {v admit → stage → vet → swap → promote | abort v}

    + the {e canary cohort} (the first [canary] non-quarantined devices)
      is offered the image first, streamed go-back-N in 128-byte chunks;
    + promotion is gated on {e every} canary clearing two bars: the
      device-side admission pipeline (MAC, anti-rollback counter,
      digest, six-check vet) ends in [Ota_applied], {e and} post-swap
      attestation — a static challenge plus an empty-log control-flow
      session — settles [Attested] for the new identity;
    + on success the wave is promoted fleet-wide; on any gate failure
      the wave aborts for the whole fleet and the circuit breaker
      quarantines the offending devices — no non-canary device ever
      stages a byte of an image a canary could not vouch for.

    The breaker treats every offered-but-not-applied device the same
    way: one strike trips it into quarantine ([Q] in the verdict
    string), where it stays for the rest of the campaign — stale
    (rollback-refusing) presenters, leaky images' canaries and mid-swap
    crashers are all pulled from the rotation until an operator
    re-provisions them.

    Determinism: links, fault schedules, nonces and jitter all derive
    from [seed], so two same-seed runs render byte-identical reports
    ({!equal}); the report carries its own digest line. *)

module Telf = Tytan_telf.Telf

type wave_spec = {
  label : string;  (** human name in the report *)
  version : int;  (** monotonic target version; must be ≥ 1 *)
  image : Telf.t;
}

type wave_stats = {
  wave : int;
  label : string;
  version : int;
  offered : int;  (** devices sent an [UpdateOffer] this wave *)
  staged : int;  (** devices that acked the offer and buffered chunks *)
  applied : int;
  refused_rollback : int;
  refused_vet : int;
  refused_auth : int;
  refused_digest : int;
  crashed : int;
  gave_up : int;
  attest_ok : int;  (** canaries that passed post-swap attestation *)
  attest_failed : int;
  verdicts : string;
      (** one char per device: [A]pplied, [R]ollback-refused,
          [V]et-refused, [M]ac-refused, [D]igest-refused, crashed [X],
          [G]ave up, [Q]uarantined (skipped), [.] not offered *)
  promoted : bool;
  aborted : bool;
  abort_reason : string option;
  slices : int;
  newly_quarantined : string list;
}

type report = {
  devices : int;
  canary : int;
  seed : int;
  faults : bool;
  loss_percent : int;
  waves : wave_stats list;
  counters : int list;  (** final per-device monotonic counter values *)
  reset_attempts : int;  (** counter writes the hardware refused *)
  controller_cycles : int;
  device_cycles : int;
  update_cycles : int;  (** device cycles inside OTA frame handling *)
  rollback_refusal_cycles : int;
      (** what the most expensive rollback refusal cost the device:
          offer check + MAC verify + counter read, nothing staged *)
  frames_sent : int;
  frames_dropped : int;
  frames_delivered : int;
  truncated_frames : int;  (** frames bitten by [Frame_truncate] faults *)
  quarantined : string list;
  telemetry : (string * int) list;
      (** counter snapshot (offers, stages, verdict tallies, wave gate
          outcomes), sorted by key.  Collection is zero-cost: clocks are
          bit-identical with telemetry on or off. *)
  survived : bool;
      (** no device was lost to crash/unreachability on a fault-free
          run; legitimate refusals (rollback, vet) do not count
          against survival *)
}

val run :
  devices:int ->
  canary:int ->
  seed:int ->
  ?faults:bool ->
  ?loss_percent:int ->
  ?obs:Tytan_obs.Obs.Log.t ->
  platform_key_of:(serial:string -> bytes) ->
  incumbent:Telf.t ->
  wave_spec list ->
  report
(** Run a campaign.  [canary] must be in [1..devices] ([canary =
    devices] is a flat rollout — no gate, every device is a canary).
    [platform_key_of] supplies each device's platform key (normally
    [Registry.platform_key]); Ka is derived on both sides and the
    derivations charged to the respective clocks.  [incumbent] is the
    image every device boots running (counter 0).  With [?faults] a
    seeded schedule arms truncated update frames, counter-reset
    attempts and mid-swap canary crashes, and the links additionally
    corrupt, duplicate and reorder.

    With [?obs] every offer, stage, verdict, wave gate decision and
    quarantine is recorded in the flight recorder: wave correlation ids
    [ota/wave-N] parent per-device session ids [ota/<serial>/wN], with
    timestamps on the campaign's global slice axis.  Recording charges
    no cycles — an observed run is bit-identical to an unobserved
    one. *)

val fault_events :
  seed:int -> devices:int -> waves:int -> Tytan_fault.Fault_plan.event list
(** The deterministic OTA chaos schedule [?faults] arms (exposed for
    tests and the CLI's plan rendering). *)

val body : report -> string
val to_string : report -> string
(** [body] plus a trailing [digest: sha1:…] line over the body. *)

val equal : report -> report -> bool
(** Rendering equality — the determinism check. *)

val verdicts : report -> string list
(** Per-wave verdict strings, campaign order. *)

val campaign_failed : report -> bool
(** True when any device verdict is still pending ([?]) — an engine
    invariant violation, distinct from honest refusals. *)
