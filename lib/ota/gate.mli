(** The admission gates every firmware image must clear — one code path
    shared by the OTA installer (device-side, at staging), the rollout
    engine (canary promotion) and the swarm campaign's pre-campaign
    rollout, so a leaky image and a stale version are refused by the
    same logic wherever they are presented. *)

open Tytan_telf

type verdict = {
  accepted : bool;  (** {!Tytan_analysis.Tycheck.strict_ok} *)
  refusal : string option;
      (** the first non-clean finding (a proven violation when there is
          one, else the first unknown) when the image was refused *)
  vet_cycles : int;
      (** what a device's loader charges for the six-check vet of this
          image: [vet_base + (vet_per_instruction + vet_flow) · slots] *)
}

val vet : Telf.t -> verdict
(** Run the six-check [Tycheck.flow_config] analysis.  Pure function of
    the binary — a refusal is platform-wide.  The caller charges
    [vet_cycles] to whichever clock did the work. *)

val version_ok : counter:int -> version:int -> bool
(** The anti-rollback gate: an offer is fresh iff its authenticated
    version is {e strictly} above the device's monotonic counter. *)
