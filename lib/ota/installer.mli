(** The device-side OTA endpoint: admit → stage → vet → swap.

    An installer owns what the update protocol can observe of a device —
    its attestation key, its monotonic counter and the identity of what
    it runs — and drives the whole admission pipeline for one device:

    + {e admit}: an {!Tytan_netsim.Protocol.UpdateOffer} is accepted
      only if its MAC ({!Tytan_core.Attestation.update_mac} under Ka)
      verifies {e and} its authenticated version strictly beats the
      monotonic counter ({!Gate.version_ok}).  A stale version is a
      rollback: refused at the door, nothing staged, the refusal
      latency individually measurable;
    + {e stage}: chunks assemble go-back-N into a buffer committed to
      nothing — the cumulative ack names the next offset needed, so a
      lossy or truncating link costs retransmissions, not corruption;
    + {e vet}: once assembled, the image must match the authenticated
      digest and identity, decode as TELF, and clear the six-check
      {!Gate.vet};
    + {e swap}: only then does the device charge the atomic swap,
      advance the counter to the authenticated version (each NV tick
      charged), persist the counter snapshot, and adopt the identity.

    The installer also answers static and control-flow attestation
    challenges for whatever it currently runs, so post-swap attestation
    needs no second agent.  All crypto is charged to the device clock by
    compression count; counter traffic at the
    {!Tytan_core.Cost_model.counter_read}/[counter_increment] rates. *)

open Tytan_core
open Tytan_machine

type t

val create :
  serial:string ->
  ka:bytes ->
  clock:Cycles.t ->
  counter:Devices.Monotonic_counter.t ->
  loaded:Task_id.t ->
  ?persist:(bytes -> unit) ->
  unit ->
  t
(** [persist] receives the counter's {!Devices.Monotonic_counter.save}
    snapshot after every advance — the hook a device wires to its sealed
    storage. *)

val on_frame : t -> bytes -> Tytan_netsim.Protocol.message list
(** Feed one wire frame; returns the replies to send.  Malformed frames
    are dropped (defensive decode).  A crashed device returns nothing
    until {!clear_crash}. *)

val serial : t -> string
val loaded : t -> Task_id.t
val counter : t -> Devices.Monotonic_counter.t
val counter_value : t -> int
val activations : t -> int
val rollback_refusals : t -> int
val vet_refusals : t -> int
val auth_refusals : t -> int
val digest_refusals : t -> int
val staged_bytes : t -> int
val chunks_received : t -> int

val malformed : t -> int
(** Frames that died in the defensive decoder (truncated or corrupted)
    — dropped unanswered. *)

val update_cycles : t -> int
(** Device cycles spent inside OTA frame handling so far. *)

val last_refusal_cycles : t -> int
(** Device cycles the most recent rollback refusal cost (offer check +
    MAC verify + counter read) — the rollback-refusal latency. *)

val arm_crash : t -> unit
(** Arm a {!Tytan_fault.Fault_plan.Canary_crash}: the next activation
    dies inside the swap window — staged image abandoned, counter not
    advanced, device silent for the rest of the wave. *)

val crashed : t -> bool
val clear_crash : t -> unit

val attempt_counter_reset : t -> unit
(** A {!Tytan_fault.Fault_plan.Counter_reset}: an MMIO write to the
    counter's value register.  The hardware refuses and counts it. *)

val reset_attempts : t -> int
