open Tytan_core
open Tytan_netsim
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Fault_plan = Tytan_fault.Fault_plan
module Telemetry = Tytan_telemetry.Telemetry
module Registry = Tytan_provision.Registry
module Fleet = Tytan_provision.Fleet
module Obs = Tytan_obs.Obs

type config = {
  max_pending : int;
  max_inflight : int;
  bucket_capacity : int;
  bucket_refill_slices : int;
  store_capacity : int;
  deadline_slices : int;
  max_attempts : int;
  backoff : Verifier.backoff;
  breaker_threshold : int;
  quarantine_slices : int;
  epoch_slices : int;
  slice_cycles : int;
  aggregation : Aggregator.kind;
}

let default_config =
  {
    max_pending = 64;
    max_inflight = 128;
    bucket_capacity = 4;
    bucket_refill_slices = 16;
    store_capacity = 512;
    deadline_slices = 96;
    max_attempts = 6;
    backoff = Verifier.default_backoff;
    breaker_threshold = 3;
    quarantine_slices = 256;
    epoch_slices = 64;
    slice_cycles = 32_000;
    aggregation = Aggregator.Rebuild;
  }

type refusal =
  | Busy
  | Rate_limited
  | Quarantined

let refusal_label = function
  | Busy -> "busy"
  | Rate_limited -> "rate-limited"
  | Quarantined -> "quarantined"

type admission =
  | Admitted
  | Shed of refusal

type session_kind =
  | Static
  | Batched
  | Cfa

(* What the settle sweep records; Gave_up and a crossed deadline both
   land in [Timed_out] — from the service's point of view the session
   consumed its budget without an answer either way. *)
type verdict =
  | V_attested
  | V_refused
  | V_timed_out
  | V_cfa_rejected

(* Same lightweight prover as [Swarm]: the protocol can only observe a
   device's uplink, key and loaded identity, so that is all we model —
   plus the stall/late windows the gateway fault kinds drive. *)
type prover = {
  serial : string;
  link : Link.t;
  ka : bytes;
  id : Task_id.t;
  mutable stall_until : int;
  mutable late_until : int;
  mutable late_extra : int;
}

(* Gateway-side per-device state, LRU-bounded: the cached Ka, the token
   bucket and the circuit breaker.  Evicting an entry forgets all three
   — re-admission re-derives the key (and re-charges it). *)
type dev_state = {
  mutable ka : bytes;
  mutable tokens : int;
  mutable refill_at : int;
  mutable streak : int;
  mutable quarantined_until : int;
  mutable last_used : int;
}

type session = {
  s_serial : string;
  s_device : int;
  s_kind : session_kind;
  s_corr : string;  (* correlation id in the flight recorder *)
  verifier : Verifier.t;
  admitted_at : int;
  mutable started_at : int;  (* -1 while still queued *)
}

type t = {
  cfg : config;
  seed : int;
  faults : bool;
  loss_percent : int;
  registry : Registry.t;
  fw_id : Task_id.t;
  genesis : bytes;  (* empty CFA log head for fw_id *)
  provers : prover array;
  index_of : (string, int) Hashtbl.t;  (* serial -> prover index *)
  store : (string, dev_state) Hashtbl.t;
  by_seq : (string * int, session) Hashtbl.t;  (* live-session demux *)
  clock : Cycles.t;  (* verifier side *)
  device_clock : Cycles.t;
  telemetry : Telemetry.t;
  aggregator : Aggregator.t;
  obs : Obs.Log.t option;
  mutable obs_epoch : int;  (* last epoch an Epoch_opened was recorded for *)
  arrival_prng : Fault_plan.Prng.t;
  pending_q : session Queue.t;
  mutable inflight : session list;
  mutable inflight_n : int;
  mutable now : int;
  mutable fault_queue : Fault_plan.event list;
  mutable fault_counts : (string * int) list;
  mutable arrivals : int;
  mutable admitted : int;
  mutable attested : int;
  mutable refused : int;
  mutable timed_out : int;
  mutable cfa_rejected : int;
  mutable shed_busy : int;
  mutable shed_rate_limited : int;
  mutable shed_quarantined : int;
  mutable max_queue_depth : int;
  mutable quarantine_trips : int;
  mutable quarantined_serials : string list;
  mutable evictions : int;
  mutable key_derivations : int;
  mutable malformed : int;
  mutable stale : int;
  mutable unknown : int;
  mutable latencies : int list;  (* settled sessions, newest first *)
  mutable closed_next : int array;
      (* per-device slice of the next closed-loop request; [||] in
         open-loop mode.  A device with a session in flight is parked
         at [max_int] until {!settle} reschedules it. *)
  mutable closed_think : int;
}

let serial_of i = Printf.sprintf "dev-%05d" i

(* Crypto cycles charged by sampling the global compression counters —
   the same discipline as [Swarm.charged]. *)
let charged clock f =
  let s1 = Crypto.Sha1.total_compressions () in
  let s2 = Crypto.Sha256.total_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.total_compressions () - s1 in
  let d2 = Crypto.Sha256.total_compressions () - s2 in
  if d1 > 0 then Cycles.charge clock (d1 * Cost_model.crypto_per_compression);
  if d2 > 0 then Cycles.charge clock (d2 * Cost_model.sha256_per_compression);
  r

(* The gateway-layer chaos schedule: correlated outages, wedged devices
   and deadline-crossing replies, seeded like [Swarm.fault_events] so
   the whole campaign stays a pure function of its tuple. *)
let network_faults ~seed ~devices ~horizon =
  let prng = Fault_plan.Prng.create (seed lxor 0x6A7E) in
  let count = max 2 (devices / 4) in
  let span = max 1 (horizon * 3 / 4) in
  let events =
    List.init count (fun _ ->
        let at = Fault_plan.Prng.int prng span in
        let name = serial_of (Fault_plan.Prng.int prng devices) in
        let kind =
          match Fault_plan.Prng.int prng 3 with
          | 0 ->
              Fault_plan.Burst_loss
                { name; duration = 6 + Fault_plan.Prng.int prng 20 }
          | 1 ->
              Fault_plan.Device_stall
                { name; duration = 8 + Fault_plan.Prng.int prng 24 }
          | _ ->
              Fault_plan.Late_reply
                {
                  name;
                  extra = 4 + Fault_plan.Prng.int prng 10;
                  duration = 8 + Fault_plan.Prng.int prng 16;
                }
        in
        { Fault_plan.at_tick = at; kind })
  in
  (Fault_plan.make ~seed events).Fault_plan.events

let create ?(config = default_config) ?(faults = false) ?(fault_horizon = 256)
    ?(loss_percent = 10) ?obs ~devices ~seed () =
  if devices <= 0 then invalid_arg "Gateway.create: devices must be positive";
  let master =
    Bytes.of_string (Printf.sprintf "serve-master-%08x" (seed land 0xFFFF_FFFF))
  in
  let registry = Registry.create ~master in
  let image = Fleet.reference_image ~seed ~size:512 in
  let fw_id = Task_id.of_image image in
  let clock = Cycles.create () in
  let device_clock = Cycles.create () in
  (* Observation must not perturb the run: zero costs, so enabling
     telemetry leaves every clock bit-identical (the chaos campaign's
     discipline). *)
  let telemetry = Telemetry.create ~per_event_cost:0 ~per_span_cost:0 clock in
  Telemetry.enable telemetry;
  let corrupt_percent = if faults then 3 else 0 in
  let index_of = Hashtbl.create (devices * 2) in
  let genesis =
    charged device_clock (fun () -> Attestation.cf_genesis ~id:fw_id)
  in
  let provers =
    Array.init devices (fun i ->
        let serial = serial_of i in
        Hashtbl.replace index_of serial i;
        let link =
          Link.create
            ~seed:(((seed * 7919) + (i * 104729) + 31) land 0x3FFF_FFFF)
            ~loss_percent ~corrupt_percent
            ~duplicate_percent:(if faults then 2 else 0)
            ~reorder_percent:(if faults then 2 else 0)
            ()
        in
        let platform_key = Registry.platform_key registry ~serial in
        let ka =
          charged device_clock (fun () -> Attestation.derive_ka ~platform_key)
        in
        {
          serial;
          link;
          ka;
          id = fw_id;
          stall_until = 0;
          late_until = 0;
          late_extra = 0;
        })
  in
  let aggregator =
    Aggregator.create
      ~ka_of:(fun ~serial -> Registry.attestation_key registry ~serial)
      ~clock ~telemetry ~batch_limit:256 ~kind:config.aggregation ()
  in
  (* Epoch-seal events ride the aggregator's observer hook: the sealed
     batch lands under the corr id of the epoch that collected it. *)
  (match obs with
  | Some log ->
      Aggregator.on_seal aggregator (fun ~epoch ~root ~leaves ->
          Obs.Log.record log
            ~corr:(Printf.sprintf "serve/epoch-%d" epoch)
            ~at:(epoch * config.epoch_slices)
            (Obs.Event.Epoch_sealed
               { epoch; root_hex = Crypto.Sha256.to_hex root; leaves }))
  | None -> ());
  {
    cfg = config;
    seed;
    faults;
    loss_percent;
    registry;
    fw_id;
    genesis;
    provers;
    index_of;
    store = Hashtbl.create (config.store_capacity * 2);
    by_seq = Hashtbl.create 1024;
    clock;
    device_clock;
    telemetry;
    aggregator;
    obs;
    obs_epoch = -1;
    arrival_prng = Fault_plan.Prng.create (seed lxor 0xA2211);
    pending_q = Queue.create ();
    inflight = [];
    inflight_n = 0;
    now = 0;
    fault_queue =
      (if faults then network_faults ~seed ~devices ~horizon:fault_horizon
       else []);
    fault_counts = [];
    arrivals = 0;
    admitted = 0;
    attested = 0;
    refused = 0;
    timed_out = 0;
    cfa_rejected = 0;
    shed_busy = 0;
    shed_rate_limited = 0;
    shed_quarantined = 0;
    max_queue_depth = 0;
    quarantine_trips = 0;
    quarantined_serials = [];
    evictions = 0;
    key_derivations = 0;
    malformed = 0;
    stale = 0;
    unknown = 0;
    latencies = [];
    closed_next = [||];
    closed_think = 0;
  }

(* ---- flight recorder -------------------------------------------------- *)

let kind_label = function
  | Static -> "static"
  | Batched -> "batched"
  | Cfa -> "cfa"

let verdict_label = function
  | V_attested -> "attested"
  | V_refused -> "refused"
  | V_timed_out -> "timed-out"
  | V_cfa_rejected -> "cfa-rejected"

let frame_kind = function
  | Protocol.Challenge _ -> "challenge"
  | Protocol.Response _ -> "response"
  | Protocol.Refusal _ -> "refusal"
  | Protocol.CfaChallenge _ -> "cfa-challenge"
  | Protocol.CfaResponse _ -> "cfa-response"
  | Protocol.UpdateOffer _ -> "update-offer"
  | Protocol.UpdateChunk _ -> "update-chunk"
  | Protocol.UpdateAck _ -> "update-ack"

let observe t ~corr event =
  match t.obs with
  | None -> ()
  | Some log -> Obs.Log.record log ~corr ~at:t.now event

(* The epoch correlation id is minted lazily on first use — arrivals in
   a slice precede the service step, so the first event of an epoch can
   be an admission. *)
let epoch_corr t =
  let e = t.now / t.cfg.epoch_slices in
  let corr = Printf.sprintf "serve/epoch-%d" e in
  (match t.obs with
  | Some log when t.obs_epoch <> e ->
      t.obs_epoch <- e;
      ignore (Obs.Log.mint log corr);
      Obs.Log.record log ~corr ~at:t.now (Obs.Event.Epoch_opened { epoch = e })
  | _ -> ());
  corr

let slice t = t.now
let pending_depth t = Queue.length t.pending_q
let inflight_count t = t.inflight_n
let malformed_frames t = t.malformed
let stale_frames t = t.stale
let unknown_frames t = t.unknown

let bump t label =
  t.fault_counts <-
    (match List.assoc_opt label t.fault_counts with
    | Some n -> (label, n + 1) :: List.remove_assoc label t.fault_counts
    | None -> (label, 1) :: t.fault_counts)

let apply_due_faults t =
  let at = t.now in
  let rec go () =
    match t.fault_queue with
    | ev :: rest when ev.Fault_plan.at_tick <= at ->
        t.fault_queue <- rest;
        (match ev.Fault_plan.kind with
        | Fault_plan.Burst_loss { name; duration } -> (
            match Hashtbl.find_opt t.index_of name with
            | Some i ->
                Link.set_burst t.provers.(i).link ~until:(at + duration);
                bump t "burst-loss"
            | None -> ())
        | Fault_plan.Device_stall { name; duration } -> (
            match Hashtbl.find_opt t.index_of name with
            | Some i ->
                let p = t.provers.(i) in
                p.stall_until <- max p.stall_until (at + duration);
                bump t "device-stall"
            | None -> ())
        | Fault_plan.Late_reply { name; extra; duration } -> (
            match Hashtbl.find_opt t.index_of name with
            | Some i ->
                let p = t.provers.(i) in
                p.late_until <- max p.late_until (at + duration);
                p.late_extra <- extra;
                bump t "late-reply"
            | None -> ())
        | _ -> ());
        go ()
    | _ -> ()
  in
  go ()

(* ---- device-state store (LRU, bounded) -------------------------------- *)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun serial st acc ->
        match acc with
        | None -> Some (serial, st)
        | Some (serial', st') ->
            (* Deterministic LRU: oldest last_used, serial breaks ties. *)
            if
              st.last_used < st'.last_used
              || (st.last_used = st'.last_used && serial < serial')
            then Some (serial, st)
            else acc)
      t.store None
  in
  match victim with
  | Some (serial, _) ->
      Hashtbl.remove t.store serial;
      t.evictions <- t.evictions + 1;
      Telemetry.incr t.telemetry ~component:"serve" "evictions";
      if t.obs <> None then
        observe t ~corr:(epoch_corr t) (Obs.Event.Evicted { serial })
  | None -> ()

let lookup_store t ~serial =
  match Hashtbl.find_opt t.store serial with
  | Some st -> st
  | None ->
      if Hashtbl.length t.store >= t.cfg.store_capacity then evict_lru t;
      let ka =
        charged t.clock (fun () -> Registry.attestation_key t.registry ~serial)
      in
      t.key_derivations <- t.key_derivations + 1;
      let st =
        {
          ka;
          tokens = t.cfg.bucket_capacity;
          refill_at = t.now;
          streak = 0;
          quarantined_until = 0;
          last_used = t.now;
        }
      in
      Hashtbl.replace t.store serial st;
      st

let refill t (st : dev_state) =
  let elapsed = t.now - st.refill_at in
  if elapsed >= t.cfg.bucket_refill_slices then begin
    let n = elapsed / t.cfg.bucket_refill_slices in
    st.tokens <- min t.cfg.bucket_capacity (st.tokens + n);
    st.refill_at <- st.refill_at + (n * t.cfg.bucket_refill_slices)
  end

(* ---- sessions --------------------------------------------------------- *)

let cfa_check t (r : Attestation.cfa_report) =
  (* A quiescent device answers with the empty, genesis-anchored log;
     anything else from a device that should be idle is a compromise. *)
  if
    r.Attestation.edge_count = 0
    && Bytes.equal r.Attestation.cf_digest t.genesis
    && Bytes.equal r.Attestation.base_digest t.genesis
  then Ok ()
  else Error "non-empty control-flow log from a quiescent device"

let make_verifier t (st : dev_state) ~serial ~kind ~label =
  let backoff = t.cfg.backoff in
  let max_attempts = t.cfg.max_attempts in
  match kind with
  | Static ->
      Verifier.create ~ka:st.ka ~expected:t.fw_id ~backoff ~max_attempts
        ~refusals_to_settle:2 ~session:label ()
  | Batched ->
      (* Verification delegated to the aggregator's measurement cache;
         the session's own key is unused. *)
      Verifier.create ~ka:Bytes.empty ~expected:t.fw_id ~backoff ~max_attempts
        ~refusals_to_settle:2
        ~check:(fun ~nonce report ->
          Aggregator.check_report t.aggregator ~serial ~expected:t.fw_id ~nonce
            report)
        ~session:label ()
  | Cfa ->
      Verifier.create ~ka:st.ka ~expected:t.fw_id ~backoff ~max_attempts
        ~refusals_to_settle:2
        ~cfa:(fun r -> cfa_check t r)
        ~session:label ()

let draw_kind t =
  match Fault_plan.Prng.int t.arrival_prng 10 with
  | 0 | 1 | 2 | 3 | 4 -> Static
  | 5 | 6 | 7 -> Batched
  | _ -> Cfa

let shed_arrival t ~serial refusal =
  (match refusal with
  | Busy -> t.shed_busy <- t.shed_busy + 1
  | Rate_limited -> t.shed_rate_limited <- t.shed_rate_limited + 1
  | Quarantined -> t.shed_quarantined <- t.shed_quarantined + 1);
  Telemetry.incr t.telemetry ~component:"serve"
    ("shed_" ^ refusal_label refusal);
  if t.obs <> None then
    observe t ~corr:(epoch_corr t)
      (Obs.Event.Session_shed { serial; reason = refusal_label refusal });
  Shed refusal

let arrive t ~device =
  if device < 0 || device >= Array.length t.provers then
    invalid_arg "Gateway.arrive: no such device";
  t.arrivals <- t.arrivals + 1;
  let serial = t.provers.(device).serial in
  let st = lookup_store t ~serial in
  st.last_used <- t.now;
  if t.now < st.quarantined_until then shed_arrival t ~serial Quarantined
  else begin
    refill t st;
    if st.tokens <= 0 then shed_arrival t ~serial Rate_limited
    else if Queue.length t.pending_q >= t.cfg.max_pending then
      shed_arrival t ~serial Busy
    else begin
      st.tokens <- st.tokens - 1;
      t.admitted <- t.admitted + 1;
      let kind = draw_kind t in
      let label = Printf.sprintf "%s/a%06d" serial t.admitted in
      let verifier = make_verifier t st ~serial ~kind ~label in
      (match t.obs with
      | Some log ->
          ignore (Obs.Log.mint log ~parent:(epoch_corr t) label);
          observe t ~corr:label
            (Obs.Event.Session_admitted { serial; kind = kind_label kind })
      | None -> ());
      Queue.push
        {
          s_serial = serial;
          s_device = device;
          s_kind = kind;
          s_corr = label;
          verifier;
          admitted_at = t.now;
          started_at = -1;
        }
        t.pending_q;
      let depth = Queue.length t.pending_q in
      if depth > t.max_queue_depth then t.max_queue_depth <- depth;
      Admitted
    end
  end

let verdict_of = function
  | Verifier.Attested -> V_attested
  | Verifier.Refused -> V_refused
  | Verifier.Gave_up -> V_timed_out
  | Verifier.Cfa_rejected -> V_cfa_rejected
  | Verifier.Pending -> assert false

let settle t (s : session) ~verdict =
  Hashtbl.remove t.by_seq (s.s_serial, Verifier.seq s.verifier);
  let latency = t.now - s.admitted_at in
  t.latencies <- latency :: t.latencies;
  Telemetry.observe t.telemetry ~component:"serve" "session_slices" latency;
  observe t ~corr:s.s_corr
    (Obs.Event.Session_settled
       { serial = s.s_serial; verdict = verdict_label verdict; latency });
  (* Closed loop: the device's client thinks for [closed_think] slices
     after its session concludes, then asks again. *)
  if Array.length t.closed_next > 0 then
    t.closed_next.(s.s_device) <- t.now + t.closed_think;
  (match verdict with
  | V_attested ->
      t.attested <- t.attested + 1;
      Telemetry.incr t.telemetry ~component:"serve" "attested"
  | V_refused ->
      t.refused <- t.refused + 1;
      Telemetry.incr t.telemetry ~component:"serve" "refused"
  | V_timed_out ->
      t.timed_out <- t.timed_out + 1;
      Telemetry.incr t.telemetry ~component:"serve" "timed_out"
  | V_cfa_rejected ->
      t.cfa_rejected <- t.cfa_rejected + 1;
      Telemetry.incr t.telemetry ~component:"serve" "cfa_rejected");
  match Hashtbl.find_opt t.store s.s_serial with
  | None -> ()  (* evicted mid-session; the breaker state went with it *)
  | Some st ->
      let mac_suspect =
        Verifier.rejected_frames s.verifier > 0 && verdict <> V_attested
      in
      let failed =
        verdict = V_timed_out || verdict = V_cfa_rejected || mac_suspect
      in
      if verdict = V_attested then st.streak <- 0
      else if failed then begin
        st.streak <- st.streak + 1;
        if st.streak >= t.cfg.breaker_threshold then begin
          st.streak <- 0;
          st.quarantined_until <- t.now + t.cfg.quarantine_slices;
          t.quarantine_trips <- t.quarantine_trips + 1;
          if not (List.mem s.s_serial t.quarantined_serials) then
            t.quarantined_serials <- s.s_serial :: t.quarantined_serials;
          Telemetry.incr t.telemetry ~component:"serve" "quarantines";
          observe t ~corr:s.s_corr
            (Obs.Event.Breaker_tripped { serial = s.s_serial });
          observe t ~corr:s.s_corr
            (Obs.Event.Quarantined { serial = s.s_serial })
        end
      end

(* ---- frame plumbing --------------------------------------------------- *)

let seq_of = function
  | Protocol.Challenge { seq; _ }
  | Protocol.Response { seq; _ }
  | Protocol.Refusal { seq }
  | Protocol.CfaChallenge { seq; _ }
  | Protocol.CfaResponse { seq; _ }
  | Protocol.UpdateOffer { seq; _ }
  | Protocol.UpdateChunk { seq; _ }
  | Protocol.UpdateAck { seq; _ } ->
      seq

(* The gateway's session demux.  Every inbound frame is classified —
   malformed, unknown revision, stale, or routed to the live session
   whose sequence it carries — and none of the paths can raise: garbage
   ends in a counter, never an exception. *)
let route t (p : prover) frame =
  match Protocol.decode frame with
  | Error e ->
      if Protocol.is_unknown_tag e then begin
        t.unknown <- t.unknown + 1;
        Telemetry.incr t.telemetry ~component:"serve" "unknown_frames"
      end
      else begin
        t.malformed <- t.malformed + 1;
        Telemetry.incr t.telemetry ~component:"serve" "malformed_frames"
      end
  | Ok msg -> (
      match Hashtbl.find_opt t.by_seq (p.serial, seq_of msg) with
      | None ->
          t.stale <- t.stale + 1;
          Telemetry.incr t.telemetry ~component:"serve" "stale_frames"
      | Some s ->
          observe t ~corr:s.s_corr
            (Obs.Event.Frame_received { kind = frame_kind msg });
          (* Static and CFA sessions verify inline, so the frame handler
             is where their crypto burns; the aggregator's check charges
             itself internally — wrapping it would double-count. *)
          (match s.s_kind with
          | Batched -> Verifier.on_frame s.verifier frame
          | Static | Cfa ->
              charged t.clock (fun () -> Verifier.on_frame s.verifier frame)))

let inject_frame t ~device frame =
  if device < 0 || device >= Array.length t.provers then
    invalid_arg "Gateway.inject_frame: no such device";
  route t t.provers.(device) frame

let prover_step t (p : prover) =
  let at = t.now in
  let frames = Link.deliver p.link ~to_:Link.Device ~at in
  (* A stalled device still drains its inbox — the frames just die
     there, exactly like wedged firmware. *)
  if at >= p.stall_until then
    List.iter
      (fun frame ->
        let reply_at = if at < p.late_until then at + p.late_extra else at in
        match Protocol.decode frame with
        | Error _ -> ()
        | Ok (Protocol.Challenge { seq; id; nonce }) ->
            if Task_id.equal id p.id then begin
              let mac =
                charged t.device_clock (fun () ->
                    Attestation.expected_mac ~ka:p.ka ~id ~nonce)
              in
              Link.send p.link ~from:Link.Device ~at:reply_at
                (Protocol.encode
                   (Protocol.Response
                      { seq; report = { Attestation.id; nonce; mac } }))
            end
            else
              Link.send p.link ~from:Link.Device ~at:reply_at
                (Protocol.encode (Protocol.Refusal { seq }))
        | Ok (Protocol.CfaChallenge { seq; id; nonce }) ->
            if Task_id.equal id p.id then begin
              (* Quiescent device: the honest answer is the empty log,
                 anchored at the genesis digest. *)
              let mac =
                charged t.device_clock (fun () ->
                    Attestation.expected_cfa_mac ~ka:p.ka ~id ~nonce
                      ~cf_digest:t.genesis ~base_digest:t.genesis ~edge_count:0)
              in
              let report =
                {
                  Attestation.id;
                  nonce;
                  cf_digest = t.genesis;
                  base_digest = t.genesis;
                  edge_count = 0;
                  edges = [||];
                  mac;
                }
              in
              Link.send p.link ~from:Link.Device ~at:reply_at
                (Protocol.encode (Protocol.CfaResponse { seq; report }))
            end
            else
              Link.send p.link ~from:Link.Device ~at:reply_at
                (Protocol.encode (Protocol.Refusal { seq }))
        | Ok _ -> ())
      frames

(* ---- the service loop ------------------------------------------------- *)

let step t =
  let at = t.now in
  apply_due_faults t;
  if at mod t.cfg.epoch_slices = 0 then begin
    (* Seals the outgoing batch and clears the measurement cache: a
       verdict cached under one nonce epoch must not answer the next. *)
    Aggregator.begin_epoch t.aggregator ~epoch:(at / t.cfg.epoch_slices);
    if t.obs <> None then ignore (epoch_corr t)
  end;
  (* Start queued sessions up to the in-flight cap. *)
  while t.inflight_n < t.cfg.max_inflight && not (Queue.is_empty t.pending_q) do
    let s = Queue.pop t.pending_q in
    s.started_at <- at;
    Hashtbl.replace t.by_seq (s.s_serial, Verifier.seq s.verifier) s;
    t.inflight <- s :: t.inflight;
    t.inflight_n <- t.inflight_n + 1
  done;
  (* Device side: provers answer what reached them. *)
  Array.iter (fun p -> prover_step t p) t.provers;
  (* Remote side: route every arrived frame to its session. *)
  Array.iter
    (fun p -> List.iter (route t p) (Link.deliver p.link ~to_:Link.Remote ~at))
    t.provers;
  (* Poll, enforce deadlines, settle. *)
  let still = ref [] in
  List.iter
    (fun s ->
      if
        Verifier.outcome s.verifier = Verifier.Pending
        && at - s.started_at >= t.cfg.deadline_slices
      then settle t s ~verdict:V_timed_out
      else begin
        (match Verifier.poll s.verifier ~at with
        | Some frame ->
            (match t.obs with
            | Some _ -> (
                match Protocol.decode frame with
                | Ok msg ->
                    observe t ~corr:s.s_corr
                      (Obs.Event.Frame_sent { kind = frame_kind msg })
                | Error _ -> ())
            | None -> ());
            Link.send t.provers.(s.s_device).link ~from:Link.Remote ~at frame
        | None -> ());
        match Verifier.outcome s.verifier with
        | Verifier.Pending -> still := s :: !still
        | outcome -> settle t s ~verdict:(verdict_of outcome)
      end)
    t.inflight;
  t.inflight <- List.rev !still;
  t.inflight_n <- List.length t.inflight;
  Telemetry.set_gauge t.telemetry ~component:"serve" "queue_depth"
    (Queue.length t.pending_q);
  Telemetry.set_gauge t.telemetry ~component:"serve" "inflight" t.inflight_n;
  t.now <- at + 1

(* ---- reports ---------------------------------------------------------- *)

type arrival_mode =
  | Open_loop
  | Closed_loop of { think : int }

type report = {
  devices : int;
  load_slices : int;
  total_slices : int;
  arrival_permille : int;
  think : int option;  (* Some t in closed-loop mode *)
  seed : int;
  faults : bool;
  loss_percent : int;
  arrivals : int;
  admitted : int;
  attested : int;
  refused : int;
  timed_out : int;
  cfa_rejected : int;
  shed_busy : int;
  shed_rate_limited : int;
  shed_quarantined : int;
  max_queue_depth : int;
  queue_bound : int;
  p50_slices : int;
  p99_slices : int;
  p50_cycles : int;
  p99_cycles : int;
  throughput_per_kslice : int;
  quarantined : string list;
  quarantine_trips : int;
  evictions : int;
  key_derivations : int;
  batches : int;
  malformed_frames : int;
  stale_frames : int;
  unknown_frames : int;
  verifier_cycles : int;
  device_cycles : int;
  link : (string * int) list;
  fault_counts : (string * int) list;
  telemetry : (string * int) list;
}

let shed r = r.shed_busy + r.shed_rate_limited + r.shed_quarantined
let settled r = r.attested + r.refused + r.timed_out + r.cfa_rejected

(* Nearest-rank percentile over the exact latency population — not the
   log-bucketed telemetry histogram, so the p99 row in the bench table
   is sharp. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(max 0 (((p * n) + 99) / 100 - 1))

let sum_links provers =
  Array.fold_left
    (fun acc (p : prover) ->
      let counters = Link.counters p.link in
      match acc with
      | [] -> counters
      | _ ->
          List.map2 (fun (k, a) (k', b) ->
              assert (k = k');
              (k, a + b))
            acc counters)
    [] provers

let report_of t ~load_slices ~arrival_permille ~think =
  let sorted = Array.of_list t.latencies in
  Array.sort compare sorted;
  let total = max 1 t.now in
  {
    devices = Array.length t.provers;
    load_slices;
    total_slices = t.now;
    arrival_permille;
    think;
    seed = t.seed;
    faults = t.faults;
    loss_percent = t.loss_percent;
    arrivals = t.arrivals;
    admitted = t.admitted;
    attested = t.attested;
    refused = t.refused;
    timed_out = t.timed_out;
    cfa_rejected = t.cfa_rejected;
    shed_busy = t.shed_busy;
    shed_rate_limited = t.shed_rate_limited;
    shed_quarantined = t.shed_quarantined;
    max_queue_depth = t.max_queue_depth;
    queue_bound = t.cfg.max_pending;
    p50_slices = percentile sorted 50;
    p99_slices = percentile sorted 99;
    p50_cycles = percentile sorted 50 * t.cfg.slice_cycles;
    p99_cycles = percentile sorted 99 * t.cfg.slice_cycles;
    throughput_per_kslice =
      (t.attested + t.refused + t.timed_out + t.cfa_rejected) * 1000 / total;
    quarantined = List.sort compare t.quarantined_serials;
    quarantine_trips = t.quarantine_trips;
    evictions = t.evictions;
    key_derivations = t.key_derivations;
    batches = List.length (Aggregator.batches t.aggregator);
    malformed_frames = t.malformed;
    stale_frames = t.stale;
    unknown_frames = t.unknown;
    verifier_cycles = Cycles.now t.clock;
    device_cycles = Cycles.now t.device_clock;
    link = sum_links t.provers;
    fault_counts = List.sort compare t.fault_counts;
    telemetry =
      List.map
        (fun (k, v) -> (Telemetry.key_to_string k, v))
        (Telemetry.counters t.telemetry);
  }

let run ?(config = default_config) ?(faults = false) ?(loss_percent = 10)
    ?(arrival = Open_loop) ?obs ~devices ~slices ~arrival_permille ~seed () =
  if slices <= 0 then invalid_arg "Gateway.run: slices must be positive";
  if arrival_permille < 0 then
    invalid_arg "Gateway.run: arrival_permille must be non-negative";
  (match arrival with
  | Closed_loop { think } when think < 0 ->
      invalid_arg "Gateway.run: think must be non-negative"
  | _ -> ());
  let t =
    create ~config ~faults ~fault_horizon:slices ~loss_percent ?obs ~devices
      ~seed ()
  in
  (match arrival with
  | Open_loop -> ()
  | Closed_loop { think } ->
      (* Stagger first requests so the whole population does not slam
         the gateway at slice 0. *)
      t.closed_next <- Array.init devices (fun i -> i mod (think + 1));
      t.closed_think <- think);
  for _ = 1 to slices do
    (match arrival with
    | Open_loop ->
        (* Open-loop offered load: arrival_permille / 1000 arrivals per
           slice in expectation, device chosen uniformly.  The generator
           does not wait for the gateway — that is what makes overload
           possible. *)
        let n =
          (arrival_permille / 1000)
          + (if
               Fault_plan.Prng.int t.arrival_prng 1000
               < arrival_permille mod 1000
             then 1
             else 0)
        in
        for _ = 1 to n do
          ignore (arrive t ~device:(Fault_plan.Prng.int t.arrival_prng devices))
        done
    | Closed_loop { think } ->
        (* Closed-loop load: each device has one outstanding request at
           most; the next is issued [think] slices after the previous
           one settles (or is shed).  The generator waits for the
           gateway — load self-limits, which is what changes the shed
           profile versus the open-loop generator. *)
        Array.iteri
          (fun d due ->
            if due <= t.now then
              match arrive t ~device:d with
              | Admitted -> t.closed_next.(d) <- max_int
              | Shed _ -> t.closed_next.(d) <- t.now + think + 1)
          t.closed_next);
    step t
  done;
  (* Drain: no new arrivals; the deadline bounds every started session,
     so the queue empties in bounded time.  The cap is a backstop. *)
  let drain_cap =
    t.now
    + ((config.max_pending / max 1 config.max_inflight) + 3)
      * config.deadline_slices
    + config.backoff.Verifier.cap_slices
  in
  while
    (t.inflight_n > 0 || not (Queue.is_empty t.pending_q)) && t.now < drain_cap
  do
    step t
  done;
  (* Backstop only: anything past the cap is forced to a conclusion so
     [settled = admitted] is an invariant of every report. *)
  Queue.iter (fun s -> settle t s ~verdict:V_timed_out) t.pending_q;
  Queue.clear t.pending_q;
  List.iter (fun s -> settle t s ~verdict:V_timed_out) t.inflight;
  t.inflight <- [];
  t.inflight_n <- 0;
  Aggregator.flush t.aggregator;
  report_of t ~load_slices:slices ~arrival_permille
    ~think:
      (match arrival with
      | Open_loop -> None
      | Closed_loop { think } -> Some think)

let sha1_hex s = Crypto.Sha1.to_hex (Crypto.Sha1.digest_string s)

let body r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "serve campaign: devices=%d slices=%d(+%d drain) rate=%d/1000 seed=%d faults=%s loss=%d%%\n"
    r.devices r.load_slices
    (r.total_slices - r.load_slices)
    r.arrival_permille r.seed
    (if r.faults then "on" else "off")
    r.loss_percent;
  (match r.think with
  | Some think -> add "arrival=closed think=%d\n" think
  | None -> ());
  add "arrivals=%d admitted=%d shed=%d (busy=%d rate=%d quarantine=%d)\n"
    r.arrivals r.admitted (shed r) r.shed_busy r.shed_rate_limited
    r.shed_quarantined;
  add "verdicts: attested=%d refused=%d timed_out=%d cfa_rejected=%d\n"
    r.attested r.refused r.timed_out r.cfa_rejected;
  add "queue: max_depth=%d bound=%d\n" r.max_queue_depth r.queue_bound;
  add "latency: p50=%d p99=%d slices (p50=%d p99=%d cycles)\n" r.p50_slices
    r.p99_slices r.p50_cycles r.p99_cycles;
  add "throughput=%d settled/kslice\n" r.throughput_per_kslice;
  add "quarantine: trips=%d devices=[%s]\n" r.quarantine_trips
    (String.concat " " r.quarantined);
  add "store: evictions=%d key_derivations=%d\n" r.evictions r.key_derivations;
  add "batches=%d\n" r.batches;
  add "frames: malformed=%d stale=%d unknown=%d\n" r.malformed_frames
    r.stale_frames r.unknown_frames;
  add "verifier_cycles=%d device_cycles=%d\n" r.verifier_cycles r.device_cycles;
  List.iter (fun (k, v) -> add "  link.%s=%d\n" k v) r.link;
  List.iter (fun (k, v) -> add "  fault.%s=%d\n" k v) r.fault_counts;
  List.iter (fun (k, v) -> add "  %s=%d\n" k v) r.telemetry;
  Buffer.contents b

let to_string r =
  let body = body r in
  body ^ Printf.sprintf "digest: sha1:%s\n" (sha1_hex body)

let equal a b = to_string a = to_string b
