(** The verifier gateway: a long-lived attestation service.

    Everything below [lib/serve] attests {e one} device per session and
    assumes someone re-creates the session when it ends.  A deployment
    has neither luxury: a fleet's verifier is a service that thousands of
    devices hit continuously, and what matters is not whether a single
    MAC checks but whether the service {e degrades gracefully} when the
    offered load exceeds what it can carry.  The gateway multiplexes
    many concurrent {!Tytan_netsim.Verifier} sessions — static, batched
    (through {!Tytan_netsim.Aggregator}) and CFA — over per-device lossy
    links, under an explicit robustness regime:

    - {b Admission control}: arrivals queue in a bounded pending queue;
      when it is full the gateway sheds the session with a typed {!Busy}
      refusal instead of growing without bound.  At most
      [max_inflight] sessions run concurrently.
    - {b Rate limiting}: a per-device token bucket; a device hammering
      the gateway is refused {!Rate_limited} without consuming protocol
      resources.
    - {b Deadlines}: every started session carries a hard deadline on
      top of the verifier's own retransmit schedule; crossing it settles
      the session as timed out, so no session can pin gateway state
      forever.
    - {b Device-state store}: per-device keys and breaker state live in
      a bounded LRU store; above capacity the least-recently-used entry
      is evicted and the key re-derived (and re-charged) on the device's
      next arrival.
    - {b Circuit breaker}: a device whose sessions repeatedly time out
      or fail MAC checks is quarantined for a while — its arrivals are
      refused {!Quarantined} — so a broken or hostile device cannot
      monopolise the retransmit budget.

    The gateway is a discrete-event simulation over slices, seeded end
    to end: the same [(devices, slices, arrival rate, seed, faults)]
    tuple reproduces verdict counts, latency percentiles and shed
    counters bit for bit.  {!Tytan_fault.Fault_plan} supplies the
    network-layer chaos vocabulary ([Burst_loss], [Device_stall],
    [Late_reply]); this module applies it.  See DESIGN.md §14. *)

open Tytan_netsim

type config = {
  max_pending : int;  (** pending-queue bound; beyond it arrivals shed *)
  max_inflight : int;  (** concurrent active sessions *)
  bucket_capacity : int;  (** per-device token-bucket burst size *)
  bucket_refill_slices : int;  (** slices per token refilled *)
  store_capacity : int;  (** LRU device-state entries kept *)
  deadline_slices : int;  (** hard per-session deadline once started *)
  max_attempts : int;  (** verifier retransmit budget per session *)
  backoff : Verifier.backoff;  (** retransmit schedule *)
  breaker_threshold : int;
      (** consecutive failed sessions before a device is quarantined *)
  quarantine_slices : int;  (** how long a tripped breaker holds *)
  epoch_slices : int;  (** aggregator nonce-epoch length *)
  slice_cycles : int;  (** nominal cycles per slice, for latency rows *)
  aggregation : Aggregator.kind;
      (** how the aggregator carries sealed state across epochs:
          {!Aggregator.Rebuild} (the default — each epoch's batches are
          built from scratch, the original gateway behaviour, bit for
          bit) or {!Aggregator.Retain} (one persistent leaf per device,
          dirty-path recomputation, sparse epoch deltas). *)
}

val default_config : config
(** pending 64, inflight 128, bucket 4 cap / 16 slices per token,
    store 512, deadline 96, 6 attempts under {!Verifier.default_backoff},
    breaker 3, quarantine 256, epoch 64, 32 000 cycles per slice,
    [Rebuild] aggregation. *)

type refusal =
  | Busy  (** pending queue full — load shed *)
  | Rate_limited  (** the device's token bucket is empty *)
  | Quarantined  (** the device's circuit breaker is open *)

val refusal_label : refusal -> string

type admission =
  | Admitted
  | Shed of refusal

type session_kind =
  | Static  (** plain challenge/response, inline HMAC check *)
  | Batched  (** verification routed through the Merkle aggregator *)
  | Cfa  (** control-flow challenge; quiescent devices answer an
             empty, genesis-anchored log *)

type t

val create :
  ?config:config ->
  ?faults:bool ->
  ?fault_horizon:int ->
  ?loss_percent:int ->
  ?obs:Tytan_obs.Obs.Log.t ->
  devices:int ->
  seed:int ->
  unit ->
  t
(** A gateway over [devices] provisioned provers on seeded lossy links
    (default 10% loss; with [~faults] the links also corrupt, duplicate
    and reorder, and a seeded {!Tytan_fault.Fault_plan} schedule of
    burst-loss, device-stall and late-reply events over the first
    [fault_horizon] slices is applied as it falls due).

    With [?obs] every admission, shed, frame, verdict, breaker trip and
    epoch seal is recorded in the flight recorder: epoch correlation
    ids [serve/epoch-N] parent per-session ids [serial/aNNNNNN], so any
    outcome traces back through its causal chain.  Recording charges no
    cycles — an observed run is bit-identical to an unobserved one. *)

val step : t -> unit
(** Advance one slice: apply due faults, roll the aggregator epoch,
    start pending sessions up to the in-flight cap, run every prover,
    route device replies to their sessions, poll and settle. *)

val arrive : t -> device:int -> admission
(** One attestation request for [device] at the current slice — the
    admission decision is returned and recorded either way. *)

val inject_frame : t -> device:int -> bytes -> unit
(** Feed a raw frame to the gateway as if it had arrived from [device]
    — the fuzzing hook.  Whatever the bytes, the gateway classifies
    (malformed / unknown-revision / stale / session-routed) and never
    raises. *)

val slice : t -> int

val pending_depth : t -> int

val inflight_count : t -> int

val malformed_frames : t -> int
(** Frames that failed {!Tytan_netsim.Protocol.decode}. *)

val unknown_frames : t -> int
(** Well-formed frames from an unknown (newer) protocol revision. *)

val stale_frames : t -> int
(** Well-formed frames whose sequence matches no live session — late
    replies that crossed a deadline. *)

val network_faults :
  seed:int -> devices:int -> horizon:int -> Tytan_fault.Fault_plan.event list
(** The seeded gateway-layer fault schedule [create ~faults:true] uses —
    exposed so tests can pin its determinism. *)

type arrival_mode =
  | Open_loop
      (** the generator offers load blindly ([arrival_permille] per 1000
          slices, uniform over devices) — overload is possible *)
  | Closed_loop of { think : int }
      (** each device keeps at most one request outstanding and issues
          the next [think] slices after the previous settles (or is
          shed) — load self-limits, which reshapes the shed profile *)

type report = {
  devices : int;
  load_slices : int;  (** slices during which arrivals were offered *)
  total_slices : int;  (** including the drain tail *)
  arrival_permille : int;  (** offered load: arrivals per 1000 slices *)
  think : int option;  (** [Some t] when the campaign ran closed-loop *)
  seed : int;
  faults : bool;
  loss_percent : int;
  arrivals : int;
  admitted : int;
  attested : int;
  refused : int;
  timed_out : int;  (** deadline crossed or retransmit budget exhausted *)
  cfa_rejected : int;
  shed_busy : int;
  shed_rate_limited : int;
  shed_quarantined : int;
  max_queue_depth : int;  (** never exceeds [max_pending] *)
  queue_bound : int;  (** the configured [max_pending], for the record *)
  p50_slices : int;  (** median admitted-to-settled latency *)
  p99_slices : int;
  p50_cycles : int;  (** the same at [slice_cycles] per slice *)
  p99_cycles : int;
  throughput_per_kslice : int;  (** settled sessions per 1000 slices *)
  quarantined : string list;  (** serials ever quarantined, sorted *)
  quarantine_trips : int;
  evictions : int;  (** LRU device-state evictions *)
  key_derivations : int;  (** gateway-side Ka derivations (re-admissions
                              after eviction derive again) *)
  batches : int;  (** Merkle batches sealed by the aggregator *)
  malformed_frames : int;
  stale_frames : int;
  unknown_frames : int;
  verifier_cycles : int;
  device_cycles : int;
  link : (string * int) list;  (** summed link counters, fixed order *)
  fault_counts : (string * int) list;  (** applied gateway faults, sorted *)
  telemetry : (string * int) list;  (** counter snapshot, sorted *)
}

val shed : report -> int
(** Total shed arrivals across the three refusal kinds. *)

val settled : report -> int
(** [attested + refused + timed_out + cfa_rejected]; equals [admitted]
    once a campaign has drained. *)

val run :
  ?config:config ->
  ?faults:bool ->
  ?loss_percent:int ->
  ?arrival:arrival_mode ->
  ?obs:Tytan_obs.Obs.Log.t ->
  devices:int ->
  slices:int ->
  arrival_permille:int ->
  seed:int ->
  unit ->
  report
(** A full campaign: offer seeded load for [slices] slices, then stop
    arrivals and drain until every admitted session settles.  Anything
    still unsettled at the (generous) drain cap is force-timed out, so
    [settled = admitted] always holds.

    [?arrival] (default {!Open_loop}) picks the generator.  In
    {!Closed_loop} mode [arrival_permille] is recorded but does not
    drive arrivals — the population's size and think time do; first
    requests are staggered over [think + 1] slices. *)

val to_string : report -> string
(** Deterministic rendering ending in a [digest: sha1:...] line over the
    whole body; two runs are bit-identical iff their renderings are. *)

val equal : report -> report -> bool
(** Rendering equality — the differential / [--verify] comparison. *)
