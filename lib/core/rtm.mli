(** The Root of Trust for Measurement (RTM) task.

    The RTM computes each task's identity: the SHA-1 digest (truncated to
    64 bits) of the task's position-independent binary — header metadata
    plus the image with relocation {e reverted}, so the measurement does
    not depend on where the task happens to be loaded.  To meet real-time
    requirements, measurement is interruptible: it proceeds one 64-byte
    block per {!step_measure} call, and the measured task cannot run (it
    is not yet scheduled) nor be modified (the EA-MPU rules are already
    installed) while it is measured.

    The RTM also maintains the list of identities and memory locations of
    all loaded tasks — the directory the IPC proxy uses to resolve
    receivers and authenticate senders. *)

open Tytan_machine
open Tytan_rtos
open Tytan_telf

type entry = {
  id : Task_id.t;
  tcb : Tcb.t;
  base : Word.t;  (** load base of the task's allocation *)
  telf : Telf.t;  (** binary metadata (sizes, relocation table) *)
  slots : int list;  (** EA-MPU slots owned by this task *)
  provider : string;  (** stakeholder that supplied the task *)
}

type t

val create :
  ?telemetry:Tytan_telemetry.Telemetry.t -> Cpu.t -> code_eip:Word.t -> t
(** [telemetry] (default: a fresh disabled registry) records one
    ["rtm.measure"] span per measurement — opened by {!start_measure},
    closed when {!step_measure} completes — and a measurement counter. *)

val code_eip : t -> Word.t

val identity_of_telf : Telf.t -> Task_id.t
(** The reference identity a verifier computes from the distributed
    binary: SHA-1 over the canonical header (entry and section sizes) and
    the position-independent image.  {!measure} of a correctly loaded task
    yields exactly this value. *)

(** {2 Measurement} *)

type job
(** An in-progress interruptible measurement. *)

val start_measure : t -> base:Word.t -> telf:Telf.t -> job
(** Snapshot the loaded image (reading it under the RTM's identity),
    revert its relocation, and charge the revert cost. *)

val step_measure : t -> job -> [ `More | `Done of Task_id.t ]
(** Hash one block, charging {!Cost_model.rtm_per_block}. *)

val measure : t -> base:Word.t -> telf:Telf.t -> Task_id.t
(** Run a whole measurement without yielding (benchmarks; also the
    non-interruptible-loader ablation). *)

val blocks_of : Telf.t -> int
(** 64-byte SHA-1 blocks a measurement of this binary processes. *)

(** {2 Task directory} *)

val register : t -> entry -> unit

val unregister : t -> Task_id.t -> unit
(** Remove every entry with this identity. *)

val unregister_tcb : t -> Tcb.t -> unit
(** Remove one specific task's entry.  Two instances of the same binary
    share an identity (that is the design — the identity names the
    code), so unloading one of them must not evict the other from the
    directory. *)

val find : t -> Task_id.t -> entry option
val find_by_eip : t -> Word.t -> entry option
(** Which loaded task owns this code address — sender identification for
    the IPC proxy. *)

val find_by_tcb : t -> Tcb.t -> entry option
val all : t -> entry list
val measurements : t -> int
(** Completed measurements (statistics). *)
