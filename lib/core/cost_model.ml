let freertos_save = 38
let freertos_restore = 254
let int_mux_store_context = 38
let int_mux_wipe_registers = 16
let int_mux_branch = 41
let int_mux_restore_branch = 106
let int_mux_restore_assist = 214
let reloc_base = 37
let reloc_per_address = 660
let eampu_find_slot_base = 76
let eampu_find_slot_step = 19
let eampu_policy_check = 824
let eampu_write_rule = 225
let rtm_measure_base = 4_300
let rtm_per_block = 3_933
let rtm_revert_base = 114
let rtm_revert_per_address = 518
let crypto_per_compression = rtm_per_block
let loader_parse_header = 500
let loader_alloc = 300
let loader_copy_per_byte = 50
let loader_stack_prep = 400
let loader_register = 300
let loader_copy_chunk = 512
let vet_base = 900
let vet_per_instruction = 120
let vet_flow = 60
let cfa_log_event = 48
let ipc_origin_lookup = 76
let ipc_sender_lookup = 214
let ipc_receiver_lookup = 214
let ipc_copy_message = 512
let ipc_finish = 192

let ipc_proxy_total =
  ipc_origin_lookup + ipc_sender_lookup + ipc_receiver_lookup
  + ipc_copy_message + ipc_finish

let boot_verify_per_block = rtm_per_block
let telemetry_event = 24
let telemetry_span = 56
let pmu_read = 34
let update_swap_base = 350
let update_migrate_per_word = 16
let sha256_per_compression = crypto_per_compression * 145 / 100
let swarm_cache_lookup = 24
let swarm_root_check = 40
