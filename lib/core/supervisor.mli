(** Watchdog-driven task supervision with attestation-gated recovery.

    The supervisor keeps a set of tasks alive across faults while refusing
    to revive anything it can no longer vouch for.  For each supervised
    task it holds the reference identity computed from the distributed
    binary ({!Rtm.identity_of_telf}) and reacts to two failure signals:

    - {e Crash}: the task exits without the supervisor having asked it to
      (a fault, an EA-MPU violation, an illegal opcode, a kill).  The
      platform's pre-exit hook fires while the dead task's image is still
      in memory, so the supervisor re-measures it {e post mortem}.
    - {e Hang}: the task's watchdog bites — [timeout] cycles passed with
      no kick.  The supervisor kicks a task's watchdog only while it
      observes scheduling progress ([Tcb.activations] advancing), so a
      wedged or suspended task starves its watchdog without any
      cooperation from the task itself.

    In both cases recovery is gated on measurement: if the re-measured
    identity still matches the reference, the task is scheduled for
    restart (through the ordinary interruptible loader path) with
    exponential backoff; if it does not — e.g. a bit flip corrupted the
    image — the task is {e quarantined} and never restarted.  After a
    restart the freshly measured identity is checked once more before the
    task is declared healthy and its watchdog re-armed.

    All decisions emit [Trace] events under the ["supervisor"] and
    ["watchdog"] sources. *)

open Tytan_machine
open Tytan_rtos

type policy = {
  max_restarts : int;  (** restarts before giving up *)
  backoff_base_ticks : int;  (** delay before the first restart *)
  backoff_cap_ticks : int;  (** upper bound on the doubling delay *)
}

val default_policy : policy
(** 3 restarts; backoff 2, 4, 8 ticks; cap 16. *)

type task_state =
  | Running
  | Waiting_restart  (** backoff timer armed *)
  | Restarting  (** reload submitted to the loader *)
  | Quarantined  (** re-measurement mismatched the reference; never revived *)
  | Gave_up  (** restart budget exhausted *)

type t

val create : Platform.t -> t
(** Installs the platform pre-exit hook, the loader's completion callback
    and a per-tick kick timer.  @raise Invalid_argument on a baseline
    (non-secure) platform — supervision needs the RTM. *)

val supervise :
  t -> Tcb.t -> ?policy:policy -> ?watchdog:Devices.Watchdog.t -> unit -> unit
(** Start supervising a loaded task (it must be in the RTM directory;
    name, priority, security and provider are taken from there).  When a
    watchdog is given it is kicked, enabled, and its IRQ line bound to the
    supervisor's bite handler. *)

val state_of : t -> name:string -> task_state option
val tcb_of : t -> name:string -> Tcb.t option
(** The currently live TCB (changes across restarts). *)

(** {2 Statistics} *)

val restarts : t -> int
(** Successful supervised restarts (re-attested and running). *)

val quarantined : t -> int
val gave_up : t -> int
val bites : t -> int

val report : t -> (string * task_state * int) list
(** Per-task: name, state, restart count. *)
