(** Local and remote attestation.

    The identity [id_t] computed by the RTM serves directly as the local
    attestation report: the EA-MPU guarantees only the RTM writes the
    directory, so a local verifier reading an identity out of it knows it
    is genuine.

    Remote attestation proves [id_t] to a verifier across a network: the
    Remote Attest component MACs the verifier's nonce together with the
    identity under an attestation key [Ka] derived from the platform key
    [Kp].  Only Remote Attest can read [Kp] (EA-MPU rule), so only the
    genuine platform can produce the MAC.  Per-provider keys (paper
    footnote 2) let mutually distrusting stakeholders verify their own
    tasks without sharing a key. *)

open Tytan_machine

type report = {
  id : Task_id.t;
  nonce : bytes;
  mac : bytes;  (** HMAC-SHA1 over nonce | id under Ka (or a provider key) *)
}

(** {2 Control-flow attestation (lib/cfa)}

    A runtime-compromised task — ROP over valid code — attests clean
    under {!remote_attest}: the binary is unchanged.  Control-flow
    attestation closes the gap: the CFA component keeps a hash-chained
    log of the task's control-flow transfers, and [cfa_attest] MACs the
    chain head so the verifier can replay the reported edges against the
    statically recovered CFG. *)

type cf_edge = {
  src : Word.t;  (** code offset of the transferring instruction *)
  dst : Word.t;  (** code offset of the target (SWI number for [Swi_entry]) *)
  kind : Cpu.branch_kind;
}

val cf_edge_size : int
(** Wire size of one edge (9 bytes: src, dst, kind). *)

val cf_edge_to_bytes : cf_edge -> bytes
val cf_edge_of_bytes : bytes -> pos:int -> cf_edge option

val cf_genesis : id:Task_id.t -> bytes
(** The chain's genesis digest, [SHA1(id_t)]: an empty log is already
    bound to the identity it will vouch for. *)

val cf_extend : bytes -> cf_edge -> bytes
(** One chain step: [SHA1(digest | edge)]. *)

type cfa_report = {
  id : Task_id.t;
  nonce : bytes;
  cf_digest : bytes;  (** chain head after the last logged edge *)
  base_digest : bytes;
      (** chain value {e before} the oldest retained edge: the genesis
          digest until the bounded ring evicts, then the fold of every
          evicted edge.  Replaying the retained edges from [base_digest]
          must reach [cf_digest]. *)
  edge_count : int;  (** edges logged over the task's lifetime *)
  edges : cf_edge array;  (** the retained window, oldest first *)
  mac : bytes;
      (** HMAC-SHA1 over nonce | id | cf_digest | edge_count |
          base_digest under Ka *)
}

type t

val create : Cpu.t -> code_eip:Word.t -> kp_addr:Word.t -> rtm:Rtm.t -> t
(** [kp_addr] is the protected platform-key location; reads happen under
    the component's identity, so the EA-MPU must grant them. *)

val code_eip : t -> Word.t

val local_attest : t -> Task_id.t -> bool
(** Is a task with this identity currently loaded?  (A local verifier's
    view of the RTM directory.) *)

val loaded_identities : t -> Task_id.t list

val remote_attest : t -> id:Task_id.t -> nonce:bytes -> report option
(** Produce a report for a loaded task; [None] if no such task is loaded.
    Charges cycles for the key derivation and MAC. *)

val remote_attest_for_provider :
  t -> provider:string -> id:Task_id.t -> nonce:bytes -> report option
(** Same, MACed under the provider-specific key. *)

val verify : ka:bytes -> report -> expected:Task_id.t -> nonce:bytes -> bool
(** Verifier side: check the MAC, the identity and the nonce (constant
    time; stale nonces are rejected by the caller tracking freshness). *)

val expected_mac : ka:bytes -> id:Task_id.t -> nonce:bytes -> bytes
(** The MAC a genuine platform would produce for [(id, nonce)] under
    [ka].  A batching verifier computes this once per device per nonce
    epoch and caches it; subsequent reports in the same epoch verify by
    constant-time comparison instead of a fresh HMAC. *)

type mac_state = Tytan_crypto.Hmac.state
(** Precomputed per-device HMAC key schedule: the two Ka key-pad
    compressions, absorbed once per device instead of once per epoch.
    Immutable, so shareable across domains. *)

val prepare_mac : ka:bytes -> mac_state

val expected_mac_with : mac_state -> id:Task_id.t -> nonce:bytes -> bytes
(** [expected_mac] via a precomputed key schedule — same tag, two fewer
    SHA-1 compressions per call. *)

val update_mac :
  ka:bytes -> id:Task_id.t -> version:int -> size:int -> digest:bytes -> bytes
(** The MAC an update authority puts on a firmware offer: HMAC-SHA1 over
    ["TYOTA1"] | version | size | id_t | image digest under [Ka].  The
    target {e version} is bound into the MAC, so a genuinely signed old
    image cannot be re-offered under a fresher version number — the
    installer's anti-rollback check compares the authenticated
    version. *)

val verify_update_mac :
  ka:bytes ->
  id:Task_id.t ->
  version:int ->
  size:int ->
  digest:bytes ->
  tag:bytes ->
  bool
(** Installer side of {!update_mac} (constant-time). *)

val expected_cfa_mac :
  ka:bytes ->
  id:Task_id.t ->
  nonce:bytes ->
  cf_digest:bytes ->
  base_digest:bytes ->
  edge_count:int ->
  bytes
(** The MAC a genuine platform would put on a {!cfa_report} with these
    fields — what lightweight fleet provers (which carry a key and a
    log head but no full platform) use to answer CFA challenges. *)

val cfa_attest :
  t ->
  id:Task_id.t ->
  nonce:bytes ->
  cf_digest:bytes ->
  base_digest:bytes ->
  edge_count:int ->
  edges:cf_edge array ->
  cfa_report option
(** Produce a control-flow report for a loaded task from the CFA log's
    current state; [None] if no such task is loaded.  Charges cycles for
    the key derivation and MAC like {!remote_attest}. *)

val verify_cfa :
  ka:bytes -> cfa_report -> expected:Task_id.t -> nonce:bytes -> bool
(** Authenticity only (MAC, identity, nonce).  Whether the {e path} is
    legal is the replay's job — [Tytan_cfa.Replay.verify]. *)

val derive_ka : platform_key:bytes -> bytes
(** How a provisioned verifier derives [Ka] from the shared [Kp]. *)

val derive_provider_ka : platform_key:bytes -> provider:string -> bytes

val reports_issued : t -> int
