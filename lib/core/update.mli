(** Runtime task update (the paper's future work, Section 8).

    "Future work includes extending TyTAN with a mechanism to update tasks
    at runtime (i.e., without stopping and restarting them) to meet the
    high availability requirements of embedded applications."

    The implementation stages the new version {e while the old version
    keeps running} — loading is interruptible, so the old task continues
    to meet its deadlines throughout — and then performs an atomic swap:
    suspend old, optionally migrate the leading data words of the old
    task's data section into the new one, activate new, unload old.  The
    {e availability gap} is just the swap, a bounded operation measured in
    cycles (vs. a full stop-reload-restart, which leaves the function
    absent for the whole load time — the ablation benchmark reports
    both).

    State migration runs under trusted identities that already hold the
    necessary grants: the RTM (read access to every secure task) and the
    Int Mux (write access, as the context-switch agent).  The new
    version's identity differs from the old one's, so sealed storage does
    {e not} transfer — by design (see the secure-storage example).

    The update preserves the old task's scheduling parameters
    (priority). *)

open Tytan_rtos
open Tytan_telf

type report = {
  task : Tcb.t;  (** the new version's TCB *)
  old_id : Task_id.t;
  new_id : Task_id.t;
  downtime_cycles : int;
  (** cycles during which neither version was schedulable *)
  staging_cycles : int;  (** cycles spent loading the new version *)
}

val update_task :
  Platform.t ->
  old_task:Tcb.t ->
  ?migrate_words:int ->
  Telf.t ->
  (report, string) result
(** Blocking variant: stages the new binary, swaps, reclaims the old one.
    [migrate_words] (default 0) copies that many words from the head of
    the old data section to the new one. *)

val apply :
  Platform.t ->
  old_task:Tcb.t ->
  ?migrate_words:int ->
  ?expected:Task_id.t ->
  Telf.t ->
  (report, string) result
(** The OTA installer's gated variant of {!update_task} — measured
    activation end to end:

    + {e vet}: the six-check [Tycheck.flow_config] analysis must prove
      the image clean ({!Tytan_analysis.Tycheck.strict_ok}); the vet is
      charged to the platform clock at the loader's published rates;
    + {e stage}: the new version loads suspended while the old one keeps
      running, exactly as {!update_task};
    + {e measure}: before the swap, the RTM measurement of the staged
      bytes must equal [expected] (default: the vetted binary's own
      identity; an OTA flow passes the identity from the signed offer).
      On mismatch — the staged image was bit-flipped or substituted
      between vet and activation — the staged copy is reclaimed, the old
      task never stops, and the result is an [Error].  An unmeasured
      image is never activated;
    + {e swap}: the same bounded atomic swap as {!update_task}. *)

val stop_and_reload :
  Platform.t -> old_task:Tcb.t -> Telf.t -> (report, string) result
(** The naive alternative (unload, then load): functionally equivalent but
    the function is absent for the whole load — the availability baseline
    the benchmark compares against. *)
