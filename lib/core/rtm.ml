open Tytan_machine
open Tytan_rtos
open Tytan_telemetry
open Tytan_telf
module Sha1 = Tytan_crypto.Sha1

type entry = {
  id : Task_id.t;
  tcb : Tcb.t;
  base : Word.t;
  telf : Telf.t;
  slots : int list;
  provider : string;
}

type t = {
  cpu : Cpu.t;
  code_eip : Word.t;
  tel : Telemetry.t;
  mutable directory : entry list;
  mutable measurements : int;
}

let create ?telemetry cpu ~code_eip =
  let tel =
    match telemetry with
    | Some tel -> tel
    | None -> Telemetry.create (Cpu.clock cpu)
  in
  { cpu; code_eip; tel; directory = []; measurements = 0 }
let code_eip t = t.code_eip

(* Canonical measurement input: a fixed 16-byte header binding the entry
   point and section sizes (the "initial stack layout" is determined by
   these), followed by the position-independent image. *)
let canonical_header (telf : Telf.t) =
  let b = Bytes.create 20 in
  Bytes.set_int32_le b 0 (Int32.of_int telf.entry);
  Bytes.set_int32_le b 4 (Int32.of_int (Bytes.length telf.image));
  Bytes.set_int32_le b 8 (Int32.of_int telf.text_size);
  Bytes.set_int32_le b 12 (Int32.of_int telf.bss_size);
  Bytes.set_int32_le b 16 (Int32.of_int telf.stack_size);
  b

let identity_of_telf telf =
  let ctx = Sha1.init () in
  Sha1.feed ctx (canonical_header telf);
  Sha1.feed ctx telf.image;
  Task_id.of_digest (Sha1.finalize ctx)

let blocks_of (telf : Telf.t) =
  max 1 ((Bytes.length telf.image + Sha1.block_size - 1) / Sha1.block_size)

type job = {
  ctx : Sha1.ctx;
  snapshot : bytes;  (** loaded image with relocation reverted *)
  mutable offset : int;
  span : int;  (** telemetry span covering the whole measurement *)
}

let start_measure t ~base ~(telf : Telf.t) =
  let clock = Cpu.clock t.cpu in
  let span = Telemetry.begin_span t.tel ~component:"rtm" "measure" in
  Cycles.charge clock Cost_model.rtm_measure_base;
  let snapshot =
    Cpu.with_firmware t.cpu ~eip:t.code_eip (fun () ->
        Cpu.load_bytes t.cpu base (Bytes.length telf.image))
  in
  (* Temporarily revert the changes made during relocation so the digest
     is position independent (paper §4, "RTM task"). *)
  Relocate.revert ~base ~image:snapshot ~relocations:telf.relocations;
  Cycles.charge clock
    (Cost_model.rtm_revert_base
    + (Array.length telf.relocations * Cost_model.rtm_revert_per_address));
  let ctx = Sha1.init () in
  Sha1.feed ctx (canonical_header telf);
  { ctx; snapshot; offset = 0; span }

(* One step = one 64-byte block, so the total measurement cost is
   base + blocks_of · per_block (Table 7); the final step also pays for
   the digest finalisation. *)
let step_measure t job =
  let clock = Cpu.clock t.cpu in
  Cycles.charge clock Cost_model.rtm_per_block;
  let remaining = Bytes.length job.snapshot - job.offset in
  let len = min Sha1.block_size remaining in
  if len > 0 then Sha1.feed_sub job.ctx job.snapshot ~pos:job.offset ~len;
  job.offset <- job.offset + len;
  if job.offset >= Bytes.length job.snapshot then begin
    t.measurements <- t.measurements + 1;
    Telemetry.end_span t.tel job.span;
    Telemetry.incr t.tel ~component:"rtm" "measurements";
    `Done (Task_id.of_digest (Sha1.finalize job.ctx))
  end
  else `More

let measure t ~base ~telf =
  let job = start_measure t ~base ~telf in
  let rec finish () =
    match step_measure t job with
    | `More -> finish ()
    | `Done id -> id
  in
  finish ()

let register t entry = t.directory <- entry :: t.directory

let unregister t id =
  t.directory <- List.filter (fun e -> not (Task_id.equal e.id id)) t.directory

let unregister_tcb t (tcb : Tcb.t) =
  t.directory <- List.filter (fun e -> e.tcb.Tcb.id <> tcb.id) t.directory

let find t id = List.find_opt (fun e -> Task_id.equal e.id id) t.directory

let find_by_eip t eip =
  let owns e =
    eip >= e.tcb.Tcb.code_base
    && eip < Word.add e.tcb.Tcb.code_base e.tcb.Tcb.code_size
  in
  List.find_opt owns t.directory

let find_by_tcb t (tcb : Tcb.t) =
  List.find_opt (fun e -> e.tcb.Tcb.id = tcb.id) t.directory

let all t = t.directory
let measurements t = t.measurements
