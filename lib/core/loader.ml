open Tytan_machine
open Tytan_eampu
open Tytan_rtos
open Tytan_telf
open Tytan_telemetry

type trusted_regions = {
  kernel_code : Region.t;
  int_mux : Region.t;
  ipc_proxy : Region.t;
  rtm : Region.t;
}

type request = {
  telf : Telf.t;
  name : string;
  priority : int;
  secure : bool;
  provider : string;
}

let swi_step = 11

type phase =
  | Parse
  | Alloc
  | Copy of int  (** next image offset *)
  | Reloc of int  (** next relocation index *)
  | Stack_prep
  | Mpu_config of Eampu.rule list  (** rules left to install *)
  | Measure_start
  | Measure of Rtm.job
  | Register of Task_id.t

type job = {
  request : request;
  mutable phase : phase;
  mutable base : Word.t;
  mutable slots : int list;
  mutable initial_sp : Word.t;
  mutable phase_cycles : (string * int) list;  (* accumulated per phase *)
  mutable span : int;  (* telemetry span covering the whole load; 0 = none *)
}

type t = {
  kernel : Kernel.t;
  rtm : Rtm.t;
  mpu : Mpu_driver.t option;
  heap : Heap.t;
  code_eip : Word.t;
  regions : trusted_regions;
  vet : Tytan_analysis.Tycheck.config option;
  mutable queue : job list;
  mutable on_loaded : Tcb.t -> unit;
  mutable loads_completed : int;
  mutable bytes_loaded : int;
  mutable last_report : (string * int) list;
  mutable max_step_cycles : int;
}

let create ?vet ~kernel ~rtm ~mpu ~heap ~code_eip ~regions () =
  {
    kernel;
    rtm;
    mpu;
    heap;
    code_eip;
    regions;
    vet;
    queue = [];
    on_loaded = (fun _ -> ());
    loads_completed = 0;
    bytes_loaded = 0;
    last_report = [];
    max_step_cycles = 0;
  }

let code_eip t = t.code_eip
let on_loaded t f = t.on_loaded <- f
let loads_completed t = t.loads_completed
let bytes_loaded t = t.bytes_loaded
let pending t = List.length t.queue

let fresh_job request =
  { request; phase = Parse; base = 0; slots = []; initial_sp = 0;
    phase_cycles = []; span = 0 }

let submit t request = t.queue <- t.queue @ [ fresh_job request ]

let last_report t = t.last_report
let max_step_cycles t = t.max_step_cycles
let reset_step_stats t = t.max_step_cycles <- 0

let cpu t = Kernel.cpu t.kernel
let clock t = Cpu.clock (cpu t)
let charge t n = Cycles.charge (clock t) n
let as_loader t f = Cpu.with_firmware (cpu t) ~eip:t.code_eip f

(* Layout of a task allocation: image | bss | inbox | stack. *)
let footprint (telf : Telf.t) =
  Bytes.length telf.image + telf.bss_size + Ipc.inbox_size + telf.stack_size

let layout job =
  let telf = job.request.telf in
  let image_size = Bytes.length telf.image in
  let bss_base = Word.add job.base image_size in
  let inbox_base = Word.add bss_base telf.bss_size in
  let stack_base = Word.add inbox_base Ipc.inbox_size in
  (image_size, bss_base, inbox_base, stack_base)

let task_rules t job =
  let telf = job.request.telf in
  let _image_size, _, inbox_base, _ = layout job in
  (* Executable region = the text prefix; everything after (initialised
     data, bss, inbox, stack) is the task's writable data region. *)
  let code = Region.make ~base:job.base ~size:(max 1 telf.text_size) in
  let whole = Region.make ~base:job.base ~size:(footprint telf) in
  let data_size = footprint telf - telf.text_size in
  let data =
    Region.make ~base:(Word.add job.base telf.text_size) ~size:(max 1 data_size)
  in
  let inbox = Region.make ~base:inbox_base ~size:Ipc.inbox_size in
  let entry = Word.add job.base telf.entry in
  if job.request.secure then
    [
      Eampu.Exec { region = code; entry = Some entry };
      Eampu.Grant { code; data; perm = Perm.rw };
      Eampu.Grant { code = t.regions.int_mux; data = whole; perm = Perm.rw };
      Eampu.Grant { code = t.regions.ipc_proxy; data = inbox; perm = Perm.rw };
      Eampu.Grant { code = t.regions.rtm; data = whole; perm = Perm.r };
    ]
  else
    [
      Eampu.Exec { region = code; entry = None };
      Eampu.Grant { code; data; perm = Perm.rw };
      Eampu.Grant { code = t.regions.kernel_code; data = whole; perm = Perm.rw };
      Eampu.Grant { code = t.regions.ipc_proxy; data = inbox; perm = Perm.rw };
    ]

let fail t job message =
  (* Roll back whatever the job acquired. *)
  (match t.mpu with
  | Some mpu -> Mpu_driver.remove_slots mpu job.slots
  | None -> ());
  if job.base <> 0 then Heap.free t.heap job.base;
  Trace.emitf (Kernel.trace t.kernel) ~source:"loader" "load %s failed: %s"
    job.request.name message;
  `Failed message

let register_task t job id =
  let telf = job.request.telf in
  let image_size, _, inbox_base, stack_base = layout job in
  charge t Cost_model.loader_register;
  ignore image_size;
  let tcb =
    Kernel.create_task t.kernel ~name:job.request.name
      ~priority:job.request.priority ~secure:job.request.secure
      ~region_base:job.base ~region_size:(footprint telf)
      ~code_base:job.base ~code_size:(max 1 telf.text_size)
      ~entry:(Word.add job.base telf.entry) ~stack_base
      ~stack_size:telf.stack_size ~inbox_base ~build_frame:false
      ~initial_sp:job.initial_sp ()
  in
  Rtm.register t.rtm
    { Rtm.id; tcb; base = job.base; telf; slots = job.slots;
      provider = job.request.provider };
  t.loads_completed <- t.loads_completed + 1;
  t.bytes_loaded <- t.bytes_loaded + footprint telf;
  tcb

let phase_label = function
  | Parse -> "parse"
  | Alloc -> "alloc"
  | Copy _ -> "copy"
  | Reloc _ -> "relocation"
  | Stack_prep -> "stack-prep"
  | Mpu_config _ -> "ea-mpu"
  | Measure_start | Measure _ -> "rtm"
  | Register _ -> "register"

(* One bounded unit of work.  Each arm charges its cost and advances the
   phase; no arm's charge exceeds a few thousand cycles, which is what
   keeps loading preemptible at tick granularity. *)
let step_job_inner t job =
  let telf = job.request.telf in
  match job.phase with
  | Parse -> (
      charge t Cost_model.loader_parse_header;
      if job.request.secure && t.mpu = None then
        fail t job "secure tasks are not supported without an EA-MPU"
      else
        match t.vet with
        | None ->
            job.phase <- Alloc;
            `Working
        | Some base_config ->
            (* Static verification before any memory is committed: a
               binary tycheck cannot prove isolated never reaches the
               measured-and-registered state. *)
            let open Tytan_analysis in
            let slots = telf.text_size / Isa.width in
            let per_instruction =
              Cost_model.vet_per_instruction
              +
              match base_config.Tycheck.flow with
              | None -> 0
              | Some _ -> Cost_model.vet_flow
            in
            charge t (Cost_model.vet_base + (per_instruction * slots));
            let config =
              { base_config with Tycheck.r12_inbox = job.request.secure }
            in
            let report = Tycheck.check ~config telf in
            if Tycheck.ok report then begin
              job.phase <- Alloc;
              `Working
            end
            else
              fail t job
                ("vet rejected: "
                ^ Option.value
                    (Tycheck.first_violation report)
                    ~default:"violation"))
  | Alloc -> (
      charge t Cost_model.loader_alloc;
      match Heap.alloc t.heap ~size:(footprint telf) with
      | None -> fail t job "out of task memory"
      | Some base ->
          job.base <- base;
          job.phase <- Copy 0;
          `Working)
  | Copy offset ->
      let len =
        min Cost_model.loader_copy_chunk (Bytes.length telf.image - offset)
      in
      if len > 0 then begin
        charge t (len * Cost_model.loader_copy_per_byte);
        as_loader t (fun () ->
            Cpu.store_bytes (cpu t)
              (Word.add job.base offset)
              (Bytes.sub telf.image offset len))
      end;
      if offset + len >= Bytes.length telf.image then job.phase <- Reloc 0
      else job.phase <- Copy (offset + len);
      `Working
  | Reloc index ->
      if index = 0 then charge t Cost_model.reloc_base;
      (* Patch up to eight addresses per step. *)
      let total = Array.length telf.relocations in
      let batch = min 8 (total - index) in
      as_loader t (fun () ->
          for i = index to index + batch - 1 do
            let off = telf.relocations.(i) in
            let addr = Word.add job.base off in
            let v = Cpu.load32 (cpu t) addr in
            Cpu.store32 (cpu t) addr (Word.add v job.base);
            charge t Cost_model.reloc_per_address
          done);
      if index + batch >= total then job.phase <- Stack_prep
      else job.phase <- Reloc (index + batch);
      `Working
  | Stack_prep ->
      charge t Cost_model.loader_stack_prep;
      let image_size, bss_base, _, stack_base = layout job in
      ignore image_size;
      as_loader t (fun () ->
          let mem = Cpu.mem (cpu t) in
          let tail = footprint telf - Bytes.length telf.image in
          Memory.fill mem bss_base tail 0;
          job.initial_sp <-
            Context.build_initial_frame_raw (cpu t)
              ~stack_top:(Word.add stack_base telf.stack_size)
              ~entry:(Word.add job.base telf.entry));
      job.phase <-
        (match t.mpu with
        | Some _ -> Mpu_config (task_rules t job)
        | None -> Register (Rtm.identity_of_telf telf));
      `Working
  | Mpu_config [] ->
      job.phase <-
        (if job.request.secure then Measure_start
         else Register (Rtm.identity_of_telf telf));
      `Working
  | Measure_start ->
      job.phase <- Measure (Rtm.start_measure t.rtm ~base:job.base ~telf);
      `Working
  | Mpu_config (rule :: rest) -> (
      match t.mpu with
      | None -> fail t job "no EA-MPU driver"
      | Some mpu -> (
          match Mpu_driver.install_rule mpu rule with
          | Error e -> fail t job e
          | Ok slot ->
              job.slots <- slot :: job.slots;
              job.phase <- Mpu_config rest;
              `Working))
  | Measure rtm_job -> (
      match Rtm.step_measure t.rtm rtm_job with
      | `More -> `Working
      | `Done id -> (
          (* A measured identity must match the binary the provider
             shipped; a mismatch means the loaded image was corrupted. *)
          match Task_id.equal id (Rtm.identity_of_telf telf) with
          | true ->
              job.phase <- Register id;
              `Working
          | false -> fail t job "measurement mismatch"))
  | Register id -> `Loaded (register_task t job id)

(* Account the cycles of each step to the phase it started in (the bench
   harness reads the per-phase decomposition for Table 4). *)
let step_job t job =
  let tel = Kernel.telemetry t.kernel in
  if job.span = 0 then
    job.span <-
      Telemetry.begin_span tel ~task:job.request.name ~component:"loader" "load";
  let label = phase_label job.phase in
  let result, cost = Cycles.measure (clock t) (fun () -> step_job_inner t job) in
  if cost > t.max_step_cycles then t.max_step_cycles <- cost;
  (match List.assoc_opt label job.phase_cycles with
  | Some acc ->
      job.phase_cycles <-
        (label, acc + cost) :: List.remove_assoc label job.phase_cycles
  | None -> job.phase_cycles <- (label, cost) :: job.phase_cycles);
  (match result with
  | `Loaded _ ->
      t.last_report <- List.rev job.phase_cycles;
      Telemetry.end_span tel job.span;
      Telemetry.incr tel ~component:"loader" "loads"
  | `Failed _ ->
      t.last_report <- List.rev job.phase_cycles;
      Telemetry.end_span tel job.span;
      Telemetry.incr tel ~component:"loader" "load_failures"
  | `Working -> ());
  result

let step t =
  match t.queue with
  | [] -> `Idle
  | job :: rest -> (
      match step_job t job with
      | `Working -> `Working
      | `Loaded tcb ->
          t.queue <- rest;
          t.on_loaded tcb;
          `Loaded tcb
      | `Failed e ->
          t.queue <- rest;
          `Failed e)

let load_blocking t request =
  let job = fresh_job request in
  let rec go () =
    match step_job t job with
    | `Working -> go ()
    | `Loaded tcb -> Ok tcb
    | `Failed e -> Error e
  in
  go ()

let handle_swi t ~swi ~gprs:_ =
  if swi <> swi_step then false
  else begin
    (match Kernel.current t.kernel with
    | Some caller ->
        let status =
          match step t with
          | `Idle -> 0
          | `Working -> 1
          | `Loaded _ -> 2
          | `Failed _ -> 3
        in
        as_loader t (fun () ->
            Kernel.set_frame_reg t.kernel caller ~reg:0 ~value:status)
    | None -> ());
    Kernel.dispatch t.kernel;
    true
  end

let reclaim t (tcb : Tcb.t) =
  match Rtm.find_by_tcb t.rtm tcb with
  | None -> ()
  | Some entry ->
      (match t.mpu with
      | Some mpu -> Mpu_driver.remove_slots mpu entry.Rtm.slots
      | None -> ());
      Heap.free t.heap entry.Rtm.base;
      Rtm.unregister_tcb t.rtm tcb;
      Trace.emitf (Kernel.trace t.kernel) ~source:"loader" "reclaimed %s"
        tcb.name

let unload t tcb =
  (* kill_task triggers the kernel's on-exit hook, which the platform
     wires to {!reclaim}. *)
  Kernel.kill_task t.kernel tcb
