open Tytan_machine
open Tytan_rtos
open Tytan_telf
module Tycheck = Tytan_analysis.Tycheck
module Isa = Tytan_machine.Isa

type report = {
  task : Tcb.t;
  old_id : Task_id.t;
  new_id : Task_id.t;
  downtime_cycles : int;
  staging_cycles : int;
}

let entry_of p tcb =
  match Platform.rtm p with
  | None -> Error "runtime update requires the TyTAN platform"
  | Some rtm -> (
      match Rtm.find_by_tcb rtm tcb with
      | Some entry -> Ok entry
      | None -> Error "old task is not in the RTM directory")

let migrate p ~(old_entry : Rtm.entry) ~(new_entry : Rtm.entry) ~words =
  if words <= 0 then ()
  else begin
    let cpu = Platform.cpu p in
    let rtm = Option.get (Platform.rtm p) in
    let int_mux = Option.get (Platform.int_mux p) in
    let old_data =
      Word.add old_entry.Rtm.base old_entry.Rtm.telf.Telf.text_size
    in
    let new_data =
      Word.add new_entry.Rtm.base new_entry.Rtm.telf.Telf.text_size
    in
    for i = 0 to words - 1 do
      let v =
        Cpu.with_firmware cpu ~eip:(Rtm.code_eip rtm) (fun () ->
            Cpu.load32 cpu (Word.add old_data (4 * i)))
      in
      Cpu.with_firmware cpu ~eip:(Int_mux.code_eip int_mux) (fun () ->
          Cpu.store32 cpu (Word.add new_data (4 * i)) v)
    done
  end

let update_task p ~(old_task : Tcb.t) ?(migrate_words = 0) telf =
  match entry_of p old_task with
  | Error e -> Error e
  | Ok old_entry -> (
      let clock = Platform.clock p in
      let kernel = Platform.kernel p in
      (* Stage the new version while the old one keeps running.  The new
         task must not be scheduled before the swap, so it is loaded
         without auto-ready by suspending it immediately after creation:
         we load blocking here (the caller may equally submit + poll, as
         the cruise-control flow does), then swap. *)
      let staging_start = Cycles.now clock in
      match
        Platform.load_blocking p ~name:(old_task.Tcb.name ^ "+new")
          ~priority:old_task.Tcb.priority telf
      with
      | Error e -> Error e
      | Ok new_task -> (
          Kernel.suspend_task kernel new_task;
          let staging_cycles = Cycles.now clock - staging_start in
          match entry_of p new_task with
          | Error e -> Error e
          | Ok new_entry ->
              (* The atomic swap: the availability gap is exactly this
                 window. *)
              let swap_start = Cycles.now clock in
              Cycles.charge clock
                (Cost_model.update_swap_base
                + (migrate_words * Cost_model.update_migrate_per_word));
              Kernel.suspend_task kernel old_task;
              migrate p ~old_entry ~new_entry ~words:migrate_words;
              Kernel.resume_task kernel new_task;
              let downtime_cycles = Cycles.now clock - swap_start in
              Platform.unload p old_task;
              Trace.emitf (Platform.trace p) ~source:"update"
                "%s: %s -> %s (downtime %d cycles)" old_task.Tcb.name
                (Task_id.to_hex old_entry.Rtm.id)
                (Task_id.to_hex new_entry.Rtm.id)
                downtime_cycles;
              Ok
                {
                  task = new_task;
                  old_id = old_entry.Rtm.id;
                  new_id = new_entry.Rtm.id;
                  downtime_cycles;
                  staging_cycles;
                }))

(* The measured-activation discipline: vet the binary, pin the identity
   the vetted bytes hash to, and refuse the swap unless the RTM's
   measurement of what was actually staged reproduces that identity.
   Anything that changes the image between vet and activation — a
   bit-flip in the staging buffer, a substituted binary, an offer whose
   authenticated identity names different bytes — surfaces as a
   mismatch, the staged copy is reclaimed, and the old version keeps
   running.  An unmeasured image is never activated. *)
let apply p ~(old_task : Tcb.t) ?(migrate_words = 0) ?expected telf =
  let clock = Platform.clock p in
  let rep = Tycheck.check ~config:Tycheck.flow_config telf in
  Cycles.charge clock
    (Cost_model.vet_base
    + (Cost_model.vet_per_instruction + Cost_model.vet_flow)
      * (telf.Telf.text_size / Isa.width));
  if not (Tycheck.strict_ok rep) then
    Error
      (match Tycheck.first_violation rep with
      | Some v -> "vet refused: " ^ v
      | None -> "vet refused: analysis could not prove the image clean")
  else
    match entry_of p old_task with
    | Error e -> Error e
    | Ok old_entry -> (
        let expected =
          match expected with
          | Some id -> id
          | None -> Rtm.identity_of_telf telf
        in
        let kernel = Platform.kernel p in
        let staging_start = Cycles.now clock in
        match
          Platform.load_blocking p ~name:(old_task.Tcb.name ^ "+new")
            ~priority:old_task.Tcb.priority telf
        with
        | Error e -> Error e
        | Ok new_task -> (
            Kernel.suspend_task kernel new_task;
            let staging_cycles = Cycles.now clock - staging_start in
            match entry_of p new_task with
            | Error e ->
                Platform.unload p new_task;
                Error e
            | Ok new_entry ->
                (* The activation gate: the RTM's measurement of the bytes
                   actually sitting in the staging region must reproduce
                   the identity the vet verdict (or the signed offer)
                   covers.  Checked {e before} the swap, so a mismatch —
                   a bit-flip in the buffer, a substituted binary — costs
                   nothing but the staging: the new copy is reclaimed and
                   the old version never stops running. *)
                if not (Task_id.equal new_entry.Rtm.id expected) then begin
                  Platform.unload p new_task;
                  Trace.emitf (Platform.trace p) ~source:"update"
                    "%s: staged image measures %s, expected %s — refused"
                    old_task.Tcb.name
                    (Task_id.to_hex new_entry.Rtm.id)
                    (Task_id.to_hex expected);
                  Error "staged image does not match the vetted identity"
                end
                else begin
                  let swap_start = Cycles.now clock in
                  Cycles.charge clock
                    (Cost_model.update_swap_base
                    + (migrate_words * Cost_model.update_migrate_per_word));
                  Kernel.suspend_task kernel old_task;
                  migrate p ~old_entry ~new_entry ~words:migrate_words;
                  Kernel.resume_task kernel new_task;
                  let downtime_cycles = Cycles.now clock - swap_start in
                  Platform.unload p old_task;
                  Trace.emitf (Platform.trace p) ~source:"update"
                    "%s: %s -> %s vetted+measured (downtime %d cycles)"
                    old_task.Tcb.name
                    (Task_id.to_hex old_entry.Rtm.id)
                    (Task_id.to_hex new_entry.Rtm.id)
                    downtime_cycles;
                  Ok
                    {
                      task = new_task;
                      old_id = old_entry.Rtm.id;
                      new_id = new_entry.Rtm.id;
                      downtime_cycles;
                      staging_cycles;
                    }
                end))

let stop_and_reload p ~(old_task : Tcb.t) telf =
  match entry_of p old_task with
  | Error e -> Error e
  | Ok old_entry -> (
      let clock = Platform.clock p in
      let gap_start = Cycles.now clock in
      Platform.unload p old_task;
      match
        Platform.load_blocking p ~name:old_task.Tcb.name
          ~priority:old_task.Tcb.priority telf
      with
      | Error e -> Error e
      | Ok new_task -> (
          match entry_of p new_task with
          | Error e -> Error e
          | Ok new_entry ->
              let downtime_cycles = Cycles.now clock - gap_start in
              Ok
                {
                  task = new_task;
                  old_id = old_entry.Rtm.id;
                  new_id = new_entry.Rtm.id;
                  downtime_cycles;
                  staging_cycles = downtime_cycles;
                }))
