open Tytan_machine
open Tytan_rtos
open Tytan_telemetry

let swi_send = 3
let swi_done = 4
let swi_shm = 12
let inbox_size = 64
let message_words = 8
let mode_async = 0
let mode_sync = 1

type service = {
  service_name : string;
  service_id : Task_id.t;
  handler : sender:Task_id.t -> message:Word.t array -> Word.t array option;
}

type session = {
  sender : Tcb.t;
  receiver : Tcb.t;
  receiver_prev_sp : Word.t;
  receiver_prev_state : Tcb.state;
  receiver_prev_wake : int;
  receiver_prev_live_frame : bool;
  span : int;  (** telemetry span covering the send -> done round trip *)
}

type t = {
  kernel : Kernel.t;
  rtm : Rtm.t;
  code_eip : Word.t;
  proxy_id : Task_id.t;
  shm_alloc : size:int -> Word.t option;
  shm_grant :
    a:Tcb.t -> b:Tcb.t -> base:Word.t -> size:int -> (unit, string) result;
  mutable services : service list;
  mutable sessions : session list;  (* stack: most recent first *)
  mutable deliveries : int;
}

let create kernel rtm ~code_eip ~proxy_id ~shm_alloc ~shm_grant =
  {
    kernel;
    rtm;
    code_eip;
    proxy_id;
    shm_alloc;
    shm_grant;
    services = [];
    sessions = [];
    deliveries = 0;
  }

let code_eip t = t.code_eip
let deliveries t = t.deliveries
let sync_sessions_open t = List.length t.sessions

let register_service t ~name ~id ~handler =
  t.services <- { service_name = name; service_id = id; handler } :: t.services

let find_service t id =
  List.find_opt (fun s -> Task_id.equal s.service_id id) t.services

let cpu t = Kernel.cpu t.kernel
let clock t = Cpu.clock (cpu t)
let tel t = Kernel.telemetry t.kernel
let as_proxy t f = Cpu.with_firmware (cpu t) ~eip:t.code_eip f

(* --- Inbox access (proxy identity) -------------------------------------- *)

let write_inbox t (receiver : Tcb.t) ~sender_id ~message =
  as_proxy t (fun () ->
      let base = receiver.inbox_base in
      let lo, hi = Task_id.to_words sender_id in
      Cpu.store32 (cpu t) base 1;
      Cpu.store32 (cpu t) (Word.add base 4) lo;
      Cpu.store32 (cpu t) (Word.add base 8) hi;
      for i = 0 to message_words - 1 do
        let v = if i < Array.length message then message.(i) else 0 in
        Cpu.store32 (cpu t) (Word.add base (16 + (4 * i))) v
      done);
  t.deliveries <- t.deliveries + 1;
  Telemetry.incr (tel t) ~task:receiver.name ~component:"ipc" "deliveries"

let read_inbox t (receiver : Tcb.t) =
  as_proxy t (fun () ->
      let base = receiver.inbox_base in
      if Cpu.load32 (cpu t) base = 0 then None
      else begin
        let lo = Cpu.load32 (cpu t) (Word.add base 4) in
        let hi = Cpu.load32 (cpu t) (Word.add base 8) in
        let message =
          Array.init message_words (fun i ->
              Cpu.load32 (cpu t) (Word.add base (16 + (4 * i))))
        in
        Cpu.store32 (cpu t) base 0;
        Some (Task_id.of_words ~lo ~hi, message)
      end)

(* --- Synchronous hand-off ----------------------------------------------- *)

(* Branch to the receiver's entry routine with reason "message".  The
   handler borrows the sender's time slice and runs just below the
   receiver's saved frame. *)
let branch_to_receiver t (receiver : Tcb.t) =
  let regs = Cpu.regs (cpu t) in
  Regfile.wipe_gprs regs;
  Regfile.set regs Regfile.sp receiver.saved_sp;
  Regfile.set regs Regfile.reason Toolchain.reason_message;
  Regfile.set regs 12 receiver.inbox_base;
  Regfile.set_interrupts regs true;
  Regfile.set_eip regs receiver.entry;
  receiver.state <- Tcb.Running;
  (* The handler's slice is the receiver's time, not the sender's: open a
     fresh accounting slice so per-task cycle attribution stays exact. *)
  receiver.dispatched_at <- Cycles.now (clock t);
  Scheduler.set_current (Kernel.scheduler t.kernel) (Some receiver)

let start_sync_session t ~(sender : Tcb.t) ~(receiver : Tcb.t) =
  let sched = Kernel.scheduler t.kernel in
  let session =
    {
      sender;
      receiver;
      receiver_prev_sp = receiver.saved_sp;
      receiver_prev_state = receiver.state;
      receiver_prev_wake = receiver.wake_tick;
      receiver_prev_live_frame = receiver.live_frame;
      span =
        Telemetry.begin_span (tel t) ~task:sender.name ~component:"ipc"
          "sync_session";
    }
  in
  Scheduler.remove sched sender;
  sender.state <- Tcb.Blocked Tcb.Ipc_reply_wait;
  Scheduler.remove sched receiver;
  t.sessions <- session :: t.sessions;
  branch_to_receiver t receiver

let finish_sync_session t session =
  let sched = Kernel.scheduler t.kernel in
  let receiver = session.receiver in
  (* Drop the stale handler frame and put the receiver back exactly where
     it was before the hand-off. *)
  Scheduler.remove sched receiver;
  receiver.saved_sp <- session.receiver_prev_sp;
  receiver.live_frame <- session.receiver_prev_live_frame;
  (match session.receiver_prev_state with
  | Tcb.Ready | Tcb.Running -> Scheduler.add_ready sched receiver
  | Tcb.Blocked reason when session.receiver_prev_wake > 0 ->
      Scheduler.sleep_on sched receiver ~wake_tick:session.receiver_prev_wake
        ~reason
  | Tcb.Blocked _ -> Scheduler.add_ready sched receiver
  | Tcb.Suspended -> receiver.state <- Tcb.Suspended
  | Tcb.Terminated -> receiver.state <- Tcb.Terminated);
  (* Release the sender. *)
  Scheduler.remove sched session.sender;
  if session.sender.state <> Tcb.Terminated then
    Scheduler.add_ready sched session.sender;
  Telemetry.end_span (tel t) session.span

(* --- SWI handlers -------------------------------------------------------- *)

let kill_caller t (tcb : Tcb.t) reason =
  Trace.emitf (Kernel.trace t.kernel) ~source:"ipc" "killing %s: %s" tcb.name
    reason;
  Kernel.kill_task t.kernel tcb

let resolve_sender t =
  let charge n = Cycles.charge (clock t) n in
  charge Cost_model.ipc_origin_lookup;
  let origin = Exception_engine.origin (Cpu.engine (cpu t)) in
  charge Cost_model.ipc_sender_lookup;
  Rtm.find_by_eip t.rtm origin

let handle_send t (caller : Tcb.t) gprs =
  (* The "send" span is the proxy's own work (origin resolution through
     delivery); a synchronous hand-off additionally opens a
     "sync_session" span that runs until the handler signals done. *)
  let span =
    Telemetry.begin_span (tel t) ~task:caller.name ~component:"ipc" "send"
  in
  (match resolve_sender t with
  | None -> kill_caller t caller "sender has no registered identity"
  | Some sender_entry ->
      let receiver_id = Task_id.of_words ~lo:gprs.(8) ~hi:gprs.(9) in
      let mode = gprs.(10) in
      let message = Array.sub gprs 0 message_words in
      Cycles.charge (clock t) Cost_model.ipc_receiver_lookup;
      (match find_service t receiver_id with
      | Some service -> (
          Cycles.charge (clock t) Cost_model.ipc_copy_message;
          let reply =
            service.handler ~sender:sender_entry.Rtm.id ~message
          in
          Cycles.charge (clock t) Cost_model.ipc_finish;
          (match reply with
          | Some words ->
              write_inbox t caller ~sender_id:service.service_id ~message:words
          | None -> ());
          Kernel.dispatch t.kernel)
      | None -> (
          match Rtm.find t.rtm receiver_id with
          | None -> kill_caller t caller "unknown IPC receiver"
          | Some receiver_entry ->
              let receiver = receiver_entry.Rtm.tcb in
              Cycles.charge (clock t) Cost_model.ipc_copy_message;
              write_inbox t receiver ~sender_id:sender_entry.Rtm.id ~message;
              Cycles.charge (clock t) Cost_model.ipc_finish;
              Trace.emitf (Kernel.trace t.kernel) ~source:"ipc"
                "%s -> %s (%s)" caller.name receiver.name
                (if mode = mode_sync then "sync" else "async");
              if
                mode = mode_sync && receiver.secure
                && receiver.state <> Tcb.Terminated
                && receiver.id <> caller.id
              then start_sync_session t ~sender:caller ~receiver
              else
                (* Asynchronous (or a receiver without an entry routine):
                   the sender continues; the receiver sees the message the
                   next time it inspects its inbox. *)
                Kernel.dispatch t.kernel)));
  Telemetry.end_span (tel t) span

let handle_done t (caller : Tcb.t) =
  match t.sessions with
  | session :: rest when session.receiver.Tcb.id = caller.id ->
      t.sessions <- rest;
      finish_sync_session t session;
      Kernel.dispatch t.kernel
  | _ :: _ | [] -> kill_caller t caller "IPC-done outside a message handler"

let handle_shm t (caller : Tcb.t) gprs =
  let peer_id = Task_id.of_words ~lo:gprs.(8) ~hi:gprs.(9) in
  let size = max 16 gprs.(0) in
  let fail reason =
    write_inbox t caller ~sender_id:t.proxy_id
      ~message:[| 1; 0; 0; 0; 0; 0; 0; 0 |];
    Trace.emitf (Kernel.trace t.kernel) ~source:"ipc" "shm failed: %s" reason;
    Kernel.dispatch t.kernel
  in
  match (Rtm.find_by_tcb t.rtm caller, Rtm.find t.rtm peer_id) with
  | None, _ -> kill_caller t caller "shared memory from unregistered task"
  | Some _, None -> fail "unknown peer"
  | Some caller_entry, Some peer_entry -> (
      match t.shm_alloc ~size with
      | None -> fail "out of memory"
      | Some base -> (
          match
            t.shm_grant ~a:caller_entry.Rtm.tcb ~b:peer_entry.Rtm.tcb ~base
              ~size
          with
          | Error e -> fail e
          | Ok () ->
              (* Tell both parties where the window lives. *)
              let note = [| 0; base; size; 0; 0; 0; 0; 0 |] in
              write_inbox t caller ~sender_id:peer_entry.Rtm.id ~message:note;
              write_inbox t peer_entry.Rtm.tcb ~sender_id:caller_entry.Rtm.id
                ~message:note;
              Kernel.dispatch t.kernel))

let handle_swi t ~swi ~gprs =
  match Kernel.current t.kernel with
  | None -> false
  | Some caller ->
      if swi = swi_send then begin
        handle_send t caller gprs;
        true
      end
      else if swi = swi_done then begin
        handle_done t caller;
        true
      end
      else if swi = swi_shm then begin
        handle_shm t caller gprs;
        true
      end
      else false

let on_task_exit t (tcb : Tcb.t) =
  let involved s = s.sender.Tcb.id = tcb.id || s.receiver.Tcb.id = tcb.id in
  let closing, remaining = List.partition involved t.sessions in
  t.sessions <- remaining;
  List.iter
    (fun session ->
      if session.receiver.Tcb.id = tcb.id then
        (* Receiver died mid-handler: release the blocked sender. *)
        finish_sync_session t session
      else begin
        (* Sender died: the receiver hand-off still stands; just make sure
           the sender is not resurrected later. *)
        let sched = Kernel.scheduler t.kernel in
        Scheduler.remove sched session.sender
      end)
    closing

let deliver_from_host t ~sender ~receiver message =
  match Rtm.find t.rtm receiver with
  | None -> Error "unknown receiver"
  | Some entry ->
      write_inbox t entry.Rtm.tcb ~sender_id:sender ~message;
      Ok ()
