open Tytan_machine
open Tytan_rtos
open Tytan_telf
open Tytan_telemetry

type policy = {
  max_restarts : int;
  backoff_base_ticks : int;
  backoff_cap_ticks : int;
}

let default_policy =
  { max_restarts = 3; backoff_base_ticks = 2; backoff_cap_ticks = 16 }

type task_state =
  | Running
  | Waiting_restart
  | Restarting
  | Quarantined
  | Gave_up

type entry = {
  name : string;
  telf : Telf.t;
  reference : Task_id.t;
  policy : policy;
  priority : int;
  secure : bool;
  provider : string;
  watchdog : Devices.Watchdog.t option;
  mutable tcb : Tcb.t option;
  mutable state : task_state;
  mutable restart_count : int;
  (* A supervisor-initiated unload is in flight: the pre-exit hook must
     not treat the resulting termination as a fresh crash. *)
  mutable expected_exit : bool;
  mutable last_activations : int;
}

type t = {
  kernel : Kernel.t;
  rtm : Rtm.t;
  loader : Loader.t;
  trace : Trace.t;
  mutable entries : entry list;
  mutable restarts : int;
  mutable quarantined : int;
  mutable gave_up : int;
  mutable bites : int;
}

let find_by_name t name = List.find_opt (fun e -> e.name = name) t.entries

(* Mirror the survival counters into the telemetry registry so a chaos
   report (or [tytan stats]) sees them alongside kernel/netsim metrics. *)
let note t ?task name =
  Telemetry.incr (Kernel.telemetry t.kernel) ?task ~component:"supervisor" name

let find_by_tcb t (tcb : Tcb.t) =
  List.find_opt
    (fun e -> match e.tcb with Some c -> c.Tcb.id = tcb.Tcb.id | None -> false)
    t.entries

let disable_watchdog entry =
  match entry.watchdog with
  | Some wd -> Devices.Watchdog.disable wd
  | None -> ()

let quarantine t entry ~measured ~why =
  entry.state <- Quarantined;
  t.quarantined <- t.quarantined + 1;
  note t ~task:entry.name "quarantines";
  disable_watchdog entry;
  Trace.emitf t.trace ~source:"supervisor"
    "quarantine %s (%s): measured %s, reference %s" entry.name why
    (Task_id.to_hex measured)
    (Task_id.to_hex entry.reference);
  (* If the corrupted instance is still loaded (the hang path), it must
     not keep running. *)
  match entry.tcb with
  | None -> ()
  | Some tcb ->
      entry.expected_exit <- true;
      Loader.unload t.loader tcb;
      entry.expected_exit <- false;
      entry.tcb <- None

let schedule_restart t entry ~why =
  if entry.restart_count >= entry.policy.max_restarts then begin
    entry.state <- Gave_up;
    t.gave_up <- t.gave_up + 1;
    note t ~task:entry.name "gave_up";
    Trace.emitf t.trace ~source:"supervisor" "gave up on %s after %d restarts"
      entry.name entry.restart_count
  end
  else begin
    entry.restart_count <- entry.restart_count + 1;
    let delay =
      min entry.policy.backoff_cap_ticks
        (entry.policy.backoff_base_ticks lsl (entry.restart_count - 1))
    in
    entry.state <- Waiting_restart;
    Trace.emitf t.trace ~source:"supervisor"
      "%s %s: measurement ok, restart %d/%d in %d ticks" entry.name why
      entry.restart_count entry.policy.max_restarts delay;
    ignore
      (Kernel.arm_timer t.kernel ~in_ticks:delay (fun () ->
           if entry.state = Waiting_restart then begin
             entry.state <- Restarting;
             Loader.submit t.loader
               {
                 Loader.telf = entry.telf;
                 name = entry.name;
                 priority = entry.priority;
                 secure = entry.secure;
                 provider = entry.provider;
               }
           end))
  end

(* Post-mortem measurement: the dead (or wedged) task's memory is still
   intact.  A missing RTM entry means the image is already gone — treat
   it as unverifiable. *)
let remeasure t (tcb : Tcb.t) =
  match Rtm.find_by_tcb t.rtm tcb with
  | None -> None
  | Some (r : Rtm.entry) -> Some (Rtm.measure t.rtm ~base:r.base ~telf:r.telf)

(* Crash path: runs from the platform pre-exit hook, before IPC teardown
   and memory reclamation. *)
let on_task_exit t (tcb : Tcb.t) =
  match find_by_tcb t tcb with
  | None -> ()
  | Some entry when entry.expected_exit -> ()
  | Some entry -> (
      disable_watchdog entry;
      let measured = remeasure t tcb in
      entry.tcb <- None;
      match measured with
      | Some m when Task_id.equal m entry.reference ->
          schedule_restart t entry ~why:"crashed"
      | Some m -> quarantine t entry ~measured:m ~why:"crashed corrupted"
      | None ->
          Trace.emitf t.trace ~source:"supervisor"
            "%s exited with no measurable image; not restarting" entry.name;
          entry.state <- Quarantined;
          t.quarantined <- t.quarantined + 1;
          note t ~task:entry.name "quarantines")

(* Hang path: the watchdog bit.  The task is still loaded, so re-measure
   it in place. *)
let on_bite t entry =
  t.bites <- t.bites + 1;
  note t ~task:entry.name "watchdog_bites";
  disable_watchdog entry;
  Trace.emitf t.trace ~source:"watchdog" "bite: %s missed its deadline"
    entry.name;
  match entry.tcb with
  | None -> ()
  | Some tcb -> (
      match remeasure t tcb with
      | Some m when Task_id.equal m entry.reference ->
          entry.expected_exit <- true;
          Loader.unload t.loader tcb;
          entry.expected_exit <- false;
          entry.tcb <- None;
          schedule_restart t entry ~why:"hung"
      | Some m -> quarantine t entry ~measured:m ~why:"hung corrupted"
      | None -> ())

(* Restart completion: the loader finished an asynchronous reload.  Gate
   on a fresh measurement before declaring the task healthy. *)
let on_loaded t (tcb : Tcb.t) =
  match
    List.find_opt
      (fun e -> e.state = Restarting && e.name = tcb.Tcb.name)
      t.entries
  with
  | None -> ()
  | Some entry -> (
      let measured =
        match Rtm.find_by_tcb t.rtm tcb with
        | Some (r : Rtm.entry) -> Some r.id
        | None -> None
      in
      match measured with
      | Some m when Task_id.equal m entry.reference ->
          entry.tcb <- Some tcb;
          entry.state <- Running;
          entry.last_activations <- tcb.Tcb.activations;
          t.restarts <- t.restarts + 1;
          note t ~task:entry.name "restarts";
          (match entry.watchdog with
          | Some wd ->
              Devices.Watchdog.kick wd;
              Devices.Watchdog.enable wd
          | None -> ());
          Trace.emitf t.trace ~source:"supervisor"
            "%s restarted and re-attested (%s)" entry.name (Task_id.to_hex m)
      | Some m ->
          entry.tcb <- Some tcb;
          quarantine t entry ~measured:m ~why:"reload mismatched"
      | None ->
          entry.state <- Quarantined;
          t.quarantined <- t.quarantined + 1;
          note t ~task:entry.name "quarantines";
          Trace.emitf t.trace ~source:"supervisor"
            "%s reloaded but missing from the RTM directory; quarantined"
            entry.name)

(* Kick every running task's watchdog iff the scheduler dispatched it
   since the last tick — software-observed progress, no task cooperation
   needed. *)
let tick t =
  List.iter
    (fun e ->
      match (e.state, e.tcb, e.watchdog) with
      | Running, Some tcb, Some wd ->
          if tcb.Tcb.activations <> e.last_activations then begin
            e.last_activations <- tcb.Tcb.activations;
            Devices.Watchdog.kick wd
          end
      | _ -> ())
    t.entries

let create platform =
  let rtm =
    match Platform.rtm platform with
    | Some rtm -> rtm
    | None -> invalid_arg "Supervisor.create: supervision needs the RTM"
  in
  let t =
    {
      kernel = Platform.kernel platform;
      rtm;
      loader = Platform.loader platform;
      trace = Platform.trace platform;
      entries = [];
      restarts = 0;
      quarantined = 0;
      gave_up = 0;
      bites = 0;
    }
  in
  Platform.set_pre_exit_hook platform (fun tcb -> on_task_exit t tcb);
  Loader.on_loaded t.loader (fun tcb -> on_loaded t tcb);
  ignore (Kernel.arm_timer t.kernel ~in_ticks:1 ~period:1 (fun () -> tick t));
  t

let supervise t (tcb : Tcb.t) ?(policy = default_policy) ?watchdog () =
  if policy.max_restarts < 0 || policy.backoff_base_ticks <= 0
     || policy.backoff_cap_ticks < policy.backoff_base_ticks
  then invalid_arg "Supervisor.supervise: malformed policy";
  match Rtm.find_by_tcb t.rtm tcb with
  | None -> invalid_arg "Supervisor.supervise: task not in the RTM directory"
  | Some (r : Rtm.entry) ->
      let entry =
        {
          name = tcb.Tcb.name;
          telf = r.telf;
          reference = Rtm.identity_of_telf r.telf;
          policy;
          priority = tcb.Tcb.priority;
          secure = tcb.Tcb.secure;
          provider = r.provider;
          watchdog;
          tcb = Some tcb;
          state = Running;
          restart_count = 0;
          expected_exit = false;
          last_activations = tcb.Tcb.activations;
        }
      in
      t.entries <- t.entries @ [ entry ];
      (match watchdog with
      | Some wd ->
          Kernel.set_irq_handler t.kernel ~irq:(Devices.Watchdog.irq wd)
            (fun () -> on_bite t entry);
          Devices.Watchdog.kick wd;
          Devices.Watchdog.enable wd
      | None -> ());
      Trace.emitf t.trace ~source:"supervisor" "supervising %s (reference %s)"
        entry.name
        (Task_id.to_hex entry.reference)

let state_of t ~name =
  Option.map (fun e -> e.state) (find_by_name t name)

let tcb_of t ~name = Option.bind (find_by_name t name) (fun e -> e.tcb)
let restarts t = t.restarts
let quarantined t = t.quarantined
let gave_up t = t.gave_up
let bites t = t.bites
let report t = List.map (fun e -> (e.name, e.state, e.restart_count)) t.entries
