open Tytan_machine
module Crypto = Tytan_crypto

type report = {
  id : Task_id.t;
  nonce : bytes;
  mac : bytes;
}

type cf_edge = {
  src : Word.t;
  dst : Word.t;
  kind : Cpu.branch_kind;
}

let cf_edge_size = 9

let cf_edge_to_bytes e =
  let b = Bytes.create cf_edge_size in
  Bytes.set_int32_le b 0 (Int32.of_int e.src);
  Bytes.set_int32_le b 4 (Int32.of_int e.dst);
  Bytes.set b 8 (Char.chr (Cpu.branch_kind_code e.kind));
  b

let cf_edge_of_bytes b ~pos =
  if pos < 0 || pos + cf_edge_size > Bytes.length b then None
  else
    match Cpu.branch_kind_of_code (Char.code (Bytes.get b (pos + 8))) with
    | None -> None
    | Some kind ->
        let word off =
          Int32.to_int (Bytes.get_int32_le b (pos + off)) land Word.max_value
        in
        Some { src = word 0; dst = word 4; kind }

(* The hash chain: the genesis digest binds the log to the task identity,
   and every appended edge extends it.  29 bytes per step — exactly one
   SHA-1 compression, which is what Cost_model.cfa_log_event amortises. *)
let cf_genesis ~id = Crypto.Sha1.digest (Task_id.to_bytes id)
let cf_extend digest edge = Crypto.Sha1.digest (Bytes.cat digest (cf_edge_to_bytes edge))

type cfa_report = {
  id : Task_id.t;
  nonce : bytes;
  cf_digest : bytes;
  base_digest : bytes;
  edge_count : int;
  edges : cf_edge array;
  mac : bytes;
}

type t = {
  cpu : Cpu.t;
  code_eip : Word.t;
  kp_addr : Word.t;
  rtm : Rtm.t;
  mutable reports : int;
}

let create cpu ~code_eip ~kp_addr ~rtm =
  { cpu; code_eip; kp_addr; rtm; reports = 0 }

let code_eip t = t.code_eip

let read_platform_key t =
  Cpu.with_firmware t.cpu ~eip:t.code_eip (fun () ->
      Cpu.load_bytes t.cpu t.kp_addr Crypto.Sha1.digest_size)

(* Charge cycles for the SHA-1 compressions a crypto operation really
   performed. *)
let charged t f =
  let before = Crypto.Sha1.total_compressions () in
  let result = f () in
  let used = Crypto.Sha1.total_compressions () - before in
  Cycles.charge (Cpu.clock t.cpu) (used * Cost_model.crypto_per_compression);
  result

let local_attest t id = Rtm.find t.rtm id <> None
let loaded_identities t = List.map (fun e -> e.Rtm.id) (Rtm.all t.rtm)

let report_payload ~id ~nonce = Bytes.cat nonce (Task_id.to_bytes id)

let attest_with_key t ~key ~id ~nonce =
  match Rtm.find t.rtm id with
  | None -> None
  | Some _ ->
      let mac = charged t (fun () -> Crypto.Hmac.mac ~key (report_payload ~id ~nonce)) in
      t.reports <- t.reports + 1;
      Some { id; nonce; mac }

let derive_ka ~platform_key =
  Crypto.Kdf.derive ~platform_key ~purpose:"remote-attestation"

let derive_provider_ka ~platform_key ~provider =
  Crypto.Kdf.derive_provider_key ~platform_key ~provider

let remote_attest t ~id ~nonce =
  let key = charged t (fun () -> derive_ka ~platform_key:(read_platform_key t)) in
  attest_with_key t ~key ~id ~nonce

let remote_attest_for_provider t ~provider ~id ~nonce =
  let key =
    charged t (fun () ->
        derive_provider_ka ~platform_key:(read_platform_key t) ~provider)
  in
  attest_with_key t ~key ~id ~nonce

(* nonce | id_t | cf_digest | edge_count | base_digest: everything the
   verifier's replay depends on is under the MAC, so a tampered edge list
   either breaks the chain (digest mismatch) or breaks the MAC. *)
let cfa_payload ~id ~nonce ~cf_digest ~base_digest ~edge_count =
  let count = Bytes.create 4 in
  Bytes.set_int32_be count 0 (Int32.of_int edge_count);
  Bytes.concat Bytes.empty
    [ nonce; Task_id.to_bytes id; cf_digest; count; base_digest ]

let cfa_attest t ~id ~nonce ~cf_digest ~base_digest ~edge_count ~edges =
  match Rtm.find t.rtm id with
  | None -> None
  | Some _ ->
      let key = charged t (fun () -> derive_ka ~platform_key:(read_platform_key t)) in
      let mac =
        charged t (fun () ->
            Crypto.Hmac.mac ~key
              (cfa_payload ~id ~nonce ~cf_digest ~base_digest ~edge_count))
      in
      t.reports <- t.reports + 1;
      Some { id; nonce; cf_digest; base_digest; edge_count; edges; mac }

let verify_cfa ~ka (r : cfa_report) ~expected ~nonce =
  Task_id.equal r.id expected
  && Crypto.Constant_time.equal r.nonce nonce
  && Crypto.Hmac.verify ~key:ka
       (cfa_payload ~id:r.id ~nonce:r.nonce ~cf_digest:r.cf_digest
          ~base_digest:r.base_digest ~edge_count:r.edge_count)
       ~tag:r.mac

let expected_mac ~ka ~id ~nonce = Crypto.Hmac.mac ~key:ka (report_payload ~id ~nonce)

(* Verifier-side fast path: a fleet host checks many reports under the
   same Ka, so it precomputes the HMAC key schedule once per device and
   pays only the message compressions per report. *)
type mac_state = Crypto.Hmac.state

let prepare_mac ~ka = Crypto.Hmac.prepare ~key:ka

let expected_mac_with state ~id ~nonce =
  Crypto.Hmac.mac_with state (report_payload ~id ~nonce)

(* "TYOTA1" | version | size | id_t | image digest: the target version
   is under the MAC, so an attacker cannot take a genuinely signed old
   image and re-offer it under a fresher version number — the downgrade
   check compares the authenticated version, not a transport field. *)
let update_payload ~id ~version ~size ~digest =
  let fixed = Bytes.create 8 in
  Bytes.set_int32_be fixed 0 (Int32.of_int version);
  Bytes.set_int32_be fixed 4 (Int32.of_int size);
  Bytes.concat Bytes.empty
    [ Bytes.of_string "TYOTA1"; fixed; Task_id.to_bytes id; digest ]

let update_mac ~ka ~id ~version ~size ~digest =
  Crypto.Hmac.mac ~key:ka (update_payload ~id ~version ~size ~digest)

let verify_update_mac ~ka ~id ~version ~size ~digest ~tag =
  Crypto.Hmac.verify ~key:ka (update_payload ~id ~version ~size ~digest) ~tag

let expected_cfa_mac ~ka ~id ~nonce ~cf_digest ~base_digest ~edge_count =
  Crypto.Hmac.mac ~key:ka
    (cfa_payload ~id ~nonce ~cf_digest ~base_digest ~edge_count)

let verify ~ka (report : report) ~expected ~nonce =
  Task_id.equal report.id expected
  && Crypto.Constant_time.equal report.nonce nonce
  && Crypto.Hmac.verify ~key:ka
       (report_payload ~id:report.id ~nonce:report.nonce)
       ~tag:report.mac

let reports_issued t = t.reports
