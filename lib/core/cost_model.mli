(** Cycle-cost constants for TyTAN's trusted-software primitives.

    The simulator charges guest instructions their ISA costs automatically;
    trusted components (whose logic runs host-side) charge cycles
    explicitly, using the constants below.  Each constant is calibrated
    against a published measurement from the paper's evaluation, noted next
    to it.  The {e structure} of each operation — what is iterated per
    register, per relocated address, per hash block, per EA-MPU slot — is
    fixed by the implementation; only the absolute scale comes from here.
    That is what makes linearity, crossovers and overhead orderings
    emergent rather than baked in. *)

(** {2 Context switching (Tables 2 and 3)} *)

val freertos_save : int
(** Baseline register save by the unmodified-FreeRTOS interrupt handler
    (38; Table 2's secure total of 95 minus its overhead of 57). *)

val freertos_restore : int
(** Baseline context restore (254; Table 3: 384 total − 130 overhead). *)

val int_mux_store_context : int
(** Int Mux: store the 15 software-saved registers to the secure task's
    stack (38; Table 2 "Store context"). *)

val int_mux_wipe_registers : int
(** Int Mux: clear the CPU registers before the untrusted handler runs
    (16; Table 2 "Wipe registers"). *)

val int_mux_branch : int
(** Int Mux: locate and branch to the handling routine (41; Table 2
    "Branch"). *)

val int_mux_restore_branch : int
(** Restore path: branch into the secure task's entry routine, including
    the EA-MPU entry-point validation (106; Table 3 "Branch"). *)

val int_mux_restore_assist : int
(** Host-charged share of the restore (Table 3 "Restore" is 254 in the
    paper; the entry routine's pops and IRET execute as real guest
    instructions costing ≈40 cycles, so the Int Mux charges the
    remainder, 214). *)

(** {2 Relocation (Table 5)} *)

val reloc_base : int
(** Fixed cost of a relocation pass (37; Table 5 row n=0). *)

val reloc_per_address : int
(** Cost per patched address (660; Table 5 slope ≈ 660–670). *)

(** {2 EA-MPU driver (Table 6)} *)

val eampu_find_slot_base : int
(** Probing slot 1 (76). *)

val eampu_find_slot_step : int
(** Additional cost per slot probed (19; Table 6: 95 at position 2,
    399 at position 18). *)

val eampu_policy_check : int
(** Checking a candidate rule against every installed rule (824). *)

val eampu_write_rule : int
(** Writing the rule to the EA-MPU configuration registers (225). *)

(** {2 RTM measurement (Table 7)} *)

val rtm_measure_base : int
(** Per-measurement setup and finalisation (4 300; paper's formula). *)

val rtm_per_block : int
(** Per 64-byte SHA-1 block (3 933; Table 7 slope
    (35 790 − 8 261) / 7). *)

val rtm_revert_base : int
(** Fixed cost of the relocation revert (114; Table 7 row a=0). *)

val rtm_revert_per_address : int
(** Per reverted address (518; Table 7 slope ≈ 518–566). *)

val crypto_per_compression : int
(** Cycle price of one SHA-1 compression invocation, used by every
    trusted service that MACs or derives keys (same 3 933 as the RTM —
    it is the same primitive). *)

(** {2 Loader (Table 4)} *)

val loader_parse_header : int
val loader_alloc : int
val loader_copy_per_byte : int
(** 50 cycles/byte, calibrated so that creating the paper's 3 962-byte
    task costs ≈200 k cycles excluding measurement (Table 4, normal row:
    208 808 overall). *)

val loader_stack_prep : int
val loader_register : int
(** Handing the task to the scheduler — paper step (6). *)

val loader_copy_chunk : int
(** Bytes copied per interruptible loader step (512). *)

val vet_base : int
val vet_per_instruction : int
(** Static verification (tycheck) of a submitted binary during the parse
    phase, charged per text instruction.  This is an extension beyond the
    paper — TyTAN itself trusts the tool chain — so the constants are
    plausible-effort, not Table-4 calibrated. *)

val vet_flow : int
(** Additional per-instruction cycles when flow vetting is enabled: the
    taint worklist and topology extraction ride the already-computed
    dataflow, so the increment is cheaper than the base abstract
    interpretation (60 vs 120 cycles per instruction). *)

val cfa_log_event : int
(** Control-flow attestation: appending one edge to the hash-chained
    branch log (three word stores to the protected ring, a counter
    update, and the amortised share of the running-digest extension).
    Like the vet costs this extends the paper (Tiny-CFA-style logging),
    so the constant is plausible-effort: 48 cycles, the same order as
    the Int Mux's per-interrupt bookkeeping.  Charged once per logged
    event — total logging overhead is exactly linear in the number of
    control-flow events. *)

(** {2 Secure IPC (§6)} *)

val ipc_origin_lookup : int
(** Reading the interrupt origin from the hardware (76). *)

val ipc_sender_lookup : int
(** Mapping the origin EIP to the sender's identity (214). *)

val ipc_receiver_lookup : int
(** Finding the receiver's memory location in the RTM's list (214). *)

val ipc_copy_message : int
(** Writing the 8-word message and the sender identity to the receiver's
    inbox (512). *)

val ipc_finish : int
(** Branch/continue bookkeeping (192).  The five components total 1 208,
    the paper's IPC-proxy cost; the receiver's entry routine runs as
    guest code (paper: 116 cycles). *)

val ipc_proxy_total : int
(** Sum of the five proxy components (1 208). *)

(** {2 Secure boot} *)

val boot_verify_per_block : int
(** Verifying a trusted component at boot hashes its region; charged per
    64-byte block like any other measurement. *)

(** {2 Telemetry (observability extension)}

    Observation is part of the machine: when the telemetry registry is
    enabled, every recorded event and span charges the simulated clock,
    so instrumented runs honestly include the cost of instrumenting.
    When disabled the cost is exactly zero (asserted cycle-exact in
    tests). *)

val telemetry_event : int
(** Recording one metric event — counter bump, gauge store, or histogram
    observation (24; a guarded store plus index arithmetic). *)

val telemetry_span : int
(** Opening and closing one timed span — two clock reads plus ring-buffer
    bookkeeping (56).  Charged in full when the span closes. *)

val pmu_read : int
(** One MMIO read of a PMU counter register (34; an uncached peripheral
    bus transaction, charged before the counter is sampled). *)

(** {2 Runtime task update (extension)} *)

val update_swap_base : int
(** The atomic suspend–activate swap of a live update (350; scheduler
    list surgery, same order as a context switch pair). *)

val update_migrate_per_word : int
(** Copying one word of task state across protection domains during the
    swap (16; a checked read plus a checked write). *)

(** {2 Fleet-scale swarm attestation (extension)} *)

val sha256_per_compression : int
(** Cycle price of one SHA-256 compression invocation (5 702 = 1.45 ×
    the SHA-1 figure, matching the benchmark's hash-algorithm ablation).
    The Merkle aggregator charges its tree work at this rate. *)

val swarm_cache_lookup : int
(** One probe of the verifier-side measurement cache — a hash-table
    lookup plus an epoch tag compare (24; same order as a telemetry
    event, it is the same kind of guarded table access). *)

val swarm_root_check : int
(** Comparing a cached verdict's batch root against the sealed epoch
    roots (40; a table probe plus a 32-byte constant-time compare). *)

val swarm_liveness : int
(** Processing one out-of-band keepalive from a device the incremental
    verifier chose not to re-challenge this epoch (32; a table probe
    plus an epoch stamp).  The price of carrying a healthy device in
    steady state — the O(changed) epoch's per-device floor. *)

(** {2 Over-the-air update (extension)} *)

val counter_read : int
(** One MMIO read of a monotonic-counter register (28; an uncached
    peripheral bus transaction, slightly cheaper than the PMU's wider
    sample). *)

val counter_increment : int
(** One monotonic-counter tick (180; a non-volatile cell write with
    read-back — the reason bulk version advances cost proportionally). *)

val ota_offer_check : int
(** Parsing and policy-checking one signed update offer, excluding the
    MAC itself which is charged per compression (260; header parse plus
    version/size validation, on the order of the loader's header
    parse). *)

val ota_chunk_base : int
(** Per-chunk bookkeeping of the staged-image assembly buffer (96;
    cursor checks and bounds tests — the copy itself is charged at
    [loader_copy_per_byte] when the image is loaded). *)
