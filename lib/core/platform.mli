(** The TyTAN platform: the composition root.

    [create ()] builds the whole simulated device — memory, CPU, exception
    engine, tick timer, EA-MPU, kernel and the six trusted components —
    runs secure boot, installs the static protection rules and starts the
    scheduler with the idle task and the loader service task.

    [create ~config:baseline_config ()] instead builds the {e unmodified
    FreeRTOS} device: no EA-MPU, plain kernel vectors and context ops, no
    measurement — the baseline of Tables 2, 3, 4 and 8.

    {2 Memory map}

    {v
      0x0000_0100  IDT (128 B, write-protected after boot)
      0x0000_0200  platform key Kp (20 B, readable only by Remote Attest
                   and Secure Storage)
      0x0000_1000  kernel code (incl. the idle stub), then the trusted
                   component code regions (EA-MPU driver, Int Mux, IPC
                   proxy, RTM, Remote Attest, Secure Storage, ELF loader,
                   incl. the loader service stub), then kernel data
                   (idle + service stacks)
      heap         task allocations, to the end of RAM
      0xF000_0000  MMIO window (tick timer; sensors and consoles attach
                   here)
    v}

    Component region sizes are modelled on the paper's Table 8 totals
    (FreeRTOS 215 617 B; TyTAN + 34 326 B), so the memory-consumption
    experiment reproduces from the map itself. *)

open Tytan_machine
open Tytan_eampu
open Tytan_rtos

exception Boot_failure of string
(** Secure boot found a trusted component whose measurement does not
    match the manufacturer's reference. *)

type config = {
  secure : bool;  (** TyTAN (true) or unmodified FreeRTOS (false) *)
  mem_size : int;
  tick_period : int;  (** cycles between tick IRQs *)
  eampu_slots : int;
  trace_enabled : bool;
  telemetry_enabled : bool;
  (** enable the cycle-accurate telemetry registry; when on, every
      recorded event/span charges the documented [Cost_model] telemetry
      constants (observation is part of the machine) *)
  platform_key : bytes;  (** exactly 20 bytes; the manufacturer-provisioned Kp *)
  tamper_component : string option;
  (** test hook: corrupt this component's code before boot verification *)
  allow_dynamic_loading : bool;
  (** TyTAN's headline flexibility.  With [false] the platform behaves
      like TrustLite: the task set is fixed once {!finish_boot} seals the
      configuration (the related-work comparison mode). *)
  vet_tasks : bool;
  (** Run tycheck static verification over every submitted binary and
      refuse unverifiable ones before measurement (default [false];
      an extension beyond the paper's trusted-tool-chain assumption). *)
  vet_flow : bool;
  (** With [vet_tasks], additionally run the secret-flow and
      IPC-topology checks ([Tycheck.flow_config]): a binary whose
      statically provable behaviour copies attestation-key material
      into an IPC payload, or that messages a peer outside its declared
      manifest, is refused at load (default [false]). *)
  mutable boot_finished : bool;
}

val default_config : config
(** TyTAN at 1.5 kHz tick (32 000 cycles at 48 MHz), 2 MiB RAM,
    32 EA-MPU slots. *)

val baseline_config : config
(** Same platform without any TyTAN extension. *)

val trustlite_config : config
(** Static-configuration mode (all tasks loaded at boot, as TrustLite
    requires); used by the related-work comparison. *)

type t

val create : ?config:config -> unit -> t

(** {2 Accessors} *)

val cpu : t -> Cpu.t
val memory : t -> Memory.t
val engine : t -> Exception_engine.t
val kernel : t -> Kernel.t
val clock : t -> Cycles.t
val trace : t -> Trace.t

val telemetry : t -> Tytan_telemetry.Telemetry.t
(** The platform-wide metrics/span registry, shared by the kernel, the
    trusted components and the network co-simulation.  Costs are wired
    from {!Cost_model.telemetry_event}/{!Cost_model.telemetry_span};
    disabled (and exactly free) unless [config.telemetry_enabled]. *)

val config : t -> config
val loader : t -> Loader.t
val heap : t -> Heap.t

val eampu : t -> Eampu.t option
val mpu_driver : t -> Mpu_driver.t option
val int_mux : t -> Int_mux.t option
val rtm : t -> Rtm.t option
val ipc : t -> Ipc.t option
val attestation : t -> Attestation.t option
val storage : t -> Secure_storage.t option

val storage_service_id : t -> Task_id.t option
(** The IPC identity of the secure-storage service. *)

val attest_service_id : t -> Task_id.t option
(** The IPC identity of the local-attestation service: send
    [[id_lo; id_hi; …]] and receive [[status; id_lo; id_hi; …]] with
    status 0 when a task with that identity is loaded. *)

val kp_addr : t -> Word.t

(** {2 Running} *)

val run : t -> cycles:int -> Cpu.status
(** Advance the machine by (at least) this many cycles, polling the tick
    timer between instructions. *)

val run_ticks : t -> int -> unit
(** Run for a number of tick periods. *)

val poll : t -> unit
(** Poll the tick timer and every attached pollable device (watchdogs). *)

val add_pollable : t -> (unit -> unit) -> unit
(** Register a closure run on every {!poll} — how time-sensitive devices
    (e.g. watchdogs) observe the clock between instructions. *)

val set_pre_exit_hook : t -> (Tcb.t -> unit) -> unit
(** Install the hook run at the {e start} of task exit, before IPC
    teardown and before the loader reclaims the task's memory — the dead
    task's image is still intact and can be re-measured.  One hook;
    installing replaces the previous one. *)

(** {2 Loading} *)

val load_blocking :
  t ->
  name:string ->
  ?priority:int ->
  ?secure:bool ->
  ?provider:string ->
  Tytan_telf.Telf.t ->
  (Tcb.t, string) result

val submit_load :
  t ->
  name:string ->
  ?priority:int ->
  ?secure:bool ->
  ?provider:string ->
  Tytan_telf.Telf.t ->
  unit
(** Queue an asynchronous load, performed incrementally by the loader
    service task as scheduling allows. *)

val finish_boot : t -> unit
(** Seal the configuration: in static mode, later (un)load attempts are
    rejected (TrustLite semantics).  A no-op when dynamic loading is
    allowed. *)

val unload : t -> Tcb.t -> unit
(** @raise Invalid_argument in sealed static mode. *)

val suspend : t -> Tcb.t -> unit
val resume : t -> Tcb.t -> unit

(** {2 Devices} *)

val attach_sensor :
  t -> name:string -> base:Word.t -> sample:(cycles:int -> Word.t) -> Devices.Sensor.t

val attach_console : t -> base:Word.t -> Devices.Console.t

val attach_watchdog :
  t -> name:string -> base:Word.t -> irq:int -> timeout:int ->
  Devices.Watchdog.t
(** A memory-mapped watchdog timer polled between instructions.  Once
    enabled it raises [irq] (and re-arms) whenever [timeout] cycles pass
    without a kick.  See {!Devices.Watchdog} for the register map. *)

val attach_rx_fifo :
  t -> name:string -> base:Word.t -> irq:int -> capacity:int ->
  Devices.Rx_fifo.t
(** An interrupt-driven receive FIFO (a CAN controller / radio).  Inject
    frames with {!Devices.Rx_fifo.inject}; read from guest code via MMIO,
    or route to a queue with {!route_rx_to_queue}. *)

val route_rx_to_queue : t -> Devices.Rx_fifo.t -> queue_id:int -> int ref
(** Deferred interrupt handling: bind the FIFO's IRQ to a kernel handler
    that drains it into the RT queue, waking blocked receivers.  Returns
    the counter of frames dropped because the queue was full. *)

val restrict_mmio_to_task : t -> Tcb.t -> base:Word.t -> size:int -> (unit, string) result
(** Install an EA-MPU rule granting an MMIO window exclusively to one
    task (plus making it protected from everyone else). *)

val attach_pmu : t -> base:Word.t -> Devices.Pmu.t
(** Map the performance-counter device (cycles, instructions retired,
    context switches) at [base]; reads charge {!Cost_model.pmu_read}.
    Protect the window with {!restrict_mmio_to_task} to give one task
    exclusive access.  See {!Devices.Pmu} for the register map. *)

(** {2 Cycle attribution} *)

val cycle_attribution : t -> (string * int) list
(** Where every cycle went, as [(name, cycles)] rows: each task's
    accumulated run time plus an ["(os)"] row for firmware, trusted
    components and the currently-open slice.  Rows sum exactly to
    [Cycles.now (clock t)]. *)

(** {2 Memory accounting (Table 8)} *)

val memory_map : t -> (string * Region.t) list
val os_memory_bytes : t -> int
(** Static memory of the OS and (in TyTAN mode) trusted components, with
    no task loaded. *)

val component_region : t -> string -> Region.t option
(** Look up a named region, e.g. ["rtm"] or ["kernel-code"]. *)
