(** The dynamic task loader (the paper's FreeRTOS ELF-loader extension).

    Loading a task t performs the paper's six steps: (1) allocate memory;
    (2) load the binary, performing relocation; (3) prepare the stack;
    (4) configure the EA-MPU to protect t's memory; (5) measure t; and
    (6) notify the OS to schedule t.

    Crucially for real-time behaviour, loading is {e interruptible}: the
    work is a state machine advanced by bounded {!step} calls — one copy
    chunk, one batch of relocations, one EA-MPU rule, one hash block at a
    time.  On a live platform the steps are driven by the loader service
    task, which higher-priority tasks preempt at every tick; Table 1's
    result (t0 and t1 hold their 1.5 kHz rates while t2 loads for
    ~27.8 ms) depends exactly on this property.  {!load_blocking} runs a
    whole job in one go — the benchmark path, and (driven through
    {!step_all_atomic}) the non-interruptible-loader ablation.

    Unloading deletes the task from the scheduler, clears its EA-MPU
    rules, removes it from the RTM directory and reclaims its memory. *)

open Tytan_machine
open Tytan_eampu
open Tytan_rtos
open Tytan_telf

type trusted_regions = {
  kernel_code : Region.t;
  int_mux : Region.t;
  ipc_proxy : Region.t;
  rtm : Region.t;
}
(** Code regions of the principals that receive grants over each loaded
    task's memory. *)

type request = {
  telf : Telf.t;
  name : string;
  priority : int;
  secure : bool;
  provider : string;
}

type t

val create :
  ?vet:Tytan_analysis.Tycheck.config ->
  kernel:Kernel.t ->
  rtm:Rtm.t ->
  mpu:Mpu_driver.t option ->
  heap:Heap.t ->
  code_eip:Word.t ->
  regions:trusted_regions ->
  unit ->
  t
(** [mpu = None] on the baseline platform: no protection is configured
    (and secure-task requests are rejected).

    [vet] enables load-time static verification: every submitted binary
    is run through {!Tytan_analysis.Tycheck.check} during the parse
    phase (with [r12_inbox] following the request's [secure] flag) and
    refused — before any memory is allocated — if the report carries a
    violation.  The verification cost is charged to the loading cycle
    budget ({!Cost_model.vet_base} + per-instruction). *)

val code_eip : t -> Word.t

(** {2 Asynchronous (service-task driven) loading} *)

val submit : t -> request -> unit
val pending : t -> int

val step : t -> [ `Idle | `Working | `Loaded of Tcb.t | `Failed of string ]
(** Perform one bounded unit of work on the front job. *)

val swi_step : int
(** SWI number (11) the loader service task raises; each call runs one
    {!step} and returns the status in the caller's r0 (0 idle, 1 working,
    2 loaded, 3 failed). *)

val handle_swi : t -> swi:int -> gprs:Word.t array -> bool

val on_loaded : t -> (Tcb.t -> unit) -> unit
(** Callback when an asynchronous load completes. *)

(** {2 Blocking loading (benchmarks, examples, boot-time setup)} *)

val load_blocking : t -> request -> (Tcb.t, string) result

(** {2 Lifecycle} *)

val unload : t -> Tcb.t -> unit
(** Kill the task and reclaim memory, protection rules and directory
    entry. *)

val reclaim : t -> Tcb.t -> unit
(** The kernel's on-exit hook: release resources of a task that already
    terminated. *)

val loads_completed : t -> int
val bytes_loaded : t -> int

val last_report : t -> (string * int) list
(** Cycles spent per phase (["parse"], ["alloc"], ["copy"],
    ["relocation"], ["stack-prep"], ["ea-mpu"], ["rtm"], ["register"]) of
    the most recently finished job — the decomposition printed by the
    Table 4 benchmark. *)

val max_step_cycles : t -> int
(** Largest single {!step} observed — the loader's contribution to
    worst-case preemption latency.  Real-time compliance requires this to
    stay below the tick period. *)

val reset_step_stats : t -> unit
